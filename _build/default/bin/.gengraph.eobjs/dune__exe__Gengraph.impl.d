bin/gengraph.ml: Array Graphgen Printf Relation String Sys
