bin/gengraph.mli:
