bin/murarun.ml: Arg Cmd Cmdliner Cost Distsim Filename Graphgen Harness List Mura Physical Printf Relation Rewrite Rpq String Term
