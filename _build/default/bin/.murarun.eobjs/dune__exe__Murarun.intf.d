bin/murarun.mli:
