bin/murashell.ml: Cost Distsim Graphgen List Mura Physical Printf Relation Rewrite Rpq String Unix
