bin/murashell.mli:
