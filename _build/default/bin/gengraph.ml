(* gengraph — write synthetic datasets to edge-list files.

   Examples:
     gengraph yago:5000 yago.nt
     gengraph er:10000:0.001 rnd.edges
     gengraph tree:150000 tree.edges
     gengraph uniprot:1000000 uniprot.nt *)

let usage () =
  prerr_endline
    "usage: gengraph SPEC FILE\n\
     SPEC: yago:SCALE | uniprot:SCALE | er:NODES:P | tree:NODES | pa:NODES\n\
     optional third argument: a comma-separated label list to decorate\n\
     unlabelled graphs (er/tree/pa)";
  exit 1

let () =
  match Sys.argv with
  | [| _; spec; file |] | [| _; spec; file; _ |] ->
    let labels =
      if Array.length Sys.argv = 4 then Some (String.split_on_char ',' Sys.argv.(3)) else None
    in
    let graph =
      match String.split_on_char ':' spec with
      | [ "yago"; scale ] -> Graphgen.Yago_like.generate ~scale:(int_of_string scale) ()
      | [ "uniprot"; scale ] -> Graphgen.Uniprot_like.generate ~scale:(int_of_string scale) ()
      | [ "er"; nodes; p ] ->
        Graphgen.Generators.erdos_renyi ~nodes:(int_of_string nodes) ~p:(float_of_string p) ()
      | [ "tree"; nodes ] -> Graphgen.Generators.random_tree ~nodes:(int_of_string nodes) ()
      | [ "pa"; nodes ] ->
        Graphgen.Generators.preferential_attachment ~nodes:(int_of_string nodes) ()
      | _ -> usage ()
    in
    let graph =
      match labels with
      | Some l when Relation.Schema.arity (Relation.Rel.schema graph) = 2 ->
        Graphgen.Generators.add_labels ~labels:l graph
      | _ -> graph
    in
    Relation.Rel_io.save file graph;
    Printf.printf "wrote %d tuples to %s\n" (Relation.Rel.cardinal graph) file
  | _ -> usage ()
