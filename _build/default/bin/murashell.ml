(* murashell — an interactive shell for recursive graph queries.

   Commands:
     load FILE            load a (2- or 3-column) edge-list file as E
     gen SPEC             generate a graph (yago:N, uniprot:N, er:N:P, tree:N)
     workers N            set the simulated cluster size (default 4)
     explain QUERY        show optimized logical + physical plans
     sql QUERY            show the per-worker SQL for the query's fixpoints
     QUERY                evaluate (e.g. ?x <- ?x a+ Japan)
     help | quit *)

module Rel = Relation.Rel
module Exec = Physical.Exec

type state = { mutable graph : Rel.t option; mutable workers : int }

let st = { graph = None; workers = 4 }

let help () =
  print_string
    "commands:\n\
    \  load FILE      load an edge-list file as the relation E\n\
    \  gen SPEC       yago:N | uniprot:N | er:N:P | tree:N\n\
    \  workers N      set cluster size\n\
    \  explain QUERY  show the optimized plans without executing\n\
    \  QUERY          e.g.  ?x, ?y <- ?x knows+/likes ?y\n\
    \  help, quit\n"

let require_graph () =
  match st.graph with
  | Some g -> g
  | None -> failwith "no graph loaded (use 'load FILE' or 'gen SPEC')"

let optimize graph term =
  let tables = [ ("E", graph) ] in
  let tenv = Mura.Typing.env [ ("E", Rel.schema graph) ] in
  let stats = Cost.Stats.of_tables tables in
  Rewrite.Engine.optimize ~max_plans:120 ~cost:(Cost.Estimate.cost stats) tenv term

let parse_query text = Rpq.Query.union_to_term (Rpq.Query.parse_union text)

let run_query text =
  let graph = require_graph () in
  let best = optimize graph (parse_query text) in
  let cluster = Distsim.Cluster.make ~workers:st.workers () in
  let ctx = Exec.session (Exec.default_config cluster) [ ("E", graph) ] in
  let t0 = Unix.gettimeofday () in
  let result = Exec.run ctx best in
  Printf.printf "%d tuples in %.3fs  [%s]\n" (Rel.cardinal result)
    (Unix.gettimeofday () -. t0)
    (Distsim.Metrics.to_string (Distsim.Cluster.metrics cluster));
  List.iter
    (fun (fr : Exec.fix_report) ->
      Printf.printf "  fixpoint %s: %s, stable=[%s], %d iterations\n" fr.var
        (Exec.plan_name fr.plan) (String.concat "," fr.stable) fr.iterations)
    (Exec.report ctx).fixpoints;
  let shown = ref 0 in
  (try
     Rel.iter
       (fun tu ->
         if !shown >= 10 then raise Exit;
         incr shown;
         Printf.printf "  %s\n" (Relation.Tuple.to_string tu))
       result
   with Exit -> print_endline "  ...")

let explain_query text =
  let graph = require_graph () in
  let best = optimize graph (parse_query text) in
  Printf.printf "logical plan:\n  %s\nphysical plan:\n%s" (Mura.Term.to_string best)
    (Exec.explain
       (Exec.session
          (Exec.default_config (Distsim.Cluster.make ~workers:st.workers ()))
          [ ("E", graph) ])
       best)

let gen spec =
  let spec, labels =
    match String.split_on_char ' ' (String.trim spec) with
    | [ s ] -> (s, [ "a"; "b"; "c" ])
    | s :: l :: _ -> (s, String.split_on_char ',' l)
    | [] -> failwith "empty generator spec"
  in
  let g =
    match String.split_on_char ':' spec with
    | [ "yago"; scale ] -> Graphgen.Yago_like.generate ~scale:(int_of_string scale) ()
    | [ "uniprot"; scale ] -> Graphgen.Uniprot_like.generate ~scale:(int_of_string scale) ()
    | [ "er"; nodes; p ] ->
      Graphgen.Generators.erdos_renyi ~nodes:(int_of_string nodes) ~p:(float_of_string p) ()
    | [ "tree"; nodes ] -> Graphgen.Generators.random_tree ~nodes:(int_of_string nodes) ()
    | _ -> failwith "unknown generator spec"
  in
  (* UCRPQs need labelled edges: decorate plain graphs *)
  let g =
    if Relation.Schema.arity (Rel.schema g) = 2 then
      Graphgen.Generators.add_labels ~labels g
    else g
  in
  st.graph <- Some g;
  Printf.printf "generated %d labelled edges (labels: %s)\n" (Rel.cardinal g)
    (String.concat "," labels)

let load file =
  let g =
    try Relation.Rel_io.load_labelled_edges file
    with Failure _ -> Relation.Rel_io.load_edges file
  in
  st.graph <- Some g;
  Printf.printf "loaded %d edges from %s\n" (Rel.cardinal g) file

let dispatch line =
  let line = String.trim line in
  if line = "" then ()
  else if line = "help" then help ()
  else if line = "quit" || line = "exit" then raise Exit
  else
    match String.index_opt line ' ' with
    | Some i when String.sub line 0 i = "load" ->
      load (String.trim (String.sub line i (String.length line - i)))
    | Some i when String.sub line 0 i = "gen" ->
      gen (String.trim (String.sub line i (String.length line - i)))
    | Some i when String.sub line 0 i = "workers" ->
      st.workers <- int_of_string (String.trim (String.sub line i (String.length line - i)));
      Printf.printf "cluster size: %d workers\n" st.workers
    | Some i when String.sub line 0 i = "explain" ->
      explain_query (String.trim (String.sub line i (String.length line - i)))
    | _ -> run_query line

let () =
  print_endline "Dist-mu-RA shell — 'help' for commands";
  try
    while true do
      print_string "mura> ";
      (match read_line () with
      | line -> (
        try dispatch line with
        | Exit -> raise Exit
        | Failure msg
        | Rpq.Regex.Parse_error msg
        | Rpq.Query.Translation_error msg
        | Mura.Eval.Eval_error msg
        | Mura.Typing.Type_error msg
        | Relation.Schema.Schema_error msg
        | Sys_error msg ->
          Printf.printf "error: %s\n" msg
        | Physical.Exec.Resource_limit msg -> Printf.printf "resource limit: %s\n" msg)
      | exception End_of_file -> raise Exit)
    done
  with Exit -> print_endline "bye"
