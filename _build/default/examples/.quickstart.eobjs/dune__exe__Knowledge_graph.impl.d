examples/knowledge_graph.ml: Graphgen Harness List Printf Relation String
