examples/quickstart.ml: Cost Distsim List Mura Physical Printf Relation Rewrite Rpq String
