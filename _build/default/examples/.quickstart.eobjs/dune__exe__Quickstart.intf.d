examples/quickstart.mli:
