examples/same_generation.ml: Datalog Distsim Graphgen List Mura Physical Printf Relation String Unix
