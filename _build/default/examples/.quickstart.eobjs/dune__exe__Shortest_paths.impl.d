examples/shortest_paths.ml: Array Distsim Graphgen Mura Physical Printf Relation Unix
