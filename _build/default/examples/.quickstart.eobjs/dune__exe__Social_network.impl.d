examples/social_network.ml: Distsim Graphgen List Mura Physical Printf Relation Unix
