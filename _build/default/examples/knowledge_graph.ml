(* Knowledge-graph querying: run UCRPQs of the paper's six query classes
   on a synthetic Yago-like graph, across all the systems the paper
   compares.

   Run with:  dune exec examples/knowledge_graph.exe *)

module S = Harness.Systems
module Q = Harness.Queries
module R = Harness.Runner

let () =
  let graph = Graphgen.Yago_like.generate ~seed:42 ~scale:3_000 () in
  Printf.printf "yago-like graph: %d labelled edges\n" (Relation.Rel.cardinal graph);

  (* one representative query per class *)
  let picks = [ "Q21" (* C1 *); "Q22" (* C2 *); "Q24" (* C3 *); "Q19" (* C4 *); "Q1" (* C5 *); "Q13" (* C6 *) ] in
  let specs = List.filter (fun (q : Q.spec) -> List.mem q.id picks) Q.yago in

  let systems = [ S.dist_mu_ra (); S.centralized_mu_ra (); S.bigdatalog (); S.graphx () ] in
  let workloads =
    List.map
      (fun (q : Q.spec) ->
        let classes = String.concat "," (List.map Q.class_name q.classes) in
        (Printf.sprintf "%s [%s]" q.id classes, S.of_ucrpq graph q.text))
      specs
  in
  let rows = R.run_matrix ~timeout_s:120. ~systems workloads in
  R.print_table ~title:"running times (seconds)"
    ~columns:(List.map (fun (s : S.system) -> s.name) systems)
    rows;
  print_newline ();
  List.iter
    (fun (q : Q.spec) -> if List.mem q.id picks then Printf.printf "%-4s %s\n" q.id q.text)
    specs
