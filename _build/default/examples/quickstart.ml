(* Quickstart: evaluate a recursive graph query on a simulated cluster.

   Run with:  dune exec examples/quickstart.exe

   The pipeline is the one of the paper (Fig. 3): UCRPQ text
   -> Query2Mu -> MuRewriter + CostEstimator -> PhysicalPlanGenerator
   -> distributed execution. *)

module Rel = Relation.Rel
module Exec = Physical.Exec

let () =
  (* A small labelled graph: cities located in regions located in
     countries, and people living in cities. *)
  let edges =
    Rel.of_list
      (Relation.Schema.of_list [ "src"; "pred"; "trg" ])
      (let locatedIn = Relation.Value.of_string "locatedIn" in
       let livesIn = Relation.Value.of_string "livesIn" in
       let tokyo = Relation.Value.of_string "Tokyo" in
       let kanto = Relation.Value.of_string "Kanto" in
       let japan = Relation.Value.of_string "Japan" in
       let lyon = Relation.Value.of_string "Lyon" in
       let france = Relation.Value.of_string "France" in
       [
         [ tokyo; locatedIn; kanto ];
         [ kanto; locatedIn; japan ];
         [ lyon; locatedIn; france ];
         [ 1; livesIn; tokyo ];
         [ 2; livesIn; lyon ];
         [ 3; livesIn; kanto ];
       ])
  in

  (* Who lives (directly or transitively) in Japan? *)
  let query = "?x <- ?x livesIn/locatedIn+ Japan" in
  Printf.printf "query: %s\n" query;

  (* 1. translate to the recursive relational algebra *)
  let term = Rpq.Query.to_term (Rpq.Query.parse query) in
  Printf.printf "mu-RA term:\n  %s\n" (Mura.Term.to_string term);

  (* 2. logical optimization: explore rewrites, rank by estimated cost *)
  let tables = [ ("E", edges) ] in
  let tenv = Mura.Typing.env [ ("E", Rel.schema edges) ] in
  let stats = Cost.Stats.of_tables tables in
  let best = Rewrite.Engine.optimize ~cost:(Cost.Estimate.cost stats) tenv term in
  Printf.printf "optimized plan:\n  %s\n" (Mura.Term.to_string best);

  (* 3. distributed execution on a 4-worker simulated cluster *)
  let cluster = Distsim.Cluster.make ~workers:4 () in
  let ctx = Exec.session (Exec.default_config cluster) tables in
  let result = Exec.run ctx best in

  Printf.printf "\nresult (%d tuples):\n" (Rel.cardinal result);
  Rel.iter (fun tu -> Printf.printf "  %s\n" (Relation.Tuple.to_string tu)) result;

  (* 4. what the engine did *)
  List.iter
    (fun (fr : Exec.fix_report) ->
      Printf.printf
        "\nfixpoint %s: plan=%s stable=[%s] iterations=%d result=%d tuples\n" fr.var
        (Exec.plan_name fr.plan) (String.concat "," fr.stable) fr.iterations fr.result_size)
    (Exec.report ctx).fixpoints;
  Printf.printf "communication: %s\n"
    (Distsim.Metrics.to_string (Distsim.Cluster.metrics cluster))
