(* Beyond regular queries: the "same generation" query is expressible in
   mu-RA but not as a UCRPQ (it is not a regular path property). This
   example evaluates it on a family tree with the mu-RA engine and the
   Datalog baseline, and shows the physical plan that gets selected.

   Run with:  dune exec examples/same_generation.exe *)

module Rel = Relation.Rel
module Exec = Physical.Exec

let () =
  let tree = Graphgen.Generators.random_tree ~seed:23 ~nodes:1_200 () in
  Printf.printf "family tree: %d parent-child edges\n\n" (Rel.cardinal tree);

  let term = Mura.Patterns.same_generation () in
  Printf.printf "mu-RA term:\n  %s\n\n" (Mura.Term.to_string term);

  (* distributed evaluation: same generation has no stable column, so
     the planner must fall back to the global-loop plan *)
  let cluster = Distsim.Cluster.make ~workers:4 () in
  let ctx = Exec.session (Exec.default_config cluster) [ ("E", tree) ] in
  let t0 = Unix.gettimeofday () in
  let result = Exec.run ctx term in
  let dist_time = Unix.gettimeofday () -. t0 in
  (match (Exec.report ctx).fixpoints with
  | fr :: _ ->
    Printf.printf "selected plan: %s (stable columns: [%s])\n" (Exec.plan_name fr.plan)
      (String.concat ";" fr.stable)
  | [] -> ());
  Printf.printf "Dist-mu-RA:  %d same-generation pairs in %.3fs\n" (Rel.cardinal result) dist_time;

  (* the same query in Datalog, on the BigDatalog-style engine *)
  let program =
    Datalog.Parse.program
      "sg(X, Y) :- edge(P, X), edge(P, Y).\n\
       sg(X, Y) :- edge(A, X), sg(A, B), edge(B, Y).\n\
       ?- sg(X, Y)."
  in
  let cluster2 = Distsim.Cluster.make ~workers:4 () in
  let config = Datalog.Dist.default_config cluster2 in
  let t0 = Unix.gettimeofday () in
  let dl_result, report = Datalog.Dist.run config [ ("edge", tree) ] program in
  let dl_time = Unix.gettimeofday () -. t0 in
  Printf.printf "BigDatalog:  %d pairs in %.3fs (%d rounds, pivot: %s)\n"
    (Rel.cardinal dl_result) dl_time report.rounds
    (match List.assoc_opt "sg" report.pivots with
    | Some (Some k) -> Printf.sprintf "argument %d" k
    | Some None -> "none (global loop)"
    | None -> "n/a");

  assert (Rel.cardinal result = Rel.cardinal dl_result);
  Printf.printf "\nboth engines agree on the %d pairs.\n" (Rel.cardinal result)
