(* Beyond F_cond fixpoints: weighted shortest paths with a min-aggregate
   fixpoint (the aggregates-in-recursion extension the paper discusses
   via RaSQL/BigDatalog), evaluated centrally and with the P_plw-style
   distributed plan.

   Run with:  dune exec examples/shortest_paths.exe *)

module Rel = Relation.Rel

let () =
  (* a weighted road network: random graph with weights 1..9 *)
  let base = Graphgen.Generators.erdos_renyi ~seed:77 ~nodes:600 ~p:0.01 () in
  let rng = Graphgen.Rng.create 78 in
  let weighted = Rel.create (Relation.Schema.of_list [ "src"; "trg"; "weight" ]) in
  Rel.iter
    (fun tu -> ignore (Rel.add weighted [| tu.(0); tu.(1); 1 + Graphgen.Rng.int rng 9 |]))
    base;
  Printf.printf "road network: %d weighted edges\n\n" (Rel.cardinal weighted);

  (* centralized min-fixpoint *)
  let env = Mura.Eval.env [ ("E", weighted) ] in
  let t0 = Unix.gettimeofday () in
  let central = Mura.Agg.shortest_paths env ~edges:"E" in
  Printf.printf "centralized:  %d shortest-path pairs in %.3fs\n" (Rel.cardinal central)
    (Unix.gettimeofday () -. t0);

  (* distributed: seeds partitioned by src (stable under relaxation),
     edges broadcast once, per-worker min-fixpoints — no min-merge needed *)
  let cluster = Distsim.Cluster.make ~workers:4 () in
  let t0 = Unix.gettimeofday () in
  let dist = Physical.Agg_exec.shortest_paths cluster weighted in
  Printf.printf "distributed:  %d pairs in %.3fs\n" (Rel.cardinal dist)
    (Unix.gettimeofday () -. t0);
  Printf.printf "communication: %s\n"
    (Distsim.Metrics.to_string (Distsim.Cluster.metrics cluster));
  assert (Rel.equal central dist);

  (* single-source distances from node 0 *)
  let from0 = Mura.Agg.shortest_paths_from env ~edges:"E" ~source:(Relation.Value.of_int 0) in
  Printf.printf "\nnode 0 reaches %d nodes; sample distances:\n" (Rel.cardinal from0);
  let shown = ref 0 in
  (try
     Rel.iter
       (fun tu ->
         if !shown >= 5 then raise Exit;
         incr shown;
         Printf.printf "  to %d: weight %d\n" tu.(0) tu.(1))
       from0
   with Exit -> ())
