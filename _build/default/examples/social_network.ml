(* Social-network analysis: reachable audiences and follower chains on a
   scale-free graph, contrasting the two distribution strategies of the
   paper (P_gld vs P_plw).

   Run with:  dune exec examples/social_network.exe *)

module Rel = Relation.Rel
module Term = Mura.Term
module Exec = Physical.Exec
module Metrics = Distsim.Metrics

let run_with plan graph term =
  let cluster = Distsim.Cluster.make ~workers:4 () in
  let config = { (Exec.default_config cluster) with force_plan = plan } in
  let ctx = Exec.session config [ ("E", graph) ] in
  (* preload so the initial data distribution is not attributed to the
     query *)
  ignore (Exec.exec_dds ctx (Term.Rel "E"));
  let m = Distsim.Cluster.metrics cluster in
  let before = m.Metrics.shuffles in
  let t0 = Unix.gettimeofday () in
  let result = Exec.run ctx term in
  let elapsed = Unix.gettimeofday () -. t0 in
  let iterations =
    match (Exec.report ctx).fixpoints with fr :: _ -> fr.iterations | [] -> 0
  in
  (Rel.cardinal result, elapsed, m.Metrics.shuffles - before, iterations)

let () =
  (* followers graph: edge (a, b) = "a follows b" *)
  let graph = Graphgen.Generators.preferential_attachment ~seed:17 ~nodes:20_000 ~edges_per_node:2 () in
  Printf.printf "social graph: %d follow edges\n" (Rel.cardinal graph);

  (* Everyone user 19999 can reach by following follow edges — the
     accounts whose posts can cascade to them. *)
  let audience = Mura.Patterns.reach (Relation.Value.of_int 19_999) in
  let size, t, _, _ = run_with None graph audience in
  Printf.printf "user 19999 transitively follows %d accounts (%.3fs)\n\n" size t;

  (* Influence pairs: who can reach whom through at most unlimited
     follow hops — the full transitive closure, evaluated with both
     fixpoint plans to expose the communication difference. *)
  let closure = Mura.Patterns.closure (Term.Rel "E") in
  Printf.printf "%-10s %10s %10s %10s %12s\n" "plan" "tuples" "time(s)" "shuffles" "iterations";
  List.iter
    (fun (name, plan) ->
      let size, t, shuffles, iters = run_with (Some plan) graph closure in
      Printf.printf "%-10s %10d %10.3f %10d %12d\n" name size t shuffles iters)
    [ ("P_gld", Exec.P_gld); ("P_plw^s", Exec.P_plw_s) ];
  print_newline ();
  Printf.printf
    "P_plw keeps the recursion local to each worker: the shuffle count\n\
     stays constant while P_gld pays at least one shuffle per iteration.\n"
