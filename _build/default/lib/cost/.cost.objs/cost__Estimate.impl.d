lib/cost/estimate.ml: Float List Mura Relation Stats
