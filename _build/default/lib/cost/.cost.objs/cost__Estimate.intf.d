lib/cost/estimate.mli: Mura Stats
