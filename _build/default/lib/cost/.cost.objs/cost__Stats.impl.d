lib/cost/stats.ml: List Mura Option Relation
