lib/cost/stats.mli: Mura Relation
