module Pred = Relation.Pred
module Term = Mura.Term
module Fcond = Mura.Fcond

type est = { card : float; distincts : (string * float) list }

let assumed_depth = 20
let default_card = 1000.
let dcount e c = match List.assoc_opt c e.distincts with Some d -> Float.max d 1. | None -> 1.

(* Rescale per-column distinct counts after the cardinality changed: a
   column cannot have more distinct values than tuples. *)
let clamp e = { e with distincts = List.map (fun (c, d) -> (c, Float.min d e.card)) e.distincts }

let rec selectivity e (p : Pred.t) =
  match p with
  | True -> 1.
  | Eq_const (c, _) -> 1. /. dcount e c
  | Neq_const (c, _) -> 1. -. (1. /. dcount e c)
  | Lt_const _ | Gt_const _ -> 0.33
  | Eq_col (a, b) -> 1. /. Float.max (dcount e a) (dcount e b)
  | And (a, b) -> selectivity e a *. selectivity e b
  | Or (a, b) ->
    let sa = selectivity e a and sb = selectivity e b in
    Float.min 1. (sa +. sb -. (sa *. sb))
  | Not a -> 1. -. selectivity e a

let rec term ?(vars = []) stats (t : Term.t) : est =
  match t with
  | Rel n -> (
    match Stats.count stats n with
    | Some c ->
      let card = float_of_int (max c 1) in
      let tenv = Stats.typing_env stats in
      let distincts =
        List.map
          (fun col ->
            ( col,
              match Stats.distinct stats n col with
              | Some d -> float_of_int (max d 1)
              | None -> Float.max 1. (card /. 10.) ))
          (Relation.Schema.cols (Mura.Typing.env_find tenv n))
      in
      { card; distincts }
    | None -> { card = default_card; distincts = [] })
  | Cst r ->
    let card = float_of_int (max (Relation.Rel.cardinal r) 1) in
    {
      card;
      distincts =
        List.map
          (fun c -> (c, float_of_int (max 1 (Relation.Rel.distinct_count r c))))
          (Relation.Schema.cols (Relation.Rel.schema r));
    }
  | Var x -> (
    match List.assoc_opt x vars with
    | Some e -> e
    | None -> { card = default_card; distincts = [] })
  | Select (p, u) ->
    let e = term ~vars stats u in
    let sel = Float.max 1e-9 (selectivity e p) in
    let distincts =
      List.map
        (fun (c, d) ->
          match p with
          | Pred.Eq_const (c', _) when c = c' -> (c, 1.)
          | _ -> (c, d))
        e.distincts
    in
    clamp { card = Float.max 1. (e.card *. sel); distincts }
  | Project (keep, u) ->
    let e = term ~vars stats u in
    let kept = List.filter (fun (c, _) -> List.mem c keep) e.distincts in
    let domain = List.fold_left (fun acc (_, d) -> acc *. d) 1. kept in
    clamp { card = Float.min e.card domain; distincts = kept }
  | Antiproject (drop, u) ->
    let e = term ~vars stats u in
    let kept = List.filter (fun (c, _) -> not (List.mem c drop)) e.distincts in
    let domain = List.fold_left (fun acc (_, d) -> acc *. d) 1. kept in
    clamp { card = Float.min e.card domain; distincts = kept }
  | Rename (m, u) ->
    let e = term ~vars stats u in
    {
      e with
      distincts =
        List.map
          (fun (c, d) ->
            match List.assoc_opt c m with Some fresh -> (fresh, d) | None -> (c, d))
          e.distincts;
    }
  | Join (a, b) ->
    let ea = term ~vars stats a and eb = term ~vars stats b in
    let shared = List.filter (fun (c, _) -> List.mem_assoc c eb.distincts) ea.distincts in
    let denom =
      List.fold_left (fun acc (c, da) -> acc *. Float.max da (dcount eb c)) 1. shared
    in
    let card = Float.max 1. (ea.card *. eb.card /. Float.max 1. denom) in
    let merged =
      ea.distincts
      @ List.filter (fun (c, _) -> not (List.mem_assoc c ea.distincts)) eb.distincts
    in
    clamp { card; distincts = merged }
  | Antijoin (a, _) ->
    let ea = term ~vars stats a in
    clamp { ea with card = Float.max 1. (ea.card *. 0.5) }
  | Union (a, b) ->
    let ea = term ~vars stats a and eb = term ~vars stats b in
    let merged =
      List.map
        (fun (c, d) -> (c, Float.max d (dcount eb c)))
        ea.distincts
    in
    clamp { card = ea.card +. eb.card; distincts = merged }
  | Fix (x, body) -> fix_estimate ~vars stats x body

and fix_estimate ~vars stats x body =
  match Fcond.split ~var:x body with
  | exception Fcond.Not_fcond _ -> { card = default_card; distincts = [] }
  | [], _ -> { card = default_card; distincts = [] }
  | consts, recs ->
    let e0 =
      List.fold_left
        (fun acc c ->
          let e = term ~vars stats c in
          {
            card = acc.card +. e.card;
            distincts =
              (match acc.distincts with
              | [] -> e.distincts
              | _ -> List.map (fun (col, d) -> (col, Float.max d (dcount e col))) acc.distincts);
          })
        { card = 0.; distincts = [] }
        consts
    in
    let e0 = { e0 with card = Float.max 1. e0.card } in
    (match recs with
    | [] -> e0
    | _ ->
      (* one-step growth ratio of the variable part applied to the
         constant part *)
      let step =
        List.fold_left
          (fun acc r -> acc +. (term ~vars:((x, e0) :: vars) stats r).card)
          0. recs
      in
      let ratio = Float.max 0.1 (step /. e0.card) in
      let sum_growth =
        if Float.abs (ratio -. 1.) < 0.01 then e0.card *. float_of_int assumed_depth
        else e0.card *. (((ratio ** float_of_int assumed_depth) -. 1.) /. (ratio -. 1.))
      in
      (* cap by the domain product of the output columns *)
      let domain = List.fold_left (fun acc (_, d) -> acc *. Float.max d 2.) 1. e0.distincts in
      let domain =
        (* distinct counts of the constant part underestimate the
           reachable domain; widen by the expansion *)
        Float.max domain (e0.card *. 100.)
      in
      let card = Float.min sum_growth domain in
      clamp { card = Float.max e0.card card; distincts = e0.distincts })

let cardinality stats t = (term stats t).card

let rec cost_aux ?(vars = []) stats (t : Term.t) : float * est =
  match t with
  | Rel _ | Cst _ | Var _ ->
    let e = term ~vars stats t in
    (e.card, e)
  | Select (_, u) | Project (_, u) | Antiproject (_, u) | Rename (_, u) ->
    let cu, _ = cost_aux ~vars stats u in
    let e = term ~vars stats t in
    (cu +. e.card, e)
  | Join (a, b) ->
    let ca, ea = cost_aux ~vars stats a in
    let cb, eb = cost_aux ~vars stats b in
    let e = term ~vars stats t in
    (* Joining two recursive results is the worst case for a distributed
       engine: both closures must be fully materialised and shuffled.
       Penalising it steers the planner towards merged or seeded
       fixpoints, as Dist-mu-RA's plan selection does. *)
    let penalty =
      if Term.fix_count a > 0 && Term.fix_count b > 0 then 5. *. (ea.card +. eb.card) else 0.
    in
    (ca +. cb +. e.card +. penalty, e)
  | Antijoin (a, b) | Union (a, b) ->
    let ca, _ = cost_aux ~vars stats a in
    let cb, _ = cost_aux ~vars stats b in
    let e = term ~vars stats t in
    (ca +. cb +. e.card, e)
  | Fix (x, body) -> (
    let e = term ~vars stats t in
    match Fcond.split ~var:x body with
    | exception Fcond.Not_fcond _ -> (e.card, e)
    | consts, recs ->
      let c_init = List.fold_left (fun acc c -> acc +. fst (cost_aux ~vars stats c)) 0. consts in
      (* Semi-naive accounting: over the whole run the variable part is
         applied to each delta once, and the deltas sum to the result —
         so the total recursive work is one application of the variable
         part to the final fixpoint, not depth-many applications. *)
      let rec_work =
        List.fold_left
          (fun acc r -> acc +. fst (cost_aux ~vars:((x, e) :: vars) stats r))
          0. recs
      in
      (c_init +. rec_work +. e.card, e))

let cost stats t = fst (cost_aux stats t)
