(** Cardinality and cost estimation for mu-RA terms.

    Estimates propagate a tuple count plus per-column distinct counts
    bottom-up through the algebra. Fixpoints use a bounded geometric
    expansion model: the one-step growth ratio of the variable part,
    summed over an assumed recursion depth and capped by the domain
    product of the output columns. The total cost of a term sums the
    estimated output of every operator, with the variable part of a
    fixpoint charged once per estimated iteration — enough to rank the
    MuRewriter's alternative plans (smaller constant parts, merged
    fixpoints, pushed filters all get cheaper costs). *)

type est = { card : float; distincts : (string * float) list }

val assumed_depth : int
(** Recursion depth assumed by the expansion model (default 20). *)

val term :
  ?vars:(string * est) list -> Stats.t -> Mura.Term.t -> est
(** Bottom-up estimate. Unknown relations get a default guess rather
    than an error (the estimator must never fail during exploration). *)

val cardinality : Stats.t -> Mura.Term.t -> float

val cost : Stats.t -> Mura.Term.t -> float
(** Total estimated work; suitable as the [cost] callback of
    {!Rewrite.Engine.optimize}. *)
