module Rel = Relation.Rel
module Schema = Relation.Schema

type rel_stats = { count : int; distincts : (string * int) list; schema : Schema.t }
type t = (string * rel_stats) list

let of_tables tables =
  List.map
    (fun (name, rel) ->
      let schema = Rel.schema rel in
      let distincts = List.map (fun c -> (c, Rel.distinct_count rel c)) (Schema.cols schema) in
      (name, { count = Rel.cardinal rel; distincts; schema }))
    tables

let count stats name = Option.map (fun r -> r.count) (List.assoc_opt name stats)

let distinct stats name col =
  Option.bind (List.assoc_opt name stats) (fun r -> List.assoc_opt col r.distincts)

let typing_env stats = Mura.Typing.env (List.map (fun (n, r) -> (n, r.schema)) stats)
