(** Per-relation statistics for cardinality estimation: tuple counts and
    per-column distinct-value counts, gathered from the actual base
    tables (the paper's CostEstimator relies on the cardinality
    estimation technique of Lawal et al. (CIKM'20); we keep its
    ingredients — counts, distincts, join selectivities, and a bounded
    expansion model for fixpoints). *)

type t

val of_tables : (string * Relation.Rel.t) list -> t

val count : t -> string -> int option
(** Tuple count of a base relation. *)

val distinct : t -> string -> string -> int option
(** [distinct stats rel col]: distinct values in that column. *)

val typing_env : t -> Mura.Typing.env
