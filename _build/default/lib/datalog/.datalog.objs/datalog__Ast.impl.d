lib/datalog/ast.ml: Format Fun Hashtbl List Relation
