lib/datalog/dist.ml: Ast Distsim Eval Format Hashtbl List Printf Relation
