lib/datalog/dist.mli: Ast Distsim Eval Relation
