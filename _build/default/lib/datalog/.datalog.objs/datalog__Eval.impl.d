lib/datalog/eval.ml: Ast Format Hashtbl List Printf Relation
