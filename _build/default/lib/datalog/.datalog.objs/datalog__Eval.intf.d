lib/datalog/eval.mli: Ast Relation
