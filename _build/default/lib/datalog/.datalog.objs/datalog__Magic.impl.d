lib/datalog/magic.ml: Ast Hashtbl List Printf
