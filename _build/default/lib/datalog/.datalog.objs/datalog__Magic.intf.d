lib/datalog/magic.mli: Ast
