lib/datalog/of_rpq.ml: Ast Fun List Printf Relation Rpq
