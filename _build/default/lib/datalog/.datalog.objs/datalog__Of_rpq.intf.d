lib/datalog/of_rpq.mli: Ast Eval Relation Rpq
