lib/datalog/parse.ml: Ast Format List Relation String
