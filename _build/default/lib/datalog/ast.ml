module Value = Relation.Value

type term = Var of string | Const of Value.t
type atom = { pred : string; args : term list }
type rule = { head : atom; body : atom list; neg : atom list }
type program = { rules : rule list; query : atom }

exception Ill_formed of string

let err fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let atom_vars a =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (function
      | Var v ->
        if Hashtbl.mem seen v then None
        else begin
          Hashtbl.replace seen v ();
          Some v
        end
      | Const _ -> None)
    a.args

let dedup l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    l

let idb_preds p = dedup (List.map (fun r -> r.head.pred) p.rules)

let edb_preds p =
  let idb = idb_preds p in
  dedup
    (List.concat_map (fun r -> List.map (fun a -> a.pred) (r.body @ r.neg)) p.rules
     @ [ p.query.pred ])
  |> List.filter (fun n -> not (List.mem n idb))

(* Stratification: predicates ordered so that negated dependencies are
   strictly lower. Kahn-style: repeatedly emit the predicates whose
   negative dependencies are all already emitted AND whose positive
   dependencies do not lead (through not-yet-emitted predicates) to an
   unmet negative dependency. We implement the classic algorithm on the
   condensation: stratum(p) = 1 + max over negative deps, >= positive
   deps; failure = a cycle with a negative edge. *)
let stratify p =
  let idb = idb_preds p in
  let pos = Hashtbl.create 16 and neg = Hashtbl.create 16 in
  let add tbl k v = Hashtbl.replace tbl k (v :: (try Hashtbl.find tbl k with Not_found -> [])) in
  List.iter
    (fun r ->
      List.iter (fun a -> if List.mem a.pred idb then add pos r.head.pred a.pred) r.body;
      List.iter (fun a -> if List.mem a.pred idb then add neg r.head.pred a.pred) r.neg)
    p.rules;
  let stratum = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace stratum n 0) idb;
  let changed = ref true and iterations = ref 0 in
  let n_preds = List.length idb in
  while !changed do
    changed := false;
    incr iterations;
    if !iterations > (n_preds * n_preds) + n_preds + 2 then
      err "program is not stratifiable (recursion through negation)";
    List.iter
      (fun h ->
        let s = Hashtbl.find stratum h in
        let bump v =
          if v > s then begin
            Hashtbl.replace stratum h v;
            changed := true
          end
        in
        List.iter (fun d -> bump (Hashtbl.find stratum d)) (try Hashtbl.find pos h with Not_found -> []);
        List.iter (fun d -> bump (Hashtbl.find stratum d + 1)) (try Hashtbl.find neg h with Not_found -> []))
      idb
  done;
  let max_s = List.fold_left (fun acc n -> max acc (Hashtbl.find stratum n)) 0 idb in
  List.filter_map
    (fun s ->
      match List.filter (fun n -> Hashtbl.find stratum n = s) idb with
      | [] -> None
      | group -> Some group)
    (List.init (max_s + 1) Fun.id)

let check p =
  let arities = Hashtbl.create 16 in
  let note a =
    match Hashtbl.find_opt arities a.pred with
    | Some n when n <> List.length a.args ->
      err "predicate %s used with arities %d and %d" a.pred n (List.length a.args)
    | Some _ -> ()
    | None -> Hashtbl.replace arities a.pred (List.length a.args)
  in
  List.iter
    (fun r ->
      note r.head;
      List.iter note r.body;
      List.iter note r.neg;
      (match r.body with [] -> err "rule with empty positive body" | _ -> ());
      let body_vars = List.concat_map atom_vars r.body in
      List.iter
        (fun v ->
          if not (List.mem v body_vars) then
            err "unsafe rule: head variable %s not bound in a positive atom" v)
        (atom_vars r.head);
      List.iter
        (fun a ->
          List.iter
            (fun v ->
              if not (List.mem v body_vars) then
                err "unsafe rule: negated variable %s not bound in a positive atom" v)
            (atom_vars a))
        r.neg)
    p.rules;
  note p.query;
  ignore (stratify p)

let is_recursive p name =
  (* dependency closure over the rule graph *)
  let deps = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let cur = try Hashtbl.find deps r.head.pred with Not_found -> [] in
      Hashtbl.replace deps r.head.pred (List.map (fun a -> a.pred) r.body @ cur))
    p.rules;
  let visited = Hashtbl.create 16 in
  let rec reach from =
    List.exists
      (fun d ->
        d = name
        ||
        if Hashtbl.mem visited d then false
        else begin
          Hashtbl.replace visited d ();
          reach d
        end)
      (try Hashtbl.find deps from with Not_found -> [])
  in
  reach name

let pp_term ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const c -> Format.fprintf ppf "%a" Value.pp c

let pp_atom ppf a =
  Format.fprintf ppf "%s(%a)" a.pred
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_term)
    a.args

let pp_rule ppf r =
  let pp_neg ppf a = Format.fprintf ppf "!%a" pp_atom a in
  Format.fprintf ppf "%a :- %a%s%a." pp_atom r.head
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_atom)
    r.body
    (if r.neg = [] then "" else ", ")
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_neg)
    r.neg

let pp ppf p =
  Format.fprintf ppf "@[<v>%a@,?- %a.@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rule)
    p.rules pp_atom p.query

let to_string p = Format.asprintf "%a" pp p
