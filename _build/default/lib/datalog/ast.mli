(** Positive Datalog: the language of the BigDatalog and Myria baselines.

    Programs are sets of Horn rules over extensional (database) and
    intensional (derived) predicates, with a designated query atom.
    Example (transitive closure from a source):
    {v
      tc(X, Y) :- edge(X, Y).
      tc(X, Z) :- tc(X, Y), edge(Y, Z).
      ?- tc(0, Y).
    v} *)

type term = Var of string | Const of Relation.Value.t

type atom = { pred : string; args : term list }

type rule = { head : atom; body : atom list; neg : atom list }
(** [neg] holds negated body atoms ([!r(X)] / [not r(X)] in the concrete
    syntax). Safety: every head variable and every variable of a negated
    atom must occur in a positive body atom. *)

type program = { rules : rule list; query : atom }

exception Ill_formed of string

val check : program -> unit
(** Checks rule safety, arity consistency per predicate, and
    stratifiability (no recursion through negation).
    @raise Ill_formed *)

val stratify : program -> string list list
(** IDB predicates grouped into strata, lowest first: every predicate
    negated in a stratum's rules is defined in a strictly lower stratum.
    @raise Ill_formed when the program is not stratifiable. *)

val idb_preds : program -> string list
(** Predicates defined by rules, without duplicates. *)

val edb_preds : program -> string list
(** Predicates used but never defined (must come from the database). *)

val atom_vars : atom -> string list
val is_recursive : program -> string -> bool
(** Does the predicate (transitively) depend on itself? *)

val pp_atom : Format.formatter -> atom -> unit
val pp_rule : Format.formatter -> rule -> unit
val pp : Format.formatter -> program -> unit
val to_string : program -> string
