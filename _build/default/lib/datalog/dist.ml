module Rel = Relation.Rel
module Schema = Relation.Schema
module Pred = Relation.Pred
module Tset = Relation.Tset
module Tuple = Relation.Tuple
module Dds = Distsim.Dds
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics

type mode = Bigdatalog | Myria

exception Engine_failure of string

type config = { cluster : Cluster.t; mode : mode; max_rounds : int; max_facts : int }

let default_config ?(mode = Bigdatalog) cluster =
  { cluster; mode; max_rounds = 100_000; max_facts = 500_000_000 }

type report = { pivots : (string * int option) list; rounds : int }

let err fmt = Format.kasprintf (fun s -> raise (Eval.Eval_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Decomposability (generalized pivoting)                              *)
(* ------------------------------------------------------------------ *)

let rules_for p name = List.filter (fun (r : Ast.rule) -> r.head.pred = name) p.Ast.rules

let recursive_rules p name =
  List.filter (fun (r : Ast.rule) -> List.exists (fun a -> a.Ast.pred = name) r.body)
    (rules_for p name)

let pivot_of p name =
  let recs = recursive_rules p name in
  if recs = [] then None
  else begin
    let arity = List.length (List.hd recs).head.args in
    let ok k =
      List.for_all
        (fun (r : Ast.rule) ->
          match List.filter (fun a -> a.Ast.pred = name) r.body with
          | [ rec_atom ] -> (
            (* linear, and the head's k-th argument is the same variable
               as the recursive atom's k-th argument *)
            match (List.nth r.head.args k, List.nth rec_atom.args k) with
            | Ast.Var hv, Ast.Var bv -> hv = bv
            | _ -> false)
          | _ -> false)
        recs
    in
    let rec find k = if k >= arity then None else if ok k then Some k else find (k + 1) in
    find 0
  end

(* ------------------------------------------------------------------ *)
(* Rule evaluation on distributed datasets                             *)
(* ------------------------------------------------------------------ *)

let project_narrow d keep =
  let schema = Dds.schema d in
  let out_schema = Schema.restrict schema keep in
  let pos = Schema.positions schema keep in
  Dds.map_partitions ~schema:out_schema
    (fun _ part ->
      let out = Tset.create ~capacity:(Tset.cardinal part) () in
      Tset.iter (fun tu -> ignore (Tset.add out (Tuple.project pos tu))) part;
      out)
    d

(* Distributed analogue of Eval.atom_rel. *)
let atom_dds (binding : string -> Dds.t) (a : Ast.atom) =
  let d = binding a.Ast.pred in
  let arity = Schema.arity (Dds.schema d) in
  if List.length a.args <> arity then
    err "predicate %s has arity %d, used with %d args" a.pred arity (List.length a.args);
  (* relabel to canonical columns *)
  let d =
    if Schema.cols (Dds.schema d) = Eval.canonical_cols arity then d
    else
      Dds.rename
        (List.map2 (fun o n -> (o, n)) (Schema.cols (Dds.schema d)) (Eval.canonical_cols arity))
        d
  in
  let preds = ref [] in
  let first_pos : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i arg ->
      let ci = Printf.sprintf "c%d" i in
      match (arg : Ast.term) with
      | Const v -> preds := Pred.Eq_const (ci, v) :: !preds
      | Var x -> (
        match Hashtbl.find_opt first_pos x with
        | Some j -> preds := Pred.Eq_col (Printf.sprintf "c%d" j, ci) :: !preds
        | None -> Hashtbl.replace first_pos x i))
    a.args;
  let filtered = match !preds with [] -> d | ps -> Dds.filter (Pred.conj ps) d in
  let vars = Ast.atom_vars a in
  let keep = List.map (fun v -> Printf.sprintf "c%d" (Hashtbl.find first_pos v)) vars in
  let projected =
    if keep = Schema.cols (Dds.schema filtered) then filtered
    else project_narrow filtered keep
  in
  Dds.rename (List.combine keep vars) projected

let rule_dds binding (r : Ast.rule) =
  let body = List.map (atom_dds binding) r.body in
  let joined =
    match body with
    | [] -> err "empty rule body"
    | first :: rest -> List.fold_left Dds.join_shuffle first rest
  in
  (* stratified negation: antijoin against lower-stratum relations *)
  let joined =
    List.fold_left (fun acc a -> Dds.antijoin_shuffle acc (atom_dds binding a)) joined r.neg
  in
  let vars =
    List.map
      (function
        | Ast.Var v -> v
        | Ast.Const _ -> err "head constants are not supported")
      r.head.args
  in
  let projected = project_narrow joined vars in
  Dds.rename
    (List.map2 (fun o n -> (o, n)) vars (Eval.canonical_cols (List.length vars)))
    projected

(* ------------------------------------------------------------------ *)
(* Strata                                                              *)
(* ------------------------------------------------------------------ *)

(* Order the IDB predicates so that each group's dependencies (apart
   from itself) are already evaluated; mutually recursive predicates end
   up in one group. *)
let strata (p : Ast.program) =
  let idb = Ast.idb_preds p in
  let deps name =
    List.concat_map
      (fun (r : Ast.rule) -> List.map (fun a -> a.Ast.pred) (r.body @ r.neg))
      (rules_for p name)
    |> List.filter (fun d -> List.mem d idb && d <> name)
    |> List.sort_uniq compare
  in
  let remaining = ref idb and done_ = ref [] and groups = ref [] in
  while !remaining <> [] do
    let ready =
      List.filter (fun n -> List.for_all (fun d -> List.mem d !done_) (deps n)) !remaining
    in
    match ready with
    | [] ->
      (* mutual recursion: one combined group *)
      groups := !remaining :: !groups;
      done_ := !remaining @ !done_;
      remaining := []
    | _ ->
      List.iter (fun n -> groups := [ n ] :: !groups) ready;
      done_ := ready @ !done_;
      remaining := List.filter (fun n -> not (List.mem n ready)) !remaining
  done;
  List.rev !groups

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type ctx = {
  config : config;
  db : Eval.db;
  resolved : (string, Dds.t) Hashtbl.t;  (** EDB cache + evaluated IDB *)
  mutable rounds : int;
  mutable pivots : (string * int option) list;
}

let binding ctx name =
  match Hashtbl.find_opt ctx.resolved name with
  | Some d -> d
  | None -> (
    match List.assoc_opt name ctx.db with
    | Some rel ->
      let d = Dds.of_rel ctx.config.cluster (Eval.positional rel) in
      Hashtbl.replace ctx.resolved name d;
      d
    | None -> err "unknown predicate %s" name)

let check_budget ctx extra =
  let total =
    Hashtbl.fold (fun _ d acc -> acc + Dds.cardinal d) ctx.resolved 0 + extra
  in
  if total > ctx.config.max_facts then
    raise (Engine_failure (Printf.sprintf "fact budget exceeded (%d facts)" total))

let bump_round ctx =
  ctx.rounds <- ctx.rounds + 1;
  Metrics.record_superstep (Cluster.metrics ctx.config.cluster);
  if ctx.rounds > ctx.config.max_rounds then raise (Engine_failure "round budget exceeded")

let arity_of p name =
  match rules_for p name with
  | r :: _ -> List.length r.Ast.head.args
  | [] -> err "no rule for %s" name

(* Global distributed semi-naive loop over a group of predicates. *)
let run_group_global ctx (p : Ast.program) group =
  let cols name = Eval.canonical_cols (arity_of p name) in
  let all = Hashtbl.create 4 and delta = Hashtbl.create 4 in
  let schema_of name = Schema.of_list (cols name) in
  List.iter (fun n -> Hashtbl.replace all n (Dds.empty ctx.config.cluster (schema_of n))) group;
  (* round 0: rules without group atoms in the body *)
  bump_round ctx;
  List.iter
    (fun name ->
      let seeds =
        List.filter
          (fun (r : Ast.rule) ->
            not (List.exists (fun a -> List.mem a.Ast.pred group) r.body))
          (rules_for p name)
      in
      let facts =
        List.fold_left
          (fun acc r -> Dds.union_distinct acc (rule_dds (binding ctx) r))
          (Hashtbl.find all name) seeds
      in
      let facts = Dds.repartition ~by:(cols name) facts in
      Hashtbl.replace all name facts;
      Hashtbl.replace delta name facts)
    group;
  let live = ref (List.exists (fun n -> Dds.cardinal (Hashtbl.find all n) > 0) group) in
  while !live do
    bump_round ctx;
    let fresh = Hashtbl.create 4 in
    List.iter (fun n -> Hashtbl.replace fresh n (Dds.empty ctx.config.cluster (schema_of n))) group;
    List.iter
      (fun name ->
        List.iter
          (fun (r : Ast.rule) ->
            List.iteri
              (fun j (a : Ast.atom) ->
                if List.mem a.Ast.pred group then begin
                  let marked = "__delta" in
                  let body' =
                    List.mapi (fun k b -> if k = j then { b with Ast.pred = marked } else b) r.body
                  in
                  let bind n =
                    if n = marked then Hashtbl.find delta a.Ast.pred
                    else
                      match Hashtbl.find_opt all n with
                      | Some d -> d
                      | None -> binding ctx n
                  in
                  let produced = rule_dds bind { r with body = body' } in
                  let produced = Dds.repartition ~by:(cols name) produced in
                  let cur = Hashtbl.find fresh name in
                  Hashtbl.replace fresh name (Dds.set_union_local cur produced)
                end)
              r.body)
          (rules_for p name))
      group;
    let any = ref false in
    List.iter
      (fun name ->
        let added = Dds.set_diff_local (Hashtbl.find fresh name) (Hashtbl.find all name) in
        check_budget ctx (Dds.cardinal added);
        if Dds.cardinal added > 0 then begin
          any := true;
          Hashtbl.replace all name (Dds.set_union_local (Hashtbl.find all name) added)
        end;
        Hashtbl.replace delta name added)
      group;
    live := !any
  done;
  List.iter (fun name -> Hashtbl.replace ctx.resolved name (Hashtbl.find all name)) group

(* BigDatalog's decomposable plan: seeds partitioned by the pivot,
   everything else broadcast, local semi-naive per worker. *)
let run_pred_decomposable ctx (p : Ast.program) name k =
  let m = Cluster.metrics ctx.config.cluster in
  let cols = Eval.canonical_cols (arity_of p name) in
  let seed_rules =
    List.filter
      (fun (r : Ast.rule) -> not (List.exists (fun a -> a.Ast.pred = name) r.body))
      (rules_for p name)
  in
  bump_round ctx;
  let seeds =
    match seed_rules with
    | [] -> Dds.empty ctx.config.cluster (Schema.of_list cols)
    | r0 :: rest ->
      List.fold_left
        (fun acc r -> Dds.union_distinct acc (rule_dds (binding ctx) r))
        (rule_dds (binding ctx) r0) rest
  in
  let pivot_col = Printf.sprintf "c%d" k in
  let seeds = Dds.repartition ~by:[ pivot_col ] seeds in
  check_budget ctx (Dds.cardinal seeds);
  (* broadcast every predicate the recursive rules read *)
  let recs = recursive_rules p name in
  let needed =
    List.concat_map (fun (r : Ast.rule) -> List.map (fun a -> a.Ast.pred) (r.body @ r.neg)) recs
    |> List.sort_uniq compare
    |> List.filter (fun n -> n <> name)
  in
  let broadcast_db =
    List.map
      (fun n ->
        let rel = Dds.collect (binding ctx n) in
        Metrics.record_broadcast m
          ~records:(Rel.cardinal rel * max 1 (Cluster.workers ctx.config.cluster - 1));
        (n, rel))
      needed
  in
  let seed_pred = "__seed" in
  let seed_head = { Ast.pred = name; args = List.map (fun c -> Ast.Var ("V" ^ c)) cols } in
  let local_program =
    {
      Ast.rules =
        { Ast.head = seed_head; body = [ { seed_head with pred = seed_pred } ]; neg = [] } :: recs;
      query = seed_head;
    }
  in
  bump_round ctx;
  let result =
    Dds.map_partitions
      ~partitioning:(Dds.Hashed [ pivot_col ])
      ~schema:(Schema.of_list cols)
      (fun _ part ->
        let db =
          (seed_pred, Rel.of_tset (Schema.of_list cols) (Tset.copy part)) :: broadcast_db
        in
        let idb = Eval.run_all db local_program in
        Rel.tuples (Eval.positional (List.assoc name idb)))
      seeds
  in
  (* the pivot guarantees co-location but local fixpoints can still
     duplicate facts across workers if seeds collide; BigDatalog relies
     on the pivot for disjointness just as P_plw does on stable columns *)
  check_budget ctx (Dds.cardinal result);
  Hashtbl.replace ctx.resolved name result

let run_pred_nonrecursive ctx (p : Ast.program) name =
  bump_round ctx;
  let facts =
    match rules_for p name with
    | [] -> err "no rule for %s" name
    | r0 :: rest ->
      List.fold_left
        (fun acc r -> Dds.union_distinct acc (rule_dds (binding ctx) r))
        (rule_dds (binding ctx) r0) rest
  in
  check_budget ctx (Dds.cardinal facts);
  Hashtbl.replace ctx.resolved name facts

let run config db (p : Ast.program) =
  Ast.check p;
  let ctx = { config; db; resolved = Hashtbl.create 16; rounds = 0; pivots = [] } in
  List.iter
    (fun group ->
      match group with
      | [ name ] when recursive_rules p name = [] -> run_pred_nonrecursive ctx p name
      | [ name ] -> (
        let pivot = pivot_of p name in
        ctx.pivots <- (name, pivot) :: ctx.pivots;
        match (config.mode, pivot) with
        | Bigdatalog, Some k -> run_pred_decomposable ctx p name k
        | (Bigdatalog | Myria), _ -> run_group_global ctx p group)
      | _ ->
        List.iter (fun n -> ctx.pivots <- (n, None) :: ctx.pivots) group;
        run_group_global ctx p group)
    (strata p);
  let answer_dds = atom_dds (binding ctx) p.query in
  let answer = Dds.collect answer_dds in
  (answer, { pivots = List.rev ctx.pivots; rounds = ctx.rounds })
