(** Distributed Datalog evaluation on the simulated cluster — the
    BigDatalog and Myria baselines of the paper's experiments.

    {b BigDatalog mode} performs the GPS-style decomposability analysis
    (Seib & Lausen's generalized pivoting, as used by BigDatalog): a
    self-recursive predicate whose recursive rules all preserve some head
    argument from the recursive body atom in the same position is
    {e decomposable} — its seed facts are hash-partitioned by that pivot
    argument, base relations are broadcast, and every worker runs its
    local fixpoint independently (mirroring the SetRDD plan). Programs
    without a pivot fall back to a global semi-naive loop with shuffles
    every round.

    {b Myria mode} models the Myria engine's behaviour in the paper:
    always the global incremental loop (no pivoting, no logical
    optimization) and a bounded memory budget — exceeding it raises
    {!Engine_failure}, which the harness reports as a crash, matching the
    failures observed in Figs. 12 and 14. *)

type mode = Bigdatalog | Myria

exception Engine_failure of string

type config = {
  cluster : Distsim.Cluster.t;
  mode : mode;
  max_rounds : int;
  max_facts : int;  (** memory budget over all materialised facts *)
}

val default_config : ?mode:mode -> Distsim.Cluster.t -> config

type report = {
  pivots : (string * int option) list;
      (** per recursive predicate: the pivot argument position found *)
  rounds : int;  (** driver-coordinated rounds across all strata *)
}

val pivot_of : Ast.program -> string -> int option
(** Decomposability analysis for one self-recursive predicate. *)

val run : config -> Eval.db -> Ast.program -> Relation.Rel.t * report
(** @raise Engine_failure when the budget is exceeded
    @raise Eval.Eval_error on malformed programs *)
