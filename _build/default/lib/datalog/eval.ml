module Rel = Relation.Rel
module Schema = Relation.Schema
module Pred = Relation.Pred
module Tset = Relation.Tset

exception Eval_error of string

let err fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt
let canonical_cols n = List.init n (fun i -> Printf.sprintf "c%d" i)

let positional rel =
  let arity = Schema.arity (Rel.schema rel) in
  Rel.of_tset (Schema.of_list (canonical_cols arity)) (Rel.tuples rel)

type db = (string * Rel.t) list

type run_stats = { mutable rounds : int; mutable facts : int }

let stats : run_stats option ref = ref None

(* Relation of an atom: filter constants and repeated variables, then
   keep one column per distinct variable, named after it. *)
let atom_rel binding (a : Ast.atom) =
  let rel = binding a.Ast.pred in
  let arity = Schema.arity (Rel.schema rel) in
  if List.length a.args <> arity then
    err "predicate %s has arity %d, used with %d args" a.pred arity (List.length a.args);
  let rel = positional rel in
  let preds = ref [] in
  let first_pos : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i arg ->
      let ci = Printf.sprintf "c%d" i in
      match (arg : Ast.term) with
      | Const v -> preds := Pred.Eq_const (ci, v) :: !preds
      | Var x -> (
        match Hashtbl.find_opt first_pos x with
        | Some j -> preds := Pred.Eq_col (Printf.sprintf "c%d" j, ci) :: !preds
        | None -> Hashtbl.replace first_pos x i))
    a.args;
  let filtered = match !preds with [] -> rel | ps -> Rel.select (Pred.conj ps) rel in
  let vars = Ast.atom_vars a in
  let keep = List.map (fun v -> Printf.sprintf "c%d" (Hashtbl.find first_pos v)) vars in
  (* avoid a full copy when the projection is the identity *)
  let projected =
    if keep = Schema.cols (Rel.schema filtered) then filtered else Rel.project keep filtered
  in
  Rel.rename (List.combine keep vars) projected

let head_vars (r : Ast.rule) =
  List.map
    (function
      | Ast.Var v -> v
      | Ast.Const _ -> err "head constants are not supported: %s" (Format.asprintf "%a" Ast.pp_rule r))
    r.head.args

let check_head_distinct r vars =
  let sorted = List.sort_uniq compare vars in
  if List.length sorted <> List.length vars then
    err "repeated head variables are not supported: %s" (Format.asprintf "%a" Ast.pp_rule r)

let rule_rel binding (r : Ast.rule) =
  let body_rels = List.map (atom_rel binding) r.body in
  let joined =
    match body_rels with
    | [] -> err "empty rule body"
    | first :: rest -> List.fold_left Rel.natural_join first rest
  in
  (* stratified negation: negated atoms are antijoins against fully
     evaluated lower-stratum relations *)
  let joined = List.fold_left (fun acc a -> Rel.antijoin acc (atom_rel binding a)) joined r.neg in
  let vars = head_vars r in
  check_head_distinct r vars;
  if vars = Schema.cols (Rel.schema joined) then positional joined
  else positional (Rel.project vars joined)

let record_round new_facts =
  match !stats with
  | Some s ->
    s.rounds <- s.rounds + 1;
    s.facts <- s.facts + new_facts
  | None -> ()

(* Global semi-naive evaluation of one stratum: the predicates of
   [group] are computed simultaneously; everything else (EDB and lower
   strata, in [resolved]) is fixed. *)
let eval_group db (resolved : (string, Rel.t) Hashtbl.t) (p : Ast.program) group =
  let arity_of pred =
    let rec find = function
      | [] -> err "no rule for %s" pred
      | (r : Ast.rule) :: rest -> if r.head.pred = pred then List.length r.head.args else find rest
    in
    find p.rules
  in
  let rules = List.filter (fun (r : Ast.rule) -> List.mem r.head.pred group) p.rules in
  let all : (string, Rel.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun name -> Hashtbl.replace all name (Rel.create (Schema.of_list (canonical_cols (arity_of name)))))
    group;
  let delta : (string, Rel.t) Hashtbl.t = Hashtbl.copy all in
  let base_binding name =
    match Hashtbl.find_opt all name with
    | Some r -> r
    | None -> (
      match Hashtbl.find_opt resolved name with
      | Some r -> r
      | None -> (
        match List.assoc_opt name db with
        | Some r -> r
        | None -> err "unknown predicate %s" name))
  in
  (* round 0: rules evaluated with the group's relations empty *)
  let initial_new = ref 0 in
  List.iter
    (fun (r : Ast.rule) ->
      let facts = rule_rel base_binding r in
      let target = Hashtbl.find all r.head.pred in
      let added = Rel.diff facts target in
      ignore (Rel.union_into target added);
      ignore (Rel.union_into (Hashtbl.find delta r.head.pred) added);
      initial_new := !initial_new + Rel.cardinal added)
    rules;
  record_round !initial_new;
  (* semi-naive rounds: one delta occurrence per group atom *)
  let continue = ref (!initial_new > 0) in
  while !continue do
    let fresh : (string, Rel.t) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun name ->
        Hashtbl.replace fresh name (Rel.create (Schema.of_list (canonical_cols (arity_of name)))))
      group;
    List.iter
      (fun (r : Ast.rule) ->
        List.iteri
          (fun j (a : Ast.atom) ->
            if List.mem a.pred group then begin
              let marked_pred = "__delta" in
              let body' =
                List.mapi (fun k b -> if k = j then { b with Ast.pred = marked_pred } else b)
                  r.body
              in
              let binding name =
                if name = marked_pred then Hashtbl.find delta a.pred else base_binding name
              in
              let facts = rule_rel binding { r with body = body' } in
              let target = Hashtbl.find all r.head.pred in
              let added = Rel.diff facts target in
              ignore (Rel.union_into (Hashtbl.find fresh r.head.pred) added)
            end)
          r.body)
      rules;
    let new_facts = ref 0 in
    List.iter
      (fun name ->
        let target = Hashtbl.find all name in
        let added = Rel.diff (Hashtbl.find fresh name) target in
        ignore (Rel.union_into target added);
        Hashtbl.replace delta name added;
        new_facts := !new_facts + Rel.cardinal added)
      group;
    record_round !new_facts;
    if !new_facts = 0 then continue := false
  done;
  List.iter (fun name -> Hashtbl.replace resolved name (Hashtbl.find all name)) group

let run_all db (p : Ast.program) =
  Ast.check p;
  let resolved : (string, Rel.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun group -> eval_group db resolved p group) (Ast.stratify p);
  List.map (fun name -> (name, Hashtbl.find resolved name)) (Ast.idb_preds p)

let run db p =
  let idb = run_all db p in
  let binding name =
    match List.assoc_opt name idb with
    | Some r -> r
    | None -> (
      match List.assoc_opt name db with
      | Some r -> r
      | None -> err "unknown predicate %s" name)
  in
  atom_rel binding p.query
