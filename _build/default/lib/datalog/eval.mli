(** Centralized semi-naive Datalog evaluation (the single-node oracle and
    the per-worker engine of the distributed modes).

    Predicate relations are stored positionally with canonical column
    names [c0, c1, ...]; extensional relations supplied by the caller are
    converted positionally. *)

exception Eval_error of string

val canonical_cols : int -> string list
(** [c0; ...; c(n-1)] *)

val positional : Relation.Rel.t -> Relation.Rel.t
(** Same tuples under the canonical column names. *)

type db = (string * Relation.Rel.t) list
(** Extensional database: predicate name to relation (arity checked
    against the program's usage at evaluation time). *)

val atom_rel : (string -> Relation.Rel.t) -> Ast.atom -> Relation.Rel.t
(** Relation of an atom under a predicate binding: constants filtered,
    repeated variables equated, columns named after the atom's variables
    (in first-occurrence order). *)

val rule_rel : (string -> Relation.Rel.t) -> Ast.rule -> Relation.Rel.t
(** One bottom-up application of a rule: join the body atoms, project to
    the head arguments, canonical column names.
    @raise Eval_error on head constants or repeated head variables
    (unsupported). *)

val run : db -> Ast.program -> Relation.Rel.t
(** Full semi-naive evaluation; returns the query atom's answers, columns
    named after the query's variables.
    @raise Eval_error *)

val run_all : db -> Ast.program -> (string * Relation.Rel.t) list
(** All IDB relations (positional layout), for tests. *)

type run_stats = { mutable rounds : int; mutable facts : int }

val stats : run_stats option ref
(** When set, {!run} accumulates iteration counts into it. *)
