let rules_for (p : Ast.program) name =
  List.filter (fun (r : Ast.rule) -> r.head.pred = name) p.rules

let prune_unreachable (p : Ast.program) =
  let idb = Ast.idb_preds p in
  let reachable = Hashtbl.create 16 in
  let rec visit name =
    if List.mem name idb && not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      List.iter
        (fun (r : Ast.rule) -> List.iter (fun a -> visit a.Ast.pred) (r.body @ r.neg))
        (rules_for p name)
    end
  in
  visit p.query.pred;
  { p with rules = List.filter (fun (r : Ast.rule) -> Hashtbl.mem reachable r.head.pred) p.rules }

(* Left-linear closure shape:
     p(X, Y) :- <base body without p>.          (any number)
     p(X, Z) :- p(X, Y), rest...                (recursive rules)
   where the head's first argument is exactly the recursive atom's first
   argument. *)
let left_linear_closure (p : Ast.program) name =
  let rules = rules_for p name in
  let recs, bases =
    List.partition (fun (r : Ast.rule) -> List.exists (fun a -> a.Ast.pred = name) r.body) rules
  in
  let ok =
    recs <> []
    && List.for_all
         (fun (r : Ast.rule) ->
           match (r.head.args, List.filter (fun a -> a.Ast.pred = name) r.body) with
           | [ Ast.Var hx; _ ], [ rec_atom ] -> (
             match rec_atom.args with
             | [ Ast.Var bx; _ ] ->
               hx = bx
               (* the bound variable must not be used elsewhere in the
                  body: the recursion is driven purely left-to-right *)
               && List.for_all
                    (fun (a : Ast.atom) ->
                      a == rec_atom || not (List.mem hx (Ast.atom_vars a)))
                    r.body
             | _ -> false)
           | _ -> false)
         recs
    && List.for_all (fun (r : Ast.rule) -> List.length r.head.args = 2) bases
    (* conservative: do not specialise through negation *)
    && List.for_all (fun (r : Ast.rule) -> r.neg = []) rules
  in
  if ok then Some (bases, recs) else None

let counter = ref 0

(* When the query atom targets a recursive predicate directly
   (?- tc(1, Y)), wrap it in a dedicated answer rule so the same
   specialisation logic applies. *)
let with_query_rule (p : Ast.program) =
  let defines_query = rules_for p p.query.pred <> [] in
  let has_const = List.exists (function Ast.Const _ -> true | Ast.Var _ -> false) p.query.args in
  if defines_query && has_const then begin
    let heads =
      List.filter_map (function Ast.Var v -> Some (Ast.Var v) | Ast.Const _ -> None) p.query.args
    in
    let ans = { Ast.pred = "__ans"; args = heads } in
    { Ast.rules = p.rules @ [ { Ast.head = ans; body = [ p.query ]; neg = [] } ]; query = ans }
  end
  else p

let specialize (p0 : Ast.program) =
  let p = with_query_rule p0 in
  let query_rules, others =
    List.partition (fun (r : Ast.rule) -> r.head.pred = p.query.pred) p.rules
  in
  match query_rules with
  | [ qrule ] ->
    let new_rules = ref [] in
    let body' =
      List.map
        (fun (a : Ast.atom) ->
          match a.args with
          | [ Ast.Const c; obj ] -> (
            match left_linear_closure p a.pred with
            | Some (bases, recs) ->
              incr counter;
              let bf = Printf.sprintf "%s_bf%d" a.pred !counter in
              (* bf(Y) :- base(C, Y) — substitute the constant into each
                 base rule *)
              List.iter
                (fun (r : Ast.rule) ->
                  match r.head.args with
                  | [ Ast.Var x; y ] ->
                    let subst_term = function
                      | Ast.Var v when v = x -> Ast.Const c
                      | t -> t
                    in
                    let body =
                      List.map
                        (fun (b : Ast.atom) -> { b with Ast.args = List.map subst_term b.args })
                        r.body
                    in
                    new_rules := { Ast.head = { Ast.pred = bf; args = [ y ] }; body; neg = [] } :: !new_rules
                  | _ -> ())
                bases;
              (* bf(Z) :- bf(Y), rest (the p-atom replaced) *)
              List.iter
                (fun (r : Ast.rule) ->
                  match r.head.args with
                  | [ Ast.Var _; z ] ->
                    let body =
                      List.map
                        (fun (b : Ast.atom) ->
                          if b.Ast.pred = a.pred then
                            match b.args with
                            | [ _; y ] -> { Ast.pred = bf; args = [ y ] }
                            | _ -> b
                          else b)
                        r.body
                    in
                    new_rules := { Ast.head = { Ast.pred = bf; args = [ z ] }; body; neg = [] } :: !new_rules
                  | _ -> ())
                recs;
              { Ast.pred = bf; args = [ obj ] }
            | None -> a)
          | _ -> a)
        qrule.body
    in
    if !new_rules = [] then p0
    else
      prune_unreachable
        { p with Ast.rules = others @ List.rev !new_rules @ [ { qrule with body = body' } ] }
  | _ -> p0
