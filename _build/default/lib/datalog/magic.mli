(** Magic-set-style binding propagation, restricted exactly to what the
    paper credits Datalog engines with (Sec. VI-A): a constant bound to
    the {e first} argument of a {e left-linear} closure specialises its
    base case (the classic bf-adornment), but a constant on the second
    argument of a left-linear program cannot be pushed — that would
    require reversing the fixpoint, which Datalog engines do not do. *)

val specialize : Ast.program -> Ast.program
(** Specialise query-rule atoms of the form [p(C, X)] where [p] is a
    left-linear recursive predicate, then prune rules unreachable from
    the query. Returns the program unchanged where the pattern does not
    apply. *)

val prune_unreachable : Ast.program -> Ast.program
(** Drop rules for predicates the query cannot reach. *)
