module Value = Relation.Value
module Query = Rpq.Query
module Regex = Rpq.Regex

let edge_pred = "edge"

let db_of_edges rel = [ (edge_pred, rel) ]

type st = { mutable rules : Ast.rule list; mutable counter : int }

let fresh st prefix =
  let n = st.counter in
  st.counter <- n + 1;
  Printf.sprintf "%s%d" prefix n

let add st rule = st.rules <- rule :: st.rules

let v x = Ast.Var x
let atom pred args = { Ast.pred; args }

(* Returns a binary predicate name for the expression. *)
let rec trans st (e : Regex.t) : string =
  match e with
  | Label l ->
    let p = fresh st "lbl" in
    add st
      {
        Ast.head = atom p [ v "X"; v "Y" ];
        body = [ atom edge_pred [ v "X"; Ast.Const (Value.of_string l); v "Y" ] ];
        neg = [];
      };
    p
  | Inv (Label l) ->
    let p = fresh st "inv" in
    add st
      {
        Ast.head = atom p [ v "X"; v "Y" ];
        body = [ atom edge_pred [ v "Y"; Ast.Const (Value.of_string l); v "X" ] ];
        neg = [];
      };
    p
  | Inv inner -> trans st (Regex.push_inverses (Regex.Inv inner))
  | Seq (a, b) ->
    let pa = trans st a and pb = trans st b in
    let p = fresh st "seq" in
    add st
      {
        Ast.head = atom p [ v "X"; v "Z" ];
        body = [ atom pa [ v "X"; v "Y" ]; atom pb [ v "Y"; v "Z" ] ];
        neg = [];
      };
    p
  | Alt (a, b) ->
    let pa = trans st a and pb = trans st b in
    let p = fresh st "alt" in
    add st { Ast.head = atom p [ v "X"; v "Y" ]; body = [ atom pa [ v "X"; v "Y" ] ]; neg = [] };
    add st { Ast.head = atom p [ v "X"; v "Y" ]; body = [ atom pb [ v "X"; v "Y" ] ]; neg = [] };
    p
  | Plus a ->
    let pa = trans st a in
    let p = fresh st "tc" in
    (* left-linear closure *)
    add st { Ast.head = atom p [ v "X"; v "Y" ]; body = [ atom pa [ v "X"; v "Y" ] ]; neg = [] };
    add st
      {
        Ast.head = atom p [ v "X"; v "Z" ];
        body = [ atom p [ v "X"; v "Y" ]; atom pa [ v "Y"; v "Z" ] ];
        neg = [];
      };
    p
  | Star _ | Opt _ ->
    raise
      (Query.Translation_error
         (Printf.sprintf "path %s can match the empty word" (Regex.to_string e)))

(* Strip the empty word exactly as the mu-RA translation does, so both
   backends accept the same query set. *)
let strip_path (e : Regex.t) : Regex.t =
  let rec strip e : Regex.t option * bool =
    match (e : Regex.t) with
    | Label _ -> (Some e, false)
    | Inv a -> (
      match strip a with Some r, eps -> (Some (Regex.Inv r), eps) | None, eps -> (None, eps))
    | Seq (a, b) -> (
      let ra, ea = strip a and rb, eb = strip b in
      let cands =
        List.filter_map Fun.id
          [
            (match (ra, rb) with Some x, Some y -> Some (Regex.Seq (x, y)) | _ -> None);
            (if eb then ra else None);
            (if ea then rb else None);
          ]
      in
      match cands with
      | [] -> (None, ea && eb)
      | c :: cs -> (Some (List.fold_left (fun a x -> Regex.Alt (a, x)) c cs), ea && eb))
    | Alt (a, b) -> (
      let ra, ea = strip a and rb, eb = strip b in
      match (ra, rb) with
      | Some x, Some y -> (Some (Regex.Alt (x, y)), ea || eb)
      | Some x, None | None, Some x -> (Some x, ea || eb)
      | None, None -> (None, ea || eb))
    | Plus a -> (
      match strip a with
      | Some r, eps -> (Some (Regex.Plus r), eps)
      | None, eps -> (None, eps))
    | Star a -> (
      match strip a with Some r, _ -> (Some (Regex.Plus r), true) | None, _ -> (None, true))
    | Opt a ->
      let r, _ = strip a in
      (r, true)
  in
  match strip e with
  | Some r, false -> r
  | _ ->
    raise
      (Query.Translation_error
         (Printf.sprintf "path %s can match the empty word" (Regex.to_string e)))

let endpoint_term st i (e : Query.endpoint) =
  ignore st;
  match e with
  | Query.Var x -> v ("U" ^ x)
  | Query.Const c -> (
    ignore i;
    match int_of_string_opt c with
    | Some n when n >= 0 -> Ast.Const n
    | Some _ | None -> Ast.Const (Value.of_string c))

let program_union (qs : Query.t list) =
  (match qs with
  | [] -> raise (Query.Translation_error "empty union")
  | first :: rest ->
    List.iter
      (fun (q : Query.t) ->
        if q.heads <> first.Query.heads then
          raise (Query.Translation_error "union branches disagree on heads"))
      rest);
  let st = { rules = []; counter = 0 } in
  let qpred = "query" in
  let heads = List.map (fun h -> v ("U" ^ h)) (List.hd qs).heads in
  List.iter
    (fun (q : Query.t) ->
      let body =
        List.map
          (fun (a : Query.atom) ->
            let p = trans st (strip_path a.path) in
            atom p [ endpoint_term st 0 a.sub; endpoint_term st 1 a.obj ])
          q.atoms
      in
      add st { Ast.head = atom qpred heads; body; neg = [] })
    qs;
  let prog = { Ast.rules = List.rev st.rules; query = atom qpred heads } in
  Ast.check prog;
  prog

let program (q : Query.t) = program_union [ q ]
