(** Translation of UCRPQ queries to Datalog programs, the way a Datalog
    user of BigDatalog/Myria would write them: one predicate per regular
    sub-expression, closures as left-linear recursion, and the whole
    conjunction as the query rule.

    Because closures are written left-linear, a constant on the {e left}
    of a recursion naturally specialises the base case (what Magic Sets
    achieve), while a constant on the {e right} is only applied after the
    closure is computed — reproducing the asymmetry the paper attributes
    to Datalog engines (no fixpoint reversal, Sec. VI-A). *)

val edge_pred : string
(** Name of the extensional labelled edge predicate: [edge(Src, Label,
    Trg)]. The database passed to the evaluator must bind it. *)

val program : Rpq.Query.t -> Ast.program
(** @raise Rpq.Query.Translation_error on empty-word paths. *)

val program_union : Rpq.Query.t list -> Ast.program
(** Union of CRPQs: one query rule per branch, same head predicate.
    @raise Rpq.Query.Translation_error on empty list or mismatched
    heads. *)

val db_of_edges : Relation.Rel.t -> Eval.db
(** Wrap a labelled edge relation (any 3-column schema, read
    positionally) as the extensional database. *)
