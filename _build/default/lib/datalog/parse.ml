module Value = Relation.Value

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type token =
  | Ident of string
  | Int of int
  | Str of string
  | Lpar
  | Rpar
  | Comma
  | Turnstile (* :- *)
  | Query (* ?- *)
  | Dot
  | Bang (* ! — negation *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = ':'

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '%' ->
        let j = try String.index_from s i '\n' with Not_found -> n in
        go j acc
      | '(' -> go (i + 1) (Lpar :: acc)
      | ')' -> go (i + 1) (Rpar :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | '.' -> go (i + 1) (Dot :: acc)
      | '!' -> go (i + 1) (Bang :: acc)
      | ':' when i + 1 < n && s.[i + 1] = '-' -> go (i + 2) (Turnstile :: acc)
      | '?' when i + 1 < n && s.[i + 1] = '-' -> go (i + 2) (Query :: acc)
      | '"' ->
        let j = try String.index_from s (i + 1) '"' with Not_found -> fail "unterminated string" in
        go (j + 1) (Str (String.sub s (i + 1) (j - i - 1)) :: acc)
      | c when c >= '0' && c <= '9' ->
        let j = ref i in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        go !j (Int (int_of_string (String.sub s i (!j - i))) :: acc)
      | c when is_ident_char c ->
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        go !j (Ident (String.sub s i (!j - i)) :: acc)
      | c -> fail "unexpected character %C" c
  in
  go 0 []

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t what =
  match peek st with
  | Some t' when t' = t -> advance st
  | _ -> fail "expected %s" what

let parse_term st : Ast.term =
  match peek st with
  | Some (Int n) ->
    advance st;
    Ast.Const n
  | Some (Str s) ->
    advance st;
    Ast.Const (Value.of_string s)
  | Some (Ident id) ->
    advance st;
    if id.[0] >= 'A' && id.[0] <= 'Z' then Ast.Var id else Ast.Const (Value.of_string id)
  | _ -> fail "expected a term"

let parse_atom st : Ast.atom =
  match peek st with
  | Some (Ident pred) ->
    advance st;
    expect st Lpar "'('";
    let rec args acc =
      let t = parse_term st in
      match peek st with
      | Some Comma ->
        advance st;
        args (t :: acc)
      | Some Rpar ->
        advance st;
        List.rev (t :: acc)
      | _ -> fail "expected ',' or ')'"
    in
    { pred; args = args [] }
  | _ -> fail "expected a predicate name"

let atom s =
  let st = { toks = tokenize s } in
  let a = parse_atom st in
  (match peek st with None -> () | Some _ -> fail "trailing tokens after atom");
  a

let program s =
  let st = { toks = tokenize s } in
  let rules = ref [] in
  let query = ref None in
  let rec go () =
    match peek st with
    | None -> ()
    | Some Query ->
      advance st;
      let a = parse_atom st in
      expect st Dot "'.'";
      (match !query with
      | None -> query := Some a
      | Some _ -> fail "multiple query directives");
      go ()
    | Some _ ->
      let head = parse_atom st in
      expect st Turnstile "':-'";
      (* literals: atoms, possibly negated with '!' or the keyword 'not' *)
      let parse_lit () =
        match peek st with
        | Some Bang ->
          advance st;
          `Neg (parse_atom st)
        | Some (Ident "not") ->
          advance st;
          `Neg (parse_atom st)
        | _ -> `Pos (parse_atom st)
      in
      let rec body pos neg =
        let lit = parse_lit () in
        let pos, neg =
          match lit with `Pos a -> (a :: pos, neg) | `Neg a -> (pos, a :: neg)
        in
        match peek st with
        | Some Comma ->
          advance st;
          body pos neg
        | Some Dot ->
          advance st;
          (List.rev pos, List.rev neg)
        | _ -> fail "expected ',' or '.' in rule body"
      in
      let pos, neg = body [] [] in
      rules := { Ast.head; body = pos; neg } :: !rules;
      go ()
  in
  go ();
  match !query with
  | None -> fail "missing '?-' query directive"
  | Some q ->
    let p = { Ast.rules = List.rev !rules; query = q } in
    (try Ast.check p with Ast.Ill_formed m -> fail "%s" m);
    p
