(** Parser for the concrete Datalog syntax.

    {v
      tc(X, Y) :- edge(X, Y).
      tc(X, Z) :- tc(X, Y), edge(Y, Z).
      ?- tc(0, Y).
    v}

    Uppercase-initial identifiers are variables; lowercase identifiers
    and quoted strings are symbol constants; nonnegative integer literals
    are plain node constants. ['%'] starts a line comment. *)

exception Parse_error of string

val program : string -> Ast.program
(** @raise Parse_error *)

val atom : string -> Ast.atom
(** Parse a single atom like ["tc(X, 3)"]. *)
