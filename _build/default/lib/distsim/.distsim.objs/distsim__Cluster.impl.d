lib/distsim/cluster.ml: Array Domain Float Metrics Unix
