lib/distsim/cluster.mli: Metrics
