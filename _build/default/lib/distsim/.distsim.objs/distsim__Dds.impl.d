lib/distsim/dds.ml: Array Cluster List Metrics Relation
