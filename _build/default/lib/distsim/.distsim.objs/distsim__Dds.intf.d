lib/distsim/dds.mli: Cluster Relation
