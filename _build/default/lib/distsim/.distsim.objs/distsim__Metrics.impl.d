lib/distsim/metrics.ml: Format
