lib/distsim/metrics.mli: Format
