type t = { workers : int; parallel : bool; metrics : Metrics.t }

let make ?(parallel = false) ~workers () =
  if workers < 1 then invalid_arg "Cluster.make: workers < 1";
  { workers; parallel; metrics = Metrics.create () }

let workers c = c.workers
let parallel c = c.parallel
let metrics c = c.metrics

let clock_ns () = Unix.gettimeofday () *. 1e9

type 'a outcome = Value of 'a | Error of exn

let run_stage c f =
  let n = c.workers in
  let timed w =
    let t0 = clock_ns () in
    let r = try Value (f w) with e -> Error e in
    let t1 = clock_ns () in
    (r, t1 -. t0)
  in
  let results =
    if c.parallel && n > 1 then begin
      let domains = Array.init (n - 1) (fun i -> Domain.spawn (fun () -> timed (i + 1))) in
      let first = timed 0 in
      Array.append [| first |] (Array.map Domain.join domains)
    end
    else Array.init n timed
  in
  let max_ns = Array.fold_left (fun acc (_, t) -> Float.max acc t) 0. results in
  Metrics.record_stage c.metrics ~max_worker_ns:max_ns;
  Array.map (fun (r, _) -> match r with Value v -> v | Error e -> raise e) results
