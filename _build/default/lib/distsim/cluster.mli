(** A simulated cluster: a driver plus a fixed set of workers.

    Each worker owns one partition slot per dataset. Workers can execute
    their partition work on real OCaml domains ([parallel = true]) or
    sequentially (deterministic, default); in both modes the per-worker
    compute time is measured and the stage time is the maximum across
    workers, which is what a synchronous Spark stage would cost. *)

type t

val make : ?parallel:bool -> workers:int -> unit -> t
(** @raise Invalid_argument if [workers < 1]. *)

val workers : t -> int
val parallel : t -> bool
val metrics : t -> Metrics.t
(** The cluster-lifetime metric accumulator (reset between experiments
    with {!Metrics.reset}). *)

val run_stage : t -> (int -> 'a) -> 'a array
(** [run_stage c f] runs [f w] for every worker index [w] (possibly on
    domains), meters the stage (max per-worker time) and returns the
    per-worker results. Exceptions raised by any [f w] are re-raised on
    the driver. *)
