type t = {
  mutable shuffles : int;
  mutable shuffled_records : int;
  mutable shuffled_bytes : int;
  mutable broadcasts : int;
  mutable broadcast_records : int;
  mutable supersteps : int;
  mutable stages : int;
  mutable sim_time_ns : float;
}

let create () =
  {
    shuffles = 0;
    shuffled_records = 0;
    shuffled_bytes = 0;
    broadcasts = 0;
    broadcast_records = 0;
    supersteps = 0;
    stages = 0;
    sim_time_ns = 0.;
  }

let reset m =
  m.shuffles <- 0;
  m.shuffled_records <- 0;
  m.shuffled_bytes <- 0;
  m.broadcasts <- 0;
  m.broadcast_records <- 0;
  m.supersteps <- 0;
  m.stages <- 0;
  m.sim_time_ns <- 0.

let add acc m =
  acc.shuffles <- acc.shuffles + m.shuffles;
  acc.shuffled_records <- acc.shuffled_records + m.shuffled_records;
  acc.shuffled_bytes <- acc.shuffled_bytes + m.shuffled_bytes;
  acc.broadcasts <- acc.broadcasts + m.broadcasts;
  acc.broadcast_records <- acc.broadcast_records + m.broadcast_records;
  acc.supersteps <- acc.supersteps + m.supersteps;
  acc.stages <- acc.stages + m.stages;
  acc.sim_time_ns <- acc.sim_time_ns +. m.sim_time_ns

(* 8 bytes per field plus a fixed header, roughly Spark's unsafe row. *)
let tuple_bytes arity = 16 + (8 * arity)

let ns_per_shuffled_record = 150.
let ns_per_shuffle_round = 2_000_000.
let ns_per_broadcast_record = 60.

let record_stage m ~max_worker_ns =
  m.stages <- m.stages + 1;
  m.sim_time_ns <- m.sim_time_ns +. max_worker_ns

let record_shuffle m ~records ~bytes =
  m.shuffles <- m.shuffles + 1;
  m.shuffled_records <- m.shuffled_records + records;
  m.shuffled_bytes <- m.shuffled_bytes + bytes;
  m.sim_time_ns <-
    m.sim_time_ns +. ns_per_shuffle_round +. (float_of_int records *. ns_per_shuffled_record)

let record_broadcast m ~records =
  m.broadcasts <- m.broadcasts + 1;
  m.broadcast_records <- m.broadcast_records + records;
  m.sim_time_ns <- m.sim_time_ns +. (float_of_int records *. ns_per_broadcast_record)

let record_superstep m = m.supersteps <- m.supersteps + 1

let pp ppf m =
  Format.fprintf ppf
    "shuffles=%d (%d rec, %d B) broadcasts=%d (%d rec) supersteps=%d stages=%d sim_time=%.1fms"
    m.shuffles m.shuffled_records m.shuffled_bytes m.broadcasts m.broadcast_records m.supersteps
    m.stages (m.sim_time_ns /. 1e6)

let to_string m = Format.asprintf "%a" pp m
