(** Communication and execution metrics of a distributed run.

    Every wide operation (shuffle, distinct, shuffle join, collect) and
    every broadcast is metered here. The paper's central claim — P_plw
    needs one shuffle per fixpoint where P_gld needs one per iteration —
    is observable directly in these counters, independently of wall-clock
    noise. [sim_time_ns] accumulates a simulated parallel time:
    per stage, the maximum per-worker compute time, plus a latency model
    for each shuffle and broadcast. *)

type t = {
  mutable shuffles : int;  (** wide stages executed *)
  mutable shuffled_records : int;  (** tuples moved across workers *)
  mutable shuffled_bytes : int;
  mutable broadcasts : int;
  mutable broadcast_records : int;
  mutable supersteps : int;  (** driver-coordinated rounds *)
  mutable stages : int;  (** all stages, narrow included *)
  mutable sim_time_ns : float;
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc m] accumulates [m] into [acc]. *)

val tuple_bytes : int -> int
(** Serialized size model for a tuple of the given arity. *)

(** Latency model knobs (per-record network cost and per-round fixed
    cost, in simulated nanoseconds). *)

val ns_per_shuffled_record : float
val ns_per_shuffle_round : float
val ns_per_broadcast_record : float

val record_stage : t -> max_worker_ns:float -> unit
val record_shuffle : t -> records:int -> bytes:int -> unit
val record_broadcast : t -> records:int -> unit
val record_superstep : t -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string
