lib/graphgen/generators.ml: Array List Relation Rng
