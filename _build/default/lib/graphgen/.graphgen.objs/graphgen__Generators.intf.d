lib/graphgen/generators.mli: Relation
