lib/graphgen/rng.ml: Array Float Hashtbl Int64
