lib/graphgen/rng.mli:
