lib/graphgen/uniprot_like.ml: Array Hashtbl List Option Relation Rng
