lib/graphgen/uniprot_like.mli: Relation
