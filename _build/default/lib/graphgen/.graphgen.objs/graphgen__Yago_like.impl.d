lib/graphgen/yago_like.ml: Array Hashtbl List Relation Rng
