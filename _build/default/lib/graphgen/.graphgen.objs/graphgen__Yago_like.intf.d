lib/graphgen/yago_like.mli: Relation
