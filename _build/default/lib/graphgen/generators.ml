module Rel = Relation.Rel
module Schema = Relation.Schema
module Value = Relation.Value

let edge_schema = Schema.of_list [ "src"; "trg" ]
let labelled_schema = Schema.of_list [ "src"; "pred"; "trg" ]

let erdos_renyi ?(seed = 42) ~nodes ~p () =
  let rng = Rng.create seed in
  let r = Rel.create edge_schema in
  if p >= 0.1 && nodes <= 4096 then
    for i = 0 to nodes - 1 do
      for j = 0 to nodes - 1 do
        if i <> j && Rng.bool rng p then ignore (Rel.add r [| i; j |])
      done
    done
  else begin
    (* the paper's rnd_n_p sizes match m = p·n·(n−1)/2 sampled pairs *)
    let m = int_of_float (p *. float_of_int nodes *. float_of_int (nodes - 1) /. 2.) in
    let added = ref 0 and attempts = ref 0 in
    while !added < m && !attempts < m * 4 do
      incr attempts;
      let i = Rng.int rng nodes and j = Rng.int rng nodes in
      if i <> j && Rel.add r [| i; j |] then incr added
    done
  end;
  r

let random_tree ?(seed = 42) ~nodes () =
  let rng = Rng.create seed in
  let r = Rel.create edge_schema in
  for child = 1 to nodes - 1 do
    ignore (Rel.add r [| Rng.int rng child; child |])
  done;
  r

let preferential_attachment ?(seed = 42) ?(edges_per_node = 2) ~nodes () =
  let rng = Rng.create seed in
  let r = Rel.create edge_schema in
  (* endpoint pool: every edge endpoint appears once, giving linear
     preferential attachment *)
  let pool = ref [| 0 |] in
  let pool_len = ref 1 in
  let grow v =
    let arr = !pool in
    if !pool_len >= Array.length arr then begin
      let bigger = Array.make (max 16 (2 * Array.length arr)) 0 in
      Array.blit arr 0 bigger 0 !pool_len;
      pool := bigger
    end;
    !pool.(!pool_len) <- v;
    incr pool_len
  in
  for v = 1 to nodes - 1 do
    for _ = 1 to min edges_per_node v do
      let target = !pool.(Rng.int rng !pool_len) in
      if target <> v && Rel.add r [| v; target |] then begin
        grow v;
        grow target
      end
    done
  done;
  r

let chain ~nodes =
  let r = Rel.create edge_schema in
  for i = 0 to nodes - 2 do
    ignore (Rel.add r [| i; i + 1 |])
  done;
  r

let cycle ~nodes =
  let r = chain ~nodes in
  if nodes > 1 then ignore (Rel.add r [| nodes - 1; 0 |]);
  r

let add_labels ?(seed = 42) ~labels rel =
  let rng = Rng.create seed in
  let handles = Array.of_list (List.map Value.of_string labels) in
  let out = Rel.create labelled_schema in
  Rel.iter (fun tu -> ignore (Rel.add out [| tu.(0); Rng.pick rng handles; tu.(1) |])) rel;
  out

let labelled_chain ~labels ~segment =
  let out = Rel.create labelled_schema in
  let node = ref 0 in
  List.iter
    (fun l ->
      let h = Value.of_string l in
      for _ = 1 to segment do
        ignore (Rel.add out [| !node; h; !node + 1 |]);
        incr node
      done)
    labels;
  out
