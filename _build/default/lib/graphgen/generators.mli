(** Synthetic graph generators for the paper's datasets (Table I).

    Unlabelled graphs have schema [(src, trg)]; labelled graphs
    [(src, pred, trg)]. Node identifiers are nonnegative integers;
    labels are interned symbols. All generators are deterministic in
    their seed. *)

val erdos_renyi : ?seed:int -> nodes:int -> p:float -> unit -> Relation.Rel.t
(** The paper's rnd_n_p graphs. For small [p] the G(n, m) approximation
    is used (m = p·n·(n−1) sampled pairs), which matches the expected
    degree distribution. Self-loops are excluded. *)

val random_tree : ?seed:int -> nodes:int -> unit -> Relation.Rel.t
(** The paper's tree_n process: node i+1 is attached as a child of a
    uniformly random node of tree_i. Edges point parent -> child. *)

val preferential_attachment :
  ?seed:int -> ?edges_per_node:int -> nodes:int -> unit -> Relation.Rel.t
(** Scale-free graph (SNAP-like topologies). *)

val chain : nodes:int -> Relation.Rel.t
val cycle : nodes:int -> Relation.Rel.t

val add_labels : ?seed:int -> labels:string list -> Relation.Rel.t -> Relation.Rel.t
(** Assign each edge a uniformly random label from the list (the graphs
    "derived from rnd_p_n by adding a set of predefined labels"). *)

val labelled_chain : labels:string list -> segment:int -> Relation.Rel.t
(** A chain of |labels| segments of [segment] edges each, labelled in
    order — the worst-case instance for concatenated closures. *)
