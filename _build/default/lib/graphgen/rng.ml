type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty";
  arr.(int t (Array.length arr))

(* Inverse-CDF on the harmonic partial sums, computed lazily per (n, s)
   by binary search over cumulative weights. Cache the cumulative table
   for the last (n, s) asked, which is the common usage pattern. *)
let cache : (int * float, float array) Hashtbl.t = Hashtbl.create 4

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n <= 0";
  let cum =
    match Hashtbl.find_opt cache (n, s) with
    | Some c -> c
    | None ->
      let c = Array.make n 0. in
      let acc = ref 0. in
      for k = 0 to n - 1 do
        acc := !acc +. (1. /. Float.pow (float_of_int (k + 1)) s);
        c.(k) <- !acc
      done;
      Hashtbl.replace cache (n, s) c;
      c
  in
  let target = float t *. cum.(n - 1) in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cum.(mid) < target then bsearch (mid + 1) hi else bsearch lo mid
  in
  bsearch 0 (n - 1)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
