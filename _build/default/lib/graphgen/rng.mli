(** Deterministic splitmix64 random generator. Every generated dataset is
    a pure function of its seed, so experiments are reproducible. *)

type t

val create : int -> t
val copy : t -> t

val int : t -> int -> int
(** [int rng bound] in [0, bound). @raise Invalid_argument if bound <= 0. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool rng p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element. @raise Invalid_argument on empty array. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [0, n): rank k with probability proportional
    to 1/(k+1)^s. Uses a precomputation-free inverse-CDF approximation
    adequate for workload generation. *)

val shuffle : t -> 'a array -> unit
