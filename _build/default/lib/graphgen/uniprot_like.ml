module Rel = Relation.Rel
module Schema = Relation.Schema
module Value = Relation.Value
module Pred = Relation.Pred

let labelled_schema = Schema.of_list [ "src"; "pred"; "trg" ]

let predicates =
  [ "interacts"; "encodes"; "occurs"; "hasKeyword"; "reference"; "authoredBy"; "publishes" ]

(* Edge budget shares, loosely following the Uniprot gMark schema. *)
let shares =
  [
    ("interacts", 0.30);
    ("encodes", 0.10);
    ("occurs", 0.12);
    ("hasKeyword", 0.22);
    ("reference", 0.14);
    ("authoredBy", 0.09);
    ("publishes", 0.03);
  ]

let generate ?(seed = 11) ~scale () =
  let rng = Rng.create seed in
  let out = Rel.create labelled_schema in
  let next_id = ref 0 in
  let fresh_range n = Array.init n (fun _ -> let id = !next_id in incr next_id; id) in
  let handles = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace handles p (Value.of_string p)) predicates;
  let edge s p t = if s <> t then ignore (Rel.add out [| s; Hashtbl.find handles p; t |]) in
  let budget name = int_of_float (List.assoc name shares *. float_of_int scale) in
  let n_proteins = max 50 (scale / 4) in
  let proteins = fresh_range n_proteins in
  let genes = fresh_range (max 20 (n_proteins / 4)) in
  let tissues = fresh_range (max 10 (n_proteins / 40)) in
  let keywords = fresh_range (max 8 (n_proteins / 100)) in
  let publications = fresh_range (max 20 (n_proteins / 5)) in
  let authors = fresh_range (max 10 (n_proteins / 20)) in
  let journals = fresh_range (max 4 (n_proteins / 200)) in
  (* interacts: scale-free protein-protein links *)
  for _ = 1 to budget "interacts" do
    let a = proteins.(Rng.zipf rng ~n:n_proteins ~s:0.8) in
    let b = proteins.(Rng.int rng n_proteins) in
    edge a "interacts" b
  done;
  (* protein -> gene, so that the paper's (enc/-enc)+ walks start from
     proteins (as interacts/occurs/hasKeyword do) *)
  for _ = 1 to budget "encodes" do
    edge proteins.(Rng.int rng n_proteins) "encodes"
      genes.(Rng.zipf rng ~n:(Array.length genes) ~s:0.6)
  done;
  for _ = 1 to budget "occurs" do
    edge proteins.(Rng.int rng n_proteins) "occurs" tissues.(Rng.zipf rng ~n:(Array.length tissues) ~s:0.9)
  done;
  for _ = 1 to budget "hasKeyword" do
    edge proteins.(Rng.int rng n_proteins) "hasKeyword"
      keywords.(Rng.zipf rng ~n:(Array.length keywords) ~s:1.0)
  done;
  for _ = 1 to budget "reference" do
    edge proteins.(Rng.int rng n_proteins) "reference"
      publications.(Rng.zipf rng ~n:(Array.length publications) ~s:0.7)
  done;
  for _ = 1 to budget "authoredBy" do
    edge publications.(Rng.int rng (Array.length publications)) "authoredBy"
      authors.(Rng.zipf rng ~n:(Array.length authors) ~s:0.8)
  done;
  for _ = 1 to budget "publishes" do
    edge journals.(Rng.int rng (Array.length journals)) "publishes"
      publications.(Rng.int rng (Array.length publications))
  done;
  out

let most_frequent rel pred_name ~position =
  let h = Value.of_string pred_name in
  let counts = Hashtbl.create 256 in
  Rel.iter
    (fun tu ->
      if tu.(1) = h then begin
        let v = tu.(position) in
        Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
      end)
    rel;
  Hashtbl.fold
    (fun v c best ->
      match best with Some (_, c') when c' >= c -> best | _ -> Some (v, c))
    counts None
  |> Option.map fst

let frequent rel pred_name side =
  most_frequent rel pred_name ~position:(match side with `Src -> 0 | `Trg -> 2)

let some_keyword rel = most_frequent rel "hasKeyword" ~position:2
let some_publication rel = most_frequent rel "reference" ~position:2
let some_author rel = most_frequent rel "authoredBy" ~position:2
