(** Synthetic Uniprot-like protein graph (gMark substitute).

    Reproduces the schema of the paper's uniprot_n benchmark graphs
    (generated with gMark from the Uniprot database schema): proteins
    that [interacts] with each other (scale-free), [encodes]/[occurs]
    links to genes and tissues, [hasKeyword] to a small keyword
    vocabulary (Zipf-distributed reuse, so [(hKw/-hKw)+] has a huge
    closure), [reference] to publications, [authoredBy] to authors, and
    [publishes] from journals. The per-predicate in/out-degree
    distributions follow gMark's shapes (zipfian for hubs, uniform for
    one-to-few links).

    [scale] is the approximate number of edges. *)

val predicates : string list

val generate : ?seed:int -> scale:int -> unit -> Relation.Rel.t
(** Labelled (src, pred, trg) relation with roughly [scale] edges. *)

val frequent : Relation.Rel.t -> string -> [ `Src | `Trg ] -> Relation.Value.t option
(** The most frequent source/target node of a predicate — used to pick
    the constants of queries that need one (never fails on a graph that
    has at least one such edge). *)

val some_keyword : Relation.Rel.t -> Relation.Value.t option
(** A frequently-used keyword node, for queries with constants. *)

val some_publication : Relation.Rel.t -> Relation.Value.t option
val some_author : Relation.Rel.t -> Relation.Value.t option
