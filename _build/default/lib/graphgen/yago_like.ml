module Rel = Relation.Rel
module Schema = Relation.Schema
module Value = Relation.Value

let labelled_schema = Schema.of_list [ "src"; "pred"; "trg" ]

let predicates =
  [
    "isLocatedIn"; "dealsWith"; "livesIn"; "wasBornIn"; "isMarriedTo"; "hasChild";
    "influences"; "hasSuccessor"; "hasPredecessor"; "hasAcademicAdvisor"; "actedIn";
    "isConnectedTo"; "owns"; "type"; "rdfs:subClassOf"; "knows";
  ]

let named_countries =
  [ "Argentina"; "Japan"; "Sweden"; "United_States"; "USA"; "India"; "Germany"; "Netherlands" ]

let named_people = [ "Kevin_Bacon"; "John_Lawrence_Toole"; "Jay_Kappraff" ]

let constants =
  named_countries @ named_people @ [ "wikicat_Capitals_in_Europe"; "Shannon_Airport" ]

let generate ?(seed = 7) ~scale () =
  let rng = Rng.create seed in
  let out = Rel.create labelled_schema in
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let pred_handles = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace pred_handles p (Value.of_string p)) predicates;
  let edge s p t =
    if s <> t then ignore (Rel.add out [| s; Hashtbl.find pred_handles p; t |])
  in
  (* -------------------- locations -------------------- *)
  let countries =
    Array.of_list
      (List.map Value.of_string named_countries
      @ List.init 22 (fun _ -> fresh ()))
  in
  let n_regions = max 10 (scale / 100) in
  let regions = Array.init n_regions (fun _ -> fresh ()) in
  Array.iteri
    (fun i r ->
      (* region chains make isLocatedIn+ non-trivially deep *)
      if i > 0 && Rng.bool rng 0.3 then edge r "isLocatedIn" regions.(Rng.int rng i)
      else edge r "isLocatedIn" (Rng.pick rng countries))
    regions;
  let n_cities = max 20 (scale / 20) in
  let cities = Array.init n_cities (fun _ -> fresh ()) in
  let wce = Value.of_string "wikicat_Capitals_in_Europe" in
  Array.iter
    (fun c ->
      if Rng.bool rng 0.9 then edge c "isLocatedIn" (Rng.pick rng regions)
      else edge c "isLocatedIn" (Rng.pick rng countries);
      if Rng.bool rng 0.02 then edge c "type" wce)
    cities;
  (* countries trade with each other: dealsWith+ chains *)
  Array.iter
    (fun c ->
      for _ = 1 to 2 do
        edge c "dealsWith" (Rng.pick rng countries)
      done)
    countries;
  (* -------------------- people -------------------- *)
  let scale = max scale 100 in
  let people =
    Array.of_list (List.map Value.of_string named_people @ List.init (scale - 3) (fun _ -> fresh ()))
  in
  Array.iter
    (fun p ->
      edge p "livesIn" (Rng.pick rng cities);
      edge p "wasBornIn" (Rng.pick rng cities);
      if Rng.bool rng 0.3 then edge p "isMarriedTo" (Rng.pick rng people);
      if Rng.bool rng 0.6 then edge p "hasChild" (Rng.pick rng people);
      if Rng.bool rng 0.4 then edge p "hasChild" (Rng.pick rng people);
      if Rng.bool rng 0.2 then edge p "influences" (Rng.pick rng people);
      if Rng.bool rng 0.15 then edge p "hasSuccessor" (Rng.pick rng people);
      if Rng.bool rng 0.15 then edge p "hasPredecessor" (Rng.pick rng people);
      if Rng.bool rng 0.08 then edge p "hasAcademicAdvisor" (Rng.pick rng people);
      if Rng.bool rng 0.1 then edge p "knows" (Rng.pick rng people))
    people;
  (* -------------------- movies -------------------- *)
  let n_movies = max 10 (scale / 10) in
  let movies = Array.init n_movies (fun _ -> fresh ()) in
  let n_actors = max 20 (scale / 5) in
  let kevin = Value.of_string "Kevin_Bacon" in
  for _ = 1 to 6 do
    (* Kevin Bacon in popular movies *)
    edge kevin "actedIn" movies.(Rng.zipf rng ~n:n_movies ~s:1.1)
  done;
  for _ = 1 to n_actors do
    let actor = Rng.pick rng people in
    let k = 1 + Rng.int rng 4 in
    for _ = 1 to k do
      edge actor "actedIn" movies.(Rng.zipf rng ~n:n_movies ~s:1.1)
    done
  done;
  (* -------------------- airports -------------------- *)
  let n_airports = max 10 (scale / 200) in
  let airports =
    Array.of_list (Value.of_string "Shannon_Airport" :: List.init (n_airports - 1) (fun _ -> fresh ()))
  in
  Array.iter
    (fun a ->
      edge a "isLocatedIn" (Rng.pick rng cities);
      for _ = 1 to 3 do
        edge a "isConnectedTo" (Rng.pick rng airports)
      done)
    airports;
  (* -------------------- companies & ownership -------------------- *)
  let n_companies = max 5 (scale / 50) in
  let companies = Array.init n_companies (fun _ -> fresh ()) in
  Array.iter (fun c -> edge c "isLocatedIn" (Rng.pick rng cities)) companies;
  for _ = 1 to scale / 20 do
    edge (Rng.pick rng people) "owns" (Rng.pick rng companies)
  done;
  (* -------------------- class taxonomy -------------------- *)
  let n_classes = 30 in
  let classes = Array.init n_classes (fun _ -> fresh ()) in
  Array.iteri (fun i c -> if i > 0 then edge c "rdfs:subClassOf" classes.(Rng.int rng i)) classes;
  for _ = 1 to scale / 10 do
    edge (Rng.pick rng people) "type" (Rng.pick rng classes)
  done;
  out
