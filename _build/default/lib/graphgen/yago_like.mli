(** Synthetic Yago-like knowledge graph.

    Stands in for the paper's cleaned Yago 2s dataset (62 M labelled
    edges): a labelled graph with the predicates exercised by queries
    Q1–Q25 — a location DAG ([isLocatedIn] up to countries), country
    trade links ([dealsWith]), people with family/social edges, an
    actor–movie bipartite core (so [(actedIn/-actedIn)+] produces a large
    closure, with [Kevin_Bacon] present), airports with
    [isConnectedTo], company ownership, a class taxonomy, and [type]
    edges (with [wikicat_Capitals_in_Europe] typed capitals). Named
    constants used by the paper's queries are guaranteed to exist.

    The output has schema (src, pred, trg); [scale] controls the number
    of people (everything else is proportional). *)

val predicates : string list
(** All predicate names generated. *)

val constants : string list
(** Named entities guaranteed present (Japan, Kevin_Bacon, ...). *)

val generate : ?seed:int -> scale:int -> unit -> Relation.Rel.t
(** [scale] = number of people; a scale of 50_000 yields roughly
    400-500k edges. *)
