lib/harness/queries.ml: Array Datalog Fun Graphgen Hashtbl List Mura Printf Relation Rpq String Systems
