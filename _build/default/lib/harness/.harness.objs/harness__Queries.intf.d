lib/harness/queries.mli: Relation Rpq Systems
