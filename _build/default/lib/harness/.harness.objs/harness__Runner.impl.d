lib/harness/runner.ml: List Printf String Systems
