lib/harness/runner.mli: Systems
