lib/harness/systems.ml: Cost Datalog Distsim Format Fun List Localdb Mura Option Physical Pregel Printf Relation Rewrite Rpq Unix
