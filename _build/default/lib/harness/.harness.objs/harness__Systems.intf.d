lib/harness/systems.mli: Datalog Format Mura Relation
