module Rel = Relation.Rel
module Value = Relation.Value

type query_class = C1 | C2 | C3 | C4 | C5 | C6

let class_name = function
  | C1 -> "C1"
  | C2 -> "C2"
  | C3 -> "C3"
  | C4 -> "C4"
  | C5 -> "C5"
  | C6 -> "C6"

type spec = { id : string; classes : query_class list; text : string }

(* ------------------------------------------------------------------ *)
(* Automatic classification (Sec. V-D)                                 *)
(* ------------------------------------------------------------------ *)

let rec has_closure (e : Rpq.Regex.t) =
  match e with
  | Plus _ | Star _ -> true
  | Label _ -> false
  | Inv a | Opt a -> has_closure a
  | Seq (a, b) | Alt (a, b) -> has_closure a || has_closure b

(* top-level concatenation spine *)
let rec components (e : Rpq.Regex.t) =
  match e with Seq (a, b) -> components a @ components b | e -> [ e ]

let classify (q : Rpq.Query.t) =
  let found = Hashtbl.create 6 in
  let mark c = Hashtbl.replace found c () in
  List.iter
    (fun (a : Rpq.Query.atom) ->
      let comps = components a.path in
      let recs = List.map has_closure comps in
      let any_rec = List.exists Fun.id recs in
      (match (a.sub, a.obj, comps) with
      | Rpq.Query.Var _, Rpq.Query.Var _, [ c ] when has_closure c -> mark C1
      | _ -> ());
      if any_rec then begin
        (match a.obj with Rpq.Query.Const _ -> mark C2 | Rpq.Query.Var _ -> ());
        match a.sub with Rpq.Query.Const _ -> mark C3 | Rpq.Query.Var _ -> ()
      end;
      (* scan component pairs *)
      let arr = Array.of_list recs in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if arr.(i) && not arr.(j) then mark C4;
          if (not arr.(i)) && arr.(j) then mark C5
        done;
        if i + 1 < n && arr.(i) && arr.(i + 1) then mark C6
      done)
    q.atoms;
  List.filter (Hashtbl.mem found) [ C1; C2; C3; C4; C5; C6 ]

let mk id text = { id; text; classes = classify (Rpq.Query.parse text) }

(* Yago queries of Fig. 5, with the paper's abbreviations expanded:
   isL = isLocatedIn, dw = dealsWith, haa = hasAcademicAdvisor,
   SA = Shannon_Airport, JLT = John_Lawrence_Toole,
   wce = wikicat_Capitals_in_Europe. *)
let yago =
  List.map
    (fun (id, text) -> mk id text)
    [
      ("Q1", "?x <- ?x isMarriedTo/livesIn/isLocatedIn+/dealsWith+ Argentina");
      ("Q2", "?x <- ?x hasChild/livesIn/isLocatedIn+/dealsWith+ Japan");
      ("Q3", "?x <- ?x influences/livesIn/isLocatedIn+/dealsWith+ Sweden");
      ("Q4", "?x <- ?x livesIn/isLocatedIn+/dealsWith+ United_States");
      ("Q5", "?x <- ?x hasSuccessor/livesIn/isLocatedIn+/dealsWith+ India");
      ("Q6", "?x <- ?x hasPredecessor/livesIn/isLocatedIn+/dealsWith+ Germany");
      ("Q7", "?x <- ?x hasAcademicAdvisor/livesIn/isLocatedIn+/dealsWith+ Netherlands");
      ("Q8", "?x <- ?x isLocatedIn+/dealsWith+ United_States");
      ("Q9", "?x <- ?x (actedIn/-actedIn)+ Kevin_Bacon");
      ("Q10", "?area <- wikicat_Capitals_in_Europe -type/(isLocatedIn+/dealsWith dealsWith) ?area");
      ("Q11", "?person <- ?person (isMarriedTo+/owns/isLocatedIn+ owns/isLocatedIn+) USA");
      ("Q12", "?a, ?b <- ?a isLocatedIn+/dealsWith ?b");
      ("Q13", "?a, ?b <- ?a isLocatedIn+/dealsWith+ ?b");
      ("Q14", "?a, ?b, ?c <- ?a wasBornIn/isLocatedIn+ ?b, ?b isConnectedTo+ ?c");
      ("Q15", "?a, ?b, ?c <- ?a (isLocatedIn isConnectedTo)+ ?b, ?a wasBornIn ?c");
      ("Q16", "?a, ?b, ?c <- ?a wasBornIn/isLocatedIn+ Japan, ?b isConnectedTo+ ?c");
      ("Q17", "?a <- ?a isLocatedIn+/(isConnectedTo dealsWith)+ Japan");
      ("Q18", "?a, ?c <- ?a isLocatedIn+ Japan, ?a isConnectedTo+ ?c");
      ("Q19", "?a <- ?a isLocatedIn+/isLocatedIn Japan");
      ("Q20", "?a <- ?a isLocatedIn+/isConnectedTo+/dealsWith+ Japan");
      ("Q21", "?a, ?b <- ?a (isLocatedIn dealsWith rdfs:subClassOf isConnectedTo)+ ?b");
      ("Q22", "?a <- ?a (isConnectedTo/-isConnectedTo)+ Shannon_Airport");
      ("Q23", "?a <- ?a (wasBornIn/isLocatedIn/-wasBornIn)+ John_Lawrence_Toole");
      ("Q24", "?x <- Jay_Kappraff (livesIn/isLocatedIn/-livesIn)+ ?x");
      ("Q25", "?a, ?b <- ?a (actedIn/-actedIn)+/hasChild+ ?b");
    ]

(* Uniprot queries of Fig. 6: int = interacts, enc = encodes,
   occ = occurs, hKw = hasKeyword, ref = reference, auth = authoredBy,
   pub = publishes. The constant C depends on the query's shape and is
   picked from the graph. *)
let uniprot graph =
  let pick pred side fallback =
    match Graphgen.Uniprot_like.frequent graph pred side with
    | Some v -> Value.to_string v
    | None -> fallback
  in
  let protein = pick "interacts" `Src "0" in
  let gene = pick "encodes" `Src "0" in
  let publication = pick "authoredBy" `Src "0" in
  let journal = pick "publishes" `Src "0" in
  let tissue_user = pick "occurs" `Src "0" in
  List.map
    (fun (id, text) -> mk id text)
    [
      ("Q26", "?x, ?y <- ?x -hasKeyword/(reference/-reference)+ ?y");
      ("Q27", "?x, ?y <- ?x -hasKeyword/(encodes/-encodes)+ ?y");
      ("Q28", "?x, ?y <- ?x -hasKeyword/(occurs/-occurs)+ ?y");
      ("Q29", "?x, ?y <- ?x interacts/(encodes/-encodes)+ ?y");
      ("Q30", "?x, ?y <- ?x interacts/(occurs/-occurs)+ ?y");
      ("Q31", "?x, ?y <- ?x interacts+/(occurs/-occurs)+ ?y");
      ("Q32", "?x, ?y <- ?x interacts+/(encodes/-encodes)+ ?y");
      ("Q33", "?x, ?y <- ?x interacts+/(occurs/-occurs)+/(hasKeyword/-hasKeyword)+ ?y");
      ("Q34", "?x, ?y <- ?x -hasKeyword/interacts/reference/(authoredBy/-authoredBy)+ ?y");
      ("Q35", "?x, ?y <- ?x (encodes/-encodes)+/hasKeyword ?y");
      ("Q36", Printf.sprintf "?x <- ?x (encodes/-encodes)+ %s" gene);
      ("Q37", "?x, ?y, ?z, ?t <- ?x (encodes/-encodes)+ ?y, ?x interacts+ ?z, ?x reference ?t");
      ( "Q38",
        Printf.sprintf "?x, ?y <- ?x (interacts (encodes/-encodes))+ ?y, %s (occurs/-occurs)+ ?y"
          tissue_user );
      ( "Q39",
        Printf.sprintf "?x <- ?x interacts+/reference ?y, %s (authoredBy/-authoredBy)+ ?y"
          publication );
      ( "Q40",
        Printf.sprintf
          "?x <- ?x interacts+/reference ?y, %s -publishes/(authoredBy/-authoredBy)+ ?y" journal
      );
      ("Q41", Printf.sprintf "?x <- %s -publishes/(authoredBy/-authoredBy)+ ?x" journal);
      ("Q42", "?x, ?y <- ?x -occurs/interacts+/occurs ?y");
      ("Q43", "?x, ?y <- ?x (-reference/reference)+ ?y");
      ("Q44", "?x, ?y <- ?x interacts/reference/(-reference/reference)+ ?y");
      ("Q45", Printf.sprintf "?x <- %s (reference/-reference)+ ?x" protein);
      ("Q46", "?x, ?y <- ?x (-reference/reference)+/(authoredBy -publishes) ?y");
      ("Q47", Printf.sprintf "?x <- ?x (encodes/-encodes occurs/-occurs)+ %s" protein);
      ("Q48", Printf.sprintf "?x <- %s interacts/(encodes/-encodes occurs/-occurs)+ ?x" protein);
      ("Q49", Printf.sprintf "?x <- %s (occurs/-occurs)+ ?x" tissue_user);
    ]

let concat_closure ~labels =
  Printf.sprintf "?x, ?y <- ?x %s ?y" (String.concat "/" (List.map (fun l -> l ^ "+") labels))

(* ------------------------------------------------------------------ *)
(* Non-regular mu-RA queries and their Datalog forms                   *)
(* ------------------------------------------------------------------ *)

let same_generation_workload graph =
  let datalog =
    Datalog.Parse.program
      "sg(X, Y) :- edge(P, X), edge(P, Y).\n\
       sg(X, Y) :- edge(A, X), sg(A, B), edge(B, Y).\n\
       ?- sg(X, Y)."
  in
  Systems.of_mu ~datalog graph (Mura.Patterns.same_generation ())

let datalog_const v =
  if Value.is_symbol v then Printf.sprintf "\"%s\"" (Value.to_string v)
  else string_of_int v

let reach_workload graph source =
  let datalog =
    Datalog.Parse.program
      (Printf.sprintf
         "r(Y) :- edge(%s, Y).\nr(Y) :- r(X), edge(X, Y).\n?- r(Y)."
         (datalog_const source))
  in
  Systems.of_mu ~datalog graph (Mura.Patterns.reach source)

let anbn_workload graph ~a ~b =
  let datalog =
    Datalog.Parse.program
      (Printf.sprintf
         "ea(X, Y) :- edge(X, \"%s\", Y).\n\
          eb(X, Y) :- edge(X, \"%s\", Y).\n\
          anbn(X, Y) :- ea(X, M), eb(M, Y).\n\
          anbn(X, Y) :- ea(X, M), anbn(M, N), eb(N, Y).\n\
          ?- anbn(X, Y)."
         a b)
  in
  Systems.of_mu ~datalog graph (Mura.Patterns.anbn ~rel:"E" ~a ~b ())
