type row = { label : string; cells : (string * Systems.outcome) list }

let run_one ?(timeout_s = 60.) (s : Systems.system) w = s.run ~timeout_s w

let run_matrix ?(timeout_s = 60.) ~systems workloads =
  List.map
    (fun (label, w) ->
      {
        label;
        cells = List.map (fun (s : Systems.system) -> (s.name, run_one ~timeout_s s w)) systems;
      })
    workloads

let cell_text = function
  | Systems.Success s -> Printf.sprintf "%.3f" s.wall_s
  | Systems.Failed _ -> "fail"
  | Systems.Timeout _ -> "t/o"

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let print_table ?(extra = []) ~title ~columns rows =
  Printf.printf "\n== %s ==\n" title;
  let extra_names = List.map fst extra in
  let headers = ("query" :: columns) @ extra_names in
  let cell_of row col =
    match List.assoc_opt col row.cells with Some o -> cell_text o | None -> "-"
  in
  let extra_of row (name, f) =
    ignore name;
    match row.cells with (_, o) :: _ -> f o | [] -> "-"
  in
  let body =
    List.map
      (fun row ->
        (row.label :: List.map (cell_of row) columns)
        @ List.map (extra_of row) extra)
      rows
  in
  let all_rows = headers :: body in
  let widths =
    List.mapi
      (fun i _ -> List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) 0 all_rows)
      headers
  in
  let print_row r =
    print_string
      (String.concat "  " (List.map2 (fun w s -> pad w s) widths r));
    print_newline ()
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row body

let print_series ~title ~x_label blocks =
  Printf.printf "\n== %s ==\n" title;
  List.iter
    (fun (x, rows) ->
      Printf.printf "-- %s = %s --\n" x_label x;
      List.iter
        (fun row ->
          Printf.printf "  %-28s %s\n" row.label
            (String.concat "  "
               (List.map (fun (name, o) -> Printf.sprintf "%s=%s" name (cell_text o)) row.cells)))
        rows)
    blocks
