(** Experiment runner: execute a matrix of (query × system) workloads and
    print the paper-style result tables. *)

type row = { label : string; cells : (string * Systems.outcome) list }

val run_one :
  ?timeout_s:float -> Systems.system -> Systems.workload -> Systems.outcome
(** Default timeout 60 s (scaled-down version of the paper's 1000 s). *)

val run_matrix :
  ?timeout_s:float ->
  systems:Systems.system list ->
  (string * Systems.workload) list ->
  row list
(** One row per workload, one cell per system. *)

val cell_text : Systems.outcome -> string
(** "1.234" (seconds), "fail", or "t/o". *)

val print_table :
  ?extra:(string * (Systems.outcome -> string)) list ->
  title:string -> columns:string list -> row list -> unit
(** Aligned text table on stdout: label column, one column per system
    (matched by name against the cells), optional derived columns
    computed from the first system's outcome. *)

val print_series : title:string -> x_label:string -> (string * row list) list -> unit
(** For figure-style output: one block per x value. *)
