lib/localdb/instance.ml: Format Hashtbl List Mura Plan Printf Relation
