lib/localdb/instance.mli: Mura Relation
