lib/localdb/plan.ml: Format Hashtbl Relation
