lib/localdb/plan.mli: Format Relation
