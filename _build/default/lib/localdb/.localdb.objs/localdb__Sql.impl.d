lib/localdb/sql.ml: Array Format Instance List Option Plan Relation String
