lib/localdb/sql.mli: Instance Relation
