lib/localdb/to_sql.ml: Format List Mura Printf Relation String
