lib/localdb/to_sql.mli: Mura
