(** A small SQL dialect for the local engine — the concrete query
    language of the per-worker database, mirroring how Dist-mu-RA ships
    SQL text to its PostgreSQL backends.

    Supported grammar (set semantics throughout — every SELECT is
    implicitly DISTINCT):

    {v
    stmt   := [WITH RECURSIVE cte ("," cte)*] select
    cte    := name AS "(" select ")"
    select := SELECT cols FROM item (JOIN item ON eqs)* [WHERE eqs]
            | select UNION select
    cols   := "*" | col ("," col)*       col := [tbl "."] name [AS name]
    item   := name [alias] | "(" select ")" alias
    eqs    := eq (AND eq)*               eq := ref "=" (ref | literal)
                                         ref := [tbl "."] name
    literal := integer | 'string'
    v}

    A recursive CTE must be a UNION whose left branch does not reference
    the CTE; it is evaluated with the work-table loop (semi-naive), as
    PostgreSQL does. Keywords are case-insensitive. *)

exception Sql_error of string

val query : Instance.t -> string -> Relation.Rel.t
(** Parse, plan and execute against the catalog. @raise Sql_error *)

val explain : Instance.t -> string -> string
(** The compiled operator tree. @raise Sql_error *)
