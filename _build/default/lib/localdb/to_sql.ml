module Schema = Relation.Schema
module Value = Relation.Value
module Pred = Relation.Pred
module Term = Mura.Term
module Typing = Mura.Typing
module Fcond = Mura.Fcond

exception Unsupported of string

let fail fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type st = { mutable ctes : (string * string) list; mutable counter : int }

let fresh st prefix =
  let n = st.counter in
  st.counter <- n + 1;
  Printf.sprintf "%s%d" prefix n

let literal v = if Value.is_symbol v then Printf.sprintf "'%s'" (Value.to_string v) else string_of_int v

let rec pred_sql alias (p : Pred.t) =
  match p with
  | True -> "1 = 1"
  | Eq_const (c, v) -> Printf.sprintf "%s.%s = %s" alias c (literal v)
  | Eq_col (a, b) -> Printf.sprintf "%s.%s = %s.%s" alias a alias b
  | And (a, b) -> Printf.sprintf "%s AND %s" (pred_sql alias a) (pred_sql alias b)
  | Neq_const _ | Lt_const _ | Gt_const _ | Or _ | Not _ ->
    fail "predicate %s not expressible in the local SQL dialect" (Pred.to_string p)

(* Every generated query selects its columns explicitly, in schema
   order, so UNION branches line up. Returns the SELECT text. *)
let rec select_of st tenv vars (t : Term.t) : string =
  let schema = Typing.infer ~vars tenv t in
  let cols = Schema.cols schema in
  match t with
  | Rel n -> Printf.sprintf "SELECT %s FROM %s" (String.concat ", " cols) n
  | Var x ->
    (* recursive variables are bound to CTE names *)
    Printf.sprintf "SELECT %s FROM %s" (String.concat ", " cols) x
  | Cst _ -> fail "constant relations are not expressible in SQL text"
  | Select (p, u) ->
    let a = fresh st "t" in
    Printf.sprintf "SELECT %s FROM (%s) %s WHERE %s"
      (String.concat ", " (List.map (fun c -> a ^ "." ^ c) cols))
      (select_of st tenv vars u) a (pred_sql a p)
  | Project (keep, u) ->
    let a = fresh st "t" in
    Printf.sprintf "SELECT %s FROM (%s) %s"
      (String.concat ", " (List.map (fun c -> a ^ "." ^ c) keep))
      (select_of st tenv vars u) a
  | Antiproject (_, u) ->
    let a = fresh st "t" in
    Printf.sprintf "SELECT %s FROM (%s) %s"
      (String.concat ", " (List.map (fun c -> a ^ "." ^ c) cols))
      (select_of st tenv vars u) a
  | Rename (m, u) ->
    let a = fresh st "t" in
    let inner_schema = Typing.infer ~vars tenv u in
    let select_list =
      List.map
        (fun c ->
          match List.assoc_opt c m with
          | Some fresh_name -> Printf.sprintf "%s.%s AS %s" a c fresh_name
          | None -> a ^ "." ^ c)
        (Schema.cols inner_schema)
    in
    Printf.sprintf "SELECT %s FROM (%s) %s" (String.concat ", " select_list)
      (select_of st tenv vars u) a
  | Join (l, r) ->
    let la = fresh st "t" and ra = fresh st "t" in
    let ls = Typing.infer ~vars tenv l and rs = Typing.infer ~vars tenv r in
    let shared = Schema.common ls rs in
    let out =
      List.map (fun c -> la ^ "." ^ c) (Schema.cols ls)
      @ List.filter_map
          (fun c -> if Schema.mem ls c then None else Some (ra ^ "." ^ c))
          (Schema.cols rs)
    in
    let on_clause =
      match shared with
      | [] -> ""
      | _ ->
        " ON "
        ^ String.concat " AND "
            (List.map (fun c -> Printf.sprintf "%s.%s = %s.%s" la c ra c) shared)
    in
    Printf.sprintf "SELECT %s FROM (%s) %s JOIN (%s) %s%s" (String.concat ", " out)
      (select_of st tenv vars l) la (select_of st tenv vars r) ra on_clause
  | Union (a, b) ->
    (* both branches select the same columns in [cols] order *)
    let project_to branch =
      let al = fresh st "t" in
      Printf.sprintf "SELECT %s FROM (%s) %s"
        (String.concat ", " (List.map (fun c -> al ^ "." ^ c) cols))
        (select_of st tenv vars branch) al
    in
    Printf.sprintf "%s UNION %s" (project_to a) (project_to b)
  | Antijoin _ -> fail "antijoin is not expressible in the local SQL dialect"
  | Fix (x, body) ->
    let consts, recs = Fcond.split ~var:x body in
    (match consts with
    | [] -> fail "fixpoint without constant part"
    | _ -> ());
    let cte = fresh st "fix" in
    let seed =
      match List.map (select_of st tenv vars) consts with
      | [ s ] -> s
      | ss -> String.concat " UNION " ss
    in
    (* the recursion variable becomes a reference to the CTE itself,
       typed as a relation of the fixpoint's schema *)
    let tenv' = Typing.env_add tenv cte schema in
    let rec_branches =
      List.map (fun b -> select_of st tenv' vars (Term.subst x (Term.Rel cte) b)) recs
    in
    let body_sql = String.concat " UNION " (seed :: rec_branches) in
    st.ctes <- (cte, body_sql) :: st.ctes;
    Printf.sprintf "SELECT %s FROM %s" (String.concat ", " cols) cte

let of_term tenv t =
  let st = { ctes = []; counter = 0 } in
  let main = select_of st tenv [] t in
  match st.ctes with
  | [] -> main
  | ctes ->
    let defs =
      List.rev_map (fun (name, body) -> Printf.sprintf "%s AS (%s)" name body) ctes
    in
    Printf.sprintf "WITH RECURSIVE %s %s" (String.concat ", " defs) main
