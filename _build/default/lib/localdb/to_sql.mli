(** mu-RA to SQL translation — the text the distributed engine ships to
    its per-worker databases (the paper's P_plw^pg translates the
    fixpoint expression "to a PostgreSQL query").

    Fixpoints become [WITH RECURSIVE] CTEs (hoisted to the top of the
    statement, in dependency order); the other operators map to
    SELECT/JOIN/WHERE/UNION. Not all of mu-RA is expressible in the
    local dialect: antijoins, constant relations and non-equality
    predicates raise {!Unsupported}. *)

exception Unsupported of string

val of_term : Mura.Typing.env -> Mura.Term.t -> string
(** @raise Unsupported / Mura.Typing.Type_error *)
