lib/mura/agg.ml: Array Eval Hashtbl List Relation
