lib/mura/agg.mli: Eval Relation
