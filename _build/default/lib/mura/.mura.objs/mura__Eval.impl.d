lib/mura/eval.ml: Fcond Format List Printf Relation Term Typing
