lib/mura/eval.mli: Relation Term Typing
