lib/mura/fcond.ml: Format List Printf String Term
