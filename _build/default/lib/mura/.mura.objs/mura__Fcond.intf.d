lib/mura/fcond.mli: Term
