lib/mura/patterns.ml: Relation Term
