lib/mura/patterns.mli: Relation Term
