lib/mura/stabilizer.ml: Fcond List Printf Relation String Term Typing
