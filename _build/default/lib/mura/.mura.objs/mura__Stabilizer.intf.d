lib/mura/stabilizer.mli: Relation Term Typing
