lib/mura/term.ml: Format Hashtbl List Printf Relation String
