lib/mura/term.mli: Format Relation
