lib/mura/typing.ml: Fcond Format List Relation Term
