lib/mura/typing.mli: Relation Term
