module Rel = Relation.Rel
module Schema = Relation.Schema
module Tuple = Relation.Tuple
module Tset = Relation.Tset
module Pred = Relation.Pred

module H = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let fixpoint_min ~key ~value ~init ~step () =
  (* canonical layout: key columns then value *)
  let canon = Schema.of_list (key @ [ value ]) in
  let relayout r = Rel.relayout canon r in
  let init = relayout init in
  let nkeys = List.length key in
  let best : int H.t = H.create 1024 in
  let key_of tu = Array.sub tu 0 nkeys in
  (* returns the improved tuples of [r] and updates [best] *)
  let improve r =
    let out = Tset.create () in
    Rel.iter
      (fun tu ->
        let k = key_of tu in
        let v = tu.(nkeys) in
        match H.find_opt best k with
        | Some v' when v' <= v -> ()
        | _ ->
          H.replace best k v;
          ignore (Tset.add out tu))
      r;
    (* within one batch, several values per key may appear: keep the
       final best only *)
    let pruned = Tset.create () in
    Tset.iter
      (fun tu -> if H.find best (key_of tu) = tu.(nkeys) then ignore (Tset.add pruned tu))
      out;
    Rel.of_tset canon pruned
  in
  let rec loop delta =
    if not (Rel.is_empty delta) then begin
      let produced = relayout (step delta) in
      loop (improve produced)
    end
  in
  loop (improve init);
  let result = Rel.create canon in
  H.iter (fun k v -> ignore (Rel.add result (Array.append k [| v |]))) best;
  result

(* one relaxation: dist(s, m) + edge(m, t, w) -> (s, t, dist + w) *)
let relax_step env ~edges ~key_src delta =
  let e = Eval.env_find env edges in
  let joined =
    Rel.natural_join
      (Rel.rename [ ("trg", "_mid"); ("weight", "_d") ] delta)
      (Rel.rename [ ("src", "_mid"); ("weight", "_w") ] e)
  in
  let out_schema =
    Schema.of_list (if key_src then [ "src"; "trg"; "weight" ] else [ "trg"; "weight" ])
  in
  let out = Rel.create out_schema in
  let js = Rel.schema joined in
  let pos c = Schema.index_of js c in
  let p_mid = pos "_d" and p_w = pos "_w" and p_trg = pos "trg" in
  let p_src = if key_src then Some (pos "src") else None in
  Rel.iter
    (fun tu ->
      let d = tu.(p_mid) + tu.(p_w) in
      match p_src with
      | Some ps -> ignore (Rel.add out [| tu.(ps); tu.(p_trg); d |])
      | None -> ignore (Rel.add out [| tu.(p_trg); d |]))
    joined;
  out

let shortest_paths_seeded env ~edges ~seeds =
  let init = Rel.relayout (Schema.of_list [ "src"; "trg"; "weight" ]) seeds in
  fixpoint_min ~key:[ "src"; "trg" ] ~value:"weight" ~init
    ~step:(relax_step env ~edges ~key_src:true)
    ()

let shortest_paths env ~edges =
  shortest_paths_seeded env ~edges ~seeds:(Eval.env_find env edges)

let shortest_paths_from env ~edges ~source =
  let e = Eval.env_find env edges in
  let init =
    Rel.antiproject [ "src" ] (Rel.select (Pred.Eq_const ("src", source)) e)
  in
  fixpoint_min ~key:[ "trg" ] ~value:"weight" ~init
    ~step:(relax_step env ~edges ~key_src:false)
    ()
