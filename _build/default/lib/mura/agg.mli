(** Aggregate fixpoints — the extension direction the paper discusses via
    RaSQL/BigDatalog (aggregates inside recursion).

    A {e min-fixpoint} maintains, per key, the smallest value seen; the
    semi-naive delta is the set of {e improved} tuples, which prunes the
    search the way Bellman-Ford relaxation does. This implements weighted
    shortest paths, which plain F_cond fixpoints cannot express (min is
    not monotone under set union of results). *)

val fixpoint_min :
  key:string list ->
  value:string ->
  init:Relation.Rel.t ->
  step:(Relation.Rel.t -> Relation.Rel.t) ->
  unit ->
  Relation.Rel.t
(** [fixpoint_min ~key ~value ~init ~step ()] iterates [step] on the
    improved-tuple delta until no key improves. [init] and every [step]
    result must carry exactly the columns [key @ [value]] (any order).
    @raise Relation.Schema.Schema_error on schema mismatch. *)

val shortest_paths : Eval.env -> edges:string -> Relation.Rel.t
(** All-pairs weighted shortest paths over a relation
    [(src, trg, weight)] (nonnegative integer weights): the relation
    [(src, trg, weight)] with the minimal path weight per pair. *)

val shortest_paths_seeded :
  Eval.env -> edges:string -> seeds:Relation.Rel.t -> Relation.Rel.t
(** Shortest paths restricted to those beginning with a seed arc
    ((src, trg, weight) tuples) — the per-worker computation of the
    distributed plan: [src] is stable under relaxation, so seeds
    partitioned by [src] yield disjoint results. *)

val shortest_paths_from :
  Eval.env -> edges:string -> source:Relation.Value.t -> Relation.Rel.t
(** Single-source variant: schema [(trg, weight)]. *)
