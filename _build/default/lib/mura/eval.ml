module R = Relation.Rel
module Schema = Relation.Schema

exception Eval_error of string

let err fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

type env = (string * R.t) list

let env bindings = bindings
let env_add e n r = (n, r) :: e

let env_find e n =
  match List.assoc_opt n e with Some r -> r | None -> err "unbound relation %S" n

let typing_env e = Typing.env (List.map (fun (n, r) -> (n, R.schema r)) e)

type stats = {
  mutable iterations : int;
  mutable delta_tuples : int;
  mutable peak_relation : int;
}

let fresh_stats () = { iterations = 0; delta_tuples = 0; peak_relation = 0 }

let record_size stats r =
  match stats with
  | Some s -> s.peak_relation <- max s.peak_relation (R.cardinal r)
  | None -> ()

let fixpoint ?stats ~init ~step () =
  let x = R.copy init in
  let schema = R.schema x in
  let rec loop delta =
    (match stats with
    | Some s ->
      s.iterations <- s.iterations + 1;
      s.delta_tuples <- s.delta_tuples + R.cardinal delta
    | None -> ());
    let produced = R.relayout schema (step delta) in
    let fresh = R.diff produced x in
    if R.is_empty fresh then ()
    else begin
      ignore (R.union_into x fresh);
      record_size stats x;
      loop fresh
    end
  in
  if not (R.is_empty x) then loop (R.copy init);
  x

let rec eval ?stats ?(vars = []) e t =
  let recur = eval ?stats ~vars e in
  let result =
    match (t : Term.t) with
    | Rel n -> env_find e n
    | Var x -> (
      match List.assoc_opt x vars with
      | Some r -> r
      | None -> err "unbound recursive variable %S" x)
    | Cst r -> r
    | Select (p, u) -> R.select p (recur u)
    | Project (keep, u) -> R.project keep (recur u)
    | Antiproject (drop, u) -> R.antiproject drop (recur u)
    | Rename (m, u) -> R.rename m (recur u)
    | Join (a, b) -> R.natural_join (recur a) (recur b)
    | Antijoin (a, b) -> R.antijoin (recur a) (recur b)
    | Union (a, b) -> R.union (recur a) (recur b)
    | Fix (x, body) -> (
      let consts, recs = Fcond.split ~var:x body in
      match consts with
      | [] -> raise (Fcond.Not_fcond (Printf.sprintf "fixpoint on %s has no constant part" x))
      | c0 :: rest ->
        let init =
          List.fold_left (fun acc c -> R.union acc (recur c)) (recur c0) rest
        in
        (match recs with
        | [] -> init
        | _ ->
          let schema = R.schema init in
          let step delta =
            let out = R.create schema in
            List.iter
              (fun branch ->
                ignore (R.union_into out (eval ?stats ~vars:((x, delta) :: vars) e branch)))
              recs;
            out
          in
          fixpoint ?stats ~init ~step ()))
  in
  record_size stats result;
  result

let eval_naive ?(max_iter = 10_000) e t =
  let tenv = typing_env e in
  let rec go vars var_schemas t =
    match (t : Term.t) with
    | Rel n -> env_find e n
    | Var x -> (
      match List.assoc_opt x vars with
      | Some r -> r
      | None -> err "unbound recursive variable %S" x)
    | Cst r -> r
    | Select (p, u) -> R.select p (go vars var_schemas u)
    | Project (keep, u) -> R.project keep (go vars var_schemas u)
    | Antiproject (drop, u) -> R.antiproject drop (go vars var_schemas u)
    | Rename (m, u) -> R.rename m (go vars var_schemas u)
    | Join (a, b) -> R.natural_join (go vars var_schemas a) (go vars var_schemas b)
    | Antijoin (a, b) -> R.antijoin (go vars var_schemas a) (go vars var_schemas b)
    | Union (a, b) -> R.union (go vars var_schemas a) (go vars var_schemas b)
    | Fix (x, body) ->
      let schema = Typing.fix_schema ~vars:var_schemas tenv ~var:x body in
      let rec iterate i current =
        if i > max_iter then err "naive evaluation exceeded %d iterations" max_iter;
        let next =
          R.relayout schema (go ((x, current) :: vars) ((x, schema) :: var_schemas) body)
        in
        if R.equal next current then current else iterate (i + 1) next
      in
      iterate 0 (R.create schema)
  in
  go [] [] t
