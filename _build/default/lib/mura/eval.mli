(** Centralized evaluation of mu-RA terms.

    Fixpoints are evaluated semi-naively (Algorithm 1 of the paper): the
    variable part is applied to the per-iteration delta only, which is
    sound under F_cond by Prop. 1. A naive evaluator is provided as a
    test oracle. *)

exception Eval_error of string

type env
(** Binds free database-relation names to relations. *)

val env : (string * Relation.Rel.t) list -> env
val env_add : env -> string -> Relation.Rel.t -> env
val env_find : env -> string -> Relation.Rel.t
val typing_env : env -> Typing.env

type stats = {
  mutable iterations : int;  (** total fixpoint iterations *)
  mutable delta_tuples : int;  (** total tuples across all deltas *)
  mutable peak_relation : int;  (** largest relation materialised *)
}

val fresh_stats : unit -> stats

val fixpoint :
  ?stats:stats -> init:Relation.Rel.t -> step:(Relation.Rel.t -> Relation.Rel.t) -> unit ->
  Relation.Rel.t
(** Generic semi-naive driver: start from [init], repeatedly apply [step]
    to the set of tuples new in the previous round, stop when no new
    tuple appears. [step] receives the delta and may return any layout of
    the fixpoint schema. *)

val eval : ?stats:stats -> ?vars:(string * Relation.Rel.t) list -> env -> Term.t -> Relation.Rel.t
(** Semi-naive evaluation.
    @raise Eval_error on unbound names
    @raise Fcond.Not_fcond on fixpoints violating F_cond *)

val eval_naive : ?max_iter:int -> env -> Term.t -> Relation.Rel.t
(** Naive evaluation: recompute the whole body each round starting from
    the empty relation. Test oracle; [max_iter] (default 10_000) guards
    against non-terminating terms. @raise Eval_error on exceeding it. *)
