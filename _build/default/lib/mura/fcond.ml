open Term

exception Not_fcond of string

let fail fmt = Format.kasprintf (fun s -> raise (Not_fcond s)) fmt
let constant_in var t = not (has_free_var var t)

let rec is_positive ~var = function
  | Rel _ | Var _ | Cst _ -> true
  | Select (_, u) | Project (_, u) | Antiproject (_, u) | Rename (_, u) -> is_positive ~var u
  | Join (a, b) | Union (a, b) -> is_positive ~var a && is_positive ~var b
  | Antijoin (a, b) -> is_positive ~var a && is_positive ~var b && constant_in var b
  | Fix (x, body) -> String.equal x var || is_positive ~var body

let rec is_linear ~var = function
  | Rel _ | Var _ | Cst _ -> true
  | Select (_, u) | Project (_, u) | Antiproject (_, u) | Rename (_, u) -> is_linear ~var u
  | Union (a, b) -> is_linear ~var a && is_linear ~var b
  | Join (a, b) | Antijoin (a, b) ->
    (constant_in var a || constant_in var b) && is_linear ~var a && is_linear ~var b
  | Fix (x, body) -> String.equal x var || is_linear ~var body

let rec is_non_mutually_recursive ~var = function
  | Rel _ | Var _ | Cst _ -> true
  | Select (_, u) | Project (_, u) | Antiproject (_, u) | Rename (_, u) ->
    is_non_mutually_recursive ~var u
  | Join (a, b) | Antijoin (a, b) | Union (a, b) ->
    is_non_mutually_recursive ~var a && is_non_mutually_recursive ~var b
  | Fix (x, body) ->
    String.equal x var || ((not (has_free_var var body)) && is_non_mutually_recursive ~var body)

let check_fix var body =
  if not (is_positive ~var body) then Error (Printf.sprintf "fixpoint on %s is not positive" var)
  else if not (is_linear ~var body) then Error (Printf.sprintf "fixpoint on %s is not linear" var)
  else if not (is_non_mutually_recursive ~var body) then
    Error (Printf.sprintf "fixpoint on %s is mutually recursive" var)
  else Ok ()

let check_term t =
  let rec go = function
    | Rel _ | Var _ | Cst _ -> Ok ()
    | Select (_, u) | Project (_, u) | Antiproject (_, u) | Rename (_, u) -> go u
    | Join (a, b) | Antijoin (a, b) | Union (a, b) -> ( match go a with Ok () -> go b | e -> e)
    | Fix (x, body) -> ( match check_fix x body with Ok () -> go body | e -> e)
  in
  go t

(* One top-down distribution pass; [normalize] iterates it to a fixed
   point (termination: each step strictly raises unions in the tree). *)
let rec distribute t =
  match t with
  | Rel _ | Var _ | Cst _ -> t
  | Select (p, Union (a, b)) -> Union (distribute (Select (p, a)), distribute (Select (p, b)))
  | Project (c, Union (a, b)) -> Union (distribute (Project (c, a)), distribute (Project (c, b)))
  | Antiproject (c, Union (a, b)) ->
    Union (distribute (Antiproject (c, a)), distribute (Antiproject (c, b)))
  | Rename (m, Union (a, b)) -> Union (distribute (Rename (m, a)), distribute (Rename (m, b)))
  | Join (Union (a, b), c) -> Union (distribute (Join (a, c)), distribute (Join (b, c)))
  | Join (a, Union (b, c)) -> Union (distribute (Join (a, b)), distribute (Join (a, c)))
  | Antijoin (Union (a, b), c) ->
    Union (distribute (Antijoin (a, c)), distribute (Antijoin (b, c)))
  | Select (p, u) -> Select (p, distribute u)
  | Project (c, u) -> Project (c, distribute u)
  | Antiproject (c, u) -> Antiproject (c, distribute u)
  | Rename (m, u) -> Rename (m, distribute u)
  | Join (a, b) -> Join (distribute a, distribute b)
  | Antijoin (a, b) -> Antijoin (distribute a, distribute b)
  | Union (a, b) -> Union (distribute a, distribute b)
  | Fix (x, body) -> Fix (x, body) (* do not rewrite under nested fixpoints *)

let rec normalize t =
  let t' = distribute t in
  if equal t t' then t else normalize t'

let rec union_branches = function
  | Union (a, b) -> union_branches a @ union_branches b
  | t -> [ t ]

let split ~var body =
  let branches = union_branches (normalize body) in
  List.partition (constant_in var) branches

let decompose ~var body =
  (match check_fix var body with Ok () -> () | Error msg -> fail "%s" msg);
  match split ~var body with
  | [], _ -> fail "fixpoint on %s has no constant part" var
  | consts, [] ->
    (* Degenerate: no recursive branch; phi is empty, mu = R. Represent
       phi as an antijoin of a constant branch with itself, which is
       empty — callers treat a missing variable part specially instead. *)
    fail "fixpoint on %s has no recursive part (constant fixpoint %s)" var
      (to_string (union_all consts))
  | consts, recs -> (union_all consts, union_all recs)
