(** The F_cond conditions on fixpoint terms (Sec. II-B of the paper) and
    the constant/variable-part decomposition of Prop. 2.

    A fixpoint [mu(X = body)] satisfies F_cond when it is
    - {e positive}: in every antijoin subterm [a ▷ b] of [body], [b] is
      constant in [X];
    - {e linear}: in every [a ⋈ b] or [a ▷ b], at least one side is
      constant in [X];
    - {e non mutually recursive}: [X] does not occur free under a nested
      fixpoint on another variable.

    Under F_cond the body can be normalised to a union of branches, split
    into the constant part [R] (branches without [X]) and the variable
    part [phi] (branches with [X]), and evaluated semi-naively. *)

exception Not_fcond of string

val is_positive : var:string -> Term.t -> bool
val is_linear : var:string -> Term.t -> bool
val is_non_mutually_recursive : var:string -> Term.t -> bool

val check_term : Term.t -> (unit, string) result
(** Check every [Fix] subterm of an arbitrary term for all three
    conditions. *)

val normalize : Term.t -> Term.t
(** Distribute selections, projections, renamings, joins and (left sides
    of) antijoins over unions until the term is a union of union-free
    branches. Semantics-preserving. *)

val union_branches : Term.t -> Term.t list
(** Syntactic top-level union branches (no normalisation). *)

val split : var:string -> Term.t -> Term.t list * Term.t list
(** [split ~var body] normalises and partitions the branches into
    (constant-in-var, containing-var). *)

val decompose : var:string -> Term.t -> Term.t * Term.t
(** [decompose ~var body] is [(r, phi)] with [body ≡ r ∪ phi], [r]
    constant in [var] and every branch of [phi] containing [var].
    @raise Not_fcond if there is no constant branch or F_cond fails. *)
