open Term
module Pred = Relation.Pred
module Value = Relation.Value

let src = "src"
let trg = "trg"
let pred = "pred"

let edge ?(rel = "E") label =
  Antiproject ([ pred ], Select (Pred.Eq_const (pred, Value.of_string label), Rel rel))

let edge_inv ?(rel = "E") label =
  Rename ([ (src, trg); (trg, src) ], edge ~rel label)

let compose a b =
  let m = fresh_col () in
  Antiproject ([ m ], Join (rename1 trg m a, rename1 src m b))

let closure_from seed a =
  let x = fresh_var () in
  Fix (x, Union (seed, compose (Var x) a))

let closure_into seed a =
  let x = fresh_var () in
  Fix (x, Union (seed, compose a (Var x)))

let closure a = closure_from a a
let closure_rev a = closure_into a a

let reach ?(rel = "E") source =
  (* mu(X = sigma_{src=N}(E) ∪ pi~_m(rho_trg^m(X) ⋈ rho_src^m(E))) then
     keep the reached nodes only. *)
  let x = fresh_var () in
  let seed = Select (Pred.Eq_const (src, source), Rel rel) in
  let m = fresh_col () in
  let body =
    Union
      (seed, Antiproject ([ m ], Join (rename1 trg m (Var x), rename1 src m (Rel rel))))
  in
  Antiproject ([ src ], Fix (x, body))

let same_generation ?(rel = "E") () =
  (* mu(X = pi~_m(rho_src^m(E) ⋈ rho_src^m(E'))
          ∪ pi~_m(pi~_n(rho_src^m(E) ⋈ rho_trg^n(rho_src^m(X))) ⋈ rho_src^n(E')))
     where E(src, trg) is the parent relation: siblings share a parent;
     and (x, y) are same-generation when their parents are. Output
     columns: (src, trg) meaning the two same-generation nodes. *)
  let x = fresh_var () in
  let m = fresh_col () and n = fresh_col () in
  (* up: child -> parent pairs as (src=child, trg=parent). The data
     relation E is parent->child, so invert it. *)
  let up = Rename ([ (src, trg); (trg, src) ], Rel rel) in
  let down = Rel rel in
  (* base: pairs with a common parent: up ∘ down *)
  let base =
    Antiproject
      ([ m ], Join (rename1 trg m up, rename1 src m down))
  in
  (* step: up ∘ X ∘ down *)
  let step =
    let x_mid = Rename ([ (src, m); (trg, n) ], Var x) in
    Antiproject
      ( [ m; n ],
        Join (Join (rename1 trg m up, x_mid), rename1 src n down) )
  in
  Fix (x, Union (base, step))

let anbn ?(rel = "R") ~a ~b () =
  (* mu(X = a∘b ∪ a∘X∘b) over the labelled edge table. *)
  let x = fresh_var () in
  let ea = edge ~rel a and eb = edge ~rel b in
  let base = compose ea eb in
  let step = compose ea (compose (Var x) eb) in
  Fix (x, Union (base, step))
