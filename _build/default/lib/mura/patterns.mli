(** Ready-made mu-RA terms for the recursion patterns the paper uses:
    transitive closures (in both evaluation directions), label-filtered
    edges over a (src, pred, trg) edge table, and the non-regular example
    queries of Sec. V-D (a^n b^n, same generation, reach).

    Convention: binary path relations use the columns [src] and [trg];
    the labelled edge table uses [(src, pred, trg)]. *)

val src : string
val trg : string
val pred : string

val edge : ?rel:string -> string -> Term.t
(** [edge label] = pi~_pred(sigma_{pred=label}(R)): the (src, trg) pairs
    connected by an edge with the given label. [rel] defaults to ["E"]. *)

val edge_inv : ?rel:string -> string -> Term.t
(** Reversed-direction edge ([-label] in UCRPQ syntax). *)

val compose : Term.t -> Term.t -> Term.t
(** [compose a b]: the relation [{(x, z) | a(x, y) ∧ b(y, z)}] — join on
    a fresh middle column, then drop it. Both operands must have schema
    {src, trg}. *)

val closure : Term.t -> Term.t
(** [closure a] = a+ evaluated left-to-right: mu(X = a ∪ X∘a). *)

val closure_rev : Term.t -> Term.t
(** a+ evaluated right-to-left: mu(X = a ∪ a∘X). Same semantics as
    {!closure}, different evaluation direction (Sec. III, "reversing a
    fixpoint"). *)

val closure_from : Term.t -> Term.t -> Term.t
(** [closure_from seed a] = mu(X = seed ∪ X∘a): pairs reachable from the
    seed pairs by appending [a]-edges to the right. *)

val closure_into : Term.t -> Term.t -> Term.t
(** [closure_into seed a] = mu(X = seed ∪ a∘X). *)

val reach : ?rel:string -> Relation.Value.t -> Term.t
(** Nodes reachable from a source node in an unlabelled edge relation
    (schema (src, trg); default name ["E"]); output schema {trg}. *)

val same_generation : ?rel:string -> unit -> Term.t
(** Pairs of nodes of the same generation w.r.t. a parent relation with
    schema (src, trg) (default name ["E"]). *)

val anbn : ?rel:string -> a:string -> b:string -> unit -> Term.t
(** Pairs connected by a^n b^n paths over the labelled edge table
    (default name ["R"]). *)
