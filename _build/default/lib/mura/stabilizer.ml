module Schema = Relation.Schema

type origin = From_var of string | Opaque

let origin_equal a b =
  match (a, b) with
  | From_var x, From_var y -> String.equal x y
  | Opaque, Opaque -> true
  | (From_var _ | Opaque), _ -> false

(* The analysis mirrors schema inference, attaching an origin to every
   output column. Joins prefer a [From_var] origin on shared columns
   (both sides hold the same value there); unions meet pointwise. *)
let provenance tenv ~vars ~var ~var_schema term =
  let opaque_of schema = List.map (fun c -> (c, Opaque)) (Schema.cols schema) in
  let typing_vars = (var, var_schema) :: vars in
  let rec go t =
    match (t : Term.t) with
    | Var x when String.equal x var -> List.map (fun c -> (c, From_var c)) (Schema.cols var_schema)
    | Var _ | Rel _ | Cst _ | Fix _ -> opaque_of (Typing.infer ~vars:typing_vars tenv t)
    | Select (_, u) -> go u
    | Project (keep, u) ->
      let m = go u in
      List.map (fun c -> (c, List.assoc c m)) keep
    | Antiproject (drop, u) -> List.filter (fun (c, _) -> not (List.mem c drop)) (go u)
    | Rename (mapping, u) ->
      List.map
        (fun (c, o) ->
          match List.assoc_opt c mapping with Some fresh -> (fresh, o) | None -> (c, o))
        (go u)
    | Join (a, b) ->
      let ma = go a and mb = go b in
      let from_b = List.filter (fun (c, _) -> not (List.mem_assoc c ma)) mb in
      let merged =
        List.map
          (fun (c, oa) ->
            match List.assoc_opt c mb with
            | Some ob -> (c, if oa = Opaque then ob else oa)
            | None -> (c, oa))
          ma
      in
      merged @ from_b
    | Antijoin (a, _) -> go a
    | Union (a, b) ->
      let ma = go a and mb = go b in
      List.map
        (fun (c, oa) ->
          match List.assoc_opt c mb with
          | Some ob when origin_equal oa ob -> (c, oa)
          | Some _ | None -> (c, Opaque))
        ma
  in
  go term

let stable_columns tenv ~var body =
  let consts, recs = Fcond.split ~var body in
  match consts with
  | [] -> raise (Fcond.Not_fcond (Printf.sprintf "fixpoint on %s has no constant part" var))
  | c0 :: _ ->
    let schema = Typing.infer tenv c0 in
    let stable_in branch =
      let m = provenance tenv ~vars:[] ~var ~var_schema:schema branch in
      List.filter
        (fun c -> match List.assoc_opt c m with Some (From_var c') -> String.equal c c' | _ -> false)
        (Schema.cols schema)
    in
    List.fold_left
      (fun acc branch ->
        let s = stable_in branch in
        List.filter (fun c -> List.mem c s) acc)
      (Schema.cols schema) recs
