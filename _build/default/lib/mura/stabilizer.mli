(** The stabilizer: stable-column analysis of fixpoint bodies
    (Definition 10 of the mu-RA paper, used here per Sec. IV-A2).

    A column [c] of a fixpoint [mu(X = R ∪ phi)] is {e stable} when every
    tuple produced by an application of [phi] carries, at [c], the value
    its generating tuple of [X] had at [c]; by induction every tuple of
    the fixpoint then shares its [c]-value with some tuple of [R].

    Stable columns license two key optimizations:
    - pushing a filter [sigma_{c=v}] into the fixpoint's constant part;
    - hash-partitioning the constant part by [c] so that per-worker local
      fixpoints are disjoint and need no final [distinct] (Prop. in
      Sec. IV-A2). *)

type origin =
  | From_var of string  (** value copied unchanged from this column of X *)
  | Opaque

val provenance :
  Typing.env ->
  vars:(string * Relation.Schema.t) list ->
  var:string ->
  var_schema:Relation.Schema.t ->
  Term.t ->
  (string * origin) list
(** Column-wise origin of a term's output w.r.t. the recursive variable
    [var] (bound to [var_schema]); other free variables are typed via
    [vars]. The result covers exactly the term's output schema.
    @raise Typing.Type_error *)

val stable_columns : Typing.env -> var:string -> Term.t -> string list
(** [stable_columns env ~var body] — the stable columns of
    [mu(var = body)], in schema order.
    @raise Typing.Type_error / Fcond.Not_fcond *)
