module Pred = Relation.Pred
module R = Relation.Rel

type t =
  | Rel of string
  | Var of string
  | Cst of R.t
  | Select of Pred.t * t
  | Project of string list * t
  | Antiproject of string list * t
  | Rename of (string * string) list * t
  | Join of t * t
  | Antijoin of t * t
  | Union of t * t
  | Fix of string * t

let select p t = if p = Pred.True then t else Select (p, t)

let union_all = function
  | [] -> invalid_arg "Term.union_all: empty"
  | t :: rest -> List.fold_left (fun acc u -> Union (acc, u)) t rest

let join_all = function
  | [] -> invalid_arg "Term.join_all: empty"
  | t :: rest -> List.fold_left (fun acc u -> Join (acc, u)) t rest

let rename1 old fresh t = Rename ([ (old, fresh) ], t)

let dedup l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    l

let free_rels t =
  let rec go = function
    | Rel n -> [ n ]
    | Var _ | Cst _ -> []
    | Select (_, u) | Project (_, u) | Antiproject (_, u) | Rename (_, u) -> go u
    | Join (a, b) | Antijoin (a, b) | Union (a, b) -> go a @ go b
    | Fix (_, body) -> go body
  in
  dedup (go t)

let free_vars t =
  let rec go bound = function
    | Var x -> if List.mem x bound then [] else [ x ]
    | Rel _ | Cst _ -> []
    | Select (_, u) | Project (_, u) | Antiproject (_, u) | Rename (_, u) -> go bound u
    | Join (a, b) | Antijoin (a, b) | Union (a, b) -> go bound a @ go bound b
    | Fix (x, body) -> go (x :: bound) body
  in
  dedup (go [] t)

let has_free_var x t = List.mem x (free_vars t)

let rec subst x replacement = function
  | Var y when String.equal x y -> replacement
  | (Var _ | Rel _ | Cst _) as t -> t
  | Select (p, u) -> Select (p, subst x replacement u)
  | Project (c, u) -> Project (c, subst x replacement u)
  | Antiproject (c, u) -> Antiproject (c, subst x replacement u)
  | Rename (m, u) -> Rename (m, subst x replacement u)
  | Join (a, b) -> Join (subst x replacement a, subst x replacement b)
  | Antijoin (a, b) -> Antijoin (subst x replacement a, subst x replacement b)
  | Union (a, b) -> Union (subst x replacement a, subst x replacement b)
  | Fix (y, body) when String.equal x y -> Fix (y, body)
  | Fix (y, body) -> Fix (y, subst x replacement body)

let rec bound_vars = function
  | Var _ | Rel _ | Cst _ -> []
  | Select (_, u) | Project (_, u) | Antiproject (_, u) | Rename (_, u) -> bound_vars u
  | Join (a, b) | Antijoin (a, b) | Union (a, b) -> bound_vars a @ bound_vars b
  | Fix (x, body) -> x :: bound_vars body

let rename_var x y t =
  if has_free_var y t || List.mem y (bound_vars t) then
    invalid_arg (Printf.sprintf "Term.rename_var: %s occurs in term" y);
  subst x (Var y) t

let rec size = function
  | Rel _ | Var _ | Cst _ -> 1
  | Select (_, u) | Project (_, u) | Antiproject (_, u) | Rename (_, u) -> 1 + size u
  | Join (a, b) | Antijoin (a, b) | Union (a, b) -> 1 + size a + size b
  | Fix (_, body) -> 1 + size body

let rec fix_count = function
  | Rel _ | Var _ | Cst _ -> 0
  | Select (_, u) | Project (_, u) | Antiproject (_, u) | Rename (_, u) -> fix_count u
  | Join (a, b) | Antijoin (a, b) | Union (a, b) -> fix_count a + fix_count b
  | Fix (_, body) -> 1 + fix_count body

let rec equal a b =
  match (a, b) with
  | Rel x, Rel y | Var x, Var y -> String.equal x y
  | Cst r, Cst s -> R.equal r s
  | Select (p, u), Select (q, v) -> Pred.equal p q && equal u v
  | Project (c, u), Project (d, v) | Antiproject (c, u), Antiproject (d, v) ->
    c = d && equal u v
  | Rename (m, u), Rename (n, v) -> m = n && equal u v
  | Join (u1, u2), Join (v1, v2)
  | Antijoin (u1, u2), Antijoin (v1, v2)
  | Union (u1, u2), Union (v1, v2) ->
    equal u1 v1 && equal u2 v2
  | Fix (x, u), Fix (y, v) -> String.equal x y && equal u v
  | ( ( Rel _ | Var _ | Cst _ | Select _ | Project _ | Antiproject _ | Rename _ | Join _
      | Antijoin _ | Union _ | Fix _ ),
      _ ) ->
    false

let col_counter = ref 0

let fresh_col () =
  let c = Printf.sprintf "_m%d" !col_counter in
  incr col_counter;
  c

let var_counter = ref 0

let fresh_var () =
  let v = Printf.sprintf "_X%d" !var_counter in
  incr var_counter;
  v

let rec pp ppf = function
  | Rel n -> Format.pp_print_string ppf n
  | Var x -> Format.fprintf ppf "%s" x
  | Cst r -> Format.fprintf ppf "<const:%d>" (R.cardinal r)
  | Select (p, u) -> Format.fprintf ppf "@[σ[%a](%a)@]" Pred.pp p pp u
  | Project (c, u) -> Format.fprintf ppf "@[π[%s](%a)@]" (String.concat "," c) pp u
  | Antiproject (c, u) -> Format.fprintf ppf "@[π̃[%s](%a)@]" (String.concat "," c) pp u
  | Rename (m, u) ->
    let pairs = List.map (fun (o, n) -> o ^ "→" ^ n) m in
    Format.fprintf ppf "@[ρ[%s](%a)@]" (String.concat "," pairs) pp u
  | Join (a, b) -> Format.fprintf ppf "@[(%a ⋈ %a)@]" pp a pp b
  | Antijoin (a, b) -> Format.fprintf ppf "@[(%a ▷ %a)@]" pp a pp b
  | Union (a, b) -> Format.fprintf ppf "@[(%a ∪ %a)@]" pp a pp b
  | Fix (x, body) -> Format.fprintf ppf "@[μ(%s = %a)@]" x pp body

let to_string t = Format.asprintf "%a" pp t
