(** mu-RA terms: Codd's relational algebra plus the fixpoint operator
    (the grammar of Fig. 1 of the paper).

    Terms denote relations once the free database-relation names are bound
    in an environment. [Project] is sugar for anti-projection of the
    complement and is kept in the AST for readability of translated
    queries. *)

type t =
  | Rel of string  (** free database relation (e.g. the edge table) *)
  | Var of string  (** recursive variable bound by an enclosing [Fix] *)
  | Cst of Relation.Rel.t  (** literal constant relation *)
  | Select of Relation.Pred.t * t  (** sigma_f *)
  | Project of string list * t  (** keep exactly these columns *)
  | Antiproject of string list * t  (** pi-tilde: drop these columns *)
  | Rename of (string * string) list * t  (** rho old->new *)
  | Join of t * t  (** natural join *)
  | Antijoin of t * t  (** l ▷ r *)
  | Union of t * t
  | Fix of string * t  (** mu(X = body) *)

(** {1 Smart constructors} *)

val select : Relation.Pred.t -> t -> t
(** Simplifies [select True]. *)

val union_all : t list -> t
(** @raise Invalid_argument on the empty list. *)

val join_all : t list -> t
val rename1 : string -> string -> t -> t

(** {1 Structure} *)

val free_rels : t -> string list
(** Free database relation names, without duplicates. *)

val free_vars : t -> string list
(** Free recursive variables (not bound by a [Fix]), without dups. *)

val has_free_var : string -> t -> bool

val subst : string -> t -> t -> t
(** [subst x replacement term] substitutes [replacement] for free
    occurrences of [Var x]. [replacement] must be closed w.r.t. variables
    captured in [term] (we only ever substitute constants). *)

val rename_var : string -> string -> t -> t
(** [rename_var x y t] renames free occurrences of variable [x] to [y].
    @raise Invalid_argument if [y] occurs free in [t] or is bound in it. *)

val size : t -> int
(** Number of AST nodes (plan-space accounting). *)

val fix_count : t -> int
(** Number of [Fix] nodes. *)

val equal : t -> t -> bool
(** Structural equality ([Cst] compared as relations). *)

val fresh_col : unit -> string
(** Generates ["_m0"], ["_m1"], ... — reserved working column names for
    join plumbing; user schemas must not use the ["_m"] prefix. *)

val fresh_var : unit -> string
(** Fresh recursive-variable names ["_X0"], ... *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
