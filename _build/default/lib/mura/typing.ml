module Schema = Relation.Schema
module Pred = Relation.Pred

exception Type_error of string

let err fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type env = (string * Schema.t) list

let env bindings = bindings

let env_find e n =
  match List.assoc_opt n e with
  | Some s -> s
  | None -> err "unknown relation %S" n

let env_add e n s = (n, s) :: e

let rec infer ?(vars = []) e t =
  let recur = infer ~vars e in
  match (t : Term.t) with
  | Rel n -> env_find e n
  | Var x -> (
    match List.assoc_opt x vars with
    | Some s -> s
    | None -> err "unbound recursive variable %S" x)
  | Cst r -> Relation.Rel.schema r
  | Select (p, u) ->
    let s = recur u in
    List.iter
      (fun c -> if not (Schema.mem s c) then err "filter column %S not in %s" c (Schema.to_string s))
      (Pred.columns p);
    s
  | Project (keep, u) -> (
    let s = recur u in
    try Schema.restrict s keep with Schema.Schema_error m -> err "project: %s" m)
  | Antiproject (drop, u) -> (
    let s = recur u in
    try Schema.minus s drop with Schema.Schema_error m -> err "antiproject: %s" m)
  | Rename (m, u) -> (
    let s = recur u in
    try Schema.rename m s with Schema.Schema_error msg -> err "rename: %s" msg)
  | Join (a, b) -> Schema.append_distinct (recur a) (recur b)
  | Antijoin (a, _b) -> recur a
  | Union (a, b) ->
    let sa = recur a and sb = recur b in
    if not (Schema.equal_names sa sb) then
      err "union of incompatible schemas %s vs %s" (Schema.to_string sa) (Schema.to_string sb);
    sa
  | Fix (x, body) -> fix_schema_aux ~vars e ~var:x body

and fix_schema_aux ~vars e ~var body =
  let consts, recs = Fcond.split ~var body in
  match consts with
  | [] -> err "fixpoint on %s has no constant part" var
  | c0 :: rest ->
    let s = infer ~vars e c0 in
    List.iter
      (fun c ->
        let sc = infer ~vars e c in
        if not (Schema.equal_names s sc) then
          err "constant branches of %s disagree: %s vs %s" var (Schema.to_string s)
            (Schema.to_string sc))
      rest;
    let vars' = (var, s) :: vars in
    List.iter
      (fun r ->
        let sr = infer ~vars:vars' e r in
        if not (Schema.equal_names s sr) then
          err "recursive branch of %s has schema %s, expected %s" var (Schema.to_string sr)
            (Schema.to_string s))
      recs;
    s

let fix_schema ?(vars = []) e ~var body = fix_schema_aux ~vars e ~var body

let well_typed ?(vars = []) e t =
  match infer ~vars e t with
  | (_ : Schema.t) -> true
  | exception (Type_error _ | Fcond.Not_fcond _ | Schema.Schema_error _) -> false
