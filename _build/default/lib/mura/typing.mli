(** Schema inference for mu-RA terms.

    A term is well-typed when every operator receives operands of suitable
    schemas: a selection mentions only existing columns, a union combines
    relations over the same column set, a fixpoint body has the schema of
    its constant part, etc. *)

exception Type_error of string

type env
(** Maps free database-relation names to their schemas. *)

val env : (string * Relation.Schema.t) list -> env
val env_find : env -> string -> Relation.Schema.t
val env_add : env -> string -> Relation.Schema.t -> env

val infer : ?vars:(string * Relation.Schema.t) list -> env -> Term.t -> Relation.Schema.t
(** [infer env t] is the output schema of [t]. [vars] binds free recursive
    variables (used when typing a fixpoint body in isolation).
    @raise Type_error on any schema violation, unknown relation name, or
    unbound recursive variable. *)

val well_typed : ?vars:(string * Relation.Schema.t) list -> env -> Term.t -> bool

val fix_schema :
  ?vars:(string * Relation.Schema.t) list -> env -> var:string -> Term.t -> Relation.Schema.t
(** Schema of [mu(var = body)]: the schema of the constant part, checked
    against every recursive branch. [vars] types enclosing recursive
    variables when the fixpoint is nested.
    @raise Type_error / Fcond.Not_fcond *)
