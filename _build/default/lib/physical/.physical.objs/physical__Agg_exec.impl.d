lib/physical/agg_exec.ml: Distsim Mura Relation
