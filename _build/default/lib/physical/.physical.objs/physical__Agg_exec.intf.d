lib/physical/agg_exec.mli: Distsim Relation
