lib/physical/exec.ml: Buffer Distsim Format Hashtbl List Localdb Mura Printf Relation String
