lib/physical/exec.mli: Distsim Format Mura Relation
