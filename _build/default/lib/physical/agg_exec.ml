module Rel = Relation.Rel
module Schema = Relation.Schema
module Tset = Relation.Tset
module Dds = Distsim.Dds
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics

let canon = Schema.of_list [ "src"; "trg"; "weight" ]

let shortest_paths cluster edges =
  let edges = Rel.relayout canon edges in
  let seeds = Dds.of_rel ~by:[ "src" ] cluster edges in
  let m = Cluster.metrics cluster in
  Metrics.record_broadcast m
    ~records:(Rel.cardinal edges * max 1 (Cluster.workers cluster - 1));
  Metrics.record_superstep m;
  let result =
    Dds.map_partitions ~partitioning:(Dds.Hashed [ "src" ]) ~schema:canon
      (fun _ part ->
        let env = Mura.Eval.env [ ("E", edges) ] in
        Rel.tuples
          (Mura.Agg.shortest_paths_seeded env ~edges:"E"
             ~seeds:(Rel.of_tset canon (Tset.copy part))))
      seeds
  in
  Dds.collect result
