lib/pregel/engine.ml: Array Distsim Hashtbl List Printf Relation Rpq
