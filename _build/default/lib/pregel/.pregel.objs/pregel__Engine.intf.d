lib/pregel/engine.mli: Distsim Relation Rpq
