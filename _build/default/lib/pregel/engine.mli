(** Vertex-centric BSP evaluation of regular path queries — the
    GraphX/Pregel baseline (Sec. V-C of the paper).

    The graph is vertex-partitioned across the simulated cluster's
    workers. An RPQ is evaluated as a traversal of the product of the
    graph with the query's NFA: messages are [(origin, nfa_state)] pairs;
    a vertex receiving a new pair forwards its successors along matching
    (possibly inverse) edges and records a result when the state is
    accepting. Every superstep exchanges all cross-worker messages — the
    communication pattern the paper contrasts with P_plw — and the total
    amount of vertex state is bounded: exceeding the budget raises
    {!Engine_failure}, reproducing the GraphX crashes of Figs. 9 and 10.

    As in the paper, the traversal runs left-to-right: a constant
    {e source} endpoint seeds a single origin (fast), while a constant
    {e target} can only be applied as a final filter. *)

exception Engine_failure of string

type config = {
  cluster : Distsim.Cluster.t;
  max_supersteps : int;
  max_state : int;  (** budget on stored (origin, state) pairs *)
}

val default_config : Distsim.Cluster.t -> config

type graph
(** Partitioned adjacency (out- and in-edges per vertex, by label). *)

val load : config -> Relation.Rel.t -> graph
(** From a labelled edge relation with (positional) schema
    (src, label, trg). *)

val vertices : graph -> int
val edges : graph -> int

type stats = { supersteps : int; messages : int; state_pairs : int }

val eval_rpq :
  ?source:Relation.Value.t -> ?target:Relation.Value.t -> graph -> Rpq.Regex.t ->
  Relation.Rel.t * stats
(** Pairs (src, trg) of vertices connected by a path matching the
    expression; [source]/[target] restrict the endpoints ([source] seeds
    the traversal, [target] filters at the end).
    @raise Engine_failure on budget exhaustion
    @raise Rpq.Query.Translation_error if the path matches the empty
    word *)
