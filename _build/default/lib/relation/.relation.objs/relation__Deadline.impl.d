lib/relation/deadline.ml: Unix
