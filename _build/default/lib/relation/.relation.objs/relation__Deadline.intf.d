lib/relation/deadline.mli:
