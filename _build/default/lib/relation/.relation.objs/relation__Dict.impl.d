lib/relation/dict.ml: Hashtbl
