lib/relation/dict.mli:
