lib/relation/index.ml: Hashtbl Schema Seq Tuple
