lib/relation/index.mli: Schema Seq Tuple
