lib/relation/pred.ml: Array Format Hashtbl List Schema Value
