lib/relation/pred.mli: Format Schema Tuple Value
