lib/relation/rel.ml: Array Format Hashtbl Index List Pred Printf Schema Tset Tuple
