lib/relation/rel.mli: Format Pred Schema Tset Tuple Value
