lib/relation/rel_io.ml: Array Fun List Printf Rel Schema String Value
