lib/relation/rel_io.mli: Rel Value
