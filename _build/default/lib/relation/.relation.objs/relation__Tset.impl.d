lib/relation/tset.ml: Array Deadline List Tuple
