lib/relation/tset.mli: Seq Tuple
