lib/relation/tuple.ml: Array Format Int Value
