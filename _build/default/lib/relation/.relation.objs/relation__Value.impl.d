lib/relation/value.ml: Dict Format Int Printf
