exception Expired

let limit = ref infinity
let counter = ref 0

let now () = Unix.gettimeofday ()
let set ~seconds_from_now = limit := now () +. seconds_from_now
let clear () = limit := infinity
let active () = !limit < infinity

let check_now () = if now () > !limit then raise Expired

let tick () =
  incr counter;
  if !counter land 8191 = 0 && !limit < infinity then check_now ()
