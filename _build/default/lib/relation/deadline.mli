(** Cooperative per-run deadlines.

    Engines in this project are single machine-wide computations; a
    query that would run for minutes must be interruptible to honour the
    harness's timeout (the paper kills queries at 1000 s). The hot paths
    of the storage layer call {!tick}, which raises {!Expired} once the
    wall clock passes the configured deadline. The check amortises the
    [gettimeofday] call over 8192 ticks, so the overhead is negligible.

    The deadline is global process state: harness drivers set it around
    a run and clear it afterwards. *)

exception Expired

val set : seconds_from_now:float -> unit
val clear : unit -> unit
val active : unit -> bool

val tick : unit -> unit
(** @raise Expired when a deadline is set and has passed. *)

val check_now : unit -> unit
(** Immediate (non-amortised) check. @raise Expired *)
