let table : (string, int) Hashtbl.t = Hashtbl.create 4096
let reverse : (int, string) Hashtbl.t = Hashtbl.create 4096
let next = ref (-1)

let intern s =
  match Hashtbl.find_opt table s with
  | Some h -> h
  | None ->
    let h = !next in
    decr next;
    Hashtbl.replace table s h;
    Hashtbl.replace reverse h s;
    h

let find_opt s = Hashtbl.find_opt table s

let lookup h =
  match Hashtbl.find_opt reverse h with
  | Some s -> s
  | None -> raise Not_found

let is_handle v = v < 0 && Hashtbl.mem reverse v
let size () = Hashtbl.length table

let reset () =
  Hashtbl.reset table;
  Hashtbl.reset reverse;
  next := -1
