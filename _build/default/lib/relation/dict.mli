(** Global string interner.

    Strings (edge labels, constants such as ["Japan"], node names from data
    files) are interned to negative integers so that they can live in the
    same [int] value space as plain numeric node identifiers. The
    dictionary is a process-wide singleton, mirroring the role of a
    catalog in a database system. *)

val intern : string -> int
(** [intern s] returns the negative handle for [s], allocating one on
    first use. Idempotent: [intern s = intern s]. *)

val find_opt : string -> int option
(** [find_opt s] is the handle of [s] if it has been interned. *)

val lookup : int -> string
(** [lookup h] is the string behind handle [h].
    @raise Not_found if [h] is not a dictionary handle. *)

val is_handle : int -> bool
(** [is_handle v] is true iff [v] is a valid interned-string handle. *)

val size : unit -> int
(** Number of interned strings. *)

val reset : unit -> unit
(** Forget all interned strings. Only for tests: invalidates every
    previously returned handle. *)
