module H = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type t = { table : Tuple.t list H.t; key_pos : int array; mutable count : int }

let build schema key_cols tuples =
  let key_pos = Schema.positions schema key_cols in
  let table = H.create 256 in
  let count = ref 0 in
  Seq.iter
    (fun tu ->
      let key = Tuple.project key_pos tu in
      incr count;
      match H.find_opt table key with
      | Some l -> H.replace table key (tu :: l)
      | None -> H.replace table key [ tu ])
    tuples;
  { table; key_pos; count = !count }

let probe idx key = match H.find_opt idx.table key with Some l -> l | None -> []

let probe_with idx schema cols tu =
  probe idx (Tuple.project (Schema.positions schema cols) tu)

let mem idx key = H.mem idx.table key
let cardinal idx = idx.count
let key_positions idx = idx.key_pos
