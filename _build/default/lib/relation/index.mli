(** Hash indexes over tuple collections, keyed by a subset of columns.

    Used by hash joins, antijoins and the per-worker local engine. *)

type t

val build : Schema.t -> string list -> Tuple.t Seq.t -> t
(** [build schema key_cols tuples] indexes [tuples] (laid out per
    [schema]) by their projection on [key_cols].
    @raise Schema.Schema_error if a key column is absent. *)

val probe : t -> Tuple.t -> Tuple.t list
(** [probe idx key] returns the tuples whose key projection equals [key]
    (a tuple of the key columns, in the order given to {!build}). *)

val probe_with : t -> Schema.t -> string list -> Tuple.t -> Tuple.t list
(** [probe_with idx s cols tu] projects [tu] (laid out per [s]) on [cols]
    and probes. [cols] must name the key columns in index key order. *)

val mem : t -> Tuple.t -> bool
val cardinal : t -> int
(** Number of indexed tuples. *)

val key_positions : t -> int array
