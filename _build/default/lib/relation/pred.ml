type t =
  | True
  | Eq_const of string * Value.t
  | Neq_const of string * Value.t
  | Eq_col of string * string
  | Lt_const of string * Value.t
  | Gt_const of string * Value.t
  | And of t * t
  | Or of t * t
  | Not of t

let columns p =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let visit c =
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.replace seen c ();
      out := c :: !out
    end
  in
  let rec go = function
    | True -> ()
    | Eq_const (c, _) | Neq_const (c, _) | Lt_const (c, _) | Gt_const (c, _) -> visit c
    | Eq_col (a, b) ->
      visit a;
      visit b
    | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Not a -> go a
  in
  go p;
  List.rev !out

let compile schema p =
  let pos c = Schema.index_of schema c in
  let rec comp = function
    | True -> fun _ -> true
    | Eq_const (c, v) ->
      let i = pos c in
      fun tu -> tu.(i) = v
    | Neq_const (c, v) ->
      let i = pos c in
      fun tu -> tu.(i) <> v
    | Eq_col (a, b) ->
      let i = pos a and j = pos b in
      fun tu -> tu.(i) = tu.(j)
    | Lt_const (c, v) ->
      let i = pos c in
      fun tu -> tu.(i) < v
    | Gt_const (c, v) ->
      let i = pos c in
      fun tu -> tu.(i) > v
    | And (a, b) ->
      let fa = comp a and fb = comp b in
      fun tu -> fa tu && fb tu
    | Or (a, b) ->
      let fa = comp a and fb = comp b in
      fun tu -> fa tu || fb tu
    | Not a ->
      let fa = comp a in
      fun tu -> not (fa tu)
  in
  comp p

let rename mapping p =
  let ren c = match List.assoc_opt c mapping with Some fresh -> fresh | None -> c in
  let rec go = function
    | True -> True
    | Eq_const (c, v) -> Eq_const (ren c, v)
    | Neq_const (c, v) -> Neq_const (ren c, v)
    | Lt_const (c, v) -> Lt_const (ren c, v)
    | Gt_const (c, v) -> Gt_const (ren c, v)
    | Eq_col (a, b) -> Eq_col (ren a, ren b)
    | And (a, b) -> And (go a, go b)
    | Or (a, b) -> Or (go a, go b)
    | Not a -> Not (go a)
  in
  go p

let conj preds =
  match List.filter (fun p -> p <> True) preds with
  | [] -> True
  | p :: rest -> List.fold_left (fun acc q -> And (acc, q)) p rest

let equal (a : t) (b : t) = a = b

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Eq_const (c, v) -> Format.fprintf ppf "%s=%a" c Value.pp v
  | Neq_const (c, v) -> Format.fprintf ppf "%s<>%a" c Value.pp v
  | Lt_const (c, v) -> Format.fprintf ppf "%s<%a" c Value.pp v
  | Gt_const (c, v) -> Format.fprintf ppf "%s>%a" c Value.pp v
  | Eq_col (a, b) -> Format.fprintf ppf "%s=%s" a b
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp a pp b
  | Not a -> Format.fprintf ppf "!(%a)" pp a

let to_string p = Format.asprintf "%a" pp p
