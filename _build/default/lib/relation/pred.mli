(** Selection predicates (the [f] of the mu-RA filter sigma_f).

    Predicates are first-order boolean combinations of comparisons between
    columns and constants. They are compiled against a schema into a
    closure over raw tuples before evaluation. *)

type t =
  | True
  | Eq_const of string * Value.t  (** column = constant *)
  | Neq_const of string * Value.t
  | Eq_col of string * string  (** column = column *)
  | Lt_const of string * Value.t  (** numeric comparison on plain ints *)
  | Gt_const of string * Value.t
  | And of t * t
  | Or of t * t
  | Not of t

val columns : t -> string list
(** Columns mentioned, without duplicates, in first-mention order. *)

val compile : Schema.t -> t -> Tuple.t -> bool
(** @raise Schema.Schema_error if a mentioned column is absent. *)

val rename : (string * string) list -> t -> t
(** Apply a column renaming to the columns mentioned by the predicate. *)

val conj : t list -> t
(** Conjunction of a list, simplifying [True]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
