type t = { schema : Schema.t; data : Tset.t }

let create schema = { schema; data = Tset.create () }
let schema r = r.schema
let cardinal r = Tset.cardinal r.data
let is_empty r = Tset.is_empty r.data

let add r tu =
  if Array.length tu <> Schema.arity r.schema then
    invalid_arg
      (Printf.sprintf "Rel.add: arity %d vs schema %s" (Array.length tu)
         (Schema.to_string r.schema));
  Tset.add r.data tu

let of_tuples schema l =
  let r = create schema in
  List.iter (fun tu -> ignore (add r tu)) l;
  r

let of_list schema rows = of_tuples schema (List.map Array.of_list rows)
let of_tset schema data = { schema; data }
let tuples r = r.data
let iter f r = Tset.iter f r.data
let fold f r init = Tset.fold f r.data init
let exists p r = Tset.exists p r.data
let for_all p r = Tset.for_all p r.data
let to_list r = Tset.to_list r.data
let mem r tu = Tset.mem r.data tu
let copy r = { r with data = Tset.copy r.data }

let select p r =
  let keep = Pred.compile r.schema p in
  let out = Tset.create () in
  Tset.iter (fun tu -> if keep tu then ignore (Tset.add out tu)) r.data;
  { schema = r.schema; data = out }

let project_positions schema positions r =
  let out = Tset.create ~capacity:(cardinal r) () in
  Tset.iter (fun tu -> ignore (Tset.add out (Tuple.project positions tu))) r.data;
  { schema; data = out }

let project keep r =
  let schema = Schema.restrict r.schema keep in
  project_positions schema (Schema.positions r.schema keep) r

let antiproject dropped r =
  let schema = Schema.minus r.schema dropped in
  project_positions schema (Schema.positions r.schema (Schema.cols schema)) r

let rename mapping r = { r with schema = Schema.rename mapping r.schema }

(* Hash join on the shared columns; output layout is left columns
   followed by the non-shared right columns. The index is built on the
   smaller input (crucial inside semi-naive loops, where one side is a
   small delta and the other a large stable relation). *)
let natural_join l r =
  let shared = Schema.common l.schema r.schema in
  let out_schema = Schema.append_distinct l.schema r.schema in
  let extra_cols =
    List.filter (fun c -> not (Schema.mem l.schema c)) (Schema.cols r.schema)
  in
  let extra_pos = Schema.positions r.schema extra_cols in
  let out = Tset.create () in
  let emit lt rt = ignore (Tset.add out (Tuple.concat lt (Tuple.project extra_pos rt))) in
  (match shared with
  | [] -> Tset.iter (fun lt -> Tset.iter (fun rt -> emit lt rt) r.data) l.data
  | _ ->
    let l_key = Schema.positions l.schema shared in
    if Tset.cardinal r.data <= Tset.cardinal l.data then begin
      let idx = Index.build r.schema shared (Tset.to_seq r.data) in
      Tset.iter
        (fun lt -> List.iter (emit lt) (Index.probe idx (Tuple.project l_key lt)))
        l.data
    end
    else begin
      let idx = Index.build l.schema shared (Tset.to_seq l.data) in
      let r_key = Schema.positions r.schema shared in
      Tset.iter
        (fun rt ->
          List.iter (fun lt -> emit lt rt) (Index.probe idx (Tuple.project r_key rt)))
        r.data
    end);
  { schema = out_schema; data = out }

let antijoin l r =
  let shared = Schema.common l.schema r.schema in
  match shared with
  | [] ->
    (* No shared columns: l ▷ r keeps l iff r is empty. *)
    if Tset.is_empty r.data then copy l else create l.schema
  | _ ->
    let idx = Index.build r.schema shared (Tset.to_seq r.data) in
    let l_key = Schema.positions l.schema shared in
    let out = Tset.create () in
    Tset.iter
      (fun lt -> if not (Index.mem idx (Tuple.project l_key lt)) then ignore (Tset.add out lt))
      l.data;
    { schema = l.schema; data = out }

let relayout s r =
  if Schema.equal_ordered s r.schema then r
  else project_positions s (Schema.reorder_positions ~from:r.schema ~into:s) r

let union_into dst src =
  if Schema.equal_ordered dst.schema src.schema then Tset.add_all dst.data src.data
  else begin
    let perm = Schema.reorder_positions ~from:src.schema ~into:dst.schema in
    Tset.fold
      (fun tu n -> if Tset.add dst.data (Tuple.project perm tu) then n + 1 else n)
      src.data 0
  end

let union a b =
  let out = copy a in
  ignore (union_into out b);
  out

let diff a b =
  let b' =
    if Schema.equal_ordered a.schema b.schema then b
    else
      let perm = Schema.reorder_positions ~from:b.schema ~into:a.schema in
      project_positions a.schema perm b
  in
  let out = Tset.create () in
  Tset.iter (fun tu -> if not (Tset.mem b'.data tu) then ignore (Tset.add out tu)) a.data;
  { schema = a.schema; data = out }

let inter a b =
  let b' =
    if Schema.equal_ordered a.schema b.schema then b
    else
      let perm = Schema.reorder_positions ~from:b.schema ~into:a.schema in
      project_positions a.schema perm b
  in
  let out = Tset.create () in
  Tset.iter (fun tu -> if Tset.mem b'.data tu then ignore (Tset.add out tu)) a.data;
  { schema = a.schema; data = out }

let equal a b =
  Schema.equal_names a.schema b.schema
  && cardinal a = cardinal b
  &&
  if Schema.equal_ordered a.schema b.schema then Tset.for_all (Tset.mem b.data) a.data
  else
    let perm = Schema.reorder_positions ~from:a.schema ~into:b.schema in
    Tset.for_all (fun tu -> Tset.mem b.data (Tuple.project perm tu)) a.data

let distinct_count r col =
  let i = Schema.index_of r.schema col in
  let seen = Hashtbl.create 1024 in
  Tset.iter (fun tu -> Hashtbl.replace seen tu.(i) ()) r.data;
  Hashtbl.length seen

let sorted_tuples r =
  let arr = Tset.to_array r.data in
  Array.sort Tuple.compare arr;
  arr

let pp_full ppf r =
  Format.fprintf ppf "@[<v>%a (%d tuples)" Schema.pp r.schema (cardinal r);
  Array.iter (fun tu -> Format.fprintf ppf "@,%a" Tuple.pp tu) (sorted_tuples r);
  Format.fprintf ppf "@]"

let pp ppf r =
  if cardinal r <= 20 then pp_full ppf r
  else Format.fprintf ppf "%a (%d tuples)" Schema.pp r.schema (cardinal r)

let to_string r = Format.asprintf "%a" pp r
