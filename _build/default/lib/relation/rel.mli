(** Relations and the (non-recursive) relational-algebra kernel.

    A relation is a schema plus a set of tuples. The operators implement
    exactly the non-recursive fragment of mu-RA (Fig. 1 of the paper):
    selection, anti-projection, renaming, natural join, antijoin, union —
    plus projection, set difference and intersection, which the rewriter
    and the baselines need. All operators are eager and produce fresh
    relations; inputs are never mutated. *)

type t

val create : Schema.t -> t
(** Fresh empty relation. *)

val schema : t -> Schema.t
val cardinal : t -> int
val is_empty : t -> bool

val add : t -> Tuple.t -> bool
(** Mutating insert (used while building); returns [true] if new.
    @raise Invalid_argument on arity mismatch. *)

val of_list : Schema.t -> Value.t list list -> t
val of_tuples : Schema.t -> Tuple.t list -> t
val of_tset : Schema.t -> Tset.t -> t
(** Takes ownership of the set: the caller must not mutate it further. *)

val tuples : t -> Tset.t
(** The underlying set; must not be mutated by the caller. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool
val to_list : t -> Tuple.t list
val mem : t -> Tuple.t -> bool
val copy : t -> t

(** {1 Operators} *)

val select : Pred.t -> t -> t
val project : string list -> t -> t
(** Keep exactly the given columns (with deduplication). *)

val antiproject : string list -> t -> t
(** Drop the given columns (the mu-RA pi-tilde), deduplicating. *)

val rename : (string * string) list -> t -> t

val natural_join : t -> t -> t
(** Join on all shared column names; degenerates to cartesian product when
    the schemas are disjoint. Output schema: left columns then the right
    columns not shared. *)

val antijoin : t -> t -> t
(** [antijoin l r]: tuples of [l] with no partner in [r] on the shared
    columns (the mu-RA [l ▷ r]). *)

val union : t -> t -> t
(** Set union; accepts any column order on the right (tuples are permuted
    to the left layout). @raise Schema.Schema_error on incompatible
    schemas. *)

val diff : t -> t -> t
(** Set difference, same schema flexibility as {!union}. *)

val inter : t -> t -> t

val relayout : Schema.t -> t -> t
(** [relayout s r] permutes the columns of [r] into the order of [s]
    (same column names required); returns [r] itself when the order
    already matches. @raise Schema.Schema_error *)

val union_into : t -> t -> int
(** [union_into dst src] mutates [dst], adding all tuples of [src]
    (permuted as needed); returns the number of new tuples. *)

val equal : t -> t -> bool
(** Set equality modulo column order. *)

val distinct_count : t -> string -> int
(** Number of distinct values in a column (for statistics). *)

val pp : Format.formatter -> t -> unit
(** Schema plus cardinality plus (small) contents; stable order. *)

val pp_full : Format.formatter -> t -> unit
val to_string : t -> string
