let parse_field s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> n
  | Some _ | None -> Value.of_string s

let split_ws line =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let fold_lines path f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          if String.length line > 0 && line.[0] <> '#' then f line
        done
      with End_of_file -> ())

let load_with path schema arity =
  let r = Rel.create schema in
  fold_lines path (fun line ->
      match split_ws line with
      | fields when List.length fields = arity ->
        ignore (Rel.add r (Array.of_list (List.map parse_field fields)))
      | [] -> ()
      | _ -> failwith (Printf.sprintf "%s: bad line %S (expected %d fields)" path line arity));
  r

let load_edges ?(src = "src") ?(trg = "trg") path =
  load_with path (Schema.of_list [ src; trg ]) 2

let load_labelled_edges ?(src = "src") ?(pred = "pred") ?(trg = "trg") path =
  load_with path (Schema.of_list [ src; pred; trg ]) 3

let save path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc ("# columns: " ^ String.concat "\t" (Schema.cols (Rel.schema r)) ^ "\n");
      Rel.iter
        (fun tu ->
          output_string oc
            (String.concat "\t" (Array.to_list (Array.map Value.to_string tu)) ^ "\n"))
        r)
