(** Reading and writing relations as text files.

    Two formats, both whitespace-separated, one tuple per line, lines
    starting with ['#'] ignored:
    - edge lists: [src dst] — loaded with schema [(src, trg)];
    - labelled edge lists: [src label dst] — loaded with schema
      [(src, pred, trg)], the label interned as a symbol.

    Fields that parse as nonnegative integers become plain values; all
    other fields are interned. *)

val parse_field : string -> Value.t

val load_edges : ?src:string -> ?trg:string -> string -> Rel.t
(** [load_edges path] reads an unlabelled edge list.
    @raise Sys_error / Failure on IO or format errors. *)

val load_labelled_edges : ?src:string -> ?pred:string -> ?trg:string -> string -> Rel.t
(** [load_labelled_edges path] reads a labelled edge list. *)

val save : string -> Rel.t -> unit
(** One line per tuple, fields separated by a single tab, preceded by a
    ["# columns: ..."] header line. *)
