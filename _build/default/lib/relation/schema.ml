exception Schema_error of string

type t = { names : string array }

let err fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt

let check_distinct names =
  let seen = Hashtbl.create (Array.length names) in
  Array.iter
    (fun n ->
      if Hashtbl.mem seen n then err "duplicate column %S" n;
      Hashtbl.replace seen n ())
    names

let of_array names =
  check_distinct names;
  { names = Array.copy names }

let of_list l = of_array (Array.of_list l)
let cols s = Array.to_list s.names
let to_array s = s.names
let arity s = Array.length s.names
let mem s n = Array.exists (String.equal n) s.names

let index_of s n =
  let rec go i =
    if i >= Array.length s.names then err "column %S not in schema %s" n (String.concat "," (cols s))
    else if String.equal s.names.(i) n then i
    else go (i + 1)
  in
  go 0

let positions s names = Array.of_list (List.map (index_of s) names)
let equal_ordered a b = a.names = b.names

let equal_names a b =
  arity a = arity b && Array.for_all (fun n -> mem b n) a.names

let common a b = List.filter (fun n -> mem b n) (cols a)

let minus s dropped =
  List.iter (fun d -> ignore (index_of s d)) dropped;
  of_array (Array.of_list (List.filter (fun n -> not (List.mem n dropped)) (cols s)))

let restrict s keep =
  List.iter (fun k -> ignore (index_of s k)) keep;
  of_list keep

let append_distinct a b =
  of_array (Array.append a.names (Array.of_list (List.filter (fun n -> not (mem a n)) (cols b))))

let concat a b =
  (match common a b with
  | [] -> ()
  | c :: _ -> err "schemas overlap on %S" c);
  of_array (Array.append a.names b.names)

let rename mapping s =
  let sources = List.map fst mapping in
  check_distinct (Array.of_list sources);
  List.iter (fun (o, _) -> ignore (index_of s o)) mapping;
  let renamed =
    Array.map (fun n -> match List.assoc_opt n mapping with Some fresh -> fresh | None -> n) s.names
  in
  (try check_distinct renamed
   with Schema_error _ -> err "rename produces duplicate columns in %s" (String.concat "," (cols s)));
  { names = renamed }

let reorder_positions ~from ~into =
  if not (equal_names from into) then
    err "incompatible schemas %s vs %s" (String.concat "," (cols from)) (String.concat "," (cols into));
  Array.map (index_of from) into.names

let pp ppf s =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") Format.pp_print_string)
    s.names

let to_string s = Format.asprintf "%a" pp s
