(** Relation schemas: ordered sequences of distinct column names.

    Semantically a mu-RA relation is a set of mappings from column names to
    values, so column order is irrelevant to equality of relations; the
    order here is a physical storage layout. Operations that combine two
    relations ({!Rel.union}, {!Rel.diff}, ...) accept any column order and
    permute tuples as needed (see {!reorder_positions}). *)

type t

exception Schema_error of string

val of_list : string list -> t
(** @raise Schema_error on duplicate column names. *)

val of_array : string array -> t
val cols : t -> string list
val to_array : t -> string array
(** The returned array must not be mutated. *)

val arity : t -> int
val mem : t -> string -> bool

val index_of : t -> string -> int
(** Position of a column. @raise Schema_error if absent. *)

val positions : t -> string list -> int array
(** Positions of several columns, in the order given.
    @raise Schema_error if any is absent. *)

val equal_ordered : t -> t -> bool
(** Same columns in the same order. *)

val equal_names : t -> t -> bool
(** Same set of column names, order ignored. *)

val common : t -> t -> string list
(** Columns present in both, in the order of the first schema. *)

val minus : t -> string list -> t
(** [minus s dropped] removes columns; dropping an absent column is an
    error. @raise Schema_error *)

val restrict : t -> string list -> t
(** [restrict s keep] keeps exactly [keep], in [keep]'s order.
    @raise Schema_error if any is absent. *)

val append_distinct : t -> t -> t
(** [append_distinct a b] is [a] followed by the columns of [b] not in
    [a]. *)

val concat : t -> t -> t
(** Concatenation of disjoint schemas. @raise Schema_error on overlap. *)

val rename : (string * string) list -> t -> t
(** [rename [(old, fresh); ...] s] renames columns. Renaming an absent
    column, renaming to an already-present name, or renaming the same
    source twice is an error. @raise Schema_error *)

val reorder_positions : from:t -> into:t -> int array
(** [reorder_positions ~from ~into] gives, for each column of [into], its
    position in [from], so that [Tuple.project] converts a [from]-layout
    tuple into an [into]-layout tuple. Requires [equal_names from into].
    @raise Schema_error *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
