type t = int

let of_int n =
  if n < 0 then invalid_arg "Value.of_int: negative";
  n

let of_string = Dict.intern
let is_symbol v = v < 0
let to_string v = if v < 0 then (try Dict.lookup v with Not_found -> Printf.sprintf "?%d" v) else string_of_int v
let pp ppf v = Format.pp_print_string ppf (to_string v)
let equal = Int.equal
let compare = Int.compare

(* splitmix64-style finalizer restricted to OCaml's 63-bit ints *)
let hash v =
  let h = v * 0x1E3779B97F4A7C15 in
  let h = h lxor (h lsr 30) in
  let h = h * 0x3F58476D1CE4E5B9 in
  let h = h lxor (h lsr 27) in
  h land max_int
