(** Values stored in relations.

    A value is an [int]. Nonnegative ints are plain node/data identifiers
    used directly (e.g. generated graph nodes). Negative ints are handles
    produced by {!Dict.intern} for strings (labels, constants, names read
    from data files). This split keeps tuples unboxed while still allowing
    symbolic constants. *)

type t = int

val of_int : int -> t
(** [of_int n] uses a nonnegative integer directly as a value.
    @raise Invalid_argument if [n < 0]. *)

val of_string : string -> t
(** [of_string s] interns [s] in the global dictionary. *)

val is_symbol : t -> bool
(** [is_symbol v] is true iff [v] was produced by {!of_string}. *)

val to_string : t -> string
(** Human-readable form: the interned string, or the decimal integer. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
