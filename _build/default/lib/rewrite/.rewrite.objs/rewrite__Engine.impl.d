lib/rewrite/engine.ml: Hashtbl List Mura Printf Queue Relation Rules String Term
