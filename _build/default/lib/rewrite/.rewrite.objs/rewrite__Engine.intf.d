lib/rewrite/engine.mli: Mura Rules
