lib/rewrite/rules.ml: Fcond List Mura Patterns Relation Shapes Stabilizer Term Typing
