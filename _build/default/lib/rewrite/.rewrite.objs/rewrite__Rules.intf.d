lib/rewrite/rules.mli: Mura
