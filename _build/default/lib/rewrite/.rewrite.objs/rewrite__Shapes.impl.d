lib/rewrite/shapes.ml: Fcond Mura Patterns Relation Term Typing
