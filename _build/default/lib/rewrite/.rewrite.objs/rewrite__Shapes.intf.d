lib/rewrite/shapes.mli: Mura
