open Mura
module Pred = Relation.Pred

(* ------------------------------------------------------------------ *)
(* Canonical keys                                                      *)
(* ------------------------------------------------------------------ *)

let is_internal_col c = String.length c >= 2 && c.[0] = '_' && c.[1] = 'm'
let is_internal_var v = String.length v >= 2 && v.[0] = '_' && v.[1] = 'X'

let canonical_key t =
  let cols = Hashtbl.create 8 and vars = Hashtbl.create 8 in
  let col c =
    if not (is_internal_col c) then c
    else
      match Hashtbl.find_opt cols c with
      | Some c' -> c'
      | None ->
        let c' = Printf.sprintf "_m%d" (Hashtbl.length cols) in
        Hashtbl.replace cols c c';
        c'
  in
  let var v =
    if not (is_internal_var v) then v
    else
      match Hashtbl.find_opt vars v with
      | Some v' -> v'
      | None ->
        let v' = Printf.sprintf "_X%d" (Hashtbl.length vars) in
        Hashtbl.replace vars v v';
        v'
  in
  let rec pred p =
    match (p : Pred.t) with
    | True -> Pred.True
    | Eq_const (c, v) -> Eq_const (col c, v)
    | Neq_const (c, v) -> Neq_const (col c, v)
    | Lt_const (c, v) -> Lt_const (col c, v)
    | Gt_const (c, v) -> Gt_const (col c, v)
    | Eq_col (a, b) -> Eq_col (col a, col b)
    | And (a, b) -> And (pred a, pred b)
    | Or (a, b) -> Or (pred a, pred b)
    | Not a -> Not (pred a)
  in
  let rec go (t : Term.t) : Term.t =
    match t with
    | Rel _ | Cst _ -> t
    | Var x -> Var (var x)
    | Select (p, u) -> Select (pred p, go u)
    | Project (c, u) -> Project (List.map col c, go u)
    | Antiproject (c, u) -> Antiproject (List.map col c, go u)
    | Rename (m, u) -> Rename (List.map (fun (o, n) -> (col o, col n)) m, go u)
    | Join (a, b) -> Join (go a, go b)
    | Antijoin (a, b) -> Antijoin (go a, go b)
    | Union (a, b) -> Union (go a, go b)
    | Fix (x, body) -> Fix (var x, go body)
  in
  Term.to_string (go t)

(* ------------------------------------------------------------------ *)
(* Positional application                                              *)
(* ------------------------------------------------------------------ *)

let apply_everywhere tenv (rule : Rules.rule) t =
  let results = ref [] in
  let rec go rebuild (t : Term.t) =
    List.iter (fun t' -> results := rebuild t' :: !results) (rule.apply tenv t);
    match t with
    | Rel _ | Var _ | Cst _ -> ()
    | Select (p, u) -> go (fun u' -> rebuild (Term.Select (p, u'))) u
    | Project (c, u) -> go (fun u' -> rebuild (Term.Project (c, u'))) u
    | Antiproject (c, u) -> go (fun u' -> rebuild (Term.Antiproject (c, u'))) u
    | Rename (m, u) -> go (fun u' -> rebuild (Term.Rename (m, u'))) u
    | Join (a, b) ->
      go (fun a' -> rebuild (Term.Join (a', b))) a;
      go (fun b' -> rebuild (Term.Join (a, b'))) b
    | Antijoin (a, b) ->
      go (fun a' -> rebuild (Term.Antijoin (a', b))) a;
      go (fun b' -> rebuild (Term.Antijoin (a, b'))) b
    | Union (a, b) ->
      go (fun a' -> rebuild (Term.Union (a', b))) a;
      go (fun b' -> rebuild (Term.Union (a, b'))) b
    | Fix (x, body) -> go (fun b' -> rebuild (Term.Fix (x, b'))) body
  in
  go (fun t -> t) t;
  !results

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

let explore ?(rules = Rules.all) ?(max_plans = 200) tenv t =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let frontier = Queue.create () in
  let visit t =
    let key = canonical_key t in
    if (not (Hashtbl.mem seen key)) && Hashtbl.length seen < max_plans then begin
      Hashtbl.replace seen key ();
      order := t :: !order;
      Queue.add t frontier
    end
  in
  visit t;
  while not (Queue.is_empty frontier) do
    let current = Queue.pop frontier in
    List.iter (fun rule -> List.iter visit (apply_everywhere tenv rule current)) rules
  done;
  List.rev !order

let optimize ?rules ?max_plans ~cost tenv t =
  let plans = explore ?rules ?max_plans tenv t in
  match plans with
  | [] -> t
  | p0 :: rest ->
    let best = ref p0 and best_cost = ref (cost p0) in
    List.iter
      (fun p ->
        let c = cost p in
        if c < !best_cost then begin
          best := p;
          best_cost := c
        end)
      rest;
    !best
