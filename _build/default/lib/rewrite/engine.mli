(** The rewrite engine: bounded exploration of the space of semantically
    equivalent logical plans (the MuRewriter component of Fig. 3).

    Rules are applied at every position of the term; the reachable set is
    deduplicated up to renaming of internal working columns and recursion
    variables, and capped at [max_plans]. *)

val apply_everywhere :
  Mura.Typing.env -> Rules.rule -> Mura.Term.t -> Mura.Term.t list
(** All single applications of one rule, at any position. *)

val explore :
  ?rules:Rules.rule list -> ?max_plans:int -> Mura.Typing.env -> Mura.Term.t ->
  Mura.Term.t list
(** Transitive closure of single-step rewriting, starting term included.
    [max_plans] defaults to 200. *)

val optimize :
  ?rules:Rules.rule list -> ?max_plans:int -> cost:(Mura.Term.t -> float) ->
  Mura.Typing.env -> Mura.Term.t -> Mura.Term.t
(** Explore and return the cheapest plan according to [cost]. *)

val canonical_key : Mura.Term.t -> string
(** Deduplication key: the term printed with internal ["_m*"] columns and
    ["_X*"] variables renamed in first-occurrence order. *)
