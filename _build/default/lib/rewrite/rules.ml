open Mura
module Pred = Relation.Pred
module Schema = Relation.Schema
module P = Patterns

type rule = { name : string; apply : Typing.env -> Term.t -> Term.t list }

let schema_of tenv t =
  match Typing.infer tenv t with
  | s -> Some s
  | exception (Typing.Type_error _ | Fcond.Not_fcond _ | Schema.Schema_error _) -> None

(* ------------------------------------------------------------------ *)
(* Classical pushdowns                                                  *)
(* ------------------------------------------------------------------ *)

let select_merge =
  {
    name = "select-merge";
    apply =
      (fun _ t ->
        match t with
        | Term.Select (p, Term.Select (q, u)) -> [ Term.Select (Pred.And (p, q), u) ]
        | _ -> []);
  }

let select_through_rename =
  {
    name = "select/rename";
    apply =
      (fun _ t ->
        match t with
        | Term.Select (p, Term.Rename (m, u)) ->
          let back = List.map (fun (o, n) -> (n, o)) m in
          [ Term.Rename (m, Term.Select (Pred.rename back p, u)) ]
        | _ -> []);
  }

let select_through_antiproject =
  {
    name = "select/antiproject";
    apply =
      (fun _ t ->
        match t with
        | Term.Select (p, Term.Antiproject (c, u)) when
            List.for_all (fun col -> not (List.mem col c)) (Pred.columns p) ->
          [ Term.Antiproject (c, Term.Select (p, u)) ]
        | _ -> []);
  }

let select_through_project =
  {
    name = "select/project";
    apply =
      (fun _ t ->
        match t with
        | Term.Select (p, Term.Project (c, u)) -> [ Term.Project (c, Term.Select (p, u)) ]
        | _ -> []);
  }

let select_through_join =
  {
    name = "select/join";
    apply =
      (fun tenv t ->
        match t with
        | Term.Select (p, Term.Join (a, b)) -> (
          let cols = Pred.columns p in
          match (schema_of tenv a, schema_of tenv b) with
          | Some sa, Some sb ->
            let into_a =
              if List.for_all (Schema.mem sa) cols then
                [ Term.Join (Term.Select (p, a), b) ]
              else []
            in
            let into_b =
              if List.for_all (Schema.mem sb) cols then
                [ Term.Join (a, Term.Select (p, b)) ]
              else []
            in
            into_a @ into_b
          | _ -> [])
        | _ -> []);
  }

let select_through_antijoin =
  {
    name = "select/antijoin";
    apply =
      (fun _ t ->
        match t with
        | Term.Select (p, Term.Antijoin (a, b)) -> [ Term.Antijoin (Term.Select (p, a), b) ]
        | _ -> []);
  }

let antiproject_merge =
  {
    name = "antiproject-merge";
    apply =
      (fun _ t ->
        match t with
        | Term.Antiproject (c1, Term.Antiproject (c2, u)) -> [ Term.Antiproject (c1 @ c2, u) ]
        | _ -> []);
  }

let select_through_union =
  {
    name = "select/union";
    apply =
      (fun _ t ->
        match t with
        | Term.Select (p, Term.Union (a, b)) ->
          [ Term.Union (Term.Select (p, a), Term.Select (p, b)) ]
        | _ -> []);
  }

(* ------------------------------------------------------------------ *)
(* Fixpoint rules                                                       *)
(* ------------------------------------------------------------------ *)

(* sigma_p(mu(X = R ∪ phi)) -> mu(X = sigma_p(R) ∪ phi)
   when every column of p is stable. *)
let push_filter_into_fix =
  {
    name = "push-filter-into-fix";
    apply =
      (fun tenv t ->
        match t with
        | Term.Select (p, Term.Fix (x, body)) -> (
          match Stabilizer.stable_columns tenv ~var:x body with
          | stable when List.for_all (fun c -> List.mem c stable) (Pred.columns p) -> (
            match Fcond.split ~var:x body with
            | consts, recs when consts <> [] ->
              let consts' = List.map (fun c -> Term.Select (p, c)) consts in
              [ Term.Fix (x, Term.union_all (consts' @ recs)) ]
            | _ -> [])
          | _ -> []
          | exception (Typing.Type_error _ | Fcond.Not_fcond _) -> [])
        | _ -> []);
  }

(* B+ evaluated left-to-right <-> right-to-left (pure closures only:
   reversal of a *seeded* fixpoint changes its meaning). *)
let reverse_closure =
  {
    name = "reverse-closure";
    apply =
      (fun _ t ->
        match Shapes.as_closure t with
        | Some { base; dir = Shapes.Right } -> [ Shapes.mk_closure Shapes.Left base ]
        | Some { base; dir = Shapes.Left } -> [ Shapes.mk_closure Shapes.Right base ]
        | None -> []);
  }

(* J ∘ B+ -> mu(X = J∘B ∪ X∘B) and B+ ∘ J -> mu(X = B∘J ∪ B∘X). *)
let push_join_into_fix =
  {
    name = "push-join-into-fix";
    apply =
      (fun _ t ->
        match Shapes.as_compose t with
        | Some { left; right; mid = _ } -> (
          let from_right =
            match Shapes.as_closure right with
            | Some { base; dir = _ } when Term.free_vars left = [] ->
              [ Shapes.mk_seeded Shapes.Right ~seed:(Shapes.mk_compose left base) ~step:base ]
            | _ -> []
          in
          let from_left =
            match Shapes.as_closure left with
            | Some { base; dir = _ } when Term.free_vars right = [] ->
              [ Shapes.mk_seeded Shapes.Left ~seed:(Shapes.mk_compose base right) ~step:base ]
            | _ -> []
          in
          match from_right @ from_left with [] -> [] | l -> l)
        | None -> []);
  }

(* A+ ∘ B+ -> mu(X = A∘B ∪ A∘X ∪ X∘B). *)
let merge_fixpoints =
  {
    name = "merge-fixpoints";
    apply =
      (fun _ t ->
        match Shapes.as_compose t with
        | Some { left; right; mid = _ } -> (
          match (Shapes.as_closure left, Shapes.as_closure right) with
          | Some { base = a; _ }, Some { base = b; _ } ->
            [ Shapes.mk_merged ~first:a ~second:b ]
          | _ -> [])
        | None -> []);
  }

(* pi~_src(mu(X = R ∪ X∘B)) -> unary fixpoint over the reached targets;
   symmetric on the left-appending side. *)
let unary_step_right step =
  (* Y has column trg; Y' = { t' | t in Y, step(t, t') } *)
  let m = Term.fresh_col () in
  fun x -> Term.Antiproject ([ m ], Term.Join (Term.rename1 P.trg m x, Term.rename1 P.src m step))

let unary_step_left step =
  (* Y has column src; Y' = { s | step(s, m), m in Y } *)
  let m = Term.fresh_col () in
  fun x -> Term.Antiproject ([ m ], Term.Join (Term.rename1 P.trg m step, Term.rename1 P.src m x))

let push_antiproject_into_fix =
  {
    name = "push-antiproject-into-fix";
    apply =
      (fun _ t ->
        match t with
        | Term.Antiproject ([ dropped ], inner) -> (
          match Shapes.as_seeded inner with
          | Some { seed; step; dir = Shapes.Right } when dropped = P.src ->
            let x = Term.fresh_var () in
            [
              Term.Fix
                ( x,
                  Term.Union
                    (Term.Antiproject ([ P.src ], seed), unary_step_right step (Term.Var x)) );
            ]
          | Some { seed; step; dir = Shapes.Left } when dropped = P.trg ->
            let x = Term.fresh_var () in
            [
              Term.Fix
                ( x,
                  Term.Union
                    (Term.Antiproject ([ P.trg ], seed), unary_step_left step (Term.Var x)) );
            ]
          | _ -> [])
        | _ -> []);
  }

let all =
  [
    select_merge;
    select_through_rename;
    select_through_antiproject;
    select_through_project;
    select_through_join;
    select_through_antijoin;
    antiproject_merge;
    select_through_union;
    push_filter_into_fix;
    reverse_closure;
    push_join_into_fix;
    merge_fixpoints;
    push_antiproject_into_fix;
  ]
