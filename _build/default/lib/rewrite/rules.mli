(** The MuRewriter's rewrite rules (Sec. III of the paper).

    Classical relational-algebra pushdowns (filters through renamings,
    (anti)projections, joins and unions) plus the five fixpoint-specific
    rules leveraged from the mu-RA paper:
    - pushing filters into fixpoints (on stable columns),
    - pushing joins into fixpoints,
    - merging fixpoints,
    - pushing antiprojections into fixpoints,
    - reversing a fixpoint (pure closures).

    Each rule is a local rewrite at the root of a term, returning the
    (possibly empty) list of alternative forms. All rules are
    semantics-preserving; the engine applies them at every position. *)

type rule = { name : string; apply : Mura.Typing.env -> Mura.Term.t -> Mura.Term.t list }

val select_merge : rule
val select_through_rename : rule
val select_through_antiproject : rule
val select_through_project : rule
val select_through_join : rule
val select_through_union : rule
val select_through_antijoin : rule
val antiproject_merge : rule

val push_filter_into_fix : rule
(** Guarded by the stabilizer: only fires when every filtered column is
    stable in the fixpoint. *)

val reverse_closure : rule
val push_join_into_fix : rule
val merge_fixpoints : rule
val push_antiproject_into_fix : rule

val all : rule list
