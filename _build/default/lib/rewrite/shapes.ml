open Mura
module P = Patterns

type composition = { left : Term.t; right : Term.t; mid : string }

(* a ∘ b = pi~_m(rho_trg->m(a) |><| rho_src->m(b)). The Join may have its
   arguments in either order. *)
let as_compose (t : Term.t) : composition option =
  match t with
  | Antiproject ([ m ], Join (x, y)) ->
    let side_renames_to target u =
      match (u : Term.t) with
      | Rename ([ (col, m') ], inner) when m' = m && col = target -> Some inner
      | _ -> None
    in
    let left_of u = side_renames_to P.trg u in
    let right_of u = side_renames_to P.src u in
    (match (left_of x, right_of y) with
    | Some a, Some b -> Some { left = a; right = b; mid = m }
    | _ -> (
      match (left_of y, right_of x) with
      | Some a, Some b -> Some { left = a; right = b; mid = m }
      | _ -> None))
  | _ -> None

let mk_compose a b = P.compose a b

type closure_dir = Right | Left
type closure = { base : Term.t; dir : closure_dir }
type seeded = { seed : Term.t; step : Term.t; dir : closure_dir }

let as_seeded (t : Term.t) : seeded option =
  match t with
  | Fix (x, body) -> (
    match Fcond.union_branches body with
    | [ a; b ] -> (
      let classify seed rec_branch =
        match as_compose rec_branch with
        | Some { left = Term.Var v; right; mid = _ } when v = x && not (Term.has_free_var x right)
          ->
          Some { seed; step = right; dir = Right }
        | Some { left; right = Term.Var v; mid = _ } when v = x && not (Term.has_free_var x left)
          ->
          Some { seed; step = left; dir = Left }
        | _ -> None
      in
      if Term.has_free_var x a then
        if Term.has_free_var x b then None
        else classify b a (* (rec, const) *)
      else if Term.has_free_var x b then classify a b
      else None)
    | _ -> None)
  | _ -> None

let as_closure t =
  match as_seeded t with
  | Some { seed; step; dir } when Term.equal seed step -> Some { base = step; dir }
  | Some _ | None -> None

let mk_seeded dir ~seed ~step =
  let x = Term.fresh_var () in
  let rec_branch =
    match dir with
    | Right -> mk_compose (Term.Var x) step
    | Left -> mk_compose step (Term.Var x)
  in
  Term.Fix (x, Term.Union (seed, rec_branch))

let mk_closure dir base = mk_seeded dir ~seed:base ~step:base

(* A+ ∘ B+ = mu(X = A∘B ∪ A∘X ∪ X∘B) *)
let mk_merged ~first ~second =
  let x = Term.fresh_var () in
  Term.Fix
    ( x,
      Term.Union
        ( Term.Union (mk_compose first second, mk_compose first (Term.Var x)),
          mk_compose (Term.Var x) second ) )

let is_path_schema tenv t =
  match Typing.infer tenv t with
  | s -> Relation.Schema.equal_names s (Relation.Schema.of_list [ P.src; P.trg ])
  | exception (Typing.Type_error _ | Fcond.Not_fcond _ | Relation.Schema.Schema_error _) -> false
