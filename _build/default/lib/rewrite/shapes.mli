(** Recognisers and constructors for the path-shaped mu-RA fragments the
    rewriter reasons about.

    All shapes are over binary path relations with columns
    [(src, trg)]. The central composition shape is
    [pi~_m(rho_trg->m(a) |><| rho_src->m(b))] — "a then b" — produced by
    {!Mura.Patterns.compose} and by the Query2Mu translation. *)

type composition = { left : Mura.Term.t; right : Mura.Term.t; mid : string }

val as_compose : Mura.Term.t -> composition option
(** Recognise [a ∘ b] (modulo the middle-column name and join argument
    order). *)

val mk_compose : Mura.Term.t -> Mura.Term.t -> Mura.Term.t
(** Build a composition with a fresh middle column. *)

type closure_dir = Right  (** mu(X = B ∪ X∘B): grows rightwards *) | Left  (** mu(X = B ∪ B∘X) *)

type closure = { base : Mura.Term.t; dir : closure_dir }

val as_closure : Mura.Term.t -> closure option
(** Recognise a pure transitive closure [B+] in either direction: the
    fixpoint's constant part must equal the appended relation. *)

type seeded = { seed : Mura.Term.t; step : Mura.Term.t; dir : closure_dir }

val as_seeded : Mura.Term.t -> seeded option
(** Recognise [mu(X = R ∪ X∘B)] ([dir = Right]) or [mu(X = R ∪ B∘X)]
    ([dir = Left]); a pure closure is also seeded (with [seed = step]). *)

val mk_closure : closure_dir -> Mura.Term.t -> Mura.Term.t
val mk_seeded : closure_dir -> seed:Mura.Term.t -> step:Mura.Term.t -> Mura.Term.t

val mk_merged :
  first:Mura.Term.t -> second:Mura.Term.t -> Mura.Term.t
(** The merged fixpoint for [A+ ∘ B+] (Sec. III "merging fixpoints"):
    [mu(X = A∘B ∪ A∘X ∪ X∘B)]. *)

val is_path_schema : Mura.Typing.env -> Mura.Term.t -> bool
(** Does the term have exactly the columns [(src, trg)]? *)
