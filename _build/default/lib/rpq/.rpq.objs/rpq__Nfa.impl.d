lib/rpq/nfa.ml: Array Format Hashtbl List Regex
