lib/rpq/nfa.mli: Format Regex
