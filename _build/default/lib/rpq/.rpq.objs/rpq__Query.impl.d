lib/rpq/query.ml: Buffer Format Fun Hashtbl List Mura Printf Regex Relation String
