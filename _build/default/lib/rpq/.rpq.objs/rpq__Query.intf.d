lib/rpq/query.mli: Format Mura Regex
