lib/rpq/regex.ml: Format Hashtbl List String
