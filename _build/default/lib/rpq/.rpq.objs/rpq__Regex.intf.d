lib/rpq/regex.mli: Format
