type sym = { label : string; inverse : bool }

type t = {
  size : int;
  start : int;
  accepting : bool array;
  delta : (sym * int) list array;
}

(* Thompson construction with explicit epsilon edges, then epsilon
   elimination. *)
type builder = {
  mutable nstates : int;
  mutable eps : (int * int) list;
  mutable edges : (int * sym * int) list;
}

let fresh b =
  let s = b.nstates in
  b.nstates <- s + 1;
  s

let rec build b (e : Regex.t) : int * int =
  match e with
  | Label l ->
    let s = fresh b and t = fresh b in
    b.edges <- (s, { label = l; inverse = false }, t) :: b.edges;
    (s, t)
  | Inv inner -> (
    match Regex.push_inverses (Regex.Inv inner) with
    | Regex.Inv (Regex.Label l) ->
      let s = fresh b and t = fresh b in
      b.edges <- (s, { label = l; inverse = true }, t) :: b.edges;
      (s, t)
    | pushed -> build b pushed)
  | Seq (x, y) ->
    let sx, tx = build b x in
    let sy, ty = build b y in
    b.eps <- (tx, sy) :: b.eps;
    (sx, ty)
  | Alt (x, y) ->
    let s = fresh b and t = fresh b in
    let sx, tx = build b x in
    let sy, ty = build b y in
    b.eps <- (s, sx) :: (s, sy) :: (tx, t) :: (ty, t) :: b.eps;
    (s, t)
  | Plus x ->
    let sx, tx = build b x in
    b.eps <- (tx, sx) :: b.eps;
    (sx, tx)
  | Star x ->
    let s = fresh b and t = fresh b in
    let sx, tx = build b x in
    b.eps <- (s, sx) :: (tx, t) :: (s, t) :: (t, s) :: b.eps;
    (s, t)
  | Opt x ->
    let s = fresh b and t = fresh b in
    let sx, tx = build b x in
    b.eps <- (s, sx) :: (tx, t) :: (s, t) :: b.eps;
    (s, t)

let of_regex e =
  let b = { nstates = 0; eps = []; edges = [] } in
  let start, accept = build b e in
  let n = b.nstates in
  (* epsilon closure by fixpoint over a reachability matrix *)
  let closure = Array.init n (fun _ -> Array.make n false) in
  Array.iteri (fun i row -> row.(i) <- true) closure;
  List.iter (fun (x, y) -> closure.(x).(y) <- true) b.eps;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if closure.(i).(j) then
          for k = 0 to n - 1 do
            if closure.(j).(k) && not (closure.(i).(k)) then begin
              closure.(i).(k) <- true;
              changed := true
            end
          done
      done
    done
  done;
  let delta = Array.make n [] in
  for q = 0 to n - 1 do
    List.iter
      (fun (s, sym, t) ->
        if closure.(q).(s) && not (List.mem (sym, t) delta.(q)) then delta.(q) <- (sym, t) :: delta.(q))
      b.edges
  done;
  let accepting = Array.init n (fun q -> closure.(q).(accept)) in
  { size = n; start; accepting; delta }

let size a = a.size
let start a = a.start
let is_accepting a q = a.accepting.(q)
let accepts_empty a = a.accepting.(a.start)
let transitions a q = a.delta.(q)

let symbols a =
  let seen = Hashtbl.create 8 in
  Array.iter (List.iter (fun (s, _) -> Hashtbl.replace seen s ())) a.delta;
  Hashtbl.fold (fun s () acc -> s :: acc) seen []

let accepts a word =
  let rec step states = function
    | [] -> List.exists (is_accepting a) states
    | sym :: rest ->
      let next =
        List.concat_map
          (fun q -> List.filter_map (fun (s, t) -> if s = sym then Some t else None) a.delta.(q))
          states
      in
      step (List.sort_uniq compare next) rest
  in
  step [ a.start ] word

let pp ppf a =
  Format.fprintf ppf "@[<v>NFA(%d states, start %d)" a.size a.start;
  for q = 0 to a.size - 1 do
    Format.fprintf ppf "@,%d%s:" q (if a.accepting.(q) then "*" else "");
    List.iter
      (fun (s, t) -> Format.fprintf ppf " %s%s->%d" (if s.inverse then "-" else "") s.label t)
      a.delta.(q)
  done;
  Format.fprintf ppf "@]"
