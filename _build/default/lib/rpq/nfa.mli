(** Nondeterministic finite automata over edge symbols, compiled from
    regular path expressions.

    Used by the Pregel/GraphX baseline: evaluating an RPQ by message
    passing traverses the product of the graph and this automaton. The
    automaton is epsilon-free (Thompson construction followed by closure
    elimination). *)

type sym = { label : string; inverse : bool }
(** One traversal step: follow an edge with this label, forwards or
    (when [inverse]) backwards. *)

type t

val of_regex : Regex.t -> t
val size : t -> int
val start : t -> int
val is_accepting : t -> int -> bool
val accepts_empty : t -> bool

val transitions : t -> int -> (sym * int) list
(** Outgoing transitions of a state. *)

val symbols : t -> sym list
(** All distinct symbols used. *)

val accepts : t -> sym list -> bool
(** Run the automaton on a word (test helper). *)

val pp : Format.formatter -> t -> unit
