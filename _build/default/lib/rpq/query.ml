module Term = Mura.Term
module Patterns = Mura.Patterns
module Pred = Relation.Pred
module Value = Relation.Value

type endpoint = Var of string | Const of string
type atom = { sub : endpoint; path : Regex.t; obj : endpoint }
type t = { heads : string list; atoms : atom list }

exception Translation_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Translation_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let trim = String.trim

let parse_endpoint s =
  if String.length s > 1 && s.[0] = '?' then Var (String.sub s 1 (String.length s - 1))
  else if s = "" then raise (Regex.Parse_error "empty endpoint")
  else Const s

let split_top_commas s =
  (* split on commas that are not inside parentheses *)
  let parts = ref [] and buf = Buffer.create 32 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        Buffer.add_char buf c
      | ')' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 ->
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map trim !parts

let parse_atom s =
  (* endpoint path endpoint — endpoints are the first and last
     whitespace-separated tokens; everything between is the path. *)
  let words = String.split_on_char ' ' s |> List.filter (fun w -> w <> "") in
  match words with
  | sub :: (_ :: _ :: _ as rest) ->
    let rec split_last acc = function
      | [ last ] -> (List.rev acc, last)
      | w :: tl -> split_last (w :: acc) tl
      | [] -> assert false
    in
    let middle, obj = split_last [] rest in
    { sub = parse_endpoint sub; path = Regex.parse (String.concat " " middle); obj = parse_endpoint obj }
  | _ -> raise (Regex.Parse_error (Printf.sprintf "malformed atom %S" s))

let parse s =
  match
    let arrow =
      match String.index_opt s '<' with
      | Some i when i + 1 < String.length s && s.[i + 1] = '-' -> Some i
      | _ -> None
    in
    arrow
  with
  | None -> raise (Regex.Parse_error (Printf.sprintf "missing '<-' in query %S" s))
  | Some i ->
    let head_str = String.sub s 0 i in
    let body_str = String.sub s (i + 2) (String.length s - i - 2) in
    let heads =
      List.map
        (fun h ->
          match parse_endpoint h with
          | Var v -> v
          | Const c -> raise (Regex.Parse_error (Printf.sprintf "head %S is not a variable" c)))
        (split_top_commas head_str)
    in
    let atoms = List.map parse_atom (split_top_commas body_str) in
    { heads; atoms }

(* ------------------------------------------------------------------ *)
(* Translation                                                         *)
(* ------------------------------------------------------------------ *)

(* Strip the empty word: [strip e] is [(r, eps)] such that
   e ≡ (ε if eps) ∪ r, with r (when present) unable to match ε. *)
let rec strip (e : Regex.t) : Regex.t option * bool =
  match e with
  | Label _ -> (Some e, false)
  | Inv a -> (
    match strip a with
    | Some r, eps -> (Some (Regex.Inv r), eps)
    | None, eps -> (None, eps))
  | Seq (a, b) -> (
    let ra, ea = strip a and rb, eb = strip b in
    let candidates =
      List.filter_map Fun.id
        [
          (match (ra, rb) with Some x, Some y -> Some (Regex.Seq (x, y)) | _ -> None);
          (if eb then ra else None);
          (if ea then rb else None);
        ]
    in
    match candidates with
    | [] -> (None, ea && eb)
    | c :: cs -> (Some (List.fold_left (fun acc x -> Regex.Alt (acc, x)) c cs), ea && eb))
  | Alt (a, b) -> (
    let ra, ea = strip a and rb, eb = strip b in
    match (ra, rb) with
    | Some x, Some y -> (Some (Regex.Alt (x, y)), ea || eb)
    | Some x, None | None, Some x -> (Some x, ea || eb)
    | None, None -> (None, ea || eb))
  | Plus a -> (
    match strip a with
    | Some r, eps -> (Some (Regex.Plus r), eps)
    | None, eps -> (None, eps))
  | Star a -> (
    match strip a with
    | Some r, _ -> (Some (Regex.Plus r), true)
    | None, _ -> (None, true))
  | Opt a ->
    let r, _ = strip a in
    (r, true)

let rec translate ~edge_rel (e : Regex.t) : Term.t =
  match e with
  | Label l -> Patterns.edge ~rel:edge_rel l
  | Inv (Label l) -> Patterns.edge_inv ~rel:edge_rel l
  | Inv a -> translate ~edge_rel (Regex.push_inverses (Regex.Inv a))
  | Seq (a, b) -> Patterns.compose (translate ~edge_rel a) (translate ~edge_rel b)
  | Alt (a, b) -> Term.Union (translate ~edge_rel a, translate ~edge_rel b)
  | Plus a -> Patterns.closure (translate ~edge_rel a)
  | Star _ | Opt _ -> fail "internal: star/opt must be stripped before translation"

let path_term ?(edge_rel = "E") e =
  match strip e with
  | Some r, false -> translate ~edge_rel r
  | Some _, true | None, _ ->
    fail "path %s can match the empty word, which UCRPQ-to-RA translation does not support"
      (Regex.to_string e)

(* Numeric constants denote plain node identifiers; anything else is an
   interned symbol — matching how Rel_io loads data files. *)
let const_value c =
  match int_of_string_opt c with Some n when n >= 0 -> n | Some _ | None -> Value.of_string c

let atom_term ?(edge_rel = "E") { sub; path; obj } =
  let base = path_term ~edge_rel path in
  (* bind the source endpoint *)
  let t, src_col =
    match sub with
    | Var x -> (Term.rename1 Patterns.src x base, x)
    | Const c ->
      ( Term.Antiproject
          ([ Patterns.src ], Term.Select (Pred.Eq_const (Patterns.src, const_value c), base)),
        "" )
  in
  match obj with
  | Var y when y = src_col ->
    (* ?x path ?x: equate endpoints then keep one column *)
    let tmp = Term.fresh_col () in
    Term.Antiproject
      ([ tmp ], Term.Select (Pred.Eq_col (src_col, tmp), Term.rename1 Patterns.trg tmp t))
  | Var y -> Term.rename1 Patterns.trg y t
  | Const c ->
    Term.Antiproject
      ([ Patterns.trg ], Term.Select (Pred.Eq_const (Patterns.trg, const_value c), t))

let vars q =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let visit = function
    | Var v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        out := v :: !out
      end
    | Const _ -> ()
  in
  List.iter
    (fun a ->
      visit a.sub;
      visit a.obj)
    q.atoms;
  List.rev !out

let to_term ?(edge_rel = "E") q =
  (match q.atoms with [] -> fail "query has no atoms" | _ -> ());
  let bound = vars q in
  List.iter
    (fun h -> if not (List.mem h bound) then fail "head variable ?%s is not bound by any atom" h)
    q.heads;
  let joined = Term.join_all (List.map (atom_term ~edge_rel) q.atoms) in
  if List.length q.heads = List.length bound then joined else Term.Project (q.heads, joined)

(* split on the standalone keyword "union" *)
let split_union s =
  let words = String.split_on_char ' ' s in
  let rec go current acc = function
    | [] -> List.rev (String.concat " " (List.rev current) :: acc)
    | "union" :: rest -> go [] (String.concat " " (List.rev current) :: acc) rest
    | w :: rest -> go (w :: current) acc rest
  in
  go [] [] words

let parse_union s = List.map parse (split_union s)

let union_to_term ?(edge_rel = "E") branches =
  match branches with
  | [] -> fail "empty union"
  | first :: rest ->
    List.iter
      (fun q ->
        if q.heads <> first.heads then
          fail "union branches disagree on heads: [%s] vs [%s]"
            (String.concat "," first.heads) (String.concat "," q.heads))
      rest;
    (* to_term leaves each branch with exactly the head columns; the
       union reconciles column orders by name *)
    Term.union_all (List.map (to_term ~edge_rel) branches)

let pp_endpoint ppf = function
  | Var v -> Format.fprintf ppf "?%s" v
  | Const c -> Format.pp_print_string ppf c

let pp ppf q =
  Format.fprintf ppf "%s <- %s"
    (String.concat ", " (List.map (fun h -> "?" ^ h) q.heads))
    (String.concat ", "
       (List.map
          (fun a ->
            Format.asprintf "%a %s %a" pp_endpoint a.sub (Regex.to_string a.path) pp_endpoint
              a.obj)
          q.atoms))

let to_string q = Format.asprintf "%a" pp q
