(** UCRPQ queries and their translation to mu-RA (the Query2Mu component
    of the paper's architecture, Fig. 3).

    Concrete syntax, as in the paper's figures:
    {v ?x, ?y <- ?x isMarriedTo/knows+ ?y, ?y livesIn Japan v}
    A query is a head (output variables) and a conjunction of atoms; each
    atom relates two endpoints (a variable [?x] or a constant) by a
    regular path expression.

    The translation targets a labelled edge relation (default name ["E"])
    with schema [(src, pred, trg)]: each atom becomes a mu-RA term whose
    columns are the atom's variables; the conjunction is a natural join;
    the head is a projection. Fixpoints are produced by [+] via
    {!Mura.Patterns.closure}. *)

type endpoint = Var of string | Const of string

type atom = { sub : endpoint; path : Regex.t; obj : endpoint }

type t = { heads : string list; atoms : atom list }

exception Translation_error of string

val parse : string -> t
(** @raise Regex.Parse_error on malformed input. *)

val parse_union : string -> t list
(** Parse a union of CRPQs, written as conjunctive queries separated by
    the keyword [union]:
    {v ?x <- ?x a+ C union ?x <- ?x b+ C v}
    All branches must have the same head variables.
    @raise Regex.Parse_error *)

val union_to_term : ?edge_rel:string -> t list -> Mura.Term.t
(** Union of the branch translations.
    @raise Translation_error on empty list or mismatched heads. *)

val path_term : ?edge_rel:string -> Regex.t -> Mura.Term.t
(** Binary (src, trg) relation of a path expression.
    @raise Translation_error when the expression can match the empty
    path (no identity relation in RA). *)

val atom_term : ?edge_rel:string -> atom -> Mura.Term.t
(** Term whose columns are the atom's variables (constants are filtered
    out and dropped). *)

val to_term : ?edge_rel:string -> t -> Mura.Term.t
(** Full Query2Mu translation.
    @raise Translation_error on empty-path expressions, heads not bound
    by any atom, or an empty atom list. *)

val vars : t -> string list
(** Variables appearing in the atoms, without duplicates. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
