type t =
  | Label of string
  | Inv of t
  | Seq of t * t
  | Alt of t * t
  | Plus of t
  | Star of t
  | Opt of t

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token = TLabel of string | TMinus | TSlash | TBar | TPlus | TStar | TQuest | TLpar | TRpar

let is_label_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':' || c = '.' || c = '\''

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '-' -> go (i + 1) (TMinus :: acc)
      | '/' -> go (i + 1) (TSlash :: acc)
      | '|' -> go (i + 1) (TBar :: acc)
      | '+' -> go (i + 1) (TPlus :: acc)
      | '*' -> go (i + 1) (TStar :: acc)
      | '?' -> go (i + 1) (TQuest :: acc)
      | '(' -> go (i + 1) (TLpar :: acc)
      | ')' -> go (i + 1) (TRpar :: acc)
      | c when is_label_char c ->
        let j = ref i in
        while !j < n && is_label_char s.[!j] do
          incr j
        done;
        go !j (TLabel (String.sub s i (!j - i)) :: acc)
      | c -> fail "unexpected character %C in path expression %S" c s
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser                                            *)
(*   alt  := juxt ('|' juxt)*                                          *)
(*   juxt := seq seq*          -- juxtaposition is alternation, as in   *)
(*                                the paper's (isL dw subClassOf) lists *)
(*   seq  := post ('/' post)*                                          *)
(*   post := atom ('+'|'*'|'?')*                                       *)
(*   atom := '-' atom | label | '(' alt ')'                            *)
(* ------------------------------------------------------------------ *)

let parse s =
  let tokens = ref (tokenize s) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () = match !tokens with [] -> () | _ :: rest -> tokens := rest in
  let rec alt () =
    let left = juxt () in
    match peek () with
    | Some TBar ->
      advance ();
      Alt (left, alt ())
    | _ -> left
  and juxt () =
    let left = seq () in
    match peek () with
    | Some (TLabel _ | TMinus | TLpar) -> Alt (left, juxt ())
    | _ -> left
  and seq () =
    let left = post () in
    match peek () with
    | Some TSlash ->
      advance ();
      Seq (left, seq ())
    | _ -> left
  and post () =
    let a = ref (atom ()) in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some TPlus ->
        advance ();
        a := Plus !a
      | Some TStar ->
        advance ();
        a := Star !a
      | Some TQuest ->
        advance ();
        a := Opt !a
      | _ -> continue := false
    done;
    !a
  and atom () =
    match peek () with
    | Some TMinus ->
      advance ();
      Inv (atom_postfix ())
    | Some (TLabel l) ->
      advance ();
      Label l
    | Some TLpar ->
      advance ();
      let inner = alt () in
      (match peek () with
      | Some TRpar ->
        advance ();
        inner
      | _ -> fail "missing ')' in %S" s)
    | Some _ | None -> fail "unexpected token in %S" s
  and atom_postfix () =
    (* after '-', allow a single atom possibly with postfix operators so
       that -a+ reads as (-a)+ the way the paper's queries use it *)
    let a = atom () in
    a
  in
  let result = alt () in
  (match !tokens with [] -> () | _ -> fail "trailing tokens in %S" s);
  result

let rec nullable = function
  | Label _ | Inv _ -> false
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Plus a -> nullable a
  | Star _ | Opt _ -> true

let labels r =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Label l ->
      if not (Hashtbl.mem seen l) then begin
        Hashtbl.replace seen l ();
        out := l :: !out
      end
    | Inv a | Plus a | Star a | Opt a -> go a
    | Seq (a, b) | Alt (a, b) ->
      go a;
      go b
  in
  go r;
  List.rev !out

let rec push_inverses = function
  | Label _ as l -> l
  | Inv (Label _) as l -> l
  | Inv (Inv a) -> push_inverses a
  | Inv (Seq (a, b)) -> Seq (push_inverses (Inv b), push_inverses (Inv a))
  | Inv (Alt (a, b)) -> Alt (push_inverses (Inv a), push_inverses (Inv b))
  | Inv (Plus a) -> Plus (push_inverses (Inv a))
  | Inv (Star a) -> Star (push_inverses (Inv a))
  | Inv (Opt a) -> Opt (push_inverses (Inv a))
  | Seq (a, b) -> Seq (push_inverses a, push_inverses b)
  | Alt (a, b) -> Alt (push_inverses a, push_inverses b)
  | Plus a -> Plus (push_inverses a)
  | Star a -> Star (push_inverses a)
  | Opt a -> Opt (push_inverses a)

let equal (a : t) (b : t) = a = b

let rec pp ppf = function
  | Label l -> Format.pp_print_string ppf l
  | Inv a -> Format.fprintf ppf "-%a" pp_atom a
  | Seq (a, b) -> Format.fprintf ppf "%a/%a" pp_seq_operand a pp_seq_operand b
  | Alt (a, b) -> Format.fprintf ppf "%a|%a" pp a pp b
  | Plus a -> Format.fprintf ppf "%a+" pp_atom a
  | Star a -> Format.fprintf ppf "%a*" pp_atom a
  | Opt a -> Format.fprintf ppf "%a?" pp_atom a

and pp_atom ppf = function
  | (Label _ | Inv _) as a -> pp ppf a
  | a -> Format.fprintf ppf "(%a)" pp a

and pp_seq_operand ppf = function
  | Alt _ as a -> Format.fprintf ppf "(%a)" pp a
  | a -> pp ppf a

let to_string r = Format.asprintf "%a" pp r
