(** Regular path expressions — the path language of UCRPQs.

    Concrete syntax (used by {!parse} and by {!Query.parse}):
    - [a]        edge labelled [a] (labels may contain letters, digits,
                 [_], [:], ['.'] and ['']);
    - [-a]       inverse edge (traversed target-to-source);
    - [e1/e2]    concatenation;
    - [e1|e2]    alternation;
    - [e+]       one or more;
    - [e*]       zero or more;
    - [e?]       optional;
    - parentheses for grouping.

    [*] and [?] introduce the empty path, which relational algebra has no
    identity relation for; they are supported wherever they can be
    expanded away inside a concatenation or alternation (e.g. [a*/b]
    becomes [b | a+/b]). A query whose whole path can match the empty
    word is rejected at translation time. *)

type t =
  | Label of string
  | Inv of t
  | Seq of t * t
  | Alt of t * t
  | Plus of t
  | Star of t
  | Opt of t

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error *)

val nullable : t -> bool
(** Can the expression match the empty path? *)

val labels : t -> string list
(** All labels mentioned, without duplicates. *)

val push_inverses : t -> t
(** Normalise so that [Inv] applies to labels only
    (-(a/b) = -b/-a, -(e+) = (-e)+, ...). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
