test/gen_terms.ml: List Mura Pred QCheck2 Rel Relation Schema
