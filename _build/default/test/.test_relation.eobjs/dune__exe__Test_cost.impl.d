test/test_cost.ml: Alcotest Cost Float List Mura Pred QCheck2 QCheck_alcotest Rel Relation Rewrite Schema Value
