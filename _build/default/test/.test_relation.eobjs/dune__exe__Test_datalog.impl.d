test/test_datalog.ml: Alcotest Array Datalog Distsim List Mura Pred QCheck2 QCheck_alcotest Rel Relation Rpq Schema String Value
