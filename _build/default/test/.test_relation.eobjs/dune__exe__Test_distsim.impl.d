test/test_distsim.ml: Alcotest Array Deadline Distsim Hashtbl List Pred QCheck2 QCheck_alcotest Rel Relation Schema Tset
