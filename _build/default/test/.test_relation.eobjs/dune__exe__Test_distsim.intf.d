test/test_distsim.mli:
