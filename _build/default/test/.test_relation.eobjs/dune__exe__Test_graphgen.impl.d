test/test_graphgen.ml: Alcotest Array Dict Graphgen Hashtbl List Mura Option Pred Printf Rel Relation Value
