test/test_harness.ml: Alcotest Graphgen Harness Lazy List Mura Option Printexc Relation Rpq String Value
