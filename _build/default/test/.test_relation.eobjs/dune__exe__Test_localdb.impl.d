test/test_localdb.ml: Alcotest Gen_terms List Localdb Mura Pred QCheck2 QCheck_alcotest Rel Relation Schema String
