test/test_localdb.mli:
