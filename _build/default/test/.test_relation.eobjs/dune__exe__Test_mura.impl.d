test/test_mura.ml: Agg Alcotest Array Eval Fcond Gen_terms Hashtbl List Mura Patterns Pred QCheck2 QCheck_alcotest Rel Relation Result Schema Stabilizer Term Typing Value
