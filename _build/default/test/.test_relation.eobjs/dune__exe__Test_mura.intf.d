test/test_mura.mli:
