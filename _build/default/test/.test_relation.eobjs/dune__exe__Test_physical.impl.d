test/test_physical.ml: Alcotest Array Distsim Gen_terms List Mura Physical Pred Printf QCheck2 QCheck_alcotest Rel Relation Schema String Value
