test/test_pregel.ml: Alcotest Distsim List Mura Pred Pregel QCheck2 QCheck_alcotest Rel Relation Rpq Schema Value
