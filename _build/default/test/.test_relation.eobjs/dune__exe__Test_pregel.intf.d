test/test_pregel.mli:
