test/test_relation.ml: Alcotest Array Dict Filename List Pred QCheck2 QCheck_alcotest Rel Rel_io Relation Schema Sys Tset Tuple Value
