test/test_rewrite.ml: Alcotest Cost Gen_terms List Mura Pred QCheck2 QCheck_alcotest Rel Relation Rewrite Rpq Schema Value
