test/test_rpq.ml: Alcotest List Mura QCheck2 QCheck_alcotest Rel Relation Rpq Schema Value
