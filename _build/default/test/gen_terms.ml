(* Shared QCheck generators: random binary path-algebra terms over the
   relations E and S (both with schema (src, trg)), exercising
   composition, union, selection, inversion and closures in arbitrary
   nesting. Used by several suites to cross-check engines. *)

open Relation
module Term = Mura.Term
module P = Mura.Patterns

let schema = Schema.of_list [ "src"; "trg" ]

let graph_gen ?(max_node = 9) ?(max_edges = 25) () =
  let open QCheck2.Gen in
  let edge = pair (int_range 0 max_node) (int_range 0 max_node) in
  let+ edges = list_size (int_range 1 max_edges) edge in
  Rel.of_tuples schema (List.map (fun (s, t) -> [| s; t |]) edges)

let invert t = Term.Rename ([ ("src", "trg"); ("trg", "src") ], t)

(* Terms are built to always have schema (src, trg) and satisfy F_cond,
   so every engine accepts them. *)
let term_gen ?(depth = 3) () =
  let open QCheck2.Gen in
  let base = oneofl [ Term.Rel "E"; Term.Rel "S" ] in
  let rec go d =
    if d = 0 then base
    else
      let sub = go (d - 1) in
      let sub2 = go (d - 1) in
      oneof
        [
          base;
          map2 P.compose sub sub2;
          map2 (fun a b -> Term.Union (a, b)) sub sub2;
          map P.closure sub;
          map P.closure_rev sub;
          map invert sub;
          map2
            (fun v t -> Term.Select (Pred.Eq_const ("src", v), t))
            (int_range 0 9) sub;
          map2
            (fun v t -> Term.Select (Pred.Eq_const ("trg", v), t))
            (int_range 0 9) sub;
        ]
  in
  go depth

let env_gen =
  let open QCheck2.Gen in
  let+ e = graph_gen () and+ s = graph_gen ~max_edges:10 () in
  [ ("E", e); ("S", s) ]

let term_and_env_gen = QCheck2.Gen.pair (term_gen ()) env_gen
