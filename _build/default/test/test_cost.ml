(* Tests for the cost estimator: sanity of cardinality estimates and the
   plan-ranking behaviour the rewriter relies on. *)

open Relation
module Term = Mura.Term
module P = Mura.Patterns
module Stats = Cost.Stats
module Estimate = Cost.Estimate

let sch = Schema.of_list
let check_bool = Alcotest.(check bool)

let a = Value.of_string "a"
let b = Value.of_string "b"

let chain n label start =
  List.init n (fun i -> [ start + i; label; start + i + 1 ])

let labelled =
  Rel.of_list (sch [ "src"; "pred"; "trg" ]) (chain 30 a 0 @ chain 10 b 100)

let tables = [ ("E", labelled) ]
let stats = Stats.of_tables tables

let test_stats_basics () =
  Alcotest.(check (option int)) "count" (Some 40) (Stats.count stats "E");
  Alcotest.(check (option int)) "distinct pred" (Some 2) (Stats.distinct stats "E" "pred");
  Alcotest.(check (option int)) "unknown rel" None (Stats.count stats "nope");
  Alcotest.(check (option int)) "unknown col" None (Stats.distinct stats "E" "zzz")

let test_select_estimate () =
  let whole = Estimate.cardinality stats (Term.Rel "E") in
  let filtered =
    Estimate.cardinality stats (Term.Select (Pred.Eq_const ("pred", a), Term.Rel "E"))
  in
  check_bool "filter shrinks" true (filtered < whole);
  check_bool "about half" true (filtered >= whole /. 4. && filtered <= whole)

let test_join_estimate () =
  let e2 =
    Term.Antiproject
      ( [ "m" ],
        Term.Join
          ( Term.rename1 "trg" "m" (Term.Antiproject ([ "pred" ], Term.Rel "E")),
            Term.rename1 "src" "m" (Term.Antiproject ([ "pred" ], Term.Rel "E")) ) )
  in
  let est = Estimate.cardinality stats e2 in
  check_bool "2-paths bounded" true (est >= 1. && est <= 40. *. 40.)

let test_fix_estimate_grows () =
  let base = Estimate.cardinality stats (P.edge "a") in
  let closure = Estimate.cardinality stats (P.closure (P.edge "a")) in
  check_bool "closure >= base" true (closure >= base);
  (* capped: not astronomically larger than the domain *)
  check_bool "closure capped" true (closure <= 1e9)

let test_ranking_filter_push () =
  (* pushed filter must be estimated cheaper than filtering afterwards *)
  let unpushed = Term.Select (Pred.Eq_const ("src", 0), P.closure (P.edge "a")) in
  let pushed =
    P.closure_from (Term.Select (Pred.Eq_const ("src", 0), P.edge "a")) (P.edge "a")
  in
  check_bool "pushed filter cheaper" true
    (Estimate.cost stats pushed < Estimate.cost stats unpushed)

let test_ranking_merge () =
  let joined = Rewrite.Shapes.mk_compose (P.closure (P.edge "a")) (P.closure (P.edge "b")) in
  let merged =
    Rewrite.Shapes.mk_merged ~first:(P.edge "a") ~second:(P.edge "b")
  in
  check_bool "merged fixpoint cheaper than join of closures" true
    (Estimate.cost stats merged < Estimate.cost stats joined)

let test_estimator_total () =
  (* the estimator must never raise, whatever the term *)
  let terms =
    [
      Term.Rel "unknown";
      Term.Var "X";
      Term.Fix ("X", Term.Var "X");
      Term.Union (Term.Rel "E", Term.Rel "E");
      Term.Antijoin (Term.Rel "E", Term.Rel "unknown");
      P.closure (P.edge "nolabel");
    ]
  in
  List.iter (fun t -> ignore (Estimate.cost stats t)) terms

let prop_estimates_positive =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"estimates are positive and finite"
       (QCheck2.Gen.oneofl
          [
            Term.Rel "E";
            P.edge "a";
            P.closure (P.edge "a");
            Rewrite.Shapes.mk_merged ~first:(P.edge "a") ~second:(P.edge "b");
            Term.Select (Pred.Eq_const ("src", 3), P.closure (P.edge "a"));
            Term.Antiproject ([ "src" ], P.closure (P.edge "a"));
          ])
       (fun t ->
         let c = Estimate.cost stats t and card = Estimate.cardinality stats t in
         c > 0. && card > 0. && Float.is_finite c && Float.is_finite card))

let () =
  Alcotest.run "cost"
    [
      ( "stats",
        [ Alcotest.test_case "basics" `Quick test_stats_basics ] );
      ( "estimates",
        [
          Alcotest.test_case "select" `Quick test_select_estimate;
          Alcotest.test_case "join" `Quick test_join_estimate;
          Alcotest.test_case "fixpoint" `Quick test_fix_estimate_grows;
          Alcotest.test_case "total" `Quick test_estimator_total;
          prop_estimates_positive;
        ] );
      ( "ranking",
        [
          Alcotest.test_case "filter push" `Quick test_ranking_filter_push;
          Alcotest.test_case "merge fixpoints" `Quick test_ranking_merge;
        ] );
    ]
