(* Tests for the Datalog baseline: parser, centralized semi-naive
   evaluation, magic specialization, GPS decomposability, and the
   distributed modes — all cross-checked against the mu-RA engine. *)

open Relation
module Ast = Datalog.Ast
module Parse = Datalog.Parse
module Eval = Datalog.Eval
module Dist = Datalog.Dist
module Magic = Datalog.Magic

let sch = Schema.of_list
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Datalog answers are named after the query's variables; compare
   positionally against mu-RA results. *)
let check_rel msg expected actual =
  let expected = Eval.positional expected and actual = Eval.positional actual in
  if not (Rel.equal expected actual) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Rel.pp_full expected Rel.pp_full actual

let edges = Rel.of_list (sch [ "src"; "trg" ]) [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 2; 5 ]; [ 5; 1 ] ]

let tc_program = "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- tc(X, Y), edge(Y, Z).\n?- tc(X, Y)."

let expected_tc =
  Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) (Mura.Patterns.closure (Mura.Term.Rel "E"))

let test_parse () =
  let p = Parse.program tc_program in
  check_int "two rules" 2 (List.length p.rules);
  Alcotest.(check (list string)) "idb" [ "tc" ] (Ast.idb_preds p);
  Alcotest.(check (list string)) "edb" [ "edge" ] (Ast.edb_preds p);
  check_bool "recursive" true (Ast.is_recursive p "tc");
  (* constants of each kind *)
  let q = Parse.atom "p(X, 3, \"lbl\", japan)" in
  check_int "arity" 4 (List.length q.args);
  check_bool "var" true (List.nth q.args 0 = Ast.Var "X");
  check_bool "int const" true (List.nth q.args 1 = Ast.Const 3);
  check_bool "string const" true (List.nth q.args 2 = Ast.Const (Value.of_string "lbl"));
  check_bool "lowercase const" true (List.nth q.args 3 = Ast.Const (Value.of_string "japan"))

let test_parse_errors () =
  let expect_fail s =
    match Parse.program s with
    | (_ : Ast.program) -> Alcotest.failf "expected parse error for %S" s
    | exception Parse.Parse_error _ -> ()
  in
  expect_fail "p(X) :- q(X)";
  (* missing dot *)
  expect_fail "p(X) :- q(X). ?- p(X). ?- p(X).";
  (* double query *)
  expect_fail "p(X, Y) :- q(X). ?- p(X, Y).";
  (* unsafe head *)
  expect_fail "p(X) :- q(X). ?- p(X, Y)." (* arity clash *)

let test_eval_tc () =
  let p = Parse.program tc_program in
  let result = Eval.run [ ("edge", edges) ] p in
  check_rel "transitive closure" expected_tc result

let test_eval_bound_query () =
  let p = Parse.program "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- tc(X, Y), edge(Y, Z).\n?- tc(1, Y)." in
  let result = Eval.run [ ("edge", edges) ] p in
  let expected = Rel.project [ "trg" ] (Rel.select (Pred.Eq_const ("src", 1)) expected_tc) in
  check_bool "bound query" true (Rel.cardinal result = Rel.cardinal expected)

let test_eval_nonlinear () =
  (* doubling rule: tc(X,Z) :- tc(X,Y), tc(Y,Z) — non-linear datalog is
     fine for the engine *)
  let p = Parse.program "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- tc(X, Y), tc(Y, Z).\n?- tc(X, Y)." in
  check_rel "nonlinear tc" expected_tc (Eval.run [ ("edge", edges) ] p)

let test_eval_same_generation () =
  let parent = Rel.of_list (sch [ "src"; "trg" ]) [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 3 ]; [ 2; 4 ] ] in
  let p =
    Parse.program
      "sg(X, Y) :- edge(P, X), edge(P, Y).\n\
       sg(X, Y) :- edge(A, X), sg(A, B), edge(B, Y).\n\
       ?- sg(X, Y)."
  in
  let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", parent) ]) (Mura.Patterns.same_generation ()) in
  check_rel "same generation" expected (Eval.run [ ("edge", parent) ] p)

let test_pivot_analysis () =
  let p = Parse.program tc_program in
  Alcotest.(check (option int)) "left-linear tc pivots on arg 0" (Some 0) (Dist.pivot_of p "tc");
  (* right-linear: pivot on arg 1 *)
  let pr = Parse.program "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n?- tc(X, Z)." in
  Alcotest.(check (option int)) "right-linear pivots on arg 1" (Some 1) (Dist.pivot_of pr "tc");
  (* same generation: no pivot *)
  let sg =
    Parse.program
      "sg(X, Y) :- edge(P, X), edge(P, Y).\nsg(X, Y) :- edge(A, X), sg(A, B), edge(B, Y).\n?- sg(X, Y)."
  in
  Alcotest.(check (option int)) "same generation has no pivot" None (Dist.pivot_of sg "sg")

let test_magic_specialization () =
  let p = Parse.program "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- tc(X, Y), edge(Y, Z).\n?- tc(1, Y)." in
  let sp = Magic.specialize p in
  (* the closure predicate became unary (bound-free adornment) *)
  check_bool "program changed" true (Ast.to_string sp <> Ast.to_string p);
  check_bool "bf predicate introduced" true
    (List.exists (fun (r : Ast.rule) -> List.length r.head.args = 1) sp.rules);
  check_rel "specialized result unchanged"
    (Eval.run [ ("edge", edges) ] p)
    (Eval.run [ ("edge", edges) ] sp);
  (* right-bound query must NOT be specialised (left-linear program) *)
  let pr = Parse.program "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- tc(X, Y), edge(Y, Z).\n?- tc(X, 4)." in
  check_bool "right constant not pushed" true (Ast.to_string (Magic.specialize pr) = Ast.to_string pr)

let test_dist_bigdatalog_decomposable () =
  let cluster = Distsim.Cluster.make ~workers:4 () in
  let config = Dist.default_config cluster in
  let p = Parse.program tc_program in
  let result, report = Dist.run config [ ("edge", edges) ] p in
  check_rel "distributed tc" expected_tc result;
  check_bool "pivot used" true (List.mem_assoc "tc" report.pivots && List.assoc "tc" report.pivots = Some 0)

let test_dist_global_loop () =
  let cluster = Distsim.Cluster.make ~workers:4 () in
  let config = Dist.default_config ~mode:Dist.Myria cluster in
  let p = Parse.program tc_program in
  let m = Distsim.Cluster.metrics cluster in
  let result, report = Dist.run config [ ("edge", edges) ] p in
  check_rel "myria tc" expected_tc result;
  check_bool "several rounds" true (report.rounds > 3);
  check_bool "shuffles every round" true (m.Distsim.Metrics.shuffles >= report.rounds - 2)

let test_dist_memory_failure () =
  let cluster = Distsim.Cluster.make ~workers:2 () in
  let config = { (Dist.default_config ~mode:Dist.Myria cluster) with max_facts = 5 } in
  let p = Parse.program tc_program in
  match Dist.run config [ ("edge", edges) ] p with
  | (_ : Rel.t * Dist.report) -> Alcotest.fail "expected Engine_failure"
  | exception Dist.Engine_failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Stratified negation                                                 *)
(* ------------------------------------------------------------------ *)

let test_negation_parse_and_stratify () =
  let p =
    Parse.program
      "tc(X, Y) :- edge(X, Y).\n\
       tc(X, Z) :- tc(X, Y), edge(Y, Z).\n\
       unreachable(X, Y) :- node(X), node(Y), !tc(X, Y).\n\
       ?- unreachable(X, Y)."
  in
  check_int "one negated atom" 1
    (List.length (List.find (fun (r : Ast.rule) -> r.head.pred = "unreachable") p.rules).neg);
  (match Ast.stratify p with
  | [ [ "tc" ]; [ "unreachable" ] ] -> ()
  | strata ->
    Alcotest.failf "unexpected strata: %s"
      (String.concat " | " (List.map (String.concat ",") strata)));
  (* 'not' keyword is accepted too *)
  let p2 = Parse.program "p(X) :- node(X), not q(X).\nq(X) :- edge(X, X).\n?- p(X)." in
  check_int "not keyword" 1 (List.length (List.hd p2.rules).neg)

let test_negation_rejects_unstratifiable () =
  match Parse.program "p(X) :- node(X), !q(X).\nq(X) :- node(X), !p(X).\n?- p(X)." with
  | (_ : Ast.program) -> Alcotest.fail "expected stratification failure"
  | exception Parse.Parse_error _ -> ()

let test_negation_unsafe_rejected () =
  match Parse.program "p(X) :- node(X), !q(X, Y).\nq(X, Y) :- edge(X, Y).\n?- p(X)." with
  | (_ : Ast.program) -> Alcotest.fail "expected safety failure"
  | exception Parse.Parse_error _ -> ()

let test_negation_semantics () =
  (* unreachable pairs = all pairs minus the transitive closure *)
  let nodes =
    Rel.of_list (sch [ "n" ]) (List.sort_uniq compare (Rel.fold (fun tu acc -> [ tu.(0) ] :: [ tu.(1) ] :: acc) edges []))
  in
  let p =
    Parse.program
      "tc(X, Y) :- edge(X, Y).\n\
       tc(X, Z) :- tc(X, Y), edge(Y, Z).\n\
       unreachable(X, Y) :- node(X), node(Y), !tc(X, Y).\n\
       ?- unreachable(X, Y)."
  in
  let db = [ ("edge", edges); ("node", nodes) ] in
  let result = Eval.run db p in
  let n = Rel.cardinal nodes in
  check_int "complement size" ((n * n) - Rel.cardinal expected_tc) (Rel.cardinal result);
  (* distributed modes agree *)
  List.iter
    (fun mode ->
      let cluster = Distsim.Cluster.make ~workers:3 () in
      let dist, _ = Dist.run (Dist.default_config ~mode cluster) db p in
      check_rel "distributed negation" result dist)
    [ Dist.Bigdatalog; Dist.Myria ]

let test_negation_edb_atom () =
  (* negation directly over an extensional relation *)
  let blocked = Rel.of_list (sch [ "n" ]) [ [ 1 ] ] in
  let p = Parse.program "out(X, Y) :- edge(X, Y), !blocked(X).\n?- out(X, Y)." in
  let result = Eval.run [ ("edge", edges); ("blocked", blocked) ] p in
  check_rel "edges not starting at 1"
    (Rel.select (Pred.Not (Pred.Eq_const ("src", 1))) edges)
    result

let test_of_rpq () =
  let a = Value.of_string "a" and b = Value.of_string "b" in
  let g =
    Rel.of_list (sch [ "src"; "pred"; "trg" ])
      [ [ 0; a; 1 ]; [ 1; a; 2 ]; [ 2; b; 3 ]; [ 1; b; 4 ] ]
  in
  let q = Rpq.Query.parse "?x, ?y <- ?x a+/b ?y" in
  let program = Datalog.Of_rpq.program q in
  let dl = Eval.run (Datalog.Of_rpq.db_of_edges g) program in
  let mu = Mura.Eval.eval (Mura.Eval.env [ ("E", g) ]) (Rpq.Query.to_term q) in
  check_bool "datalog ≡ mu-RA on a+/b" true (Rel.cardinal dl = Rel.cardinal mu)

let random_labelled_gen =
  let a = Value.of_string "a" and b = Value.of_string "b" in
  let open QCheck2.Gen in
  let edge = triple (int_range 0 7) (oneofl [ a; b ]) (int_range 0 7) in
  let+ edges = list_size (int_range 1 25) edge in
  Rel.of_tuples (sch [ "src"; "pred"; "trg" ])
    (List.map (fun (s, p, t) -> [| s; p; t |]) edges)

let query_pool =
  [
    "?x, ?y <- ?x a+ ?y";
    "?x <- ?x a+ 3";
    "?x <- 0 a+ ?x";
    "?x, ?y <- ?x a+/b ?y";
    "?x, ?y <- ?x b/a+ ?y";
    "?x, ?y <- ?x a+/b+ ?y";
    "?x, ?y <- ?x (a/-b)+ ?y";
  ]

let prop_datalog_eq_mura =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"datalog ≡ mu-RA on RPQs"
       QCheck2.Gen.(pair random_labelled_gen (oneofl query_pool))
       (fun (g, qs) ->
         let q = Rpq.Query.parse qs in
         let dl = Eval.run (Datalog.Of_rpq.db_of_edges g) (Datalog.Of_rpq.program q) in
         let mu = Mura.Eval.eval (Mura.Eval.env [ ("E", g) ]) (Rpq.Query.to_term q) in
         Rel.equal (Rel.of_tset (Rel.schema dl) (Rel.tuples dl))
           (Rel.of_tset (Rel.schema dl) (Rel.tuples mu))))

let prop_dist_eq_central =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"distributed datalog ≡ centralized"
       QCheck2.Gen.(triple random_labelled_gen (oneofl query_pool) (int_range 1 4))
       (fun (g, qs, workers) ->
         let q = Rpq.Query.parse qs in
         let program = Datalog.Of_rpq.program q in
         let db = Datalog.Of_rpq.db_of_edges g in
         let central = Eval.run db program in
         List.for_all
           (fun mode ->
             let cluster = Distsim.Cluster.make ~workers () in
             let config = Dist.default_config ~mode cluster in
             let dist, _ = Dist.run config db program in
             Rel.equal central dist)
           [ Dist.Bigdatalog; Dist.Myria ]))

let prop_magic_preserves =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"magic specialization preserves results"
       QCheck2.Gen.(pair random_labelled_gen (oneofl [ "?x <- 0 a+ ?x"; "?x <- 1 (a/-b)+ ?x" ]))
       (fun (g, qs) ->
         let program = Datalog.Of_rpq.program (Rpq.Query.parse qs) in
         let db = Datalog.Of_rpq.db_of_edges g in
         Rel.equal (Eval.run db program) (Eval.run db (Magic.specialize program))))

let () =
  Alcotest.run "datalog"
    [
      ( "parser",
        [
          Alcotest.test_case "basics" `Quick test_parse;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "eval",
        [
          Alcotest.test_case "transitive closure" `Quick test_eval_tc;
          Alcotest.test_case "bound query" `Quick test_eval_bound_query;
          Alcotest.test_case "nonlinear" `Quick test_eval_nonlinear;
          Alcotest.test_case "same generation" `Quick test_eval_same_generation;
        ] );
      ( "optimization",
        [
          Alcotest.test_case "pivot analysis" `Quick test_pivot_analysis;
          Alcotest.test_case "magic specialization" `Quick test_magic_specialization;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "decomposable plan" `Quick test_dist_bigdatalog_decomposable;
          Alcotest.test_case "global loop" `Quick test_dist_global_loop;
          Alcotest.test_case "memory failure" `Quick test_dist_memory_failure;
        ] );
      ( "stratified negation",
        [
          Alcotest.test_case "parse & stratify" `Quick test_negation_parse_and_stratify;
          Alcotest.test_case "unstratifiable rejected" `Quick test_negation_rejects_unstratifiable;
          Alcotest.test_case "unsafe rejected" `Quick test_negation_unsafe_rejected;
          Alcotest.test_case "semantics" `Quick test_negation_semantics;
          Alcotest.test_case "EDB negation" `Quick test_negation_edb_atom;
        ] );
      ( "rpq translation",
        [ Alcotest.test_case "a+/b" `Quick test_of_rpq ] );
      ("properties", [ prop_datalog_eq_mura; prop_dist_eq_central; prop_magic_preserves ]);
    ]
