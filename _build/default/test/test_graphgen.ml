(* Tests for the dataset generators. *)

open Relation
module G = Graphgen.Generators
module Rng = Graphgen.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_rng_determinism () =
  let a = Rng.create 99 and b = Rng.create 99 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 100 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then differs := true
  done;
  check_bool "different seeds differ" true !differs

let test_rng_ranges () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    check_bool "bounded" true (v >= 0 && v < 7);
    let f = Rng.float rng in
    check_bool "unit float" true (f >= 0. && f < 1.)
  done

let test_rng_zipf () =
  let rng = Rng.create 5 in
  let counts = Array.make 10 0 in
  for _ = 1 to 5000 do
    let k = Rng.zipf rng ~n:10 ~s:1.0 in
    counts.(k) <- counts.(k) + 1
  done;
  check_bool "rank 0 most frequent" true (counts.(0) > counts.(5));
  check_bool "heavy head" true (counts.(0) > 800)

let test_erdos_renyi () =
  let g = G.erdos_renyi ~seed:3 ~nodes:500 ~p:0.004 () in
  let m = Rel.cardinal g in
  (* expected ~ 0.004 * 500 * 499 / 2 ≈ 499 (the paper's sizing) *)
  check_bool (Printf.sprintf "edge count %d near expectation" m) true (m > 350 && m < 600);
  Rel.iter (fun tu -> check_bool "no self loop" true (tu.(0) <> tu.(1))) g;
  check_bool "deterministic" true (Rel.equal g (G.erdos_renyi ~seed:3 ~nodes:500 ~p:0.004 ()))

let test_random_tree () =
  let t = G.random_tree ~seed:4 ~nodes:200 () in
  check_int "n-1 edges" 199 (Rel.cardinal t);
  (* every node except the root has exactly one parent *)
  let indeg = Hashtbl.create 256 in
  Rel.iter
    (fun tu -> Hashtbl.replace indeg tu.(1) (1 + Option.value ~default:0 (Hashtbl.find_opt indeg tu.(1))))
    t;
  Hashtbl.iter (fun _ d -> check_int "one parent" 1 d) indeg;
  check_int "199 children" 199 (Hashtbl.length indeg);
  check_bool "root 0 has no parent" true (not (Hashtbl.mem indeg 0));
  (* parent ids are smaller than child ids by construction *)
  Rel.iter (fun tu -> check_bool "parent < child" true (tu.(0) < tu.(1))) t

let test_chain_cycle () =
  let c = G.chain ~nodes:10 in
  check_int "chain edges" 9 (Rel.cardinal c);
  let y = G.cycle ~nodes:10 in
  check_int "cycle edges" 10 (Rel.cardinal y);
  check_bool "closing edge" true (Rel.mem y [| 9; 0 |])

let test_add_labels () =
  let g = G.chain ~nodes:50 in
  let lg = G.add_labels ~seed:8 ~labels:[ "a"; "b"; "c" ] g in
  check_int "same edge count" 49 (Rel.cardinal lg);
  check_int "three labels used" 3 (Rel.distinct_count lg "pred")

let test_labelled_chain () =
  let lc = G.labelled_chain ~labels:[ "a"; "b" ] ~segment:5 in
  check_int "10 edges" 10 (Rel.cardinal lc);
  let a_edges = Rel.select (Pred.Eq_const ("pred", Value.of_string "a")) lc in
  check_int "5 a-edges" 5 (Rel.cardinal a_edges);
  (* a^n b^n paths exist: anbn over this chain must be non-empty *)
  let res =
    Mura.Eval.eval (Mura.Eval.env [ ("R", lc) ]) (Mura.Patterns.anbn ~a:"a" ~b:"b" ())
  in
  check_bool "anbn nonempty" true (Rel.cardinal res > 0);
  check_bool "perfect middle match" true (Rel.mem res [| 0; 10 |])

let test_preferential_attachment () =
  let g = G.preferential_attachment ~seed:5 ~nodes:300 ~edges_per_node:2 () in
  check_bool "enough edges" true (Rel.cardinal g > 300);
  (* hubs exist: max in-degree well above the average *)
  let indeg = Hashtbl.create 256 in
  Rel.iter
    (fun tu -> Hashtbl.replace indeg tu.(1) (1 + Option.value ~default:0 (Hashtbl.find_opt indeg tu.(1))))
    g;
  let maxd = Hashtbl.fold (fun _ d acc -> max d acc) indeg 0 in
  check_bool "hub present" true (maxd > 8)

let test_yago_like () =
  let g = Graphgen.Yago_like.generate ~seed:1 ~scale:2000 () in
  check_bool "substantial graph" true (Rel.cardinal g > 5000);
  (* all constants used by the queries exist *)
  List.iter
    (fun c ->
      match Dict.find_opt c with
      | Some h ->
        check_bool (c ^ " appears") true
          (Rel.exists (fun tu -> tu.(0) = h || tu.(2) = h) g)
      | None -> Alcotest.failf "constant %s never interned" c)
    Graphgen.Yago_like.constants;
  (* isLocatedIn chains reach depth > 1 (isL+ non-trivial) *)
  let isl = Value.of_string "isLocatedIn" in
  let edges =
    Rel.antiproject [ "pred" ] (Rel.select (Pred.Eq_const ("pred", isl)) g)
  in
  let tc = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) (Mura.Patterns.closure (Mura.Term.Rel "E")) in
  check_bool "isLocatedIn+ bigger than isLocatedIn" true (Rel.cardinal tc > Rel.cardinal edges)

let test_uniprot_like () =
  let g = Graphgen.Uniprot_like.generate ~seed:2 ~scale:20_000 () in
  let m = Rel.cardinal g in
  check_bool (Printf.sprintf "edge count %d near scale" m) true (m > 12_000 && m <= 21_000);
  check_int "seven predicates" 7 (Rel.distinct_count g "pred");
  check_bool "keyword constant available" true (Graphgen.Uniprot_like.some_keyword g <> None);
  check_bool "publication constant available" true (Graphgen.Uniprot_like.some_publication g <> None)

let () =
  Alcotest.run "graphgen"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "zipf" `Quick test_rng_zipf;
        ] );
      ( "generators",
        [
          Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "chain/cycle" `Quick test_chain_cycle;
          Alcotest.test_case "add labels" `Quick test_add_labels;
          Alcotest.test_case "labelled chain" `Quick test_labelled_chain;
          Alcotest.test_case "preferential attachment" `Quick test_preferential_attachment;
        ] );
      ( "knowledge graphs",
        [
          Alcotest.test_case "yago-like" `Quick test_yago_like;
          Alcotest.test_case "uniprot-like" `Quick test_uniprot_like;
        ] );
    ]
