(* Tests for the local (PostgreSQL stand-in) engine: the volcano executor
   and the recursive work-table loop, checked against the mura
   evaluator. *)

open Relation
module Term = Mura.Term

let sch = Schema.of_list
let rel schema rows = Rel.of_list (sch schema) rows

let check_rel msg expected actual =
  if not (Rel.equal expected actual) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Rel.pp_full expected Rel.pp_full actual

let edges = rel [ "src"; "trg" ] [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 2; 5 ]; [ 5; 1 ] ]

let db_with_edges () =
  let db = Localdb.Instance.create () in
  Localdb.Instance.register db "E" edges;
  db

let test_catalog () =
  let db = db_with_edges () in
  Alcotest.(check bool) "lookup" true (Localdb.Instance.lookup db "E" <> None);
  Localdb.Instance.unregister db "E";
  Alcotest.(check bool) "gone" true (Localdb.Instance.lookup db "E" = None)

let test_scan_filter () =
  let db = db_with_edges () in
  check_rel "select"
    (rel [ "src"; "trg" ] [ [ 2; 3 ]; [ 2; 5 ] ])
    (Localdb.Instance.query db (Term.Select (Pred.Eq_const ("src", 2), Term.Rel "E")))

let test_join_plan () =
  let db = db_with_edges () in
  let t =
    Term.Antiproject
      ( [ "m" ],
        Term.Join (Term.rename1 "trg" "m" (Term.Rel "E"), Term.rename1 "src" "m" (Term.Rel "E"))
      )
  in
  let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) t in
  check_rel "2-paths" expected (Localdb.Instance.query db t)

let test_union_antijoin () =
  let db = db_with_edges () in
  let rev = Term.Rename ([ ("src", "trg"); ("trg", "src") ], Term.Rel "E") in
  let t = Term.Union (Term.Rel "E", rev) in
  let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) t in
  check_rel "union" expected (Localdb.Instance.query db t);
  let anti = Term.Antijoin (Term.Rel "E", Term.Project ([ "src" ], rev)) in
  let expected_anti = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) anti in
  check_rel "antijoin" expected_anti (Localdb.Instance.query db anti)

let test_recursive_closure () =
  let db = db_with_edges () in
  let t = Mura.Patterns.closure (Term.Rel "E") in
  let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) t in
  check_rel "transitive closure" expected (Localdb.Instance.query db t)

let test_fix_inside_expression () =
  let db = db_with_edges () in
  (* filter applied on top of a fixpoint *)
  let t = Term.Select (Pred.Eq_const ("src", 1), Mura.Patterns.closure (Term.Rel "E")) in
  let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) t in
  check_rel "filtered closure" expected (Localdb.Instance.query db t)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_explain () =
  let db = db_with_edges () in
  let t =
    Term.Select
      (Pred.Eq_const ("src", 2), Term.Join (Term.Rel "E", Term.rename1 "src" "s2" (Term.Rel "E")))
  in
  let text = Localdb.Instance.explain db t in
  Alcotest.(check bool) "mentions HashJoin" true (contains text "HashJoin");
  Alcotest.(check bool) "mentions Filter" true (contains text "Filter");
  Alcotest.(check bool) "mentions SeqScan" true (contains text "SeqScan")

let test_rows_scanned_counts () =
  let db = db_with_edges () in
  Localdb.Plan.reset_rows_scanned ();
  ignore (Localdb.Instance.query db (Term.Rel "E"));
  Alcotest.(check bool) "rows counted" true (Localdb.Plan.rows_scanned () >= Rel.cardinal edges)

(* ------------------------------------------------------------------ *)
(* SQL layer                                                           *)
(* ------------------------------------------------------------------ *)

let sql_db () =
  let db = Localdb.Instance.create () in
  Localdb.Instance.register db "edge" edges;
  db

let run_sql db q = Localdb.Sql.query db q

let test_sql_select_where () =
  let db = sql_db () in
  check_rel "select *" edges (run_sql db "SELECT * FROM edge");
  check_rel "where" (Rel.select (Pred.Eq_const ("src", 2)) edges)
    (run_sql db "SELECT * FROM edge WHERE src = 2");
  check_rel "projection + alias"
    (Rel.rename [ ("src", "a") ] (Rel.project [ "src" ] edges))
    (run_sql db "SELECT src AS a FROM edge")

let test_sql_join () =
  let db = sql_db () in
  let expected =
    Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ])
      (Term.Antiproject
         ( [ "m" ],
           Term.Join (Term.rename1 "trg" "m" (Term.Rel "E"), Term.rename1 "src" "m" (Term.Rel "E"))
         ))
  in
  check_rel "two-hop join"
    (Rel.rename [ ("src", "x"); ("trg", "y") ] expected)
    (run_sql db
       "SELECT a.src AS x, b.trg AS y FROM edge a JOIN edge b ON a.trg = b.src")

let test_sql_union_subquery () =
  let db = sql_db () in
  let reversed = Rel.rename [ ("src", "trg"); ("trg", "src") ] edges in
  check_rel "union with subquery" (Rel.union edges reversed)
    (run_sql db
       "SELECT src, trg FROM edge UNION SELECT t.trg AS src, t.src AS trg FROM (SELECT * FROM edge) t")

let test_sql_recursive_cte () =
  let db = sql_db () in
  let expected =
    Rel.rename [ ("src", "x"); ("trg", "y") ]
      (Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) (Mura.Patterns.closure (Term.Rel "E")))
  in
  check_rel "WITH RECURSIVE transitive closure" expected
    (run_sql db
       "WITH RECURSIVE tc AS (SELECT src AS x, trg AS y FROM edge UNION SELECT tc.x, e.trg AS y \
        FROM tc JOIN edge e ON tc.y = e.src) SELECT * FROM tc")

let test_sql_errors () =
  let db = sql_db () in
  let expect_fail q =
    match run_sql db q with
    | (_ : Rel.t) -> Alcotest.failf "expected Sql_error for %S" q
    | exception Localdb.Sql.Sql_error _ -> ()
  in
  expect_fail "SELECT * FROM missing";
  expect_fail "SELECT nope FROM edge";
  expect_fail "SELECT src FROM edge WHERE";
  expect_fail "SELECT * FROM edge UNION SELECT src FROM edge";
  expect_fail
    "WITH RECURSIVE tc AS (SELECT tc.x AS x FROM tc UNION SELECT src AS x FROM edge) SELECT * FROM tc"

let test_to_sql_roundtrip () =
  let db = sql_db () in
  Localdb.Instance.register db "E" edges;
  let tenv = Mura.Typing.env [ ("E", Rel.schema edges); ("edge", Rel.schema edges) ] in
  let term = Term.Select (Pred.Eq_const ("src", 1), Mura.Patterns.closure (Term.Rel "E")) in
  let sql = Localdb.To_sql.of_term tenv term in
  let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", edges) ]) term in
  check_rel "mu-RA -> SQL -> result" expected (run_sql db sql)

let prop_to_sql_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:80 ~name:"to_sql roundtrip ≡ mura on random terms"
       Gen_terms.term_and_env_gen (fun (t, tables) ->
         let db = Localdb.Instance.create () in
         List.iter (fun (n, r) -> Localdb.Instance.register db n r) tables;
         let tenv = Mura.Typing.env (List.map (fun (n, r) -> (n, Rel.schema r)) tables) in
         let expected = Mura.Eval.eval (Mura.Eval.env tables) t in
         match Localdb.To_sql.of_term tenv t with
         | sql -> Rel.equal expected (Localdb.Sql.query db sql)
         | exception Localdb.To_sql.Unsupported _ -> true))

let random_graph_gen =
  let open QCheck2.Gen in
  let edge = pair (int_range 0 10) (int_range 0 10) in
  let+ edges = list_size (int_range 0 30) edge in
  Rel.of_tuples (sch [ "src"; "trg" ]) (List.map (fun (s, t) -> [| s; t |]) edges)

let prop_localdb_eq_mura =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"localdb ≡ mura on closures"
       QCheck2.Gen.(pair random_graph_gen random_graph_gen)
       (fun (e, s) ->
         let db = Localdb.Instance.create () in
         Localdb.Instance.register db "E" e;
         Localdb.Instance.register db "S" s;
         let t = Mura.Patterns.closure_from (Term.Rel "S") (Term.Rel "E") in
         let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", e); ("S", s) ]) t in
         Rel.equal expected (Localdb.Instance.query db t)))

let prop_localdb_same_generation =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:50 ~name:"localdb ≡ mura on same-generation" random_graph_gen
       (fun e ->
         let db = Localdb.Instance.create () in
         Localdb.Instance.register db "E" e;
         let t = Mura.Patterns.same_generation () in
         let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", e) ]) t in
         Rel.equal expected (Localdb.Instance.query db t)))

let prop_random_terms_localdb =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"random terms: localdb ≡ mura"
       Gen_terms.term_and_env_gen (fun (t, tables) ->
         let db = Localdb.Instance.create () in
         List.iter (fun (n, r) -> Localdb.Instance.register db n r) tables;
         Rel.equal (Mura.Eval.eval (Mura.Eval.env tables) t) (Localdb.Instance.query db t)))

let () =
  Alcotest.run "localdb"
    [
      ( "engine",
        [
          Alcotest.test_case "catalog" `Quick test_catalog;
          Alcotest.test_case "scan+filter" `Quick test_scan_filter;
          Alcotest.test_case "join" `Quick test_join_plan;
          Alcotest.test_case "union/antijoin" `Quick test_union_antijoin;
          Alcotest.test_case "rows scanned" `Quick test_rows_scanned_counts;
          Alcotest.test_case "explain" `Quick test_explain;
        ] );
      ( "recursion",
        [
          Alcotest.test_case "closure" `Quick test_recursive_closure;
          Alcotest.test_case "fix inside expression" `Quick test_fix_inside_expression;
        ] );
      ( "sql",
        [
          Alcotest.test_case "select/where" `Quick test_sql_select_where;
          Alcotest.test_case "join" `Quick test_sql_join;
          Alcotest.test_case "union/subquery" `Quick test_sql_union_subquery;
          Alcotest.test_case "recursive CTE" `Quick test_sql_recursive_cte;
          Alcotest.test_case "errors" `Quick test_sql_errors;
          Alcotest.test_case "to_sql roundtrip" `Quick test_to_sql_roundtrip;
          prop_to_sql_roundtrip;
        ] );
      ("properties", [ prop_localdb_eq_mura; prop_localdb_same_generation; prop_random_terms_localdb ]);
    ]
