(* Tests for the Pregel/GraphX baseline: NFA-product traversal agrees
   with the mu-RA evaluation of the same RPQ. *)

open Relation
module Engine = Pregel.Engine
module Cluster = Distsim.Cluster

let sch = Schema.of_list
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_rel msg expected actual =
  if not (Rel.equal expected actual) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Rel.pp_full expected Rel.pp_full actual

let a = Value.of_string "a"
let b = Value.of_string "b"

let graph =
  Rel.of_list (sch [ "src"; "pred"; "trg" ])
    [ [ 0; a; 1 ]; [ 1; a; 2 ]; [ 2; b; 3 ]; [ 1; b; 4 ]; [ 4; a; 2 ]; [ 3; a; 0 ] ]

let config ?(workers = 3) () = Engine.default_config (Cluster.make ~workers ())

let mu_of_path path_text =
  Rpq.Query.path_term (Rpq.Regex.parse path_text)

let mu_eval path_text = Mura.Eval.eval (Mura.Eval.env [ ("E", graph) ]) (mu_of_path path_text)

let pregel_eval ?source ?target path_text =
  let g = Engine.load (config ()) graph in
  fst (Engine.eval_rpq ?source ?target g (Rpq.Regex.parse path_text))

let test_load () =
  let g = Engine.load (config ()) graph in
  check_int "vertices" 5 (Engine.vertices g);
  check_int "edges" 6 (Engine.edges g)

let test_single_label () = check_rel "a edges" (mu_eval "a") (pregel_eval "a")
let test_closure () = check_rel "a+" (mu_eval "a+") (pregel_eval "a+")
let test_seq () = check_rel "a/b" (mu_eval "a/b") (pregel_eval "a/b")
let test_inverse () = check_rel "(a/-a)+" (mu_eval "(a/-a)+") (pregel_eval "(a/-a)+")

let test_source_seed () =
  let full = mu_eval "a+" in
  let seeded = pregel_eval ~source:0 "a+" in
  check_rel "source seeding = filter" (Rel.select (Pred.Eq_const ("src", 0)) full) seeded

let test_target_filter () =
  let full = mu_eval "a+" in
  let filtered = pregel_eval ~target:2 "a+" in
  check_rel "target filtering" (Rel.select (Pred.Eq_const ("trg", 2)) full) filtered

let test_supersteps_and_messages () =
  let g = Engine.load (config ()) graph in
  let _, stats = Engine.eval_rpq g (Rpq.Regex.parse "a+") in
  check_bool "multiple supersteps" true (stats.supersteps > 1);
  check_bool "messages flowed" true (stats.messages > 0);
  check_bool "state recorded" true (stats.state_pairs > 0)

let test_state_budget_failure () =
  let cluster = Cluster.make ~workers:2 () in
  let config = { (Engine.default_config cluster) with max_state = 3 } in
  let g = Engine.load config graph in
  match Engine.eval_rpq g (Rpq.Regex.parse "a+") with
  | (_ : Rel.t * Engine.stats) -> Alcotest.fail "expected Engine_failure"
  | exception Engine.Engine_failure _ -> ()

let test_empty_word_rejected () =
  let g = Engine.load (config ()) graph in
  match Engine.eval_rpq g (Rpq.Regex.parse "a*") with
  | (_ : Rel.t * Engine.stats) -> Alcotest.fail "expected Translation_error"
  | exception Rpq.Query.Translation_error _ -> ()

let random_labelled_gen =
  let open QCheck2.Gen in
  let edge = triple (int_range 0 7) (oneofl [ a; b ]) (int_range 0 7) in
  let+ edges = list_size (int_range 1 25) edge in
  Rel.of_tuples (sch [ "src"; "pred"; "trg" ])
    (List.map (fun (s, p, t) -> [| s; p; t |]) edges)

let path_pool = [ "a"; "a+"; "a/b"; "(a/-b)+"; "a|b"; "(a b)+"; "-a+"; "a+/b+" ]

let prop_pregel_eq_mura =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:80 ~name:"pregel ≡ mu-RA on RPQs"
       QCheck2.Gen.(triple random_labelled_gen (oneofl path_pool) (int_range 1 4))
       (fun (g, path, workers) ->
         let term = Rpq.Query.path_term (Rpq.Regex.parse path) in
         let expected = Mura.Eval.eval (Mura.Eval.env [ ("E", g) ]) term in
         let cluster = Cluster.make ~workers () in
         let engine = Engine.load (Engine.default_config cluster) g in
         let actual, _ = Engine.eval_rpq engine (Rpq.Regex.parse path) in
         Rel.equal expected actual))

let () =
  Alcotest.run "pregel"
    [
      ( "engine",
        [
          Alcotest.test_case "load" `Quick test_load;
          Alcotest.test_case "single label" `Quick test_single_label;
          Alcotest.test_case "closure" `Quick test_closure;
          Alcotest.test_case "sequence" `Quick test_seq;
          Alcotest.test_case "inverse" `Quick test_inverse;
        ] );
      ( "endpoints",
        [
          Alcotest.test_case "source seed" `Quick test_source_seed;
          Alcotest.test_case "target filter" `Quick test_target_filter;
        ] );
      ( "budget & stats",
        [
          Alcotest.test_case "supersteps/messages" `Quick test_supersteps_and_messages;
          Alcotest.test_case "state budget" `Quick test_state_budget_failure;
          Alcotest.test_case "empty word" `Quick test_empty_word_rejected;
        ] );
      ("properties", [ prop_pregel_eq_mura ]);
    ]
