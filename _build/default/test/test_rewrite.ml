(* Tests for the MuRewriter: every rule is exercised on the query shape
   it targets, and property tests check that exploration only ever
   produces semantically equivalent plans. *)

open Relation
module Term = Mura.Term
module P = Mura.Patterns
module Shapes = Rewrite.Shapes
module Rules = Rewrite.Rules
module Engine = Rewrite.Engine

let sch = Schema.of_list
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_rel msg expected actual =
  if not (Rel.equal expected actual) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Rel.pp_full expected Rel.pp_full actual

let a = Value.of_string "a"
let b = Value.of_string "b"

let labelled =
  Rel.of_list (sch [ "src"; "pred"; "trg" ])
    [
      [ 0; a; 1 ]; [ 1; a; 2 ]; [ 2; a; 3 ];
      [ 3; b; 4 ]; [ 4; b; 5 ]; [ 1; b; 6 ]; [ 6; a; 2 ];
    ]

let tables = [ ("E", labelled) ]
let tenv = Mura.Typing.env [ ("E", sch [ "src"; "pred"; "trg" ]) ]
let env = Mura.Eval.env tables
let eval t = Mura.Eval.eval env t

let ea = P.edge "a"
let eb = P.edge "b"

(* ------------------------------------------------------------------ *)
(* Shape recognition                                                   *)
(* ------------------------------------------------------------------ *)

let test_shapes_compose () =
  let c = Shapes.mk_compose ea eb in
  match Shapes.as_compose c with
  | Some { left; right; _ } ->
    check_bool "left" true (Term.equal left ea);
    check_bool "right" true (Term.equal right eb)
  | None -> Alcotest.fail "compose not recognised"

let test_shapes_closure () =
  (match Shapes.as_closure (P.closure ea) with
  | Some { base; dir = Shapes.Right } -> check_bool "base" true (Term.equal base ea)
  | _ -> Alcotest.fail "right closure not recognised");
  (match Shapes.as_closure (P.closure_rev ea) with
  | Some { dir = Shapes.Left; _ } -> ()
  | _ -> Alcotest.fail "left closure not recognised");
  (* a seeded fixpoint is not a pure closure *)
  check_bool "seeded is not closure" true
    (Shapes.as_closure (P.closure_from eb ea) = None);
  (match Shapes.as_seeded (P.closure_from eb ea) with
  | Some { seed; step; dir = Shapes.Right } ->
    check_bool "seed" true (Term.equal seed eb);
    check_bool "step" true (Term.equal step ea)
  | _ -> Alcotest.fail "seeded not recognised")

(* ------------------------------------------------------------------ *)
(* Individual rules                                                    *)
(* ------------------------------------------------------------------ *)

let rule_fires rule t = Rules.(rule.apply) tenv t <> []

let assert_equiv msg original rewritten =
  check_rel msg (eval original) (eval rewritten)

let test_reverse_closure () =
  match Rules.(reverse_closure.apply) tenv (P.closure ea) with
  | [ reversed ] ->
    check_bool "direction flipped" true
      (match Shapes.as_closure reversed with Some { dir = Shapes.Left; _ } -> true | _ -> false);
    assert_equiv "reversal preserves semantics" (P.closure ea) reversed
  | _ -> Alcotest.fail "reverse did not fire once"

let test_push_filter_into_fix () =
  (* sigma_{src=0}(a+) : src is stable in the right-appending closure *)
  let t = Term.Select (Pred.Eq_const ("src", 0), P.closure ea) in
  (match Rules.(push_filter_into_fix.apply) tenv t with
  | [ pushed ] ->
    check_bool "filter disappeared from top" true
      (match pushed with Term.Fix _ -> true | _ -> false);
    assert_equiv "push filter src" t pushed
  | _ -> Alcotest.fail "expected one rewrite");
  (* trg is NOT stable: the rule must not fire directly *)
  let t2 = Term.Select (Pred.Eq_const ("trg", 5), P.closure ea) in
  check_bool "no unsound push" false (rule_fires Rules.push_filter_into_fix t2);
  (* ... but after reversal it is: exploration finds the pushed plan *)
  let plans = Engine.explore tenv t2 in
  let pushed_plan =
    List.exists
      (function
        | Term.Fix (_, body) -> (
          match Mura.Fcond.split ~var:"_probe" body with
          | _ -> Term.fix_count (Term.Fix ("_", body)) = 1
          | exception _ -> false)
        | _ -> false)
      plans
  in
  check_bool "reversal+push reachable" true pushed_plan;
  List.iter (fun p -> assert_equiv "explored plan equivalent" t2 p) plans

let test_push_join_into_fix () =
  (* b / a+ : concatenation to the left of a recursion (class C5) *)
  let t = Shapes.mk_compose eb (P.closure ea) in
  let rewrites = Rules.(push_join_into_fix.apply) tenv t in
  check_int "one rewrite" 1 (List.length rewrites);
  let pushed = List.hd rewrites in
  check_bool "result is a single fixpoint" true (Term.fix_count pushed = 1);
  assert_equiv "push join left-concat" t pushed;
  (* a+ / b : concatenation to the right (class C4) *)
  let t2 = Shapes.mk_compose (P.closure ea) eb in
  (match Rules.(push_join_into_fix.apply) tenv t2 with
  | [ pushed2 ] -> assert_equiv "push join right-concat" t2 pushed2
  | _ -> Alcotest.fail "expected one rewrite")

let test_merge_fixpoints () =
  (* a+/b+ : concatenation of recursions (class C6) *)
  let t = Shapes.mk_compose (P.closure ea) (P.closure eb) in
  let merged =
    match Rules.(merge_fixpoints.apply) tenv t with
    | [ m ] -> m
    | _ -> Alcotest.fail "merge did not fire once"
  in
  check_int "two fixpoints became one" 1 (Term.fix_count merged);
  assert_equiv "merge preserves semantics" t merged

let test_push_antiproject_into_fix () =
  (* ?y <- ?x a+ ?y : keep destinations only *)
  let t = Term.Antiproject ([ "src" ], P.closure ea) in
  (match Rules.(push_antiproject_into_fix.apply) tenv t with
  | [ pushed ] ->
    assert_equiv "push antiproject src" t pushed;
    (* the pushed fixpoint computes unary tuples *)
    check_bool "unary fixpoint" true
      (match pushed with
      | Term.Fix (_, _) -> Schema.arity (Mura.Typing.infer tenv pushed) = 1
      | _ -> false)
  | _ -> Alcotest.fail "expected one rewrite");
  let t2 = Term.Antiproject ([ "trg" ], P.closure_rev ea) in
  match Rules.(push_antiproject_into_fix.apply) tenv t2 with
  | [ pushed2 ] -> assert_equiv "push antiproject trg" t2 pushed2
  | _ -> Alcotest.fail "expected one rewrite"

let test_select_antijoin_and_antiproject_merge () =
  (* select pushes through the left of an antijoin *)
  let t =
    Term.Select (Pred.Eq_const ("src", 0), Term.Antijoin (ea, Term.Project ([ "src" ], eb)))
  in
  (match Rules.(select_through_antijoin.apply) tenv t with
  | [ pushed ] -> assert_equiv "select through antijoin" t pushed
  | _ -> Alcotest.fail "expected one rewrite");
  (* cascaded antiprojections merge *)
  let t2 =
    Term.Antiproject ([ "src" ], Term.Antiproject ([ "trg" ], Term.Rel "E"))
  in
  match Rules.(antiproject_merge.apply) tenv t2 with
  | [ merged ] ->
    assert_equiv "antiproject merge" t2 merged;
    check_bool "single node" true
      (match merged with Term.Antiproject (c, Term.Rel "E") -> List.sort compare c = [ "src"; "trg" ] | _ -> false)
  | _ -> Alcotest.fail "expected one rewrite"

let test_classical_pushdowns () =
  let t =
    Term.Select
      ( Pred.Eq_const ("x", 0),
        Term.Rename ([ ("src", "x") ], Term.Antiproject ([ "pred" ], Term.Rel "E")) )
  in
  let plans = Engine.explore tenv t in
  check_bool "several plans" true (List.length plans > 1);
  List.iter (fun p -> assert_equiv "classical pushdown equivalence" t p) plans;
  (* at least one plan has the select directly on E *)
  let rec select_on_rel = function
    | Term.Select (_, Term.Rel _) -> true
    | Term.Select (_, u) | Term.Project (_, u) | Term.Antiproject (_, u) | Term.Rename (_, u) ->
      select_on_rel u
    | Term.Join (x, y) | Term.Antijoin (x, y) | Term.Union (x, y) ->
      select_on_rel x || select_on_rel y
    | Term.Fix (_, body) -> select_on_rel body
    | Term.Rel _ | Term.Var _ | Term.Cst _ -> false
  in
  check_bool "select pushed to the scan" true (List.exists select_on_rel plans)

(* ------------------------------------------------------------------ *)
(* End-to-end: UCRPQ -> rewrite -> best plan                           *)
(* ------------------------------------------------------------------ *)

let test_optimize_with_cost () =
  let stats = Cost.Stats.of_tables tables in
  let cost t = Cost.Estimate.cost stats t in
  (* C2-style query: filter to the right of a recursion *)
  let q = Rpq.Query.parse "?x <- ?x a+ 3" in
  let original = Rpq.Query.to_term q in
  let best = Engine.optimize ~cost tenv original in
  assert_equiv "optimized plan equivalent" original best;
  check_bool "optimization changed the plan" true (not (Term.equal best original));
  check_bool "optimized is at most as costly" true (cost best <= cost original)

let test_explore_bounded () =
  let t = Shapes.mk_compose (P.closure ea) (P.closure eb) in
  let plans = Engine.explore ~max_plans:5 tenv t in
  check_bool "bounded" true (List.length plans <= 5)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let random_labelled_gen =
  let open QCheck2.Gen in
  let edge = triple (int_range 0 7) (oneofl [ a; b ]) (int_range 0 7) in
  let+ edges = list_size (int_range 1 25) edge in
  Rel.of_tuples (sch [ "src"; "pred"; "trg" ])
    (List.map (fun (s, p, t) -> [| s; p; t |]) edges)

let query_pool =
  [
    "?x, ?y <- ?x a+ ?y";
    "?x <- ?x a+ 3";
    "?x <- 0 a+ ?x";
    "?x, ?y <- ?x a+/b ?y";
    "?x, ?y <- ?x b/a+ ?y";
    "?x, ?y <- ?x a+/b+ ?y";
    "?y <- ?x a+ ?y";
    "?x <- ?x a+ ?y";
    "?x, ?y <- ?x (a/-b)+ ?y";
    "?x, ?y <- ?x -a/(b/-b)+ ?y";
  ]

let prop_all_plans_equivalent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"every explored plan is equivalent"
       QCheck2.Gen.(pair random_labelled_gen (oneofl query_pool))
       (fun (g, qs) ->
         let term = Rpq.Query.to_term (Rpq.Query.parse qs) in
         let env = Mura.Eval.env [ ("E", g) ] in
         let expected = Mura.Eval.eval env term in
         let plans = Engine.explore ~max_plans:40 tenv term in
         List.for_all (fun p -> Rel.equal expected (Mura.Eval.eval env p)) plans))

let prop_optimized_equivalent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"optimized plan is equivalent"
       QCheck2.Gen.(pair random_labelled_gen (oneofl query_pool))
       (fun (g, qs) ->
         let term = Rpq.Query.to_term (Rpq.Query.parse qs) in
         let env = Mura.Eval.env [ ("E", g) ] in
         let stats = Cost.Stats.of_tables [ ("E", g) ] in
         let best = Engine.optimize ~max_plans:40 ~cost:(Cost.Estimate.cost stats) tenv term in
         Rel.equal (Mura.Eval.eval env term) (Mura.Eval.eval env best)))

let prop_random_terms_rewrites_sound =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"random terms: explored plans all equivalent"
       Gen_terms.term_and_env_gen (fun (t, tables) ->
         let tenv =
           Mura.Typing.env (List.map (fun (n, r) -> (n, Rel.schema r)) tables)
         in
         let env = Mura.Eval.env tables in
         let expected = Mura.Eval.eval env t in
         List.for_all
           (fun p -> Rel.equal expected (Mura.Eval.eval env p))
           (Engine.explore ~max_plans:25 tenv t)))

let () =
  Alcotest.run "rewrite"
    [
      ( "shapes",
        [
          Alcotest.test_case "compose" `Quick test_shapes_compose;
          Alcotest.test_case "closure/seeded" `Quick test_shapes_closure;
        ] );
      ( "rules",
        [
          Alcotest.test_case "reverse closure" `Quick test_reverse_closure;
          Alcotest.test_case "push filter" `Quick test_push_filter_into_fix;
          Alcotest.test_case "push join" `Quick test_push_join_into_fix;
          Alcotest.test_case "merge fixpoints" `Quick test_merge_fixpoints;
          Alcotest.test_case "push antiproject" `Quick test_push_antiproject_into_fix;
          Alcotest.test_case "classical pushdowns" `Quick test_classical_pushdowns;
          Alcotest.test_case "antijoin/antiproject rules" `Quick
            test_select_antijoin_and_antiproject_merge;
        ] );
      ( "engine",
        [
          Alcotest.test_case "optimize with cost" `Quick test_optimize_with_cost;
          Alcotest.test_case "bounded exploration" `Quick test_explore_bounded;
        ] );
      ( "properties",
        [ prop_all_plans_equivalent; prop_optimized_equivalent; prop_random_terms_rewrites_sound ]
      );
    ]
