(* Tests for the UCRPQ frontend: path-expression parsing, Query2Mu
   translation, and the NFA compiler. *)

open Relation
module Term = Mura.Term
module Regex = Rpq.Regex
module Query = Rpq.Query
module Nfa = Rpq.Nfa

let sch = Schema.of_list
let check_bool = Alcotest.(check bool)

let check_rel msg expected actual =
  if not (Rel.equal expected actual) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Rel.pp_full expected Rel.pp_full actual

(* ------------------------------------------------------------------ *)
(* Regex parsing                                                       *)
(* ------------------------------------------------------------------ *)

let test_parse_basics () =
  check_bool "label" true (Regex.parse "knows" = Regex.Label "knows");
  check_bool "inverse" true (Regex.parse "-knows" = Regex.Inv (Regex.Label "knows"));
  check_bool "seq" true
    (Regex.parse "a/b" = Regex.Seq (Regex.Label "a", Regex.Label "b"));
  check_bool "plus" true (Regex.parse "a+" = Regex.Plus (Regex.Label "a"));
  check_bool "group plus" true
    (Regex.parse "(a/b)+" = Regex.Plus (Regex.Seq (Regex.Label "a", Regex.Label "b")));
  check_bool "alt bar" true (Regex.parse "a|b" = Regex.Alt (Regex.Label "a", Regex.Label "b"));
  (* juxtaposition inside groups is alternation, as in the paper's
     (isL dw subClassOf)+ *)
  check_bool "juxtaposition alternation" true
    (Regex.parse "(a b)+" = Regex.Plus (Regex.Alt (Regex.Label "a", Regex.Label "b")));
  check_bool "inv of plus binds atom" true
    (Regex.parse "-a+" = Regex.Plus (Regex.Inv (Regex.Label "a")));
  check_bool "namespaced label" true
    (Regex.parse "rdfs:subClassOf" = Regex.Label "rdfs:subClassOf")

let test_parse_errors () =
  let expect_fail s =
    match Regex.parse s with
    | (_ : Regex.t) -> Alcotest.failf "expected parse error for %S" s
    | exception Regex.Parse_error _ -> ()
  in
  expect_fail "";
  expect_fail "(a";
  expect_fail "a/";
  expect_fail "+a";
  expect_fail "a&b"

let test_nullable_and_inverses () =
  check_bool "a+ not nullable" false (Regex.nullable (Regex.parse "a+"));
  check_bool "a* nullable" true (Regex.nullable (Regex.parse "a*"));
  check_bool "a? nullable" true (Regex.nullable (Regex.parse "a?"));
  check_bool "a*/b not nullable" false (Regex.nullable (Regex.parse "a*/b"));
  check_bool "push inverse over seq" true
    (Regex.push_inverses (Regex.Inv (Regex.parse "a/b"))
    = Regex.Seq (Regex.Inv (Regex.Label "b"), Regex.Inv (Regex.Label "a")));
  Alcotest.(check (list string)) "labels" [ "a"; "b" ] (Regex.labels (Regex.parse "a/b+/a"))

(* ------------------------------------------------------------------ *)
(* Translation                                                         *)
(* ------------------------------------------------------------------ *)

let knows = Value.of_string "knows"
let likes = Value.of_string "likes"

(* 0 -knows-> 1 -knows-> 2 -likes-> 3 ; 0 -likes-> 3 ; 4 -knows-> 2 *)
let graph =
  Rel.of_list (sch [ "src"; "pred"; "trg" ])
    [ [ 0; knows; 1 ]; [ 1; knows; 2 ]; [ 2; likes; 3 ]; [ 0; likes; 3 ]; [ 4; knows; 2 ] ]

let env = Mura.Eval.env [ ("E", graph) ]
let eval t = Mura.Eval.eval env t
let rel2 rows = Rel.of_list (sch [ "x"; "y" ]) rows

let run_query s = eval (Query.to_term (Query.parse s))

let test_single_edge () =
  check_rel "?x knows ?y"
    (rel2 [ [ 0; 1 ]; [ 1; 2 ]; [ 4; 2 ] ])
    (run_query "?x, ?y <- ?x knows ?y")

let test_closure_query () =
  check_rel "?x knows+ ?y"
    (rel2 [ [ 0; 1 ]; [ 1; 2 ]; [ 4; 2 ]; [ 0; 2 ] ])
    (run_query "?x, ?y <- ?x knows+ ?y")

let test_seq_and_const () =
  check_rel "?x knows/likes ?y"
    (rel2 [ [ 1; 3 ]; [ 4; 3 ] ])
    (run_query "?x, ?y <- ?x knows/likes ?y");
  (* constant object *)
  let r = eval (Query.to_term (Query.parse "?x <- ?x knows+/likes 3")) in
  check_rel "?x knows+/likes 3" (Rel.of_list (sch [ "x" ]) [ [ 1 ]; [ 0 ]; [ 4 ] ]) r

let test_inverse_query () =
  check_rel "?x -knows ?y = inverted edges"
    (rel2 [ [ 1; 0 ]; [ 2; 1 ]; [ 2; 4 ] ])
    (run_query "?x, ?y <- ?x -knows ?y")

let test_conjunction () =
  (* ?x knows ?y and ?y likes ?z *)
  let q = Query.parse "?x, ?z <- ?x knows ?y, ?y likes ?z" in
  let r = eval (Query.to_term q) in
  check_rel "join of atoms" (Rel.of_list (sch [ "x"; "z" ]) [ [ 1; 3 ]; [ 4; 3 ] ]) r

let test_star_expansion () =
  (* a*/b = b | a+/b *)
  check_rel "knows*/likes"
    (rel2 [ [ 2; 3 ]; [ 0; 3 ]; [ 1; 3 ]; [ 4; 3 ] ])
    (run_query "?x, ?y <- ?x knows*/likes ?y")

let test_alternation_query () =
  check_rel "(knows|likes)"
    (rel2 [ [ 0; 1 ]; [ 1; 2 ]; [ 4; 2 ]; [ 2; 3 ]; [ 0; 3 ] ])
    (run_query "?x, ?y <- ?x knows|likes ?y")

let test_same_var_atom () =
  (* add a loop edge to make the result non-empty *)
  let g = Rel.copy graph in
  ignore (Rel.add g [| 5; knows; 5 |]);
  let env = Mura.Eval.env [ ("E", g) ] in
  let r = Mura.Eval.eval env (Query.to_term (Query.parse "?x <- ?x knows+ ?x")) in
  check_rel "self loop" (Rel.of_list (sch [ "x" ]) [ [ 5 ] ]) r

let test_translation_errors () =
  let expect_fail s =
    match Query.to_term (Query.parse s) with
    | (_ : Term.t) -> Alcotest.failf "expected translation error for %S" s
    | exception Query.Translation_error _ -> ()
  in
  expect_fail "?x, ?y <- ?x knows* ?y";
  (* head not bound *)
  expect_fail "?z <- ?x knows ?y"

let test_union_query () =
  let text = "?x, ?y <- ?x knows ?y union ?x, ?y <- ?y likes ?x" in
  let branches = Query.parse_union text in
  Alcotest.(check int) "two branches" 2 (List.length branches);
  let r = eval (Query.union_to_term branches) in
  check_rel "union of branches"
    (rel2 [ [ 0; 1 ]; [ 1; 2 ]; [ 4; 2 ]; [ 3; 2 ]; [ 3; 0 ] ])
    r;
  (* single query: parse_union is the identity *)
  Alcotest.(check int) "no union -> one branch" 1
    (List.length (Query.parse_union "?x <- ?x knows ?y"));
  (* mismatched heads rejected *)
  (match Query.union_to_term (Query.parse_union "?x <- ?x knows ?y union ?y <- ?x knows ?y") with
  | (_ : Term.t) -> Alcotest.fail "expected mismatched-head error"
  | exception Query.Translation_error _ -> ())

let test_query_roundtrip_pp () =
  let q = Query.parse "?x, ?y <- ?x knows+/likes ?y, ?y -likes C" in
  let q' = Query.parse (Query.to_string q) in
  check_bool "pp/parse roundtrip" true (q = q')

(* ------------------------------------------------------------------ *)
(* NFA                                                                 *)
(* ------------------------------------------------------------------ *)

let sym l = { Nfa.label = l; inverse = false }
let isym l = { Nfa.label = l; inverse = true }

let test_nfa_basics () =
  let a = Nfa.of_regex (Regex.parse "a/b") in
  check_bool "ab" true (Nfa.accepts a [ sym "a"; sym "b" ]);
  check_bool "not a" false (Nfa.accepts a [ sym "a" ]);
  check_bool "not empty" false (Nfa.accepts_empty a)

let test_nfa_plus_star () =
  let p = Nfa.of_regex (Regex.parse "a+") in
  check_bool "a" true (Nfa.accepts p [ sym "a" ]);
  check_bool "aaa" true (Nfa.accepts p [ sym "a"; sym "a"; sym "a" ]);
  check_bool "empty rejected" false (Nfa.accepts_empty p);
  let s = Nfa.of_regex (Regex.parse "a*") in
  check_bool "star empty" true (Nfa.accepts_empty s);
  check_bool "star aa" true (Nfa.accepts s [ sym "a"; sym "a" ])

let test_nfa_alt_inverse () =
  let a = Nfa.of_regex (Regex.parse "(a/-b)+") in
  check_bool "a -b" true (Nfa.accepts a [ sym "a"; isym "b" ]);
  check_bool "a -b a -b" true (Nfa.accepts a [ sym "a"; isym "b"; sym "a"; isym "b" ]);
  check_bool "a a rejected" false (Nfa.accepts a [ sym "a"; sym "a" ])

(* property: NFA word acceptance agrees with a direct regex matcher *)
let rec matches (r : Regex.t) (w : Nfa.sym list) : bool =
  match r with
  | Label l -> w = [ sym l ]
  | Inv (Label l) -> w = [ isym l ]
  | Inv a -> matches (Regex.push_inverses (Regex.Inv a)) w
  | Seq (a, b) ->
    let rec splits pre post =
      matches a (List.rev pre) && matches b post
      || match post with [] -> false | x :: rest -> splits (x :: pre) rest
    in
    splits [] w
  | Alt (a, b) -> matches a w || matches b w
  | Plus a ->
    let rec one_or_more pre post =
      (matches a (List.rev pre) && (post = [] || matches (Plus a) post))
      || match post with [] -> false | x :: rest -> one_or_more (x :: pre) rest
    in
    (match w with
    | [] -> Regex.nullable a
    | x :: rest -> one_or_more [ x ] rest)
  | Star a -> w = [] || matches (Plus a) w
  | Opt a -> w = [] || matches a w

let regex_gen =
  let open QCheck2.Gen in
  let base = oneof [ map (fun l -> Regex.Label l) (oneofl [ "a"; "b"; "c" ]);
                     map (fun l -> Regex.Inv (Regex.Label l)) (oneofl [ "a"; "b" ]) ] in
  let rec expr n =
    if n = 0 then base
    else
      oneof
        [
          base;
          map2 (fun a b -> Regex.Seq (a, b)) (expr (n - 1)) (expr (n - 1));
          map2 (fun a b -> Regex.Alt (a, b)) (expr (n - 1)) (expr (n - 1));
          map (fun a -> Regex.Plus a) (expr (n - 1));
          map (fun a -> Regex.Star a) (expr (n - 1));
          map (fun a -> Regex.Opt a) (expr (n - 1));
        ]
  in
  expr 3

let word_gen =
  QCheck2.Gen.(
    list_size (int_range 0 4)
      (oneof [ map sym (oneofl [ "a"; "b"; "c" ]); map isym (oneofl [ "a"; "b" ]) ]))

let prop_nfa_matches_regex =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"NFA ≡ direct regex matching"
       (QCheck2.Gen.pair regex_gen word_gen)
       (fun (r, w) -> Nfa.accepts (Nfa.of_regex r) w = matches r w))

let () =
  Alcotest.run "rpq"
    [
      ( "regex",
        [
          Alcotest.test_case "parse basics" `Quick test_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "nullable/inverses" `Quick test_nullable_and_inverses;
        ] );
      ( "query2mu",
        [
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "closure" `Quick test_closure_query;
          Alcotest.test_case "seq + const" `Quick test_seq_and_const;
          Alcotest.test_case "inverse" `Quick test_inverse_query;
          Alcotest.test_case "conjunction" `Quick test_conjunction;
          Alcotest.test_case "star expansion" `Quick test_star_expansion;
          Alcotest.test_case "alternation" `Quick test_alternation_query;
          Alcotest.test_case "same-var atom" `Quick test_same_var_atom;
          Alcotest.test_case "union query" `Quick test_union_query;
          Alcotest.test_case "translation errors" `Quick test_translation_errors;
          Alcotest.test_case "pp roundtrip" `Quick test_query_roundtrip_pp;
        ] );
      ( "nfa",
        [
          Alcotest.test_case "basics" `Quick test_nfa_basics;
          Alcotest.test_case "plus/star" `Quick test_nfa_plus_star;
          Alcotest.test_case "alt/inverse" `Quick test_nfa_alt_inverse;
          prop_nfa_matches_regex;
        ] );
    ]
