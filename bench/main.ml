(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. V) at laptop scale.

   Usage:
     dune exec bench/main.exe                 # every experiment
     dune exec bench/main.exe -- fig9 fig10   # a subset
     dune exec bench/main.exe -- --quick all  # smoke-test scales

   Experiments: table1 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
                ablation micro

   Absolute numbers differ from the paper (its testbed is a 4-machine
   Spark cluster; ours is a simulated cluster on one machine) — the
   comparisons of interest are the *relative* ones: which system wins,
   by what factor, and where engines fail. See EXPERIMENTS.md. *)

module Rel = Relation.Rel
module Term = Mura.Term
module S = Harness.Systems
module Q = Harness.Queries
module R = Harness.Runner
module G = Graphgen.Generators

let quick = ref false
let timeout = ref 60.
let sc full small = if !quick then small else full

(* shared fact budget for the memory-failure experiments: each engine
   fails honestly when ITS plan materialises more than this *)
let fact_budget () = sc 3_000_000 1_000_000
let myria_budget () = sc 400_000 60_000
let graphx_budget () = sc 2_000_000 200_000

let section name = Printf.printf "\n######## %s ########\n%!" name

let heading fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt

let tuples_col =
  ( "tuples",
    fun (o : S.outcome) ->
      match o with S.Success s -> string_of_int s.result_size | _ -> "-" )

(* Per-class geometric-mean summary, the aggregate behind the paper's
   per-class conclusions. Failures and timeouts are counted at the
   timeout value. *)
let class_summary ~systems (rows : R.row list) (specs : Q.spec list) =
  let time_of = function
    | S.Success s -> s.wall_s
    | S.Failed _ | S.Timeout _ -> !timeout
  in
  heading "\nper-class geometric mean of running times (s); failures counted as %gs:" !timeout;
  heading "%-6s %5s  %s" "class" "#q"
    (String.concat "  " (List.map (fun (s : S.system) -> Printf.sprintf "%18s" s.name) systems));
  List.iter
    (fun cls ->
      let in_class =
        List.filter_map
          (fun (q : Q.spec) ->
            if List.mem cls q.classes then
              List.find_opt
                (fun (r : R.row) ->
                  String.length r.label >= String.length q.id
                  && String.sub r.label 0 (String.length q.id) = q.id
                  && (String.length r.label = String.length q.id
                     || r.label.[String.length q.id] = ' '))
                rows
            else None)
          specs
      in
      if in_class <> [] then begin
        let geo name =
          let l =
            List.map
              (fun (r : R.row) ->
                match List.assoc_opt name r.cells with
                | Some o -> Float.log (Float.max 1e-4 (time_of o))
                | None -> 0.)
              in_class
          in
          Float.exp (List.fold_left ( +. ) 0. l /. float_of_int (List.length l))
        in
        heading "%-6s %5d  %s" (Q.class_name cls) (List.length in_class)
          (String.concat "  "
             (List.map (fun (s : S.system) -> Printf.sprintf "%18.3f" (geo s.name)) systems))
      end)
    [ Q.C1; Q.C2; Q.C3; Q.C4; Q.C5; Q.C6 ]

(* ------------------------------------------------------------------ *)
(* Table I: datasets (edges, nodes, TC size)                           *)
(* ------------------------------------------------------------------ *)

module Table1 = struct
  let count_nodes g =
    let seen = Hashtbl.create 1024 in
    Rel.iter
      (fun tu ->
        Hashtbl.replace seen tu.(0) ();
        Hashtbl.replace seen tu.(Array.length tu - 1) ())
      g;
    Hashtbl.length seen

  let tc_size g =
    let stats = Mura.Eval.fresh_stats () in
    let r =
      Mura.Eval.eval ~stats (Mura.Eval.env [ ("E", g) ]) (Mura.Patterns.closure (Term.Rel "E"))
    in
    Rel.cardinal r

  let run () =
    section "Table I — real and synthetic graphs (scaled 1:10)";
    let f = sc 1 4 in
    let rnd =
      [
        ("rnd_1k_0.004", 1000 / f, 0.004);
        ("rnd_1k_0.01", 1000 / f, 0.01);
        ("rnd_1k5_0.0067", 1500 / f, 0.0067);
        ("rnd_2k_0.005", 2000 / f, 0.005);
        ("rnd_800_0.05", 800 / f, 0.05);
      ]
    in
    heading "%-16s %10s %10s %14s" "dataset" "edges" "nodes" "TC size";
    List.iter
      (fun (name, nodes, p) ->
        let g = G.erdos_renyi ~seed:13 ~nodes ~p () in
        heading "%-16s %10d %10d %14d" name (Rel.cardinal g) (count_nodes g) (tc_size g))
      rnd;
    List.iter
      (fun (name, nodes) ->
        let g = G.random_tree ~seed:14 ~nodes () in
        heading "%-16s %10d %10d %14d" name (Rel.cardinal g) (count_nodes g) (tc_size g))
      [ ("tree_1k", 1000 / f); ("tree_15k", 15_000 / f) ];
    (* SNAP-like scale-free stand-ins (the paper's Facebook/DBLP rows) *)
    List.iter
      (fun (name, nodes) ->
        let g = G.preferential_attachment ~seed:16 ~nodes ~edges_per_node:2 () in
        heading "%-16s %10d %10d %14d" name (Rel.cardinal g) (count_nodes g) (tc_size g))
      [ ("pa_facebook_like", 2_000 / f); ("pa_dblp_like", 6_000 / f) ];
    List.iter
      (fun (name, scale) ->
        let g = Graphgen.Uniprot_like.generate ~seed:15 ~scale () in
        heading "%-16s %10d %10d %14s" name (Rel.cardinal g) (count_nodes g) "-")
      [
        ("uniprot_10k", 10_000 / f);
        ("uniprot_50k", 50_000 / f);
        ("uniprot_100k", 100_000 / f);
      ]
end

(* ------------------------------------------------------------------ *)
(* Yago experiments (Figs. 7 and 9)                                    *)
(* ------------------------------------------------------------------ *)

let yago_graph = lazy (Graphgen.Yago_like.generate ~seed:42 ~scale:(sc 8_000 1_000) ())

let yago_workloads picks =
  let g = Lazy.force yago_graph in
  List.filter_map
    (fun (q : Q.spec) ->
      if picks = [] || List.mem q.id picks then
        Some
          ( Printf.sprintf "%-4s [%s]" q.id (String.concat "," (List.map Q.class_name q.classes)),
            S.of_ucrpq g q.text )
      else None)
    Q.yago

module Fig7 = struct
  (* P_plw implementations compared: SetRDD vs local-database backend *)
  let run () =
    section "Fig. 7 — P_plw implementations (SetRDD vs local DB) on Yago";
    heading "graph: %d labelled edges" (Rel.cardinal (Lazy.force yago_graph));
    let systems = [ S.dist_mu_ra_plw `Setrdd; S.dist_mu_ra_plw `Postgres ] in
    let picks = [ "Q1"; "Q2"; "Q4"; "Q8"; "Q12"; "Q19"; "Q22"; "Q24" ] in
    let rows = R.run_matrix ~timeout_s:!timeout ~systems (yago_workloads picks) in
    R.print_table ~title:"running times (s)"
      ~columns:(List.map (fun (s : S.system) -> s.name) systems)
      rows;
    R.write_json ~name:"fig7" rows
end

module Fig9 = struct
  let run () =
    section "Fig. 9 — running times on Yago (25 queries, all systems)";
    heading "graph: %d labelled edges, timeout %gs" (Rel.cardinal (Lazy.force yago_graph)) !timeout;
    let systems =
      [
        S.centralized_mu_ra ();
        S.dist_mu_ra ~max_tuples:(fact_budget ()) ();
        S.dist_mu_ra_gld ~max_tuples:(fact_budget ()) ();
        S.bigdatalog ~max_facts:(fact_budget ()) ();
        S.graphx ~max_state:(graphx_budget ()) ();
      ]
    in
    let rows = R.run_matrix ~timeout_s:!timeout ~systems (yago_workloads []) in
    R.print_table ~title:"running times (s)" ~extra:[ tuples_col ]
      ~columns:(List.map (fun (s : S.system) -> s.name) systems)
      rows;
    R.write_json ~name:"fig9" rows;
    class_summary ~systems rows Q.yago
end

(* ------------------------------------------------------------------ *)
(* Fig. 10: concatenated closures a1+/.../an+                          *)
(* ------------------------------------------------------------------ *)

module Fig10 = struct
  let labels = List.init 10 (fun i -> Printf.sprintf "a%d" (i + 1))

  let run () =
    section "Fig. 10 — concatenated closures a1+/../an+";
    let nodes = sc 500 150 in
    let base = G.erdos_renyi ~seed:19 ~nodes ~p:(30. /. float_of_int nodes) () in
    let g = G.add_labels ~seed:20 ~labels base in
    heading "graph: %d nodes, %d labelled edges (10 labels)" nodes (Rel.cardinal g);
    let systems =
      [
        S.dist_mu_ra ~max_tuples:(fact_budget ()) ();
        S.centralized_mu_ra ();
        S.bigdatalog ~max_facts:(fact_budget ()) ();
        S.graphx ~max_state:(graphx_budget ()) ();
      ]
    in
    let workloads =
      List.filter_map
        (fun n ->
          if n >= 2 then
            let ls = List.filteri (fun i _ -> i < n) labels in
            Some (Printf.sprintf "n=%d" n, S.of_ucrpq g (Q.concat_closure ~labels:ls))
          else None)
        [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    in
    let rows = R.run_matrix ~timeout_s:!timeout ~systems workloads in
    R.print_table ~title:"running times (s)"
      ~columns:(List.map (fun (s : S.system) -> s.name) systems)
      rows;
    R.write_json ~name:"fig10" rows
end

(* ------------------------------------------------------------------ *)
(* Fig. 11: non-regular mu-RA queries vs BigDatalog                    *)
(* ------------------------------------------------------------------ *)

module Fig11 = struct
  let run () =
    section "Fig. 11 — mu-RA queries (a^n b^n, same generation, reach)";
    let systems = [ S.dist_mu_ra (); S.bigdatalog () ] in
    let t1 = G.random_tree ~seed:21 ~nodes:(sc 2_000 300) () in
    let t2 = G.random_tree ~seed:22 ~nodes:(sc 8_000 600) () in
    let er_nodes = sc 1_500 300 in
    let er = G.erdos_renyi ~seed:23 ~nodes:er_nodes ~p:(6. /. float_of_int er_nodes) () in
    let anbn_nodes = sc 800 200 in
    let anbn_graph =
      G.add_labels ~seed:24 ~labels:[ "a"; "b" ]
        (G.erdos_renyi ~seed:25 ~nodes:anbn_nodes ~p:(5. /. float_of_int anbn_nodes) ())
    in
    let workloads =
      [
        ("same_gen tree_2k", Q.same_generation_workload t1);
        ("same_gen tree_8k", Q.same_generation_workload t2);
        ("same_gen rnd_1k5", Q.same_generation_workload er);
        ("reach rnd_1k5", Q.reach_workload er (Relation.Value.of_int 0));
        ("reach tree_8k", Q.reach_workload t2 (Relation.Value.of_int 0));
        ("anbn rnd_800", Q.anbn_workload anbn_graph ~a:"a" ~b:"b");
      ]
    in
    let rows = R.run_matrix ~timeout_s:!timeout ~systems workloads in
    R.print_table ~title:"running times (s)"
      ~columns:(List.map (fun (s : S.system) -> s.name) systems)
      rows;
    R.write_json ~name:"fig11" rows
end

(* ------------------------------------------------------------------ *)
(* Fig. 12: Myria comparison on same generation                        *)
(* ------------------------------------------------------------------ *)

module Fig12 = struct
  let run () =
    section "Fig. 12 — Myria vs Dist-mu-RA on same generation";
    let systems = [ S.dist_mu_ra (); S.myria ~max_facts:(myria_budget ()) () ] in
    let workloads =
      [
        ("tree_1k", Q.same_generation_workload (G.random_tree ~seed:26 ~nodes:(sc 1_000 200) ()));
        ("tree_4k", Q.same_generation_workload (G.random_tree ~seed:27 ~nodes:(sc 4_000 400) ()));
        ( "rnd_1k_0.005",
          let n = sc 1_000 200 in
          Q.same_generation_workload (G.erdos_renyi ~seed:28 ~nodes:n ~p:(5. /. float_of_int n) ())
        );
      ]
    in
    let rows = R.run_matrix ~timeout_s:!timeout ~systems workloads in
    R.print_table ~title:"running times (s); 'fail' = memory budget exceeded"
      ~columns:(List.map (fun (s : S.system) -> s.name) systems)
      rows;
    R.write_json ~name:"fig12" rows
end

(* ------------------------------------------------------------------ *)
(* Uniprot experiments (Figs. 13, 14, 8)                               *)
(* ------------------------------------------------------------------ *)

let uniprot_workloads graph =
  List.map
    (fun (q : Q.spec) ->
      ( Printf.sprintf "%-4s [%s]" q.id (String.concat "," (List.map Q.class_name q.classes)),
        S.of_ucrpq graph q.text ))
    (Q.uniprot graph)

module Fig13 = struct
  let run () =
    section "Fig. 13 — running times on Uniprot (24 queries)";
    let g = Graphgen.Uniprot_like.generate ~seed:31 ~scale:(sc 15_000 2_500) () in
    heading "graph: %d labelled edges, timeout %gs" (Rel.cardinal g) !timeout;
    let systems =
      [
        S.dist_mu_ra ~max_tuples:(fact_budget ()) ();
        S.bigdatalog ~max_facts:(fact_budget ()) ();
        S.graphx ~max_state:(graphx_budget ()) ();
      ]
    in
    let rows = R.run_matrix ~timeout_s:!timeout ~systems (uniprot_workloads g) in
    R.print_table ~title:"running times (s)" ~extra:[ tuples_col ]
      ~columns:(List.map (fun (s : S.system) -> s.name) systems)
      rows;
    R.write_json ~name:"fig13" rows;
    class_summary ~systems rows (Q.uniprot g)
end

module Fig14 = struct
  let run () =
    section "Fig. 14 — Myria vs Dist-mu-RA on a small Uniprot graph";
    let g = Graphgen.Uniprot_like.generate ~seed:32 ~scale:(sc 4_000 1_000) () in
    heading "graph: %d labelled edges" (Rel.cardinal g);
    let systems = [ S.dist_mu_ra (); S.myria ~max_facts:(myria_budget ()) () ] in
    let rows = R.run_matrix ~timeout_s:!timeout ~systems (uniprot_workloads g) in
    R.print_table ~title:"running times (s); Myria fails when a closure exceeds its budget"
      ~columns:(List.map (fun (s : S.system) -> s.name) systems)
      rows;
    R.write_json ~name:"fig14" rows
end

module Fig8 = struct
  let run () =
    section "Fig. 8 — Uniprot scalability (Dist-mu-RA vs BigDatalog)";
    let systems =
      [
        S.dist_mu_ra ~max_tuples:(fact_budget ()) ();
        S.bigdatalog ~max_facts:(fact_budget ()) ();
      ]
    in
    let scales = [ sc 8_000 1_500; sc 15_000 2_500; sc 30_000 4_000 ] in
    let blocks =
      List.map
        (fun scale ->
          let g = Graphgen.Uniprot_like.generate ~seed:33 ~scale () in
          let rows = R.run_matrix ~timeout_s:!timeout ~systems (uniprot_workloads g) in
          R.write_json ~name:(Printf.sprintf "fig8_scale%d" scale) rows;
          (string_of_int (Rel.cardinal g) ^ " edges", rows))
        scales
    in
    R.print_series ~title:"running times per graph size" ~x_label:"graph" blocks;
    (* failure counts, the paper's headline for this figure *)
    List.iter
      (fun (x, rows) ->
        let failures name =
          List.length
            (List.filter
               (fun (r : R.row) ->
                 match List.assoc_opt name r.cells with
                 | Some (S.Failed _) | Some (S.Timeout _) -> true
                 | _ -> false)
               rows)
        in
        heading "%s: Dist-mu-RA failures %d/24, BigDatalog failures %d/24" x
          (failures "Dist-mu-RA") (failures "BigDatalog"))
      blocks
end

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

module Ablation = struct
  let rewriting () =
    heading "--- A1: logical rewriting on/off (per query class) ---";
    let systems = [ S.dist_mu_ra (); S.dist_mu_ra_unopt () ] in
    let picks = [ "Q9"; "Q22"; "Q24"; "Q19"; "Q1"; "Q13" ] in
    let rows = R.run_matrix ~timeout_s:!timeout ~systems (yago_workloads picks) in
    R.print_table ~title:"running times (s)"
      ~columns:(List.map (fun (s : S.system) -> s.name) systems)
      rows

  let partitioning () =
    heading "--- A2: stable-column repartitioning on/off (shuffle volume) ---";
    let nodes = sc 3_000 500 in
    let g = G.erdos_renyi ~seed:35 ~nodes ~p:(3. /. float_of_int nodes) () in
    let closure = Mura.Patterns.closure (Term.Rel "E") in
    let measure stable_partitioning =
      let cluster = Distsim.Cluster.make ~workers:4 () in
      let config =
        {
          (Physical.Exec.default_config cluster) with
          force_plan = Some Physical.Exec.P_plw_s;
          use_stable_partitioning = stable_partitioning;
        }
      in
      let ctx = Physical.Exec.session config [ ("E", g) ] in
      ignore (Physical.Exec.exec_dds ctx (Term.Rel "E"));
      let m = Distsim.Cluster.metrics cluster in
      let s0 = m.Distsim.Metrics.shuffles and r0 = m.Distsim.Metrics.shuffled_records in
      let t0 = Unix.gettimeofday () in
      let result = Physical.Exec.run ctx closure in
      let t = Unix.gettimeofday () -. t0 in
      (Rel.cardinal result, t, m.Distsim.Metrics.shuffles - s0, m.Distsim.Metrics.shuffled_records - r0)
    in
    let on_tuples, on_t, on_sh, on_rec = measure true in
    let off_tuples, off_t, off_sh, off_rec = measure false in
    heading "%-22s %10s %10s %10s %14s" "variant" "tuples" "time(s)" "shuffles" "records moved";
    heading "%-22s %10d %10.3f %10d %14d" "repartition by src" on_tuples on_t on_sh on_rec;
    heading "%-22s %10d %10.3f %10d %14d" "no repartitioning" off_tuples off_t off_sh off_rec

  let run () =
    section "Ablations (design choices of DESIGN.md)";
    rewriting ();
    partitioning ()
end

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel)                                         *)
(* ------------------------------------------------------------------ *)

module Micro = struct
  open Bechamel
  open Toolkit

  let chain_rel n =
    Rel.of_tuples
      (Relation.Schema.of_list [ "src"; "trg" ])
      (List.init n (fun i -> [| i; i + 1 |]))

  let tests () =
    let r1k = chain_rel 1000 in
    let r1k' = Rel.rename [ ("src", "trg"); ("trg", "nxt") ] (chain_rel 1000) in
    let er = G.erdos_renyi ~seed:40 ~nodes:400 ~p:0.01 () in
    let cluster = Distsim.Cluster.make ~workers:4 () in
    [
      Test.make ~name:"tset-add-10k"
        (Staged.stage (fun () ->
             let s = Relation.Tset.create () in
             for i = 0 to 9_999 do
               ignore (Relation.Tset.add s [| i; i * 7 |])
             done));
      Test.make ~name:"hash-join-1kx1k"
        (Staged.stage (fun () -> ignore (Rel.natural_join r1k r1k')));
      Test.make ~name:"closure-er400"
        (Staged.stage (fun () ->
             ignore
               (Mura.Eval.eval (Mura.Eval.env [ ("E", er) ])
                  (Mura.Patterns.closure (Term.Rel "E")))));
      Test.make ~name:"dds-repartition-1k"
        (Staged.stage (fun () ->
             ignore (Distsim.Dds.repartition ~by:[ "trg" ] (Distsim.Dds.of_rel ~by:[ "src" ] cluster r1k))));
      Test.make ~name:"localdb-closure-chain300"
        (Staged.stage (fun () ->
             let db = Localdb.Instance.create () in
             Localdb.Instance.register db "E" (chain_rel 300);
             ignore (Localdb.Instance.query db (Mura.Patterns.closure (Term.Rel "E")))));
      Test.make ~name:"trace-span-disabled"
        (Staged.stage (fun () ->
             ignore (Sys.opaque_identity (Trace.span Trace.disabled "noop" (fun () -> 42)))));
    ]

  (* Tracing must be free when disabled: a [Trace.span] through the
     disabled collector is one match and a closure call. Assert the
     per-call overhead over a bare closure call stays in the noise
     (generous bound — a regression to "always allocate an event"
     would be hundreds of ns). *)
  let zero_cost_assertion () =
    let n = 2_000_000 in
    let time f =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to n do
        ignore (Sys.opaque_identity (f ()))
      done;
      Unix.gettimeofday () -. t0
    in
    let bare () = Sys.opaque_identity 42 in
    let spanned () = Trace.span Trace.disabled "noop" (fun () -> Sys.opaque_identity 42) in
    ignore (time bare);
    (* warm up *)
    let t_bare = time bare and t_span = time spanned in
    let per_call_ns = (t_span -. t_bare) /. float_of_int n *. 1e9 in
    heading "%-28s %12.1f ns/call overhead vs bare call" "trace-disabled-overhead" per_call_ns;
    if per_call_ns > 150. then
      failwith
        (Printf.sprintf "disabled tracing is not zero-cost: %.1f ns/call overhead" per_call_ns)

  let run () =
    section "Micro-benchmarks (bechamel: ns per run)";
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second (sc 1.0 0.25)) ~kde:(Some 10) () in
    List.iter
      (fun test ->
        let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
        let results = Analyze.all ols Instance.monotonic_clock results in
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> heading "%-28s %12.0f ns/run" name est
            | _ -> heading "%-28s (no estimate)" name)
          results)
      (tests ());
    zero_cost_assertion ()
end

(* ------------------------------------------------------------------ *)
(* Fixpoint hot path: domain pool + prepared broadcast joins           *)
(* ------------------------------------------------------------------ *)

module MicroFixpoint = struct
  (* Times one TC fixpoint under {sequential, parallel-pool} ×
     {prepared, unprepared} broadcast joins, plus the stage-dispatch
     overhead of the persistent pool against the old per-stage
     Domain.spawn. Acts as the hot-path regression gate: the four runs
     must agree on results and on the deterministic communication
     counters (plan shape unchanged), and — at full bench scale — the
     prepared joins must be >= 2x faster and pool dispatch cheaper than
     spawning.

     The workload is single-source reachability over a long path graph:
     many iterations with a tiny frontier delta against a broadcast of
     the whole edge set — exactly the regime where the unprepared join
     rescans O(|G|) per iteration and the prepared one probes O(|delta|). *)

  let path_graph n =
    Rel.of_tuples
      (Relation.Schema.of_list [ "src"; "trg" ])
      (List.init (n - 1) (fun i -> [| i; i + 1 |]))

  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)

  type run = {
    tuples : int;
    iterations : int;
    wall_s : float;
    shuffles : int;
    shuffled_records : int;
    broadcasts : int;
    broadcast_records : int;
  }

  let measure g term ~parallel ~prepared =
    let cluster = Distsim.Cluster.make ~parallel ~workers:4 () in
    let config =
      {
        (Physical.Exec.default_config cluster) with
        force_plan = Some Physical.Exec.P_plw_s;
        use_prepared_broadcast = prepared;
      }
    in
    let ctx = Physical.Exec.session config [ ("E", g) ] in
    let result, wall_s = time (fun () -> Physical.Exec.run ctx term) in
    let m = Distsim.Cluster.metrics cluster in
    let iterations =
      match (Physical.Exec.report ctx).Physical.Exec.fixpoints with
      | f :: _ -> f.Physical.Exec.iterations
      | [] -> 0
    in
    Distsim.Cluster.shutdown cluster;
    {
      tuples = Rel.cardinal result;
      iterations;
      wall_s;
      shuffles = m.Distsim.Metrics.shuffles;
      shuffled_records = m.Distsim.Metrics.shuffled_records;
      broadcasts = m.Distsim.Metrics.broadcasts;
      broadcast_records = m.Distsim.Metrics.broadcast_records;
    }

  let counters r = (r.shuffles, r.shuffled_records, r.broadcasts, r.broadcast_records)

  (* Dispatch overhead of one trivial parallel stage: persistent pool vs
     the old spawn-per-stage scheme (4 workers, driver doubles as worker
     0, 3 remote workers either way). *)
  let dispatch_overhead () =
    let stages = sc 400 40 in
    let cluster = Distsim.Cluster.make ~parallel:true ~workers:4 () in
    ignore (Distsim.Cluster.run_stage cluster (fun w -> w));
    (* warm-up *)
    let (), t_pool =
      time (fun () ->
          for _ = 1 to stages do
            ignore (Distsim.Cluster.run_stage cluster (fun w -> w))
          done)
    in
    Distsim.Cluster.shutdown cluster;
    let (), t_spawn =
      time (fun () ->
          for _ = 1 to stages do
            let domains = Array.init 3 (fun i -> Domain.spawn (fun () -> i + 1)) in
            ignore (Array.map Domain.join domains)
          done)
    in
    (stages, t_pool /. float_of_int stages *. 1e6, t_spawn /. float_of_int stages *. 1e6)

  let run () =
    section "micro_fixpoint — fixpoint hot path (domain pool + prepared broadcast joins)";
    let n = sc 2_500 150 in
    let g = path_graph n in
    let term = Mura.Patterns.reach (Relation.Value.of_int 0) in
    heading "single-source TC over a %d-node path (%d edges), P_plw^s, 4 workers" n (Rel.cardinal g);
    let combos =
      [
        ("seq_unprepared", false, false);
        ("seq_prepared", false, true);
        ("pool_unprepared", true, false);
        ("pool_prepared", true, true);
      ]
    in
    let runs = List.map (fun (name, parallel, prepared) -> (name, measure g term ~parallel ~prepared)) combos in
    heading "%-16s %10s %8s %10s %10s %12s" "variant" "tuples" "iters" "time(s)" "shuffles" "bcast rec";
    List.iter
      (fun (name, r) ->
        heading "%-16s %10d %8d %10.3f %10d %12d" name r.tuples r.iterations r.wall_s r.shuffles
          r.broadcast_records)
      runs;
    let get name = List.assoc name runs in
    let seq_u = get "seq_unprepared" and seq_p = get "seq_prepared" in
    let pool_u = get "pool_unprepared" and pool_p = get "pool_prepared" in
    let speedup_seq = seq_u.wall_s /. Float.max 1e-9 seq_p.wall_s in
    let speedup_pool = pool_u.wall_s /. Float.max 1e-9 pool_p.wall_s in
    let results_identical = List.for_all (fun (_, r) -> r.tuples = seq_u.tuples) runs in
    let counters_identical = List.for_all (fun (_, r) -> counters r = counters seq_u) runs in
    let stages, pool_us, spawn_us = dispatch_overhead () in
    heading "prepared-broadcast speedup: %.2fx sequential, %.2fx pool" speedup_seq speedup_pool;
    heading "stage dispatch (%d trivial stages): pool %.1f us/stage, spawn-per-stage %.1f us/stage"
      stages pool_us spawn_us;
    let oc = open_out "BENCH_fixpoint_hotpath.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let run_json r =
          Printf.sprintf
            "{\"tuples\":%d,\"iterations\":%d,\"wall_s\":%.6f,\"shuffles\":%d,\"shuffled_records\":%d,\"broadcasts\":%d,\"broadcast_records\":%d}"
            r.tuples r.iterations r.wall_s r.shuffles r.shuffled_records r.broadcasts
            r.broadcast_records
        in
        Printf.fprintf oc
          "{\"name\":\"fixpoint_hotpath\",\"quick\":%b,\"graph_nodes\":%d,\"edges\":%d,\n\
           \"runs\":{%s},\n\
           \"prepared_speedup_seq\":%.3f,\"prepared_speedup_pool\":%.3f,\n\
           \"results_identical\":%b,\"counters_identical\":%b,\n\
           \"dispatch\":{\"stages\":%d,\"pool_us_per_stage\":%.2f,\"spawn_us_per_stage\":%.2f,\"pool_below_spawn\":%b}}\n"
          !quick n (Rel.cardinal g)
          (String.concat "," (List.map (fun (name, r) -> Printf.sprintf "\"%s\":%s" name (run_json r)) runs))
          speedup_seq speedup_pool results_identical counters_identical stages pool_us spawn_us
          (pool_us < spawn_us));
    heading "wrote BENCH_fixpoint_hotpath.json";
    (* hard gates: correctness always; performance only at full scale
       (quick mode is a smoke test where the workload is too small for
       stable ratios) *)
    if not results_identical then failwith "micro_fixpoint: result sizes differ across variants";
    if not counters_identical then
      failwith "micro_fixpoint: shuffle/broadcast counters differ across variants (plan shape changed)";
    if not !quick then begin
      if speedup_seq < 2.0 then
        failwith
          (Printf.sprintf "micro_fixpoint: prepared broadcast join speedup %.2fx < 2x" speedup_seq);
      if pool_us >= spawn_us then
        failwith
          (Printf.sprintf
             "micro_fixpoint: pool dispatch (%.1f us/stage) not below Domain.spawn baseline (%.1f us/stage)"
             pool_us spawn_us)
    end
end

module MicroShuffle = struct
  (* Times the exchange path — one hash-repartition by a non-partitioning
     column — sequential driver-side vs the two-phase pooled shuffle,
     across worker counts and key-skew levels. Acts as the shuffle
     regression gate: the two paths must produce bit-identical result
     partitions and communication counters (always, --quick included);
     at full bench scale on a multi-core host the pooled path must also
     be >= 2x faster at 4 workers. On a single-core host the parallelism
     gate is vacuous and skipped (recorded as host_cores in the JSON). *)

  let time = MicroFixpoint.time

  (* [src] unique (the initial partitioning key); a [skew] fraction of
     tuples share one hot [trg] key, the rest spread uniformly — so the
     repartition by [trg] funnels that fraction to a single worker. *)
  let make_rel ~n ~skew =
    let hot = int_of_float (skew *. float_of_int n) in
    Rel.of_tuples
      (Relation.Schema.of_list [ "src"; "trg" ])
      (List.init n (fun i -> [| i; (if i < hot then 0 else (i * 3) + 1) |]))

  type run = {
    wall_s : float;
    tuples : int;
    shuffles : int;
    shuffled_records : int;
    shuffled_bytes : int;
    parts : Relation.Tset.t array;
    map_ns : float;
    merge_ns : float;
  }

  let counters r = (r.shuffles, r.shuffled_records, r.shuffled_bytes)

  let measure ~pooled ~workers ~iters rel =
    (* adaptivity off: this bench measures the static pooled path itself,
       not the per-exchange mode choice (which would go sequential at the
       --quick volumes) *)
    let cluster = Distsim.Cluster.make ~parallel:pooled ~adaptive_shuffle:false ~workers () in
    let d = Distsim.Dds.of_rel ~by:[ "src" ] cluster rel in
    ignore (Distsim.Dds.repartition ~by:[ "trg" ] d);
    (* warm-up *)
    Distsim.Metrics.reset (Distsim.Cluster.metrics cluster);
    let last = ref d in
    let (), wall_s =
      time (fun () ->
          for _ = 1 to iters do
            last := Distsim.Dds.repartition ~by:[ "trg" ] d
          done)
    in
    let out = !last in
    let m = Distsim.Cluster.metrics cluster in
    let parts =
      Array.init (Distsim.Dds.num_partitions out) (Distsim.Dds.partition out)
    in
    Distsim.Cluster.shutdown cluster;
    {
      wall_s;
      tuples = Distsim.Dds.cardinal out;
      shuffles = m.Distsim.Metrics.shuffles;
      shuffled_records = m.Distsim.Metrics.shuffled_records;
      shuffled_bytes = m.Distsim.Metrics.shuffled_bytes;
      parts;
      map_ns = m.Distsim.Metrics.exchange_map_ns;
      merge_ns = m.Distsim.Metrics.exchange_merge_ns;
    }

  let run () =
    section "micro_shuffle — two-phase pooled exchange vs sequential driver-side";
    let n = sc 60_000 2_000 in
    let iters = sc 8 2 in
    let host_cores = Domain.recommended_domain_count () in
    heading "repartition %d tuples by [trg] x%d, host cores: %d" n iters host_cores;
    heading "%8s %6s %14s %14s %9s %7s %9s" "workers" "skew" "seq tup/s" "pool tup/s" "speedup"
      "parts=" "counters=";
    let throughput r = float_of_int (n * iters) /. Float.max 1e-9 r.wall_s in
    let rows =
      List.concat_map
        (fun workers ->
          List.map
            (fun skew ->
              let rel = make_rel ~n ~skew in
              let seq = measure ~pooled:false ~workers ~iters rel in
              let pool = measure ~pooled:true ~workers ~iters rel in
              let parts_ok =
                Array.length seq.parts = Array.length pool.parts
                && seq.tuples = pool.tuples
                && Array.for_all2 Relation.Tset.equal seq.parts pool.parts
              in
              let counters_ok = counters seq = counters pool in
              let speedup = throughput pool /. Float.max 1e-9 (throughput seq) in
              heading "%8d %6.1f %14.0f %14.0f %8.2fx %7b %9b" workers skew (throughput seq)
                (throughput pool) speedup parts_ok counters_ok;
              (workers, skew, seq, pool, speedup, parts_ok, counters_ok))
            [ 0.0; 0.5; 0.9 ])
        [ 1; 2; 4 ]
    in
    let oc = open_out "BENCH_shuffle.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let row_json (workers, skew, seq, pool, speedup, parts_ok, counters_ok) =
          Printf.sprintf
            "{\"workers\":%d,\"skew\":%.1f,\"seq_tuples_per_s\":%.0f,\"pool_tuples_per_s\":%.0f,\"speedup\":%.3f,\"shuffled_records\":%d,\"shuffled_bytes\":%d,\"pool_map_ns\":%.0f,\"pool_merge_ns\":%.0f,\"partitions_identical\":%b,\"counters_identical\":%b}"
            workers skew (throughput seq) (throughput pool) speedup seq.shuffled_records
            seq.shuffled_bytes pool.map_ns pool.merge_ns parts_ok counters_ok
        in
        Printf.fprintf oc
          "{\"name\":\"shuffle\",\"quick\":%b,\"tuples\":%d,\"iterations\":%d,\"host_cores\":%d,\n\
           \"rows\":[%s]}\n"
          !quick n iters host_cores
          (String.concat ",\n" (List.map row_json rows)));
    heading "wrote BENCH_shuffle.json";
    (* hard gates: parity always; parallel speedup only at full scale on
       a host that can actually run workers concurrently *)
    List.iter
      (fun (workers, skew, _, _, _, parts_ok, counters_ok) ->
        if not parts_ok then
          failwith
            (Printf.sprintf "micro_shuffle: partitions differ (workers=%d skew=%.1f)" workers skew);
        if not counters_ok then
          failwith
            (Printf.sprintf
               "micro_shuffle: shuffle counters differ between paths (workers=%d skew=%.1f)"
               workers skew))
      rows;
    if (not !quick) && host_cores >= 2 then
      List.iter
        (fun (workers, skew, _, _, speedup, _, _) ->
          if workers = 4 && skew = 0.0 && speedup < 2.0 then
            failwith
              (Printf.sprintf "micro_shuffle: pooled speedup %.2fx < 2x at 4 workers" speedup))
        rows
end

module MicroFixpointDelta = struct
  (* Times the delta-maintenance step of the semi-naive loop — the fused
     in-place diff+union accumulator plus the map-side iteration-shuffle
     seen filter — against the unfused diff-then-copy-then-union
     baseline, on transitive closure over graphs of increasing size and
     iteration depth. Acts as the delta regression gate: fused and
     unfused runs must agree on result sizes, iteration counts and the
     per-iteration delta curve (always, --quick included); at full bench
     scale on a multi-core host the fused path must also be no slower
     overall and must strictly reduce the records moved by P_gld's
     iteration shuffles (the dense cyclic workload re-derives pairs
     every round; the seen filter drops them before they are routed). *)

  let time = MicroFixpoint.time
  let path_graph = MicroFixpoint.path_graph

  type run = {
    tuples : int;
    iterations : int;
    deltas : int list;
    wall_s : float;
    shuffled_records : int;
    dedup_dropped : int;
  }

  let measure g plan ~fused =
    let cluster = Distsim.Cluster.make ~parallel:true ~workers:4 () in
    let config =
      {
        (Physical.Exec.default_config cluster) with
        force_plan = Some plan;
        use_fused_delta = fused;
        use_shuffle_dedup = fused;
      }
    in
    let ctx = Physical.Exec.session config [ ("E", g) ] in
    let result, wall_s =
      time (fun () -> Physical.Exec.run ctx (Mura.Patterns.closure (Term.Rel "E")))
    in
    let m = Distsim.Cluster.metrics cluster in
    let iterations, deltas =
      match (Physical.Exec.report ctx).Physical.Exec.fixpoints with
      | f :: _ -> (f.Physical.Exec.iterations, f.Physical.Exec.deltas)
      | [] -> (0, [])
    in
    Distsim.Cluster.shutdown cluster;
    {
      tuples = Rel.cardinal result;
      iterations;
      deltas;
      wall_s;
      shuffled_records = m.Distsim.Metrics.shuffled_records;
      dedup_dropped = m.Distsim.Metrics.dedup_dropped_records;
    }

  let run () =
    section "micro_fixpoint_delta — fused accumulator + iteration-shuffle dedup vs baseline";
    let host_cores = Domain.recommended_domain_count () in
    let er ~seed ~nodes ~deg =
      G.erdos_renyi ~seed ~nodes ~p:(float_of_int deg /. float_of_int nodes) ()
    in
    let workloads =
      [
        (* deep: many iterations, each growing the accumulator that the
           unfused path copies wholesale *)
        ("path", path_graph (sc 300 60));
        (* shallow but wide *)
        ("er_sparse", er ~seed:44 ~nodes:(sc 500 80) ~deg:3);
        (* cyclic and duplicate-heavy: the seen filter's regime *)
        ("er_dense", er ~seed:45 ~nodes:(sc 250 60) ~deg:12);
      ]
    in
    heading "transitive closure, 4 pooled workers, host cores: %d" host_cores;
    heading "%-10s %-8s %10s %7s %12s %12s %13s %9s" "workload" "plan" "tuples" "iters"
      "unfused(s)" "fused(s)" "shuffle rec" "dropped";
    let rows =
      List.concat_map
        (fun (wname, g) ->
          List.map
            (fun plan ->
              let base = measure g plan ~fused:false in
              let fast = measure g plan ~fused:true in
              let parity =
                base.tuples = fast.tuples
                && base.iterations = fast.iterations
                && base.deltas = fast.deltas
              in
              heading "%-10s %-8s %10d %7d %12.3f %12.3f %6d->%-6d %9d" wname
                (Physical.Exec.plan_name plan) fast.tuples fast.iterations base.wall_s
                fast.wall_s base.shuffled_records fast.shuffled_records fast.dedup_dropped;
              (wname, Rel.cardinal g, plan, base, fast, parity))
            [ Physical.Exec.P_gld; Physical.Exec.P_plw_s ])
        workloads
    in
    let total f = List.fold_left (fun acc (_, _, _, base, fast, _) -> acc +. f base fast) 0. rows in
    let total_base = total (fun b _ -> b.wall_s) and total_fused = total (fun _ f -> f.wall_s) in
    let overall_speedup = total_base /. Float.max 1e-9 total_fused in
    let gld_records which =
      List.fold_left
        (fun acc (_, _, plan, base, fast, _) ->
          if plan = Physical.Exec.P_gld then acc + (which base fast).shuffled_records else acc)
        0 rows
    in
    let gld_base_rec = gld_records (fun b _ -> b) and gld_fused_rec = gld_records (fun _ f -> f) in
    heading "overall: unfused %.3fs, fused %.3fs (%.2fx); P_gld iteration-shuffle records %d -> %d"
      total_base total_fused overall_speedup gld_base_rec gld_fused_rec;
    let oc = open_out "BENCH_fixpoint_delta.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let run_json r =
          Printf.sprintf
            "{\"tuples\":%d,\"iterations\":%d,\"wall_s\":%.6f,\"shuffled_records\":%d,\"dedup_dropped\":%d}"
            r.tuples r.iterations r.wall_s r.shuffled_records r.dedup_dropped
        in
        let row_json (wname, edges, plan, base, fast, parity) =
          Printf.sprintf
            "{\"workload\":\"%s\",\"edges\":%d,\"plan\":\"%s\",\"unfused\":%s,\"fused\":%s,\"speedup\":%.3f,\"parity\":%b}"
            wname edges (Physical.Exec.plan_name plan) (run_json base) (run_json fast)
            (base.wall_s /. Float.max 1e-9 fast.wall_s)
            parity
        in
        Printf.fprintf oc
          "{\"name\":\"fixpoint_delta\",\"quick\":%b,\"host_cores\":%d,\n\
           \"rows\":[%s],\n\
           \"total_unfused_wall_s\":%.6f,\"total_fused_wall_s\":%.6f,\"overall_speedup\":%.3f,\n\
           \"gld_unfused_shuffled_records\":%d,\"gld_fused_shuffled_records\":%d}\n"
          !quick host_cores
          (String.concat ",\n" (List.map row_json rows))
          total_base total_fused overall_speedup gld_base_rec gld_fused_rec);
    heading "wrote BENCH_fixpoint_delta.json";
    (* hard gates: parity always; performance and shuffle reduction only
       at full scale on a host that can actually run workers concurrently
       (quick mode is a smoke test where the workloads are too small for
       stable ratios) *)
    List.iter
      (fun (wname, _, plan, base, fast, parity) ->
        if not parity then
          failwith
            (Printf.sprintf
               "micro_fixpoint_delta: %s/%s diverged (tuples %d vs %d, iterations %d vs %d)"
               wname (Physical.Exec.plan_name plan) base.tuples fast.tuples base.iterations
               fast.iterations);
        if base.dedup_dropped <> 0 then
          failwith
            (Printf.sprintf "micro_fixpoint_delta: %s/%s baseline run recorded seen-filter drops"
               wname (Physical.Exec.plan_name plan)))
      rows;
    if (not !quick) && host_cores >= 2 then begin
      if overall_speedup < 1.0 then
        failwith
          (Printf.sprintf "micro_fixpoint_delta: fused path slower overall (%.2fx)" overall_speedup);
      if gld_fused_rec >= gld_base_rec then
        failwith
          (Printf.sprintf
             "micro_fixpoint_delta: seen filter did not reduce P_gld shuffle records (%d -> %d)"
             gld_base_rec gld_fused_rec)
    end
end

(* ------------------------------------------------------------------ *)
(* micro_compiled: compiled columnar pipelines vs the interpreter      *)
(* ------------------------------------------------------------------ *)

module MicroCompiled = struct
  (* The compiled columnar core against the interpreted
     operator-at-a-time loop, same cluster, same plans. Parity gates run
     always (--quick included): result sizes, iteration counts, delta
     curves and every communication counter must be bit-identical. At
     full scale on a multi-core host the compiled path must additionally
     be at least 2x faster end-to-end on the gate workload — transitive
     closure of a dense ER graph under P_plw^s on 4 pooled workers, the
     regime where the loop body dominates (P_gld is exchange-bound: both
     paths pay the same metered shuffles, so it contributes parity rows
     only). The compiled path presizes every set it materialises, so the
     insert-triggered rehash counter must read zero over its P_plw^s
     runs (P_gld's seen-filter sets legitimately grow). *)

  let time = MicroFixpoint.time
  let path_graph = MicroFixpoint.path_graph

  type run = {
    tuples : int;
    iterations : int;
    deltas : int list;
    wall_s : float;
    comm : int * int * int * int * int * int;
    rehash_grows : int;
  }

  let measure g plan ~compiled =
    let cluster = Distsim.Cluster.make ~parallel:true ~workers:4 () in
    let config =
      {
        (Physical.Exec.default_config cluster) with
        force_plan = Some plan;
        use_compiled_exec = compiled;
      }
    in
    let ctx = Physical.Exec.session config [ ("E", g) ] in
    Distsim.Metrics.reset_rehash_grows ();
    let result, wall_s =
      time (fun () -> Physical.Exec.run ctx (Mura.Patterns.closure (Term.Rel "E")))
    in
    let rehash_grows = Distsim.Metrics.rehash_grows () in
    let m = Distsim.Cluster.metrics cluster in
    let iterations, deltas =
      match (Physical.Exec.report ctx).Physical.Exec.fixpoints with
      | f :: _ -> (f.Physical.Exec.iterations, f.Physical.Exec.deltas)
      | [] -> (0, [])
    in
    Distsim.Cluster.shutdown cluster;
    {
      tuples = Rel.cardinal result;
      iterations;
      deltas;
      wall_s;
      comm =
        ( m.Distsim.Metrics.shuffles,
          m.Distsim.Metrics.shuffled_records,
          m.Distsim.Metrics.shuffled_bytes,
          m.Distsim.Metrics.broadcasts,
          m.Distsim.Metrics.broadcast_records,
          m.Distsim.Metrics.dedup_dropped_records );
      rehash_grows;
    }

  let run () =
    section "micro_compiled — compiled columnar pipelines vs interpreted loop";
    let host_cores = Domain.recommended_domain_count () in
    let er ~seed ~nodes ~deg =
      G.erdos_renyi ~seed ~nodes ~p:(float_of_int deg /. float_of_int nodes) ()
    in
    (* the dense workload is the speedup gate; P_gld there would dominate
       bench time for a comparison that is exchange-bound anyway *)
    let workloads =
      [
        ("path", path_graph (sc 300 60), [ Physical.Exec.P_gld; Physical.Exec.P_plw_s ]);
        ( "er_sparse",
          er ~seed:61 ~nodes:(sc 400 80) ~deg:3,
          [ Physical.Exec.P_gld; Physical.Exec.P_plw_s ] );
        ("er_dense", er ~seed:62 ~nodes:(sc 500 100) ~deg:6, [ Physical.Exec.P_plw_s ]);
      ]
    in
    heading "transitive closure, 4 pooled workers, host cores: %d" host_cores;
    heading "%-10s %-8s %10s %7s %12s %12s %9s %7s" "workload" "plan" "tuples" "iters"
      "interp(s)" "compiled(s)" "speedup" "rehash";
    let rows =
      List.concat_map
        (fun (wname, g, plans) ->
          List.map
            (fun plan ->
              let interp = measure g plan ~compiled:false in
              let comp = measure g plan ~compiled:true in
              let parity =
                interp.tuples = comp.tuples
                && interp.iterations = comp.iterations
                && interp.deltas = comp.deltas
                && interp.comm = comp.comm
              in
              let speedup = interp.wall_s /. Float.max 1e-9 comp.wall_s in
              heading "%-10s %-8s %10d %7d %12.3f %12.3f %8.2fx %7d" wname
                (Physical.Exec.plan_name plan) comp.tuples comp.iterations interp.wall_s
                comp.wall_s speedup comp.rehash_grows;
              (wname, Rel.cardinal g, plan, interp, comp, parity))
            plans)
        workloads
    in
    let oc = open_out "BENCH_compiled.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let run_json r =
          let s, sr, sb, b, br, dd = r.comm in
          Printf.sprintf
            "{\"tuples\":%d,\"iterations\":%d,\"wall_s\":%.6f,\"shuffles\":%d,\"shuffled_records\":%d,\"shuffled_bytes\":%d,\"broadcasts\":%d,\"broadcast_records\":%d,\"dedup_dropped\":%d,\"rehash_grows\":%d}"
            r.tuples r.iterations r.wall_s s sr sb b br dd r.rehash_grows
        in
        let row_json (wname, edges, plan, interp, comp, parity) =
          Printf.sprintf
            "{\"workload\":\"%s\",\"edges\":%d,\"plan\":\"%s\",\"interpreted\":%s,\"compiled\":%s,\"speedup\":%.3f,\"parity\":%b}"
            wname edges (Physical.Exec.plan_name plan) (run_json interp) (run_json comp)
            (interp.wall_s /. Float.max 1e-9 comp.wall_s)
            parity
        in
        Printf.fprintf oc "{\"name\":\"compiled\",\"quick\":%b,\"host_cores\":%d,\n\"rows\":[%s]}\n"
          !quick host_cores
          (String.concat ",\n" (List.map row_json rows)));
    heading "wrote BENCH_compiled.json";
    (* hard gates: parity and zero rehash growth always; the 2x speedup
       only at full scale on a host with real parallelism (quick scales
       are too small for stable ratios) *)
    List.iter
      (fun (wname, _, plan, interp, comp, parity) ->
        if not parity then
          failwith
            (Printf.sprintf
               "micro_compiled: %s/%s diverged (tuples %d vs %d, iterations %d vs %d)" wname
               (Physical.Exec.plan_name plan) interp.tuples comp.tuples interp.iterations
               comp.iterations);
        if plan = Physical.Exec.P_plw_s && comp.rehash_grows <> 0 then
          failwith
            (Printf.sprintf "micro_compiled: %s compiled run grew a set %d times (presizing leak)"
               wname comp.rehash_grows))
      rows;
    if (not !quick) && host_cores >= 2 then
      List.iter
        (fun (wname, _, plan, interp, comp, _) ->
          if wname = "er_dense" && plan = Physical.Exec.P_plw_s then begin
            let speedup = interp.wall_s /. Float.max 1e-9 comp.wall_s in
            if speedup < 2.0 then
              failwith
                (Printf.sprintf "micro_compiled: gate workload speedup %.2fx < 2x" speedup)
          end)
        rows
end

(* ------------------------------------------------------------------ *)
(* micro_shell: compiled non-fixpoint shell vs the interpreter         *)
(* ------------------------------------------------------------------ *)

module MicroShell = struct
  (* The whole-plan shell compiler against the interpreted
     operator-at-a-time shell, same cluster, same automatic plan
     selection. The workload is shell-heavy: a two-hop self-join of a
     large ER edge relation (rename → join → antiproject fused into one
     probe chain per worker), a selection, a union with a small
     reachability fixpoint and a final antijoin — the fixpoint
     contributes a few percent of the work, the shell the rest. Parity
     gates run always (--quick included): the collected result relation
     and every communication counter must be bit-identical, and the
     compiled run must not grow a set on insert (all batch outputs are
     presized). At full scale on a multi-core host the compiled shell
     must additionally be at least 1.5x faster end-to-end. *)

  let time = MicroFixpoint.time
  let path_graph = MicroFixpoint.path_graph

  let shell_query =
    let two_hop =
      Term.Antiproject
        ( [ "_m" ],
          Term.Join
            ( Term.Rename ([ ("trg", "_m") ], Term.Rel "E"),
              Term.Rename ([ ("src", "_m") ], Term.Rel "E") ) )
    in
    (* a stack of selections over the two-hop result: the interpreter
       pays one full partition pass and set rebuild per operator, the
       compiled shell folds them all into the join's probe chain *)
    let selected =
      List.fold_left
        (fun t p -> Term.Select (p, t))
        two_hop
        [
          Relation.Pred.Gt_const ("src", 2);
          Relation.Pred.Gt_const ("trg", 1);
          Relation.Pred.Neq_const ("src", 7);
          Relation.Pred.Neq_const ("trg", 11);
          Relation.Pred.Neq_const ("src", 13);
          Relation.Pred.Gt_const ("trg", 3);
        ]
    in
    Term.Antijoin
      ( Term.Union (selected, Mura.Patterns.closure (Term.Rel "C")),
        Term.Select (Relation.Pred.Eq_const ("src", 1), Term.Rel "E") )

  type run = {
    tuples : int;
    result : Rel.t;
    wall_s : float;
    comm : int * int * int * int * int * int;
    rehash_grows : int;
  }

  let measure ~compiled ~reps tables =
    let cluster = Distsim.Cluster.make ~parallel:true ~workers:4 () in
    let config = { (Physical.Exec.default_config cluster) with use_compiled_exec = compiled } in
    let ctx = Physical.Exec.session config tables in
    Distsim.Metrics.reset_rehash_grows ();
    let result, wall_s =
      time (fun () ->
          let r = ref (Physical.Exec.run ctx shell_query) in
          for _ = 2 to reps do
            r := Physical.Exec.run ctx shell_query
          done;
          !r)
    in
    let rehash_grows = Distsim.Metrics.rehash_grows () in
    let m = Distsim.Cluster.metrics cluster in
    Distsim.Cluster.shutdown cluster;
    {
      tuples = Rel.cardinal result;
      result;
      wall_s;
      comm =
        ( m.Distsim.Metrics.shuffles,
          m.Distsim.Metrics.shuffled_records,
          m.Distsim.Metrics.shuffled_bytes,
          m.Distsim.Metrics.broadcasts,
          m.Distsim.Metrics.broadcast_records,
          m.Distsim.Metrics.dedup_dropped_records );
      rehash_grows;
    }

  let run () =
    section "micro_shell — compiled non-fixpoint shell vs interpreted operators";
    let host_cores = Domain.recommended_domain_count () in
    let er ~seed ~nodes ~deg =
      G.erdos_renyi ~seed ~nodes ~p:(float_of_int deg /. float_of_int nodes) ()
    in
    let workloads =
      [
        ("shell_2hop", er ~seed:71 ~nodes:(sc 1200 150) ~deg:12, sc 10 2);
        ("shell_sparse", er ~seed:72 ~nodes:(sc 2500 200) ~deg:4, sc 10 2);
      ]
    in
    heading "two-hop + union + antijoin shell, 4 pooled workers, host cores: %d" host_cores;
    heading "%-12s %10s %10s %12s %12s %9s %7s" "workload" "edges" "tuples" "interp(s)"
      "compiled(s)" "speedup" "rehash";
    let rows =
      List.map
        (fun (wname, g, reps) ->
          let tables = [ ("E", g); ("C", path_graph 40) ] in
          let interp = measure ~compiled:false ~reps tables in
          let comp = measure ~compiled:true ~reps tables in
          let parity = Rel.equal interp.result comp.result && interp.comm = comp.comm in
          let speedup = interp.wall_s /. Float.max 1e-9 comp.wall_s in
          heading "%-12s %10d %10d %12.3f %12.3f %8.2fx %7d" wname (Rel.cardinal g) comp.tuples
            interp.wall_s comp.wall_s speedup comp.rehash_grows;
          (wname, Rel.cardinal g, interp, comp, parity))
        workloads
    in
    let oc = open_out "BENCH_shell.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let run_json r =
          let s, sr, sb, b, br, dd = r.comm in
          Printf.sprintf
            "{\"tuples\":%d,\"wall_s\":%.6f,\"shuffles\":%d,\"shuffled_records\":%d,\"shuffled_bytes\":%d,\"broadcasts\":%d,\"broadcast_records\":%d,\"dedup_dropped\":%d,\"rehash_grows\":%d}"
            r.tuples r.wall_s s sr sb b br dd r.rehash_grows
        in
        let row_json (wname, edges, interp, comp, parity) =
          Printf.sprintf
            "{\"workload\":\"%s\",\"edges\":%d,\"interpreted\":%s,\"compiled\":%s,\"speedup\":%.3f,\"parity\":%b}"
            wname edges (run_json interp) (run_json comp)
            (interp.wall_s /. Float.max 1e-9 comp.wall_s)
            parity
        in
        Printf.fprintf oc "{\"name\":\"shell\",\"quick\":%b,\"host_cores\":%d,\n\"rows\":[%s]}\n"
          !quick host_cores
          (String.concat ",\n" (List.map row_json rows)));
    heading "wrote BENCH_shell.json";
    (* hard gates: parity and zero set growth always; the 1.5x speedup
       only at full scale on a host with real parallelism *)
    List.iter
      (fun (wname, _, interp, comp, parity) ->
        if not parity then
          failwith
            (Printf.sprintf "micro_shell: %s diverged (tuples %d vs %d)" wname interp.tuples
               comp.tuples);
        if comp.rehash_grows <> 0 then
          failwith
            (Printf.sprintf "micro_shell: %s compiled run grew a set %d times (presizing leak)"
               wname comp.rehash_grows))
      rows;
    if (not !quick) && host_cores >= 2 then
      List.iter
        (fun (wname, _, interp, comp, _) ->
          if wname = "shell_2hop" then begin
            let speedup = interp.wall_s /. Float.max 1e-9 comp.wall_s in
            if speedup < 1.5 then
              failwith (Printf.sprintf "micro_shell: gate workload speedup %.2fx < 1.5x" speedup)
          end)
        rows
  end

(* ------------------------------------------------------------------ *)
(* micro_serve: the serving layer's caches vs a cache-less server      *)
(* ------------------------------------------------------------------ *)

(* Two servers over identical clusters run the same single-session query
   stream (the serve_mix reachability mix, each submission a fresh
   translation of the query): one with the plan and result caches
   disabled (zero budgets), one with the defaults. Every response is
   checked against the reference evaluator — the parity gate holds at
   every scale; at full scale the cached server must also beat the
   uncached one by 2x (repeat submissions are near-free) and must
   evaluate strictly fewer fixpoints. *)
module MicroServe = struct
  type run = {
    wall_s : float;
    completed : int;
    hit_rate : float;
    fix_evals : int;
    parity : bool;
  }

  let path_graph = MicroFixpoint.path_graph

  let measure ~cached ~repeat graph =
    let cluster = Distsim.Cluster.make ~workers:4 () in
    let t =
      if cached then Serve.create ~cluster ()
      else
        (* the cache-less baseline must also disable incremental repair:
           a parked handle answers repeat submissions from its converged
           accumulator, which is exactly the reuse being benchmarked *)
        Serve.create ~plan_cache_capacity:0 ~result_cache_bytes:0 ~max_repair_handles:0
          ~cluster ()
    in
    Serve.register t "E" graph;
    let mix = Harness.Serve_mix.default_mix () in
    let env = Mura.Eval.env [ ("E", graph) ] in
    let expected = List.map (fun (l, mk) -> (l, Mura.Eval.eval env (mk ()))) mix in
    let sn = Serve.open_session t in
    let parity = ref true in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to repeat do
      List.iter
        (fun (l, mk) ->
          let r = Serve.query t sn (mk ()) in
          if not (Rel.equal (List.assoc l expected) r.Serve.rel) then parity := false)
        mix
    done;
    let wall_s = Unix.gettimeofday () -. t0 in
    let s = Serve.stats t in
    Serve.shutdown t;
    {
      wall_s;
      completed = s.Serve.completed;
      hit_rate =
        float_of_int (s.Serve.result_hits + s.Serve.shared_joins)
        /. float_of_int (max 1 s.Serve.completed);
      fix_evals = s.Serve.fix_evals;
      parity = !parity;
    }

  let run () =
    section "micro_serve — plan/result caching vs a cache-less server";
    let repeat = sc 20 3 in
    let er ~seed ~nodes ~deg =
      G.erdos_renyi ~seed ~nodes ~p:(float_of_int deg /. float_of_int nodes) ()
    in
    let workloads =
      [
        ("path", path_graph (sc 400 60));
        ("er", er ~seed:47 ~nodes:(sc 1500 150) ~deg:3);
      ]
    in
    heading "single session, %d submissions of the 3-query mix, 4 workers" repeat;
    heading "%-8s %8s %9s %12s %12s %9s %9s" "workload" "edges" "queries" "uncached(s)"
      "cached(s)" "hit rate" "fix evals";
    let rows =
      List.map
        (fun (wname, g) ->
          let base = measure ~cached:false ~repeat g in
          let fast = measure ~cached:true ~repeat g in
          heading "%-8s %8d %9d %12.3f %12.3f %8.0f%% %4d->%-4d" wname (Rel.cardinal g)
            fast.completed base.wall_s fast.wall_s (100. *. fast.hit_rate) base.fix_evals
            fast.fix_evals;
          (wname, Rel.cardinal g, base, fast))
        workloads
    in
    let total f = List.fold_left (fun acc (_, _, b, c) -> acc +. f b c) 0. rows in
    let total_base = total (fun b _ -> b.wall_s) and total_cached = total (fun _ c -> c.wall_s) in
    let speedup = total_base /. Float.max 1e-9 total_cached in
    heading "overall: uncached %.3fs, cached %.3fs (%.2fx)" total_base total_cached speedup;
    let oc = open_out "BENCH_serve.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let run_json r =
          Printf.sprintf
            "{\"wall_s\":%.6f,\"completed\":%d,\"hit_rate\":%.3f,\"fix_evals\":%d,\"parity\":%b}"
            r.wall_s r.completed r.hit_rate r.fix_evals r.parity
        in
        let row_json (wname, edges, base, fast) =
          Printf.sprintf
            "{\"workload\":\"%s\",\"edges\":%d,\"uncached\":%s,\"cached\":%s,\"speedup\":%.3f}"
            wname edges (run_json base) (run_json fast)
            (base.wall_s /. Float.max 1e-9 fast.wall_s)
        in
        Printf.fprintf oc
          "{\"name\":\"serve\",\"quick\":%b,\"repeat\":%d,\n\
           \"rows\":[%s],\n\
           \"total_uncached_wall_s\":%.6f,\"total_cached_wall_s\":%.6f,\"overall_speedup\":%.3f}\n"
          !quick repeat
          (String.concat ",\n" (List.map row_json rows))
          total_base total_cached speedup);
    heading "wrote BENCH_serve.json";
    (* hard gates: parity and work reduction always; wall-clock speedup
       only at full scale (quick workloads are too small for stable
       ratios) *)
    List.iter
      (fun (wname, _, base, fast) ->
        if not (base.parity && fast.parity) then
          failwith (Printf.sprintf "micro_serve: %s diverged from the reference results" wname);
        if fast.fix_evals >= base.fix_evals then
          failwith
            (Printf.sprintf "micro_serve: %s cached server did not reuse fixpoints (%d vs %d)"
               wname fast.fix_evals base.fix_evals))
      rows;
    if (not !quick) && speedup < 2.0 then
      failwith (Printf.sprintf "micro_serve: caching speedup below 2x (%.2fx)" speedup)
end

(* ------------------------------------------------------------------ *)
(* micro_telemetry: the ambient metrics registry on the serve mix.     *)
(*                                                                     *)
(* Three gates, the first two always on:                               *)
(*   - determinism: a single-session mix with telemetry on must report *)
(*     exactly the same server counters as with telemetry off, and     *)
(*     both must match the reference results (parity);                 *)
(*   - snapshot sanity: the registry snapshot of an instrumented run   *)
(*     must carry the serve series (submitted counter, cache counters, *)
(*     latency histogram) in both Prometheus text and JSON form, the   *)
(*     slow-query log must fill under a zero threshold, and sampling   *)
(*     every query must capture traces;                                *)
(*   - overhead (full scale only): best-of-N walls of the concurrent   *)
(*     mix, telemetry on vs off, within 2% (plus a 5 ms absolute       *)
(*     allowance — quick machines time in that noise band).            *)
(* ------------------------------------------------------------------ *)

module MicroTelemetry = struct
  module SM = Harness.Serve_mix

  let path_graph = MicroFixpoint.path_graph

  let measure ?(telemetry = false) ?(sample = 0) ?(slow_ms = infinity) ~sessions ~repeat graph =
    if telemetry then Telemetry.install (Telemetry.make ()) else Telemetry.uninstall ();
    let config =
      {
        SM.default_config with
        SM.sessions;
        repeat;
        sample_every = sample;
        slow_threshold_ms = slow_ms;
      }
    in
    let r = SM.run config ~graph in
    Telemetry.uninstall ();
    r

  (* the deterministic server counters: sampling/slow-log accounting is
     deliberately excluded (only the instrumented run has any) *)
  let counters (s : Serve.stats) =
    [
      s.Serve.submitted;
      s.Serve.completed;
      s.Serve.failed;
      s.Serve.result_hits;
      s.Serve.shared_joins;
      s.Serve.result_misses;
      s.Serve.plan_hits;
      s.Serve.plan_misses;
      s.Serve.fix_evals;
      s.Serve.fix_hits;
      s.Serve.fix_shared;
    ]

  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0

  let run () =
    section "micro_telemetry — registry overhead, snapshot and slow-log sanity";
    let graph = path_graph (sc 400 60) in
    let repeat = sc 12 3 in
    (* determinism: one session is fully sequential, so every counter is
       reproducible — telemetry must not change any of them *)
    let off = measure ~sessions:1 ~repeat graph in
    let on = measure ~telemetry:true ~sample:1 ~slow_ms:0. ~sessions:1 ~repeat graph in
    let identical = counters off.SM.stats = counters on.SM.stats in
    heading "single session, %d mix submissions: counters identical with telemetry on: %b"
      repeat identical;
    if off.SM.parity_failures > 0 || on.SM.parity_failures > 0 then
      failwith "micro_telemetry: mix diverged from the reference results";
    if not identical then
      failwith "micro_telemetry: telemetry changed the server counters";
    (* snapshot sanity on the instrumented run *)
    let snap =
      match on.SM.telemetry with
      | Some s -> s
      | None -> failwith "micro_telemetry: instrumented run produced no registry snapshot"
    in
    let series = List.length snap.Telemetry.Snapshot.rows in
    (match Telemetry.Snapshot.value snap "serve_queries_submitted_total" with
    | Some v when int_of_float v = on.SM.stats.Serve.submitted -> ()
    | _ -> failwith "micro_telemetry: snapshot submitted counter does not match the server");
    let prom = Telemetry.Snapshot.to_prometheus snap in
    let json = Telemetry.Snapshot.to_json snap in
    List.iter
      (fun (where, hay, needle) ->
        if not (contains hay needle) then
          failwith (Printf.sprintf "micro_telemetry: %s exposition missing %s" where needle))
      [
        ("prometheus", prom, "# TYPE serve_queries_submitted_total counter");
        ("prometheus", prom, "serve_cache_total{cache=\"result\"");
        ("prometheus", prom, "serve_query_latency_ns_bucket");
        ("json", json, "\"serve_query_latency_ns\"");
        ("json", json, "\"buckets\"");
      ];
    if on.SM.stats.Serve.slow_queries = 0 then
      failwith "micro_telemetry: zero-threshold run logged no slow queries";
    if on.SM.traces_captured = 0 then
      failwith "micro_telemetry: sample-every-query run captured no traces";
    heading "snapshot: %d series; %d slow queries logged, %d traces captured" series
      on.SM.stats.Serve.slow_queries on.SM.traces_captured;
    (* overhead: concurrent mix, best-of-N walls on vs off *)
    let sessions = 4 and orepeat = sc 20 3 in
    let trials = sc 5 2 in
    (* interleave off/on trials so clock drift and cache warmup hit both
       sides equally; compare best-of-N walls *)
    let base = ref infinity and tele = ref infinity in
    for _ = 1 to trials do
      List.iter
        (fun (telemetry, b) ->
          let r = measure ~telemetry ~sessions ~repeat:orepeat graph in
          if r.SM.parity_failures > 0 then
            failwith "micro_telemetry: parity failure under concurrent load";
          if r.SM.wall_s < !b then b := r.SM.wall_s)
        [ (false, base); (true, tele) ]
    done;
    let base = !base and tele = !tele in
    let overhead = (tele -. base) /. Float.max 1e-9 base in
    heading "concurrent mix (%d sessions x %d repeats, best of %d): off %.3fs, on %.3fs (%+.1f%%)"
      sessions orepeat trials base tele (100. *. overhead);
    let oc = open_out "BENCH_telemetry.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Printf.fprintf oc
          "{\"name\":\"telemetry\",\"quick\":%b,\"repeat\":%d,\n\
           \"counters_identical\":%b,\"series\":%d,\"slow_queries\":%d,\"traces_captured\":%d,\n\
           \"off_wall_s\":%.6f,\"on_wall_s\":%.6f,\"overhead_frac\":%.4f,\"parity_failures\":%d}\n"
          !quick repeat identical series on.SM.stats.Serve.slow_queries on.SM.traces_captured
          base tele overhead
          (off.SM.parity_failures + on.SM.parity_failures));
    heading "wrote BENCH_telemetry.json";
    if (not !quick) && overhead > 0.02 && tele -. base > 0.005 then
      failwith
        (Printf.sprintf "micro_telemetry: registry overhead above 2%% (%.1f%%)"
           (100. *. overhead))
end

(* ------------------------------------------------------------------ *)
(* micro_incremental: fixpoint repair vs from-scratch recomputation    *)
(* ------------------------------------------------------------------ *)

(* Incremental fixpoint maintenance (Exec.Incr): establish a transitive
   closure, apply edge-insert and edge-delete batches, and compare the
   repaired result against a from-scratch evaluation of the updated
   graph. The parity matrix runs always (--quick included) across
   P_gld/P_plw^s, 1 and 4 workers, compiled and interpreted loops —
   insert-then-resume and DRed delete-then-re-derive must both be
   bit-identical to recomputing. At full scale on a multi-core host,
   repairing a small insert batch on the gate workload (a long path
   graph, where from-scratch convergence pays one iteration per hop)
   must be at least 5x faster than recomputation. *)
module MicroIncremental = struct
  let time = MicroFixpoint.time
  let path_graph = MicroFixpoint.path_graph
  let closure () = Mura.Patterns.closure (Term.Rel "E")

  (* [k] fresh edges over [g]'s node universe, deterministic *)
  let fresh_edges ~seed ~k g =
    let rng = Graphgen.Rng.create seed in
    let nodes = 1 + Rel.fold (fun tu m -> max m (max tu.(0) tu.(1))) g 0 in
    let out = Rel.create (Rel.schema g) in
    let attempts = ref 0 in
    while Rel.cardinal out < k && !attempts < k * 50 do
      incr attempts;
      let i = Graphgen.Rng.int rng nodes and j = Graphgen.Rng.int rng nodes in
      if i <> j && not (Rel.mem g [| i; j |]) then ignore (Rel.add out [| i; j |])
    done;
    out

  let resident_edges ~k g =
    let out = Rel.create (Rel.schema g) in
    (try
       Rel.iter
         (fun tu ->
           if Rel.cardinal out >= k then raise Exit;
           ignore (Rel.add out (Array.copy tu)))
         g
     with Exit -> ());
    out

  let eval_on tables term = Mura.Eval.eval (Mura.Eval.env tables) term

  type row = {
    plan : Physical.Exec.fixpoint_plan;
    workers : int;
    compiled : bool;
    base_tuples : int;
    insert_iters : int;
    delete_iters : int;
    parity : bool;
  }

  let parity_row g plan ~workers ~compiled =
    let cluster = Distsim.Cluster.make ~parallel:true ~workers () in
    let config =
      {
        (Physical.Exec.default_config cluster) with
        force_plan = Some plan;
        use_compiled_exec = compiled;
      }
    in
    let ins = fresh_edges ~seed:91 ~k:6 g in
    let del = resident_edges ~k:3 g in
    let h = Physical.Exec.Incr.establish config ~tables:[ ("E", g) ] (closure ()) in
    let base_tuples = Physical.Exec.Incr.size h in
    let parity0 = Rel.equal (Physical.Exec.Incr.result h) (eval_on [ ("E", g) ] (closure ())) in
    let g1 = Rel.union g ins in
    let r1, insert_iters =
      match Physical.Exec.Incr.update ~inserts:[ ("E", ins) ] h with
      | `Repaired (r, n) -> (r, n)
      | `Unsupported msg -> failwith ("micro_incremental: insert unsupported: " ^ msg)
    in
    let parity1 = Rel.equal r1 (eval_on [ ("E", g1) ] (closure ())) in
    let g2 = Rel.diff g1 del in
    let r2, delete_iters =
      match Physical.Exec.Incr.update ~deletes:[ ("E", del) ] h with
      | `Repaired (r, n) -> (r, n)
      | `Unsupported msg -> failwith ("micro_incremental: delete unsupported: " ^ msg)
    in
    let parity2 = Rel.equal r2 (eval_on [ ("E", g2) ] (closure ())) in
    Distsim.Cluster.shutdown cluster;
    {
      plan;
      workers;
      compiled;
      base_tuples;
      insert_iters;
      delete_iters;
      parity = parity0 && parity1 && parity2;
    }

  (* Gate: a small batch appended at the tail of the path (new nodes
     arriving — the streaming regime where the derived delta is small
     relative to the closure) repaired under P_gld, whose from-scratch
     evaluation pays one metered shuffle round per hop. *)
  let measure_gate ~n g =
    let ins = Rel.create (Rel.schema g) in
    for k = 0 to 4 do
      ignore (Rel.add ins [| n - 1 + k; n + k |])
    done;
    let g1 = Rel.union g ins in
    let cluster = Distsim.Cluster.make ~parallel:true ~workers:4 () in
    let config =
      { (Physical.Exec.default_config cluster) with force_plan = Some Physical.Exec.P_gld }
    in
    let h = Physical.Exec.Incr.establish config ~tables:[ ("E", g) ] (closure ()) in
    let repaired, repair_s =
      time (fun () ->
          match Physical.Exec.Incr.update ~inserts:[ ("E", ins) ] h with
          | `Repaired (r, _) -> r
          | `Unsupported msg -> failwith ("micro_incremental: gate unsupported: " ^ msg))
    in
    Distsim.Cluster.shutdown cluster;
    let cluster = Distsim.Cluster.make ~parallel:true ~workers:4 () in
    let config =
      { (Physical.Exec.default_config cluster) with force_plan = Some Physical.Exec.P_gld }
    in
    let ctx = Physical.Exec.session config [ ("E", g1) ] in
    let recomputed, recompute_s = time (fun () -> Physical.Exec.run ctx (closure ())) in
    Distsim.Cluster.shutdown cluster;
    (repair_s, recompute_s, Rel.equal repaired recomputed)

  let run () =
    section "micro_incremental — fixpoint repair vs from-scratch recomputation";
    let host_cores = Domain.recommended_domain_count () in
    let g =
      G.erdos_renyi ~seed:63 ~nodes:(sc 200 50) ~p:(3. /. float_of_int (sc 200 50)) ()
    in
    heading "er graph: %d edges; 6 inserts then 3 deletes per configuration" (Rel.cardinal g);
    heading "%-8s %7s %8s %10s %12s %12s %7s" "plan" "workers" "compiled" "tuples"
      "ins_iters" "del_iters" "parity";
    let rows =
      List.concat_map
        (fun plan ->
          List.concat_map
            (fun workers ->
              List.map
                (fun compiled ->
                  let r = parity_row g plan ~workers ~compiled in
                  heading "%-8s %7d %8b %10d %12d %12d %7b"
                    (Physical.Exec.plan_name r.plan)
                    r.workers r.compiled r.base_tuples r.insert_iters r.delete_iters r.parity;
                  r)
                [ false; true ])
            [ 1; 4 ])
        [ Physical.Exec.P_gld; Physical.Exec.P_plw_s ]
    in
    let gate_n = sc 2000 200 in
    let gate = path_graph gate_n in
    let repair_s, recompute_s, gate_parity = measure_gate ~n:gate_n gate in
    let speedup = recompute_s /. Float.max 1e-9 repair_s in
    heading
      "gate: path-%d graph, 5 tail inserts, P_gld: repair %.3fs vs recompute %.3fs — %.1fx \
       (parity %b)"
      gate_n repair_s recompute_s speedup gate_parity;
    let oc = open_out "BENCH_incremental.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let row_json r =
          Printf.sprintf
            "{\"plan\":\"%s\",\"workers\":%d,\"compiled\":%b,\"base_tuples\":%d,\"insert_iterations\":%d,\"delete_iterations\":%d,\"parity\":%b}"
            (Physical.Exec.plan_name r.plan)
            r.workers r.compiled r.base_tuples r.insert_iters r.delete_iters r.parity
        in
        Printf.fprintf oc
          "{\"name\":\"incremental\",\"quick\":%b,\"host_cores\":%d,\n\
           \"repair_s\":%.6f,\"recompute_s\":%.6f,\"speedup\":%.3f,\"gate_parity\":%b,\n\
           \"rows\":[%s]}\n"
          !quick host_cores repair_s recompute_s speedup gate_parity
          (String.concat ",\n" (List.map row_json rows)));
    heading "wrote BENCH_incremental.json";
    (* hard gates: parity always; the 5x repair speedup only at full
       scale on a host with real parallelism (quick scales are too
       small for stable ratios) *)
    List.iter
      (fun r ->
        if not r.parity then
          failwith
            (Printf.sprintf "micro_incremental: %s/%dw/%b diverged from recomputation"
               (Physical.Exec.plan_name r.plan)
               r.workers r.compiled))
      rows;
    if not gate_parity then failwith "micro_incremental: gate repair diverged";
    if (not !quick) && host_cores >= 2 && speedup < 5.0 then
      failwith (Printf.sprintf "micro_incremental: repair speedup %.2fx < 5x" speedup)
end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", Table1.run);
    ("fig7", Fig7.run);
    ("fig9", Fig9.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11.run);
    ("fig12", Fig12.run);
    ("fig13", Fig13.run);
    ("fig14", Fig14.run);
    ("fig8", Fig8.run);
    ("ablation", Ablation.run);
    ("micro", Micro.run);
    ("micro_fixpoint", MicroFixpoint.run);
    ("micro_shuffle", MicroShuffle.run);
    ("micro_fixpoint_delta", MicroFixpointDelta.run);
    ("micro_compiled", MicroCompiled.run);
    ("micro_shell", MicroShell.run);
    ("micro_serve", MicroServe.run);
    ("micro_telemetry", MicroTelemetry.run);
    ("micro_incremental", MicroIncremental.run);
  ]

let () =
  let requested = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> quick := true
        | "--timeout" -> ()
        | arg when String.length arg > 10 && String.sub arg 0 10 = "--timeout=" ->
          timeout := float_of_string (String.sub arg 10 (String.length arg - 10))
        | "all" -> requested := List.map fst experiments @ !requested
        | name when List.mem_assoc name experiments -> requested := name :: !requested
        | other ->
          Printf.eprintf "unknown experiment %S (known: %s, all, --quick, --timeout=S)\n" other
            (String.concat " " (List.map fst experiments));
          exit 1)
    Sys.argv;
  let to_run = if !requested = [] then List.map fst experiments else List.rev !requested in
  if !quick then timeout := Float.min !timeout 5.;
  (* BENCH_TRACE=1 captures a Chrome trace per experiment, written next
     to the BENCH_*.json outputs, and prints the per-operator rollup. *)
  let tracing = Sys.getenv_opt "BENCH_TRACE" = Some "1" in
  let run_one name =
    if not tracing then (List.assoc name experiments) ()
    else begin
      Trace.install (Trace.make ());
      Fun.protect
        ~finally:(fun () ->
          let tr = Trace.get () in
          let file = Printf.sprintf "bench_trace_%s.json" name in
          Trace.Chrome.write tr file;
          Printf.printf "\ntrace: %d events written to %s (open in Perfetto)\n"
            (List.length (Trace.events tr))
            file;
          R.print_trace_rollup ();
          Trace.uninstall ())
        (List.assoc name experiments)
    end
  in
  let t0 = Unix.gettimeofday () in
  List.iter run_one to_run;
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
