#!/bin/sh
# bench/trend.sh — performance trajectory across bench runs.
#
# Diffs the BENCH_*.json snapshots of the current run against the copies
# stored by the previous invocation (bench/results/trend/), prints the
# per-metric deltas, then stores the current snapshots for next time.
#
# Usage, from the repository root (or anywhere):
#   dune exec bench/main.exe -- micro_serve micro_telemetry
#   sh bench/trend.sh                 # diff + record every BENCH_*.json
#   sh bench/trend.sh BENCH_serve.json   # a subset
set -eu

cd "$(dirname "$0")/.."
store=bench/results/trend
mkdir -p "$store"

if [ "$#" -gt 0 ]; then
  files="$*"
else
  files=$(ls BENCH_*.json 2>/dev/null || true)
fi
if [ -z "$files" ]; then
  echo "trend: no BENCH_*.json snapshots in $(pwd) (run the bench first)" >&2
  exit 1
fi

have_python=0
command -v python3 >/dev/null 2>&1 && have_python=1

for f in $files; do
  [ -f "$f" ] || { echo "trend: $f not found" >&2; exit 1; }
  name=$(basename "$f" .json)
  prev="$store/$name.prev.json"
  if [ ! -f "$prev" ]; then
    echo "$name: first snapshot recorded (nothing to diff against)"
  elif [ "$have_python" = 1 ]; then
    python3 - "$prev" "$f" "$name" <<'EOF'
import json, sys

prev_file, cur_file, name = sys.argv[1:4]
with open(prev_file) as fh:
    prev = json.load(fh)
with open(cur_file) as fh:
    cur = json.load(fh)

def leaves(obj, path=""):
    """Flatten to {dotted.path: numeric leaf}."""
    out = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            out.update(leaves(v, f"{path}.{k}" if path else k))
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            # label list entries by their own "name"-ish field when present
            tag = v.get("workload") or v.get("name") if isinstance(v, dict) else None
            out.update(leaves(v, f"{path}[{tag or i}]"))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[path] = float(obj)
    return out

p, c = leaves(prev), leaves(cur)
changed = []
for k in sorted(c):
    if k not in p:
        changed.append((k, None, c[k]))
    elif p[k] != c[k]:
        changed.append((k, p[k], c[k]))

print(f"{name}: {len(changed)} metric(s) changed since the previous run")
for k, old, new in changed:
    if old is None:
        print(f"  {k:48s} (new) {new:g}")
    else:
        rel = f" ({100.0 * (new - old) / old:+.1f}%)" if old != 0 else ""
        print(f"  {k:48s} {old:g} -> {new:g}{rel}")
EOF
  else
    # no python3: show whether anything changed at all
    if cmp -s "$prev" "$f"; then
      echo "$name: unchanged since the previous run"
    else
      echo "$name: changed since the previous run (install python3 for per-metric deltas)"
    fi
  fi
  cp "$f" "$prev"
done
