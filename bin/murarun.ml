(* murarun — run a UCRPQ on a graph with any of the supported engines.

   Examples:
     murarun --gen yago:2000 --query "?x <- ?x isLocatedIn+ Japan"
     murarun --graph edges.txt --query "?x, ?y <- ?x a+/b ?y" --system bigdatalog
     murarun --gen er:10000:0.001 --labels a,b --query "?x, ?y <- ?x a+/b+ ?y" --all *)

open Cmdliner
module S = Harness.Systems
module R = Harness.Runner

let load_graph gen graph_file labels =
  let base =
    match (gen, graph_file) with
    | Some spec, _ -> (
      match String.split_on_char ':' spec with
      | [ "yago"; scale ] -> Graphgen.Yago_like.generate ~scale:(int_of_string scale) ()
      | [ "uniprot"; scale ] -> Graphgen.Uniprot_like.generate ~scale:(int_of_string scale) ()
      | [ "er"; nodes; p ] ->
        Graphgen.Generators.erdos_renyi ~nodes:(int_of_string nodes) ~p:(float_of_string p) ()
      | [ "tree"; nodes ] -> Graphgen.Generators.random_tree ~nodes:(int_of_string nodes) ()
      | _ -> failwith "unknown generator spec (yago:N | uniprot:N | er:N:P | tree:N)")
    | None, Some file ->
      if Filename.check_suffix file ".nt" then Relation.Rel_io.load_labelled_edges file
      else (
        (* sniff: 3 fields = labelled *)
        try Relation.Rel_io.load_labelled_edges file
        with Failure _ -> Relation.Rel_io.load_edges file)
    | None, None -> failwith "provide --graph FILE or --gen SPEC"
  in
  match labels with
  | Some l when Relation.Schema.arity (Relation.Rel.schema base) = 2 ->
    Graphgen.Generators.add_labels ~labels:(String.split_on_char ',' l) base
  | _ -> base

let system_of = function
  | "dist" -> S.dist_mu_ra ()
  | "gld" -> S.dist_mu_ra_gld ()
  | "plw-s" -> S.dist_mu_ra_plw `Setrdd
  | "plw-pg" -> S.dist_mu_ra_plw `Postgres
  | "interp" -> S.dist_mu_ra_interpreted ()
  | "central" -> S.centralized_mu_ra ()
  | "bigdatalog" -> S.bigdatalog ()
  | "myria" -> S.myria ()
  | "graphx" -> S.graphx ()
  | other -> failwith ("unknown system " ^ other)

let force_plan_of = function
  | "gld" -> Some Physical.Exec.P_gld
  | "plw-s" -> Some Physical.Exec.P_plw_s
  | "plw-pg" -> Some Physical.Exec.P_plw_pg
  | _ -> None

let run gen graph_file labels query system all_systems workers timeout show explain_only
    analyze report_file compare_plans trace_file serve_sessions serve_repeat max_inflight
    metrics_out sample_every slow_ms stream_rounds stream_batch =
  try
    if trace_file <> None then Trace.install (Trace.make ());
    if metrics_out <> None then Telemetry.install (Telemetry.make ());
    (* written on every exit path that completed a run *)
    let write_metrics () =
      match metrics_out with
      | None -> ()
      | Some file ->
        let snap = Telemetry.snapshot (Telemetry.get ()) in
        Telemetry.Snapshot.write snap file;
        Printf.printf "metrics: %d series written to %s\n"
          (List.length snap.Telemetry.Snapshot.rows)
          file
    in
    let graph = load_graph gen graph_file labels in
    Printf.printf "graph: %d edges\n" (Relation.Rel.cardinal graph);
    let w = S.of_ucrpq graph query in
    if explain_only then begin
      Printf.printf "\n%s" (R.explain ~workers ~graph ~query ());
      raise Exit
    end;
    if stream_rounds > 0 then begin
      (* streaming mode: sustained edge updates interleaved with queries,
         incremental repair measured against from-scratch recomputation *)
      let mix =
        [ ("query", fun () -> Rpq.Query.union_to_term (Rpq.Query.parse_union query)) ]
      in
      let config =
        {
          Harness.Stream_mix.default_config with
          Harness.Stream_mix.workers;
          rounds = stream_rounds;
          batch = stream_batch;
          force_plan = force_plan_of system;
        }
      in
      let r = Harness.Stream_mix.run ~mix config ~graph in
      Harness.Stream_mix.print r;
      (match report_file with
      | Some file ->
        Harness.Stream_mix.write_report ~file r;
        Printf.printf "stream report written to %s\n" file
      | None -> ());
      write_metrics ();
      if r.Harness.Stream_mix.parity_failures > 0 then failwith "stream parity failure";
      raise Exit
    end;
    if serve_sessions > 0 then begin
      (* serve mode: concurrent sessions resubmitting the query through
         the caching service; each submission re-translates the text *)
      let mix =
        [ ("query", fun () -> Rpq.Query.union_to_term (Rpq.Query.parse_union query)) ]
      in
      let config =
        {
          Harness.Serve_mix.workers;
          parallel = false;
          sessions = serve_sessions;
          repeat = serve_repeat;
          max_inflight;
          force_plan = force_plan_of system;
          sample_every;
          slow_threshold_ms = (if slow_ms > 0. then slow_ms else infinity);
        }
      in
      let r = Harness.Serve_mix.run ~mix config ~graph in
      Harness.Serve_mix.print r;
      (match report_file with
      | Some file ->
        Harness.Serve_mix.write_report ~file r;
        Printf.printf "serve report written to %s\n" file
      | None -> ());
      write_metrics ();
      if r.Harness.Serve_mix.parity_failures > 0 then failwith "serve parity failure";
      raise Exit
    end;
    if analyze || report_file <> None then begin
      let a =
        R.analyze ~workers ~timeout_s:timeout ?force_plan:(force_plan_of system)
          ~compare_plans ~graph ~query ()
      in
      if analyze then R.print_analysis a;
      (match report_file with
      | Some file ->
        R.write_report ~file a;
        Printf.printf "\nreport written to %s\n" file
      | None -> ());
      raise Exit
    end;
    let systems =
      if all_systems then S.all ()
      else [ (match system with "dist" -> S.dist_mu_ra ~workers () | s -> system_of s) ]
    in
    List.iter
      (fun (sys : S.system) ->
        match R.run_one ~timeout_s:timeout sys w with
        | S.Success s ->
          Printf.printf "%-22s %.3fs  %d tuples  (%d shuffles, %d records moved, %d supersteps)\n"
            sys.name s.wall_s s.result_size s.shuffles s.shuffled_records s.supersteps
        | o -> Printf.printf "%-22s %s\n" sys.name (R.cell_text o))
      systems;
    (match trace_file with
    | None -> ()
    | Some file ->
      let tr = Trace.get () in
      let hint =
        if Filename.check_suffix file ".jsonl" then (
          Trace.Jsonl.write tr file;
          "flat JSONL event log")
        else (
          Trace.Chrome.write tr file;
          "open in chrome://tracing or Perfetto")
      in
      Printf.printf "\ntrace: %d events written to %s (%s)\n\n"
        (List.length (Trace.events tr))
        file hint;
      R.print_trace_rollup ();
      Trace.uninstall ());
    write_metrics ();
    if show > 0 then begin
      (* display a sample of the answers with the reference engine *)
      let term = Rpq.Query.to_term (Rpq.Query.parse query) in
      let result = Mura.Eval.eval (Mura.Eval.env [ ("E", graph) ]) term in
      Printf.printf "\nfirst answers:\n";
      let n = ref 0 in
      (try
         Relation.Rel.iter
           (fun tu ->
             if !n >= show then raise Exit;
             incr n;
             Printf.printf "  %s\n" (Relation.Tuple.to_string tu))
           result
       with Exit -> ())
    end;
    0
  with
  | Exit -> 0
  | Failure msg
  | Sys_error msg
  | Rpq.Regex.Parse_error msg
  | Rpq.Query.Translation_error msg ->
    Printf.eprintf "error: %s\n" msg;
    1

let () =
  let gen =
    Arg.(value & opt (some string) None & info [ "gen" ] ~docv:"SPEC"
           ~doc:"Generate a graph: yago:N, uniprot:N, er:N:P or tree:N.")
  in
  let graph_file =
    Arg.(value & opt (some file) None & info [ "graph" ] ~docv:"FILE"
           ~doc:"Edge-list file (2 or 3 whitespace-separated fields per line).")
  in
  let labels =
    Arg.(value & opt (some string) None & info [ "labels" ] ~docv:"L1,L2,..."
           ~doc:"Decorate an unlabelled graph with random labels.")
  in
  let query =
    Arg.(required & opt (some string) None & info [ "query"; "q" ] ~docv:"UCRPQ"
           ~doc:"The query, e.g. \"?x <- ?x a+/b Japan\".")
  in
  let system =
    Arg.(value & opt string "dist" & info [ "system"; "s" ] ~docv:"NAME"
           ~doc:
             "Engine: dist, gld, plw-s, plw-pg, interp (dist with the compiled columnar core \
              off), central, bigdatalog, myria, graphx.")
  in
  let all_systems = Arg.(value & flag & info [ "all" ] ~doc:"Run every engine and compare.") in
  let workers = Arg.(value & opt int 4 & info [ "workers"; "w" ] ~doc:"Cluster size.") in
  let timeout = Arg.(value & opt float 120. & info [ "timeout" ] ~doc:"Timeout in seconds.") in
  let show = Arg.(value & opt int 0 & info [ "show" ] ~doc:"Print up to N answers.") in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Show the optimized logical and physical plans instead of executing.")
  in
  let analyze =
    Arg.(value & flag & info [ "analyze" ]
           ~doc:"EXPLAIN ANALYZE: execute with per-operator instrumentation and print the \
                 annotated plan (actual rows, estimated rows, q-error per node), the ranked \
                 mis-estimates and the per-worker skew/straggler table. Honors --system for \
                 forcing a fixpoint plan (gld, plw-s, plw-pg).")
  in
  let report_file =
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE.json"
           ~doc:"Write the machine-readable run report (query, plans, metrics, histograms, \
                 per-operator actuals, q-errors) as JSON. Implies an analyzed execution.")
  in
  let compare_plans =
    Arg.(value & flag & info [ "compare-plans" ]
           ~doc:"With --analyze: also execute the runner-up logical plan and report when the \
                 actual cost ordering disagrees with the estimated one.")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Capture an execution trace: Chrome trace_event JSON (open in chrome://tracing or \
                 Perfetto), or a flat JSONL event log if FILE ends in .jsonl. Also prints the \
                 per-operator/per-iteration rollup.")
  in
  let serve_sessions =
    Arg.(value & opt int 0 & info [ "serve" ] ~docv:"SESSIONS"
           ~doc:"Serve mode: run SESSIONS concurrent client sessions submitting the query \
                 through the multi-tenant caching service (lib/serve) and report throughput, \
                 cache hit rates and latency percentiles. --report writes the serve JSON.")
  in
  let serve_repeat =
    Arg.(value & opt int 4 & info [ "serve-repeat" ] ~docv:"N"
           ~doc:"With --serve: each session submits the query N times (default 4).")
  in
  let max_inflight =
    Arg.(value & opt int 2 & info [ "max-inflight" ] ~docv:"N"
           ~doc:"With --serve: admission slots; 2+ lets concurrent queries share in-flight \
                 fixpoints (default 2).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Install the process-wide telemetry registry (labeled counters, gauges and \
                 histograms fed by the serve/cluster/exec hot paths) and write its JSON \
                 snapshot to FILE at the end of the run.")
  in
  let sample_every =
    Arg.(value & opt int 0 & info [ "sample" ] ~docv:"N"
           ~doc:"With --serve: capture a full per-query execution trace for every N-th \
                 submitted query (deterministic 1-in-N on the query id; 0 disables).")
  in
  let slow_ms =
    Arg.(value & opt float 0. & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"With --serve: queries slower than MS land in the server's bounded slow-query \
                 log (0 disables).")
  in
  let stream_rounds =
    Arg.(value & opt int 0 & info [ "stream" ] ~docv:"ROUNDS"
           ~doc:"Streaming mode: apply ROUNDS edge-update batches interleaved with the query, \
                 on two servers — incremental repair enabled vs disabled — and report repair \
                 latency percentiles and the repair-vs-recompute speedup. --report writes the \
                 stream JSON.")
  in
  let stream_batch =
    Arg.(value & opt int 4 & info [ "stream-batch" ] ~docv:"N"
           ~doc:"With --stream: inserted edges per update batch (default 4).")
  in
  let term =
    Term.(
      const run $ gen $ graph_file $ labels $ query $ system $ all_systems $ workers $ timeout
      $ show $ explain $ analyze $ report_file $ compare_plans $ trace_file $ serve_sessions
      $ serve_repeat $ max_inflight $ metrics_out $ sample_every $ slow_ms $ stream_rounds
      $ stream_batch)
  in
  let info =
    Cmd.info "murarun" ~version:"1.0"
      ~doc:"Distributed evaluation of recursive graph queries (Dist-mu-RA)"
  in
  exit (Cmd.eval' (Cmd.v info term))
