(* murashell — an interactive shell for recursive graph queries.

   The shell is a single-tenant client of the serving layer: one cluster
   and its worker pool are created at startup (not per command, which
   would leak a domain pool per query), one [Serve.t] wraps it, and
   every query goes through the plan/result caches — resubmitting a
   query hits the cache and returns without touching the cluster.

   Commands:
     load FILE            load a (2- or 3-column) edge-list file as E
     gen SPEC             generate a graph (yago:N, uniprot:N, er:N:P, tree:N)
     insert EDGES         apply an edge-insert batch (incremental repair)
     delete EDGES         apply an edge-delete batch (DRed repair)
     workers N            set the simulated cluster size (default 4)
     explain QUERY        show optimized logical + physical plans
     stats                cache/admission counters with a since-last-stats
                          delta column (windowed telemetry scrape)
     QUERY                evaluate (e.g. ?x <- ?x a+ Japan)
     help | quit *)

module Rel = Relation.Rel

type state = {
  mutable serve : Serve.t;
  mutable session : Serve.Session.t;
  mutable workers : int;
  window : Telemetry.Window.handle;
      (* remembers the cumulative counters the previous [stats] saw *)
}

let boot workers =
  let cluster = Distsim.Cluster.make ~workers () in
  Serve.create ~cluster ()

let st =
  (* the shell runs with the registry installed so [stats] can scrape
     since-last-stats deltas; it survives server rebuilds (workers N) *)
  Telemetry.install (Telemetry.make ());
  let serve = boot 4 in
  {
    serve;
    session = Serve.open_session ~name:"shell" serve;
    workers = 4;
    window = Telemetry.Window.create ();
  }

let help () =
  print_string
    "commands:\n\
    \  load FILE      load an edge-list file as the relation E\n\
    \  gen SPEC       yago:N | uniprot:N | er:N:P | tree:N\n\
    \  insert EDGES   add edges, e.g.  insert 3 a 7; 7 b 9\n\
    \  delete EDGES   remove edges (same syntax); cached fixpoints\n\
    \                 are repaired incrementally, not recomputed\n\
    \  workers N      set cluster size\n\
    \  explain QUERY  show the optimized plans without executing\n\
    \  stats          cache/admission counters + since-last-stats deltas\n\
    \  QUERY          e.g.  ?x, ?y <- ?x knows+/likes ?y\n\
    \  help, quit\n"

let require_graph () =
  match Serve.relation st.serve "E" with
  | Some g -> g
  | None -> failwith "no graph loaded (use 'load FILE' or 'gen SPEC')"

let parse_query text = Rpq.Query.union_to_term (Rpq.Query.parse_union text)

let run_query text =
  ignore (require_graph ());
  let t0 = Unix.gettimeofday () in
  let r = Serve.query_ucrpq st.serve st.session text in
  let dt = Unix.gettimeofday () -. t0 in
  let how =
    if r.Serve.result_hit then if r.Serve.shared then "joined in-flight query" else "result cache hit"
    else
      Printf.sprintf "%d iterations%s%s"
        r.Serve.iterations
        (if r.Serve.plan_hit then ", plan cached" else "")
        (if r.Serve.fix_hits > 0 then Printf.sprintf ", %d fixpoints reused" r.Serve.fix_hits
         else "")
  in
  Printf.printf "%d tuples in %.3fs  [%s]\n" (Rel.cardinal r.Serve.rel) dt how;
  let shown = ref 0 in
  (try
     Rel.iter
       (fun tu ->
         if !shown >= 10 then raise Exit;
         incr shown;
         Printf.printf "  %s\n" (Relation.Tuple.to_string tu))
       r.Serve.rel
   with Exit -> print_endline "  ...")

(* Parse an edge batch: ';'-separated edges, fields split on spaces or
   commas. Field count must match E's arity (2, or 3 with labels).
   Nonnegative integers are node ids; anything else is interned as a
   symbolic constant, matching the loader's convention. *)
let parse_edges spec =
  let g = require_graph () in
  let schema = Rel.schema g in
  let arity = Relation.Schema.arity schema in
  let batch = Rel.create schema in
  List.iter
    (fun edge ->
      let fields =
        String.split_on_char ' ' (String.trim edge)
        |> List.concat_map (String.split_on_char ',')
        |> List.filter (fun s -> s <> "")
      in
      if fields <> [] then begin
        if List.length fields <> arity then
          failwith
            (Printf.sprintf "edge '%s' has %d fields but E has arity %d"
               (String.trim edge) (List.length fields) arity);
        let value f =
          match int_of_string_opt f with
          | Some n when n >= 0 -> n
          | _ -> Relation.Value.of_string f
        in
        ignore (Rel.add batch (Array.of_list (List.map value fields)))
      end)
    (String.split_on_char ';' spec);
  if Rel.is_empty batch then failwith "empty edge batch";
  batch

(* Updates go through [Serve.update]: cached fixpoint results over E are
   parked for incremental repair instead of being discarded, so the next
   query pays only the delta. *)
let insert_edges spec =
  let batch = parse_edges spec in
  Serve.update ~inserts:batch st.serve "E";
  let s = Serve.stats st.serve in
  Printf.printf "+%d edges (graph version %d, %d repairable fixpoints)\n"
    (Rel.cardinal batch) s.Serve.graph_version s.Serve.repair_handles

let delete_edges spec =
  let batch = parse_edges spec in
  Serve.update ~deletes:batch st.serve "E";
  let s = Serve.stats st.serve in
  Printf.printf "-%d edges (graph version %d, %d repairable fixpoints)\n"
    (Rel.cardinal batch) s.Serve.graph_version s.Serve.repair_handles

let explain_query text =
  ignore (require_graph ());
  let term = parse_query text in
  Printf.printf "physical plan:\n%s" (Serve.explain st.serve term)

let print_stats () =
  let s = Serve.stats st.serve in
  Printf.printf "queries: %d submitted, %d completed, %d failed (graph version %d)\n"
    s.Serve.submitted s.Serve.completed s.Serve.failed s.Serve.graph_version;
  (* totals come from the server counters; the delta column is a
     windowed scrape of the ambient registry, so each [stats] reports
     what happened since the previous one (first call: since startup) *)
  let snap = Telemetry.Window.delta st.window (Telemetry.get ()) in
  let cache c e =
    match
      Telemetry.Snapshot.value ~labels:[ ("cache", c); ("event", e) ] snap "serve_cache_total"
    with
    | Some v -> int_of_float v
    | None -> 0
  in
  Printf.printf "  %-22s %8s  %s\n" "" "total" "since last stats";
  let row name total dlt = Printf.printf "  %-22s %8d  %+d\n" name total dlt in
  row "result hits" s.Serve.result_hits (cache "result" "hit");
  row "in-flight joins" s.Serve.shared_joins (cache "result" "shared");
  row "result misses" s.Serve.result_misses (cache "result" "miss");
  row "plan hits" s.Serve.plan_hits (cache "plan" "hit");
  row "plan misses" s.Serve.plan_misses (cache "plan" "miss");
  row "fixpoints recomputed" s.Serve.fix_evals (cache "fix" "eval");
  row "fixpoint cache hits" s.Serve.fix_hits (cache "fix" "hit");
  row "fixpoints shared" s.Serve.fix_shared (cache "fix" "shared");
  let plain name =
    match Telemetry.Snapshot.value snap name with Some v -> int_of_float v | None -> 0
  in
  row "fixpoints repaired" s.Serve.repaired (plain "serve_cache_repaired_total");
  Printf.printf
    "  caches: %d result entries (%d bytes), %d plan entries; invalidated %d, evicted %d\n"
    s.Serve.result_entries s.Serve.result_bytes s.Serve.plan_entries s.Serve.invalidated
    s.Serve.evictions;
  Printf.printf "  repair: %d handles live, %d fallbacks to recompute\n"
    s.Serve.repair_handles s.Serve.repair_fallbacks;
  if s.Serve.slow_queries > 0 || s.Serve.traces_captured > 0 then
    Printf.printf "  telemetry: %d slow queries logged, %d traces captured\n"
      s.Serve.slow_queries s.Serve.traces_captured

(* replace the server (new pool size): carry the graph over *)
let set_workers n =
  let graph = Serve.relation st.serve "E" in
  Serve.shutdown st.serve;
  st.workers <- n;
  st.serve <- boot n;
  st.session <- Serve.open_session ~name:"shell" st.serve;
  (match graph with Some g -> Serve.register st.serve "E" g | None -> ());
  Printf.printf "cluster size: %d workers (caches reset)\n" n

let set_graph g =
  (* registration bumps the graph version and invalidates dependents *)
  Serve.register st.serve "E" g

let gen spec =
  let spec, labels =
    match String.split_on_char ' ' (String.trim spec) with
    | [ s ] -> (s, [ "a"; "b"; "c" ])
    | s :: l :: _ -> (s, String.split_on_char ',' l)
    | [] -> failwith "empty generator spec"
  in
  let g =
    match String.split_on_char ':' spec with
    | [ "yago"; scale ] -> Graphgen.Yago_like.generate ~scale:(int_of_string scale) ()
    | [ "uniprot"; scale ] -> Graphgen.Uniprot_like.generate ~scale:(int_of_string scale) ()
    | [ "er"; nodes; p ] ->
      Graphgen.Generators.erdos_renyi ~nodes:(int_of_string nodes) ~p:(float_of_string p) ()
    | [ "tree"; nodes ] -> Graphgen.Generators.random_tree ~nodes:(int_of_string nodes) ()
    | _ -> failwith "unknown generator spec"
  in
  (* UCRPQs need labelled edges: decorate plain graphs *)
  let g =
    if Relation.Schema.arity (Rel.schema g) = 2 then
      Graphgen.Generators.add_labels ~labels g
    else g
  in
  set_graph g;
  Printf.printf "generated %d labelled edges (labels: %s)\n" (Rel.cardinal g)
    (String.concat "," labels)

let load file =
  let g =
    try Relation.Rel_io.load_labelled_edges file
    with Failure _ -> Relation.Rel_io.load_edges file
  in
  set_graph g;
  Printf.printf "loaded %d edges from %s\n" (Rel.cardinal g) file

let dispatch line =
  let line = String.trim line in
  if line = "" then ()
  else if line = "help" then help ()
  else if line = "stats" then print_stats ()
  else if line = "quit" || line = "exit" then raise Exit
  else
    match String.index_opt line ' ' with
    | Some i when String.sub line 0 i = "load" ->
      load (String.trim (String.sub line i (String.length line - i)))
    | Some i when String.sub line 0 i = "gen" ->
      gen (String.trim (String.sub line i (String.length line - i)))
    | Some i when String.sub line 0 i = "insert" ->
      insert_edges (String.trim (String.sub line i (String.length line - i)))
    | Some i when String.sub line 0 i = "delete" ->
      delete_edges (String.trim (String.sub line i (String.length line - i)))
    | Some i when String.sub line 0 i = "workers" ->
      set_workers (int_of_string (String.trim (String.sub line i (String.length line - i))))
    | Some i when String.sub line 0 i = "explain" ->
      explain_query (String.trim (String.sub line i (String.length line - i)))
    | _ -> run_query line

let () =
  print_endline "Dist-mu-RA shell — 'help' for commands";
  try
    while true do
      print_string "mura> ";
      (match read_line () with
      | line -> (
        try dispatch line with
        | Exit -> raise Exit
        | Failure msg
        | Invalid_argument msg
        | Rpq.Regex.Parse_error msg
        | Rpq.Query.Translation_error msg
        | Mura.Eval.Eval_error msg
        | Mura.Typing.Type_error msg
        | Relation.Schema.Schema_error msg
        | Sys_error msg ->
          Printf.printf "error: %s\n" msg
        | Physical.Exec.Resource_limit msg -> Printf.printf "resource limit: %s\n" msg)
      | exception End_of_file -> raise Exit)
    done
  with Exit ->
    Serve.shutdown st.serve;
    print_endline "bye"
