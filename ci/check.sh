#!/bin/sh
# CI gate: formatting (when the formatter is available), full build, tests.
# Run from the repository root:  sh ci/check.sh
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune fmt (check) =="
  dune build @fmt || {
    echo "formatting check failed — run 'dune fmt' and commit the result" >&2
    exit 1
  }
else
  echo "== dune fmt skipped (ocamlformat not installed or no .ocamlformat) =="
fi

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

# fixpoint hot-path regression gate: quick-scale run of the pool +
# prepared-broadcast micro bench; a crash or a counter/result mismatch
# across the four variants fails the build (the >=2x speedup and
# pool-vs-spawn dispatch gates only apply at full bench scale)
echo "== bench micro_fixpoint (--quick) =="
dune exec bench/main.exe -- --quick micro_fixpoint

echo "ci/check.sh: all checks passed"
