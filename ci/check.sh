#!/bin/sh
# CI gate: formatting (when the formatter is available), full build, tests.
# Run from the repository root:  sh ci/check.sh
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune fmt (check) =="
  dune build @fmt || {
    echo "formatting check failed — run 'dune fmt' and commit the result" >&2
    exit 1
  }
else
  echo "== dune fmt skipped (ocamlformat not installed or no .ocamlformat) =="
fi

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

# EXPLAIN ANALYZE smoke: an analyzed run must print the annotated plan
# and skew table, and the JSON run report must parse and contain the
# required sections (metrics, per-operator actuals, straggler ratio)
echo "== murarun --analyze smoke =="
report=$(mktemp /tmp/murarun_report.XXXXXX.json)
trap 'rm -f "$report"' EXIT
out=$(dune exec bin/murarun.exe -- --gen er:2000:0.002 --labels a \
        --query "?x, ?y <- ?x a+ ?y" --analyze --report "$report")
for needle in "rows=" "est=" "err=" "straggler"; do
  case "$out" in
    *"$needle"*) ;;
    *) echo "--analyze output missing '$needle'" >&2; exit 1 ;;
  esac
done
if command -v python3 >/dev/null 2>&1; then
  python3 - "$report" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
for key in ("query", "metrics", "operators", "straggler_ratio", "q_error"):
    assert key in r, f"report missing key {key!r}"
assert r["operators"]["rows"] >= 0, "root operator has no actual cardinality"
assert r["metrics"]["per_worker_ns"], "report missing per-worker totals"
EOF
else
  for key in '"metrics"' '"operators"' '"straggler_ratio"' '"q_error"'; do
    grep -q "$key" "$report" || { echo "report missing $key" >&2; exit 1; }
  done
fi
echo "report OK: $report"

# fixpoint hot-path regression gate: quick-scale run of the pool +
# prepared-broadcast micro bench; a crash or a counter/result mismatch
# across the four variants fails the build (the >=2x speedup and
# pool-vs-spawn dispatch gates only apply at full bench scale)
echo "== bench micro_fixpoint (--quick) =="
dune exec bench/main.exe -- --quick micro_fixpoint

# shuffle parity gate: quick-scale run of the two-phase pooled exchange
# micro bench; any drift between the pooled and sequential paths —
# result partitions or shuffle counters — fails the build (the >=2x
# pooled speedup gate only applies at full scale on multi-core hosts)
echo "== bench micro_shuffle (--quick) =="
dune exec bench/main.exe -- --quick micro_shuffle

# delta-maintenance parity gate: quick-scale run of the fused
# accumulator + iteration-shuffle dedup micro bench; any divergence from
# the unfused baseline — result sizes, iteration counts or the
# per-iteration delta curve — fails the build (the overall-speedup and
# P_gld shuffle-reduction gates only apply at full scale on multi-core
# hosts)
echo "== bench micro_fixpoint_delta (--quick) =="
dune exec bench/main.exe -- --quick micro_fixpoint_delta

echo "ci/check.sh: all checks passed"
