#!/bin/sh
# CI gate: formatting (when the formatter is available), full build, tests,
# quick-scale bench parity gates and serving/streaming smokes.
# Run from the repository root:
#   sh ci/check.sh            # full check: everything + bench/trend.sh
#   sh ci/check.sh --quick    # same gates, but skips the trend diff
set -eu

quick=0
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    *) echo "usage: sh ci/check.sh [--quick]" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune fmt (check) =="
  dune build @fmt || {
    echo "formatting check failed — run 'dune fmt' and commit the result" >&2
    exit 1
  }
else
  echo "== dune fmt skipped (ocamlformat not installed or no .ocamlformat) =="
fi

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

# EXPLAIN ANALYZE smoke: an analyzed run must print the annotated plan
# and skew table, and the JSON run report must parse and contain the
# required sections (metrics, per-operator actuals, straggler ratio)
echo "== murarun --analyze smoke =="
report=$(mktemp /tmp/murarun_report.XXXXXX.json)
trap 'rm -f "$report"' EXIT
out=$(dune exec bin/murarun.exe -- --gen er:2000:0.002 --labels a \
        --query "?x, ?y <- ?x a+ ?y" --analyze --report "$report")
for needle in "rows=" "est=" "err=" "straggler"; do
  case "$out" in
    *"$needle"*) ;;
    *) echo "--analyze output missing '$needle'" >&2; exit 1 ;;
  esac
done
if command -v python3 >/dev/null 2>&1; then
  python3 - "$report" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
for key in ("query", "metrics", "operators", "straggler_ratio", "q_error"):
    assert key in r, f"report missing key {key!r}"
assert r["operators"]["rows"] >= 0, "root operator has no actual cardinality"
assert r["metrics"]["per_worker_ns"], "report missing per-worker totals"
EOF
else
  for key in '"metrics"' '"operators"' '"straggler_ratio"' '"q_error"'; do
    grep -q "$key" "$report" || { echo "report missing $key" >&2; exit 1; }
  done
fi
echo "report OK: $report"

# fixpoint hot-path regression gate: quick-scale run of the pool +
# prepared-broadcast micro bench; a crash or a counter/result mismatch
# across the four variants fails the build (the >=2x speedup and
# pool-vs-spawn dispatch gates only apply at full bench scale)
echo "== bench micro_fixpoint (--quick) =="
dune exec bench/main.exe -- --quick micro_fixpoint

# shuffle parity gate: quick-scale run of the two-phase pooled exchange
# micro bench; any drift between the pooled and sequential paths —
# result partitions or shuffle counters — fails the build (the >=2x
# pooled speedup gate only applies at full scale on multi-core hosts)
echo "== bench micro_shuffle (--quick) =="
dune exec bench/main.exe -- --quick micro_shuffle

# delta-maintenance parity gate: quick-scale run of the fused
# accumulator + iteration-shuffle dedup micro bench; any divergence from
# the unfused baseline — result sizes, iteration counts or the
# per-iteration delta curve — fails the build (the overall-speedup and
# P_gld shuffle-reduction gates only apply at full scale on multi-core
# hosts)
echo "== bench micro_fixpoint_delta (--quick) =="
dune exec bench/main.exe -- --quick micro_fixpoint_delta

# compiled-execution parity gate: quick-scale run of the compiled
# columnar core vs the interpreted loop; any divergence — result sizes,
# iteration counts, delta curves or communication counters — fails the
# build, as does any insert-triggered set growth on the compiled
# P_plw^s path (its output sets are presized exactly). The >=2x
# end-to-end speedup gate only applies at full scale on multi-core
# hosts.
echo "== bench micro_compiled (--quick) =="
dune exec bench/main.exe -- --quick micro_compiled

# whole-plan shell parity gate: quick-scale run of the compiled
# non-fixpoint shell vs the interpreted operators; any divergence —
# collected results or communication counters — fails the build, as
# does any insert-triggered set growth on the compiled path (every
# batch output is presized). The >=1.5x end-to-end speedup gate only
# applies at full scale on multi-core hosts.
echo "== bench micro_shell (--quick) =="
dune exec bench/main.exe -- --quick micro_shell

# serving-layer smoke: concurrent sessions resubmitting one query
# through lib/serve must hit the result cache (hit rate > 0) and match
# the reference results (murarun exits non-zero on any parity failure);
# the serve JSON report must parse and carry the cache and
# admission-wait fields
echo "== murarun --serve smoke =="
serve_report=$(mktemp /tmp/murarun_serve.XXXXXX.json)
trap 'rm -f "$report" "$serve_report"' EXIT
dune exec bin/murarun.exe -- --gen er:500:0.006 --labels a \
  --query "?x, ?y <- ?x a+ ?y" --serve 3 --serve-repeat 3 --report "$serve_report"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$serve_report" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
for key in ("hit_rate", "result_hits", "result_misses", "plan_hits",
            "fix_evals", "wait_ms", "latency_ms", "parity_failures"):
    assert key in r, f"serve report missing key {key!r}"
assert r["hit_rate"] > 0, "repeated query never hit the result cache"
assert r["parity_failures"] == 0, "serve results diverged from the oracle"
assert "p95" in r["wait_ms"], "serve report missing admission-wait percentiles"
EOF
else
  for key in '"hit_rate"' '"result_hits"' '"wait_ms"' '"latency_ms"'; do
    grep -q "$key" "$serve_report" || { echo "serve report missing $key" >&2; exit 1; }
  done
  grep -q '"hit_rate":0\.000' "$serve_report" &&
    { echo "repeated query never hit the result cache" >&2; exit 1; }
fi
echo "serve report OK: $serve_report"

# serving-cache parity gate: quick-scale run of the cached vs cache-less
# server micro bench; a parity failure against the reference evaluator
# or a cached run that re-evaluates every fixpoint fails the build (the
# >=2x caching speedup gate only applies at full scale)
echo "== bench micro_serve (--quick) =="
dune exec bench/main.exe -- --quick micro_serve

# telemetry gates: the registry must not change any server counter
# (single-session counters identical on vs off), the snapshot must carry
# the serve series in Prometheus and JSON form, a zero threshold must
# fill the slow-query log and sample-every-query must capture traces
# (the <=2% overhead gate only applies at full scale)
echo "== bench micro_telemetry (--quick) =="
dune exec bench/main.exe -- --quick micro_telemetry

# metrics-snapshot smoke: a served run with the registry installed and
# every query sampled must write a JSON snapshot that parses and carries
# the serve series — counters with labels, the latency histogram with
# buckets — and must have captured at least one per-query trace
echo "== murarun --serve --metrics-out smoke =="
metrics_out=$(mktemp /tmp/murarun_metrics.XXXXXX.json)
trap 'rm -f "$report" "$serve_report" "$metrics_out"' EXIT
out=$(dune exec bin/murarun.exe -- --gen er:500:0.006 --labels a \
        --query "?x, ?y <- ?x a+ ?y" --serve 3 --serve-repeat 3 \
        --metrics-out "$metrics_out" --sample 1 --slow-ms 0.001)
case "$out" in
  *"traces sampled"*) ;;
  *) echo "--sample 1 run reported no sampled traces" >&2; exit 1 ;;
esac
if command -v python3 >/dev/null 2>&1; then
  python3 - "$metrics_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    snap = json.load(f)
assert snap["window"] == "cumulative", "snapshot is not a cumulative scrape"
assert snap["taken_us"] > 0, "snapshot missing its timestamp"
rows = {(r["name"], tuple(sorted(r.get("labels", {}).items()))): r
        for r in snap["metrics"]}
names = {n for n, _ in rows}
for needed in ("serve_queries_submitted_total", "serve_cache_total",
               "serve_query_latency_ns", "cluster_stages_total",
               "dds_shuffles_total"):
    assert needed in names, f"snapshot missing series {needed!r}"
for r in snap["metrics"]:
    assert r["kind"] in ("counter", "gauge", "histogram"), r
    if r["kind"] == "histogram":
        assert "buckets" in r and r["count"] >= 0, f"bad histogram row {r['name']}"
        for b in r["buckets"]:
            assert "le" in b and b["count"] >= 0, f"bad bucket in {r['name']}"
    else:
        assert "value" in r, f"scalar row {r['name']} missing its value"
lat = [r for r in snap["metrics"] if r["name"] == "serve_query_latency_ns"]
assert lat and sum(r["count"] for r in lat) > 0, "latency histogram is empty"
hit = rows.get(("serve_cache_total",
                (("cache", "result"), ("event", "hit"))))
assert hit and hit["value"] > 0, "repeated query never hit the result cache"
EOF
else
  for key in '"serve_queries_submitted_total"' '"serve_query_latency_ns"' \
             '"buckets"' '"cluster_stages_total"'; do
    grep -q "$key" "$metrics_out" || { echo "snapshot missing $key" >&2; exit 1; }
  done
fi
echo "metrics snapshot OK: $metrics_out"

# incremental-maintenance parity gate: quick-scale run of the
# establish/repair micro bench; a parity failure on any plan × workers ×
# executor combination — insert or delete batches, repair-of-repair —
# fails the build (the >=5x repair-vs-recompute speedup gate only
# applies at full scale on multi-core hosts)
echo "== bench micro_incremental (--quick) =="
dune exec bench/main.exe -- --quick micro_incremental

# streaming smoke: sustained edge arrivals interleaved with queries
# through two servers (incremental repair vs recompute-from-scratch);
# murarun exits non-zero on any parity failure, and the stream report
# must parse, show repaired fixpoints, and carry the repair/recompute
# latency percentiles and the speedup
echo "== murarun --stream smoke =="
stream_report=$(mktemp /tmp/murarun_stream.XXXXXX.json)
trap 'rm -f "$report" "$serve_report" "$metrics_out" "$stream_report"' EXIT
dune exec bin/murarun.exe -- --gen er:300:0.01 --labels a \
  --query "?x, ?y <- ?x a+ ?y" --stream 4 --stream-batch 3 --report "$stream_report"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$stream_report" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["kind"] == "stream_mix", "report is not a stream report"
for key in ("rounds", "completed", "parity_failures", "repaired",
            "repair_fallbacks", "recomputed", "repair_ms", "recompute_ms",
            "speedup", "repair_server", "baseline_server"):
    assert key in r, f"stream report missing key {key!r}"
assert r["parity_failures"] == 0, "stream results diverged from the oracle"
assert r["repaired"] > 0, "the stream never repaired a fixpoint"
assert r["baseline_server"]["repaired"] == 0, "baseline server repaired"
for side in ("repair_ms", "recompute_ms"):
    for pct in ("mean", "p50", "p95"):
        assert pct in r[side], f"stream report missing {side}.{pct}"
EOF
else
  for key in '"kind":"stream_mix"' '"parity_failures"' '"repaired"' \
             '"repair_ms"' '"recompute_ms"' '"speedup"'; do
    grep -q "$key" "$stream_report" || { echo "stream report missing $key" >&2; exit 1; }
  done
fi
echo "stream report OK: $stream_report"

# performance trajectory: diff this run's BENCH_*.json snapshots against
# the previous invocation's and record them for next time (full check
# only — the quick gate leaves the trend store untouched)
if [ "$quick" = 0 ]; then
  echo "== bench/trend.sh =="
  sh bench/trend.sh
fi

echo "ci/check.sh: all checks passed"
