#!/bin/sh
# CI gate: formatting (when the formatter is available), full build, tests.
# Run from the repository root:  sh ci/check.sh
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune fmt (check) =="
  dune build @fmt || {
    echo "formatting check failed — run 'dune fmt' and commit the result" >&2
    exit 1
  }
else
  echo "== dune fmt skipped (ocamlformat not installed or no .ocamlformat) =="
fi

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "ci/check.sh: all checks passed"
