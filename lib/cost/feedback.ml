module Term = Mura.Term
module Fcond = Mura.Fcond

type estimate = { path : string; label : string; est_card : float }

type mismatch = {
  m_path : string;
  m_label : string;
  m_est : float;
  m_actual : float;
  m_q : float;
}

let child path i = path ^ "." ^ string_of_int i

let label (t : Term.t) =
  match t with
  | Rel n -> "Rel " ^ n
  | Cst _ -> "Cst"
  | Var x -> "Var " ^ x
  | Select _ -> "Select"
  | Project _ -> "Project"
  | Antiproject _ -> "Antiproject"
  | Rename _ -> "Rename"
  | Join _ -> "Join"
  | Antijoin _ -> "Antijoin"
  | Union _ -> "Union"
  | Fix (x, _) -> "Fix " ^ x

(* Clamp both sides to >= 1 tuple: the q-error of "estimated 0, got 0"
   is 1 (perfect), and empty-vs-something degrades gracefully instead of
   dividing by zero. *)
let q_error ~est ~actual =
  let e = Float.max est 1. and a = Float.max actual 1. in
  Float.max (e /. a) (a /. e)

let estimates stats term =
  let rec walk vars path acc (t : Term.t) =
    let e = Estimate.term ~vars stats t in
    let acc = { path; label = label t; est_card = e.Estimate.card } :: acc in
    match t with
    | Term.Rel _ | Term.Cst _ | Term.Var _ -> acc
    | Term.Select (_, u) | Term.Project (_, u) | Term.Antiproject (_, u) | Term.Rename (_, u)
      ->
      walk vars (child path 0) acc u
    | Term.Join (a, b) | Term.Antijoin (a, b) | Term.Union (a, b) ->
      let acc = walk vars (child path 0) acc a in
      walk vars (child path 1) acc b
    | Term.Fix (x, body) -> (
      match Fcond.split ~var:x body with
      | exception Fcond.Not_fcond _ -> acc
      | consts, recs ->
        (* inside the loop the variable is bound to the fixpoint's own
           estimate: branch estimates are per-full-result, which is what
           the accumulated per-iteration actuals approximate *)
        let vars' = (x, e) :: vars in
        List.fold_left
          (fun (i, acc) u -> (i + 1, walk vars' (child path i) acc u))
          (0, acc) (consts @ recs)
        |> snd)
  in
  List.rev (walk [] "0" [] term)

let compare_actuals stats term ~actuals =
  let ests = estimates stats term in
  List.filter_map
    (fun e ->
      match List.assoc_opt e.path actuals with
      | None -> None
      | Some rows ->
        let actual = float_of_int rows in
        Some
          {
            m_path = e.path;
            m_label = e.label;
            m_est = e.est_card;
            m_actual = actual;
            m_q = q_error ~est:e.est_card ~actual;
          })
    ests
  |> List.sort (fun a b -> compare b.m_q a.m_q)

let query_q_error mismatches = List.fold_left (fun acc m -> Float.max acc m.m_q) 1. mismatches

let summary ?(top = 5) mismatches =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "query q-error (max over operators): %.2f\n" (query_q_error mismatches);
  let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
  (match take top mismatches with
  | [] -> Buffer.add_string buf "no operators compared\n"
  | worst ->
    Printf.bprintf buf "worst mis-estimates:\n";
    List.iter
      (fun m ->
        Printf.bprintf buf "  %-14s [%s] est=%.0f actual=%.0f q=%.2f\n" m.m_label m.m_path
          m.m_est m.m_actual m.m_q)
      worst);
  Buffer.contents buf

(* --- plan-ordering feedback ---------------------------------------- *)

let ordering_hook : (string -> unit) ref = ref (fun _ -> ())

let argmin costs =
  match costs with
  | [] -> None
  | (n0, c0) :: tl ->
    Some (List.fold_left (fun (n, c) (n', c') -> if c' < c then (n', c') else (n, c)) (n0, c0) tl)

let check_plan_ordering ~est_costs ~actual_costs =
  match (argmin est_costs, argmin actual_costs) with
  | Some (chosen, est_c), Some (best, act_best) when not (String.equal chosen best) ->
    let act_chosen =
      match List.assoc_opt chosen actual_costs with Some c -> c | None -> Float.nan
    in
    let msg =
      Printf.sprintf
        "cost model ranked %S cheapest (est %.3g) but %S was actually cheapest (%.3g vs %.3g)"
        chosen est_c best act_best act_chosen
    in
    !ordering_hook msg;
    Some msg
  | _ -> None
