(** Estimate-vs-actual feedback: joins the estimator's per-operator
    cardinalities against the actuals collected by an EXPLAIN ANALYZE
    run and ranks the worst mis-estimates by q-error.

    Operators are addressed by term-tree paths under the convention
    shared with [Physical.Exec] and [Localdb.Instance]: the root is "0",
    child [i] of a node at path [p] is [p ^ "." ^ i], and the children
    of a [Fix] are its constant branches followed by its recursive ones,
    in [Mura.Fcond.split] order. This library never sees the executor —
    actuals arrive as plain [(path, rows)] pairs, so the harness can
    join the two sides without creating a dependency cycle. *)

type estimate = { path : string; label : string; est_card : float }

val estimates : Stats.t -> Mura.Term.t -> estimate list
(** Estimated output cardinality of every node, in path order. Inside a
    fixpoint the recursive variable is bound to the fixpoint's own
    estimate, so branch estimates approximate full-result volumes — the
    right scale to compare against actuals accumulated over all
    iterations. *)

val q_error : est:float -> actual:float -> float
(** [max (est/actual) (actual/est)], both sides clamped to >= 1 tuple;
    1.0 is a perfect estimate. *)

type mismatch = {
  m_path : string;
  m_label : string;
  m_est : float;
  m_actual : float;
  m_q : float;
}

val compare_actuals :
  Stats.t -> Mura.Term.t -> actuals:(string * int) list -> mismatch list
(** Per-operator comparison, worst q-error first. Nodes without a
    reported actual (e.g. never executed) are skipped. *)

val query_q_error : mismatch list -> float
(** Max q-error over the compared operators; 1.0 when none. *)

val summary : ?top:int -> mismatch list -> string
(** Human-readable ranked digest (default [top] = 5). *)

val ordering_hook : (string -> unit) ref
(** Called with a description whenever {!check_plan_ordering} detects a
    disagreement; defaults to a no-op. [Harness.Runner] points it at its
    logger. *)

val check_plan_ordering :
  est_costs:(string * float) list ->
  actual_costs:(string * float) list ->
  string option
(** Compares which alternative the cost model ranked cheapest against
    which one actually ran cheapest (by any actual measure: sim-time,
    wall time). Returns (and feeds {!ordering_hook}) a description when
    they disagree, [None] when the orderings agree or either list is
    empty. *)
