type t = { workers : int; parallel : bool; metrics : Metrics.t }

let make ?(parallel = false) ~workers () =
  if workers < 1 then invalid_arg "Cluster.make: workers < 1";
  let c = { workers; parallel; metrics = Metrics.create () } in
  (* wire the ambient tracer's simulated clock to this cluster's metered
     time, so every event carries a deterministic timestamp *)
  let m = c.metrics in
  Trace.set_sim_clock (Trace.get ()) (fun () -> m.Metrics.sim_time_ns);
  c

let workers c = c.workers
let parallel c = c.parallel
let metrics c = c.metrics

let clock_ns () = Unix.gettimeofday () *. 1e9

type 'a outcome = Value of 'a | Error of exn

let run_stage c f =
  let tr = Trace.get () in
  Trace.span tr ~cat:"stage" ~attrs:[ ("workers", Trace.Int c.workers) ] "stage" @@ fun () ->
  let n = c.workers in
  let timed w =
    let body () =
      let t0 = clock_ns () in
      let r = try Value (f w) with e -> Error e in
      let t1 = clock_ns () in
      (r, t1 -. t0)
    in
    (* worker-side events (e.g. localdb spans inside mapPartitions) land
       on the worker's own track *)
    if Trace.enabled tr then Trace.with_tid (w + 1) body else body ()
  in
  let results =
    if c.parallel && n > 1 then begin
      let domains = Array.init (n - 1) (fun i -> Domain.spawn (fun () -> timed (i + 1))) in
      let first = timed 0 in
      Array.append [| first |] (Array.map Domain.join domains)
    end
    else Array.init n timed
  in
  let max_ns = Array.fold_left (fun acc (_, t) -> Float.max acc t) 0. results in
  Metrics.record_stage c.metrics ~max_worker_ns:max_ns;
  Trace.set_attr tr "max_worker_ns" (Trace.Float max_ns);
  Array.map (fun (r, _) -> match r with Value v -> v | Error e -> raise e) results
