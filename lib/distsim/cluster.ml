(* The persistent worker-domain pool.

   One OCaml domain per remote worker (workers - 1 of them: the driver
   domain doubles as worker 0, as before), spawned once at [make] and
   kept alive across stages. Each pool worker owns a one-slot job queue
   guarded by a mutex/condvar pair; the driver posts a closure and later
   blocks on the same condvar until the slot reports completion. This
   replaces the old per-stage [Domain.spawn]/[Domain.join], whose spawn
   cost dominated short fixpoint iterations. *)
module Pool = struct
  type slot = {
    lock : Mutex.t;
    cond : Condition.t; (* signals both job arrival and completion *)
    mutable job : (unit -> unit) option;
    mutable busy : bool;
    mutable stop : bool;
  }

  type t = {
    slots : slot array;
    domains : unit Domain.t array;
    in_flight : int Atomic.t;
    mutable alive : bool;
  }

  let worker_loop slot =
    let rec loop () =
      Mutex.lock slot.lock;
      while slot.job = None && not slot.stop do
        Condition.wait slot.cond slot.lock
      done;
      match slot.job with
      | None ->
        (* stop requested with no pending job *)
        Mutex.unlock slot.lock
      | Some job ->
        slot.busy <- true;
        Mutex.unlock slot.lock;
        (* jobs capture their own failures (run_stage re-raises them on
           the driver); this last-resort catch keeps the domain alive no
           matter what, so the pool survives any worker exception *)
        (try job () with _ -> ());
        Mutex.lock slot.lock;
        slot.job <- None;
        slot.busy <- false;
        Condition.broadcast slot.cond;
        Mutex.unlock slot.lock;
        loop ()
    in
    loop ()

  let create n =
    let slots =
      Array.init n (fun _ ->
          { lock = Mutex.create (); cond = Condition.create (); job = None; busy = false; stop = false })
    in
    let domains = Array.map (fun s -> Domain.spawn (fun () -> worker_loop s)) slots in
    { slots; domains; in_flight = Atomic.make 0; alive = true }

  let size p = Array.length p.slots

  let submit p i job =
    let s = p.slots.(i) in
    Mutex.lock s.lock;
    while s.job <> None || s.busy do
      Condition.wait s.cond s.lock
    done;
    Atomic.incr p.in_flight;
    s.job <-
      Some
        (fun () ->
          Fun.protect ~finally:(fun () -> Atomic.decr p.in_flight) job);
    Condition.broadcast s.cond;
    Mutex.unlock s.lock

  let await p i =
    let s = p.slots.(i) in
    Mutex.lock s.lock;
    while s.job <> None || s.busy do
      Condition.wait s.cond s.lock
    done;
    Mutex.unlock s.lock

  let occupancy p = Atomic.get p.in_flight

  let shutdown p =
    if p.alive then begin
      p.alive <- false;
      Array.iter
        (fun s ->
          Mutex.lock s.lock;
          s.stop <- true;
          Condition.broadcast s.cond;
          Mutex.unlock s.lock)
        p.slots;
      Array.iter Domain.join p.domains
    end
end

type t = {
  workers : int;
  parallel : bool;
  use_parallel_shuffle : bool;
  adaptive_shuffle : bool;
  host_cores : int;
  metrics : Metrics.t;
  mutable pool : Pool.t option;
  dispatching : bool Atomic.t;
      (* single-driver invariant: only one stage may be in flight. Set for
         the duration of [run_stage]; a second dispatcher arriving while
         it is set is a concurrency bug in the caller (evaluations must be
         serialized through an admission queue, e.g. [Serve]) and is
         rejected loudly rather than silently corrupting shared metrics
         and pool slots. *)
}

let shutdown c =
  match c.pool with
  | None -> ()
  | Some p ->
    c.pool <- None;
    Pool.shutdown p

let make ?(parallel = false) ?(use_parallel_shuffle = true) ?(adaptive_shuffle = true) ~workers
    () =
  if workers < 1 then invalid_arg "Cluster.make: workers < 1";
  let pool =
    if parallel && workers > 1 then Some (Pool.create (workers - 1)) else None
  in
  let c =
    {
      workers;
      parallel;
      use_parallel_shuffle;
      adaptive_shuffle;
      host_cores = Domain.recommended_domain_count ();
      metrics = Metrics.create ();
      pool;
      dispatching = Atomic.make false;
    }
  in
  (* join the pool domains at process exit even when the owner never
     calls [shutdown] explicitly (tests, examples) *)
  if pool <> None then at_exit (fun () -> shutdown c);
  (* wire the ambient tracer's simulated clock to this cluster's metered
     time, so every event carries a deterministic timestamp *)
  let m = c.metrics in
  Trace.set_sim_clock (Trace.get ()) (fun () -> m.Metrics.sim_time_ns);
  c

let workers c = c.workers
let parallel c = c.parallel

(* The two-phase shuffle only pays off when stages actually fan out:
   sequential clusters and single-worker clusters keep the driver-side
   exchange (also the [use_parallel_shuffle:false] regression baseline). *)
let pooled_shuffle c = c.parallel && c.use_parallel_shuffle && c.workers > 1
let host_cores c = c.host_cores
let adaptive_shuffle c = c.adaptive_shuffle

(* Per-exchange mode selection. Pooling an exchange pays a fixed dispatch
   cost per phase (two [run_stage]s plus bucket assembly); BENCH_shuffle
   shows it losing to the driver-side loop below a volume threshold,
   especially when the host has no spare cores for the pool domains. With
   [adaptive_shuffle] (the default) each exchange picks its mode from the
   measured record volume; the static knob behaviour ([use_parallel_shuffle]
   forcing every exchange pooled) is kept as the bench baseline. Both paths
   are bit-identical in results and counters, so the choice is purely a
   latency decision. *)
let adaptive_pooled_cutoff = 2048

let shuffle_mode c ~records =
  if not (pooled_shuffle c) then `Seq
  else if not c.adaptive_shuffle then `Pooled
  else begin
    let cutoff =
      if c.host_cores > c.workers then adaptive_pooled_cutoff else 4 * adaptive_pooled_cutoff
    in
    if records >= cutoff then `Pooled else `Seq
  end

let metrics c = c.metrics
let pool_size c = match c.pool with None -> 0 | Some p -> Pool.size p

let clock_ns () = Unix.gettimeofday () *. 1e9

type 'a outcome = Value of 'a | Error of exn

exception Concurrent_dispatch

let () =
  Printexc.register_printer (function
    | Concurrent_dispatch ->
      Some
        "Distsim.Cluster.Concurrent_dispatch: two evaluations interleaved stage dispatch on \
         one cluster (serialize them through an admission queue)"
    | _ -> None)

let busy c = Atomic.get c.dispatching

let run_stage c f =
  if not (Atomic.compare_and_set c.dispatching false true) then raise Concurrent_dispatch;
  Fun.protect ~finally:(fun () -> Atomic.set c.dispatching false) @@ fun () ->
  let tr = Trace.get () in
  Trace.span tr ~cat:"stage" ~attrs:[ ("workers", Trace.Int c.workers) ] "stage" @@ fun () ->
  let n = c.workers in
  let timed w =
    let body () =
      let t0 = clock_ns () in
      let r = try Value (f w) with e -> Error e in
      let t1 = clock_ns () in
      (r, t1 -. t0)
    in
    (* worker-side events (e.g. localdb spans inside mapPartitions) land
       on the worker's own track *)
    if Trace.enabled tr then Trace.with_tid (w + 1) body else body ()
  in
  let results =
    match c.pool with
    | Some pool when n > 1 ->
      let out = Array.make n None in
      let t0 = clock_ns () in
      for i = 1 to n - 1 do
        (* the job never raises: [timed] folds worker failures into the
           outcome, and this guard catches anything outside it (e.g. an
           allocation failure), so the driver always finds a result *)
        Pool.submit pool (i - 1) (fun () ->
            out.(i) <- Some (try timed i with e -> (Error e, 0.)))
      done;
      if Trace.enabled tr then begin
        Trace.counter tr ~cat:"pool" "pool.occupancy" (float_of_int (Pool.occupancy pool));
        Trace.set_attr tr "dispatch_ns" (Trace.Float (clock_ns () -. t0))
      end;
      Telemetry.set (Telemetry.get ()) "cluster_pool_occupancy"
        (float_of_int (Pool.occupancy pool));
      out.(0) <- Some (timed 0);
      for i = 1 to n - 1 do
        Pool.await pool (i - 1)
      done;
      if Trace.enabled tr then Trace.counter tr ~cat:"pool" "pool.occupancy" 0.;
      Telemetry.set (Telemetry.get ()) "cluster_pool_occupancy" 0.;
      Array.map (function Some r -> r | None -> assert false) out
    | Some _ | None -> Array.init n timed
  in
  let max_ns = Array.fold_left (fun acc (_, t) -> Float.max acc t) 0. results in
  Metrics.record_stage c.metrics ~max_worker_ns:max_ns;
  Array.iteri (fun w (_, t) -> Metrics.record_worker_time c.metrics ~worker:w ~ns:t) results;
  (* straggler ratio of this stage: max / median worker time (1.0 when
     perfectly balanced; single-worker stages are 1.0 by definition) *)
  let median_ns =
    let times = Array.map snd results in
    Array.sort compare times;
    times.(Array.length times / 2)
  in
  let straggler = if median_ns > 0. then max_ns /. median_ns else 1. in
  Metrics.record_straggler c.metrics ~ratio:straggler;
  Trace.set_attr tr "max_worker_ns" (Trace.Float max_ns);
  Trace.set_attr tr "median_worker_ns" (Trace.Float median_ns);
  Trace.set_attr tr "straggler" (Trace.Float straggler);
  Array.map (fun (r, _) -> match r with Value v -> v | Error e -> raise e) results
