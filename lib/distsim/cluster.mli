(** A simulated cluster: a driver plus a fixed set of workers.

    Each worker owns one partition slot per dataset. Workers can execute
    their partition work on real OCaml domains ([parallel = true]) or
    sequentially (deterministic, default); in both modes the per-worker
    compute time is measured and the stage time is the maximum across
    workers, which is what a synchronous Spark stage would cost.

    In parallel mode the cluster owns a {e persistent} worker-domain
    pool: [workers - 1] domains are spawned once at {!make} (the driver
    domain doubles as worker 0) and reused by every stage, each fed
    through a one-slot job queue guarded by a mutex/condvar pair. This
    amortises the domain-spawn cost that a per-stage
    [Domain.spawn]/[Domain.join] would pay on every fixpoint iteration.
    The pool survives worker exceptions (they are re-raised on the
    driver; the domains keep serving later stages) and is joined by
    {!shutdown} — called explicitly by long-lived owners and as an
    [at_exit] safety net otherwise. *)

type t

val make :
  ?parallel:bool -> ?use_parallel_shuffle:bool -> ?adaptive_shuffle:bool -> workers:int -> unit -> t
(** [use_parallel_shuffle] (default [true]) lets [Dds] run its exchanges
    as two-phase map/merge stages on the worker pool instead of
    sequentially on the driver; it only takes effect on parallel
    multi-worker clusters (see {!pooled_shuffle}). Results and
    communication counters are identical either way — the [false]
    setting exists as the regression baseline for [bench micro_shuffle].

    [adaptive_shuffle] (default [true]) further lets each exchange pick
    sequential or pooled from its measured record volume and the host's
    core count (see {!shuffle_mode}); set it to [false] to force every
    eligible exchange pooled, the pre-adaptive static behaviour the
    shuffle micro bench measures.
    @raise Invalid_argument if [workers < 1]. *)

val workers : t -> int
val parallel : t -> bool

val pooled_shuffle : t -> bool
(** Whether exchanges {e may} run as pooled two-phase shuffles: parallel
    mode, more than one worker, and [use_parallel_shuffle] not disabled.
    The per-exchange decision is {!shuffle_mode}. *)

val host_cores : t -> int
(** [Domain.recommended_domain_count] sampled at {!make}: the physical
    parallelism actually available to the pool, as opposed to the
    simulated [workers] count. *)

val adaptive_shuffle : t -> bool

val shuffle_mode : t -> records:int -> [ `Pooled | `Seq ]
(** Mode for one exchange moving [records] tuples: [`Seq] when the
    cluster cannot pool ({!pooled_shuffle} false), [`Pooled] when
    adaptivity is disabled, otherwise pooled only above a volume cutoff
    that rises when the host has no spare cores ({!host_cores} <=
    [workers]). Both modes produce bit-identical partitions and
    communication counters; the exchange records the chosen mode as an
    [exchange_mode] span attribute. *)

val metrics : t -> Metrics.t
(** The cluster-lifetime metric accumulator (reset between experiments
    with {!Metrics.reset}). *)

val pool_size : t -> int
(** Number of live pool domains (0 for sequential clusters and after
    {!shutdown}). *)

val shutdown : t -> unit
(** Join the persistent worker-domain pool. Idempotent; a no-op on
    sequential clusters. After shutdown the cluster remains usable, with
    stages executing sequentially on the driver. *)

exception Concurrent_dispatch
(** Raised by {!run_stage} when a stage is dispatched while another is
    already in flight on the same cluster. The runtime has a {e single
    driver} invariant: one cluster executes one evaluation at a time
    (stages of two queries must never interleave — they would corrupt
    the shared metric accumulator and race on the pool's job slots).
    Callers that accept concurrent queries must serialize evaluations
    through an admission queue ([Serve] is the canonical entry point);
    this exception is the loud backstop for code that bypasses it. *)

val busy : t -> bool
(** Whether a stage is currently in flight (true only while some other
    domain is inside {!run_stage}). *)

val run_stage : t -> (int -> 'a) -> 'a array
(** [run_stage c f] runs [f w] for every worker index [w] (on the
    persistent pool in parallel mode), meters the stage (max per-worker
    time) and returns the per-worker results. Exceptions raised by any
    [f w] are re-raised on the driver; the pool stays usable for
    subsequent stages. When tracing is enabled the stage span carries a
    [dispatch_ns] attribute and [pool.occupancy] counter samples.
    @raise Concurrent_dispatch if another stage is already in flight. *)
