module Schema = Relation.Schema
module Tset = Relation.Tset
module Tuple = Relation.Tuple
module Rel = Relation.Rel
module Pred = Relation.Pred
module Batch = Relation.Batch

type partitioning = Arbitrary | Hashed of string list

type t = {
  cluster : Cluster.t;
  schema : Schema.t;
  parts : Tset.t array;
  partitioning : partitioning;
}

let cluster d = d.cluster
let schema d = d.schema
let partitioning d = d.partitioning
let num_partitions d = Array.length d.parts
let partition d i = d.parts.(i)
let partition_sizes d = Array.map Tset.cardinal d.parts
let cardinal d = Array.fold_left (fun acc p -> acc + Tset.cardinal p) 0 d.parts

let same_hashing a b =
  match (a, b) with Hashed x, Hashed y -> x = y | (Arbitrary | Hashed _), _ -> false

let target_of ~positions ~workers tu =
  if workers = 1 then 0 else Tuple.hash_positions positions tu mod workers

(* Metered communication, mirrored into the ambient tracer: every
   shuffle/broadcast becomes a point event attributed (via the open-span
   stack) to the operator and fixpoint iteration that caused it. *)
let meter_shuffle cluster ~op ~records ~bytes =
  Metrics.record_shuffle (Cluster.metrics cluster) ~records ~bytes;
  Trace.instant (Trace.get ()) ~cat:"shuffle"
    ~attrs:[ ("op", Trace.Str op); ("records", Trace.Int records); ("bytes", Trace.Int bytes) ]
    "shuffle"

let meter_broadcast cluster ~op ~records =
  Metrics.record_broadcast (Cluster.metrics cluster) ~records;
  Trace.instant (Trace.get ()) ~cat:"shuffle"
    ~attrs:[ ("op", Trace.Str op); ("records", Trace.Int records) ]
    "broadcast"

(* Partition statistics after a stage produced fresh partitions: sizes
   always feed the cluster's skew histograms (O(workers), each cardinal
   is O(1)); the max/mean skew attributes are only attached to the
   enclosing span when tracing is on. *)
let record_skew ?cluster tr parts =
  (match cluster with
  | None -> ()
  | Some c ->
    let m = Cluster.metrics c in
    Array.iteri (fun w p -> Metrics.record_partition_size m ~worker:w ~records:(Tset.cardinal p)) parts);
  if Trace.enabled tr then begin
    let sizes = Array.map Tset.cardinal parts in
    let total = Array.fold_left ( + ) 0 sizes in
    let mx = Array.fold_left max 0 sizes in
    let mean = float_of_int total /. float_of_int (max 1 (Array.length sizes)) in
    Trace.set_attr tr "out_records" (Trace.Int total);
    Trace.set_attr tr "max_partition" (Trace.Int mx);
    Trace.set_attr tr "skew"
      (Trace.Float (if mean > 0. then float_of_int mx /. mean else 1.))
  end

(* Map-side seen filter for iteration shuffles: [routed.(src).(dst)] holds
   every tuple source worker [src] already sent to destination [dst] in an
   earlier exchange through this filter. A re-derived tuple is dropped
   before it enters the shuffle — safe inside a semi-naive loop because
   anything routed earlier was unioned into the accumulator then, so the
   diff would discard it anyway; fresh sets (and thus the fixpoint) are
   unchanged while shuffle records/bytes shrink. Each worker touches only
   its own row of the matrix, so the pooled map phase needs no locking. *)
type seen_filter = { seen_routed : Tset.t array array; mutable seen_dropped : int }

let seen_filter cluster =
  let w = Cluster.workers cluster in
  { seen_routed = Array.init w (fun _ -> Array.init w (fun _ -> Tset.create ()));
    seen_dropped = 0 }

let seen_dropped f = f.seen_dropped

(* Sequential exchange, the [parallel:false] fallback: route every
   partition on the driver. Returns fresh partitions, the number of
   tuples that changed worker, and the number dropped by the seen filter.
   Partitions are presized to the mean post-exchange size (skewed
   partitions still resize). *)
let exchange_seq ?seen parts ~positions ~workers =
  let total = Array.fold_left (fun acc p -> acc + Tset.cardinal p) 0 parts in
  let fresh = Array.init workers (fun _ -> Tset.create ~capacity:((total / workers) + 1) ()) in
  let moved = ref 0 and dropped = ref 0 in
  Array.iteri
    (fun w p ->
      let keep =
        match seen with
        | None -> fun _ _ _ -> true
        | Some f -> fun t tu h -> Tset.add_hashed f.seen_routed.(w).(t) tu h
      in
      Tset.iter
        (fun tu ->
          let h = if Array.length tu = 0 then 0 else Tuple.hash tu in
          let t = target_of ~positions ~workers tu in
          if keep t tu h then begin
            if t <> w then incr moved;
            ignore (Tset.add_hashed fresh.(t) tu h)
          end
          else incr dropped)
        p)
    parts;
  (fresh, !moved, !dropped)

(* Map-side output of the two-phase shuffle: one growable vector of
   tuples per destination, each tuple paired with its full hash —
   computed once while routing and reused by the merge-side set insert
   ([Tset.add_hashed]), so no tuple is ever hashed twice. *)
module Bucket = struct
  type t = { mutable tuples : Tuple.t array; mutable hashes : int array; mutable len : int }

  let create ~capacity () =
    let cap = max capacity 8 in
    { tuples = Array.make cap [||]; hashes = Array.make cap 0; len = 0 }

  let push b tu h =
    if b.len = Array.length b.tuples then begin
      let cap = 2 * Array.length b.tuples in
      let tuples = Array.make cap [||] and hashes = Array.make cap 0 in
      Array.blit b.tuples 0 tuples 0 b.len;
      Array.blit b.hashes 0 hashes 0 b.len;
      b.tuples <- tuples;
      b.hashes <- hashes
    end;
    Array.unsafe_set b.tuples b.len tu;
    Array.unsafe_set b.hashes b.len h;
    b.len <- b.len + 1
end

let clock_ns () = Unix.gettimeofday () *. 1e9

(* Phase 2 (reduce side): destination [t] merges its incoming buckets in
   source order — the same insertion sequence the sequential exchange
   produces — into a set presized to the exact incoming volume. *)
let merge_buckets ~workers routed t =
  let incoming = ref 0 in
  for src = 0 to workers - 1 do
    incoming := !incoming + routed.(src).(t).Bucket.len
  done;
  let out = Tset.create ~capacity:!incoming () in
  for src = 0 to workers - 1 do
    let b = routed.(src).(t) in
    for i = 0 to b.Bucket.len - 1 do
      ignore (Tset.add_hashed out (Array.unsafe_get b.Bucket.tuples i) (Array.unsafe_get b.Bucket.hashes i))
    done
  done;
  out

(* Per-phase skew attribute on the open phase span: max/mean of the
   per-worker record counts the phase produced or consumed. *)
let phase_skew tr counts =
  if Trace.enabled tr then begin
    let total = Array.fold_left ( + ) 0 counts in
    let mx = Array.fold_left max 0 counts in
    let mean = float_of_int total /. float_of_int (max 1 (Array.length counts)) in
    Trace.set_attr tr "records" (Trace.Int total);
    Trace.set_attr tr "max_worker_records" (Trace.Int mx);
    Trace.set_attr tr "skew" (Trace.Float (if mean > 0. then float_of_int mx /. mean else 1.))
  end

(* Two-phase pooled exchange. Phase 1 (map side): every worker routes its
   own partition into [workers] destination buckets on the pool, hashing
   the key columns in place and counting locally-moved records. Phase 2
   (reduce side): every destination merges its incoming buckets, reusing
   the map-side hashes. Moved counts, metered records and the resulting
   partitions are bit-identical to [exchange_seq]. *)
let exchange_pooled ?seen cluster parts ~positions ~workers =
  let tr = Trace.get () in
  let t0 = clock_ns () in
  let routed, moved, dropped =
    Trace.span tr ~cat:"dds" "dds.exchange.map" @@ fun () ->
    let r =
      Cluster.run_stage cluster (fun w ->
          let p = parts.(w) in
          let buckets =
            Array.init workers (fun _ -> Bucket.create ~capacity:((Tset.cardinal p / workers) + 1) ())
          in
          let keep =
            match seen with
            | None -> fun _ _ _ -> true
            | Some f -> fun t tu h -> Tset.add_hashed f.seen_routed.(w).(t) tu h
          in
          let moved = ref 0 and dropped = ref 0 in
          Tset.iter
            (fun tu ->
              let h = if Array.length tu = 0 then 0 else Tuple.hash tu in
              let t = target_of ~positions ~workers tu in
              if keep t tu h then begin
                if t <> w then incr moved;
                Bucket.push buckets.(t) tu h
              end
              else incr dropped)
            p;
          (buckets, !moved, !dropped))
    in
    let moved = Array.fold_left (fun acc (_, m, _) -> acc + m) 0 r in
    let dropped = Array.fold_left (fun acc (_, _, d) -> acc + d) 0 r in
    phase_skew tr (Array.map (fun p -> Tset.cardinal p) parts);
    if Trace.enabled tr then Trace.set_attr tr "moved" (Trace.Int moved);
    (Array.map (fun (b, _, _) -> b) r, moved, dropped)
  in
  let t1 = clock_ns () in
  let fresh =
    Trace.span tr ~cat:"dds" "dds.exchange.merge" @@ fun () ->
    let fresh = Cluster.run_stage cluster (fun t -> merge_buckets ~workers routed t) in
    phase_skew tr (Array.map Tset.cardinal fresh);
    fresh
  in
  Metrics.record_exchange_phases (Cluster.metrics cluster) ~map_ns:(t1 -. t0)
    ~merge_ns:(clock_ns () -. t1);
  (fresh, moved, dropped)

(* Per-exchange mode decision ([Cluster.shuffle_mode]), recorded on the
   enclosing operator span so traces show which path each exchange took. *)
let choose_pooled cluster ~records =
  let mode = Cluster.shuffle_mode cluster ~records in
  let tr = Trace.get () in
  if Trace.enabled tr then
    Trace.set_attr tr "exchange_mode"
      (Trace.Str (match mode with `Pooled -> "pooled" | `Seq -> "seq"));
  mode = `Pooled

let exchange ?seen cluster parts ~positions ~workers =
  let records = Array.fold_left (fun acc p -> acc + Tset.cardinal p) 0 parts in
  if choose_pooled cluster ~records then exchange_pooled ?seen cluster parts ~positions ~workers
  else exchange_seq ?seen parts ~positions ~workers

(* Parallel routing of a driver-side relation: every worker scans its
   slice of the input set ([Tset.iter_slice] — the slices concatenate to
   the sequential iteration order), routes into per-destination buckets,
   and the merge phase assembles the partitions. Round-robin placement
   depends on the global iteration index, so it is reconstructed from a
   cheap parallel counting pass + prefix sums; the resulting partitions
   are bit-identical to the sequential path's. *)
let route_rel_pooled cluster ~workers ~by rel =
  let tr = Trace.get () in
  let ts = Rel.tuples rel in
  let t0 = clock_ns () in
  let routed =
    Trace.span tr ~cat:"dds" "dds.exchange.map" @@ fun () ->
    let route fill =
      Cluster.run_stage cluster (fun w ->
          let buckets =
            Array.init workers (fun _ ->
                Bucket.create ~capacity:((Rel.cardinal rel / (workers * workers)) + 1) ())
          in
          fill w buckets;
          buckets)
    in
    let r =
      match by with
      | Some cols ->
        let positions = Schema.positions (Rel.schema rel) cols in
        route (fun w buckets ->
            Tset.iter_slice
              (fun tu -> Bucket.push buckets.(target_of ~positions ~workers tu) tu (Tuple.hash tu))
              ts ~slice:w ~slices:workers)
      | None ->
        (* counting pass -> prefix sums -> global index of each slice *)
        let counts =
          Cluster.run_stage cluster (fun w ->
              let n = ref 0 in
              Tset.iter_slice (fun _ -> incr n) ts ~slice:w ~slices:workers;
              !n)
        in
        let offsets = Array.make workers 0 in
        for w = 1 to workers - 1 do
          offsets.(w) <- offsets.(w - 1) + counts.(w - 1)
        done;
        route (fun w buckets ->
            let i = ref offsets.(w) in
            Tset.iter_slice
              (fun tu ->
                Bucket.push buckets.(!i mod workers) tu (Tuple.hash tu);
                incr i)
              ts ~slice:w ~slices:workers)
    in
    phase_skew tr (Array.map (fun buckets -> Array.fold_left (fun a b -> a + b.Bucket.len) 0 buckets) r);
    r
  in
  let t1 = clock_ns () in
  let parts =
    Trace.span tr ~cat:"dds" "dds.exchange.merge" @@ fun () ->
    let parts = Cluster.run_stage cluster (fun t -> merge_buckets ~workers routed t) in
    phase_skew tr (Array.map Tset.cardinal parts);
    parts
  in
  Metrics.record_exchange_phases (Cluster.metrics cluster) ~map_ns:(t1 -. t0)
    ~merge_ns:(clock_ns () -. t1);
  parts

let of_rel ?by cluster rel =
  let tr = Trace.get () in
  Trace.span tr ~cat:"dds" "dds.of_rel" @@ fun () ->
  let workers = Cluster.workers cluster in
  let schema = Rel.schema rel in
  let parts =
    if choose_pooled cluster ~records:(Rel.cardinal rel) then
      route_rel_pooled cluster ~workers ~by rel
    else begin
      let parts =
        Array.init workers (fun _ -> Tset.create ~capacity:((Rel.cardinal rel / workers) + 1) ())
      in
      (match by with
      | Some cols ->
        let positions = Schema.positions schema cols in
        Rel.iter (fun tu -> ignore (Tset.add parts.(target_of ~positions ~workers tu) tu)) rel
      | None ->
        let w = ref 0 in
        Rel.iter
          (fun tu ->
            ignore (Tset.add parts.(!w) tu);
            w := (!w + 1) mod workers)
          rel);
      parts
    end
  in
  let records = Rel.cardinal rel in
  meter_shuffle cluster ~op:"of_rel" ~records
    ~bytes:(records * Metrics.tuple_bytes (Schema.arity schema));
  record_skew ~cluster tr parts;
  {
    cluster;
    schema;
    parts;
    partitioning = (match by with Some cols -> Hashed cols | None -> Arbitrary);
  }

let empty cluster schema =
  {
    cluster;
    schema;
    parts = Array.init (Cluster.workers cluster) (fun _ -> Tset.create ());
    partitioning = Hashed (Schema.cols schema);
  }

let collect d =
  let tr = Trace.get () in
  Trace.span tr ~cat:"dds" "dds.collect" @@ fun () ->
  let out =
    if choose_pooled d.cluster ~records:(cardinal d) then begin
      (* map side: every worker snapshots + hashes its own partition in
         parallel; the driver-side merge then only probes. *)
      let t0 = clock_ns () in
      let staged =
        Trace.span tr ~cat:"dds" "dds.exchange.map" @@ fun () ->
        let staged =
          Cluster.run_stage d.cluster (fun w ->
              let p = d.parts.(w) in
              let b = Bucket.create ~capacity:(Tset.cardinal p) () in
              Tset.iter (fun tu -> Bucket.push b tu (Tuple.hash tu)) p;
              b)
        in
        phase_skew tr (Array.map (fun b -> b.Bucket.len) staged);
        staged
      in
      let t1 = clock_ns () in
      let out =
        Trace.span tr ~cat:"dds" "dds.exchange.merge" @@ fun () ->
        let total = Array.fold_left (fun acc b -> acc + b.Bucket.len) 0 staged in
        let out = Tset.create ~capacity:total () in
        Array.iter
          (fun b ->
            for i = 0 to b.Bucket.len - 1 do
              ignore (Tset.add_hashed out b.Bucket.tuples.(i) b.Bucket.hashes.(i))
            done)
          staged;
        out
      in
      Metrics.record_exchange_phases (Cluster.metrics d.cluster) ~map_ns:(t1 -. t0)
        ~merge_ns:(clock_ns () -. t1);
      out
    end
    else begin
      let out = Tset.create ~capacity:(cardinal d) () in
      Array.iter (fun p -> ignore (Tset.add_all out p)) d.parts;
      out
    end
  in
  let records = Tset.cardinal out in
  meter_shuffle d.cluster ~op:"collect" ~records
    ~bytes:(records * Metrics.tuple_bytes (Schema.arity d.schema));
  Rel.of_tset d.schema out

let first_tuples d n =
  let acc = ref [] and remaining = ref n in
  (try
     Array.iter
       (fun p ->
         Tset.iter
           (fun tu ->
             if !remaining = 0 then raise Exit;
             acc := tu :: !acc;
             decr remaining)
           p)
       d.parts
   with Exit -> ());
  List.rev !acc

let map_partitions ?(op = "map_partitions") ?(partitioning = Arbitrary) ~schema f d =
  let tr = Trace.get () in
  Trace.span tr ~cat:"dds" ("dds." ^ op) @@ fun () ->
  let parts = Cluster.run_stage d.cluster (fun w -> f w d.parts.(w)) in
  record_skew ~cluster:d.cluster tr parts;
  { d with schema; parts; partitioning }

let filter p d =
  let keep = Pred.compile d.schema p in
  map_partitions ~op:"filter" ~partitioning:d.partitioning ~schema:d.schema
    (fun _ part ->
      let out = Tset.create ~capacity:(Tset.cardinal part) () in
      Tset.iter (fun tu -> if keep tu then ignore (Tset.add out tu)) part;
      out)
    d

let rename mapping d =
  let schema = Schema.rename mapping d.schema in
  let partitioning =
    match d.partitioning with
    | Arbitrary -> Arbitrary
    | Hashed cols ->
      Hashed
        (List.map
           (fun c -> match List.assoc_opt c mapping with Some fresh -> fresh | None -> c)
           cols)
  in
  { d with schema; partitioning }

let relayout_set ~from ~into part =
  if Schema.equal_ordered from into then part
  else begin
    let perm = Schema.reorder_positions ~from ~into in
    let out = Tset.create ~capacity:(Tset.cardinal part) () in
    Tset.iter (fun tu -> ignore (Tset.add out (Tuple.project perm tu))) part;
    out
  end

(* Size attributes for the narrow set-op spans: input cardinal on the
   driver, output sizes via [record_skew] without [~cluster] (trace attrs
   only — these ops never fed the partition-size histograms, and the
   knob-off counter parity contract keeps it that way). *)
let records_in_attr tr a b =
  if Trace.enabled tr then Trace.set_attr tr "records_in" (Trace.Int (cardinal a + cardinal b))

let set_union_local a b =
  if num_partitions a <> num_partitions b then invalid_arg "Dds.set_union_local: partition counts";
  let tr = Trace.get () in
  Trace.span tr ~cat:"dds" "dds.union_local" @@ fun () ->
  records_in_attr tr a b;
  let parts =
    Cluster.run_stage a.cluster (fun w ->
        let rhs = relayout_set ~from:b.schema ~into:a.schema b.parts.(w) in
        let out = Tset.copy_with_capacity a.parts.(w) (Tset.cardinal a.parts.(w) + Tset.cardinal rhs) in
        ignore (Tset.add_all out rhs);
        out)
  in
  record_skew tr parts;
  let partitioning =
    if same_hashing a.partitioning b.partitioning then a.partitioning else Arbitrary
  in
  { a with parts; partitioning }

let set_diff_local a b =
  if num_partitions a <> num_partitions b then invalid_arg "Dds.set_diff_local: partition counts";
  let tr = Trace.get () in
  Trace.span tr ~cat:"dds" "dds.diff_local" @@ fun () ->
  records_in_attr tr a b;
  let parts =
    Cluster.run_stage a.cluster (fun w ->
        let rhs = relayout_set ~from:b.schema ~into:a.schema b.parts.(w) in
        let out = Tset.create ~capacity:(Tset.cardinal a.parts.(w)) () in
        Tset.iter (fun tu -> if not (Tset.mem rhs tu) then ignore (Tset.add out tu)) a.parts.(w);
        out)
  in
  record_skew tr parts;
  { a with parts }

let set_inter_local a b =
  if num_partitions a <> num_partitions b then invalid_arg "Dds.set_inter_local: partition counts";
  let tr = Trace.get () in
  Trace.span tr ~cat:"dds" "dds.inter_local" @@ fun () ->
  records_in_attr tr a b;
  let parts =
    Cluster.run_stage a.cluster (fun w ->
        let rhs = relayout_set ~from:b.schema ~into:a.schema b.parts.(w) in
        let small, big =
          if Tset.cardinal a.parts.(w) <= Tset.cardinal rhs then (a.parts.(w), rhs)
          else (rhs, a.parts.(w))
        in
        let out = Tset.create ~capacity:(Tset.cardinal small) () in
        Tset.iter (fun tu -> if Tset.mem big tu then ignore (Tset.add out tu)) small;
        out)
  in
  record_skew tr parts;
  { a with parts }

let copy_parts d = { d with parts = Array.map Tset.copy d.parts }

(* Fused delta maintenance: one pooled stage replaces the unfused
   diff-then-copy-then-union three passes. The accumulator's partitions
   are mutated in place ([Tset.absorb_fresh]), so [acc] must be loop
   private — in the semi-naive drivers it is created by the initial
   repartition (or defensively [copy_parts]ed), never shared with the
   table cache. Returns [(acc', fresh)] where [fresh = produced \ acc]
   and [acc' = acc ∪ produced], with the same partitioning transitions
   as the unfused pair of calls. *)
let diff_union_in_place ~acc ~produced =
  if num_partitions acc <> num_partitions produced then
    invalid_arg "Dds.diff_union_in_place: partition counts";
  let tr = Trace.get () in
  Trace.span tr ~cat:"dds" "dds.diff_union" @@ fun () ->
  records_in_attr tr acc produced;
  let fresh_parts =
    Cluster.run_stage acc.cluster (fun w ->
        let rhs = relayout_set ~from:produced.schema ~into:acc.schema produced.parts.(w) in
        (* a recursive branch that is just the variable returns the delta
           itself: absorbing a set into itself is both unsound and
           pointless (nothing can be fresh), so short-circuit *)
        if rhs == acc.parts.(w) then Tset.create () else Tset.absorb_fresh acc.parts.(w) rhs)
  in
  record_skew tr fresh_parts;
  let acc' =
    { acc with
      partitioning =
        (if same_hashing acc.partitioning produced.partitioning then acc.partitioning
         else Arbitrary);
    }
  in
  let fresh = { acc with parts = fresh_parts; partitioning = produced.partitioning } in
  (acc', fresh)

(* Per-partition hash join. [index_side] picks the side the hash index
   is built on (and therefore which side is scanned): [`Auto] compares
   cardinals — the right choice for one-shot joins — while a caller
   holding a [prepared] index over the right side passes it explicitly
   and no comparison (or per-call index build) happens at all. *)
let local_join_sets ?prepared ?(index_side = `Auto) ~left_schema ~right_schema left right =
  let shared = Schema.common left_schema right_schema in
  let extra_cols = List.filter (fun c -> not (Schema.mem left_schema c)) (Schema.cols right_schema) in
  let extra_pos = Schema.positions right_schema extra_cols in
  let out = Tset.create ~capacity:(max (Tset.cardinal left) 16) () in
  let emit lt rt = ignore (Tset.add out (Tuple.concat lt (Tuple.project extra_pos rt))) in
  (match shared with
  | [] -> Tset.iter (fun lt -> Tset.iter (fun rt -> emit lt rt) right) left
  | _ ->
    let side =
      match (prepared, index_side) with
      | Some _, _ -> `Right (* a prepared index is always over the right side *)
      | None, `Left -> `Left
      | None, `Right -> `Right
      | None, `Auto ->
        (* index the smaller side: semi-naive loops join a small delta
           against a large stable relation every iteration *)
        if Tset.cardinal right <= Tset.cardinal left then `Right else `Left
    in
    (match side with
    | `Right ->
      let idx =
        match prepared with
        | Some idx -> idx
        | None -> Relation.Index.build right_schema shared (Tset.to_seq right)
      in
      let l_key = Schema.positions left_schema shared in
      Tset.iter (fun lt -> List.iter (emit lt) (Relation.Index.probe idx (Tuple.project l_key lt))) left
    | `Left ->
      let idx = Relation.Index.build left_schema shared (Tset.to_seq left) in
      let r_key = Schema.positions right_schema shared in
      Tset.iter
        (fun rt -> List.iter (fun lt -> emit lt rt) (Relation.Index.probe idx (Tuple.project r_key rt)))
        right));
  out

type broadcast = Rel.t

let broadcast cluster rel =
  let records = Rel.cardinal rel * max 1 (Cluster.workers cluster - 1) in
  meter_broadcast cluster ~op:"broadcast" ~records;
  rel

let broadcast_value b = b

let join_bcast d rel =
  let right_schema = Rel.schema rel in
  let out_schema = Schema.append_distinct d.schema right_schema in
  let right = Rel.tuples rel in
  map_partitions ~op:"join_bcast" ~partitioning:d.partitioning ~schema:out_schema
    (fun _ part -> local_join_sets ~left_schema:d.schema ~right_schema part right)
    d

let antijoin_bcast d rel =
  let shared = Schema.common d.schema (Rel.schema rel) in
  match shared with
  | [] ->
    if Rel.is_empty rel then d
    else map_partitions ~partitioning:d.partitioning ~schema:d.schema (fun _ _ -> Tset.create ()) d
  | _ ->
    let idx = Relation.Index.build (Rel.schema rel) shared (Tset.to_seq (Rel.tuples rel)) in
    let key = Schema.positions d.schema shared in
    map_partitions ~op:"antijoin_bcast" ~partitioning:d.partitioning ~schema:d.schema
      (fun _ part ->
        let out = Tset.create ~capacity:(Tset.cardinal part) () in
        Tset.iter
          (fun tu -> if not (Relation.Index.mem idx (Tuple.project key tu)) then ignore (Tset.add out tu))
          part;
        out)
      d

(* Prepared broadcast joins: the probe index over the constant
   (broadcast) side is built exactly once — at preparation time, on the
   driver, so worker domains share the immutable structure — and reused
   by every subsequent join, instead of being rebuilt (or worse, the
   whole broadcast relation rescanned) on every fixpoint iteration.
   Per-iteration work drops from O(|broadcast|) to O(|delta| * fanout). *)
type prepared_bcast = {
  b_rel : Rel.t;
  b_shared : string list; (* join columns the handle was prepared for *)
  b_index : Relation.Index.t option; (* None iff [b_shared] is empty *)
}

let prepare_bcast ~for_schema b =
  let right_schema = Rel.schema b in
  let shared = Schema.common for_schema right_schema in
  let index =
    match shared with
    | [] -> None
    | _ -> Some (Relation.Index.build right_schema shared (Tset.to_seq (Rel.tuples b)))
  in
  { b_rel = b; b_shared = shared; b_index = index }

let check_prepared ~op p schema =
  if Schema.common schema (Rel.schema p.b_rel) <> p.b_shared then
    invalid_arg
      (Printf.sprintf "Dds.%s: handle prepared for join columns [%s], dataset shares [%s]" op
         (String.concat "," p.b_shared)
         (String.concat "," (Schema.common schema (Rel.schema p.b_rel))))

let join_bcast_prepared d p =
  check_prepared ~op:"join_bcast_prepared" p d.schema;
  let right_schema = Rel.schema p.b_rel in
  let out_schema = Schema.append_distinct d.schema right_schema in
  let right = Rel.tuples p.b_rel in
  map_partitions ~op:"join_bcast" ~partitioning:d.partitioning ~schema:out_schema
    (fun _ part ->
      local_join_sets ?prepared:p.b_index ~left_schema:d.schema ~right_schema part right)
    d

let antijoin_bcast_prepared d p =
  check_prepared ~op:"antijoin_bcast_prepared" p d.schema;
  match p.b_index with
  | None ->
    if Rel.is_empty p.b_rel then d
    else map_partitions ~partitioning:d.partitioning ~schema:d.schema (fun _ _ -> Tset.create ()) d
  | Some idx ->
    let key = Schema.positions d.schema p.b_shared in
    map_partitions ~op:"antijoin_bcast" ~partitioning:d.partitioning ~schema:d.schema
      (fun _ part ->
        let out = Tset.create ~capacity:(Tset.cardinal part) () in
        Tset.iter
          (fun tu -> if not (Relation.Index.mem idx (Tuple.project key tu)) then ignore (Tset.add out tu))
          part;
        out)
      d

let join_broadcast d rel = join_bcast d (broadcast d.cluster rel)
let antijoin_broadcast d rel = antijoin_bcast d (broadcast d.cluster rel)

let repartition ?seen ~by d =
  if same_hashing d.partitioning (Hashed by) then d
  else begin
    let tr = Trace.get () in
    Trace.span tr ~cat:"dds" "dds.repartition" @@ fun () ->
    let workers = Cluster.workers d.cluster in
    let positions = Schema.positions d.schema by in
    let parts, moved, dropped = exchange ?seen d.cluster d.parts ~positions ~workers in
    (match seen with
    | None -> ()
    | Some f ->
      f.seen_dropped <- f.seen_dropped + dropped;
      Metrics.record_dedup_dropped (Cluster.metrics d.cluster) ~records:dropped;
      if Trace.enabled tr then Trace.set_attr tr "dedup_dropped" (Trace.Int dropped));
    meter_shuffle d.cluster ~op:"repartition" ~records:moved
      ~bytes:(moved * Metrics.tuple_bytes (Schema.arity d.schema));
    record_skew ~cluster:d.cluster tr parts;
    { d with parts; partitioning = Hashed by }
  end

let distinct d =
  match d.partitioning with
  | Hashed _ -> d (* co-located and partitions are sets: already distinct *)
  | Arbitrary -> repartition ~by:(Schema.cols d.schema) d

let join_shuffle a b =
  Trace.span (Trace.get ()) ~cat:"dds" "dds.join_shuffle" @@ fun () ->
  let shared = Schema.common a.schema b.schema in
  match shared with
  | [] ->
    (* Cartesian: broadcast the smaller side. When [a] is the broadcast
       side the join emits tuples directly in the a-first output layout
       (prepending the broadcast tuple), so no relayout pass over the
       result is needed. *)
    if cardinal a <= cardinal b then begin
      let small = broadcast a.cluster (collect a) in
      let left = Rel.tuples (broadcast_value small) in
      let n_left = Tset.cardinal left in
      let out_schema = Schema.append_distinct a.schema b.schema in
      map_partitions ~op:"join_bcast" ~schema:out_schema
        (fun _ part ->
          let out = Tset.create ~capacity:(max (Tset.cardinal part * n_left) 16) () in
          Tset.iter
            (fun bt -> Tset.iter (fun at -> ignore (Tset.add out (Tuple.concat at bt))) left)
            part;
          out)
        b
    end
    else join_broadcast a (collect b)
  | _ ->
    let a' = repartition ~by:shared a in
    let b' = repartition ~by:shared b in
    let out_schema = Schema.append_distinct a.schema b.schema in
    let parts =
      Cluster.run_stage a.cluster (fun w ->
          local_join_sets ~left_schema:a.schema ~right_schema:b.schema a'.parts.(w) b'.parts.(w))
    in
    record_skew ~cluster:a.cluster (Trace.get ()) parts;
    { a with schema = out_schema; parts; partitioning = Hashed shared }

let antijoin_shuffle a b =
  Trace.span (Trace.get ()) ~cat:"dds" "dds.antijoin_shuffle" @@ fun () ->
  let shared = Schema.common a.schema b.schema in
  match shared with
  | [] ->
    if cardinal b = 0 then a
    else map_partitions ~partitioning:a.partitioning ~schema:a.schema (fun _ _ -> Tset.create ()) a
  | _ ->
    let a' = repartition ~by:shared a in
    let b' = repartition ~by:shared b in
    let key = Schema.positions a.schema shared in
    let b_key = Schema.positions b.schema shared in
    let parts =
      Cluster.run_stage a.cluster (fun w ->
          let keys = Tset.create ~capacity:(Tset.cardinal b'.parts.(w)) () in
          Tset.iter (fun tu -> ignore (Tset.add keys (Tuple.project b_key tu))) b'.parts.(w);
          let out = Tset.create ~capacity:(Tset.cardinal a'.parts.(w)) () in
          Tset.iter
            (fun tu -> if not (Tset.mem keys (Tuple.project key tu)) then ignore (Tset.add out tu))
            a'.parts.(w);
          out)
    in
    record_skew ~cluster:a.cluster (Trace.get ()) parts;
    { a with parts; partitioning = Hashed shared }

let union_distinct a b = distinct (set_union_local a b)

(* ------------------------------------------------------------------ *)
(* Columnar batch exchange (compiled execution core)                   *)
(* ------------------------------------------------------------------ *)

(* Wrap already-distributed partitions (e.g. a compiled fixpoint's
   accumulator) as a dataset. No data moves and nothing is metered: the
   partitions are adopted where they are. *)
let of_partitions cluster ~schema ~partitioning parts =
  if Array.length parts <> Cluster.workers cluster then
    invalid_arg "Dds.of_partitions: partition count <> workers";
  { cluster; schema; parts; partitioning }

(* Map side for source worker [w]: route every row of its batch into
   [workers] destination batches. Same targets as [exchange]
   ([Tuple.hash_positions] of the key columns mod workers), same moved
   count (kept rows whose destination differs from the source), same
   seen-filter semantics (full-tuple hash into the per-src-per-dst
   matrix, via the column-wise probe so dropped rows allocate nothing).
   When the key columns are the whole schema in order the stored hash
   column is the routing hash — no per-row hashing at all. *)
let route_batch_one ?seen ~positions ~workers ~identity w (b : Batch.t) =
  let n = Batch.length b in
  let arity = Batch.arity b in
  let buckets =
    Array.init workers (fun _ -> Batch.create ~capacity:((n / workers) + 1) ~arity ())
  in
  let cols = Batch.cols b in
  let keep =
    match seen with
    | None -> fun _ _ _ -> true
    | Some f -> fun t row h -> Tset.add_cols f.seen_routed.(w).(t) cols ~row ~hash:h
  in
  let moved = ref 0 and dropped = ref 0 in
  for i = 0 to n - 1 do
    let h = Batch.hash b i in
    let t =
      if workers = 1 then 0
      else (if identity then h else Batch.hash_positions b positions i) mod workers
    in
    if keep t i h then begin
      if t <> w then incr moved;
      Batch.push_row buckets.(t) b i
    end
    else incr dropped
  done;
  (buckets, !moved, !dropped)

(* Reduce side for destination [t]: merge incoming buckets in source
   order through a presized dedup builder, reusing the map-side hashes —
   the batch analogue of [merge_buckets], producing a duplicate-free
   partition without growing any table. *)
let merge_batch_buckets ~workers ~arity routed t =
  let incoming = ref 0 in
  for src = 0 to workers - 1 do
    incoming := !incoming + Batch.length routed.(src).(t)
  done;
  let bld = Batch.Builder.create ~capacity:!incoming ~arity () in
  let scratch = Batch.Builder.scratch bld in
  for src = 0 to workers - 1 do
    let b = routed.(src).(t) in
    let cols = Batch.cols b in
    for i = 0 to Batch.length b - 1 do
      for c = 0 to arity - 1 do
        Array.unsafe_set scratch c (Array.unsafe_get (Array.unsafe_get cols c) i)
      done;
      ignore (Batch.Builder.add_scratch bld (Batch.hash b i))
    done
  done;
  Batch.Builder.batch bld

let is_identity_routing positions arity =
  Array.length positions = arity
  &&
  let ok = ref true in
  Array.iteri (fun i p -> if p <> i then ok := false) positions;
  !ok

(* Exchange of per-worker column batches; the compiled twin of
   [exchange], with identical moved/dropped accounting. Output partitions
   are duplicate-free batches ordered by source worker then row — the
   same multiset a Tset exchange would produce. *)
let exchange_batches ?seen cluster batches ~positions ~workers =
  let arity = Batch.arity batches.(0) in
  let identity = is_identity_routing positions arity in
  let records = Array.fold_left (fun acc b -> acc + Batch.length b) 0 batches in
  let tr = Trace.get () in
  if choose_pooled cluster ~records then begin
    let t0 = clock_ns () in
    let routed, moved, dropped =
      Trace.span tr ~cat:"dds" "dds.exchange.map" @@ fun () ->
      let r =
        Cluster.run_stage cluster (fun w ->
            route_batch_one ?seen ~positions ~workers ~identity w batches.(w))
      in
      let moved = Array.fold_left (fun acc (_, m, _) -> acc + m) 0 r in
      let dropped = Array.fold_left (fun acc (_, _, d) -> acc + d) 0 r in
      phase_skew tr (Array.map Batch.length batches);
      if Trace.enabled tr then Trace.set_attr tr "moved" (Trace.Int moved);
      (Array.map (fun (b, _, _) -> b) r, moved, dropped)
    in
    let t1 = clock_ns () in
    let fresh =
      Trace.span tr ~cat:"dds" "dds.exchange.merge" @@ fun () ->
      let fresh = Cluster.run_stage cluster (merge_batch_buckets ~workers ~arity routed) in
      phase_skew tr (Array.map Batch.length fresh);
      fresh
    in
    Metrics.record_exchange_phases (Cluster.metrics cluster) ~map_ns:(t1 -. t0)
      ~merge_ns:(clock_ns () -. t1);
    (fresh, moved, dropped)
  end
  else begin
    let routed = Array.make workers [||] in
    let moved = ref 0 and dropped = ref 0 in
    Array.iteri
      (fun w b ->
        let buckets, m, d = route_batch_one ?seen ~positions ~workers ~identity w b in
        routed.(w) <- buckets;
        moved := !moved + m;
        dropped := !dropped + d)
      batches;
    let fresh = Array.init workers (merge_batch_buckets ~workers ~arity routed) in
    (fresh, !moved, !dropped)
  end

(* Metered batch repartition: the compiled twin of [repartition] once the
   caller has decided the exchange is not a no-op (same [same_hashing]
   rule, applied against the tracked partitioning). Meters the shuffle,
   the dedup drops and the output partition sizes exactly as the
   interpreter path does. *)
let repartition_batches ?seen cluster batches ~schema ~by =
  let tr = Trace.get () in
  Trace.span tr ~cat:"dds" "dds.repartition" @@ fun () ->
  let workers = Cluster.workers cluster in
  let positions = Schema.positions schema by in
  let fresh, moved, dropped = exchange_batches ?seen cluster batches ~positions ~workers in
  (match seen with
  | None -> ()
  | Some f ->
    f.seen_dropped <- f.seen_dropped + dropped;
    Metrics.record_dedup_dropped (Cluster.metrics cluster) ~records:dropped;
    if Trace.enabled tr then Trace.set_attr tr "dedup_dropped" (Trace.Int dropped));
  meter_shuffle cluster ~op:"repartition" ~records:moved
    ~bytes:(moved * Metrics.tuple_bytes (Schema.arity schema));
  let m = Cluster.metrics cluster in
  Array.iteri (fun w b -> Metrics.record_partition_size m ~worker:w ~records:(Batch.length b)) fresh;
  if Trace.enabled tr then begin
    let sizes = Array.map Batch.length fresh in
    let total = Array.fold_left ( + ) 0 sizes in
    let mx = Array.fold_left max 0 sizes in
    let mean = float_of_int total /. float_of_int (max 1 (Array.length sizes)) in
    Trace.set_attr tr "out_records" (Trace.Int total);
    Trace.set_attr tr "max_partition" (Trace.Int mx);
    Trace.set_attr tr "skew" (Trace.Float (if mean > 0. then float_of_int mx /. mean else 1.))
  end;
  fresh
