(** Distributed datasets (the runtime's RDD/Dataset analogue).

    A [Dds.t] is a relation split into one partition per worker. Each
    partition is a tuple {e set} (the SetRDD representation the paper
    borrows from BigDatalog): intra-partition duplicates never exist;
    inter-partition duplicates are possible unless the dataset is
    hash-partitioned.

    Narrow operations (filter, map_partitions, partition-wise set ops,
    broadcast joins) touch no network. Wide operations (repartition,
    distinct, shuffle join, collect) are metered on the owning cluster's
    {!Metrics.t}.

    On a parallel cluster with {!Cluster.pooled_shuffle} enabled, wide
    operations run as a {e two-phase shuffle} on the persistent worker
    pool — a map phase (each worker routes its own partition into
    per-destination buckets, hashing key columns in place and counting
    moved records locally) and a merge phase (each destination merges
    its incoming buckets into a presized set, reusing the map-side
    hashes) — each phase with its own trace span ([dds.exchange.map] /
    [dds.exchange.merge]) carrying per-phase skew attributes. Result
    partitions and the metered records/bytes/moved counts are
    bit-identical to the sequential driver-side exchange, which remains
    the fallback (and the [use_parallel_shuffle:false] baseline). *)

type partitioning =
  | Arbitrary  (** no placement guarantee *)
  | Hashed of string list
      (** co-located by hash of these columns: equal projections on these
          columns imply the same worker *)

val same_hashing : partitioning -> partitioning -> bool
(** Whether two partitionings are [Hashed] by the same column list — the
    repartition no-op rule ({!repartition} skips the exchange when
    [same_hashing current (Hashed by)]). Compiled fixpoint runners track
    partitioning themselves and apply the same rule before calling
    {!repartition_batches}. *)

type t

val cluster : t -> Cluster.t
val schema : t -> Relation.Schema.t
val partitioning : t -> partitioning
val num_partitions : t -> int
val cardinal : t -> int
(** Total tuples (a driver-side count; not metered as data movement). *)

val partition : t -> int -> Relation.Tset.t
(** Read-only view of a partition (tests and local engines). *)

val partition_sizes : t -> int array

(** {1 Creation and collection} *)

val of_rel : ?by:string list -> Cluster.t -> Relation.Rel.t -> t
(** Ship a driver-side relation to the workers: hash-partitioned [~by]
    the given columns, or spread round-robin. Metered as one shuffle.
    Pooled clusters route the input in parallel (each worker scans a
    slice of the relation); round-robin placement is reconstructed from
    a counting pass so partitions match the sequential path exactly. *)

val empty : Cluster.t -> Relation.Schema.t -> t

val collect : t -> Relation.Rel.t
(** Gather all partitions to the driver (metered as one shuffle). On
    pooled clusters the per-partition snapshot + hashing runs on the
    workers; only the final merge is driver-side. *)

val first_tuples : t -> int -> Relation.Tuple.t list
(** Up to [n] tuples for display; not metered. *)

(** {1 Narrow operations} *)

val filter : Relation.Pred.t -> t -> t

val rename : (string * string) list -> t -> t
(** Schema-only relabelling; the partitioning column names are renamed
    along with the schema. *)

val map_partitions :
  ?op:string -> ?partitioning:partitioning -> schema:Relation.Schema.t ->
  (int -> Relation.Tset.t -> Relation.Tset.t) -> t -> t
(** [map_partitions ~schema f d] applies [f worker_index partition] on
    every worker. The default resulting partitioning is [Arbitrary];
    callers asserting preservation pass it explicitly. [?op] labels the
    operation's span in the ambient trace (default ["map_partitions"]). *)

val set_union_local : t -> t -> t
(** Partition-wise set union (the SetRDD union: no shuffle). Schemas must
    agree on names; the right side is relaid out if needed. The result is
    freshly allocated (presized for the combined cardinality in one pass);
    neither input is mutated. *)

val set_diff_local : t -> t -> t
(** Partition-wise difference. Only meaningful when both sides are
    co-partitioned; the caller is responsible (checked: both [Hashed] on
    the same columns, or both [Arbitrary] by explicit choice). *)

val set_inter_local : t -> t -> t
(** Partition-wise intersection (probes the smaller side of each
    partition pair against the larger). Like {!set_diff_local}, only
    meaningful on co-partitioned inputs; the result keeps the left
    side's schema layout and partitioning. Used by the DRed
    over-deletion pass to clip propagated deletions to tuples actually
    in the accumulator. *)

val copy_parts : t -> t
(** Driver-side deep copy of every partition (not metered — no simulated
    data movement). The escape hatch callers use to obtain a loop-private
    accumulator before handing it to {!diff_union_in_place}. *)

val diff_union_in_place : acc:t -> produced:t -> t * t
(** [diff_union_in_place ~acc ~produced] is the fused semi-naive delta
    maintenance step: returns [(acc', fresh)] where [fresh = produced \
    acc] and [acc' = acc ∪ produced], computed in a single stage with one
    probe per tuple ({!Relation.Tset.absorb_fresh}) instead of the unfused
    [set_diff_local] + [set_union_local] pair (which rebuilds the fresh
    set and copies the whole accumulator every iteration).

    {b Ownership:} [acc]'s partitions are mutated in place ([acc'] shares
    them). The caller must own [acc] exclusively — in the semi-naive
    drivers the accumulator is loop private, created by the initial
    repartition or defensively {!copy_parts}ed; it must never alias a
    cached base relation. Traced as [dds.diff_union] with input/output
    size and skew attributes. Partitioning transitions match the unfused
    pair. *)

(** {2 Iteration-shuffle deduplication}

    A semi-naive P_gld loop reshuffles its produced delta every iteration,
    and re-derivations of already-discovered tuples are shuffled again
    each time. A {!seen_filter} gives the exchange map side a per-source,
    per-destination memory ([Tset] per (src, dst) pair) of everything it
    already routed through this filter; re-derivations are dropped before
    they are bucketed or counted. Inside a fixpoint this is sound:
    anything routed earlier was already unioned into the accumulator, so
    the subsequent diff would discard it anyway — results, iteration
    counts and per-iteration fresh counts are bit-identical while
    [shuffled_records] / [shuffled_bytes] strictly shrink on workloads
    with re-derivations. Drops are metered as
    {!Metrics.record_dedup_dropped} and attached to the [dds.repartition]
    span as [dedup_dropped]. *)

type seen_filter

val seen_filter : Cluster.t -> seen_filter
(** A fresh filter, scoped to one fixpoint loop (one per [Fix] node). *)

val seen_dropped : seen_filter -> int
(** Total tuples this filter has dropped so far. *)

type broadcast
(** A relation shipped once to every worker. Creating the value meters
    the broadcast; joining against it afterwards is narrow and free, so
    a fixpoint loop that reuses the same broadcast (as P_plw does) pays
    the communication exactly once. *)

val broadcast : Cluster.t -> Relation.Rel.t -> broadcast
val broadcast_value : broadcast -> Relation.Rel.t

val join_bcast : t -> broadcast -> t
(** Narrow per-partition hash join against a broadcast relation.
    Preserves the left partitioning (natural join keeps all left
    columns). *)

val antijoin_bcast : t -> broadcast -> t

val join_broadcast : t -> Relation.Rel.t -> t
(** [broadcast] + [join_bcast] in one step (meters every call). *)

val antijoin_broadcast : t -> Relation.Rel.t -> t

(** {2 Prepared broadcast joins}

    [join_bcast] picks its hash-index side per partition by comparing
    cardinals, so a fixpoint joining a shrinking delta against a large
    broadcast relation ends up indexing the delta and {e rescanning the
    whole broadcast relation on every iteration} — O(|broadcast|) per
    iteration. A {!prepared_bcast} handle builds the index over the
    constant side exactly once (driver-side; the immutable index is then
    shared by all worker domains) and every subsequent join only probes
    it: O(|delta| * fanout) per iteration. Preparation meters nothing —
    the communication was already paid by {!broadcast}, so shuffle and
    broadcast counters are identical to the unprepared plan. *)

type prepared_bcast

val prepare_bcast : for_schema:Relation.Schema.t -> broadcast -> prepared_bcast
(** [prepare_bcast ~for_schema b] indexes the broadcast relation by the
    columns it shares with [for_schema] (the schema of the datasets that
    will be joined against it — constant across a fixpoint's
    iterations). *)

val join_bcast_prepared : t -> prepared_bcast -> t
(** Like {!join_bcast}, probing the prepared index; no per-call index
    build or side choice.
    @raise Invalid_argument if the dataset's shared columns differ from
    the ones the handle was prepared for. *)

val antijoin_bcast_prepared : t -> prepared_bcast -> t
(** Like {!antijoin_bcast}, reusing the prepared index. *)

(** {1 Wide operations} *)

val repartition : ?seen:seen_filter -> by:string list -> t -> t
(** Hash-repartition; tuples already on their target worker are not
    counted as moved. No-op when already [Hashed] by the same columns.
    [?seen] attaches an iteration-shuffle {!seen_filter}: tuples the
    filter has already routed are dropped map-side (absent from the
    result and from the moved/records/bytes meters). *)

val distinct : t -> t
(** Global deduplication. Free when the dataset is [Hashed] by any column
    subset (equal tuples are then co-located and partitions are sets);
    otherwise repartitions by the full schema. *)

val join_shuffle : t -> t -> t
(** Natural join by co-partitioning both sides on the shared columns.
    Degenerates to a broadcast-style plan when there are no shared
    columns. *)

val antijoin_shuffle : t -> t -> t
(** [antijoin_shuffle l r]: distributed [l ▷ r] by co-partitioning both
    sides on the shared columns. With no shared columns, falls back to a
    broadcast of the right side's emptiness. *)

val union_distinct : t -> t -> t
(** The Dataset union-then-distinct used by the P_gld plan. *)

(** {1 Columnar batch exchange (compiled execution core)}

    The compiled fixpoint runner keeps its per-worker deltas as
    {!Relation.Batch.t} column blocks instead of tuple sets. These
    entry points are the batch twins of {!repartition} / dataset
    adoption, with identical communication accounting: same routing
    ([Tuple.hash_positions] of the key columns — the stored full-tuple
    hash column when the keys are the whole schema in order), same
    moved/dropped counts, same seen-filter semantics. Output partitions
    are duplicate-free (merged through a presized dedup builder reusing
    the map-side hashes — no rehash, no table growth). *)

val of_partitions :
  Cluster.t -> schema:Relation.Schema.t -> partitioning:partitioning ->
  Relation.Tset.t array -> t
(** Adopt already-distributed partitions as a dataset. No data movement,
    nothing metered; the array must have one partition per worker.
    @raise Invalid_argument on a partition-count mismatch. *)

val exchange_batches :
  ?seen:seen_filter -> Cluster.t -> Relation.Batch.t array ->
  positions:int array -> workers:int -> Relation.Batch.t array * int * int
(** [exchange_batches cluster batches ~positions ~workers] routes every
    row by the hash of the columns at [positions]; returns the fresh
    per-destination batches, the moved count (kept rows whose destination
    differs from their source) and the seen-filter drop count. Pooled or
    sequential per {!Cluster.shuffle_mode}; both produce bit-identical
    output. Meters nothing — callers meter, mirroring {!repartition}. *)

val repartition_batches :
  ?seen:seen_filter -> Cluster.t -> Relation.Batch.t array ->
  schema:Relation.Schema.t -> by:string list -> Relation.Batch.t array
(** Metered batch repartition: {!exchange_batches} plus the exact
    metering of a non-no-op {!repartition} (shuffle records/bytes, dedup
    drops, per-worker partition-size samples, span attributes). The
    caller is responsible for the [same_hashing] no-op rule — call this
    only when the exchange is real. *)
