(* The fixed-bucket log2 histogram moved into [Telemetry] (the labeled
   metrics registry sits below distsim in the library stack and shares
   the bucket scheme); the alias keeps [Metrics.Hist.t] the same type
   for every existing caller. *)
module Hist = Telemetry.Hist

type t = {
  mutable shuffles : int;
  mutable shuffled_records : int;
  mutable shuffled_bytes : int;
  mutable broadcasts : int;
  mutable broadcast_records : int;
  mutable supersteps : int;
  mutable stages : int;
  mutable sim_time_ns : float;
  worker_ns : Hist.t;
  partition_records : Hist.t;
  straggler : Hist.t;
  mutable per_worker_ns : float array;
  mutable per_worker_records : float array;
  mutable exchange_map_ns : float;
  mutable exchange_merge_ns : float;
  mutable dedup_dropped_records : int;
}

let create () =
  {
    shuffles = 0;
    shuffled_records = 0;
    shuffled_bytes = 0;
    broadcasts = 0;
    broadcast_records = 0;
    supersteps = 0;
    stages = 0;
    sim_time_ns = 0.;
    worker_ns = Hist.create ();
    partition_records = Hist.create ();
    straggler = Hist.create ();
    per_worker_ns = [||];
    per_worker_records = [||];
    exchange_map_ns = 0.;
    exchange_merge_ns = 0.;
    dedup_dropped_records = 0;
  }

let reset m =
  m.shuffles <- 0;
  m.shuffled_records <- 0;
  m.shuffled_bytes <- 0;
  m.broadcasts <- 0;
  m.broadcast_records <- 0;
  m.supersteps <- 0;
  m.stages <- 0;
  m.sim_time_ns <- 0.;
  Hist.reset m.worker_ns;
  Hist.reset m.partition_records;
  Hist.reset m.straggler;
  m.per_worker_ns <- [||];
  m.per_worker_records <- [||];
  m.exchange_map_ns <- 0.;
  m.exchange_merge_ns <- 0.;
  m.dedup_dropped_records <- 0

let ensure_workers arr w =
  if Array.length arr > w then arr
  else begin
    let fresh = Array.make (w + 1) 0. in
    Array.blit arr 0 fresh 0 (Array.length arr);
    fresh
  end

let merge_per_worker a b =
  let out = ensure_workers a (max 0 (Array.length b - 1)) in
  Array.iteri (fun i v -> out.(i) <- out.(i) +. v) b;
  out

let add acc m =
  acc.shuffles <- acc.shuffles + m.shuffles;
  acc.shuffled_records <- acc.shuffled_records + m.shuffled_records;
  acc.shuffled_bytes <- acc.shuffled_bytes + m.shuffled_bytes;
  acc.broadcasts <- acc.broadcasts + m.broadcasts;
  acc.broadcast_records <- acc.broadcast_records + m.broadcast_records;
  acc.supersteps <- acc.supersteps + m.supersteps;
  acc.stages <- acc.stages + m.stages;
  acc.sim_time_ns <- acc.sim_time_ns +. m.sim_time_ns;
  Hist.merge acc.worker_ns m.worker_ns;
  Hist.merge acc.partition_records m.partition_records;
  Hist.merge acc.straggler m.straggler;
  acc.per_worker_ns <- merge_per_worker acc.per_worker_ns m.per_worker_ns;
  acc.per_worker_records <- merge_per_worker acc.per_worker_records m.per_worker_records;
  acc.exchange_map_ns <- acc.exchange_map_ns +. m.exchange_map_ns;
  acc.exchange_merge_ns <- acc.exchange_merge_ns +. m.exchange_merge_ns;
  acc.dedup_dropped_records <- acc.dedup_dropped_records + m.dedup_dropped_records

(* 8 bytes per field plus a fixed header, roughly Spark's unsafe row. *)
let tuple_bytes arity = 16 + (8 * arity)

let ns_per_shuffled_record = 150.
let ns_per_shuffle_round = 2_000_000.
let ns_per_broadcast_record = 60.

(* The record_* chokepoints below double as the feed of the ambient
   [Telemetry] registry: one process-wide labeled view of the same
   communication counters, aggregated across every cluster and query in
   a serving process. Strict no-ops while no registry is installed. *)

let record_stage m ~max_worker_ns =
  m.stages <- m.stages + 1;
  m.sim_time_ns <- m.sim_time_ns +. max_worker_ns;
  let r = Telemetry.get () in
  if Telemetry.enabled r then begin
    Telemetry.inc r "cluster_stages_total";
    Telemetry.observe r "cluster_stage_max_worker_ns" max_worker_ns
  end

let record_worker_time m ~worker ~ns =
  Hist.add m.worker_ns ns;
  m.per_worker_ns <- ensure_workers m.per_worker_ns worker;
  m.per_worker_ns.(worker) <- m.per_worker_ns.(worker) +. ns

let record_straggler m ~ratio =
  Hist.add m.straggler ratio;
  Telemetry.observe (Telemetry.get ()) "cluster_stage_straggler_ratio" ratio

let record_partition_size m ~worker ~records =
  Hist.add m.partition_records (float_of_int records);
  m.per_worker_records <- ensure_workers m.per_worker_records worker;
  m.per_worker_records.(worker) <- m.per_worker_records.(worker) +. float_of_int records

let record_shuffle m ~records ~bytes =
  m.shuffles <- m.shuffles + 1;
  m.shuffled_records <- m.shuffled_records + records;
  m.shuffled_bytes <- m.shuffled_bytes + bytes;
  m.sim_time_ns <-
    m.sim_time_ns +. ns_per_shuffle_round +. (float_of_int records *. ns_per_shuffled_record);
  let r = Telemetry.get () in
  if Telemetry.enabled r then begin
    Telemetry.inc r "dds_shuffles_total";
    Telemetry.add r "dds_shuffled_records_total" (float_of_int records);
    Telemetry.add r "dds_shuffled_bytes_total" (float_of_int bytes)
  end

let record_broadcast m ~records =
  m.broadcasts <- m.broadcasts + 1;
  m.broadcast_records <- m.broadcast_records + records;
  m.sim_time_ns <- m.sim_time_ns +. (float_of_int records *. ns_per_broadcast_record);
  let r = Telemetry.get () in
  if Telemetry.enabled r then begin
    Telemetry.inc r "dds_broadcasts_total";
    Telemetry.add r "dds_broadcast_records_total" (float_of_int records)
  end

let record_superstep m =
  m.supersteps <- m.supersteps + 1;
  Telemetry.inc (Telemetry.get ()) "cluster_supersteps_total"

let record_dedup_dropped m ~records =
  m.dedup_dropped_records <- m.dedup_dropped_records + records;
  Telemetry.add (Telemetry.get ()) "dds_dedup_dropped_records_total" (float_of_int records)

let record_exchange_phases m ~map_ns ~merge_ns =
  m.exchange_map_ns <- m.exchange_map_ns +. map_ns;
  m.exchange_merge_ns <- m.exchange_merge_ns +. merge_ns

let straggler_ratio m = Hist.max_value m.straggler

(* Debug counter proving the compiled output path presizes correctly:
   process-wide count of insert-triggered hash-table growths (explicit
   presizing never counts). Surfaced here so benches and tests reach it
   through the metrics API; the counter itself lives in [Relation.Tset]
   because worker domains grow sets concurrently. *)
let rehash_grows () = Relation.Tset.rehash_grow_count ()
let reset_rehash_grows () = Relation.Tset.reset_rehash_grows ()

let pp ppf m =
  Format.fprintf ppf
    "shuffles=%d (%d rec, %d B) broadcasts=%d (%d rec) supersteps=%d stages=%d sim_time=%.1fms"
    m.shuffles m.shuffled_records m.shuffled_bytes m.broadcasts m.broadcast_records m.supersteps
    m.stages (m.sim_time_ns /. 1e6)

let to_string m = Format.asprintf "%a" pp m
