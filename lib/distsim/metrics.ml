(* Fixed-bucket log2 histograms: cheap enough to stay on in the hot
   path (one clz-style bucket lookup and an increment per sample), rich
   enough for skew and straggler percentiles in run reports. *)
module Hist = struct
  let n_buckets = 48

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create () =
    { counts = Array.make n_buckets 0; n = 0; sum = 0.; vmin = infinity; vmax = neg_infinity }

  let reset h =
    Array.fill h.counts 0 n_buckets 0;
    h.n <- 0;
    h.sum <- 0.;
    h.vmin <- infinity;
    h.vmax <- neg_infinity

  (* bucket 0 holds [0, 1); bucket b >= 1 holds [2^(b-1), 2^b) *)
  let bucket_of v =
    if v < 1. then 0
    else min (n_buckets - 1) (1 + int_of_float (Float.log2 v))

  let bucket_hi b = if b = 0 then 1. else Float.pow 2. (float_of_int b)

  let add h v =
    let v = Float.max 0. v in
    h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v

  let count h = h.n
  let total h = h.sum
  let min_value h = if h.n = 0 then 0. else h.vmin
  let max_value h = if h.n = 0 then 0. else h.vmax
  let mean h = if h.n = 0 then 0. else h.sum /. float_of_int h.n

  (* Upper-bound estimate of the p-th percentile (p in [0, 100]): the
     upper edge of the bucket containing the rank-th sample, clamped to
     the exact observed [min, max]. An empty histogram reports 0; a
     histogram whose samples all fell into one bucket degenerates to the
     exact max (the clamp). *)
  let percentile h p =
    if h.n = 0 then 0.
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100. *. float_of_int h.n)) in
        if r < 1 then 1 else if r > h.n then h.n else r
      in
      let b = ref 0 and seen = ref 0 in
      (try
         for i = 0 to n_buckets - 1 do
           seen := !seen + h.counts.(i);
           if !seen >= rank then begin
             b := i;
             raise Exit
           end
         done
       with Exit -> ());
      Float.max h.vmin (Float.min h.vmax (bucket_hi !b))
    end

  let merge acc h =
    Array.iteri (fun i c -> acc.counts.(i) <- acc.counts.(i) + c) h.counts;
    acc.n <- acc.n + h.n;
    acc.sum <- acc.sum +. h.sum;
    if h.n > 0 then begin
      if h.vmin < acc.vmin then acc.vmin <- h.vmin;
      if h.vmax > acc.vmax then acc.vmax <- h.vmax
    end

  let buckets h =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.counts.(i) > 0 then acc := (bucket_hi i, h.counts.(i)) :: !acc
    done;
    !acc
end

type t = {
  mutable shuffles : int;
  mutable shuffled_records : int;
  mutable shuffled_bytes : int;
  mutable broadcasts : int;
  mutable broadcast_records : int;
  mutable supersteps : int;
  mutable stages : int;
  mutable sim_time_ns : float;
  worker_ns : Hist.t;
  partition_records : Hist.t;
  straggler : Hist.t;
  mutable per_worker_ns : float array;
  mutable per_worker_records : float array;
  mutable exchange_map_ns : float;
  mutable exchange_merge_ns : float;
  mutable dedup_dropped_records : int;
}

let create () =
  {
    shuffles = 0;
    shuffled_records = 0;
    shuffled_bytes = 0;
    broadcasts = 0;
    broadcast_records = 0;
    supersteps = 0;
    stages = 0;
    sim_time_ns = 0.;
    worker_ns = Hist.create ();
    partition_records = Hist.create ();
    straggler = Hist.create ();
    per_worker_ns = [||];
    per_worker_records = [||];
    exchange_map_ns = 0.;
    exchange_merge_ns = 0.;
    dedup_dropped_records = 0;
  }

let reset m =
  m.shuffles <- 0;
  m.shuffled_records <- 0;
  m.shuffled_bytes <- 0;
  m.broadcasts <- 0;
  m.broadcast_records <- 0;
  m.supersteps <- 0;
  m.stages <- 0;
  m.sim_time_ns <- 0.;
  Hist.reset m.worker_ns;
  Hist.reset m.partition_records;
  Hist.reset m.straggler;
  m.per_worker_ns <- [||];
  m.per_worker_records <- [||];
  m.exchange_map_ns <- 0.;
  m.exchange_merge_ns <- 0.;
  m.dedup_dropped_records <- 0

let ensure_workers arr w =
  if Array.length arr > w then arr
  else begin
    let fresh = Array.make (w + 1) 0. in
    Array.blit arr 0 fresh 0 (Array.length arr);
    fresh
  end

let merge_per_worker a b =
  let out = ensure_workers a (max 0 (Array.length b - 1)) in
  Array.iteri (fun i v -> out.(i) <- out.(i) +. v) b;
  out

let add acc m =
  acc.shuffles <- acc.shuffles + m.shuffles;
  acc.shuffled_records <- acc.shuffled_records + m.shuffled_records;
  acc.shuffled_bytes <- acc.shuffled_bytes + m.shuffled_bytes;
  acc.broadcasts <- acc.broadcasts + m.broadcasts;
  acc.broadcast_records <- acc.broadcast_records + m.broadcast_records;
  acc.supersteps <- acc.supersteps + m.supersteps;
  acc.stages <- acc.stages + m.stages;
  acc.sim_time_ns <- acc.sim_time_ns +. m.sim_time_ns;
  Hist.merge acc.worker_ns m.worker_ns;
  Hist.merge acc.partition_records m.partition_records;
  Hist.merge acc.straggler m.straggler;
  acc.per_worker_ns <- merge_per_worker acc.per_worker_ns m.per_worker_ns;
  acc.per_worker_records <- merge_per_worker acc.per_worker_records m.per_worker_records;
  acc.exchange_map_ns <- acc.exchange_map_ns +. m.exchange_map_ns;
  acc.exchange_merge_ns <- acc.exchange_merge_ns +. m.exchange_merge_ns;
  acc.dedup_dropped_records <- acc.dedup_dropped_records + m.dedup_dropped_records

(* 8 bytes per field plus a fixed header, roughly Spark's unsafe row. *)
let tuple_bytes arity = 16 + (8 * arity)

let ns_per_shuffled_record = 150.
let ns_per_shuffle_round = 2_000_000.
let ns_per_broadcast_record = 60.

let record_stage m ~max_worker_ns =
  m.stages <- m.stages + 1;
  m.sim_time_ns <- m.sim_time_ns +. max_worker_ns

let record_worker_time m ~worker ~ns =
  Hist.add m.worker_ns ns;
  m.per_worker_ns <- ensure_workers m.per_worker_ns worker;
  m.per_worker_ns.(worker) <- m.per_worker_ns.(worker) +. ns

let record_straggler m ~ratio = Hist.add m.straggler ratio

let record_partition_size m ~worker ~records =
  Hist.add m.partition_records (float_of_int records);
  m.per_worker_records <- ensure_workers m.per_worker_records worker;
  m.per_worker_records.(worker) <- m.per_worker_records.(worker) +. float_of_int records

let record_shuffle m ~records ~bytes =
  m.shuffles <- m.shuffles + 1;
  m.shuffled_records <- m.shuffled_records + records;
  m.shuffled_bytes <- m.shuffled_bytes + bytes;
  m.sim_time_ns <-
    m.sim_time_ns +. ns_per_shuffle_round +. (float_of_int records *. ns_per_shuffled_record)

let record_broadcast m ~records =
  m.broadcasts <- m.broadcasts + 1;
  m.broadcast_records <- m.broadcast_records + records;
  m.sim_time_ns <- m.sim_time_ns +. (float_of_int records *. ns_per_broadcast_record)

let record_superstep m = m.supersteps <- m.supersteps + 1

let record_dedup_dropped m ~records = m.dedup_dropped_records <- m.dedup_dropped_records + records

let record_exchange_phases m ~map_ns ~merge_ns =
  m.exchange_map_ns <- m.exchange_map_ns +. map_ns;
  m.exchange_merge_ns <- m.exchange_merge_ns +. merge_ns

let straggler_ratio m = Hist.max_value m.straggler

(* Debug counter proving the compiled output path presizes correctly:
   process-wide count of insert-triggered hash-table growths (explicit
   presizing never counts). Surfaced here so benches and tests reach it
   through the metrics API; the counter itself lives in [Relation.Tset]
   because worker domains grow sets concurrently. *)
let rehash_grows () = Relation.Tset.rehash_grow_count ()
let reset_rehash_grows () = Relation.Tset.reset_rehash_grows ()

let pp ppf m =
  Format.fprintf ppf
    "shuffles=%d (%d rec, %d B) broadcasts=%d (%d rec) supersteps=%d stages=%d sim_time=%.1fms"
    m.shuffles m.shuffled_records m.shuffled_bytes m.broadcasts m.broadcast_records m.supersteps
    m.stages (m.sim_time_ns /. 1e6)

let to_string m = Format.asprintf "%a" pp m
