(** Communication and execution metrics of a distributed run.

    Every wide operation (shuffle, distinct, shuffle join, collect) and
    every broadcast is metered here. The paper's central claim — P_plw
    needs one shuffle per fixpoint where P_gld needs one per iteration —
    is observable directly in these counters, independently of wall-clock
    noise. [sim_time_ns] accumulates a simulated parallel time:
    per stage, the maximum per-worker compute time, plus a latency model
    for each shuffle and broadcast.

    Beyond the scalar counters, every stage feeds three fixed-bucket
    log2 histograms ({!Hist}): per-worker compute time, per-worker
    output partition sizes, and the per-stage straggler ratio
    (max / median worker time) — the raw material of the skew tables in
    [murarun --analyze] and the JSON run reports. *)

(** Fixed-bucket log2 histogram — an alias of {!Telemetry.Hist}, where
    the implementation now lives (shared with the labeled metrics
    registry); see there for the bucket scheme, [percentile] and the
    interpolated [quantile]. *)
module Hist = Telemetry.Hist

type t = {
  mutable shuffles : int;  (** wide stages executed *)
  mutable shuffled_records : int;  (** tuples moved across workers *)
  mutable shuffled_bytes : int;
  mutable broadcasts : int;
  mutable broadcast_records : int;
  mutable supersteps : int;  (** driver-coordinated rounds *)
  mutable stages : int;  (** all stages, narrow included *)
  mutable sim_time_ns : float;
  worker_ns : Hist.t;  (** per-stage per-worker compute time *)
  partition_records : Hist.t;  (** per-stage per-worker output sizes *)
  straggler : Hist.t;  (** per-stage max/median worker time *)
  mutable per_worker_ns : float array;
      (** cumulative compute ns per worker index (grows on demand) *)
  mutable per_worker_records : float array;
      (** cumulative output records per worker index *)
  mutable exchange_map_ns : float;
      (** wall time spent in the map (routing) phase of pooled two-phase
          shuffles; 0 on the sequential exchange path *)
  mutable exchange_merge_ns : float;
      (** wall time spent in the merge phase of pooled two-phase shuffles *)
  mutable dedup_dropped_records : int;
      (** tuples dropped map-side by the iteration-shuffle seen filter
          (re-derivations that were already routed in an earlier fixpoint
          iteration); 0 when [use_shuffle_dedup] is off *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc m] accumulates [m] into [acc] (histograms and per-worker
    arrays merged elementwise). *)

val tuple_bytes : int -> int
(** Serialized size model for a tuple of the given arity. *)

(** Latency model knobs (per-record network cost and per-round fixed
    cost, in simulated nanoseconds). *)

val ns_per_shuffled_record : float
val ns_per_shuffle_round : float
val ns_per_broadcast_record : float

val record_stage : t -> max_worker_ns:float -> unit
val record_worker_time : t -> worker:int -> ns:float -> unit
val record_straggler : t -> ratio:float -> unit
val record_partition_size : t -> worker:int -> records:int -> unit
val record_shuffle : t -> records:int -> bytes:int -> unit
val record_broadcast : t -> records:int -> unit
val record_superstep : t -> unit

val record_dedup_dropped : t -> records:int -> unit
(** Count tuples suppressed by the exchange seen filter. Dropped tuples do
    not appear in [shuffled_records] / [shuffled_bytes]; this counter is
    how much the filter saved. *)

val record_exchange_phases : t -> map_ns:float -> merge_ns:float -> unit
(** Accumulate the wall time of one pooled two-phase shuffle, split by
    phase. Wall-clock (not deterministic), so excluded from the
    counter-parity contract between the shuffle paths. *)

val straggler_ratio : t -> float
(** Worst per-stage max/median worker-time ratio seen so far (1.0 is
    perfectly balanced; 0 when no stage ran). *)

val rehash_grows : unit -> int
(** Process-wide count of insert-triggered hash-table growths
    ({!Relation.Tset.rehash_grow_count}; explicit presizing never
    counts). The compiled execution core's output paths are presized end
    to end — the micro benches reset this and assert it stays zero across
    batch<->set conversions. *)

val reset_rehash_grows : unit -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string
