type row = { label : string; cells : (string * Systems.outcome) list }

let run_one ?(timeout_s = 60.) (s : Systems.system) w = s.run ~timeout_s w

let run_matrix ?(timeout_s = 60.) ~systems workloads =
  List.map
    (fun (label, w) ->
      {
        label;
        cells = List.map (fun (s : Systems.system) -> (s.name, run_one ~timeout_s s w)) systems;
      })
    workloads

let cell_text = function
  | Systems.Success s -> Printf.sprintf "%.3f" s.wall_s
  | Systems.Failed _ -> "fail"
  | Systems.Timeout _ -> "t/o"

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let print_table ?(extra = []) ~title ~columns rows =
  Printf.printf "\n== %s ==\n" title;
  let extra_names = List.map fst extra in
  let headers = ("query" :: columns) @ extra_names in
  let cell_of row col =
    match List.assoc_opt col row.cells with Some o -> cell_text o | None -> "-"
  in
  let extra_of row (name, f) =
    ignore name;
    match row.cells with (_, o) :: _ -> f o | [] -> "-"
  in
  let body =
    List.map
      (fun row ->
        (row.label :: List.map (cell_of row) columns)
        @ List.map (extra_of row) extra)
      rows
  in
  let all_rows = headers :: body in
  let widths =
    List.mapi
      (fun i _ -> List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) 0 all_rows)
      headers
  in
  let print_row r =
    print_string
      (String.concat "  " (List.map2 (fun w s -> pad w s) widths r));
    print_newline ()
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row body

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_<name>.json) and trace rollups      *)
(* ------------------------------------------------------------------ *)

(* Row labels follow the "Q1   [C1,C2]" convention of the bench harness;
   recover the query id and class list when present. *)
let split_label label =
  match (String.index_opt label '[', String.index_opt label ']') with
  | Some i, Some j when j > i ->
    let q = String.trim (String.sub label 0 i) in
    let classes =
      String.sub label (i + 1) (j - i - 1)
      |> String.split_on_char ','
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    (q, classes)
  | _ -> (String.trim label, [])

let outcome_json (o : Systems.outcome) =
  let open Trace.Json in
  match o with
  | Systems.Success s ->
    obj
      [
        ("status", str "success");
        ("wall_s", num s.wall_s);
        ("sim_s", num s.sim_s);
        ("result_size", string_of_int s.result_size);
        ("shuffles", string_of_int s.shuffles);
        ("shuffled_records", string_of_int s.shuffled_records);
        ("broadcast_records", string_of_int s.broadcast_records);
        ("supersteps", string_of_int s.supersteps);
      ]
  | Systems.Failed msg -> obj [ ("status", str "failed"); ("error", str msg) ]
  | Systems.Timeout t -> obj [ ("status", str "timeout"); ("after_s", num t) ]

let rows_json rows =
  let open Trace.Json in
  let row_json row =
    let query, classes = split_label row.label in
    obj
      [
        ("label", str row.label);
        ("query", str query);
        ("classes", "[" ^ String.concat "," (List.map str classes) ^ "]");
        ( "systems",
          obj (List.map (fun (name, o) -> (name, outcome_json o)) row.cells) );
      ]
  in
  "[" ^ String.concat ",\n" (List.map row_json rows) ^ "]\n"

let write_json ?(dir = ".") ~name rows =
  let file = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (rows_json rows))

(* Per-operator / per-iteration rollup of the ambient trace, for display
   after a traced run (murarun --trace, BENCH_TRACE=1). *)
let print_trace_rollup () =
  let tr = Trace.get () in
  if Trace.enabled tr then print_string (Trace.Rollup.to_string tr)

let print_series ~title ~x_label blocks =
  Printf.printf "\n== %s ==\n" title;
  List.iter
    (fun (x, rows) ->
      Printf.printf "-- %s = %s --\n" x_label x;
      List.iter
        (fun row ->
          Printf.printf "  %-28s %s\n" row.label
            (String.concat "  "
               (List.map (fun (name, o) -> Printf.sprintf "%s=%s" name (cell_text o)) row.cells)))
        rows)
    blocks
