type row = { label : string; cells : (string * Systems.outcome) list }

let run_one ?(timeout_s = 60.) (s : Systems.system) w = s.run ~timeout_s w

let run_matrix ?(timeout_s = 60.) ~systems workloads =
  List.map
    (fun (label, w) ->
      {
        label;
        cells = List.map (fun (s : Systems.system) -> (s.name, run_one ~timeout_s s w)) systems;
      })
    workloads

let cell_text = function
  | Systems.Success s -> Printf.sprintf "%.3f" s.wall_s
  | Systems.Failed _ -> "fail"
  | Systems.Timeout _ -> "t/o"

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let print_table ?(extra = []) ~title ~columns rows =
  Printf.printf "\n== %s ==\n" title;
  let extra_names = List.map fst extra in
  let headers = ("query" :: columns) @ extra_names in
  let cell_of row col =
    match List.assoc_opt col row.cells with Some o -> cell_text o | None -> "-"
  in
  let extra_of row (name, f) =
    ignore name;
    match row.cells with (_, o) :: _ -> f o | [] -> "-"
  in
  let body =
    List.map
      (fun row ->
        (row.label :: List.map (cell_of row) columns)
        @ List.map (extra_of row) extra)
      rows
  in
  let all_rows = headers :: body in
  let widths =
    List.mapi
      (fun i _ -> List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) 0 all_rows)
      headers
  in
  let print_row r =
    print_string
      (String.concat "  " (List.map2 (fun w s -> pad w s) widths r));
    print_newline ()
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row body

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_<name>.json) and trace rollups      *)
(* ------------------------------------------------------------------ *)

(* Row labels follow the "Q1   [C1,C2]" convention of the bench harness;
   recover the query id and class list when present. *)
let split_label label =
  match (String.index_opt label '[', String.index_opt label ']') with
  | Some i, Some j when j > i ->
    let q = String.trim (String.sub label 0 i) in
    let classes =
      String.sub label (i + 1) (j - i - 1)
      |> String.split_on_char ','
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    (q, classes)
  | _ -> (String.trim label, [])

let outcome_json (o : Systems.outcome) =
  let open Trace.Json in
  match o with
  | Systems.Success s ->
    obj
      [
        ("status", str "success");
        ("wall_s", num s.wall_s);
        ("sim_s", num s.sim_s);
        ("result_size", string_of_int s.result_size);
        ("shuffles", string_of_int s.shuffles);
        ("shuffled_records", string_of_int s.shuffled_records);
        ("broadcast_records", string_of_int s.broadcast_records);
        ("supersteps", string_of_int s.supersteps);
      ]
  | Systems.Failed msg -> obj [ ("status", str "failed"); ("error", str msg) ]
  | Systems.Timeout t -> obj [ ("status", str "timeout"); ("after_s", num t) ]

let rows_json rows =
  let open Trace.Json in
  let row_json row =
    let query, classes = split_label row.label in
    obj
      [
        ("label", str row.label);
        ("query", str query);
        ("classes", "[" ^ String.concat "," (List.map str classes) ^ "]");
        ( "systems",
          obj (List.map (fun (name, o) -> (name, outcome_json o)) row.cells) );
      ]
  in
  "[" ^ String.concat ",\n" (List.map row_json rows) ^ "]\n"

let write_json ?(dir = ".") ~name rows =
  let file = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (rows_json rows))

(* Per-operator / per-iteration rollup of the ambient trace, for display
   after a traced run (murarun --trace, BENCH_TRACE=1). *)
let print_trace_rollup () =
  let tr = Trace.get () in
  if Trace.enabled tr then print_string (Trace.Rollup.to_string tr)

(* ------------------------------------------------------------------ *)
(* EXPLAIN and EXPLAIN ANALYZE                                         *)
(* ------------------------------------------------------------------ *)

module Exec = Physical.Exec
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics

let term_of_query query = Rpq.Query.union_to_term (Rpq.Query.parse_union query)

let explain ?(workers = 4) ~graph ~query () =
  let tables = [ ("E", graph) ] in
  let best = Systems.optimize tables (term_of_query query) in
  let cluster = Cluster.make ~workers () in
  let ctx = Exec.session (Exec.default_config cluster) tables in
  Printf.sprintf "logical plan (after rewriting):\n  %s\n\nphysical plan:\n%s"
    (Mura.Term.to_string best) (Exec.explain ctx best)

type analysis = {
  a_query : string;
  a_system : string;
  a_workers : int;
  a_logical_plan : string;
  a_physical_plan : string;
  a_annotated_plan : string;
  a_tree : Exec.Analyze.node;
  a_mismatches : Cost.Feedback.mismatch list;
  a_q_error : float;
  a_outcome : Systems.outcome;
  a_metrics : Metrics.t;
  a_ordering : string option;
}

let rec flatten_nodes acc (n : Exec.Analyze.node) =
  List.fold_left flatten_nodes (n :: acc) n.Exec.Analyze.children

let annot_of mismatches path =
  match
    List.find_opt (fun (m : Cost.Feedback.mismatch) -> String.equal m.m_path path) mismatches
  with
  | Some m -> Printf.sprintf "est=%.0f err=%.2f" m.m_est m.m_q
  | None -> ""

(* Execute the two cheapest (by estimate) logical plans and report when
   the actual sim-time ordering contradicts the estimated one — the
   cost model telling on itself. *)
let check_ordering ~timeout_s ~workers tables stats term =
  let tenv = Mura.Typing.env (List.map (fun (n, r) -> (n, Relation.Rel.schema r)) tables) in
  let plans = Rewrite.Engine.explore ~max_plans:120 tenv term in
  let ranked =
    List.map (fun t -> (t, Cost.Estimate.cost stats t)) plans
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  match ranked with
  | (p1, c1) :: (p2, c2) :: _ ->
    let sim t =
      let cluster = Cluster.make ~workers () in
      let ctx = Exec.session (Exec.default_config cluster) tables in
      match
        Systems.guarded ~timeout_s
          (Some (Cluster.metrics cluster))
          (fun () -> Relation.Rel.cardinal (Exec.run ctx t))
      with
      | Systems.Success s -> Some s.Systems.sim_s
      | Systems.Failed _ | Systems.Timeout _ -> None
    in
    (match (sim p1, sim p2) with
    | Some s1, Some s2 ->
      Cost.Feedback.check_plan_ordering
        ~est_costs:[ ("chosen plan", c1); ("runner-up plan", c2) ]
        ~actual_costs:[ ("chosen plan", s1); ("runner-up plan", s2) ]
    | _ -> None)
  | _ -> None

let analyze ?(workers = 4) ?(timeout_s = 120.) ?force_plan ?(compare_plans = false) ~graph
    ~query () =
  let tables = [ ("E", graph) ] in
  let stats = Cost.Stats.of_tables tables in
  let term = term_of_query query in
  let best = Systems.optimize tables term in
  let cluster = Cluster.make ~workers () in
  let config = { (Exec.default_config cluster) with Exec.collect_actuals = true; force_plan } in
  let ctx = Exec.session config tables in
  let outcome =
    Systems.guarded ~timeout_s
      (Some (Cluster.metrics cluster))
      (fun () -> Relation.Rel.cardinal (Exec.run ctx best))
  in
  let tree = Exec.Analyze.tree ctx best in
  let actuals =
    List.filter_map
      (fun (n : Exec.Analyze.node) -> if n.calls > 0 then Some (n.path, n.rows) else None)
      (flatten_nodes [] tree)
  in
  let mismatches = Cost.Feedback.compare_actuals stats best ~actuals in
  let ordering =
    if compare_plans then check_ordering ~timeout_s ~workers tables stats term else None
  in
  {
    a_query = query;
    a_system =
      (match force_plan with None -> "dist" | Some p -> "dist/" ^ Exec.plan_name p);
    a_workers = workers;
    a_logical_plan = Mura.Term.to_string best;
    a_physical_plan = Exec.explain ctx best;
    a_annotated_plan = Exec.Analyze.render ~annot:(annot_of mismatches) tree;
    a_tree = tree;
    a_mismatches = mismatches;
    a_q_error = Cost.Feedback.query_q_error mismatches;
    a_outcome = outcome;
    a_metrics = Cluster.metrics cluster;
    a_ordering = ordering;
  }

let skew_table (m : Metrics.t) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "straggler ratio (worst stage, max/median worker time): %.2f\n"
    (Metrics.straggler_ratio m);
  let hist name scale unit h =
    Printf.bprintf buf "%-26s n=%-5d p50=%.2f%s p90=%.2f%s p99=%.2f%s max=%.2f%s\n" name
      (Metrics.Hist.count h)
      (Metrics.Hist.quantile h 0.50 /. scale)
      unit
      (Metrics.Hist.quantile h 0.90 /. scale)
      unit
      (Metrics.Hist.quantile h 0.99 /. scale)
      unit
      (Metrics.Hist.max_value h /. scale)
      unit
  in
  hist "worker compute time" 1e6 "ms" m.Metrics.worker_ns;
  hist "partition size" 1. " rec" m.Metrics.partition_records;
  hist "stage straggler ratio" 1. "x" m.Metrics.straggler;
  if m.Metrics.dedup_dropped_records > 0 then
    Printf.bprintf buf "iteration-shuffle dedup: %d re-derived tuples dropped map-side\n"
      m.Metrics.dedup_dropped_records;
  let n = max (Array.length m.Metrics.per_worker_ns) (Array.length m.Metrics.per_worker_records) in
  if n > 0 then begin
    Printf.bprintf buf "worker  compute_ms  out_records\n";
    for w = 0 to n - 1 do
      let at a = if w < Array.length a then a.(w) else 0. in
      Printf.bprintf buf "%6d  %10.2f  %11.0f\n" w
        (at m.Metrics.per_worker_ns /. 1e6)
        (at m.Metrics.per_worker_records)
    done
  end;
  Buffer.contents buf

let print_analysis a =
  Printf.printf "\n== EXPLAIN ANALYZE (%s, %d workers) ==\n" a.a_system a.a_workers;
  (match a.a_outcome with
  | Systems.Success s ->
    Printf.printf "result: %d tuples in %.3fs wall / %.3fs sim\n" s.Systems.result_size
      s.Systems.wall_s s.Systems.sim_s
  | o -> Printf.printf "outcome: %s\n" (cell_text o));
  Printf.printf "\nannotated plan (rows=actual, est=estimated, err=q-error):\n%s"
    a.a_annotated_plan;
  Printf.printf "\n%s" (Cost.Feedback.summary a.a_mismatches);
  Printf.printf "\n== worker skew ==\n%s" (skew_table a.a_metrics);
  match a.a_ordering with
  | Some msg -> Printf.printf "\nplan-ordering disagreement: %s\n" msg
  | None -> ()

(* --- JSON run report ------------------------------------------------ *)

let hist_json h =
  let open Trace.Json in
  obj
    [
      ("count", string_of_int (Metrics.Hist.count h));
      ("mean", num (Metrics.Hist.mean h));
      ("min", num (Metrics.Hist.min_value h));
      ("max", num (Metrics.Hist.max_value h));
      ("p50", num (Metrics.Hist.quantile h 0.50));
      ("p90", num (Metrics.Hist.quantile h 0.90));
      ("p99", num (Metrics.Hist.quantile h 0.99));
      ( "buckets",
        arr
          (List.map
             (fun (hi, c) -> obj [ ("le", num hi); ("count", string_of_int c) ])
             (Metrics.Hist.buckets h)) );
    ]

let metrics_json (m : Metrics.t) =
  let open Trace.Json in
  obj
    [
      ("shuffles", string_of_int m.Metrics.shuffles);
      ("shuffled_records", string_of_int m.Metrics.shuffled_records);
      ("shuffled_bytes", string_of_int m.Metrics.shuffled_bytes);
      ("broadcasts", string_of_int m.Metrics.broadcasts);
      ("broadcast_records", string_of_int m.Metrics.broadcast_records);
      ("supersteps", string_of_int m.Metrics.supersteps);
      ("stages", string_of_int m.Metrics.stages);
      ("dedup_dropped_records", string_of_int m.Metrics.dedup_dropped_records);
      ("sim_time_ns", num m.Metrics.sim_time_ns);
      ("straggler_ratio", num (Metrics.straggler_ratio m));
      ("worker_ns", hist_json m.Metrics.worker_ns);
      ("partition_records", hist_json m.Metrics.partition_records);
      ("straggler", hist_json m.Metrics.straggler);
      ("per_worker_ns", arr (List.map num (Array.to_list m.Metrics.per_worker_ns)));
      ("per_worker_records", arr (List.map num (Array.to_list m.Metrics.per_worker_records)));
    ]

let rec node_json (n : Exec.Analyze.node) =
  let open Trace.Json in
  let local_json (l : Exec.Analyze.local_op) =
    obj
      [
        ("path", str l.l_path);
        ("label", str l.l_label);
        ("rows", string_of_int l.l_rows_total);
        ("max_ns", num l.l_ns_max);
        ("rounds", string_of_int l.l_rounds);
        ("workers", string_of_int l.l_workers);
      ]
  in
  obj
    ([
       ("path", str n.path);
       ("label", str n.label);
       ("rows", string_of_int n.rows);
       ("ns", num n.ns);
       ("calls", string_of_int n.calls);
     ]
    @ (match n.plan with Some p -> [ ("plan", str p) ] | None -> [])
    @ (if n.iterations > 0 then
         [
           ("iterations", string_of_int n.iterations);
           ("deltas", arr (List.map string_of_int n.deltas));
         ]
       else [])
    @ (match n.local with [] -> [] | ls -> [ ("local", arr (List.map local_json ls)) ])
    @ [ ("children", arr (List.map node_json n.children)) ])

let report_json a =
  let open Trace.Json in
  let mismatch_json (m : Cost.Feedback.mismatch) =
    obj
      [
        ("path", str m.m_path);
        ("label", str m.m_label);
        ("est", num m.m_est);
        ("actual", num m.m_actual);
        ("q_error", num m.m_q);
      ]
  in
  obj
    [
      ("query", str a.a_query);
      ("system", str a.a_system);
      ("workers", string_of_int a.a_workers);
      ("logical_plan", str a.a_logical_plan);
      ("physical_plan", str a.a_physical_plan);
      ("outcome", outcome_json a.a_outcome);
      ("metrics", metrics_json a.a_metrics);
      ("straggler_ratio", num (Metrics.straggler_ratio a.a_metrics));
      ("operators", node_json a.a_tree);
      ("q_error", num a.a_q_error);
      ("mis_estimates", arr (List.map mismatch_json a.a_mismatches));
      ( "ordering_disagreement",
        match a.a_ordering with Some msg -> str msg | None -> "null" );
    ]
  ^ "\n"

let write_report ~file a =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (report_json a))

let print_series ~title ~x_label blocks =
  Printf.printf "\n== %s ==\n" title;
  List.iter
    (fun (x, rows) ->
      Printf.printf "-- %s = %s --\n" x_label x;
      List.iter
        (fun row ->
          Printf.printf "  %-28s %s\n" row.label
            (String.concat "  "
               (List.map (fun (name, o) -> Printf.sprintf "%s=%s" name (cell_text o)) row.cells)))
        rows)
    blocks
