(** Experiment runner: execute a matrix of (query × system) workloads and
    print the paper-style result tables. *)

type row = { label : string; cells : (string * Systems.outcome) list }

val run_one :
  ?timeout_s:float -> Systems.system -> Systems.workload -> Systems.outcome
(** Default timeout 60 s (scaled-down version of the paper's 1000 s). *)

val run_matrix :
  ?timeout_s:float ->
  systems:Systems.system list ->
  (string * Systems.workload) list ->
  row list
(** One row per workload, one cell per system. *)

val cell_text : Systems.outcome -> string
(** "1.234" (seconds), "fail", or "t/o". *)

val print_table :
  ?extra:(string * (Systems.outcome -> string)) list ->
  title:string -> columns:string list -> row list -> unit
(** Aligned text table on stdout: label column, one column per system
    (matched by name against the cells), optional derived columns
    computed from the first system's outcome. *)

val print_series : title:string -> x_label:string -> (string * row list) list -> unit
(** For figure-style output: one block per x value. *)

(** {1 Machine-readable results and trace rollups} *)

val split_label : string -> string * string list
(** ["Q1  [C1,C2]"] → [("Q1", ["C1"; "C2"])]; labels without a class
    bracket return the trimmed label and an empty list. *)

val rows_json : row list -> string
(** JSON array: one object per row with the query id, its classes and a
    per-system object carrying the outcome (status, wall/sim time and
    communication metrics). *)

val write_json : ?dir:string -> name:string -> row list -> unit
(** Write {!rows_json} to [BENCH_<name>.json] in [dir] (default ["."]). *)

val print_trace_rollup : unit -> unit
(** Print the ambient trace's per-operator and per-iteration rollup
    tables (no-op when tracing is disabled). *)
