(** Experiment runner: execute a matrix of (query × system) workloads and
    print the paper-style result tables. *)

type row = { label : string; cells : (string * Systems.outcome) list }

val run_one :
  ?timeout_s:float -> Systems.system -> Systems.workload -> Systems.outcome
(** Default timeout 60 s (scaled-down version of the paper's 1000 s). *)

val run_matrix :
  ?timeout_s:float ->
  systems:Systems.system list ->
  (string * Systems.workload) list ->
  row list
(** One row per workload, one cell per system. *)

val cell_text : Systems.outcome -> string
(** "1.234" (seconds), "fail", or "t/o". *)

val print_table :
  ?extra:(string * (Systems.outcome -> string)) list ->
  title:string -> columns:string list -> row list -> unit
(** Aligned text table on stdout: label column, one column per system
    (matched by name against the cells), optional derived columns
    computed from the first system's outcome. *)

val print_series : title:string -> x_label:string -> (string * row list) list -> unit
(** For figure-style output: one block per x value. *)

(** {1 Machine-readable results and trace rollups} *)

val split_label : string -> string * string list
(** ["Q1  [C1,C2]"] → [("Q1", ["C1"; "C2"])]; labels without a class
    bracket return the trimmed label and an empty list. *)

val rows_json : row list -> string
(** JSON array: one object per row with the query id, its classes and a
    per-system object carrying the outcome (status, wall/sim time and
    communication metrics). *)

val write_json : ?dir:string -> name:string -> row list -> unit
(** Write {!rows_json} to [BENCH_<name>.json] in [dir] (default ["."]). *)

val print_trace_rollup : unit -> unit
(** Print the ambient trace's per-operator and per-iteration rollup
    tables (no-op when tracing is disabled). *)

(** {1 EXPLAIN and EXPLAIN ANALYZE} *)

val explain : ?workers:int -> graph:Relation.Rel.t -> query:string -> unit -> string
(** Optimize the UCRPQ and describe, without executing: the rewritten
    logical plan and the physical plan [Physical.Exec] would choose
    (the [murarun --explain] pipeline). *)

type analysis = {
  a_query : string;
  a_system : string;
  a_workers : int;
  a_logical_plan : string;
  a_physical_plan : string;
  a_annotated_plan : string;
      (** rendered tree with per-node [rows=… est=… err=… time=…] *)
  a_tree : Physical.Exec.Analyze.node;
  a_mismatches : Cost.Feedback.mismatch list;  (** worst q-error first *)
  a_q_error : float;  (** max per-operator q-error *)
  a_outcome : Systems.outcome;
  a_metrics : Distsim.Metrics.t;
  a_ordering : string option;
      (** estimate-vs-actual plan-ordering disagreement, when checked *)
}

val analyze :
  ?workers:int ->
  ?timeout_s:float ->
  ?force_plan:Physical.Exec.fixpoint_plan ->
  ?compare_plans:bool ->
  graph:Relation.Rel.t ->
  query:string ->
  unit ->
  analysis
(** EXPLAIN ANALYZE: optimize, execute with per-operator actuals enabled
    ([collect_actuals]), join actuals against the cost estimator's
    per-node cardinalities, and collect the cluster's skew/straggler
    histograms. With [compare_plans] (default false) the two cheapest
    logical plans are also executed and their actual sim-time ordering
    checked against the estimated one ({!Cost.Feedback.check_plan_ordering},
    which feeds [Cost.Feedback.ordering_hook]). *)

val skew_table : Distsim.Metrics.t -> string
(** Per-worker skew digest: straggler ratio, histogram percentiles for
    worker compute time / partition sizes / per-stage straggler ratios,
    and the cumulative per-worker totals. *)

val print_analysis : analysis -> unit
(** Annotated plan, ranked mis-estimates, skew table and (when present)
    the plan-ordering disagreement, on stdout. *)

val report_json : analysis -> string
(** The machine-readable run report: query, system, plan strings,
    outcome, metrics (scalar counters + histograms + per-worker totals +
    straggler ratio), the per-operator actuals tree, and the q-error
    ranking. *)

val write_report : file:string -> analysis -> unit
(** Write {!report_json} to [file]. *)
