module Rel = Relation.Rel
module Term = Mura.Term
module Patterns = Mura.Patterns
module Exec = Physical.Exec
module Cluster = Distsim.Cluster
module Hist = Distsim.Metrics.Hist

type mix = (string * (unit -> Term.t)) list

(* distinct queries that share the closure fixpoint when executed: the
   mix exercises whole-query reuse AND subterm sharing *)
let default_mix () : mix =
  [
    ("tc", fun () -> Patterns.closure (Term.Rel "E"));
    ("reach", fun () -> Patterns.reach 1);
    ( "tc_filtered",
      fun () -> Term.Select (Relation.Pred.Gt_const ("src", 1), Patterns.closure (Term.Rel "E"))
    );
  ]

type config = {
  workers : int;
  parallel : bool;
  sessions : int;
  repeat : int;
  max_inflight : int;
  force_plan : Exec.fixpoint_plan option;
  sample_every : int;
  slow_threshold_ms : float;
}

let default_config =
  {
    workers = 4;
    parallel = false;
    sessions = 4;
    repeat = 4;
    max_inflight = 2;
    force_plan = None;
    sample_every = 0;
    slow_threshold_ms = infinity;
  }

type result = {
  wall_s : float;
  completed : int;
  failed : int;
  throughput_qps : float;
  hit_rate : float;
  parity_failures : int;
  stats : Serve.stats;
  wait_p50_ms : float;
  wait_p95_ms : float;
  lat_p50_ms : float;
  lat_p95_ms : float;
  lat_p99_ms : float;
  slow_queries : Serve.slow_query list;
  traces_captured : int;
  telemetry : Telemetry.Snapshot.t option;
}

let run ?(mix = default_mix ()) config ~graph =
  let cluster = Cluster.make ~parallel:config.parallel ~workers:config.workers () in
  let sconfig =
    match config.force_plan with
    | None -> None
    | Some _ -> Some { (Exec.default_config cluster) with Exec.force_plan = config.force_plan }
  in
  let t =
    Serve.create ~max_inflight:config.max_inflight ~sample_every:config.sample_every
      ~slow_threshold_ms:config.slow_threshold_ms ?config:sconfig ~cluster ()
  in
  Serve.register t "E" graph;
  (* parity oracle: the centralized reference evaluator *)
  let env = Mura.Eval.env [ ("E", graph) ] in
  let expected = List.map (fun (label, mk) -> (label, Mura.Eval.eval env (mk ()))) mix in
  let parity_failures = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let client i () =
    let sn = Serve.open_session ~name:(Printf.sprintf "client-%d" i) t in
    for _ = 1 to config.repeat do
      List.iter
        (fun (label, mk) ->
          (* fresh translation per submission, like a real client *)
          let r = Serve.query t sn (mk ()) in
          if not (Rel.equal (List.assoc label expected) r.Serve.rel) then
            Atomic.incr parity_failures)
        mix
    done;
    Serve.close_session t sn
  in
  let domains = List.init config.sessions (fun i -> Domain.spawn (client i)) in
  List.iter Domain.join domains;
  let wall_s = Unix.gettimeofday () -. t0 in
  let s = Serve.stats t in
  let wait_h = Serve.wait_hist t and lat_h = Serve.latency_hist t in
  (* shared interpolated-quantile implementation (Telemetry.Hist) *)
  let pct h q = Hist.quantile h q /. 1e6 in
  let telemetry =
    let reg = Telemetry.get () in
    if Telemetry.enabled reg then Some (Telemetry.snapshot reg) else None
  in
  let r =
    {
      wall_s;
      completed = s.Serve.completed;
      failed = s.Serve.failed;
      throughput_qps = (if wall_s > 0. then float_of_int s.Serve.completed /. wall_s else 0.);
      hit_rate =
        (if s.Serve.completed = 0 then 0.
         else
           float_of_int (s.Serve.result_hits + s.Serve.shared_joins)
           /. float_of_int s.Serve.completed);
      parity_failures = Atomic.get parity_failures;
      stats = s;
      wait_p50_ms = pct wait_h 0.50;
      wait_p95_ms = pct wait_h 0.95;
      lat_p50_ms = pct lat_h 0.50;
      lat_p95_ms = pct lat_h 0.95;
      lat_p99_ms = pct lat_h 0.99;
      slow_queries = Serve.slow_log t;
      traces_captured = s.Serve.traces_captured;
      telemetry;
    }
  in
  Serve.shutdown t;
  r

let print r =
  let s = r.stats in
  Printf.printf
    "serve mix: %d queries in %.3fs (%.1f q/s), hit rate %.0f%%, %d parity failures\n"
    r.completed r.wall_s r.throughput_qps (100. *. r.hit_rate) r.parity_failures;
  Printf.printf
    "  cache: %d result hits, %d in-flight joins, %d misses; plans: %d hits / %d misses\n"
    s.Serve.result_hits s.Serve.shared_joins s.Serve.result_misses s.Serve.plan_hits
    s.Serve.plan_misses;
  Printf.printf "  fixpoints: %d evaluated, %d cache hits, %d shared in flight\n"
    s.Serve.fix_evals s.Serve.fix_hits s.Serve.fix_shared;
  Printf.printf "  admission wait p50/p95: %.2f/%.2f ms; latency p50/p95/p99: %.2f/%.2f/%.2f ms\n"
    r.wait_p50_ms r.wait_p95_ms r.lat_p50_ms r.lat_p95_ms r.lat_p99_ms;
  if s.Serve.slow_queries > 0 || r.traces_captured > 0 then
    Printf.printf "  telemetry: %d slow queries logged, %d traces sampled\n" s.Serve.slow_queries
      r.traces_captured;
  match r.telemetry with
  | None -> ()
  | Some snap ->
    Printf.printf "  registry: %d series (ambient telemetry enabled)\n"
      (List.length snap.Telemetry.Snapshot.rows)

let slow_query_json (q : Serve.slow_query) =
  let open Trace.Json in
  obj
    [
      ("query_id", num (float_of_int q.Serve.sq_query));
      ("session", str q.Serve.sq_session);
      ("key", str q.Serve.sq_key);
      ("plans", arr (List.map str q.Serve.sq_plans));
      ("iterations", num (float_of_int q.Serve.sq_iterations));
      ("stages", num (float_of_int q.Serve.sq_stages));
      ("straggler_mean", num q.Serve.sq_straggler_mean);
      ("wait_ms", num (q.Serve.sq_wait_ns /. 1e6));
      ("total_ms", num (q.Serve.sq_total_ns /. 1e6));
      ("plan_hit", if q.Serve.sq_plan_hit then "true" else "false");
      ("result_hit", if q.Serve.sq_result_hit then "true" else "false");
      ("shared", if q.Serve.sq_shared then "true" else "false");
      ("fix_hits", num (float_of_int q.Serve.sq_fix_hits));
      ("sampled", if q.Serve.sq_sampled then "true" else "false");
    ]

let report_json r =
  let open Trace.Json in
  let s = r.stats in
  let i n = num (float_of_int n) in
  obj
    ([
       ("kind", str "serve_mix");
       ("wall_s", num r.wall_s);
       ("completed", i r.completed);
       ("failed", i r.failed);
       ("throughput_qps", num r.throughput_qps);
       ("hit_rate", num r.hit_rate);
       ("parity_failures", i r.parity_failures);
       ("submitted", i s.Serve.submitted);
       ("result_hits", i s.Serve.result_hits);
       ("shared_joins", i s.Serve.shared_joins);
       ("result_misses", i s.Serve.result_misses);
       ("plan_hits", i s.Serve.plan_hits);
       ("plan_misses", i s.Serve.plan_misses);
       ("fix_evals", i s.Serve.fix_evals);
       ("fix_hits", i s.Serve.fix_hits);
       ("fix_shared", i s.Serve.fix_shared);
       ("invalidated", i s.Serve.invalidated);
       ("evictions", i s.Serve.evictions);
       ("result_cache_entries", i s.Serve.result_entries);
       ("result_cache_bytes", i s.Serve.result_bytes);
       ("graph_version", i s.Serve.graph_version);
       ("slow_queries", i s.Serve.slow_queries);
       ("traces_captured", i r.traces_captured);
       ( "wait_ms",
         obj [ ("p50", num r.wait_p50_ms); ("p95", num r.wait_p95_ms) ] );
       ( "latency_ms",
         obj
           [
             ("p50", num r.lat_p50_ms); ("p95", num r.lat_p95_ms); ("p99", num r.lat_p99_ms);
           ] );
       ("slow_query_log", arr (List.map slow_query_json r.slow_queries));
     ]
    @
    match r.telemetry with
    | None -> []
    | Some snap -> [ ("telemetry", Telemetry.Snapshot.to_json snap) ])

let write_report ~file r =
  let oc = open_out file in
  output_string oc (report_json r);
  output_char oc '\n';
  close_out oc
