(** The [muraserve] scenario: a concurrent query mix against one
    {!Serve} instance over the shared worker pool.

    [sessions] client domains each submit the full query [mix] [repeat]
    times; every query text is re-translated per submission (fresh
    generated names), so the run exercises normalization, the plan and
    result caches, admission fairness and in-flight fixpoint sharing
    exactly as a long-lived service would. Every response is checked
    against the reference in-memory evaluation — parity failures are
    counted, never ignored. *)

type mix = (string * (unit -> Mura.Term.t)) list
(** Labelled query generators; the label keys the parity oracle. *)

val default_mix : unit -> mix
(** Reachability-flavoured mix over an unlabelled edge relation [E]:
    transitive closure, single-source reachability, and a filtered
    closure — distinct queries sharing one fixpoint subterm. *)

type config = {
  workers : int;
  parallel : bool;  (** real domains for the cluster's worker pool *)
  sessions : int;  (** concurrent client domains *)
  repeat : int;  (** full-mix submissions per session *)
  max_inflight : int;  (** admission slots; >= 2 enables fixpoint sharing *)
  force_plan : Physical.Exec.fixpoint_plan option;
  sample_every : int;  (** per-query trace sampling, 1-in-N (0 = off) *)
  slow_threshold_ms : float;  (** slow-query-log threshold ([infinity] = off) *)
}

val default_config : config
(** 4 workers (sequential), 4 sessions, 4 repeats, 2 admission slots,
    sampling and slow log off. *)

type result = {
  wall_s : float;
  completed : int;
  failed : int;
  throughput_qps : float;
  hit_rate : float;
      (** (result hits + in-flight joins) / completed queries *)
  parity_failures : int;  (** responses differing from the oracle *)
  stats : Serve.stats;  (** full server counters at the end of the run *)
  wait_p50_ms : float;
      (** admission-wait percentiles ({!Telemetry.Hist.quantile}, the
          shared interpolated implementation) *)
  wait_p95_ms : float;
  lat_p50_ms : float;  (** end-to-end latency percentiles *)
  lat_p95_ms : float;
  lat_p99_ms : float;
  slow_queries : Serve.slow_query list;  (** the server's slow-query log *)
  traces_captured : int;  (** sampled per-query traces kept *)
  telemetry : Telemetry.Snapshot.t option;
      (** snapshot of the ambient registry at the end of the run, when
          one was installed *)
}

val run : ?mix:mix -> config -> graph:Relation.Rel.t -> result
(** Build a cluster + server, register [graph] as [E], run the mix and
    tear the pool down. Client failures propagate. *)

val print : result -> unit
(** Human-readable summary on stdout. *)

val report_json : result -> string
(** The machine-readable serve report: throughput, cache hit/miss
    counters, admission-wait and latency percentiles, parity. *)

val write_report : file:string -> result -> unit
