module Rel = Relation.Rel
module Schema = Relation.Schema
module Term = Mura.Term
module Exec = Physical.Exec
module Cluster = Distsim.Cluster
module Hist = Distsim.Metrics.Hist

type config = {
  workers : int;
  parallel : bool;
  rounds : int;
  batch : int;
  delete_every : int;
  queries_per_round : int;
  force_plan : Exec.fixpoint_plan option;
  seed : int;
}

let default_config =
  {
    workers = 4;
    parallel = false;
    rounds = 8;
    batch = 4;
    delete_every = 3;
    queries_per_round = 2;
    force_plan = None;
    seed = 7;
  }

type result = {
  rounds : int;
  completed : int;  (* queries answered across both servers *)
  parity_failures : int;
  repaired : int;
  repair_fallbacks : int;
  recomputed : int;  (* fixpoints evaluated from scratch on the repair server *)
  repair_mean_ms : float;
  repair_p50_ms : float;
  repair_p95_ms : float;
  recompute_mean_ms : float;
  recompute_p50_ms : float;
  recompute_p95_ms : float;
  speedup : float;
  repair_stats : Serve.stats;
  baseline_stats : Serve.stats;
  telemetry : Telemetry.Snapshot.t option;
}

(* Pick [k] resident edges to delete (deterministic: set order). *)
let take_edges k rel =
  let out = Rel.create (Rel.schema rel) in
  (try
     Rel.iter
       (fun tu ->
         if Rel.cardinal out >= k then raise Exit;
         ignore (Rel.add out (Array.copy tu)))
       rel
   with Exit -> ());
  out

let run ?(mix = Serve_mix.default_mix ()) config ~graph =
  let schema = Rel.schema graph in
  let col name =
    match
      List.find_index (String.equal name) (Schema.cols schema)
    with
    | Some i -> i
    | None -> failwith "stream mix needs an edge graph with src/trg columns"
  in
  let src_i = col "src" and trg_i = col "trg" in
  let nodes = 1 + Rel.fold (fun tu m -> max m (max tu.(src_i) tu.(trg_i))) graph 0 in
  let rng = Graphgen.Rng.create config.seed in
  let make_server enabled =
    let cluster = Cluster.make ~parallel:config.parallel ~workers:config.workers () in
    let sconfig =
      match config.force_plan with
      | None -> None
      | Some _ -> Some { (Exec.default_config cluster) with Exec.force_plan = config.force_plan }
    in
    let t =
      Serve.create
        ~max_repair_handles:(if enabled then 32 else 0)
        ?config:sconfig ~cluster ()
    in
    Serve.register t "E" graph;
    t
  in
  let srv_repair = make_server true in
  let srv_baseline = make_server false in
  let sn_repair = Serve.open_session ~name:"stream-repair" srv_repair in
  let sn_baseline = Serve.open_session ~name:"stream-baseline" srv_baseline in
  let current = ref graph in
  let completed = ref 0 in
  let parity_failures = ref 0 in
  let repair_h = Hist.create () in
  let recompute_h = Hist.create () in
  (* warm both servers so round 1 starts from a converged, cached state *)
  List.iter (fun (_, mk) -> ignore (Serve.query srv_repair sn_repair (mk ()))) mix;
  List.iter (fun (_, mk) -> ignore (Serve.query srv_baseline sn_baseline (mk ()))) mix;
  for round = 1 to config.rounds do
    (* sustained arrivals: a fresh-edge batch (a resident edge cloned
       with rewired endpoints, so labelled graphs keep their labels),
       plus periodic deletions *)
    let inserts = Rel.create schema in
    let resident = Array.of_list (Rel.to_list !current) in
    let attempts = ref 0 in
    while Rel.cardinal inserts < config.batch && !attempts < config.batch * 20 do
      incr attempts;
      let tu = Array.copy resident.(Graphgen.Rng.int rng (Array.length resident)) in
      let i = Graphgen.Rng.int rng nodes and j = Graphgen.Rng.int rng nodes in
      tu.(src_i) <- i;
      tu.(trg_i) <- j;
      if i <> j && not (Rel.mem !current tu) then ignore (Rel.add inserts tu)
    done;
    let deletes =
      if config.delete_every > 0 && round mod config.delete_every = 0 then
        Some (take_edges (max 1 (config.batch / 2)) !current)
      else None
    in
    Serve.update ~inserts ?deletes srv_repair "E";
    Serve.update ~inserts ?deletes srv_baseline "E";
    current :=
      (match deletes with Some d -> Rel.union (Rel.diff !current d) inserts
      | None -> Rel.union !current inserts);
    let env = Mura.Eval.env [ ("E", !current) ] in
    let expected = List.map (fun (label, mk) -> (label, Mura.Eval.eval env (mk ()))) mix in
    for q = 1 to config.queries_per_round do
      List.iter
        (fun (label, mk) ->
          let want = List.assoc label expected in
          let rr = Serve.query srv_repair sn_repair (mk ()) in
          let rb = Serve.query srv_baseline sn_baseline (mk ()) in
          completed := !completed + 2;
          if not (Rel.equal want rr.Serve.rel) then incr parity_failures;
          if not (Rel.equal want rb.Serve.rel) then incr parity_failures;
          (* the first post-update submission of each query misses the
             result cache: its exec time is the repair latency on one
             server and the recompute latency on the other *)
          if q = 1 then begin
            if not rr.Serve.result_hit then Hist.add repair_h rr.Serve.exec_ns;
            if not rb.Serve.result_hit then Hist.add recompute_h rb.Serve.exec_ns
          end)
        mix
    done
  done;
  let s_r = Serve.stats srv_repair in
  let s_b = Serve.stats srv_baseline in
  let mean h = if Hist.count h = 0 then 0. else Hist.total h /. float_of_int (Hist.count h) in
  let pct h q = Hist.quantile h q /. 1e6 in
  let telemetry =
    let reg = Telemetry.get () in
    if Telemetry.enabled reg then Some (Telemetry.snapshot reg) else None
  in
  let r =
    {
      rounds = config.rounds;
      completed = !completed;
      parity_failures = !parity_failures;
      repaired = s_r.Serve.repaired;
      repair_fallbacks = s_r.Serve.repair_fallbacks;
      recomputed = s_r.Serve.fix_evals;
      repair_mean_ms = mean repair_h /. 1e6;
      repair_p50_ms = pct repair_h 0.50;
      repair_p95_ms = pct repair_h 0.95;
      recompute_mean_ms = mean recompute_h /. 1e6;
      recompute_p50_ms = pct recompute_h 0.50;
      recompute_p95_ms = pct recompute_h 0.95;
      speedup = (if mean repair_h > 0. then mean recompute_h /. mean repair_h else 0.);
      repair_stats = s_r;
      baseline_stats = s_b;
      telemetry;
    }
  in
  Serve.shutdown srv_repair;
  Serve.shutdown srv_baseline;
  r

let print r =
  Printf.printf
    "stream mix: %d rounds, %d queries, %d parity failures\n"
    r.rounds r.completed r.parity_failures;
  Printf.printf "  repair server: %d repaired, %d recomputed, %d fallbacks, %d handles live\n"
    r.repaired r.recomputed r.repair_fallbacks r.repair_stats.Serve.repair_handles;
  Printf.printf "  repair latency mean/p50/p95: %.2f/%.2f/%.2f ms\n" r.repair_mean_ms
    r.repair_p50_ms r.repair_p95_ms;
  Printf.printf "  recompute latency mean/p50/p95: %.2f/%.2f/%.2f ms\n" r.recompute_mean_ms
    r.recompute_p50_ms r.recompute_p95_ms;
  Printf.printf "  repair-vs-recompute speedup: %.1fx\n" r.speedup

let report_json r =
  let open Trace.Json in
  let i n = num (float_of_int n) in
  let server_json (s : Serve.stats) =
    obj
      [
        ("completed", i s.Serve.completed);
        ("result_hits", i s.Serve.result_hits);
        ("result_misses", i s.Serve.result_misses);
        ("fix_evals", i s.Serve.fix_evals);
        ("repaired", i s.Serve.repaired);
        ("repair_fallbacks", i s.Serve.repair_fallbacks);
        ("repair_handles", i s.Serve.repair_handles);
        ("invalidated", i s.Serve.invalidated);
        ("graph_version", i s.Serve.graph_version);
      ]
  in
  obj
    ([
       ("kind", str "stream_mix");
       ("rounds", i r.rounds);
       ("completed", i r.completed);
       ("parity_failures", i r.parity_failures);
       ("repaired", i r.repaired);
       ("repair_fallbacks", i r.repair_fallbacks);
       ("recomputed", i r.recomputed);
       ( "repair_ms",
         obj
           [
             ("mean", num r.repair_mean_ms);
             ("p50", num r.repair_p50_ms);
             ("p95", num r.repair_p95_ms);
           ] );
       ( "recompute_ms",
         obj
           [
             ("mean", num r.recompute_mean_ms);
             ("p50", num r.recompute_p50_ms);
             ("p95", num r.recompute_p95_ms);
           ] );
       ("speedup", num r.speedup);
       ("repair_server", server_json r.repair_stats);
       ("baseline_server", server_json r.baseline_stats);
     ]
    @
    match r.telemetry with
    | None -> []
    | Some snap -> [ ("telemetry", Telemetry.Snapshot.to_json snap) ])

let write_report ~file r =
  let oc = open_out file in
  output_string oc (report_json r);
  output_char oc '\n';
  close_out oc
