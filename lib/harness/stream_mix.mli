(** The streaming scenario: sustained edge arrivals interleaved with
    queries, measuring incremental repair against recomputation.

    Two servers over separate clusters receive the {e same} update and
    query stream: one with incremental repair enabled (the default
    {!Serve} configuration) and one with it disabled
    ([max_repair_handles = 0] — every post-update miss recomputes its
    fixpoints from scratch). Each round applies an edge-insert batch
    (periodically mixed with deletions), then submits the query mix;
    the first post-update submission of every query misses the result
    cache, so its execution time is the repair latency on one server
    and the recompute latency on the other. Every response — from both
    servers — is checked against the centralized reference evaluation
    of the {e updated} graph: parity failures are counted, never
    ignored. *)

type config = {
  workers : int;
  parallel : bool;  (** real domains for the cluster worker pools *)
  rounds : int;  (** update batches applied *)
  batch : int;  (** inserted edges per batch *)
  delete_every : int;
      (** every k-th round also deletes [batch/2] resident edges,
          exercising the DRed path; 0 = insert-only stream *)
  queries_per_round : int;  (** full-mix submissions after each batch *)
  force_plan : Physical.Exec.fixpoint_plan option;
  seed : int;  (** update-stream RNG seed *)
}

val default_config : config
(** 4 workers (sequential), 8 rounds of 4 inserts, deletions every 3rd
    round, 2 query passes per round. *)

type result = {
  rounds : int;
  completed : int;  (** queries answered across both servers *)
  parity_failures : int;
  repaired : int;  (** fixpoints incrementally repaired (repair server) *)
  repair_fallbacks : int;
  recomputed : int;
      (** fixpoints evaluated from scratch on the repair server (its
          establishment evaluations and any fallbacks) *)
  repair_mean_ms : float;  (** post-update miss latency, repair server *)
  repair_p50_ms : float;
  repair_p95_ms : float;
  recompute_mean_ms : float;  (** same misses on the baseline server *)
  recompute_p50_ms : float;
  recompute_p95_ms : float;
  speedup : float;  (** recompute mean / repair mean *)
  repair_stats : Serve.stats;
  baseline_stats : Serve.stats;
  telemetry : Telemetry.Snapshot.t option;
}

val run : ?mix:Serve_mix.mix -> config -> graph:Relation.Rel.t -> result
(** Run the stream against both servers and tear the pools down.
    Inserted edges clone a resident edge with rewired endpoints, so
    labelled graphs keep a realistic label distribution.
    @raise Failure when [graph] has no [src]/[trg] columns. *)

val print : result -> unit

val report_json : result -> string
(** Machine-readable stream report: per-outcome counts, repair and
    recompute latency percentiles, the repair-vs-recompute speedup, and
    both servers' counters. *)

val write_report : file:string -> result -> unit
