module Rel = Relation.Rel
module Schema = Relation.Schema
module Term = Mura.Term
module Exec = Physical.Exec
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics

type workload = {
  graph : Rel.t;
  ucrpq : string option;
  mu_term : Term.t option;
  datalog : Datalog.Ast.program option;
}

let of_ucrpq graph text =
  let qs = Rpq.Query.parse_union text in
  {
    graph;
    ucrpq = Some text;
    mu_term = Some (Rpq.Query.union_to_term qs);
    datalog = Some (Datalog.Of_rpq.program_union qs);
  }

let of_mu ?datalog graph term = { graph; ucrpq = None; mu_term = Some term; datalog }

type success = {
  wall_s : float;
  sim_s : float;
  result_size : int;
  shuffles : int;
  shuffled_records : int;
  broadcast_records : int;
  supersteps : int;
}

type outcome = Success of success | Failed of string | Timeout of float

let pp_outcome ppf = function
  | Success s ->
    Format.fprintf ppf "%.3fs (%d tuples, %d shuffles, %d rec moved)" s.wall_s s.result_size
      s.shuffles s.shuffled_records
  | Failed msg -> Format.fprintf ppf "FAILED: %s" msg
  | Timeout t -> Format.fprintf ppf "TIMEOUT after %.1fs" t

type system = { name : string; short : string; run : timeout_s:float -> workload -> outcome }

let now () = Unix.gettimeofday ()

(* Wrap a runner body with failure capture and timeout accounting. [m] is
   the metric accumulator consulted for the communication columns. *)
let guarded ~timeout_s (m : Metrics.t option) body =
  let t0 = now () in
  Relation.Deadline.set ~seconds_from_now:timeout_s;
  let body () = Fun.protect ~finally:Relation.Deadline.clear body in
  match body () with
  | result_size ->
    let wall_s = now () -. t0 in
    if wall_s > timeout_s then Timeout wall_s
    else
      let zero = Metrics.create () in
      let m = Option.value ~default:zero m in
      Success
        {
          wall_s;
          sim_s = m.Metrics.sim_time_ns /. 1e9;
          result_size;
          shuffles = m.Metrics.shuffles;
          shuffled_records = m.Metrics.shuffled_records;
          broadcast_records = m.Metrics.broadcast_records;
          supersteps = m.Metrics.supersteps;
        }
  | exception Exec.Resource_limit msg -> Failed msg
  | exception Datalog.Dist.Engine_failure msg -> Failed msg
  | exception Pregel.Engine.Engine_failure msg -> Failed msg
  | exception Mura.Fcond.Not_fcond msg -> Failed ("not F_cond: " ^ msg)
  | exception Mura.Eval.Eval_error msg -> Failed ("eval: " ^ msg)
  | exception Mura.Typing.Type_error msg -> Failed ("typing: " ^ msg)
  | exception Rpq.Query.Translation_error msg -> Failed ("translation: " ^ msg)
  | exception Datalog.Eval.Eval_error msg -> Failed ("datalog: " ^ msg)
  | exception Relation.Deadline.Expired -> Timeout (now () -. t0)
  | exception Out_of_memory -> Failed "out of memory"

let require what = function
  | Some v -> v
  | None -> raise (Rpq.Query.Translation_error (Printf.sprintf "workload has no %s form" what))

(* logical optimization shared by all mu-RA systems *)
let optimize tables term =
  let tenv = Mura.Typing.env (List.map (fun (n, r) -> (n, Rel.schema r)) tables) in
  let stats = Cost.Stats.of_tables tables in
  Rewrite.Engine.optimize ~max_plans:120 ~cost:(Cost.Estimate.cost stats) tenv term

let run_physical ?(logical_opt = true) ?(stable_partitioning = true) ?(compiled_exec = true)
    ?max_tuples ~force_plan ~workers ~timeout_s w =
  let cluster = Cluster.make ~workers () in
  let default = Exec.default_config cluster in
  let config =
    {
      default with
      force_plan;
      use_stable_partitioning = stable_partitioning;
      use_compiled_exec = compiled_exec;
      max_tuples = Option.value ~default:default.Exec.max_tuples max_tuples;
    }
  in
  guarded ~timeout_s
    (Some (Cluster.metrics cluster))
    (fun () ->
      let term = require "mu-RA" w.mu_term in
      let tables = [ ("E", w.graph) ] in
      let best = if logical_opt then optimize tables term else term in
      let ctx = Exec.session config tables in
      Rel.cardinal (Exec.run ctx best))

let dist_mu_ra ?(workers = 4) ?max_tuples () =
  {
    name = "Dist-mu-RA";
    short = "dist";
    run = (fun ~timeout_s w -> run_physical ?max_tuples ~force_plan:None ~workers ~timeout_s w);
  }

let dist_mu_ra_gld ?(workers = 4) ?max_tuples () =
  {
    name = "Dist-mu-RA (P_gld)";
    short = "gld";
    run =
      (fun ~timeout_s w ->
        run_physical ?max_tuples ~force_plan:(Some Exec.P_gld) ~workers ~timeout_s w);
  }

let dist_mu_ra_plw ?(workers = 4) which =
  let plan, name, short =
    match which with
    | `Setrdd -> (Exec.P_plw_s, "Dist-mu-RA (P_plw^s)", "plw-s")
    | `Postgres -> (Exec.P_plw_pg, "Dist-mu-RA (P_plw^pg)", "plw-pg")
  in
  {
    name;
    short;
    run = (fun ~timeout_s w -> run_physical ~force_plan:(Some plan) ~workers ~timeout_s w);
  }

let dist_mu_ra_interpreted ?(workers = 4) () =
  {
    name = "Dist-mu-RA (interpreted)";
    short = "interp";
    run =
      (fun ~timeout_s w ->
        run_physical ~compiled_exec:false ~force_plan:None ~workers ~timeout_s w);
  }

let dist_mu_ra_unopt ?(workers = 4) () =
  {
    name = "Dist-mu-RA (no rewriting)";
    short = "unopt";
    run =
      (fun ~timeout_s w ->
        run_physical ~logical_opt:false ~force_plan:None ~workers ~timeout_s w);
  }

let dist_mu_ra_unpartitioned ?(workers = 4) () =
  {
    name = "Dist-mu-RA (no repartitioning)";
    short = "unpart";
    run =
      (fun ~timeout_s w ->
        run_physical ~stable_partitioning:false ~force_plan:(Some Exec.P_plw_s) ~workers
          ~timeout_s w);
  }

let centralized_mu_ra () =
  {
    name = "Centralized mu-RA";
    short = "centr";
    run =
      (fun ~timeout_s w ->
        guarded ~timeout_s None (fun () ->
            let term = require "mu-RA" w.mu_term in
            let tables = [ ("E", w.graph) ] in
            let best = optimize tables term in
            let db = Localdb.Instance.create () in
            Localdb.Instance.register db "E" w.graph;
            Rel.cardinal (Localdb.Instance.query db best)));
  }

let datalog_db w = [ (Datalog.Of_rpq.edge_pred, w.graph) ]

let run_datalog ~mode ~magic ~workers ~max_facts ~timeout_s w =
  let cluster = Cluster.make ~workers () in
  guarded ~timeout_s
    (Some (Cluster.metrics cluster))
    (fun () ->
      let program = require "Datalog" w.datalog in
      let program = if magic then Datalog.Magic.specialize program else program in
      let config = { (Datalog.Dist.default_config ~mode cluster) with max_facts } in
      let result, _report = Datalog.Dist.run config (datalog_db w) program in
      Rel.cardinal result)

let bigdatalog ?(workers = 4) ?(max_facts = 20_000_000) () =
  {
    name = "BigDatalog";
    short = "bigdl";
    run =
      (fun ~timeout_s w ->
        run_datalog ~mode:Datalog.Dist.Bigdatalog ~magic:true ~workers ~max_facts ~timeout_s w);
  }

let myria ?(workers = 4) ?(max_facts = 500_000) () =
  {
    name = "Myria";
    short = "myria";
    run =
      (fun ~timeout_s w ->
        run_datalog ~mode:Datalog.Dist.Myria ~magic:false ~workers ~max_facts ~timeout_s w);
  }

(* GraphX: evaluate each atom with the Pregel NFA traversal, then join
   the atom results on the driver. *)
let run_graphx ~workers ~max_state ~timeout_s w =
  let cluster = Cluster.make ~workers () in
  guarded ~timeout_s
    (Some (Cluster.metrics cluster))
    (fun () ->
      let text = require "UCRPQ" (w.ucrpq) in
      let branches = Rpq.Query.parse_union text in
      let config = { (Pregel.Engine.default_config cluster) with max_state } in
      let g = Pregel.Engine.load config w.graph in
      let const_value c =
        match int_of_string_opt c with
        | Some n when n >= 0 -> n
        | Some _ | None -> Relation.Value.of_string c
      in
      let atom_rel (a : Rpq.Query.atom) =
        let source =
          match a.sub with Rpq.Query.Const c -> Some (const_value c) | Rpq.Query.Var _ -> None
        in
        let target =
          match a.obj with Rpq.Query.Const c -> Some (const_value c) | Rpq.Query.Var _ -> None
        in
        let rel, _stats = Pregel.Engine.eval_rpq ?source ?target g a.path in
        (* bind endpoints to variable columns, as Query2Mu does *)
        let rel, src_col =
          match a.sub with
          | Rpq.Query.Var x -> (Rel.rename [ ("src", x) ] rel, x)
          | Rpq.Query.Const _ -> (Rel.antiproject [ "src" ] rel, "")
        in
        match a.obj with
        | Rpq.Query.Var y when y = src_col ->
          Rel.antiproject [ "trg" ]
            (Rel.select (Relation.Pred.Eq_col (src_col, "trg")) rel)
        | Rpq.Query.Var y -> Rel.rename [ ("trg", y) ] rel
        | Rpq.Query.Const _ -> Rel.antiproject [ "trg" ] rel
      in
      let branch_result (q : Rpq.Query.t) =
        let joined =
          match List.map atom_rel q.atoms with
          | [] -> raise (Rpq.Query.Translation_error "no atoms")
          | first :: rest -> List.fold_left Rel.natural_join first rest
        in
        let bound = Rpq.Query.vars q in
        if List.length q.heads = List.length bound then joined else Rel.project q.heads joined
      in
      let result =
        match List.map branch_result branches with
        | [] -> raise (Rpq.Query.Translation_error "empty union")
        | first :: rest -> List.fold_left Rel.union first rest
      in
      Rel.cardinal result)

let graphx ?(workers = 4) ?(max_state = 2_000_000) () =
  {
    name = "GraphX";
    short = "graphx";
    run = (fun ~timeout_s w -> run_graphx ~workers ~max_state ~timeout_s w);
  }

let all () =
  [
    dist_mu_ra ();
    dist_mu_ra_gld ();
    centralized_mu_ra ();
    bigdatalog ();
    graphx ();
    myria ();
  ]
