(** The systems compared in the paper's experiments, as uniform drivers.

    Each driver takes a workload (a labelled graph plus a query) and
    produces an outcome: result size, wall-clock time, simulated parallel
    time and communication metrics — or a failure (resource budget
    exceeded, mirroring the crashes the paper reports) or a timeout. *)

type workload = {
  graph : Relation.Rel.t;  (** (src, pred, trg) or (src, trg), per query *)
  ucrpq : string option;  (** UCRPQ text, when the query is regular *)
  mu_term : Mura.Term.t option;  (** mu-RA form (table name ["E"]) *)
  datalog : Datalog.Ast.program option;  (** Datalog form (edb ["edge"]) *)
}

val of_ucrpq : Relation.Rel.t -> string -> workload
(** Workload with all three query forms derived from the UCRPQ text. *)

val of_mu : ?datalog:Datalog.Ast.program -> Relation.Rel.t -> Mura.Term.t -> workload

type success = {
  wall_s : float;  (** measured wall-clock seconds *)
  sim_s : float;  (** simulated parallel time (max-per-worker + network) *)
  result_size : int;
  shuffles : int;
  shuffled_records : int;
  broadcast_records : int;
  supersteps : int;
}

type outcome =
  | Success of success
  | Failed of string  (** engine crash: budget exceeded, unsupported... *)
  | Timeout of float

val pp_outcome : Format.formatter -> outcome -> unit

type system = { name : string; short : string; run : timeout_s:float -> workload -> outcome }

val guarded : timeout_s:float -> Distsim.Metrics.t option -> (unit -> int) -> outcome
(** Wrap a runner body (returning the result size) with deadline
    installation, failure capture and metric harvesting — the shared
    execution envelope of every system driver, also used by
    [Runner.analyze]. *)

val optimize : (string * Relation.Rel.t) list -> Mura.Term.t -> Mura.Term.t
(** The logical optimization shared by all mu-RA systems: MuRewriter
    exploration ranked by the cost estimator over the actual table
    statistics. *)

(** {1 The systems} *)

val dist_mu_ra : ?workers:int -> ?max_tuples:int -> unit -> system
(** The full pipeline: Query2Mu / mu-RA term -> MuRewriter + CostEstimator
    -> PhysicalPlanGenerator with automatic plan selection. [max_tuples]
    bounds any materialised dataset (for same-budget comparisons). *)

val dist_mu_ra_gld : ?workers:int -> ?max_tuples:int -> unit -> system
(** Same logical optimization, but every fixpoint forced to P_gld. *)

val dist_mu_ra_plw : ?workers:int -> [ `Setrdd | `Postgres ] -> system
(** Fixpoints forced to one P_plw implementation (Fig. 7). *)

val dist_mu_ra_interpreted : ?workers:int -> unit -> system
(** Automatic plan selection with the compiled columnar core disabled
    ([use_compiled_exec = false]): the operator-at-a-time parity oracle,
    exposed as its own engine ([--system interp] in murarun) for A/B
    timing against {!dist_mu_ra} — results and communication counters
    are bit-identical by contract, only wall-clock differs. *)

val dist_mu_ra_unopt : ?workers:int -> unit -> system
(** Ablation: physical plans as usual, but no logical rewriting (the
    query is executed as translated). *)

val dist_mu_ra_unpartitioned : ?workers:int -> unit -> system
(** Ablation: stable-column repartitioning disabled — P_plw must pay a
    final distinct and its local fixpoints may duplicate work. *)

val centralized_mu_ra : unit -> system
(** mu-RA on the single-node interpreted engine (the paper's
    PostgreSQL-based centralized mu-RA). Logical optimization included. *)

val bigdatalog : ?workers:int -> ?max_facts:int -> unit -> system
(** Datalog with magic-set binding propagation and GPS decomposition. *)

val myria : ?workers:int -> ?max_facts:int -> unit -> system
(** Global incremental Datalog with a memory budget (fails on large
    transitive closures, as in the paper). *)

val graphx : ?workers:int -> ?max_state:int -> unit -> system
(** Pregel NFA-product traversal. Only supports single-atom UCRPQ
    workloads; others are reported as [Failed "unsupported"]. *)

val all : unit -> system list
