(* Compiled per-worker local fixpoints for P_plw^pg.

   [plan] is a driver-side, typing-only lowering of the local fixpoint
   term (the [Fix (var, __seed ∪ branches)] that [Exec.run_plw_pg] ships
   to every worker): each recursive branch becomes a static operator
   list with all positions resolved against schemas, constant join
   sides kept as terms. Because the decision is static and taken once
   on the driver, every worker runs the same path (no per-worker
   plan divergence) and a rejection costs nothing — the SQL / volcano
   fallbacks in [Exec.run_plw_pg] are the oracle.

   [run] instantiates the plan against one worker's local database:
   constant sides are evaluated through [Instance.query] and indexed
   once, branches compile to {!Relation.Rowchain} closure chains over
   {!Relation.Batch} deltas, and a single-threaded semi-naive loop
   absorbs produced rows into a presized accumulator reusing the batch
   hash column ([Tset.add_cols] — no per-insert rehash, no tuple
   allocation in project/probe). The result set is identical to the
   interpreter's: same seed, same branches, same fixpoint. *)

module Schema = Relation.Schema
module Rel = Relation.Rel
module Tset = Relation.Tset
module Tuple = Relation.Tuple
module Batch = Relation.Batch
module Pred = Relation.Pred
module Index = Relation.Index
module Rowchain = Relation.Rowchain
module Term = Mura.Term
module Fcond = Mura.Fcond

(* Static branch operators: positions are resolved at plan time, the
   constant side of joins stays a term evaluated per worker at run
   time. *)
type bop =
  | B_filter of (Tuple.t -> bool)
  | B_project of int array
  | B_join of {
      const : Term.t;
      const_schema : Schema.t;
      shared : string list;
      key_pos : int array;
      extra_pos : int array;
    }
  | B_anti of { const : Term.t; const_schema : Schema.t; shared : string list; key_pos : int array }

type branch = { ops : bop list; out_schema : Schema.t }

type plan = {
  p_var : string;
  p_x_schema : Schema.t;
  p_consts : Term.t list;
  p_branches : branch list;
}

exception Reject of string

let reject r = raise (Reject r)

let plan ~env (term : Term.t) : (plan, string) result =
  let tenv = Mura.Typing.env env in
  let typing t = Mura.Typing.infer tenv t in
  match term with
  | Term.Fix (var, body) -> (
    match
      let consts, recs = Fcond.split ~var body in
      if consts = [] then reject "no_constant_part";
      let x_schema = typing (Term.union_all consts) in
      if Schema.arity x_schema = 0 then reject "zero_arity";
      let lower_branch b =
        let rec go (t : Term.t) : bop list * Schema.t =
          match t with
          | Term.Var x when String.equal x var -> ([], x_schema)
          | Term.Var _ -> reject "foreign_var"
          | Term.Select (p, u) ->
            let ops, s = go u in
            (ops @ [ B_filter (Pred.compile s p) ], s)
          | Term.Project (keep, u) ->
            let ops, s = go u in
            let out = Schema.restrict s keep in
            if Schema.arity out = 0 then reject "zero_arity_project";
            (ops @ [ B_project (Schema.positions s keep) ], out)
          | Term.Antiproject (drop, u) ->
            let ops, s = go u in
            let keep = List.filter (fun c -> not (List.mem c drop)) (Schema.cols s) in
            let out = Schema.restrict s keep in
            if Schema.arity out = 0 then reject "zero_arity_project";
            (ops @ [ B_project (Schema.positions s keep) ], out)
          | Term.Rename (m, u) ->
            let ops, s = go u in
            (ops, Schema.rename m s)
          | Term.Join (a, b) ->
            let recursive, const = if Term.has_free_var var a then (a, b) else (b, a) in
            if Term.has_free_var var const then reject "nonlinear_join";
            let ops, sr = go recursive in
            let sc = typing const in
            if Schema.arity sc = 0 then reject "zero_arity";
            let shared = Schema.common sr sc in
            let extra = List.filter (fun c -> not (Schema.mem sr c)) (Schema.cols sc) in
            ( ops
              @ [
                  B_join
                    {
                      const;
                      const_schema = sc;
                      shared;
                      key_pos = Schema.positions sr shared;
                      extra_pos = Schema.positions sc extra;
                    };
                ],
              Schema.append_distinct sr sc )
          | Term.Antijoin (a, b) ->
            if Term.has_free_var var b then reject "nonpositive_antijoin";
            let ops, sr = go a in
            let sc = typing b in
            let shared = Schema.common sr sc in
            ( ops
              @ [
                  B_anti
                    { const = b; const_schema = sc; shared; key_pos = Schema.positions sr shared };
                ],
              sr )
          | Term.Fix _ -> reject "nested_fix"
          | Term.Rel _ | Term.Cst _ | Term.Union _ -> reject "unsupported_shape"
        in
        let ops, out_schema = go b in
        if not (Schema.equal_names out_schema x_schema) then reject "branch_schema_mismatch";
        { ops; out_schema }
      in
      { p_var = var; p_x_schema = x_schema; p_consts = consts; p_branches = List.map lower_branch recs }
    with
    | p -> Ok p
    | exception Reject r -> Error r
    | exception (Schema.Schema_error _ | Mura.Typing.Type_error _) -> Error "typing"
    | exception Fcond.Not_fcond _ -> Error "not_fcond")
  | _ -> Error "not_a_fixpoint"

(* Evaluate a constant side. Bare relation names short-circuit to the
   catalog (the seed and broadcast tables always take this path) instead
   of a volcano [Instance.query] whose result set grows from default
   capacity — the loop below is gated on zero insert-triggered
   rehashes. *)
let rec fetch (db : Instance.t) (c : Term.t) : Rel.t =
  match c with
  | Term.Rel name -> (
    match Instance.lookup db name with Some r -> r | None -> Instance.query db c)
  | Term.Rename (m, u) -> Rel.rename m (fetch db u)
  | _ -> Instance.query db c

let run (p : plan) (db : Instance.t) : Rel.t =
  let arity = Schema.arity p.p_x_schema in
  (* seed: the constant branches, relaid into accumulator order *)
  let consts = List.map (fun c -> Rel.relayout p.p_x_schema (fetch db c)) p.p_consts in
  let acc =
    Tset.create ~capacity:(List.fold_left (fun n r -> n + Rel.cardinal r) 0 consts) ()
  in
  List.iter (fun r -> Tset.iter (fun tu -> ignore (Tset.add acc tu)) (Rel.tuples r)) consts;
  (* instantiate branches: constant sides queried and indexed once *)
  let builder = ref (Batch.Builder.create ~capacity:0 ~arity ()) in
  let runners =
    List.map
      (fun br ->
        let ops =
          List.map
            (function
              | B_filter f -> Rowchain.Filter f
              | B_project pos -> Rowchain.Project pos
              | B_join { const; const_schema; shared; key_pos; extra_pos } ->
                let rel = Rel.relayout const_schema (fetch db const) in
                let idx = Index.build const_schema shared (Tset.to_seq (Rel.tuples rel)) in
                Rowchain.Probe { key_pos; extra_pos; probe = Index.probe idx }
              | B_anti { const; const_schema; shared; key_pos } ->
                let rel = Rel.relayout const_schema (fetch db const) in
                let idx = Index.build const_schema shared (Tset.to_seq (Rel.tuples rel)) in
                Rowchain.Antiprobe { key_pos; mem = Index.mem idx })
            br.ops
        in
        let perm = Schema.reorder_positions ~from:br.out_schema ~into:p.p_x_schema in
        let identity = ref true in
        Array.iteri (fun i q -> if q <> i then identity := false) perm;
        let identity = !identity in
        let emit final =
          let bld = !builder in
          let s = Batch.Builder.scratch bld in
          if identity then Array.blit final 0 s 0 arity
          else
            for c = 0 to arity - 1 do
              s.(c) <- final.(perm.(c))
            done;
          ignore (Batch.Builder.add_scratch bld (Batch.hash_row s))
        in
        let entry = Array.make arity 0 in
        (Rowchain.compile ~entry ops ~emit, entry))
      p.p_branches
  in
  (* single-threaded semi-naive loop over batches *)
  let delta = ref (Batch.of_tset ~arity acc) in
  while Batch.length !delta > 0 && runners <> [] do
    let b = !delta in
    let n = Batch.length b in
    builder := Batch.Builder.create ~capacity:n ~arity ();
    let cols = Batch.cols b in
    List.iter
      (fun (chain, entry) ->
        for row = 0 to n - 1 do
          for c = 0 to arity - 1 do
            entry.(c) <- cols.(c).(row)
          done;
          chain ()
        done)
      runners;
    let produced = Batch.Builder.batch !builder in
    let pn = Batch.length produced in
    Tset.reserve acc (Tset.cardinal acc + pn);
    let fresh = Batch.create ~capacity:(max 1 pn) ~arity () in
    let pcols = Batch.cols produced and phashes = Batch.hashes produced in
    for row = 0 to pn - 1 do
      if Tset.add_cols acc pcols ~row ~hash:phashes.(row) then Batch.push_row fresh produced row
    done;
    delta := fresh
  done;
  Rel.of_tset p.p_x_schema acc
