(** Compiled per-worker local fixpoints for the P_plw^pg plan.

    [plan] lowers the local fixpoint term ([Fix (var, __seed ∪
    branches)]) into static operator lists — a driver-side, typing-only
    decision, so every worker runs the same path and a rejection
    evaluates nothing. [run] executes the plan against one worker's
    local database: constant sides through {!Instance.query}, branches
    as {!Relation.Rowchain} closure chains over {!Relation.Batch}
    deltas, and a semi-naive loop absorbing into a presized accumulator
    with stored-hash reuse. Results are identical to
    [Instance.query db term]; the SQL and volcano paths stay as the
    oracle fallbacks. *)

type plan

val plan : env:(string * Relation.Schema.t) list -> Mura.Term.t -> (plan, string) result
(** [plan ~env term] statically lowers [term] against the schema
    environment (the seed and every broadcast table). [Error reason]
    carries the fallback-telemetry slug; nothing is evaluated either
    way. *)

val run : plan -> Instance.t -> Relation.Rel.t
(** Execute the plan against a local database holding the seed and
    broadcast tables the plan's terms mention. *)
