module Schema = Relation.Schema
module Tset = Relation.Tset
module Tuple = Relation.Tuple
module Rel = Relation.Rel
module Pred = Relation.Pred
module Term = Mura.Term
module Fcond = Mura.Fcond

type t = {
  catalog : (string, Rel.t) Hashtbl.t;
  mutable analyze : (string, Plan.counter) Hashtbl.t option;
      (* per-node-path EXPLAIN ANALYZE counters, None outside analyze *)
  mutable fix_rounds : (string * int) list;
      (* per-Fix-node-path semi-naive round counts of the last analyze *)
}

let create () = { catalog = Hashtbl.create 16; analyze = None; fix_rounds = [] }
let register db name rel = Hashtbl.replace db.catalog name rel
let unregister db name = Hashtbl.remove db.catalog name
let lookup db name = Hashtbl.find_opt db.catalog name
let table_names db = Hashtbl.fold (fun n _ acc -> n :: acc) db.catalog []

let err fmt = Format.kasprintf (fun s -> raise (Mura.Eval.Eval_error s)) fmt

let counter_of tbl path =
  match Hashtbl.find_opt tbl path with
  | Some c -> c
  | None ->
    let c = { Plan.c_rows = 0; c_ns = 0. } in
    Hashtbl.replace tbl path c;
    c

(* Node paths follow the plan-tree addressing shared with
   [Physical.Exec] and [Cost.Feedback]: the root is "0" and child [i] of
   a node at path [p] is [p ^ "." ^ i]; the children of a [Fix] are the
   constant branches followed by the recursive ones, in [Fcond.split]
   order. *)
let child path i = path ^ "." ^ string_of_int i

(* Compilation produces a plan and its output schema. Fixpoints are
   materialised during compilation with a work-table loop (as a
   PostgreSQL recursive CTE would be), so the enclosing plan sees them as
   plain scans. When analyzing, every node is wrapped in a [Counted]
   pass-through and charged its compile time (which, for fixpoints, is
   the materialisation time). *)
let rec compile db vars ~path (term : Term.t) : Plan.t * Schema.t =
  match db.analyze with
  | None -> compile_node db vars ~path term
  | Some tbl ->
    let c = counter_of tbl path in
    let t0 = Unix.gettimeofday () in
    let plan, schema = compile_node db vars ~path term in
    c.Plan.c_ns <- c.Plan.c_ns +. ((Unix.gettimeofday () -. t0) *. 1e9);
    (Plan.Counted (c, plan), schema)

and compile_node db vars ~path (term : Term.t) : Plan.t * Schema.t =
  match term with
  | Rel n -> (
    match lookup db n with
    | Some rel -> (Plan.Scan rel, Rel.schema rel)
    | None -> err "localdb: unknown table %S" n)
  | Cst rel -> (Plan.Scan rel, Rel.schema rel)
  | Var x -> (
    match List.assoc_opt x vars with
    | Some (cell, schema) -> (Plan.Work_table cell, schema)
    | None -> err "localdb: unbound recursive variable %S" x)
  | Select (p, u) ->
    let child, schema = compile db vars ~path:(child path 0) u in
    (Plan.Filter (Pred.compile schema p, child), schema)
  | Project (keep, u) ->
    let child, schema = compile db vars ~path:(child path 0) u in
    let out = Schema.restrict schema keep in
    let pos = Schema.positions schema keep in
    (Plan.Distinct (Plan.Map (Tuple.project pos, child)), out)
  | Antiproject (drop, u) ->
    let child, schema = compile db vars ~path:(child path 0) u in
    let out = Schema.minus schema drop in
    let pos = Schema.positions schema (Schema.cols out) in
    (Plan.Distinct (Plan.Map (Tuple.project pos, child)), out)
  | Rename (m, u) ->
    let child, schema = compile db vars ~path:(child path 0) u in
    (child, Schema.rename m schema)
  | Join (a, b) ->
    let left, ls = compile db vars ~path:(child path 0) a in
    let right, rs = compile db vars ~path:(child path 1) b in
    let shared = Schema.common ls rs in
    let out = Schema.append_distinct ls rs in
    let extra = List.filter (fun c -> not (Schema.mem ls c)) (Schema.cols rs) in
    let extra_pos = Schema.positions rs extra in
    let merge lt rt = Tuple.concat lt (Tuple.project extra_pos rt) in
    let join =
      {
        Plan.left;
        left_key = Schema.positions ls shared;
        right;
        right_key = Schema.positions rs shared;
        merge;
      }
    in
    (Plan.Hash_join join, out)
  | Antijoin (a, b) ->
    let left, ls = compile db vars ~path:(child path 0) a in
    let right, rs = compile db vars ~path:(child path 1) b in
    let shared = Schema.common ls rs in
    let join =
      {
        Plan.left;
        left_key = Schema.positions ls shared;
        right;
        right_key = Schema.positions rs shared;
        merge = (fun lt _ -> lt);
      }
    in
    (Plan.Hash_anti join, ls)
  | Union (a, b) ->
    let pa, sa = compile db vars ~path:(child path 0) a in
    let pb, sb = compile db vars ~path:(child path 1) b in
    if not (Schema.equal_names sa sb) then
      err "localdb: union of incompatible schemas %s vs %s" (Schema.to_string sa)
        (Schema.to_string sb);
    let pb' =
      if Schema.equal_ordered sa sb then pb
      else Plan.Map (Tuple.project (Schema.reorder_positions ~from:sb ~into:sa), pb)
    in
    (Plan.Distinct (Plan.Append [ pa; pb' ]), sa)
  | Fix (x, body) ->
    let rel = run_fix db vars ~path x body in
    (Plan.Scan rel, Rel.schema rel)

and run_fix db vars ~path x body =
  let consts, recs = Fcond.split ~var:x body in
  let n_consts = List.length consts in
  match consts with
  | [] -> raise (Fcond.Not_fcond (Printf.sprintf "fixpoint on %s has no constant part" x))
  | _ ->
    let init_sets, schemas =
      List.split
        (List.mapi
           (fun i c ->
             let p, s = compile db vars ~path:(child path i) c in
             (Plan.run p, s))
           consts)
    in
    let schema = List.hd schemas in
    let all = Tset.create () in
    List.iter2
      (fun set s ->
        if Schema.equal_ordered s schema then ignore (Tset.add_all all set)
        else
          let perm = Schema.reorder_positions ~from:s ~into:schema in
          Tset.iter (fun tu -> ignore (Tset.add all (Tuple.project perm tu))) set)
      init_sets schemas;
    (match recs with
    | [] -> ()
    | _ ->
      let work = ref (Tset.copy all) in
      let vars' = (x, (work, schema)) :: vars in
      (* compile the recursive branches once; cursors re-open per round *)
      let rec_plans =
        List.mapi
          (fun i branch ->
            let p, s = compile db vars' ~path:(child path (n_consts + i)) branch in
            if Schema.equal_ordered s schema then p
            else Plan.Map (Tuple.project (Schema.reorder_positions ~from:s ~into:schema), p))
          recs
      in
      let tr = Trace.get () in
      Trace.span tr ~cat:"localdb" ~attrs:[ ("var", Trace.Str x) ] "localdb.fix" @@ fun () ->
      let rounds = ref 0 in
      let rec loop () =
        incr rounds;
        let fresh = Tset.create () in
        List.iter
          (fun p ->
            let produced = Plan.run p in
            Tset.iter (fun tu -> if not (Tset.mem all tu) then ignore (Tset.add fresh tu)) produced)
          rec_plans;
        Trace.instant tr ~cat:"localdb"
          ~attrs:[ ("round", Trace.Int !rounds); ("fresh", Trace.Int (Tset.cardinal fresh)) ]
          "localdb.round";
        if not (Tset.is_empty fresh) then begin
          ignore (Tset.add_all all fresh);
          work := fresh;
          loop ()
        end
      in
      loop ();
      if db.analyze <> None then db.fix_rounds <- (path, !rounds) :: db.fix_rounds;
      Trace.set_attr tr "rounds" (Trace.Int !rounds));
    Rel.of_tset schema all

let query db term =
  Trace.span (Trace.get ()) ~cat:"localdb" "localdb.query" @@ fun () ->
  let plan, schema = compile db [] ~path:"0" term in
  Rel.of_tset schema (Plan.run plan)

let explain db term =
  let plan, _schema = compile db [] ~path:"0" term in
  Format.asprintf "%a" Plan.pp plan

type actual = { path : string; rows : int; ns : float; rounds : int }

let query_analyzed db term =
  let counters = Hashtbl.create 32 in
  db.analyze <- Some counters;
  db.fix_rounds <- [];
  let finish () =
    db.analyze <- None;
    let rounds_of p = match List.assoc_opt p db.fix_rounds with Some r -> r | None -> 0 in
    let actuals =
      Hashtbl.fold
        (fun path (c : Plan.counter) acc ->
          { path; rows = c.Plan.c_rows; ns = c.Plan.c_ns; rounds = rounds_of path } :: acc)
        counters []
    in
    db.fix_rounds <- [];
    List.sort (fun a b -> compare a.path b.path) actuals
  in
  match query db term with
  | rel -> (rel, finish ())
  | exception e ->
    db.analyze <- None;
    db.fix_rounds <- [];
    raise e
