(** A local database instance: a catalog of named tables plus a mu-RA
    query processor running on the volcano executor.

    Stands in for the per-worker PostgreSQL of the paper's P_plw^pg plan:
    the worker registers its partition of the fixpoint's constant part as
    a view, registers the broadcast relations as tables, and runs the
    fixpoint query locally. Recursive terms are executed with a
    work-table loop equivalent to PostgreSQL's [WITH RECURSIVE]
    (semi-naive union). *)

type t

val create : unit -> t

val register : t -> string -> Relation.Rel.t -> unit
(** Create or replace a table/view. *)

val unregister : t -> string -> unit
val lookup : t -> string -> Relation.Rel.t option
val table_names : t -> string list

val query : t -> Mura.Term.t -> Relation.Rel.t
(** Evaluate a mu-RA term against the catalog.
    @raise Mura.Eval.Eval_error on unknown table names
    @raise Mura.Fcond.Not_fcond on invalid fixpoints *)

val explain : t -> Mura.Term.t -> string
(** Compiled operator tree (note: fixpoints are materialised during
    compilation, so they appear as scans of their results). *)

type actual = { path : string; rows : int; ns : float; rounds : int }
(** Per-operator EXPLAIN ANALYZE sample. [path] addresses the term-tree
    node (root "0", child [i] of [p] is [p ^ "." ^ i], Fix children =
    constant branches then recursive ones, in [Mura.Fcond.split] order —
    the same convention as [Physical.Exec] and [Cost.Feedback]). [rows]
    is the node's output cardinality, [ns] its cumulative time inclusive
    of children (for fixpoints: the materialisation time), [rounds] the
    semi-naive round count (0 for non-Fix nodes). *)

val query_analyzed : t -> Mura.Term.t -> Relation.Rel.t * actual list
(** Like {!query} but with per-operator instrumentation enabled; returns
    the result together with actuals sorted by path. The result relation
    is identical to {!query}'s. *)
