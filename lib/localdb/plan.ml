module Tset = Relation.Tset
module Tuple = Relation.Tuple

(* Per-operator EXPLAIN ANALYZE accumulator: output rows and cumulative
   nanoseconds (inclusive of children, summed across cursor re-opens —
   a fixpoint round re-opening the same plan keeps accumulating). *)
type counter = { mutable c_rows : int; mutable c_ns : float }

type t =
  | Scan of Relation.Rel.t
  | Work_table of Tset.t ref
  | Filter of (Tuple.t -> bool) * t
  | Map of (Tuple.t -> Tuple.t) * t
  | Hash_join of join
  | Hash_anti of join
  | Append of t list
  | Distinct of t
  | Counted of counter * t

and join = {
  left : t;
  left_key : int array;
  right : t;
  right_key : int array;
  merge : Tuple.t -> Tuple.t -> Tuple.t;
}

type cursor = unit -> Tuple.t option

let rows = ref 0
let rows_scanned () = !rows
let reset_rows_scanned () = rows := 0

module H = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let drain cursor f =
  let rec go () =
    match cursor () with
    | Some tu ->
      f tu;
      go ()
    | None -> ()
  in
  go ()

let rec open_cursor plan : cursor =
  match plan with
  | Scan rel ->
    let items = ref (Relation.Rel.to_list rel) in
    fun () ->
      (match !items with
      | [] -> None
      | tu :: rest ->
        items := rest;
        incr rows;
        Some tu)
  | Work_table cell ->
    let items = ref (Tset.to_list !cell) in
    fun () ->
      (match !items with
      | [] -> None
      | tu :: rest ->
        items := rest;
        incr rows;
        Some tu)
  | Filter (p, child) ->
    let next = open_cursor child in
    let rec pull () =
      match next () with
      | Some tu when p tu ->
        incr rows;
        Some tu
      | Some _ -> pull ()
      | None -> None
    in
    pull
  | Map (f, child) ->
    let next = open_cursor child in
    fun () ->
      (match next () with
      | Some tu ->
        incr rows;
        Some (f tu)
      | None -> None)
  | Hash_join { left; left_key; right; right_key; merge } ->
    (* build on the right, probe from the left *)
    let table = H.create 256 in
    drain (open_cursor right) (fun tu ->
        let key = Tuple.project right_key tu in
        match H.find_opt table key with
        | Some l -> H.replace table key (tu :: l)
        | None -> H.replace table key [ tu ]);
    let next_left = open_cursor left in
    let pending = ref [] in
    let current_left = ref [||] in
    let rec pull () =
      match !pending with
      | rt :: rest ->
        pending := rest;
        incr rows;
        Some (merge !current_left rt)
      | [] -> (
        match next_left () with
        | None -> None
        | Some lt -> (
          match H.find_opt table (Tuple.project left_key lt) with
          | Some matches ->
            current_left := lt;
            pending := matches;
            pull ()
          | None -> pull ()))
    in
    pull
  | Hash_anti { left; left_key; right; right_key; merge = _ } ->
    let table = H.create 256 in
    drain (open_cursor right) (fun tu -> H.replace table (Tuple.project right_key tu) ());
    let next_left = open_cursor left in
    let rec pull () =
      match next_left () with
      | None -> None
      | Some lt ->
        if H.mem table (Tuple.project left_key lt) then pull ()
        else begin
          incr rows;
          Some lt
        end
    in
    pull
  | Append children ->
    let remaining = ref children in
    let current = ref (fun () -> None) in
    let rec pull () =
      match !current () with
      | Some tu -> Some tu
      | None -> (
        match !remaining with
        | [] -> None
        | child :: rest ->
          remaining := rest;
          current := open_cursor child;
          pull ())
    in
    pull
  | Distinct child ->
    let seen = H.create 256 in
    let next = open_cursor child in
    let rec pull () =
      match next () with
      | None -> None
      | Some tu ->
        if H.mem seen tu then pull ()
        else begin
          H.replace seen tu ();
          incr rows;
          Some tu
        end
    in
    pull
  | Counted (c, child) ->
    let next = open_cursor child in
    fun () ->
      let t0 = Unix.gettimeofday () in
      let r = next () in
      c.c_ns <- c.c_ns +. ((Unix.gettimeofday () -. t0) *. 1e9);
      (match r with Some _ -> c.c_rows <- c.c_rows + 1 | None -> ());
      r

let rec pp ppf = function
  | Scan rel -> Format.fprintf ppf "SeqScan(%d rows)" (Relation.Rel.cardinal rel)
  | Work_table cell -> Format.fprintf ppf "WorkTableScan(%d rows)" (Tset.cardinal !cell)
  | Filter (_, child) -> Format.fprintf ppf "@[<v2>Filter@,%a@]" pp child
  | Map (_, child) -> Format.fprintf ppf "@[<v2>Project@,%a@]" pp child
  | Hash_join { left; right; _ } ->
    Format.fprintf ppf "@[<v2>HashJoin@,%a@,%a@]" pp left pp right
  | Hash_anti { left; right; _ } ->
    Format.fprintf ppf "@[<v2>HashAntiJoin@,%a@,%a@]" pp left pp right
  | Append children ->
    Format.fprintf ppf "@[<v2>Append@,%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp)
      children
  | Distinct child -> Format.fprintf ppf "@[<v2>Distinct@,%a@]" pp child
  | Counted (c, child) ->
    Format.fprintf ppf "@[<v2>[rows=%d time=%.3fms]@,%a@]" c.c_rows (c.c_ns /. 1e6) pp child

let run plan =
  let out = Tset.create () in
  drain (open_cursor plan) (fun tu -> ignore (Tset.add out tu));
  out
