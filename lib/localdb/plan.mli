(** Volcano-style physical plans for the local engine.

    This engine stands in for the per-worker PostgreSQL instances of the
    paper's P_plw^pg plan: a general-purpose, row-at-a-time interpreted
    executor. Each operator produces a cursor; tuples flow one by one
    through closure dispatch, which carries the per-row interpretation
    overhead that distinguishes this backend from the set-at-a-time
    SetRDD path (Fig. 7 of the paper). *)

type counter = { mutable c_rows : int; mutable c_ns : float }
(** EXPLAIN ANALYZE accumulator of a {!Counted} node: rows produced and
    cumulative time (inclusive of children, summed across cursor
    re-opens — a fixpoint round re-opening the plan keeps adding). *)

type t =
  | Scan of Relation.Rel.t
  | Work_table of Relation.Tset.t ref
      (** scan of the recursive working table (recursive CTE source) *)
  | Filter of (Relation.Tuple.t -> bool) * t
  | Map of (Relation.Tuple.t -> Relation.Tuple.t) * t
      (** projection / renaming / relayout *)
  | Hash_join of join
  | Hash_anti of join  (** left tuples with no right partner *)
  | Append of t list
  | Distinct of t
  | Counted of counter * t
      (** transparent pass-through metering rows and time into the
          counter (inserted by [Instance] when analyzing) *)

and join = {
  left : t;
  left_key : int array;
  right : t;
  right_key : int array;
  merge : Relation.Tuple.t -> Relation.Tuple.t -> Relation.Tuple.t;
      (** builds the output tuple from (left, right); for [Hash_anti] it
          is unused *)
}

type cursor = unit -> Relation.Tuple.t option
(** Pull-based cursor; [None] signals exhaustion. *)

val open_cursor : t -> cursor
(** Fresh cursor over the plan (re-openable; hash sides are rebuilt). *)

val run : t -> Relation.Tset.t
(** Drain a cursor into a set. *)

val pp : Format.formatter -> t -> unit
(** Operator-tree rendering (EXPLAIN-style). *)

val rows_scanned : unit -> int
(** Process-wide row counter (rows pulled out of any cursor), for
    instrumentation in tests and benches. *)

val reset_rows_scanned : unit -> unit
