module Schema = Relation.Schema
module Tset = Relation.Tset
module Tuple = Relation.Tuple
module Rel = Relation.Rel

exception Sql_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

(* ------------------------------------------------------------------ *)
(* AST                                                                 *)
(* ------------------------------------------------------------------ *)

type colref = { tbl : string option; col : string }
type selcol = Star | Col of colref * string option
type operand = Ref of colref | Lit of int
type eq = { lhs : colref; rhs : operand }

type item = Table of string * string option | Sub of select * string

and select =
  | Plain of {
      cols : selcol list;
      from : item;
      joins : (item * eq list) list;
      where : eq list;
    }
  | Union of select * select

type stmt = { ctes : (string * select) list; body : select }

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Id of string (* lowercased keywords compared via [kw] *)
  | Int of int
  | Str of string
  | Lpar
  | Rpar
  | Comma
  | Dot
  | Equal
  | Starred

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lpar :: acc)
      | ')' -> go (i + 1) (Rpar :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | '.' -> go (i + 1) (Dot :: acc)
      | '=' -> go (i + 1) (Equal :: acc)
      | '*' -> go (i + 1) (Starred :: acc)
      | '\'' ->
        let j = try String.index_from s (i + 1) '\'' with Not_found -> fail "unterminated string" in
        go (j + 1) (Str (String.sub s (i + 1) (j - i - 1)) :: acc)
      | c when c >= '0' && c <= '9' ->
        let j = ref i in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        go !j (Int (int_of_string (String.sub s i (!j - i))) :: acc)
      | c when is_ident_char c ->
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        go !j (Id (String.sub s i (!j - i)) :: acc)
      | c -> fail "unexpected character %C" c
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type state = { mutable toks : token list }

let kw t k = match t with Id s -> String.lowercase_ascii s = k | _ -> false
let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect_kw st k =
  match peek st with
  | Some t when kw t k -> advance st
  | _ -> fail "expected %s" (String.uppercase_ascii k)

let expect st t what =
  match peek st with Some t' when t' = t -> advance st | _ -> fail "expected %s" what

let is_keyword s =
  List.mem (String.lowercase_ascii s)
    [ "select"; "from"; "join"; "on"; "where"; "and"; "union"; "with"; "recursive"; "as" ]

let ident st what =
  match peek st with
  | Some (Id s) when not (is_keyword s) ->
    advance st;
    s
  | _ -> fail "expected %s" what

let parse_colref st =
  let first = ident st "a column" in
  match peek st with
  | Some Dot ->
    advance st;
    { tbl = Some first; col = ident st "a column" }
  | _ -> { tbl = None; col = first }

let parse_eq st =
  let lhs = parse_colref st in
  expect st Equal "'='";
  match peek st with
  | Some (Int n) ->
    advance st;
    { lhs; rhs = Lit n }
  | Some (Str s) ->
    advance st;
    { lhs; rhs = Lit (Relation.Value.of_string s) }
  | _ -> { lhs; rhs = Ref (parse_colref st) }

let parse_eqs st =
  let rec go acc =
    let e = parse_eq st in
    match peek st with
    | Some t when kw t "and" ->
      advance st;
      go (e :: acc)
    | _ -> List.rev (e :: acc)
  in
  go []

let rec parse_select st : select =
  let left = parse_plain st in
  match peek st with
  | Some t when kw t "union" ->
    advance st;
    Union (left, parse_select st)
  | _ -> left

and parse_plain st : select =
  expect_kw st "select";
  let cols =
    match peek st with
    | Some Starred ->
      advance st;
      [ Star ]
    | _ ->
      let rec go acc =
        let c = parse_colref st in
        let alias =
          match peek st with
          | Some t when kw t "as" ->
            advance st;
            Some (ident st "an alias")
          | _ -> None
        in
        let acc = Col (c, alias) :: acc in
        match peek st with
        | Some Comma ->
          advance st;
          go acc
        | _ -> List.rev acc
      in
      go []
  in
  expect_kw st "from";
  let from = parse_item st in
  let joins = ref [] in
  let where = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some t when kw t "join" ->
      advance st;
      let item = parse_item st in
      expect_kw st "on";
      joins := (item, parse_eqs st) :: !joins
    | Some t when kw t "where" ->
      advance st;
      where := parse_eqs st
    | _ -> continue := false
  done;
  Plain { cols; from; joins = List.rev !joins; where = !where }

and parse_item st : item =
  match peek st with
  | Some Lpar ->
    advance st;
    let sub = parse_select st in
    expect st Rpar "')'";
    Sub (sub, ident st "a subquery alias")
  | _ ->
    let name = ident st "a table name" in
    let alias =
      match peek st with
      | Some (Id s) when not (is_keyword s) ->
        advance st;
        Some s
      | _ -> None
    in
    Table (name, alias)

let parse_stmt s : stmt =
  let st = { toks = tokenize s } in
  let ctes =
    match peek st with
    | Some t when kw t "with" ->
      advance st;
      (match peek st with Some t when kw t "recursive" -> advance st | _ -> ());
      let rec go acc =
        let name = ident st "a CTE name" in
        expect_kw st "as";
        expect st Lpar "'('";
        let body = parse_select st in
        expect st Rpar "')'";
        match peek st with
        | Some Comma ->
          advance st;
          go ((name, body) :: acc)
        | _ -> List.rev ((name, body) :: acc)
      in
      go []
    | _ -> []
  in
  let body = parse_select st in
  (match peek st with None -> () | Some _ -> fail "trailing tokens");
  { ctes; body }

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* Environment: name -> (plan producer, schema). Recursive CTEs are
   bound to a work-table cell. *)
type source = { mk : unit -> Plan.t; schema : Schema.t }

let qualify alias schema =
  Schema.of_list (List.map (fun c -> alias ^ "." ^ c) (Schema.cols schema))

let resolve schema (r : colref) =
  let cols = Schema.cols schema in
  let matches =
    match r.tbl with
    | Some t -> List.filter (fun c -> c = t ^ "." ^ r.col) cols
    | None ->
      List.filter
        (fun c ->
          c = r.col
          ||
          match String.index_opt c '.' with
          | Some i -> String.sub c (i + 1) (String.length c - i - 1) = r.col
          | None -> false)
        cols
  in
  match matches with
  | [ c ] -> Schema.index_of schema c
  | [] -> fail "unknown column %s" (match r.tbl with Some t -> t ^ "." ^ r.col | None -> r.col)
  | _ -> fail "ambiguous column %s" r.col

let rec select_refs_name name = function
  | Plain { from; joins; _ } ->
    let item_refs = function
      | Table (n, _) -> n = name
      | Sub (s, _) -> select_refs_name name s
    in
    item_refs from || List.exists (fun (i, _) -> item_refs i) joins
  | Union (a, b) -> select_refs_name name a || select_refs_name name b

let rec compile_select env (s : select) : Plan.t * Schema.t =
  match s with
  | Union (a, b) ->
    let pa, sa = compile_select env a in
    let pb, sb = compile_select env b in
    if not (Schema.equal_names sa sb) then
      fail "UNION branches have different columns (%s vs %s)" (Schema.to_string sa)
        (Schema.to_string sb);
    let pb =
      if Schema.equal_ordered sa sb then pb
      else Plan.Map (Tuple.project (Schema.reorder_positions ~from:sb ~into:sa), pb)
    in
    (Plan.Distinct (Plan.Append [ pa; pb ]), sa)
  | Plain { cols; from; joins; where } ->
    let compile_item = function
      | Table (name, alias) -> (
        match List.assoc_opt name env with
        | Some src ->
          let a = Option.value ~default:name alias in
          (src.mk (), qualify a src.schema)
        | None -> fail "unknown table %s" name)
      | Sub (sub, alias) ->
        let p, sc = compile_select env sub in
        (p, qualify alias sc)
    in
    let base = compile_item from in
    let joined =
      List.fold_left
        (fun (lp, ls) (item, eqs) ->
          let rp, rs = compile_item item in
          (* split the ON equalities into hash-join keys (one side per
             input) and residual filters *)
          let keys, residual =
            List.partition_map
              (fun e ->
                match e.rhs with
                | Ref r -> (
                  let left_has cr =
                    match resolve ls cr with _ -> true | exception Sql_error _ -> false
                  in
                  let right_has cr =
                    match resolve rs cr with _ -> true | exception Sql_error _ -> false
                  in
                  match (left_has e.lhs, right_has r, left_has r, right_has e.lhs) with
                  | true, true, _, _ -> Left (resolve ls e.lhs, resolve rs r)
                  | _, _, true, true -> Left (resolve ls r, resolve rs e.lhs)
                  | _ -> Right e)
                | Lit _ -> Right e)
              eqs
          in
          let out_schema =
            Schema.of_array (Array.append (Schema.to_array ls) (Schema.to_array rs))
          in
          let plan =
            Plan.Hash_join
              {
                left = lp;
                left_key = Array.of_list (List.map fst keys);
                right = rp;
                right_key = Array.of_list (List.map snd keys);
                merge = Tuple.concat;
              }
          in
          (* residual equalities become filters over the combined row *)
          let plan =
            List.fold_left
              (fun p e ->
                let i = resolve out_schema e.lhs in
                match e.rhs with
                | Lit v -> Plan.Filter ((fun tu -> tu.(i) = v), p)
                | Ref r ->
                  let j = resolve out_schema r in
                  Plan.Filter ((fun tu -> tu.(i) = tu.(j)), p))
              plan residual
          in
          (plan, out_schema))
        base joins
    in
    let plan, schema = joined in
    let plan =
      List.fold_left
        (fun p e ->
          let i = resolve schema e.lhs in
          match e.rhs with
          | Lit v -> Plan.Filter ((fun tu -> tu.(i) = v), p)
          | Ref r ->
            let j = resolve schema r in
            Plan.Filter ((fun tu -> tu.(i) = tu.(j)), p))
        plan where
    in
    (* projection *)
    let out_cols =
      match cols with
      | [ Star ] ->
        List.map
          (fun c ->
            match String.index_opt c '.' with
            | Some i -> (Schema.index_of schema c, String.sub c (i + 1) (String.length c - i - 1))
            | None -> (Schema.index_of schema c, c))
          (Schema.cols schema)
      | _ ->
        List.map
          (function
            | Star -> fail "SELECT *, col is not supported"
            | Col (r, alias) ->
              let i = resolve schema r in
              ((i : int), Option.value ~default:r.col alias))
          cols
    in
    let positions = Array.of_list (List.map fst out_cols) in
    let names = List.map snd out_cols in
    let out_schema =
      try Schema.of_list names
      with Schema.Schema_error m -> fail "output columns: %s (use AS to disambiguate)" m
    in
    (Plan.Distinct (Plan.Map (Tuple.project positions, plan)), out_schema)

(* ------------------------------------------------------------------ *)
(* CTEs, recursion and entry points                                    *)
(* ------------------------------------------------------------------ *)

let base_env db =
  List.map
    (fun name ->
      match Instance.lookup db name with
      | Some rel -> (name, { mk = (fun () -> Plan.Scan rel); schema = Rel.schema rel })
      | None -> assert false)
    (Instance.table_names db)

let compile_cte env name body =
  match body with
  | Union (seed_sel, rec_sel) when select_refs_name name rec_sel ->
    (* recursive CTE: work-table loop, as PostgreSQL's recursive union *)
    if select_refs_name name seed_sel then
      fail "recursive CTE %s: the first UNION branch must not be recursive" name;
    let seed_plan, schema = compile_select env seed_sel in
    let all = Plan.run seed_plan in
    let work = ref (Tset.copy all) in
    let env' =
      (name, { mk = (fun () -> Plan.Work_table work); schema }) :: env
    in
    let rec_plan, rec_schema = compile_select env' rec_sel in
    if not (Schema.equal_names schema rec_schema) then
      fail "recursive CTE %s: branches have different columns" name;
    let rec_plan =
      if Schema.equal_ordered schema rec_schema then rec_plan
      else Plan.Map (Tuple.project (Schema.reorder_positions ~from:rec_schema ~into:schema), rec_plan)
    in
    let tr = Trace.get () in
    Trace.span tr ~cat:"localdb" ~attrs:[ ("cte", Trace.Str name) ] "sql.recursive_cte" @@ fun () ->
    let rounds = ref 0 in
    let rec loop () =
      incr rounds;
      let produced = Plan.run rec_plan in
      let fresh = Tset.create () in
      Tset.iter (fun tu -> if not (Tset.mem all tu) then ignore (Tset.add fresh tu)) produced;
      Trace.instant tr ~cat:"localdb"
        ~attrs:[ ("round", Trace.Int !rounds); ("fresh", Trace.Int (Tset.cardinal fresh)) ]
        "sql.round";
      if not (Tset.is_empty fresh) then begin
        ignore (Tset.add_all all fresh);
        work := fresh;
        loop ()
      end
    in
    loop ();
    Trace.set_attr tr "rounds" (Trace.Int !rounds);
    { mk = (fun () -> Plan.Scan (Rel.of_tset schema all)); schema }
  | _ ->
    let plan, schema = compile_select env body in
    let result = Rel.of_tset schema (Plan.run plan) in
    { mk = (fun () -> Plan.Scan result); schema }

let compile db text =
  let { ctes; body } = parse_stmt text in
  let env =
    List.fold_left
      (fun env (name, cte_body) -> (name, compile_cte env name cte_body) :: env)
      (base_env db) ctes
  in
  compile_select env body

let query db text =
  let label = if String.length text <= 120 then text else String.sub text 0 120 ^ "…" in
  Trace.span (Trace.get ()) ~cat:"localdb" ~attrs:[ ("sql", Trace.Str label) ] "sql.query"
  @@ fun () ->
  let plan, schema = compile db text in
  Rel.of_tset schema (Plan.run plan)

let explain db text =
  let plan, _ = compile db text in
  Format.asprintf "%a" Plan.pp plan
