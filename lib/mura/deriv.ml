exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* Does [t] mention any of the changed relation names? *)
let mentions names t = List.exists (fun r -> List.mem r names) (Term.free_rels t)

let rec check names (t : Term.t) =
  match t with
  | Rel _ | Var _ | Cst _ -> ()
  | Select (_, u) | Project (_, u) | Antiproject (_, u) | Rename (_, u) -> check names u
  | Join (a, b) | Union (a, b) ->
    check names a;
    check names b
  | Antijoin (a, b) ->
    check names a;
    if mentions names b then
      unsupported "changed relation occurs under an antijoin right side in %s" (Term.to_string b)
  | Fix (x, body) ->
    if mentions names body then
      unsupported "changed relation occurs inside nested fixpoint on %s" x

let supported ~changed t =
  match check changed t with () -> Ok () | exception Unsupported msg -> Error msg

(* One summand per changed-relation occurrence: the occurrence becomes
   its delta constant, everything else keeps reading the (new) catalog.
   Unary operators distribute over the summand union exactly; Join uses
   the over-approximating product rule (see the interface). *)
let delta ~changed (t : Term.t) : Term.t list =
  let names = List.map fst changed in
  let rec go (t : Term.t) : Term.t list =
    match t with
    | Rel r -> ( match List.assoc_opt r changed with Some d -> [ Term.Cst d ] | None -> [])
    | Var _ | Cst _ -> []
    | Select (p, u) -> List.map (fun du -> Term.Select (p, du)) (go u)
    | Project (cols, u) -> List.map (fun du -> Term.Project (cols, du)) (go u)
    | Antiproject (cols, u) -> List.map (fun du -> Term.Antiproject (cols, du)) (go u)
    | Rename (m, u) -> List.map (fun du -> Term.Rename (m, du)) (go u)
    | Join (a, b) ->
      List.map (fun da -> Term.Join (da, b)) (go a)
      @ List.map (fun db -> Term.Join (a, db)) (go b)
    | Antijoin (a, b) ->
      if mentions names b then
        unsupported "changed relation occurs under an antijoin right side in %s"
          (Term.to_string b)
      else List.map (fun da -> Term.Antijoin (da, b)) (go a)
    | Union (a, b) -> go a @ go b
    | Fix (x, body) ->
      if mentions names body then
        unsupported "changed relation occurs inside nested fixpoint on %s" x
      else []
  in
  go t
