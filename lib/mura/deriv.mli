(** Differentials of mu-RA terms under base-relation updates — the
    seed-building calculus of incremental fixpoint maintenance.

    For a term [t] over a catalog where some relations change from [r]
    to [r ∪ Δr], {!delta} produces a list of {e summand} terms whose
    union over-approximates the difference [t(new) \ t(old)] while
    staying inside [t(new)]:

    {v t(old) ∪ ⋃ delta(t)  ⊇  t(new)        (completeness)
       ⋃ delta(t)           ⊆  t(new)        (soundness) v}

    Each summand is the original term with exactly {e one} occurrence of
    a changed relation replaced by its delta (embedded as [Cst]); every
    other relation occurrence still reads through its [Rel] name, which
    the caller binds to the {e new} catalog. Both bounds are what the
    semi-naive resume needs: absorbing the summands into a converged
    accumulator [X] yields exactly [X ∪ F_new(X)] after the diff, so the
    loop restarts from a correct frontier and converges to the new least
    fixpoint. The same calculus over the {e old} catalog with
    [Δ = deleted tuples] seeds the DRed over-deletion pass.

    The over-approximation is deliberate: [∂(a ⋈ b) = (∂a ⋈ b) ∪ (a ⋈
    ∂b)] may re-derive tuples both sides produce, but re-derivations are
    discarded by the accumulator diff — results are unaffected.

    A changed relation may only occur {e positively}: under the right
    side of an [Antijoin] or inside a nested [Fix], an insertion can
    retract previously derived tuples and resumption is unsound —
    {!delta} raises {!Unsupported} and the caller falls back to a
    from-scratch recomputation. Recursive variables differentiate to
    nothing ([∂(Var x) = ∅]): variable growth is the resumed loop's
    job, not the seed's. *)

exception Unsupported of string

val supported : changed:string list -> Term.t -> (unit, string) result
(** [supported ~changed t] checks that every relation name in [changed]
    occurs only positively in [t] (never under an [Antijoin] right side,
    never inside a [Fix] body), i.e. that {!delta} would succeed. *)

val delta : changed:(string * Relation.Rel.t) list -> Term.t -> Term.t list
(** [delta ~changed t] is the list of differential summands of [t] under
    the update [r ↦ r ∪ Δr] for each [(r, Δr)] in [changed]. The empty
    list means [t] cannot produce anything new (no changed relation
    occurs). Summands referencing the recursive variable of an enclosing
    fixpoint keep it free — the caller applies them to the converged
    accumulator.
    @raise Unsupported when a changed relation occurs non-positively. *)
