module Pred = Relation.Pred
module Rel = Relation.Rel
module Schema = Relation.Schema
module Tuple = Relation.Tuple

(* Canonical bound-variable names are keyed by binder {e depth}, not by
   a left-to-right counter: the name a [Fix] binds depends only on how
   many binders enclose it, so sibling subterms can be reordered by the
   AC sort below without disturbing the numbering (a pre-order counter
   would renumber across siblings and make the sort order-sensitive).
   Nested binders always differ in depth, so canonical names never
   shadow each other; scoping is still resolved through [env]. *)
let canon_var depth = "%" ^ string_of_int depth

let rec flatten_union = function
  | Term.Union (a, b) -> flatten_union a @ flatten_union b
  | t -> [ t ]

let rec flatten_join = function
  | Term.Join (a, b) -> flatten_join a @ flatten_join b
  | t -> [ t ]

(* ------------------------------------------------------------------ *)
(* Injective serialization                                             *)
(* ------------------------------------------------------------------ *)

let str buf s = Printf.bprintf buf "%d:%s" (String.length s) s

let strs buf l =
  Printf.bprintf buf "%d[" (List.length l);
  List.iter (str buf) l;
  Buffer.add_char buf ']'

let rec pred buf (p : Pred.t) =
  match p with
  | Pred.True -> Buffer.add_char buf 't'
  | Pred.Eq_const (c, v) -> Printf.bprintf buf "e(%a%d)" (fun b -> str b) c v
  | Pred.Neq_const (c, v) -> Printf.bprintf buf "n(%a%d)" (fun b -> str b) c v
  | Pred.Eq_col (c, d) -> Printf.bprintf buf "c(%a%a)" (fun b -> str b) c (fun b -> str b) d
  | Pred.Lt_const (c, v) -> Printf.bprintf buf "l(%a%d)" (fun b -> str b) c v
  | Pred.Gt_const (c, v) -> Printf.bprintf buf "g(%a%d)" (fun b -> str b) c v
  | Pred.And (a, b) ->
    Buffer.add_string buf "&(";
    pred buf a;
    pred buf b;
    Buffer.add_char buf ')'
  | Pred.Or (a, b) ->
    Buffer.add_string buf "|(";
    pred buf a;
    pred buf b;
    Buffer.add_char buf ')'
  | Pred.Not a ->
    Buffer.add_string buf "!(";
    pred buf a;
    Buffer.add_char buf ')'

(* [Cst] relations are serialized by contents (schema plus sorted tuple
   rows), not by cardinality: two distinct constant relations must never
   share a cache key. Constants in queries are small (translated query
   endpoints, seed sets), so the sort is cheap. *)
let cst buf r =
  strs buf (Schema.cols (Rel.schema r));
  let rows = List.sort Tuple.compare (Rel.to_list r) in
  Printf.bprintf buf "%d{" (List.length rows);
  List.iter
    (fun tu ->
      Array.iter (fun v -> Printf.bprintf buf "%d," v) tu;
      Buffer.add_char buf ';')
    rows;
  Buffer.add_char buf '}'

let rec term buf (t : Term.t) =
  match t with
  | Term.Rel n ->
    Buffer.add_char buf 'R';
    str buf n
  | Term.Var x ->
    Buffer.add_char buf 'V';
    str buf x
  | Term.Cst r ->
    Buffer.add_char buf 'C';
    cst buf r
  | Term.Select (p, u) ->
    Buffer.add_string buf "S(";
    pred buf p;
    term buf u;
    Buffer.add_char buf ')'
  | Term.Project (c, u) ->
    Buffer.add_string buf "P(";
    strs buf c;
    term buf u;
    Buffer.add_char buf ')'
  | Term.Antiproject (c, u) ->
    Buffer.add_string buf "A(";
    strs buf c;
    term buf u;
    Buffer.add_char buf ')'
  | Term.Rename (m, u) ->
    Buffer.add_string buf "N(";
    strs buf (List.concat_map (fun (o, n) -> [ o; n ]) m);
    term buf u;
    Buffer.add_char buf ')'
  | Term.Join (a, b) ->
    Buffer.add_string buf "J(";
    term buf a;
    term buf b;
    Buffer.add_char buf ')'
  | Term.Antijoin (a, b) ->
    Buffer.add_string buf "D(";
    term buf a;
    term buf b;
    Buffer.add_char buf ')'
  | Term.Union (a, b) ->
    Buffer.add_string buf "U(";
    term buf a;
    term buf b;
    Buffer.add_char buf ')'
  | Term.Fix (x, body) ->
    Buffer.add_string buf "F(";
    str buf x;
    term buf body;
    Buffer.add_char buf ')'

let serialize t =
  let buf = Buffer.create 256 in
  term buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

let sort_operands ops =
  List.map (fun t -> (serialize t, t)) ops
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map snd

(* Working-column canonicalization. [Term.fresh_col] hands every
   translation a new ["_m<n>"] name, so two parses of one query text
   produce terms that differ only in join-plumbing column names — they
   must share a cache key. The ["_m"] prefix is reserved (user schemas
   must not use it, term.mli), so every such name is internal plumbing:
   renaming all of them simultaneously with one bijection preserves
   every name-equality in the term (natural joins included) and touches
   no base-relation column. Names are numbered by first appearance in a
   pre-order walk, which makes structurally identical terms (the
   repeated-parse case) agree exactly. *)
let is_working c = String.length c >= 2 && c.[0] = '_' && c.[1] = 'm'

let canon_working_cols t =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let note c =
    if is_working c && not (Hashtbl.mem seen c) then begin
      Hashtbl.add seen c ();
      order := c :: !order
    end
  in
  let rec note_pred (p : Pred.t) =
    match p with
    | Pred.True -> ()
    | Pred.Eq_const (c, _) | Pred.Neq_const (c, _) | Pred.Lt_const (c, _) | Pred.Gt_const (c, _)
      -> note c
    | Pred.Eq_col (c, d) ->
      note c;
      note d
    | Pred.And (a, b) | Pred.Or (a, b) ->
      note_pred a;
      note_pred b
    | Pred.Not a -> note_pred a
  in
  let rec collect (t : Term.t) =
    match t with
    | Term.Rel _ | Term.Var _ -> ()
    | Term.Cst r -> List.iter note (Schema.cols (Rel.schema r))
    | Term.Select (p, u) ->
      note_pred p;
      collect u
    | Term.Project (cs, u) | Term.Antiproject (cs, u) ->
      List.iter note cs;
      collect u
    | Term.Rename (m, u) ->
      List.iter
        (fun (a, b) ->
          note a;
          note b)
        m;
      collect u
    | Term.Join (a, b) | Term.Antijoin (a, b) | Term.Union (a, b) ->
      collect a;
      collect b
    | Term.Fix (_, b) -> collect b
  in
  collect t;
  let mapping = List.mapi (fun i c -> (c, "_m" ^ string_of_int i)) (List.rev !order) in
  if mapping = [] || List.for_all (fun (o, n) -> o = n) mapping then t
  else begin
    let col c = match List.assoc_opt c mapping with Some n -> n | None -> c in
    let rec pmap (p : Pred.t) : Pred.t =
      match p with
      | Pred.True -> p
      | Pred.Eq_const (c, v) -> Pred.Eq_const (col c, v)
      | Pred.Neq_const (c, v) -> Pred.Neq_const (col c, v)
      | Pred.Lt_const (c, v) -> Pred.Lt_const (col c, v)
      | Pred.Gt_const (c, v) -> Pred.Gt_const (col c, v)
      | Pred.Eq_col (c, d) -> Pred.Eq_col (col c, col d)
      | Pred.And (a, b) -> Pred.And (pmap a, pmap b)
      | Pred.Or (a, b) -> Pred.Or (pmap a, pmap b)
      | Pred.Not a -> Pred.Not (pmap a)
    in
    let rec go (t : Term.t) : Term.t =
      match t with
      | Term.Rel _ | Term.Var _ -> t
      | Term.Cst r ->
        let m =
          List.filter (fun (o, _) -> List.mem o (Schema.cols (Rel.schema r))) mapping
        in
        if m = [] then t else Term.Cst (Rel.rename m r)
      | Term.Select (p, u) -> Term.Select (pmap p, go u)
      | Term.Project (cs, u) -> Term.Project (List.map col cs, go u)
      | Term.Antiproject (cs, u) -> Term.Antiproject (List.map col cs, go u)
      | Term.Rename (m, u) -> Term.Rename (List.map (fun (a, b) -> (col a, col b)) m, go u)
      | Term.Join (a, b) -> Term.Join (go a, go b)
      | Term.Antijoin (a, b) -> Term.Antijoin (go a, go b)
      | Term.Union (a, b) -> Term.Union (go a, go b)
      | Term.Fix (x, b) -> Term.Fix (x, go b)
    in
    go t
  end

let normalize t =
  let t = canon_working_cols t in
  let rec go depth env (t : Term.t) : Term.t =
    match t with
    | Term.Rel _ | Term.Cst _ -> t
    | Term.Var x -> (
      match List.assoc_opt x env with Some n -> Term.Var n | None -> t)
    | Term.Select (p, u) -> Term.Select (p, go depth env u)
    | Term.Project (c, u) -> Term.Project (c, go depth env u)
    | Term.Antiproject (c, u) -> Term.Antiproject (c, go depth env u)
    | Term.Rename (m, u) -> Term.Rename (m, go depth env u)
    | Term.Antijoin (a, b) -> Term.Antijoin (go depth env a, go depth env b)
    | Term.Union _ ->
      Term.union_all (sort_operands (List.map (go depth env) (flatten_union t)))
    | Term.Join _ ->
      Term.join_all (sort_operands (List.map (go depth env) (flatten_join t)))
    | Term.Fix (x, body) ->
      let nx = canon_var depth in
      Term.Fix (nx, go (depth + 1) ((x, nx) :: env) body)
  in
  go 0 [] t

let key t = Digest.to_hex (Digest.string (serialize (normalize t)))
