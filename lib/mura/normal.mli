(** Canonical forms of mu-RA terms, for caching.

    Two queries should share one cache entry whenever they denote the
    same relation for every database: the serving layer keys its plan
    and result caches on the {e normal form} of a term rather than on
    the term itself. Normalization applies exactly the equivalences
    that are sound for {e every} database instance and need no schema
    information:

    - {b alpha-renaming}: recursion variables bound by [Fix] are renamed
      to canonical names (["%0"], ["%1"], ... in pre-order), so
      [mu(X = E ∪ X∘E)] and [mu(Y = E ∪ Y∘E)] normalize identically;
    - {b commutative reordering}: maximal chains of the two commutative,
      associative operators — [Union] and natural [Join] — are flattened
      and their operands sorted by their own serialized normal forms.
      ([Antijoin] is not commutative and [Select]/[Project]/[Rename] are
      unary; they are left untouched.)

    Natural-join commutation changes the column {e order} of the result
    layout, never its contents: relations here are sets of mappings from
    column names to values, and every consumer reconciles layouts by
    name ({!Relation.Rel.equal}, {!Relation.Rel.union}, ...). A cache
    keyed on normal forms may therefore serve a stored result whose
    column order differs from the one the request would have produced
    itself, but never one with different contents.

    The normal form is {e not} executed — callers keep evaluating the
    plan derived from the first term that produced a given key.

    A third rewrite handles generated names: reserved {e working
    columns} (the ["_m<n>"] join-plumbing names of {!Term.fresh_col},
    which user schemas must not use) are renumbered by first appearance,
    because every fresh translation of the same query text allocates new
    ones — [a+] parsed twice must share one key. The renaming is a
    single simultaneous bijection over all working names, so every
    name-equality in the term (natural joins included) is preserved.
    Renumbering happens before the commutative sort, so terms that
    combine {e both} operand reordering and different generated names
    may still get distinct keys — a conservative miss, never a false
    hit. *)

val normalize : Term.t -> Term.t
(** Alpha-rename bound recursion variables to canonical names,
    renumber reserved working columns by first appearance, and sort
    the operands of commutative operator chains. Idempotent. Free
    variables (unbound [Var]s) are left untouched. *)

val serialize : Term.t -> string
(** An injective rendering of a term: unlike {!Term.to_string} it
    length-prefixes every field (no gluing ambiguities) and serializes
    [Cst] relations by schema and sorted tuple contents rather than by
    cardinality. Does not normalize — compose with {!normalize}. *)

val key : Term.t -> string
(** [key t] is a compact digest of [serialize (normalize t)] — the cache
    key of the serving layer. Alpha-equivalent terms and commutative
    reorderings map to equal keys; terms denoting different relations
    map to different keys (modulo digest collisions). *)
