module Rel = Relation.Rel
module Schema = Relation.Schema
module Tset = Relation.Tset
module Batch = Relation.Batch
module Dds = Distsim.Dds
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics

(* Grouped reductions as fused batch folds: each worker folds its
   partition column-at-a-time into per-group partials (one pass over the
   batch's unboxed columns, no per-row tuple allocation), the partials
   are exchanged by the group key (the only metered communication — the
   classic combiner pattern), and a second local fold merges them. The
   input is made distinct first so the reduction is over the tuple set,
   independently of how duplicates were partitioned. *)
let group_fold ~key ~out_col ~seed ~combine d =
  let d = Dds.distinct d in
  let schema = Dds.schema d in
  let kpos = Schema.positions schema key in
  let nk = Array.length kpos in
  let out_schema = Schema.of_list (key @ [ out_col ]) in
  (* partials carry the producing worker's id: the exchange is over tuple
     SETS, so two workers computing an equal partial for the same group
     (e.g. both count 1) would otherwise collapse into one tuple and
     undercount the merge *)
  let part_schema = Schema.of_list (key @ [ "__worker"; out_col ]) in
  let fold_tbl tbl k v =
    match Hashtbl.find_opt tbl k with
    | Some v0 -> Hashtbl.replace tbl k (combine v0 v)
    | None -> Hashtbl.add tbl k v
  in
  let partials =
    Dds.map_partitions ~op:"group_partial" ~schema:part_schema
      (fun w part ->
        let b = Batch.of_tset ~arity:(Schema.arity schema) part in
        let cols = Batch.cols b in
        let tbl = Hashtbl.create (max 16 (Batch.length b / 4)) in
        for row = 0 to Batch.length b - 1 do
          let k = Array.make nk 0 in
          for i = 0 to nk - 1 do
            k.(i) <- cols.(kpos.(i)).(row)
          done;
          fold_tbl tbl k (seed cols row)
        done;
        let out = Tset.create ~capacity:(Hashtbl.length tbl) () in
        Hashtbl.iter (fun k v -> ignore (Tset.add out (Array.append k [| w; v |]))) tbl;
        out)
      d
  in
  let merged = Dds.repartition ~by:key partials in
  let final =
    Dds.map_partitions ~op:"group_merge" ~partitioning:(Dds.Hashed key) ~schema:out_schema
      (fun _ part ->
        let tbl = Hashtbl.create (max 16 (Tset.cardinal part)) in
        Tset.iter (fun tu -> fold_tbl tbl (Array.sub tu 0 nk) tu.(nk + 1)) part;
        let out = Tset.create ~capacity:(Hashtbl.length tbl) () in
        Hashtbl.iter (fun k v -> ignore (Tset.add out (Array.append k [| v |]))) tbl;
        out)
      merged
  in
  Dds.collect final

let group_count _cluster ~key d =
  group_fold ~key ~out_col:"count" ~seed:(fun _ _ -> 1) ~combine:( + ) d

let group_min _cluster ~key ~value d =
  let vpos =
    match Schema.positions (Dds.schema d) [ value ] with
    | [| p |] -> p
    | _ -> assert false
  in
  group_fold ~key ~out_col:value ~seed:(fun cols row -> cols.(vpos).(row)) ~combine:min d

let canon = Schema.of_list [ "src"; "trg"; "weight" ]

let shortest_paths cluster edges =
  let edges = Rel.relayout canon edges in
  let seeds = Dds.of_rel ~by:[ "src" ] cluster edges in
  let m = Cluster.metrics cluster in
  Metrics.record_broadcast m
    ~records:(Rel.cardinal edges * max 1 (Cluster.workers cluster - 1));
  Metrics.record_superstep m;
  let result =
    Dds.map_partitions ~partitioning:(Dds.Hashed [ "src" ]) ~schema:canon
      (fun _ part ->
        let env = Mura.Eval.env [ ("E", edges) ] in
        Rel.tuples
          (Mura.Agg.shortest_paths_seeded env ~edges:"E"
             ~seeds:(Rel.of_tset canon (Tset.copy part))))
      seeds
  in
  Dds.collect result
