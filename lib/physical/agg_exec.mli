(** Distributed aggregate fixpoints: weighted shortest paths with the
    P_plw distribution scheme.

    The relaxation step never changes a path's source, so [src] is stable
    in the sense of Sec. IV-A2: hash-partitioning the seed arcs by [src]
    makes the per-worker min-fixpoints disjoint — each worker owns all
    (and only) the paths of its sources, the edge relation is broadcast
    once, and no min-merge across workers is needed. *)

val shortest_paths : Distsim.Cluster.t -> Relation.Rel.t -> Relation.Rel.t
(** [shortest_paths cluster edges] — all-pairs shortest path weights for
    a (src, trg, weight) relation, computed with per-worker local
    min-fixpoints. Communication is metered on the cluster. *)

val group_count : Distsim.Cluster.t -> key:string list -> Distsim.Dds.t -> Relation.Rel.t
(** [group_count cluster ~key d] — per-group tuple counts over the
    distinct tuples of [d], schema [key @ ["count"]]. Executes as fused
    batch folds: per-worker column-at-a-time partials, one metered
    exchange of the partials by [key], a local merge fold. *)

val group_min :
  Distsim.Cluster.t -> key:string list -> value:string -> Distsim.Dds.t -> Relation.Rel.t
(** [group_min cluster ~key ~value d] — per-group minimum of column
    [value], schema [key @ [value]]; same fused two-phase fold. *)
