module Schema = Relation.Schema
module Rel = Relation.Rel
module Tset = Relation.Tset
module Tuple = Relation.Tuple
module Pred = Relation.Pred
module Batch = Relation.Batch
module Index = Relation.Index
module Term = Mura.Term
module Fcond = Mura.Fcond
module Dds = Distsim.Dds
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics

type fixpoint_plan = P_gld | P_plw_s | P_plw_pg

let plan_name = function P_gld -> "P_gld" | P_plw_s -> "P_plw^s" | P_plw_pg -> "P_plw^pg"
let pp_plan ppf p = Format.pp_print_string ppf (plan_name p)

type config = {
  cluster : Cluster.t;
  force_plan : fixpoint_plan option;
  broadcast_threshold : int;
  max_iterations : int;
  max_tuples : int;
  use_stable_partitioning : bool;
  use_prepared_broadcast : bool;
  use_fused_delta : bool;
  use_shuffle_dedup : bool;
  collect_actuals : bool;
  use_compiled_exec : bool;
}

let default_config cluster =
  {
    cluster;
    force_plan = None;
    broadcast_threshold = 2_000_000;
    max_iterations = 100_000;
    max_tuples = 500_000_000;
    use_stable_partitioning = true;
    use_prepared_broadcast = true;
    use_fused_delta = true;
    use_shuffle_dedup = true;
    collect_actuals = false;
    use_compiled_exec = true;
  }

exception Resource_limit of string

type fix_report = {
  var : string;
  fix_path : string;
  plan : fixpoint_plan;
  stable : string list;
  partitioned_by : string list;
  iterations : int;
  result_size : int;
  deltas : int list;
}

type report = { mutable fixpoints : fix_report list }

(* EXPLAIN ANALYZE accumulator of one term-tree node, keyed by node path
   (root "0", child [i] of [p] is [p ^ "." ^ i], Fix children = constant
   branches then recursive ones in [Fcond.split] order — the convention
   shared with [Localdb.Instance] and [Cost.Feedback]). For operators
   inside a fixpoint loop, rows/ns accumulate over every iteration and
   [o_count] records the number of applications. *)
type op_actual = { mutable o_rows : int; mutable o_ns : float; mutable o_count : int }

(* P_plw^pg local-plan actuals, aggregated across workers: rows are
   summed, time is the max over workers (they run in parallel), rounds
   is the max semi-naive round count. *)
type local_actual = {
  mutable l_rows : int;
  mutable l_ns : float;
  mutable l_rounds : int;
  mutable l_workers : int;
}

(* Shared cache of typing-only shell analyses ([Pipeline.Shell.analyze]
   results), keyed by the printed term. A long-lived service passes one
   cache to every session it opens so a repeated query is analyzed once;
   the analysis depends only on the catalog's schemas, so the owner must
   drop the cache when those change. *)
type shell_cache = (string, Pipeline.Shell.static) Hashtbl.t

let shell_cache () : shell_cache = Hashtbl.create 64
let clear_shell_cache (c : shell_cache) = Hashtbl.reset c

type ctx = {
  config : config;
  tables : (string * Rel.t) list;
  cache : (string, Dds.t) Hashtbl.t;
  bcache : (string, Batch.t array) Hashtbl.t;
      (* columnar view of cached base relations, for the compiled shell *)
  shell_statics : shell_cache;
  rpt : report;
  actuals : (string, op_actual) Hashtbl.t option;
  local_actuals : (string, (string, local_actual) Hashtbl.t) Hashtbl.t;
      (* fix-node path -> local-plan path -> aggregate *)
  local_plans : (string, Term.t) Hashtbl.t;  (* fix-node path -> local term *)
  locals_mutex : Mutex.t;
}

let session ?shell_cache:sc config tables =
  {
    config;
    tables;
    cache = Hashtbl.create 16;
    bcache = Hashtbl.create 8;
    shell_statics = (match sc with Some c -> c | None -> Hashtbl.create 16);
    rpt = { fixpoints = [] };
    actuals = (if config.collect_actuals then Some (Hashtbl.create 64) else None);
    local_actuals = Hashtbl.create 4;
    local_plans = Hashtbl.create 4;
    locals_mutex = Mutex.create ();
  }

let child path i = path ^ "." ^ string_of_int i

let actual_of tbl path =
  match Hashtbl.find_opt tbl path with
  | Some a -> a
  | None ->
    let a = { o_rows = 0; o_ns = 0.; o_count = 0 } in
    Hashtbl.replace tbl path a;
    a

(* Meter one evaluation into the node's accumulator. [Dds.cardinal] is a
   driver-side fold over partition sizes: it moves no data and touches no
   metrics, so analyzed runs keep bit-identical results and counters. *)
let metered ctx path (card : 'a -> int) (f : unit -> 'a) : 'a =
  match ctx.actuals with
  | None -> f ()
  | Some tbl ->
    let t0 = Unix.gettimeofday () in
    let d = f () in
    let a = actual_of tbl path in
    a.o_ns <- a.o_ns +. ((Unix.gettimeofday () -. t0) *. 1e9);
    a.o_rows <- a.o_rows + card d;
    a.o_count <- a.o_count + 1;
    d
let config_of ctx = ctx.config
let report ctx = ctx.rpt
let metrics ctx = Cluster.metrics ctx.config.cluster

let err fmt = Format.kasprintf (fun s -> raise (Mura.Eval.Eval_error s)) fmt

let check_size ctx d =
  if Dds.cardinal d > ctx.config.max_tuples then
    raise (Resource_limit (Printf.sprintf "dataset exceeds %d tuples" ctx.config.max_tuples));
  d

let driver_env ctx = Mura.Eval.env ctx.tables
let typing_env ctx = Mura.Typing.env (List.map (fun (n, r) -> (n, Rel.schema r)) ctx.tables)

(* Narrow projection: keep the given columns; partitioning survives when
   the partitioning columns are all kept. *)
let project_narrow d keep =
  let schema = Dds.schema d in
  let out_schema = Schema.restrict schema keep in
  let pos = Schema.positions schema keep in
  let partitioning =
    match Dds.partitioning d with
    | Dds.Hashed cols when List.for_all (fun c -> List.mem c keep) cols -> Dds.Hashed cols
    | Dds.Hashed _ | Dds.Arbitrary -> Dds.Arbitrary
  in
  Dds.map_partitions ~op:"project" ~partitioning ~schema:out_schema
    (fun _ part ->
      let out = Tset.create ~capacity:(Tset.cardinal part) () in
      Tset.iter (fun tu -> ignore (Tset.add out (Tuple.project pos tu))) part;
      out)
    d

let keep_of_drop schema drop = List.filter (fun c -> not (List.mem c drop)) (Schema.cols schema)

(* Span label for one physical operator (trace category "op"): the
   per-operator rollup groups communication and stage time under these. *)
let op_label (t : Term.t) =
  match t with
  | Rel n -> "Rel " ^ n
  | Cst _ -> "Cst"
  | Var x -> "Var " ^ x
  | Select _ -> "Select"
  | Project _ -> "Project"
  | Antiproject _ -> "Antiproject"
  | Rename _ -> "Rename"
  | Join _ -> "Join"
  | Antijoin _ -> "Antijoin"
  | Union _ -> "Union"
  | Fix (x, _) -> "Fix " ^ x

(* Fallback telemetry: one counter, labelled by the static reason slug
   and the site that fell back (shell node, fixpoint branch, P_plw^pg
   local plan). *)
let tele_fallback ~reason ~site =
  let reg = Telemetry.get () in
  if Telemetry.enabled reg then
    Telemetry.inc reg ~labels:[ ("reason", reason); ("site", site) ] "pipeline_fallback_total"

(* Literal relations embedded in a term make [Term.to_string] arbitrarily
   large (and the term transient), so such terms bypass the shell-static
   cache. *)
let rec has_cst : Term.t -> bool = function
  | Term.Cst _ -> true
  | Term.Rel _ | Term.Var _ -> false
  | Term.Select (_, u) | Term.Project (_, u) | Term.Antiproject (_, u) | Term.Rename (_, u)
  | Term.Fix (_, u) ->
    has_cst u
  | Term.Join (a, b) | Term.Antijoin (a, b) | Term.Union (a, b) -> has_cst a || has_cst b

(* A shell value: either still a columnar chain (per-worker batches plus
   pending fused operators) or an interpreter dataset produced by a
   per-subtree fallback. *)
type sval = S_chain of Pipeline.Shell.chain | S_dds of Dds.t

(* ------------------------------------------------------------------ *)
(* Distributed evaluation of non-recursive operators                   *)
(* ------------------------------------------------------------------ *)

module Sh = Pipeline.Shell

let shell_children = Sh.children_of

let rec exec_at ctx ~path (term : Term.t) : Dds.t =
  Trace.span (Trace.get ()) ~cat:"op" (op_label term) @@ fun () ->
  let d =
    metered ctx path Dds.cardinal @@ fun () ->
    let kids = List.mapi (fun i u -> exec_at ctx ~path:(child path i) u) (shell_children term) in
    interp_node ctx ~path term kids
  in
  check_size ctx d

(* One interpreted operator over already-evaluated children ([Fix], [Rel]
   and [Cst] are leaves here — the fixpoint drives its own recursion).
   Shared verbatim between the operator-at-a-time tree walk above and
   per-subtree fallbacks of the compiled shell, so both paths take the
   exact same size decisions and meter identically. *)
and interp_node ctx ~path (term : Term.t) (kids : Dds.t list) : Dds.t =
  match (term, kids) with
  | Rel n, [] -> (
    match Hashtbl.find_opt ctx.cache n with
    | Some d -> d
    | None ->
      let rel =
        match List.assoc_opt n ctx.tables with
        | Some r -> r
        | None -> err "unknown relation %S" n
      in
      let d = Dds.of_rel ctx.config.cluster rel in
      Hashtbl.replace ctx.cache n d;
      d)
  | Cst r, [] -> Dds.of_rel ctx.config.cluster r
  | Var x, _ -> err "free recursive variable %S at top level" x
  | Select (p, _), [ d ] -> Dds.filter p d
  | Project (keep, _), [ d ] -> Dds.distinct (project_narrow d keep)
  | Antiproject (drop, _), [ d ] -> Dds.distinct (project_narrow d (keep_of_drop (Dds.schema d) drop))
  | Rename (m, _), [ d ] -> Dds.rename m d
  | Join _, [ da; db ] ->
    let ca = Dds.cardinal da and cb = Dds.cardinal db in
    let threshold = ctx.config.broadcast_threshold in
    if cb <= ca && cb <= threshold then Dds.join_broadcast da (Dds.collect db)
    else if ca < cb && ca <= threshold then
      let joined = Dds.join_broadcast db (Dds.collect da) in
      (* keep the conventional left-first layout *)
      let out_schema = Schema.append_distinct (Dds.schema da) (Dds.schema db) in
      relayout_dds joined out_schema
    else Dds.join_shuffle da db
  | Antijoin _, [ da; db ] ->
    if Dds.cardinal db <= ctx.config.broadcast_threshold then
      Dds.antijoin_broadcast da (Dds.collect db)
    else Dds.antijoin_shuffle da db
  | Union _, [ da; db ] -> Dds.union_distinct da db
  | Fix (x, body), [] -> exec_fix ctx ~path x body
  | _ -> assert false

and relayout_dds d out_schema =
  if Schema.equal_ordered (Dds.schema d) out_schema then d
  else
    let perm = Schema.reorder_positions ~from:(Dds.schema d) ~into:out_schema in
    Dds.map_partitions ~op:"relayout" ~schema:out_schema
      (fun _ part ->
        let out = Tset.create ~capacity:(Tset.cardinal part) () in
        Tset.iter (fun tu -> ignore (Tset.add out (Tuple.project perm tu))) part;
        out)
      d

(* Evaluate a subterm that is constant in the recursive variable, for
   broadcasting. Terms containing fixpoints are evaluated distributed
   (they can be large intermediate results); plain ones centrally. *)
and eval_const ctx ~path term =
  if Term.fix_count term > 0 then Dds.collect (exec_any ctx ~path term)
  else metered ctx path Rel.cardinal (fun () -> Mura.Eval.eval (driver_env ctx) term)

(* ------------------------------------------------------------------ *)
(* Compiled shell execution                                            *)
(* ------------------------------------------------------------------ *)

(* The non-fixpoint shell around [Fix] nodes lowers onto the same fused
   batch chains as the recursive branches: scans adopt cached columnar
   views, select/project/rename/join-probe accumulate as pending fused
   operators, and materialization happens only where the interpreter
   observes values (size decisions, exchanges, collects). Supportability
   is decided by the typing-only [Pipeline.Shell.analyze] pass before
   anything is evaluated; an unsupported node interprets just itself
   ([interp_node]) over batch<->Tset bridges while its children stay
   compiled. Where the shell engages, results, partition contents,
   iteration counts and all communication counters are identical to the
   interpreter by construction; resource limits are enforced at
   materialization points instead of per node. *)

and shell_on ctx = ctx.config.use_compiled_exec && ctx.actuals = None

(* Whole-plan entry: the compiled shell when it applies, the interpreter
   otherwise. Leaves and bare fixpoints have no shell to compile — both
   paths are the same code, so skip the batch bridges. *)
and exec_any ctx ~path (term : Term.t) : Dds.t =
  if shell_on ctx then
    match term with
    | Term.Rel _ | Term.Cst _ | Term.Var _ | Term.Fix _ -> exec_at ctx ~path term
    | _ -> shell_dds ctx ~path term
  else exec_at ctx ~path term

and shell_static ctx (term : Term.t) : Sh.static =
  let analyze () =
    let tenv = typing_env ctx in
    Sh.analyze ~typing:(fun t -> Mura.Typing.infer tenv t) term
  in
  if has_cst term then analyze ()
  else begin
    let key = Term.to_string term in
    match Hashtbl.find_opt ctx.shell_statics key with
    | Some st -> st
    | None ->
      if Hashtbl.length ctx.shell_statics >= 512 then Hashtbl.reset ctx.shell_statics;
      let st = analyze () in
      Hashtbl.replace ctx.shell_statics key st;
      st
  end

and shell_dds ctx ~path (term : Term.t) : Dds.t =
  shell_to_dds ctx (shell_exec ctx ~path (shell_static ctx term) term)

(* Materialize a chain, enforcing the tuple limit the interpreter checks
   per node. *)
and shell_mat ctx c =
  let c = Sh.materialize ctx.config.cluster c in
  if Sh.rows c > ctx.config.max_tuples then
    raise (Resource_limit (Printf.sprintf "dataset exceeds %d tuples" ctx.config.max_tuples));
  c

and shell_chain ctx = function
  | S_chain c -> c
  | S_dds d -> Sh.of_dds ctx.config.cluster d

and shell_to_dds ctx = function
  | S_dds d -> d
  | S_chain c -> Sh.to_dds ctx.config.cluster (shell_mat ctx c)

(* [Dds.repartition]'s no-op rule over a chain. *)
and shell_repart_if ctx c ~by =
  if Dds.same_hashing (Sh.part c) (Dds.Hashed by) then c
  else Sh.repartition ctx.config.cluster c ~by

(* [Dds.distinct] over a chain: co-located set partitions are already
   distinct (and the chain stays pending — dedup happens at the next
   materialization); otherwise a metered exchange by the full schema. *)
and shell_distinct ctx c =
  match Sh.part c with
  | Dds.Hashed _ -> S_chain c
  | Dds.Arbitrary ->
    let c = shell_mat ctx c in
    S_chain (Sh.repartition ctx.config.cluster c ~by:(Schema.cols (Sh.schema c)))

and shell_exec ctx ~path (st : Sh.static) (term : Term.t) : sval =
  Trace.span (Trace.get ()) ~cat:"op" (op_label term) @@ fun () ->
  let kid i =
    match (List.nth_opt st.Sh.s_children i, List.nth_opt (shell_children term) i) with
    | Some cst, Some u -> shell_exec ctx ~path:(child path i) cst u
    | _ -> assert false
  in
  match st.Sh.s_verdict with
  | Sh.Interp reason ->
    tele_fallback ~reason ~site:"shell";
    let kids =
      List.mapi (fun i _ -> shell_to_dds ctx (kid i)) (shell_children term)
    in
    S_dds (check_size ctx (interp_node ctx ~path term kids))
  | Sh.Compiled -> (
    match term with
    | Term.Var _ -> assert false (* [analyze] always interprets free variables *)
    | Term.Rel n ->
      (* metered scan through the session cache, plus a columnar view of
         the same partitions cached alongside (chains never mutate their
         base batches, so the view is shared safely) *)
      let d = interp_node ctx ~path term [] in
      let batches =
        match Hashtbl.find_opt ctx.bcache n with
        | Some b -> b
        | None ->
          let b = Sh.batches (Sh.of_dds ctx.config.cluster d) in
          Hashtbl.replace ctx.bcache n b;
          b
      in
      S_chain (Sh.of_batches ~schema:(Dds.schema d) ~part:(Dds.partitioning d) batches)
    | Term.Cst _ -> S_chain (Sh.of_dds ctx.config.cluster (interp_node ctx ~path term []))
    | Term.Fix (x, body) ->
      S_chain (Sh.of_dds ctx.config.cluster (check_size ctx (exec_fix ctx ~path x body)))
    | Term.Select (p, _) ->
      let c = shell_chain ctx (kid 0) in
      S_chain (Sh.filter (Pred.compile (Sh.schema c) p) c)
    | Term.Project (keep, _) ->
      let c = shell_chain ctx (kid 0) in
      shell_distinct ctx (Sh.project keep c)
    | Term.Antiproject (drop, _) ->
      let c = shell_chain ctx (kid 0) in
      shell_distinct ctx (Sh.project (keep_of_drop (Sh.schema c) drop) c)
    | Term.Rename (m, _) ->
      let c = shell_chain ctx (kid 0) in
      S_chain (Sh.rename_cols m c)
    | Term.Union _ ->
      let a = shell_mat ctx (shell_chain ctx (kid 0)) in
      let b = shell_mat ctx (shell_chain ctx (kid 1)) in
      shell_distinct ctx (shell_mat ctx (Sh.union ctx.config.cluster a b))
    | Term.Join _ ->
      let a = shell_mat ctx (shell_chain ctx (kid 0)) in
      let b = shell_mat ctx (shell_chain ctx (kid 1)) in
      shell_join ctx a b
    | Term.Antijoin _ ->
      let a = shell_mat ctx (shell_chain ctx (kid 0)) in
      let b = shell_mat ctx (shell_chain ctx (kid 1)) in
      shell_antijoin ctx a b)

(* Mirror of the interpreter's join: same size decisions, same broadcast
   and collect metering, same output layout and partitioning — but the
   probe side becomes a pending fused operator instead of a materialized
   intermediate. *)
and shell_join ctx sa sb : sval =
  let cluster = ctx.config.cluster in
  let sch_a = Sh.schema sa and sch_b = Sh.schema sb in
  let ca = Sh.rows sa and cb = Sh.rows sb in
  let threshold = ctx.config.broadcast_threshold in
  let bcast_probe rel =
    (* driver-side collect + broadcast of [rel], probed from every
       worker; with no shared column this is the broadcast cartesian *)
    let rs = Rel.schema rel in
    fun ~base_schema ->
      let shared = Schema.common base_schema rs in
      let extra = List.filter (fun c -> not (Schema.mem base_schema c)) (Schema.cols rs) in
      let extra_pos = Schema.positions rs extra in
      let probe =
        match shared with
        | [] ->
          let all = List.of_seq (Tset.to_seq (Rel.tuples rel)) in
          fun _w _key -> all
        | _ ->
          let idx = Index.build rs shared (Tset.to_seq (Rel.tuples rel)) in
          fun _w key -> Index.probe idx key
      in
      (Schema.positions base_schema shared, extra_pos, probe)
  in
  if cb <= ca && cb <= threshold then begin
    let rel_b = Dds.collect (Sh.to_dds cluster sb) in
    ignore (Dds.broadcast cluster rel_b);
    let key_pos, extra_pos, probe = bcast_probe rel_b ~base_schema:sch_a in
    let out_schema = Schema.append_distinct sch_a (Rel.schema rel_b) in
    S_chain (Sh.probe sa ~key_pos ~extra_pos ~out_schema ~probe)
  end
  else if ca < cb && ca <= threshold then begin
    (* broadcast [a], probe from [b] (b-first layout), then the fused
       relayout back to the conventional left-first layout *)
    let rel_a = Dds.collect (Sh.to_dds cluster sa) in
    ignore (Dds.broadcast cluster rel_a);
    let key_pos, extra_pos, probe = bcast_probe rel_a ~base_schema:sch_b in
    let bfirst = Schema.append_distinct sch_b (Rel.schema rel_a) in
    let afirst = Schema.append_distinct sch_a sch_b in
    let c = Sh.probe sb ~key_pos ~extra_pos ~out_schema:bfirst ~probe in
    if Schema.equal_ordered bfirst afirst then S_chain c
    else S_chain (Sh.set_part (Sh.reorder ~into:afirst c) Dds.Arbitrary)
  end
  else begin
    let shared = Schema.common sch_a sch_b in
    match shared with
    | [] ->
      (* cartesian over two above-threshold sides: rare and wide — hand
         the node to the interpreter *)
      tele_fallback ~reason:"cartesian_shuffle" ~site:"shell";
      let da = Sh.to_dds cluster sa and db = Sh.to_dds cluster sb in
      S_dds (check_size ctx (Dds.join_shuffle da db))
    | _ ->
      let sa = shell_repart_if ctx sa ~by:shared in
      let sb = shell_repart_if ctx sb ~by:shared in
      let out_schema = Schema.append_distinct sch_a sch_b in
      let extra = List.filter (fun c -> not (Schema.mem sch_a c)) (Schema.cols sch_b) in
      let extra_pos = Schema.positions sch_b extra in
      let b_batches = Sh.batches sb in
      (* per-worker build side, indexed lazily: slot [w] is only ever
         touched by worker [w]'s probe chain *)
      let idxs = Array.make (Array.length b_batches) None in
      let probe w key =
        let idx =
          match idxs.(w) with
          | Some i -> i
          | None ->
            let i = Index.build sch_b shared (Sh.batch_tuples b_batches.(w)) in
            idxs.(w) <- Some i;
            i
        in
        Index.probe idx key
      in
      S_chain
        (Sh.set_part
           (Sh.probe sa ~key_pos:(Schema.positions sch_a shared) ~extra_pos ~out_schema ~probe)
           (Dds.Hashed shared))
  end

and shell_antijoin ctx sa sb : sval =
  let cluster = ctx.config.cluster in
  let sch_a = Sh.schema sa and sch_b = Sh.schema sb in
  if Sh.rows sb <= ctx.config.broadcast_threshold then begin
    (* [Dds.antijoin_broadcast]: the broadcast is metered before the
       shared-column cases split *)
    let rel_b = Dds.collect (Sh.to_dds cluster sb) in
    ignore (Dds.broadcast cluster rel_b);
    let rs = Rel.schema rel_b in
    match Schema.common sch_a rs with
    | [] -> if Rel.is_empty rel_b then S_chain sa else S_chain (Sh.empty_like sa)
    | shared ->
      let idx = Index.build rs shared (Tset.to_seq (Rel.tuples rel_b)) in
      S_chain
        (Sh.antiprobe sa ~key_pos:(Schema.positions sch_a shared) ~mem:(fun _w key ->
             Index.mem idx key))
  end
  else begin
    match Schema.common sch_a sch_b with
    | [] -> if Sh.rows sb = 0 then S_chain sa else S_chain (Sh.empty_like sa)
    | shared ->
      let sa = shell_repart_if ctx sa ~by:shared in
      let sb = shell_repart_if ctx sb ~by:shared in
      let b_batches = Sh.batches sb in
      let b_key = Schema.positions sch_b shared in
      let keysets = Array.make (Array.length b_batches) None in
      let mem w key =
        let ks =
          match keysets.(w) with
          | Some k -> k
          | None ->
            let b = b_batches.(w) in
            let k = Tset.create ~capacity:(Batch.length b) () in
            Seq.iter (fun tu -> ignore (Tset.add k (Tuple.project b_key tu))) (Sh.batch_tuples b);
            keysets.(w) <- Some k;
            k
        in
        Tset.mem ks key
      in
      S_chain
        (Sh.set_part
           (Sh.antiprobe sa ~key_pos:(Schema.positions sch_a shared) ~mem)
           (Dds.Hashed shared))
  end

(* ------------------------------------------------------------------ *)
(* Recursive-branch compilation                                        *)
(* ------------------------------------------------------------------ *)

(* Compile a union-free recursive branch into a function of the delta.
   [join_mode] decides how joins against the constant side execute:
   `Broadcast (P_plw: metered once here, then narrow per iteration) or
   `Shuffle (P_gld: the constant side is distributed and pre-partitioned;
   the delta side is shuffled on every application). *)
and compile_branch ctx ~var ~join_mode ~path branch : Dds.t -> Dds.t =
  (* Per-iteration metering: each application of the compiled closure
     accumulates its output size and time at the node's path, so the
     annotated tree reports totals over all fixpoint iterations. *)
  let wrap path f =
    match ctx.actuals with None -> f | Some _ -> fun delta -> metered ctx path Dds.cardinal (fun () -> f delta)
  in
  let rec go ~path (t : Term.t) : Dds.t -> Dds.t =
    if not (Term.has_free_var var t) then begin
      match join_mode with
      | `Broadcast ->
        let r = eval_const ctx ~path t in
        let d = Dds.of_rel ctx.config.cluster r in
        fun _ -> d
      | `Shuffle ->
        let d = exec_any ctx ~path t in
        fun _ -> d
    end
    else
      wrap path
      @@
      match t with
      | Term.Var x when String.equal x var -> fun delta -> delta
      | Term.Var x -> err "foreign recursive variable %S in branch" x
      | Term.Select (p, u) ->
        let f = go ~path:(child path 0) u in
        fun delta -> Dds.filter p (f delta)
      | Term.Project (keep, u) ->
        let f = go ~path:(child path 0) u in
        fun delta -> project_narrow (f delta) keep
      | Term.Antiproject (drop, u) ->
        let f = go ~path:(child path 0) u in
        fun delta ->
          let d = f delta in
          project_narrow d (keep_of_drop (Dds.schema d) drop)
      | Term.Rename (m, u) ->
        let f = go ~path:(child path 0) u in
        fun delta -> Dds.rename m (f delta)
      | Term.Join (a, b) ->
        (* Linearity: exactly one side mentions the variable. The output
           layout (which side comes first) is irrelevant: set operations
           reconcile layouts by column name. *)
        let (recursive, rpath), (const, cpath) =
          if Term.has_free_var var a then ((a, child path 0), (b, child path 1))
          else ((b, child path 1), (a, child path 0))
        in
        let f = go ~path:rpath recursive in
        (match join_mode with
        | `Broadcast when ctx.config.use_prepared_broadcast ->
          (* prepared handle: index over the broadcast side built once at
             the first iteration (the delta schema is loop-invariant)
             and probed by every later one *)
          let bc = Dds.broadcast ctx.config.cluster (eval_const ctx ~path:cpath const) in
          let prepared = ref None in
          fun delta ->
            let left = f delta in
            let p =
              match !prepared with
              | Some p -> p
              | None ->
                let p = Dds.prepare_bcast ~for_schema:(Dds.schema left) bc in
                prepared := Some p;
                p
            in
            Dds.join_bcast_prepared left p
        | `Broadcast ->
          let bc = Dds.broadcast ctx.config.cluster (eval_const ctx ~path:cpath const) in
          fun delta -> Dds.join_bcast (f delta) bc
        | `Shuffle ->
          let const_dds = exec_any ctx ~path:cpath const in
          (* memoize the co-partitioned constant side across iterations:
             Spark keeps shuffle files of the stable side too *)
          let prepared = ref None in
          fun delta ->
            let left = f delta in
            let shared = Schema.common (Dds.schema left) (Dds.schema const_dds) in
            let const_part =
              match !prepared with
              | Some d -> d
              | None ->
                let d =
                  match shared with
                  | [] -> const_dds
                  | _ -> Dds.repartition ~by:shared const_dds
                in
                prepared := Some d;
                d
            in
            Dds.join_shuffle left const_part)
      | Term.Antijoin (a, b) ->
        if Term.has_free_var var b then err "fixpoint on %s is not positive" var;
        let f = go ~path:(child path 0) a in
        (match join_mode with
        | `Broadcast when ctx.config.use_prepared_broadcast ->
          let bc = Dds.broadcast ctx.config.cluster (eval_const ctx ~path:(child path 1) b) in
          let prepared = ref None in
          fun delta ->
            let left = f delta in
            let p =
              match !prepared with
              | Some p -> p
              | None ->
                let p = Dds.prepare_bcast ~for_schema:(Dds.schema left) bc in
                prepared := Some p;
                p
            in
            Dds.antijoin_bcast_prepared left p
        | `Broadcast ->
          let bc = Dds.broadcast ctx.config.cluster (eval_const ctx ~path:(child path 1) b) in
          fun delta -> Dds.antijoin_bcast (f delta) bc
        | `Shuffle ->
          let const_dds = exec_any ctx ~path:(child path 1) b in
          fun delta -> Dds.antijoin_shuffle (f delta) const_dds)
      | Term.Union _ -> err "internal: union inside a normalised branch"
      | Term.Fix (x, _) -> err "internal: recursive variable %s under nested fixpoint %s" var x
      | Term.Rel _ | Term.Cst _ -> assert false (* constant, handled above *)
  in
  go ~path branch

(* ------------------------------------------------------------------ *)
(* Fixpoint plans                                                      *)
(* ------------------------------------------------------------------ *)

and exec_fix ctx ~path var body : Dds.t =
  let consts, recs = Fcond.split ~var body in
  let n_consts = List.length consts in
  (* child [i] of the Fix node: constant branches first, then the
     recursive ones, in [Fcond.split] order *)
  let branch_path i = child path (n_consts + i) in
  (match Fcond.(is_positive ~var body, is_linear ~var body, is_non_mutually_recursive ~var body)
   with
  | true, true, true -> ()
  | false, _, _ -> raise (Fcond.Not_fcond (Printf.sprintf "fixpoint on %s not positive" var))
  | _, false, _ -> raise (Fcond.Not_fcond (Printf.sprintf "fixpoint on %s not linear" var))
  | _, _, false -> raise (Fcond.Not_fcond (Printf.sprintf "fixpoint on %s mutually recursive" var)));
  match List.mapi (fun i c -> exec_any ctx ~path:(child path i) c) consts with
  | [] -> raise (Fcond.Not_fcond (Printf.sprintf "fixpoint on %s has no constant part" var))
  | d0 :: drest -> (
    let init = List.fold_left Dds.set_union_local d0 drest in
    match recs with
    | [] -> Dds.distinct init
    | _ ->
      let stable =
        try Mura.Stabilizer.stable_columns (typing_env ctx) ~var body
        with Mura.Typing.Type_error _ -> []
      in
      let plan =
        match ctx.config.force_plan with
        | Some p -> p
        | None -> if stable <> [] then P_plw_s else P_gld
      in
      let partitioned_by = if ctx.config.use_stable_partitioning then stable else [] in
      let result, iterations, deltas =
        Trace.span (Trace.get ()) ~cat:"fixpoint"
          ~attrs:
            [
              ("var", Trace.Str var);
              ("plan", Trace.Str (plan_name plan));
              ("stable", Trace.Str (String.concat "," stable));
            ]
          "fixpoint"
        @@ fun () ->
        match plan with
        | P_gld -> run_gld ctx ~var ~init ~recs ~branch_path
        | P_plw_s -> run_plw_s ctx ~var ~init ~recs ~stable:partitioned_by ~branch_path
        | P_plw_pg -> run_plw_pg ctx ~var ~body ~init ~stable:partitioned_by ~path
      in
      ctx.rpt.fixpoints <-
        {
          var;
          fix_path = path;
          plan;
          stable;
          partitioned_by;
          iterations;
          result_size = Dds.cardinal result;
          deltas;
        }
        :: ctx.rpt.fixpoints;
      (let reg = Telemetry.get () in
       if Telemetry.enabled reg then begin
         let labels = [ ("plan", plan_name plan) ] in
         Telemetry.inc reg ~labels "exec_fixpoints_total";
         Telemetry.observe reg ~labels "exec_fixpoint_iterations" (float_of_int iterations);
         Telemetry.observe reg ~labels "exec_fixpoint_result_rows"
           (float_of_int (Dds.cardinal result))
       end);
      result)

(* Shared semi-naive driver of P_gld and P_plw^s: produce (branch
   closures on the delta) -> check_size -> relayout -> per-iteration
   repartition ([per_iter]: the only step the two plans differ on — a
   shuffle for P_gld, the identity for P_plw^s) -> delta maintenance.

   Delta maintenance runs fused when [use_fused_delta] is on: one
   [Dds.diff_union_in_place] stage that mutates the accumulator's
   partitions in place. The accumulator must therefore be loop private —
   [x0_private] says whether the caller's initial repartition actually
   allocated fresh partitions; when it no-opped (so [x0] may alias a
   cached table), the fused path takes a one-time defensive copy. The
   unfused diff-then-union pair is kept verbatim as the knob-off
   baseline: with [use_fused_delta = false] this loop is step-for-step
   the pre-fusion code path. *)
and run_semi_naive ctx ~var ~plan_label ~x0 ~x0_private ?delta0 ~branch_fns ~per_iter () =
  let m = Cluster.metrics ctx.config.cluster in
  let fused = ctx.config.use_fused_delta in
  let x = ref (if fused && not x0_private then Dds.copy_parts x0 else x0) in
  (* [delta0] resumes the loop with a given frontier (already absorbed
     into [x0] by the caller) — the incremental-maintenance entry *)
  let delta = ref (match delta0 with Some d -> d | None -> !x) in
  let iterations = ref 0 in
  let deltas = ref [] in
  let continue = ref true in
  while !continue do
    incr iterations;
    if !iterations > ctx.config.max_iterations then
      raise (Resource_limit (Printf.sprintf "max iterations exceeded (%s)" plan_label));
    Trace.span (Trace.get ()) ~cat:"fixpoint"
      ~attrs:[ ("var", Trace.Str var); ("i", Trace.Int !iterations) ]
      "iteration"
    @@ fun () ->
    Metrics.record_superstep m;
    let produced =
      match List.map (fun f -> f !delta) branch_fns with
      | [] -> assert false
      | d0 :: rest -> List.fold_left Dds.set_union_local d0 rest
    in
    let produced = check_size_dds ctx produced in
    let produced = relayout_dds produced (Dds.schema !x) in
    let produced = per_iter produced in
    if fused then begin
      let x', fresh = Dds.diff_union_in_place ~acc:!x ~produced in
      let fresh_n = Dds.cardinal fresh in
      deltas := fresh_n :: !deltas;
      if fresh_n = 0 then continue := false
      else begin
        x := check_size_dds ctx x';
        delta := fresh
      end
    end
    else begin
      let fresh = Dds.set_diff_local produced !x in
      let fresh_n = Dds.cardinal fresh in
      deltas := fresh_n :: !deltas;
      if fresh_n = 0 then continue := false
      else begin
        x := check_size_dds ctx (Dds.set_union_local !x fresh);
        delta := fresh
      end
    end
  done;
  (!x, !iterations, List.rev !deltas)

(* P_gld: driver loop over distributed wide operations. The accumulated
   result is kept hash-partitioned by the full schema so that the
   per-iteration difference costs exactly one shuffle of the produced
   tuples (plus whatever the joins shuffle). With [use_shuffle_dedup] a
   seen filter rides on the per-iteration repartition, dropping
   re-derived tuples map-side before they are bucketed or metered. *)
(* Try the compiled columnar core first ([Pipeline]): a static planning
   pass decides supportability before any constant side is evaluated, so
   a [None] fallback to the interpreted loop costs nothing and never
   double-meters. EXPLAIN ANALYZE forces the interpreter — per-operator
   actuals only exist on the operator-at-a-time path. *)
and compiled_pipeline ctx ~var ~join_mode ~init ~recs ~branch_path =
  if (not ctx.config.use_compiled_exec) || ctx.actuals <> None then None
  else begin
    let tenv = typing_env ctx in
    let typing t = Mura.Typing.infer tenv t in
    match
      Pipeline.compile ~cluster:ctx.config.cluster ~var ~join_mode ~x_schema:(Dds.schema init)
        ~typing
        ~exec_const:(fun ~path t -> exec_any ctx ~path t)
        ~eval_const:(fun ~path t -> eval_const ctx ~path t)
        ~branch_path recs
    with
    | Some cp -> Some cp
    | None ->
      (match Pipeline.reject_reason ~var ~join_mode ~typing ~x_schema:(Dds.schema init) recs with
      | Some reason -> tele_fallback ~reason ~site:"fix_branch"
      | None -> ());
      None
  end

and run_gld ctx ~var ~init ~recs ~branch_path =
  let schema_cols = Schema.cols (Dds.schema init) in
  match compiled_pipeline ctx ~var ~join_mode:`Shuffle ~init ~recs ~branch_path with
  | Some cp ->
    let seen =
      if ctx.config.use_shuffle_dedup then Some (Dds.seen_filter ctx.config.cluster) else None
    in
    let x0 = Dds.repartition ?seen ~by:schema_cols init in
    Pipeline.run cp ~var ~plan_label:"P_gld" ~x0 ~x0_private:(x0 != init)
      ~per_iter_by:(Some schema_cols) ?seen ~max_iterations:ctx.config.max_iterations
      ~max_tuples:ctx.config.max_tuples
      ~limit:(fun msg -> Resource_limit msg)
      ()
  | None ->
    let branch_fns =
      List.mapi
        (fun i b -> compile_branch ctx ~var ~join_mode:`Shuffle ~path:(branch_path i) b)
        recs
    in
    let seen =
      if ctx.config.use_shuffle_dedup then Some (Dds.seen_filter ctx.config.cluster) else None
    in
    let x0 = Dds.repartition ?seen ~by:schema_cols init in
    run_semi_naive ctx ~var ~plan_label:"P_gld" ~x0 ~x0_private:(x0 != init) ~branch_fns
      ~per_iter:(fun produced -> Dds.repartition ?seen ~by:schema_cols produced)
      ()

(* P_plw^s: repartition the constant part (by the stable columns when
   they exist), broadcast the variable part's relations once, then loop
   with narrow operations only. No distinct at the end when a stable
   repartitioning was applied (the local fixpoints are disjoint). *)
and run_plw_s ctx ~var ~init ~recs ~stable ~branch_path =
  let compiled = compiled_pipeline ctx ~var ~join_mode:`Broadcast ~init ~recs ~branch_path in
  let x, iterations, deltas =
    match compiled with
    | Some cp ->
      let x0 = match stable with [] -> init | _ -> Dds.repartition ~by:stable init in
      Pipeline.run cp ~var ~plan_label:"P_plw^s" ~x0 ~x0_private:(x0 != init) ~per_iter_by:None
        ~max_iterations:ctx.config.max_iterations ~max_tuples:ctx.config.max_tuples
        ~limit:(fun msg -> Resource_limit msg)
        ()
    | None ->
      let branch_fns =
        List.mapi
          (fun i b -> compile_branch ctx ~var ~join_mode:`Broadcast ~path:(branch_path i) b)
          recs
      in
      let x0 = match stable with [] -> init | _ -> Dds.repartition ~by:stable init in
      run_semi_naive ctx ~var ~plan_label:"P_plw^s" ~x0 ~x0_private:(x0 != init) ~branch_fns
        ~per_iter:(fun produced -> produced)
        ()
  in
  let result =
    match stable with
    | _ :: _ ->
      (* disjointness proof of Sec. IV-A2: no distinct needed; assert the
         partitioning fact for downstream operators *)
      Dds.map_partitions ~partitioning:(Dds.Hashed stable) ~schema:(Dds.schema x)
        (fun _ part -> part)
        x
    | [] -> Dds.distinct x
  in
  (result, iterations, deltas)

(* P_plw^pg: same distribution scheme; each worker runs its whole local
   fixpoint inside one mapPartitions call against its local database. *)
and run_plw_pg ctx ~var ~body ~init ~stable ~path =
  let m = Cluster.metrics ctx.config.cluster in
  let init = match stable with [] -> init | _ -> Dds.repartition ~by:stable init in
  let seed_name = "__seed" in
  (* Broadcast every database relation the variable part mentions. *)
  let rels_needed = Term.free_rels body in
  let broadcast_tables =
    List.filter_map
      (fun n ->
        match List.assoc_opt n ctx.tables with
        | Some r ->
          let records = Rel.cardinal r * max 1 (Cluster.workers ctx.config.cluster - 1) in
          Metrics.record_broadcast m ~records;
          Trace.instant (Trace.get ()) ~cat:"shuffle"
            ~attrs:[ ("op", Trace.Str "plw_pg.table"); ("records", Trace.Int records) ]
            "broadcast";
          Some (n, r)
        | None -> None)
      rels_needed
  in
  let consts, recs_b = Fcond.split ~var body in
  ignore consts;
  let local_term = Term.Fix (var, Term.union_all (Term.Rel seed_name :: recs_b)) in
  Metrics.record_superstep m;
  let schema = Dds.schema init in
  (* the fixpoint is shipped to the local databases as SQL text (a WITH
     RECURSIVE statement), as the paper's PostgreSQL backend receives
     it; terms outside the SQL dialect fall back to direct plans.
     EXPLAIN ANALYZE forces the direct plans: the SQL engine exposes no
     per-operator counters, the volcano executor does. Both paths compute
     the same relation, so results are unchanged. *)
  let analyzing = ctx.actuals <> None in
  let local_env =
    (seed_name, schema) :: List.map (fun (n, r) -> (n, Rel.schema r)) broadcast_tables
  in
  (* compiled local path: a driver-side, typing-only lowering of the
     local fixpoint onto batch chains ([Localdb.Bexec]); every worker
     then runs the same compiled loop. The SQL and volcano executors
     stay as the oracle fallbacks (and EXPLAIN ANALYZE forces them —
     only the volcano path exposes per-operator counters). *)
  let bexec_plan =
    if analyzing || not ctx.config.use_compiled_exec then None
    else
      match Localdb.Bexec.plan ~env:local_env local_term with
      | Ok p -> Some p
      | Error reason ->
        tele_fallback ~reason ~site:"plw_pg_local";
        None
  in
  let sql_text =
    if analyzing || Option.is_some bexec_plan then None
    else
      let tenv = Mura.Typing.env local_env in
      match Localdb.To_sql.of_term tenv local_term with
      | sql -> Some sql
      | exception (Localdb.To_sql.Unsupported _ | Mura.Typing.Type_error _) -> None
  in
  if analyzing then Hashtbl.replace ctx.local_plans path local_term;
  let merge_local_actuals acts =
    Mutex.lock ctx.locals_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock ctx.locals_mutex) @@ fun () ->
    let tbl =
      match Hashtbl.find_opt ctx.local_actuals path with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 32 in
        Hashtbl.replace ctx.local_actuals path tbl;
        tbl
    in
    List.iter
      (fun (a : Localdb.Instance.actual) ->
        match Hashtbl.find_opt tbl a.path with
        | Some acc ->
          acc.l_rows <- acc.l_rows + a.rows;
          acc.l_ns <- Float.max acc.l_ns a.ns;
          acc.l_rounds <- max acc.l_rounds a.rounds;
          acc.l_workers <- acc.l_workers + 1
        | None ->
          Hashtbl.replace tbl a.path
            { l_rows = a.rows; l_ns = a.ns; l_rounds = a.rounds; l_workers = 1 })
      acts
  in
  let result =
    Trace.span (Trace.get ()) ~cat:"fixpoint"
      ~attrs:[ ("var", Trace.Str var); ("i", Trace.Int 1) ]
      "iteration"
    @@ fun () ->
    Dds.map_partitions ~op:"local_fixpoint"
      ~partitioning:(match stable with [] -> Dds.Arbitrary | _ -> Dds.Hashed stable)
      ~schema
      (fun _ part ->
        let db = Localdb.Instance.create () in
        List.iter (fun (n, r) -> Localdb.Instance.register db n r) broadcast_tables;
        Localdb.Instance.register db seed_name (Rel.of_tset schema (Tset.copy part));
        let local_result =
          match bexec_plan with
          | Some p -> Rel.relayout schema (Localdb.Bexec.run p db)
          | None -> (
            match sql_text with
            | Some sql -> Relation.Rel.relayout schema (Localdb.Sql.query db sql)
            | None ->
              if analyzing then begin
                let r, acts = Localdb.Instance.query_analyzed db local_term in
                merge_local_actuals acts;
                r
              end
              else Localdb.Instance.query db local_term)
        in
        Rel.tuples local_result)
      init
  in
  let result = match stable with [] -> Dds.distinct result | _ -> result in
  (result, 1, [])

and check_size_dds ctx d = check_size ctx d

let exec_dds ctx term = exec_any ctx ~path:"0" term
let run ctx term = Dds.collect (exec_dds ctx term)

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)
(* ------------------------------------------------------------------ *)

let explain ctx term =
  let buf = Buffer.create 256 in
  let tenv = typing_env ctx in
  let line indent fmt =
    Format.kasprintf
      (fun s ->
        Buffer.add_string buf (String.make (2 * indent) ' ');
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let typing t = Mura.Typing.infer tenv t in
  (* Per-subtree shell verdicts (only when the compiled shell can engage):
     each node line carries [compiled] or [interpreted: reason]. *)
  let shell_st =
    if ctx.config.use_compiled_exec then
      match Pipeline.Shell.analyze ~typing term with
      | st -> Some st
      | exception _ -> None
    else None
  in
  let ann st =
    match st with
    | None -> ""
    | Some s -> (
      match s.Pipeline.Shell.s_verdict with
      | Pipeline.Shell.Compiled -> " [compiled]"
      | Pipeline.Shell.Interp r -> Printf.sprintf " [interpreted: %s]" r)
  in
  let kid st i =
    match st with
    | Some s -> List.nth_opt s.Pipeline.Shell.s_children i
    | None -> None
  in
  (* Per-branch fixpoint verdicts: same static passes the executor runs
     ([Pipeline.reject_reason] slugs for P_gld / P_plw^s branches,
     [Localdb.Bexec.plan] for the P_plw^pg local plan). *)
  let branch_lines indent x body plan consts recs =
    if not ctx.config.use_compiled_exec then ()
    else
      match plan with
      | P_plw_pg -> (
        let env =
          ("__seed", typing (Term.union_all consts))
          :: List.filter_map
               (fun n -> Option.map (fun r -> (n, Rel.schema r)) (List.assoc_opt n ctx.tables))
               (Term.free_rels body)
        in
        let local_term = Term.Fix (x, Term.union_all (Term.Rel "__seed" :: recs)) in
        match Localdb.Bexec.plan ~env local_term with
        | Ok _ -> line indent "local plan: compiled batch fixpoint"
        | Error r -> line indent "local plan: interpreted (%s)" r
        | exception _ -> line indent "local plan: interpreted (typing)")
      | P_gld | P_plw_s -> (
        let join_mode = match plan with P_gld -> `Shuffle | _ -> `Broadcast in
        match typing (Term.union_all consts) with
        | x_schema ->
          List.iteri
            (fun i b ->
              match Pipeline.branch_verdict ~var:x ~join_mode ~typing ~x_schema b with
              | Ok () -> line indent "branch %d: compiled" i
              | Error r -> line indent "branch %d: interpreted (%s)" i r)
            recs
        | exception _ -> ())
  in
  let rec go indent st (t : Term.t) =
    match t with
    | Term.Rel n -> line indent "TableScan %s%s" n (ann st)
    | Term.Cst r -> line indent "LocalRelation (%d tuples)%s" Rel.(cardinal r) (ann st)
    | Term.Var x -> line indent "RecursiveRef %s%s" x (ann st)
    | Term.Select (p, u) ->
      line indent "Filter [%s]%s" (Relation.Pred.to_string p) (ann st);
      go (indent + 1) (kid st 0) u
    | Term.Project (c, u) ->
      line indent "Project [%s] + Distinct%s" (String.concat "," c) (ann st);
      go (indent + 1) (kid st 0) u
    | Term.Antiproject (c, u) ->
      line indent "DropColumns [%s] + Distinct%s" (String.concat "," c) (ann st);
      go (indent + 1) (kid st 0) u
    | Term.Rename (m, u) ->
      line indent "Rename [%s]%s"
        (String.concat "," (List.map (fun (o, n) -> o ^ "->" ^ n) m))
        (ann st);
      go (indent + 1) (kid st 0) u
    | Term.Join (a, b) ->
      line indent "Join (broadcast if a side <= %d tuples, else shuffle)%s"
        ctx.config.broadcast_threshold (ann st);
      go (indent + 1) (kid st 0) a;
      go (indent + 1) (kid st 1) b
    | Term.Antijoin (a, b) ->
      line indent "AntiJoin (broadcast/shuffle by size)%s" (ann st);
      go (indent + 1) (kid st 0) a;
      go (indent + 1) (kid st 1) b
    | Term.Union (a, b) ->
      line indent "Union + Distinct%s" (ann st);
      go (indent + 1) (kid st 0) a;
      go (indent + 1) (kid st 1) b
    | Term.Fix (x, body) ->
      let stable =
        try Mura.Stabilizer.stable_columns tenv ~var:x body
        with Mura.Typing.Type_error _ | Fcond.Not_fcond _ -> []
      in
      let plan =
        match ctx.config.force_plan with
        | Some p -> p
        | None -> if stable <> [] then P_plw_s else P_gld
      in
      let partition_note =
        match (stable, ctx.config.use_stable_partitioning) with
        | [], _ -> "no stable column: final distinct required"
        | cols, true -> Printf.sprintf "repartition constant part by [%s]" (String.concat "," cols)
        | _, false -> "stable-column repartitioning disabled"
      in
      line indent "Fixpoint %s: plan=%s, stable=[%s], %s" x (plan_name plan)
        (String.concat "," stable) partition_note;
      (match Fcond.split ~var:x body with
      | consts, recs ->
        line (indent + 1) "constant part:";
        List.iter (go (indent + 2) None) consts;
        line (indent + 1) "variable part (%s):"
          (match plan with
          | P_gld -> "re-evaluated with shuffles each iteration"
          | P_plw_s -> "broadcast relations, narrow iterations"
          | P_plw_pg -> "shipped to per-worker local databases as SQL");
        List.iter (go (indent + 2) None) recs;
        (try branch_lines (indent + 1) x body plan consts recs
         with _ -> ())
      | exception Fcond.Not_fcond msg -> line (indent + 1) "! not F_cond: %s" msg)
  in
  line 0 "Execution: %s"
    (if ctx.config.use_compiled_exec then
       "compiled columnar pipelines (fused batch operators; interpreter fallback)"
     else "interpreted operator-at-a-time");
  line 0 "Exchange: %s%s, %d workers"
    (if Cluster.pooled_shuffle ctx.config.cluster then
       "two-phase pooled shuffle (map/merge on worker pool)"
     else "sequential driver-side")
    (if Cluster.pooled_shuffle ctx.config.cluster && Cluster.adaptive_shuffle ctx.config.cluster
     then ", adaptive per-stage mode"
     else "")
    (Cluster.workers ctx.config.cluster);
  line 0 "Fixpoint delta: %s%s"
    (if ctx.config.use_fused_delta then "fused in-place diff+union"
     else "unfused diff/union (baseline)")
    (if ctx.config.use_shuffle_dedup then ", iteration-shuffle dedup on"
     else ", iteration-shuffle dedup off");
  go 0 shell_st term;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE                                                     *)
(* ------------------------------------------------------------------ *)

module Analyze = struct
  type local_op = {
    l_path : string;
    l_label : string;
    l_rows_total : int;
    l_ns_max : float;
    l_rounds : int;
    l_workers : int;
  }

  type node = {
    path : string;
    label : string;
    rows : int;
    ns : float;
    calls : int;
    plan : string option;
    iterations : int;
    deltas : int list;
    local : local_op list;
    children : node list;
  }

  (* Numeric comparison of dotted node paths ("0.10" after "0.2"). *)
  let path_compare a b =
    let ints p = List.filter_map int_of_string_opt (String.split_on_char '.' p) in
    compare (ints a) (ints b)

  let term_children (t : Term.t) =
    match t with
    | Term.Rel _ | Term.Cst _ | Term.Var _ -> []
    | Term.Select (_, u) | Term.Project (_, u) | Term.Antiproject (_, u) | Term.Rename (_, u) ->
      [ u ]
    | Term.Join (a, b) | Term.Antijoin (a, b) | Term.Union (a, b) -> [ a; b ]
    | Term.Fix (x, body) -> (
      match Fcond.split ~var:x body with
      | consts, recs -> consts @ recs
      | exception Fcond.Not_fcond _ -> [])

  (* Path -> label map of a local-database plan, mirroring the path
     assignment of [Localdb.Instance.compile] (same convention, and like
     the instance it skips the Union nodes that [Fcond.split] dissolves). *)
  let rec term_labels acc path (t : Term.t) =
    let acc = (path, op_label t) :: acc in
    List.fold_left
      (fun (i, acc) u -> (i + 1, term_labels acc (child path i) u))
      (0, acc) (term_children t)
    |> snd

  let local_ops ctx fixpath =
    match Hashtbl.find_opt ctx.local_actuals fixpath with
    | None -> []
    | Some tbl ->
      let labels =
        match Hashtbl.find_opt ctx.local_plans fixpath with
        | Some t -> term_labels [] "0" t
        | None -> []
      in
      Hashtbl.fold
        (fun p (a : local_actual) acc ->
          {
            l_path = p;
            l_label = (match List.assoc_opt p labels with Some l -> l | None -> "?");
            l_rows_total = a.l_rows;
            l_ns_max = a.l_ns;
            l_rounds = a.l_rounds;
            l_workers = a.l_workers;
          }
          :: acc)
        tbl []
      |> List.sort (fun a b -> path_compare a.l_path b.l_path)

  let tree ctx term =
    let rec go path (t : Term.t) =
      let rows, ns, calls =
        match ctx.actuals with
        | Some tbl -> (
          match Hashtbl.find_opt tbl path with
          | Some a -> (a.o_rows, a.o_ns, a.o_count)
          | None -> (0, 0., 0))
        | None -> (0, 0., 0)
      in
      let plan, iterations, deltas =
        match t with
        | Term.Fix _ -> (
          match List.find_opt (fun r -> String.equal r.fix_path path) ctx.rpt.fixpoints with
          | Some r -> (Some (plan_name r.plan), r.iterations, r.deltas)
          | None -> (None, 0, []))
        | _ -> (None, 0, [])
      in
      let children =
        List.mapi (fun i u -> go (child path i) u) (term_children t)
      in
      {
        path;
        label = op_label t;
        rows;
        ns;
        calls;
        plan;
        iterations;
        deltas;
        local = (match t with Term.Fix _ -> local_ops ctx path | _ -> []);
        children;
      }
    in
    go "0" term

  let render ?(annot = fun (_ : string) -> "") root =
    let buf = Buffer.create 512 in
    let pp_deltas ds =
      let n = List.length ds in
      let shown = if n > 16 then List.filteri (fun i _ -> i < 16) ds else ds in
      Printf.sprintf "[%s%s]"
        (String.concat ";" (List.map string_of_int shown))
        (if n > 16 then ";…" else "")
    in
    let rec go indent n =
      Buffer.add_string buf (String.make (2 * indent) ' ');
      Buffer.add_string buf n.label;
      if n.calls = 0 then
        (* evaluated as part of an enclosing constant subterm: the
           nearest metered ancestor carries the actuals *)
        Buffer.add_string buf " (folded into parent)"
      else begin
        Printf.bprintf buf " rows=%d" n.rows;
        (match annot n.path with "" -> () | s -> Printf.bprintf buf " %s" s);
        Printf.bprintf buf " time=%.3fms" (n.ns /. 1e6);
        if n.calls > 1 then Printf.bprintf buf " calls=%d" n.calls
      end;
      (match n.plan with Some p -> Printf.bprintf buf " plan=%s" p | None -> ());
      if n.iterations > 0 then
        Printf.bprintf buf " iters=%d deltas=%s" n.iterations (pp_deltas n.deltas);
      Buffer.add_char buf '\n';
      List.iter
        (fun l ->
          Buffer.add_string buf (String.make ((2 * indent) + 2) ' ');
          Printf.bprintf buf "local %s [%s] rows=%d max_time=%.3fms" l.l_label l.l_path
            l.l_rows_total (l.l_ns_max /. 1e6);
          if l.l_rounds > 0 then Printf.bprintf buf " rounds=%d" l.l_rounds;
          Printf.bprintf buf " workers=%d" l.l_workers;
          Buffer.add_char buf '\n')
        n.local;
      List.iter (go (indent + 1)) n.children
    in
    go 0 root;
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Incremental fixpoint maintenance                                    *)
(* ------------------------------------------------------------------ *)

module Incr = struct
  exception Unsupported of string

  let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

  type handle = {
    i_config : config;
    i_var : string;
    i_body : Term.t;
    i_consts : Term.t list;
    i_recs : Term.t list;
    i_plan : fixpoint_plan;
    i_hash_cols : string list;  (* the accumulator's hash-partitioning key *)
    i_narrow : bool;  (* P_plw^s with stable columns: no per-iteration exchange *)
    i_report : fix_report list;  (* establishment-run fixpoint reports, innermost-first *)
    mutable i_tables : (string * Rel.t) list;
    mutable i_acc : Dds.t;  (* live converged accumulator; owned exclusively *)
    mutable i_resumes : int;
    mutable i_resume_iterations : int;
  }

  let result h = Dds.collect h.i_acc
  let size h = Dds.cardinal h.i_acc
  let tables h = h.i_tables
  let resumes h = h.i_resumes
  let resume_iterations h = h.i_resume_iterations
  let plan h = h.i_plan
  let establish_report h = h.i_report

  let establish config ~tables term =
    let var, body =
      match (term : Term.t) with
      | Fix (var, body) -> (var, body)
      | _ -> unsupported "not a fixpoint term"
    in
    if Term.free_vars term <> [] then unsupported "fixpoint term has free recursive variables";
    let ctx = session config tables in
    let acc = exec_any ctx ~path:"0" term in
    let consts, recs = Fcond.split ~var body in
    let stable =
      try Mura.Stabilizer.stable_columns (typing_env ctx) ~var body
      with Mura.Typing.Type_error _ -> []
    in
    let plan =
      match config.force_plan with
      | Some p -> p
      | None -> if stable <> [] then P_plw_s else P_gld
    in
    if plan = P_plw_pg then unsupported "P_plw^pg keeps no driver-side accumulator to resume";
    let partitioned_by = if config.use_stable_partitioning then stable else [] in
    let narrow = plan = P_plw_s && partitioned_by <> [] in
    let hash_cols = if narrow then partitioned_by else Schema.cols (Dds.schema acc) in
    (* membership probes during resume are partition-local, so the live
       accumulator must be hash-partitioned; the plans above already
       leave it that way and the repartition no-ops *)
    let acc =
      if Dds.same_hashing (Dds.partitioning acc) (Dds.Hashed hash_cols) then acc
      else Dds.repartition ~by:hash_cols acc
    in
    {
      i_config = config;
      i_var = var;
      i_body = body;
      i_consts = consts;
      i_recs = recs;
      i_plan = plan;
      i_hash_cols = hash_cols;
      i_narrow = narrow;
      i_report = ctx.rpt.fixpoints;
      i_tables = tables;
      i_acc = acc;
      i_resumes = 0;
      i_resume_iterations = 0;
    }

  (* Evaluate differential summands against the live accumulator: each
     summand is compiled like a recursive branch (broadcast mode — the
     delta constants inside are small) and applied with [delta := acc];
     var-free summands evaluate directly. Returns their union, or [None]
     when no summand can produce anything. *)
  let eval_summands ctx ~var ~acc summands =
    match
      List.mapi
        (fun i s -> compile_branch ctx ~var ~join_mode:`Broadcast ~path:("incr." ^ string_of_int i) s acc)
        summands
    with
    | [] -> None
    | d :: rest -> Some (List.fold_left Dds.set_union_local d rest)

  (* Resume the semi-naive loop from [(acc, fresh)] over the catalog in
     [ctx]: the compiled columnar core when it engages, the interpreted
     closures otherwise — exactly the from-scratch drivers, entered with
     [?delta0]. *)
  let resume_loop h ctx ~acc ~fresh =
    let branch_path i = "incr.rec." ^ string_of_int i in
    let join_mode = if h.i_plan = P_gld then `Shuffle else `Broadcast in
    let plan_label = plan_name h.i_plan ^ "(resume)" in
    let seen =
      if (not h.i_narrow) && h.i_config.use_shuffle_dedup then
        Some (Dds.seen_filter h.i_config.cluster)
      else None
    in
    let per_iter_by = if h.i_narrow then None else Some h.i_hash_cols in
    match compiled_pipeline ctx ~var:h.i_var ~join_mode ~init:acc ~recs:h.i_recs ~branch_path with
    | Some cp ->
      Pipeline.run cp ~var:h.i_var ~plan_label ~x0:acc ~x0_private:true ~delta0:fresh ~per_iter_by
        ?seen ~max_iterations:h.i_config.max_iterations ~max_tuples:h.i_config.max_tuples
        ~limit:(fun msg -> Resource_limit msg)
        ()
    | None ->
      let branch_fns =
        List.mapi
          (fun i b -> compile_branch ctx ~var:h.i_var ~join_mode ~path:(branch_path i) b)
          h.i_recs
      in
      let per_iter =
        match per_iter_by with
        | None -> fun produced -> produced
        | Some by -> fun produced -> Dds.repartition ?seen ~by produced
      in
      run_semi_naive ctx ~var:h.i_var ~plan_label ~x0:acc ~x0_private:true ~delta0:fresh
        ~branch_fns ~per_iter ()

  (* The narrow (stable-partitioned) loop can lose the partitioning label
     when branch outputs come back [Arbitrary]; physically every derived
     tuple stays on its premise's worker (the stable-column locality
     theorem of Sec. IV-A2), so re-assert the fact instead of paying an
     exchange. *)
  let assert_partitioning h d =
    if Dds.same_hashing (Dds.partitioning d) (Dds.Hashed h.i_hash_cols) then d
    else if h.i_narrow then
      Dds.map_partitions ~partitioning:(Dds.Hashed h.i_hash_cols) ~schema:(Dds.schema d)
        (fun _ part -> part)
        d
    else Dds.repartition ~by:h.i_hash_cols d

  (* DRed over-deletion: propagate deletions through the old rules,
     clipped to tuples actually in the accumulator. [ctx_old] reads the
     pre-update catalog. *)
  let over_delete h ctx_old ~deletes =
    let seed_terms =
      List.concat_map (Mura.Deriv.delta ~changed:deletes) (h.i_consts @ h.i_recs)
    in
    match eval_summands ctx_old ~var:h.i_var ~acc:h.i_acc seed_terms with
    | None -> None
    | Some seed ->
      let seed = Dds.repartition ~by:h.i_hash_cols seed in
      let o_acc = ref (Dds.set_inter_local seed h.i_acc) in
      if Dds.cardinal !o_acc = 0 then None
      else begin
        let branch_fns =
          List.mapi
            (fun i b ->
              compile_branch ctx_old ~var:h.i_var ~join_mode:`Broadcast
                ~path:("incr.del." ^ string_of_int i) b)
            h.i_recs
        in
        let delta = ref !o_acc in
        let iterations = ref 0 in
        let continue = ref (branch_fns <> []) in
        while !continue do
          incr iterations;
          if !iterations > h.i_config.max_iterations then
            raise (Resource_limit "max iterations exceeded (DRed over-delete)");
          let produced =
            match List.map (fun f -> f !delta) branch_fns with
            | [] -> assert false
            | d0 :: rest -> List.fold_left Dds.set_union_local d0 rest
          in
          let produced = Dds.repartition ~by:h.i_hash_cols produced in
          let produced = Dds.set_inter_local produced h.i_acc in
          let o', fresh = Dds.diff_union_in_place ~acc:!o_acc ~produced in
          if Dds.cardinal fresh = 0 then continue := false
          else begin
            o_acc := o';
            delta := fresh
          end
        done;
        Some !o_acc
      end

  let apply_table_updates tables ~inserts ~deletes =
    List.map
      (fun (name, r) ->
        let r = match List.assoc_opt name deletes with Some d -> Rel.diff r d | None -> r in
        let r = match List.assoc_opt name inserts with Some d -> Rel.union r d | None -> r in
        (name, r))
      tables

  let update ?(inserts = []) ?(deletes = []) h =
    (* trim the update to its effective part: inserts already present and
       deletions of absent tuples change nothing *)
    let effective deltas trim =
      List.filter_map
        (fun (name, d) ->
          match List.assoc_opt name h.i_tables with
          | None -> unsupported "update to unregistered relation %S" name
          | Some r ->
            if not (Schema.equal_names (Rel.schema r) (Rel.schema d)) then
              unsupported "update schema mismatch on %S" name;
            let d = trim d r in
            if Rel.is_empty d then None else Some (name, d))
        deltas
    in
    match
      let inserts = effective inserts (fun d r -> Rel.diff d r) in
      let deletes = effective deletes (fun d r -> Rel.inter d r) in
      let changed = List.map fst inserts @ List.map fst deletes in
      if changed = [] then `Repaired 0
      else begin
        (match Mura.Deriv.supported ~changed h.i_body with
        | Ok () -> ()
        | Error msg -> raise (Mura.Deriv.Unsupported msg));
        (* 1. over-delete through the old rules (DRed), before the catalog
           changes under us *)
        let x_under =
          if deletes = [] then None
          else begin
            let ctx_old = session h.i_config h.i_tables in
            match over_delete h ctx_old ~deletes with
            | None -> None
            | Some o -> Some (Dds.set_diff_local h.i_acc o)
          end
        in
        (* 2. switch to the new catalog *)
        let new_tables = apply_table_updates h.i_tables ~inserts ~deletes in
        let ctx_new = session h.i_config new_tables in
        (* 3. seed the resume frontier: for pure insertions, the
           differential of the body at [X := acc] (small — only
           delta-touching derivations); after deletions, a full
           re-derivation pass over the surviving accumulator *)
        let x0, seed =
          match x_under with
          | None ->
            let terms =
              List.concat_map (Mura.Deriv.delta ~changed:inserts) (h.i_consts @ h.i_recs)
            in
            (h.i_acc, eval_summands ctx_new ~var:h.i_var ~acc:h.i_acc terms)
          | Some x_under ->
            let consts =
              List.mapi (fun i c -> exec_any ctx_new ~path:("incr.cst." ^ string_of_int i) c)
                h.i_consts
            in
            let recs =
              List.mapi
                (fun i b ->
                  compile_branch ctx_new ~var:h.i_var ~join_mode:`Broadcast
                    ~path:("incr.rec." ^ string_of_int i) b x_under)
                h.i_recs
            in
            let seed =
              match consts @ recs with
              | [] -> None
              | d :: rest -> Some (List.fold_left Dds.set_union_local d rest)
            in
            (x_under, seed)
        in
        let acc, iterations =
          match seed with
          | None -> (x0, 0)
          | Some seed ->
            let seed = Dds.repartition ~by:h.i_hash_cols seed in
            let acc', fresh = Dds.diff_union_in_place ~acc:x0 ~produced:seed in
            if Dds.cardinal fresh = 0 || h.i_recs = [] then (acc', 0)
            else
              let acc, iters, _deltas = resume_loop h ctx_new ~acc:acc' ~fresh in
              (acc, iters)
        in
        h.i_acc <- assert_partitioning h acc;
        h.i_tables <- new_tables;
        h.i_resumes <- h.i_resumes + 1;
        h.i_resume_iterations <- h.i_resume_iterations + iterations;
        (let reg = Telemetry.get () in
         if Telemetry.enabled reg then
           Telemetry.observe reg
             ~labels:[ ("plan", plan_name h.i_plan) ]
             "fixpoint_resume_iterations" (float_of_int iterations));
        `Repaired iterations
      end
    with
    | `Repaired iterations -> `Repaired (result h, iterations)
    | exception Mura.Deriv.Unsupported msg -> `Unsupported msg
    | exception Unsupported msg -> `Unsupported msg
end
