module Schema = Relation.Schema
module Rel = Relation.Rel
module Tset = Relation.Tset
module Tuple = Relation.Tuple
module Term = Mura.Term
module Fcond = Mura.Fcond
module Dds = Distsim.Dds
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics

type fixpoint_plan = P_gld | P_plw_s | P_plw_pg

let plan_name = function P_gld -> "P_gld" | P_plw_s -> "P_plw^s" | P_plw_pg -> "P_plw^pg"
let pp_plan ppf p = Format.pp_print_string ppf (plan_name p)

type config = {
  cluster : Cluster.t;
  force_plan : fixpoint_plan option;
  broadcast_threshold : int;
  max_iterations : int;
  max_tuples : int;
  use_stable_partitioning : bool;
  use_prepared_broadcast : bool;
}

let default_config cluster =
  {
    cluster;
    force_plan = None;
    broadcast_threshold = 2_000_000;
    max_iterations = 100_000;
    max_tuples = 500_000_000;
    use_stable_partitioning = true;
    use_prepared_broadcast = true;
  }

exception Resource_limit of string

type fix_report = {
  var : string;
  plan : fixpoint_plan;
  stable : string list;
  partitioned_by : string list;
  iterations : int;
  result_size : int;
}

type report = { mutable fixpoints : fix_report list }

type ctx = {
  config : config;
  tables : (string * Rel.t) list;
  cache : (string, Dds.t) Hashtbl.t;
  rpt : report;
}

let session config tables = { config; tables; cache = Hashtbl.create 16; rpt = { fixpoints = [] } }
let config_of ctx = ctx.config
let report ctx = ctx.rpt
let metrics ctx = Cluster.metrics ctx.config.cluster

let err fmt = Format.kasprintf (fun s -> raise (Mura.Eval.Eval_error s)) fmt

let check_size ctx d =
  if Dds.cardinal d > ctx.config.max_tuples then
    raise (Resource_limit (Printf.sprintf "dataset exceeds %d tuples" ctx.config.max_tuples));
  d

let driver_env ctx = Mura.Eval.env ctx.tables
let typing_env ctx = Mura.Typing.env (List.map (fun (n, r) -> (n, Rel.schema r)) ctx.tables)

(* Narrow projection: keep the given columns; partitioning survives when
   the partitioning columns are all kept. *)
let project_narrow d keep =
  let schema = Dds.schema d in
  let out_schema = Schema.restrict schema keep in
  let pos = Schema.positions schema keep in
  let partitioning =
    match Dds.partitioning d with
    | Dds.Hashed cols when List.for_all (fun c -> List.mem c keep) cols -> Dds.Hashed cols
    | Dds.Hashed _ | Dds.Arbitrary -> Dds.Arbitrary
  in
  Dds.map_partitions ~op:"project" ~partitioning ~schema:out_schema
    (fun _ part ->
      let out = Tset.create ~capacity:(Tset.cardinal part) () in
      Tset.iter (fun tu -> ignore (Tset.add out (Tuple.project pos tu))) part;
      out)
    d

let keep_of_drop schema drop = List.filter (fun c -> not (List.mem c drop)) (Schema.cols schema)

(* Span label for one physical operator (trace category "op"): the
   per-operator rollup groups communication and stage time under these. *)
let op_label (t : Term.t) =
  match t with
  | Rel n -> "Rel " ^ n
  | Cst _ -> "Cst"
  | Var x -> "Var " ^ x
  | Select _ -> "Select"
  | Project _ -> "Project"
  | Antiproject _ -> "Antiproject"
  | Rename _ -> "Rename"
  | Join _ -> "Join"
  | Antijoin _ -> "Antijoin"
  | Union _ -> "Union"
  | Fix (x, _) -> "Fix " ^ x

(* ------------------------------------------------------------------ *)
(* Distributed evaluation of non-recursive operators                   *)
(* ------------------------------------------------------------------ *)

let rec exec_dds ctx (term : Term.t) : Dds.t =
  Trace.span (Trace.get ()) ~cat:"op" (op_label term) @@ fun () ->
  let d =
    match term with
    | Rel n -> (
      match Hashtbl.find_opt ctx.cache n with
      | Some d -> d
      | None ->
        let rel =
          match List.assoc_opt n ctx.tables with
          | Some r -> r
          | None -> err "unknown relation %S" n
        in
        let d = Dds.of_rel ctx.config.cluster rel in
        Hashtbl.replace ctx.cache n d;
        d)
    | Cst r -> Dds.of_rel ctx.config.cluster r
    | Var x -> err "free recursive variable %S at top level" x
    | Select (p, u) -> Dds.filter p (exec_dds ctx u)
    | Project (keep, u) -> Dds.distinct (project_narrow (exec_dds ctx u) keep)
    | Antiproject (drop, u) ->
      let d = exec_dds ctx u in
      Dds.distinct (project_narrow d (keep_of_drop (Dds.schema d) drop))
    | Rename (m, u) -> Dds.rename m (exec_dds ctx u)
    | Join (a, b) ->
      let da = exec_dds ctx a and db = exec_dds ctx b in
      let ca = Dds.cardinal da and cb = Dds.cardinal db in
      let threshold = ctx.config.broadcast_threshold in
      if cb <= ca && cb <= threshold then Dds.join_broadcast da (Dds.collect db)
      else if ca < cb && ca <= threshold then
        let joined = Dds.join_broadcast db (Dds.collect da) in
        (* keep the conventional left-first layout *)
        let out_schema = Schema.append_distinct (Dds.schema da) (Dds.schema db) in
        relayout_dds joined out_schema
      else Dds.join_shuffle da db
    | Antijoin (a, b) ->
      let da = exec_dds ctx a and db = exec_dds ctx b in
      if Dds.cardinal db <= ctx.config.broadcast_threshold then
        Dds.antijoin_broadcast da (Dds.collect db)
      else Dds.antijoin_shuffle da db
    | Union (a, b) -> Dds.union_distinct (exec_dds ctx a) (exec_dds ctx b)
    | Fix (x, body) -> exec_fix ctx x body
  in
  check_size ctx d

and relayout_dds d out_schema =
  if Schema.equal_ordered (Dds.schema d) out_schema then d
  else
    let perm = Schema.reorder_positions ~from:(Dds.schema d) ~into:out_schema in
    Dds.map_partitions ~op:"relayout" ~schema:out_schema
      (fun _ part ->
        let out = Tset.create ~capacity:(Tset.cardinal part) () in
        Tset.iter (fun tu -> ignore (Tset.add out (Tuple.project perm tu))) part;
        out)
      d

(* Evaluate a subterm that is constant in the recursive variable, for
   broadcasting. Terms containing fixpoints are evaluated distributed
   (they can be large intermediate results); plain ones centrally. *)
and eval_const ctx term =
  if Term.fix_count term > 0 then Dds.collect (exec_dds ctx term)
  else Mura.Eval.eval (driver_env ctx) term

(* ------------------------------------------------------------------ *)
(* Recursive-branch compilation                                        *)
(* ------------------------------------------------------------------ *)

(* Compile a union-free recursive branch into a function of the delta.
   [join_mode] decides how joins against the constant side execute:
   `Broadcast (P_plw: metered once here, then narrow per iteration) or
   `Shuffle (P_gld: the constant side is distributed and pre-partitioned;
   the delta side is shuffled on every application). *)
and compile_branch ctx ~var ~join_mode branch : Dds.t -> Dds.t =
  let rec go (t : Term.t) : Dds.t -> Dds.t =
    if not (Term.has_free_var var t) then begin
      match join_mode with
      | `Broadcast ->
        let r = eval_const ctx t in
        let d = Dds.of_rel ctx.config.cluster r in
        fun _ -> d
      | `Shuffle ->
        let d = exec_dds ctx t in
        fun _ -> d
    end
    else
      match t with
      | Term.Var x when String.equal x var -> fun delta -> delta
      | Term.Var x -> err "foreign recursive variable %S in branch" x
      | Term.Select (p, u) ->
        let f = go u in
        fun delta -> Dds.filter p (f delta)
      | Term.Project (keep, u) ->
        let f = go u in
        fun delta -> project_narrow (f delta) keep
      | Term.Antiproject (drop, u) ->
        let f = go u in
        fun delta ->
          let d = f delta in
          project_narrow d (keep_of_drop (Dds.schema d) drop)
      | Term.Rename (m, u) ->
        let f = go u in
        fun delta -> Dds.rename m (f delta)
      | Term.Join (a, b) ->
        (* Linearity: exactly one side mentions the variable. The output
           layout (which side comes first) is irrelevant: set operations
           reconcile layouts by column name. *)
        let recursive, const = if Term.has_free_var var a then (a, b) else (b, a) in
        let f = go recursive in
        (match join_mode with
        | `Broadcast when ctx.config.use_prepared_broadcast ->
          (* prepared handle: index over the broadcast side built once at
             the first iteration (the delta schema is loop-invariant)
             and probed by every later one *)
          let bc = Dds.broadcast ctx.config.cluster (eval_const ctx const) in
          let prepared = ref None in
          fun delta ->
            let left = f delta in
            let p =
              match !prepared with
              | Some p -> p
              | None ->
                let p = Dds.prepare_bcast ~for_schema:(Dds.schema left) bc in
                prepared := Some p;
                p
            in
            Dds.join_bcast_prepared left p
        | `Broadcast ->
          let bc = Dds.broadcast ctx.config.cluster (eval_const ctx const) in
          fun delta -> Dds.join_bcast (f delta) bc
        | `Shuffle ->
          let const_dds = exec_dds ctx const in
          (* memoize the co-partitioned constant side across iterations:
             Spark keeps shuffle files of the stable side too *)
          let prepared = ref None in
          fun delta ->
            let left = f delta in
            let shared = Schema.common (Dds.schema left) (Dds.schema const_dds) in
            let const_part =
              match !prepared with
              | Some d -> d
              | None ->
                let d =
                  match shared with
                  | [] -> const_dds
                  | _ -> Dds.repartition ~by:shared const_dds
                in
                prepared := Some d;
                d
            in
            Dds.join_shuffle left const_part)
      | Term.Antijoin (a, b) ->
        if Term.has_free_var var b then err "fixpoint on %s is not positive" var;
        let f = go a in
        (match join_mode with
        | `Broadcast when ctx.config.use_prepared_broadcast ->
          let bc = Dds.broadcast ctx.config.cluster (eval_const ctx b) in
          let prepared = ref None in
          fun delta ->
            let left = f delta in
            let p =
              match !prepared with
              | Some p -> p
              | None ->
                let p = Dds.prepare_bcast ~for_schema:(Dds.schema left) bc in
                prepared := Some p;
                p
            in
            Dds.antijoin_bcast_prepared left p
        | `Broadcast ->
          let bc = Dds.broadcast ctx.config.cluster (eval_const ctx b) in
          fun delta -> Dds.antijoin_bcast (f delta) bc
        | `Shuffle ->
          let const_dds = exec_dds ctx b in
          fun delta -> Dds.antijoin_shuffle (f delta) const_dds)
      | Term.Union _ -> err "internal: union inside a normalised branch"
      | Term.Fix (x, _) -> err "internal: recursive variable %s under nested fixpoint %s" var x
      | Term.Rel _ | Term.Cst _ -> assert false (* constant, handled above *)
  in
  go branch

(* ------------------------------------------------------------------ *)
(* Fixpoint plans                                                      *)
(* ------------------------------------------------------------------ *)

and exec_fix ctx var body : Dds.t =
  let consts, recs = Fcond.split ~var body in
  (match Fcond.(is_positive ~var body, is_linear ~var body, is_non_mutually_recursive ~var body)
   with
  | true, true, true -> ()
  | false, _, _ -> raise (Fcond.Not_fcond (Printf.sprintf "fixpoint on %s not positive" var))
  | _, false, _ -> raise (Fcond.Not_fcond (Printf.sprintf "fixpoint on %s not linear" var))
  | _, _, false -> raise (Fcond.Not_fcond (Printf.sprintf "fixpoint on %s mutually recursive" var)));
  match consts with
  | [] -> raise (Fcond.Not_fcond (Printf.sprintf "fixpoint on %s has no constant part" var))
  | c0 :: crest ->
    let init =
      List.fold_left (fun acc c -> Dds.set_union_local acc (exec_dds ctx c)) (exec_dds ctx c0)
        crest
    in
    (match recs with
    | [] -> Dds.distinct init
    | _ ->
      let stable =
        try Mura.Stabilizer.stable_columns (typing_env ctx) ~var body
        with Mura.Typing.Type_error _ -> []
      in
      let plan =
        match ctx.config.force_plan with
        | Some p -> p
        | None -> if stable <> [] then P_plw_s else P_gld
      in
      let partitioned_by = if ctx.config.use_stable_partitioning then stable else [] in
      let result, iterations =
        Trace.span (Trace.get ()) ~cat:"fixpoint"
          ~attrs:
            [
              ("var", Trace.Str var);
              ("plan", Trace.Str (plan_name plan));
              ("stable", Trace.Str (String.concat "," stable));
            ]
          "fixpoint"
        @@ fun () ->
        match plan with
        | P_gld -> run_gld ctx ~var ~init ~recs
        | P_plw_s -> run_plw_s ctx ~var ~init ~recs ~stable:partitioned_by
        | P_plw_pg -> run_plw_pg ctx ~var ~body ~init ~stable:partitioned_by
      in
      ctx.rpt.fixpoints <-
        {
          var;
          plan;
          stable;
          partitioned_by;
          iterations;
          result_size = Dds.cardinal result;
        }
        :: ctx.rpt.fixpoints;
      result)

(* P_gld: driver loop over distributed wide operations. The accumulated
   result is kept hash-partitioned by the full schema so that the
   per-iteration difference costs exactly one shuffle of the produced
   tuples (plus whatever the joins shuffle). *)
and run_gld ctx ~var ~init ~recs =
  let m = Cluster.metrics ctx.config.cluster in
  let schema_cols = Schema.cols (Dds.schema init) in
  let branch_fns = List.map (compile_branch ctx ~var ~join_mode:`Shuffle) recs in
  let x = ref (Dds.repartition ~by:schema_cols init) in
  let delta = ref !x in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    incr iterations;
    if !iterations > ctx.config.max_iterations then
      raise (Resource_limit "max iterations exceeded (P_gld)");
    Trace.span (Trace.get ()) ~cat:"fixpoint"
      ~attrs:[ ("var", Trace.Str var); ("i", Trace.Int !iterations) ]
      "iteration"
    @@ fun () ->
    Metrics.record_superstep m;
    let produced =
      match List.map (fun f -> f !delta) branch_fns with
      | [] -> assert false
      | d0 :: rest -> List.fold_left Dds.set_union_local d0 rest
    in
    let produced = check_size_dds ctx produced in
    let produced = relayout_dds produced (Dds.schema !x) in
    let produced = Dds.repartition ~by:schema_cols produced in
    let fresh = Dds.set_diff_local produced !x in
    if Dds.cardinal fresh = 0 then continue := false
    else begin
      x := check_size_dds ctx (Dds.set_union_local !x fresh);
      delta := fresh
    end
  done;
  (!x, !iterations)

(* P_plw^s: repartition the constant part (by the stable columns when
   they exist), broadcast the variable part's relations once, then loop
   with narrow operations only. No distinct at the end when a stable
   repartitioning was applied (the local fixpoints are disjoint). *)
and run_plw_s ctx ~var ~init ~recs ~stable =
  let m = Cluster.metrics ctx.config.cluster in
  let branch_fns = List.map (compile_branch ctx ~var ~join_mode:`Broadcast) recs in
  let init = match stable with [] -> init | _ -> Dds.repartition ~by:stable init in
  let x = ref init in
  let delta = ref init in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    incr iterations;
    if !iterations > ctx.config.max_iterations then
      raise (Resource_limit "max iterations exceeded (P_plw^s)");
    Trace.span (Trace.get ()) ~cat:"fixpoint"
      ~attrs:[ ("var", Trace.Str var); ("i", Trace.Int !iterations) ]
      "iteration"
    @@ fun () ->
    Metrics.record_superstep m;
    let produced =
      match List.map (fun f -> f !delta) branch_fns with
      | [] -> assert false
      | d0 :: rest -> List.fold_left Dds.set_union_local d0 rest
    in
    let produced = check_size_dds ctx produced in
    let produced = relayout_dds produced (Dds.schema !x) in
    let fresh = Dds.set_diff_local produced !x in
    if Dds.cardinal fresh = 0 then continue := false
    else begin
      x := check_size_dds ctx (Dds.set_union_local !x fresh);
      delta := fresh
    end
  done;
  let result =
    match stable with
    | _ :: _ ->
      (* disjointness proof of Sec. IV-A2: no distinct needed; assert the
         partitioning fact for downstream operators *)
      Dds.map_partitions ~partitioning:(Dds.Hashed stable) ~schema:(Dds.schema !x)
        (fun _ part -> part)
        !x
    | [] -> Dds.distinct !x
  in
  (result, !iterations)

(* P_plw^pg: same distribution scheme; each worker runs its whole local
   fixpoint inside one mapPartitions call against its local database. *)
and run_plw_pg ctx ~var ~body ~init ~stable =
  let m = Cluster.metrics ctx.config.cluster in
  let init = match stable with [] -> init | _ -> Dds.repartition ~by:stable init in
  let seed_name = "__seed" in
  (* Broadcast every database relation the variable part mentions. *)
  let rels_needed = Term.free_rels body in
  let broadcast_tables =
    List.filter_map
      (fun n ->
        match List.assoc_opt n ctx.tables with
        | Some r ->
          let records = Rel.cardinal r * max 1 (Cluster.workers ctx.config.cluster - 1) in
          Metrics.record_broadcast m ~records;
          Trace.instant (Trace.get ()) ~cat:"shuffle"
            ~attrs:[ ("op", Trace.Str "plw_pg.table"); ("records", Trace.Int records) ]
            "broadcast";
          Some (n, r)
        | None -> None)
      rels_needed
  in
  let consts, recs_b = Fcond.split ~var body in
  ignore consts;
  let local_term = Term.Fix (var, Term.union_all (Term.Rel seed_name :: recs_b)) in
  Metrics.record_superstep m;
  let schema = Dds.schema init in
  (* the fixpoint is shipped to the local databases as SQL text (a WITH
     RECURSIVE statement), as the paper's PostgreSQL backend receives
     it; terms outside the SQL dialect fall back to direct plans *)
  let sql_text =
    let tenv =
      Mura.Typing.env
        ((seed_name, schema) :: List.map (fun (n, r) -> (n, Rel.schema r)) broadcast_tables)
    in
    match Localdb.To_sql.of_term tenv local_term with
    | sql -> Some sql
    | exception (Localdb.To_sql.Unsupported _ | Mura.Typing.Type_error _) -> None
  in
  let result =
    Trace.span (Trace.get ()) ~cat:"fixpoint"
      ~attrs:[ ("var", Trace.Str var); ("i", Trace.Int 1) ]
      "iteration"
    @@ fun () ->
    Dds.map_partitions ~op:"local_fixpoint"
      ~partitioning:(match stable with [] -> Dds.Arbitrary | _ -> Dds.Hashed stable)
      ~schema
      (fun _ part ->
        let db = Localdb.Instance.create () in
        List.iter (fun (n, r) -> Localdb.Instance.register db n r) broadcast_tables;
        Localdb.Instance.register db seed_name (Rel.of_tset schema (Tset.copy part));
        let local_result =
          match sql_text with
          | Some sql -> Relation.Rel.relayout schema (Localdb.Sql.query db sql)
          | None -> Localdb.Instance.query db local_term
        in
        Rel.tuples local_result)
      init
  in
  let result = match stable with [] -> Dds.distinct result | _ -> result in
  (result, 1)

and check_size_dds ctx d = check_size ctx d

let run ctx term = Dds.collect (exec_dds ctx term)

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)
(* ------------------------------------------------------------------ *)

let explain ctx term =
  let buf = Buffer.create 256 in
  let tenv = typing_env ctx in
  let line indent fmt =
    Format.kasprintf
      (fun s ->
        Buffer.add_string buf (String.make (2 * indent) ' ');
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let rec go indent (t : Term.t) =
    match t with
    | Term.Rel n -> line indent "TableScan %s" n
    | Term.Cst r -> line indent "LocalRelation (%d tuples)" Rel.(cardinal r)
    | Term.Var x -> line indent "RecursiveRef %s" x
    | Term.Select (p, u) ->
      line indent "Filter [%s]" (Relation.Pred.to_string p);
      go (indent + 1) u
    | Term.Project (c, u) ->
      line indent "Project [%s] + Distinct" (String.concat "," c);
      go (indent + 1) u
    | Term.Antiproject (c, u) ->
      line indent "DropColumns [%s] + Distinct" (String.concat "," c);
      go (indent + 1) u
    | Term.Rename (m, u) ->
      line indent "Rename [%s]"
        (String.concat "," (List.map (fun (o, n) -> o ^ "->" ^ n) m));
      go (indent + 1) u
    | Term.Join (a, b) ->
      line indent "Join (broadcast if a side <= %d tuples, else shuffle)"
        ctx.config.broadcast_threshold;
      go (indent + 1) a;
      go (indent + 1) b
    | Term.Antijoin (a, b) ->
      line indent "AntiJoin (broadcast/shuffle by size)";
      go (indent + 1) a;
      go (indent + 1) b
    | Term.Union (a, b) ->
      line indent "Union + Distinct";
      go (indent + 1) a;
      go (indent + 1) b
    | Term.Fix (x, body) ->
      let stable =
        try Mura.Stabilizer.stable_columns tenv ~var:x body
        with Mura.Typing.Type_error _ | Fcond.Not_fcond _ -> []
      in
      let plan =
        match ctx.config.force_plan with
        | Some p -> p
        | None -> if stable <> [] then P_plw_s else P_gld
      in
      let partition_note =
        match (stable, ctx.config.use_stable_partitioning) with
        | [], _ -> "no stable column: final distinct required"
        | cols, true -> Printf.sprintf "repartition constant part by [%s]" (String.concat "," cols)
        | _, false -> "stable-column repartitioning disabled"
      in
      line indent "Fixpoint %s: plan=%s, stable=[%s], %s" x (plan_name plan)
        (String.concat "," stable) partition_note;
      (match Fcond.split ~var:x body with
      | consts, recs ->
        line (indent + 1) "constant part:";
        List.iter (go (indent + 2)) consts;
        line (indent + 1) "variable part (%s):"
          (match plan with
          | P_gld -> "re-evaluated with shuffles each iteration"
          | P_plw_s -> "broadcast relations, narrow iterations"
          | P_plw_pg -> "shipped to per-worker local databases as SQL");
        List.iter (go (indent + 2)) recs
      | exception Fcond.Not_fcond msg -> line (indent + 1) "! not F_cond: %s" msg)
  in
  go 0 term;
  Buffer.contents buf
