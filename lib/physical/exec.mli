(** The PhysicalPlanGenerator: distributed execution of mu-RA terms
    (Sec. IV of the paper).

    Non-recursive operators map to distributed-dataset operations with
    automatic broadcast/shuffle join selection. Fixpoints are executed
    with one of three physical plans:

    - {b P_gld} ("global loop on the driver"): each iteration runs
      distributed set operations; the union/difference against the
      accumulated result costs at least one shuffle per iteration.
    - {b P_plw_s} ("parallel local loops on the workers", SetRDD
      implementation): the constant part is partitioned across workers
      (by the stable columns when they exist), the relations of the
      variable part are broadcast once, and each iteration uses only
      narrow partition-wise operations — zero shuffles inside the loop.
    - {b P_plw_pg}: same distribution scheme, but each worker runs its
      complete local fixpoint inside a single mapPartitions call on its
      local database instance (the PostgreSQL stand-in).

    Plan selection (Sec. IV-B-c): when the fixpoint has a stable column,
    repartition by it and use P_plw (no final distinct needed — the local
    fixpoints are provably disjoint); otherwise use P_gld. *)

type fixpoint_plan = P_gld | P_plw_s | P_plw_pg

val pp_plan : Format.formatter -> fixpoint_plan -> unit
val plan_name : fixpoint_plan -> string

type config = {
  cluster : Distsim.Cluster.t;
  force_plan : fixpoint_plan option;  (** [None]: automatic selection *)
  broadcast_threshold : int;
      (** joins whose smaller side is at most this many tuples use a
          broadcast join *)
  max_iterations : int;  (** fixpoint iteration guard *)
  max_tuples : int;  (** memory guard on any materialised dataset *)
  use_stable_partitioning : bool;
      (** ablation knob: when [false], P_plw skips the stable-column
          repartitioning of Sec. IV-A2 and pays a final distinct *)
  use_prepared_broadcast : bool;
      (** when [true] (default), P_plw's broadcast joins/antijoins build
          the index over the constant side once per fixpoint
          ({!Distsim.Dds.prepare_bcast}) and probe it every iteration;
          when [false] each iteration re-derives the join strategy and
          may rescan the whole broadcast relation (the pre-optimisation
          behaviour, kept as a bench/regression knob). Plan shape and
          communication counters are identical either way. *)
  use_fused_delta : bool;
      (** when [true] (default), the semi-naive loops of P_gld and
          P_plw^s maintain their accumulator with the fused in-place
          kernel ({!Distsim.Dds.diff_union_in_place}: one stage, one
          probe per produced tuple) instead of the unfused
          diff-then-copy-then-union pair, which rebuilds the fresh set
          and copies the whole accumulator every iteration. Results,
          iteration counts and per-iteration delta sizes are
          bit-identical either way; [false] keeps the pre-fusion code
          path as a bench/regression baseline. *)
  use_shuffle_dedup : bool;
      (** when [true] (default), P_gld's per-iteration repartition runs
          through a {!Distsim.Dds.seen_filter}: tuples a worker already
          routed in an earlier iteration of the same fixpoint are dropped
          map-side before they are shuffled or metered (they would be
          discarded by the diff anyway). Results, iteration counts and
          deltas are bit-identical; [shuffled_records] / [shuffled_bytes]
          shrink and the savings are metered as
          [Metrics.dedup_dropped_records]. *)
  collect_actuals : bool;
      (** when [true], EXPLAIN ANALYZE instrumentation is on: every
          operator records its actual output cardinality and cumulative
          time, fixpoints record their delta-size curves, and P_plw^pg
          runs its local fixpoints on the instrumented volcano path.
          Results and communication counters are bit-identical either
          way; default [false] (zero overhead). *)
  use_compiled_exec : bool;
      (** when [true] (default), the whole plan runs on the compiled
          columnar core ({!Pipeline}): the semi-naive loops of P_gld and
          P_plw^s lower each recursive branch once into fused closure
          chains over unboxed column batches (constant join sides
          indexed once per fixpoint per worker, every tuple hashed once
          per iteration — exchange routing, merging and accumulator
          absorption all reuse the stored hash column); the non-fixpoint
          shell around [Fix] nodes runs the same fused chains
          column-at-a-time ({!Pipeline.Shell}), materializing only at
          size decisions and exchanges; and P_plw^pg's per-worker local
          fixpoints run the compiled batch loop ({!Localdb.Bexec}).
          Fallback is per subtree: an unsupported shell operator
          interprets just that node over batch<->Tset bridges, an
          unsupported branch shape falls the fixpoint back to the
          interpreted loop, an unsupported local plan falls back to
          SQL/volcano — each fallback counted by the
          [pipeline_fallback_total{reason,site}] telemetry counter.
          EXPLAIN ANALYZE forces the interpreter everywhere. Results,
          iteration counts, delta curves and communication counters are
          bit-identical either way; [false] forces the interpreter — the
          parity oracle for tests and the [micro_compiled] /
          [micro_shell] baselines. *)
}

val default_config : Distsim.Cluster.t -> config

exception Resource_limit of string
(** Raised when [max_iterations] or [max_tuples] is exceeded (the
    harness reports it as an engine failure, as the paper does for
    crashed systems). *)

type fix_report = {
  var : string;
  fix_path : string;
      (** term-tree path of the [Fix] node (root "0"; child [i] of [p] is
          [p ^ "." ^ i]; Fix children = constant branches then recursive
          ones, in [Mura.Fcond.split] order — the convention shared with
          [Localdb.Instance] and [Cost.Feedback]) *)
  plan : fixpoint_plan;
  stable : string list;  (** stable columns found by the stabilizer *)
  partitioned_by : string list;  (** actual repartitioning applied *)
  iterations : int;
  result_size : int;
  deltas : int list;
      (** per-iteration fresh-tuple counts, in iteration order (the last
          entry is the empty delta that terminates the loop); [[]] for
          P_plw^pg, whose single superstep hides the local rounds *)
}

type report = {
  mutable fixpoints : fix_report list;  (** innermost-first *)
}

type ctx
(** A session: a cluster, a driver-side catalog, and the cache of
    already-distributed tables. *)

type shell_cache
(** Cache of typing-only shell analyses ({!Pipeline.Shell.analyze}
    results, keyed by printed term). Pass one long-lived cache to every
    {!session} of a service so a repeated query's shell is analyzed
    once; the analyses depend only on the catalog's schemas, so drop the
    cache when those change. *)

val shell_cache : unit -> shell_cache

val clear_shell_cache : shell_cache -> unit
(** Drop every cached analysis (call on catalog schema changes). *)

val session : ?shell_cache:shell_cache -> config -> (string * Relation.Rel.t) list -> ctx
val config_of : ctx -> config
val report : ctx -> report
val metrics : ctx -> Distsim.Metrics.t

val exec_dds : ctx -> Mura.Term.t -> Distsim.Dds.t
(** Distributed evaluation; the result stays distributed. *)

val explain : ctx -> Mura.Term.t -> string
(** Describe the physical plan that {!exec_dds} would choose, without
    executing: operator tree with join strategies and, per fixpoint, the
    selected plan, the stable columns and the repartitioning. Fixpoint
    plan selection mirrors execution exactly; join strategy choices are
    stated as rules (sizes are only known at run time). *)

val run : ctx -> Mura.Term.t -> Relation.Rel.t
(** [exec_dds] followed by a collect to the driver. *)

(** Incremental fixpoint maintenance: keep a converged fixpoint's
    distributed accumulator live and repair it under base-relation
    updates instead of recomputing from scratch.

    {!Incr.establish} runs the fixpoint once and retains the converged
    accumulator (hash-partitioned, owned exclusively by the handle).
    {!Incr.update} then applies an edge batch:

    - {b insertions} seed the semi-naive loop with the differential of
      the body at [X := accumulator] ({!Mura.Deriv}) — only derivations
      touching the new tuples are evaluated — and resume the loop
      (compiled {!Pipeline} closures when they engage, the interpreted
      drivers otherwise, both entered through their [?delta0] resume
      point);
    - {b deletions} run DRed: over-delete everything derivable from the
      deleted tuples through the {e old} rules (clipped to the
      accumulator), then re-derive by resuming from the surviving
      under-approximation over the new catalog.

    Results are bit-identical to a from-scratch fixpoint on the updated
    catalog — the parity contract tests and [micro_incremental]
    enforce. Unsupported updates (changed relation under an antijoin
    right side or a nested fixpoint, P_plw^pg plans) report
    [`Unsupported] and the caller falls back to recomputation. *)
module Incr : sig
  type handle

  exception Unsupported of string

  val establish : config -> tables:(string * Relation.Rel.t) list -> Mura.Term.t -> handle
  (** Evaluate the closed [Fix] term and keep its accumulator live.
      @raise Unsupported on non-fixpoint terms, terms with free
      recursive variables, or a forced P_plw^pg plan. *)

  val update :
    ?inserts:(string * Relation.Rel.t) list ->
    ?deletes:(string * Relation.Rel.t) list ->
    handle ->
    [ `Repaired of Relation.Rel.t * int | `Unsupported of string ]
  (** Apply an update batch and repair the fixpoint. [`Repaired (r, n)]
      is the new result after [n] resumed semi-naive iterations (0 when
      the batch changed nothing derivable); the handle's catalog and
      accumulator now reflect the update. [`Unsupported] leaves the
      handle untouched (same catalog, same result) — fall back to
      recomputing and re-establishing. Updates naming unregistered
      relations or mismatched schemas also report [`Unsupported]. A
      raised exception (e.g. {!Resource_limit} mid-resume) leaves the
      handle corrupt: drop it. *)

  val result : handle -> Relation.Rel.t
  (** Collect the current converged result to the driver. *)

  val size : handle -> int
  (** Tuples in the live accumulator (driver-side count, not metered). *)

  val tables : handle -> (string * Relation.Rel.t) list
  (** The catalog the current result reflects. *)

  val resumes : handle -> int
  (** Updates that repaired (vs. no-op) since establishment. *)

  val resume_iterations : handle -> int
  (** Total resumed semi-naive iterations across all updates. *)

  val plan : handle -> fixpoint_plan

  val establish_report : handle -> fix_report list
  (** The establishment run's fixpoint reports (innermost-first), for
      callers that account iterations and plan choices per evaluation. *)
end

(** EXPLAIN ANALYZE: the annotated plan tree of an executed term.

    Only meaningful on a session created with [collect_actuals = true]
    and after running the term; without instrumentation every actual
    reads 0. Node addressing follows the shared path convention (see
    {!type:fix_report}[.fix_path]), which is how per-path estimates from
    [Cost.Feedback] join against these actuals. *)
module Analyze : sig
  type local_op = {
    l_path : string;  (** path within the local plan (its own root "0") *)
    l_label : string;
    l_rows_total : int;  (** output rows summed over workers *)
    l_ns_max : float;  (** slowest worker's cumulative time *)
    l_rounds : int;  (** max semi-naive rounds (0 for non-Fix nodes) *)
    l_workers : int;  (** workers that reported this operator *)
  }
  (** One operator of a P_plw^pg per-worker local plan, aggregated
      across workers. *)

  type node = {
    path : string;
    label : string;
    rows : int;  (** actual output cardinality (summed over iterations) *)
    ns : float;  (** cumulative time, inclusive of children *)
    calls : int;  (** evaluations (iteration count for in-loop nodes) *)
    plan : string option;  (** fixpoint plan name, [Fix] nodes only *)
    iterations : int;  (** fixpoint iterations; 0 elsewhere *)
    deltas : int list;  (** per-iteration fresh-tuple counts *)
    local : local_op list;  (** P_plw^pg local-plan actuals *)
    children : node list;
  }

  val tree : ctx -> Mura.Term.t -> node
  (** Join the term tree with the actuals collected by the session. *)

  val render : ?annot:(string -> string) -> node -> string
  (** Indented annotated-plan text. [annot path] injects extra
      per-node text right after [rows=] (the harness passes
      "est=<estimate> err=<q-error>" from [Cost.Feedback]). *)
end
