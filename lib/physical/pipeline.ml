(* Compiled columnar execution core.

   [compile] lowers the union-free recursive branches of a fixpoint into
   fused operator pipelines over {!Relation.Batch} column blocks, and
   [run] drives the semi-naive loop over them. Each branch becomes an
   alternating list of fused segments (closure chains that stream a
   partition column-at-a-time through select/project/rename/join-probe
   without materialising intermediate [Tuple.t] rows) and exchange
   points (metered batch repartitions). The interpreter in [Exec] stays
   the always-available oracle: [compile] returns [None] for any shape
   it does not cover and the caller falls back, so results, iteration
   counts and communication counters are bit-identical by construction
   wherever the compiled path engages.

   Parity contract with the interpreted loop (enforced by the qcheck
   suites and the [micro_compiled] bench gates):
   - same result relation, same per-iteration fresh counts;
   - same shuffle/broadcast counters: branch exchanges mirror the
     delta-side [Dds.repartition] of a shuffle join (with the
     [same_hashing] no-op rule applied against the tracked
     partitioning), the constant side is repartitioned once per
     fixpoint, broadcasts are metered at compile time exactly like
     [compile_branch];
   - same seen-filter drops ([use_shuffle_dedup] semantics ride on the
     per-iteration exchange unchanged).

   What the compiled path does *not* re-do each iteration is the
   interpreter's per-tuple overhead: tuple allocation in project/rename,
   per-iteration index builds over the constant join side (built once
   per fixpoint per worker here), and re-hashing on every set insert
   (the batch hash column is computed once per emitted row and reused
   by routing, merging and accumulator absorption). *)

module Schema = Relation.Schema
module Rel = Relation.Rel
module Tset = Relation.Tset
module Tuple = Relation.Tuple
module Batch = Relation.Batch
module Pred = Relation.Pred
module Index = Relation.Index
module Rowchain = Relation.Rowchain
module Term = Mura.Term
module Dds = Distsim.Dds
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics

let child path i = path ^ "." ^ string_of_int i

(* ------------------------------------------------------------------ *)
(* Row-level operators of a fused segment                              *)
(* ------------------------------------------------------------------ *)

(* One operator of a fused chain, acting on a scratch row (an [int
   array] laid out per the operator's input schema — which makes it a
   valid [Tuple.t], so compiled predicates apply directly). [R_probe]
   and [R_antiprobe] close over per-worker index lookups; broadcast
   indexes are immutable and shared by all workers, shuffle-side indexes
   are built lazily per worker over the co-partitioned constant side. *)
type rop =
  | R_filter of (Tuple.t -> bool)
  | R_project of int array  (* new scratch = old scratch at these positions *)
  | R_probe of {
      key_pos : int array;  (* shared columns, positions in the input scratch *)
      extra_pos : int array;  (* appended columns, positions in the right tuple *)
      probe : int -> Tuple.t -> Tuple.t list;  (* worker -> key -> matches *)
    }
  | R_antiprobe of { key_pos : int array; mem : int -> Tuple.t -> bool }

(* Atoms of a lowered branch, before fusion: row operators (each with
   its output schema and partitioning transfer) separated by exchange
   points. [rop = None] marks schema-only steps (rename). *)
type atom =
  | A_rop of {
      rop : rop option;
      out_schema : Schema.t;
      ptrans : Dds.partitioning -> Dds.partitioning;
    }
  | A_exch of { by : string list; schema : Schema.t }

type step =
  | Fuse of {
      runners : (Batch.t -> Batch.t) array;  (* one fused pass per worker *)
      ptrans : Dds.partitioning -> Dds.partitioning;
    }
  | Exch of { by : string list; schema : Schema.t }

type branch = {
  steps : step list;
  out_schema : Schema.t;  (* static schema of the branch's output batches *)
  prepares : (unit -> unit) list;
      (* idempotent driver-side setup run at the top of every iteration:
         the once-per-fixpoint co-partitioning of shuffle-join constant
         sides (metered on its first run, exactly like the interpreter's
         memoized [Dds.repartition] of the constant side) *)
}

type t = {
  cluster : Cluster.t;
  x_schema : Schema.t;
  arity : int;
  branches : branch list;
}

(* ------------------------------------------------------------------ *)
(* Plan pass: static supportability check (no evaluation, no metering)  *)
(* ------------------------------------------------------------------ *)

exception Unsupported of string

(* Decide whether a branch compiles, computing the schema at every chain
   point from typing alone. Runs before any constant subterm is
   evaluated or broadcast, so a reject verdict costs nothing and the
   interpreter fallback never double-meters. Raising [Unsupported] (or
   any typing/schema error) rejects with a reason slug for the
   per-reason fallback telemetry; the interpreter then reproduces the
   exact dynamic error behaviour. *)
let plan_branch ~var ~join_mode ~typing ~x_schema branch : (Schema.t, string) result =
  let rec go (t : Term.t) : Schema.t =
    match t with
    | Term.Var x when String.equal x var -> x_schema
    | Term.Select (p, u) ->
      let s = go u in
      ignore (Schema.positions s (Pred.columns p));
      s
    | Term.Project (keep, u) ->
      let s = Schema.restrict (go u) keep in
      if Schema.arity s = 0 then raise (Unsupported "zero_arity_project");
      s
    | Term.Antiproject (drop, u) ->
      let su = go u in
      let keep = List.filter (fun c -> not (List.mem c drop)) (Schema.cols su) in
      let s = Schema.restrict su keep in
      if Schema.arity s = 0 then raise (Unsupported "zero_arity_project");
      s
    | Term.Rename (m, u) -> Schema.rename m (go u)
    | Term.Join (a, b) ->
      let recursive, const = if Term.has_free_var var a then (a, b) else (b, a) in
      if Term.has_free_var var const then
        raise (Unsupported "nonlinear_join") (* non-linear: interpreter errs *);
      let sr = go recursive in
      let sc = typing const in
      let shared = Schema.common sr sc in
      (match join_mode with
      | `Shuffle when shared = [] ->
        (* the interpreter picks a dynamic broadcast side by size here *)
        raise (Unsupported "cartesian_shuffle_join")
      | `Shuffle | `Broadcast -> ());
      Schema.append_distinct sr sc
    | Term.Antijoin (a, b) ->
      if Term.has_free_var var b then
        raise (Unsupported "nonpositive_antijoin") (* not positive: interpreter errs *);
      (match join_mode with
      | `Shuffle ->
        (* interpreted [antijoin_shuffle] re-shuffles the constant side
           per iteration; keep that metering on the oracle path *)
        raise (Unsupported "shuffle_antijoin")
      | `Broadcast -> ());
      let sr = go a in
      ignore (typing b);
      sr
    | Term.Var _ -> raise (Unsupported "foreign_var")
    | Term.Fix _ -> raise (Unsupported "nested_fix")
    | Term.Rel _ | Term.Cst _ | Term.Union _ -> raise (Unsupported "unsupported_shape")
  in
  match go branch with
  | s ->
    (* the semi-naive driver relayouts produced into the accumulator's
       schema; different column *sets* are an interpreter error *)
    if Schema.equal_names s x_schema then Ok s else Error "branch_schema_mismatch"
  | exception Unsupported reason -> Error reason
  | exception (Schema.Schema_error _ | Mura.Typing.Type_error _) -> Error "typing"

(* Typing-only verdict for one branch, for explain and telemetry. *)
let branch_verdict ~var ~join_mode ~typing ~x_schema branch : (unit, string) result =
  Result.map ignore (plan_branch ~var ~join_mode ~typing ~x_schema branch)

(* First reason the fixpoint as a whole would fall back, if any. *)
let reject_reason ~var ~join_mode ~typing ~x_schema recs : string option =
  if Schema.arity x_schema = 0 then Some "zero_arity_accumulator"
  else
    List.find_map
      (fun b ->
        match plan_branch ~var ~join_mode ~typing ~x_schema b with
        | Ok _ -> None
        | Error r -> Some r)
      recs

(* ------------------------------------------------------------------ *)
(* Lowering pass: evaluate constant sides, build atoms                  *)
(* ------------------------------------------------------------------ *)

let extra_of left_schema right_schema =
  let extra = List.filter (fun c -> not (Schema.mem left_schema c)) (Schema.cols right_schema) in
  (extra, Schema.positions right_schema extra)

let rename_partitioning m (p : Dds.partitioning) : Dds.partitioning =
  match p with
  | Dds.Arbitrary -> Dds.Arbitrary
  | Dds.Hashed cols ->
    Dds.Hashed
      (List.map (fun c -> match List.assoc_opt c m with Some fresh -> fresh | None -> c) cols)

let project_partitioning keep (p : Dds.partitioning) : Dds.partitioning =
  match p with
  | Dds.Hashed cols when List.for_all (fun c -> List.mem c keep) cols -> Dds.Hashed cols
  | Dds.Hashed _ | Dds.Arbitrary -> Dds.Arbitrary

let lower_branch ~cluster ~var ~join_mode ~x_schema ~exec_const ~eval_const ~path branch :
    atom list * (unit -> unit) list =
  let workers = Cluster.workers cluster in
  let prepares = ref [] in
  let rec go ~path (t : Term.t) : atom list * Schema.t =
    match t with
    | Term.Var _ -> ([], x_schema)
    | Term.Select (p, u) ->
      let atoms, s = go ~path:(child path 0) u in
      let pred = Pred.compile s p in
      (atoms @ [ A_rop { rop = Some (R_filter pred); out_schema = s; ptrans = Fun.id } ], s)
    | Term.Project (keep, u) ->
      let atoms, s = go ~path:(child path 0) u in
      let out = Schema.restrict s keep in
      let pos = Schema.positions s keep in
      ( atoms
        @ [
            A_rop
              { rop = Some (R_project pos); out_schema = out; ptrans = project_partitioning keep };
          ],
        out )
    | Term.Antiproject (drop, u) ->
      let atoms, s = go ~path:(child path 0) u in
      let keep = List.filter (fun c -> not (List.mem c drop)) (Schema.cols s) in
      let out = Schema.restrict s keep in
      let pos = Schema.positions s keep in
      ( atoms
        @ [
            A_rop
              { rop = Some (R_project pos); out_schema = out; ptrans = project_partitioning keep };
          ],
        out )
    | Term.Rename (m, u) ->
      let atoms, s = go ~path:(child path 0) u in
      let out = Schema.rename m s in
      (atoms @ [ A_rop { rop = None; out_schema = out; ptrans = rename_partitioning m } ], out)
    | Term.Join (a, b) ->
      let (recursive, rpath), (const, cpath) =
        if Term.has_free_var var a then ((a, child path 0), (b, child path 1))
        else ((b, child path 1), (a, child path 0))
      in
      let atoms, sr = go ~path:rpath recursive in
      (match join_mode with
      | `Broadcast ->
        (* metered once at compile time, exactly like [compile_branch];
           the prepared index over the broadcast side is immutable and
           shared by every worker domain *)
        let rel = eval_const ~path:cpath const in
        ignore (Dds.broadcast cluster rel);
        let rs = Rel.schema rel in
        let shared = Schema.common sr rs in
        let out = Schema.append_distinct sr rs in
        let _, extra_pos = extra_of sr rs in
        let idx = Index.build rs shared (Tset.to_seq (Rel.tuples rel)) in
        let rop =
          R_probe
            {
              key_pos = Schema.positions sr shared;
              extra_pos;
              probe = (fun _w key -> Index.probe idx key);
            }
        in
        (atoms @ [ A_rop { rop = Some rop; out_schema = out; ptrans = Fun.id } ], out)
      | `Shuffle ->
        let const_dds = exec_const ~path:cpath const in
        let cs = Dds.schema const_dds in
        let shared = Schema.common sr cs in
        let out = Schema.append_distinct sr cs in
        let _, extra_pos = extra_of sr cs in
        (* constant side co-partitioned once per fixpoint (metered on
           first run unless already hashed right — [Dds.repartition]'s
           own no-op rule), per-worker indexes built lazily inside the
           probe stage and reused by every later iteration *)
        let const_part = ref None in
        let idxs = Array.make workers None in
        prepares :=
          (fun () ->
            if !const_part = None then const_part := Some (Dds.repartition ~by:shared const_dds))
          :: !prepares;
        let probe w key =
          let idx =
            match idxs.(w) with
            | Some i -> i
            | None ->
              let cp = match !const_part with Some d -> d | None -> assert false in
              let i = Index.build cs shared (Tset.to_seq (Dds.partition cp w)) in
              idxs.(w) <- Some i;
              i
          in
          Index.probe idx key
        in
        let rop = R_probe { key_pos = Schema.positions sr shared; extra_pos; probe } in
        ( atoms
          @ [
              A_exch { by = shared; schema = sr };
              A_rop { rop = Some rop; out_schema = out; ptrans = Fun.id };
            ],
          out ))
    | Term.Antijoin (a, b) ->
      let atoms, sr = go ~path:(child path 0) a in
      let rel = eval_const ~path:(child path 1) b in
      ignore (Dds.broadcast cluster rel);
      let rs = Rel.schema rel in
      let shared = Schema.common sr rs in
      let idx = Index.build rs shared (Tset.to_seq (Rel.tuples rel)) in
      let rop =
        R_antiprobe
          { key_pos = Schema.positions sr shared; mem = (fun _w key -> Index.mem idx key) }
      in
      (atoms @ [ A_rop { rop = Some rop; out_schema = sr; ptrans = Fun.id } ], sr)
    | Term.Rel _ | Term.Cst _ | Term.Union _ | Term.Fix _ ->
      assert false (* rejected by [plan_branch] *)
  in
  let atoms, _ = go ~path branch in
  (atoms, List.rev !prepares)

(* ------------------------------------------------------------------ *)
(* Fusion: group consecutive row operators into one closure chain       *)
(* ------------------------------------------------------------------ *)

(* Build the fused pass of one worker: load each input row into the
   entry scratch, run the closure chain, and let the chain's tail emit
   surviving rows into a presized dedup builder. Scratch arrays live for
   the whole fixpoint (zero steady-state allocation); the builder is
   fresh per invocation and becomes the output batch. *)
let build_runner ~w ~in_arity ~out_arity (rops : rop list) : Batch.t -> Batch.t =
  let builder = ref (Batch.Builder.create ~capacity:0 ~arity:out_arity ()) in
  let scratch0 = Array.make in_arity 0 in
  let emit scratch =
    let bld = !builder in
    let s = Batch.Builder.scratch bld in
    Array.blit scratch 0 s 0 out_arity;
    ignore (Batch.Builder.add_scratch bld (Batch.hash_row s))
  in
  let ops =
    List.map
      (function
        | R_filter pred -> Rowchain.Filter pred
        | R_project pos -> Rowchain.Project pos
        | R_probe { key_pos; extra_pos; probe } ->
          Rowchain.Probe { key_pos; extra_pos; probe = probe w }
        | R_antiprobe { key_pos; mem } -> Rowchain.Antiprobe { key_pos; mem = mem w })
      rops
  in
  let chain = Rowchain.compile ~entry:scratch0 ops ~emit in
  fun input ->
    let n = Batch.length input in
    builder := Batch.Builder.create ~capacity:n ~arity:out_arity ();
    let cols = Batch.cols input in
    for row = 0 to n - 1 do
      for c = 0 to in_arity - 1 do
        scratch0.(c) <- cols.(c).(row)
      done;
      chain ()
    done;
    Batch.Builder.batch !builder

let fuse_atoms ~cluster ~x_schema atoms : step list =
  let workers = Cluster.workers cluster in
  let rec group in_schema = function
    | [] -> []
    | A_exch { by; schema } :: rest -> Exch { by; schema } :: group schema rest
    | A_rop _ :: _ as l ->
      let rec collect rops ptrans out_schema = function
        | A_rop { rop; out_schema = os; ptrans = pt } :: rest ->
          let rops = match rop with Some r -> r :: rops | None -> rops in
          collect rops (fun p -> pt (ptrans p)) os rest
        | rest -> (List.rev rops, ptrans, out_schema, rest)
      in
      let rops, ptrans, out_schema, rest = collect [] Fun.id in_schema l in
      let in_arity = Schema.arity in_schema and out_arity = Schema.arity out_schema in
      let step =
        match rops with
        | [] when in_arity = out_arity ->
          (* schema-only segment (pure renames): the batch passes through *)
          Fuse { runners = Array.make workers Fun.id; ptrans }
        | _ ->
          let runners = Array.init workers (fun w -> build_runner ~w ~in_arity ~out_arity rops) in
          Fuse { runners; ptrans }
      in
      step :: group out_schema rest
  in
  group x_schema atoms

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

let compile ~cluster ~var ~join_mode ~x_schema ~typing ~exec_const ~eval_const ~branch_path recs :
    t option =
  if Schema.arity x_schema = 0 then None
  else
    let planned = List.map (plan_branch ~var ~join_mode ~typing ~x_schema) recs in
    if List.exists Result.is_error planned then None
    else begin
      (* every branch compiles: only now evaluate constant sides (in
         interpreter order, branch by branch) and build the fused steps,
         so a fallback verdict never double-evaluates or double-meters *)
      let branches =
        List.map2
          (fun (i, b) out_schema ->
            let atoms, prepares =
              lower_branch ~cluster ~var ~join_mode ~x_schema ~exec_const ~eval_const
                ~path:(branch_path i) b
            in
            {
              steps = fuse_atoms ~cluster ~x_schema atoms;
              out_schema = Result.get_ok out_schema;
              prepares;
            })
          (List.mapi (fun i b -> (i, b)) recs)
          planned
      in
      Some { cluster; x_schema; arity = Schema.arity x_schema; branches }
    end

(* ------------------------------------------------------------------ *)
(* Semi-naive driver over batches                                       *)
(* ------------------------------------------------------------------ *)

let total_rows (bs : Batch.t array) = Array.fold_left (fun acc b -> acc + Batch.length b) 0 bs

let apply_branch cluster br (delta : Batch.t array) (delta_part : Dds.partitioning) :
    Batch.t array * Dds.partitioning =
  List.iter (fun p -> p ()) br.prepares;
  List.fold_left
    (fun (bs, part) step ->
      match step with
      | Exch { by; schema } ->
        if Dds.same_hashing part (Dds.Hashed by) then (bs, part)
        else (Dds.repartition_batches cluster bs ~schema ~by, Dds.Hashed by)
      | Fuse { runners; ptrans } ->
        (Cluster.run_stage cluster (fun w -> runners.(w) bs.(w)), ptrans part))
    (delta, delta_part) br.steps

(* Union the branch outputs into accumulator layout: per partition, a
   presized dedup builder over every branch's rows, permuted into
   [x_schema] order (reusing stored hashes when the permutation is the
   identity). Partitioning follows the interpreter exactly:
   [set_union_local]'s pairwise [same_hashing] fold over the branch
   partitionings, then [relayout_dds]'s arbitrary-unless-ordered rule
   keyed on the *first* branch's schema (the fold's layout). *)
let union_branches ~x_schema ~arity (outs : (Batch.t array * Dds.partitioning * Schema.t) list)
    cluster : Batch.t array * Dds.partitioning =
  match outs with
  | [] -> assert false
  | [ (bs, part, schema) ] when Schema.equal_ordered schema x_schema -> (bs, part)
  | (_, part0, schema0) :: rest ->
    let perms =
      List.map
        (fun (bs, _, schema) ->
          let perm = Schema.reorder_positions ~from:schema ~into:x_schema in
          let identity = ref true in
          Array.iteri (fun i p -> if p <> i then identity := false) perm;
          (bs, perm, !identity))
        outs
    in
    let merged =
      Cluster.run_stage cluster (fun w ->
          let cap = List.fold_left (fun acc (bs, _, _) -> acc + Batch.length bs.(w)) 0 perms in
          let bld = Batch.Builder.create ~capacity:cap ~arity () in
          let scratch = Batch.Builder.scratch bld in
          List.iter
            (fun (bs, perm, identity) ->
              let b = bs.(w) in
              let cols = Batch.cols b and hashes = Batch.hashes b in
              for row = 0 to Batch.length b - 1 do
                for c = 0 to arity - 1 do
                  scratch.(c) <- cols.(perm.(c)).(row)
                done;
                let h = if identity then hashes.(row) else Batch.hash_row scratch in
                ignore (Batch.Builder.add_scratch bld h)
              done)
            perms;
          Batch.Builder.batch bld)
    in
    let u_part =
      List.fold_left
        (fun p (_, p', _) -> if Dds.same_hashing p p' then p else Dds.Arbitrary)
        part0 rest
    in
    let final = if Schema.equal_ordered schema0 x_schema then u_part else Dds.Arbitrary in
    (merged, final)

let run t ~var ~plan_label ~x0 ~x0_private ?delta0 ~per_iter_by ?seen ~max_iterations ~max_tuples
    ~limit () : Dds.t * int * int list =
  let cluster = t.cluster in
  let workers = Cluster.workers cluster in
  let m = Cluster.metrics cluster in
  let arity = t.arity in
  let check_rows n =
    if n > max_tuples then
      raise (limit (Printf.sprintf "dataset exceeds %d tuples" max_tuples))
  in
  let acc =
    Array.init workers (fun w ->
        let p = Dds.partition x0 w in
        if x0_private then p else Tset.copy p)
  in
  let acc_part = ref (Dds.partitioning x0) in
  (* resume entry point: [delta0] restarts the loop with a given frontier
     (already absorbed into [x0] by the caller) instead of the whole
     accumulator — the incremental-maintenance path *)
  let d0 = match delta0 with Some d -> d | None -> x0 in
  let delta = ref (Array.init workers (fun w -> Batch.of_tset ~arity (Dds.partition d0 w))) in
  let delta_part = ref (Dds.partitioning d0) in
  let iterations = ref 0 in
  let deltas = ref [] in
  let continue = ref true in
  while !continue do
    incr iterations;
    if !iterations > max_iterations then
      raise (limit (Printf.sprintf "max iterations exceeded (%s)" plan_label));
    Trace.span (Trace.get ()) ~cat:"fixpoint"
      ~attrs:[ ("var", Trace.Str var); ("i", Trace.Int !iterations) ]
      "iteration"
    @@ fun () ->
    Metrics.record_superstep m;
    let outs =
      List.map
        (fun br ->
          let bs, part = apply_branch cluster br !delta !delta_part in
          (bs, part, br.out_schema))
        t.branches
    in
    let produced, produced_part = union_branches ~x_schema:t.x_schema ~arity outs cluster in
    check_rows (total_rows produced);
    let produced, produced_part =
      match per_iter_by with
      | None -> (produced, produced_part)
      | Some by ->
        if Dds.same_hashing produced_part (Dds.Hashed by) then (produced, produced_part)
        else (Dds.repartition_batches ?seen cluster produced ~schema:t.x_schema ~by, Dds.Hashed by)
    in
    (* absorb: one probe per produced row against the accumulator,
       reusing the stored hash; fresh rows become the next delta *)
    let fresh =
      Cluster.run_stage cluster (fun w ->
          let b = produced.(w) in
          let n = Batch.length b in
          Tset.reserve acc.(w) (Tset.cardinal acc.(w) + n);
          let out = Batch.create ~capacity:(max 1 n) ~arity () in
          let cols = Batch.cols b and hashes = Batch.hashes b in
          for row = 0 to n - 1 do
            if Tset.add_cols acc.(w) cols ~row ~hash:hashes.(row) then Batch.push_row out b row
          done;
          out)
    in
    acc_part := (if Dds.same_hashing !acc_part produced_part then !acc_part else Dds.Arbitrary);
    let fresh_n = total_rows fresh in
    deltas := fresh_n :: !deltas;
    if fresh_n = 0 then continue := false
    else begin
      check_rows (Array.fold_left (fun a p -> a + Tset.cardinal p) 0 acc);
      delta := fresh;
      delta_part := produced_part
    end
  done;
  ( Dds.of_partitions cluster ~schema:t.x_schema ~partitioning:!acc_part acc,
    !iterations,
    List.rev !deltas )

(* ------------------------------------------------------------------ *)
(* Whole-plan shell compilation                                        *)
(* ------------------------------------------------------------------ *)

(* The non-fixpoint shell around [Fix] nodes compiles to the same fused
   chains as the recursive branches: [Exec] lowers each supported
   operator onto a [chain] — per-worker batches plus a pending [rop]
   list — and materializes only where the interpreter observes values
   (join/antijoin cardinal decisions, exchanges, unions, the root).
   Fallback is per subtree: [analyze] is a typing-only pass deciding
   supportability for the whole term before any evaluation (so a
   rejected node never double-evaluates or double-meters), and an
   [Interp] node interprets just itself over batch<->Tset bridges while
   its children stay compiled. *)
module Shell = struct
  type verdict = Compiled | Interp of string

  type static = { s_verdict : verdict; s_schema : Schema.t option; s_children : static list }

  let children_of (t : Term.t) : Term.t list =
    match t with
    | Term.Rel _ | Term.Cst _ | Term.Var _ | Term.Fix _ -> []
    | Term.Select (_, u) | Term.Project (_, u) | Term.Antiproject (_, u) | Term.Rename (_, u) ->
      [ u ]
    | Term.Join (a, b) | Term.Antijoin (a, b) | Term.Union (a, b) -> [ a; b ]

  (* Typing-only supportability: no constant is evaluated here. A node
     interprets when its (or a direct child's) output arity is zero —
     batches cannot carry zero-width rows — or when typing fails (the
     interpreter then reproduces the exact dynamic error). [Fix] nodes
     are shell leaves: the fixpoint itself reports its own per-branch
     compilation separately. *)
  let analyze ~typing (term : Term.t) : static =
    let rec go (t : Term.t) : static =
      let children = List.map go (children_of t) in
      let schema =
        match typing t with
        | s -> Some s
        | exception (Schema.Schema_error _ | Mura.Typing.Type_error _ | Mura.Fcond.Not_fcond _)
          ->
          None
      in
      let verdict =
        match t with
        | Term.Var _ -> Interp "free_var"
        | _ -> (
          match schema with
          | None -> Interp "typing"
          | Some s when Schema.arity s = 0 -> Interp "zero_arity"
          | Some _ ->
            if
              List.exists
                (fun c ->
                  match c.s_schema with Some cs -> Schema.arity cs = 0 | None -> false)
                children
            then Interp "zero_arity_child"
            else Compiled)
      in
      { s_verdict = verdict; s_schema = schema; s_children = children }
    in
    go term

  let verdict_reason = function Compiled -> None | Interp r -> Some r

  (* A shell value: per-worker batches with a pending fused-operator
     suffix. [c_rehash] tracks whether any pending op changes row
     content (project/probe) — if not, materialization preserves rows
     and reuses their stored hashes, and needs no dedup (the base
     partitions are already sets). *)
  type chain = {
    c_base : Batch.t array;
    c_base_schema : Schema.t;
    c_rops : rop list;  (* pending, in application order *)
    c_schema : Schema.t;  (* schema after the pending ops *)
    c_part : Dds.partitioning;
    c_rehash : bool;
  }

  let of_batches ~schema ~part base =
    {
      c_base = base;
      c_base_schema = schema;
      c_rops = [];
      c_schema = schema;
      c_part = part;
      c_rehash = false;
    }

  let of_dds cluster d =
    let arity = Schema.arity (Dds.schema d) in
    let base = Cluster.run_stage cluster (fun w -> Batch.of_tset ~arity (Dds.partition d w)) in
    of_batches ~schema:(Dds.schema d) ~part:(Dds.partitioning d) base

  let schema c = c.c_schema
  let part c = c.c_part
  let set_part c p = { c with c_part = p }
  let is_mat c = c.c_rops = []

  let rows c =
    assert (is_mat c);
    total_rows c.c_base

  let batches c =
    assert (is_mat c);
    c.c_base

  let empty_like c =
    let arity = Schema.arity c.c_schema in
    of_batches ~schema:c.c_schema ~part:c.c_part
      (Array.map (fun _ -> Batch.create ~capacity:1 ~arity ()) c.c_base)

  let batch_tuples (b : Batch.t) : Tuple.t Seq.t = Seq.init (Batch.length b) (Batch.to_tuple b)

  (* Pending-op fusers. Positions are relative to [c_schema] (the schema
     after the already-pending ops), so fused suffixes compose. *)
  let filter pred c = { c with c_rops = c.c_rops @ [ R_filter pred ] }

  let rename_cols m c =
    { c with c_schema = Schema.rename m c.c_schema; c_part = rename_partitioning m c.c_part }

  let project keep c =
    let pos = Schema.positions c.c_schema keep in
    {
      c with
      c_rops = c.c_rops @ [ R_project pos ];
      c_schema = Schema.restrict c.c_schema keep;
      c_part = project_partitioning keep c.c_part;
      c_rehash = true;
    }

  let probe ~key_pos ~extra_pos ~out_schema ~probe c =
    {
      c with
      c_rops = c.c_rops @ [ R_probe { key_pos; extra_pos; probe } ];
      c_schema = out_schema;
      c_rehash = true;
    }

  let antiprobe ~key_pos ~mem c = { c with c_rops = c.c_rops @ [ R_antiprobe { key_pos; mem } ] }

  let reorder ~into c =
    if Schema.equal_ordered c.c_schema into then c
    else
      let perm = Schema.reorder_positions ~from:c.c_schema ~into in
      { c with c_rops = c.c_rops @ [ R_project perm ]; c_schema = into; c_rehash = true }

  (* Content-preserving pass (filters/antiprobes only): surviving rows
     are copied verbatim with their stored hashes; the output stays
     duplicate-free because the base partitions are sets. *)
  let run_keep ~w ~arity (rops : rop list) (b : Batch.t) : Batch.t =
    let scratch = Array.make arity 0 in
    let preds =
      List.map
        (function
          | R_filter p -> fun () -> p scratch
          | R_antiprobe { key_pos; mem } ->
            let nk = Array.length key_pos in
            let key = Array.make nk 0 in
            let mem = mem w in
            fun () ->
              for i = 0 to nk - 1 do
                key.(i) <- scratch.(key_pos.(i))
              done;
              not (mem key)
          | R_project _ | R_probe _ -> assert false)
        rops
    in
    let n = Batch.length b in
    let out = Batch.create ~capacity:(max 1 n) ~arity () in
    let cols = Batch.cols b in
    for row = 0 to n - 1 do
      for c = 0 to arity - 1 do
        scratch.(c) <- cols.(c).(row)
      done;
      if List.for_all (fun p -> p ()) preds then Batch.push_row out b row
    done;
    out

  let materialize cluster c =
    if is_mat c then c
    else begin
      let in_arity = Schema.arity c.c_base_schema in
      let out_arity = Schema.arity c.c_schema in
      let outs =
        if not c.c_rehash then
          Cluster.run_stage cluster (fun w -> run_keep ~w ~arity:in_arity c.c_rops c.c_base.(w))
        else
          Cluster.run_stage cluster (fun w ->
              (build_runner ~w ~in_arity ~out_arity c.c_rops) c.c_base.(w))
      in
      { c with c_base = outs; c_base_schema = c.c_schema; c_rops = []; c_rehash = false }
    end

  (* Metered batch repartition; the caller applies the [same_hashing]
     no-op rule, mirroring [Dds.repartition]. *)
  let repartition cluster c ~by =
    let c = materialize cluster c in
    {
      c with
      c_base = Dds.repartition_batches cluster c.c_base ~schema:c.c_schema ~by;
      c_part = Dds.Hashed by;
    }

  (* Per-worker union into the left chain's layout through a presized
     dedup builder, mirroring [Dds.set_union_local]: stored hashes are
     reused on the left side (and on the right when the permutation is
     the identity), and the output partitioning follows the
     [same_hashing] fold. *)
  let union cluster a b =
    let a = materialize cluster a and b = materialize cluster b in
    let arity = Schema.arity a.c_schema in
    let perm = Schema.reorder_positions ~from:b.c_schema ~into:a.c_schema in
    let identity = ref true in
    Array.iteri (fun i p -> if p <> i then identity := false) perm;
    let identity = !identity in
    let merged =
      Cluster.run_stage cluster (fun w ->
          let ba = a.c_base.(w) and bb = b.c_base.(w) in
          let bld =
            Batch.Builder.create ~capacity:(Batch.length ba + Batch.length bb) ~arity ()
          in
          let scratch = Batch.Builder.scratch bld in
          let acols = Batch.cols ba and ahash = Batch.hashes ba in
          for row = 0 to Batch.length ba - 1 do
            for c = 0 to arity - 1 do
              scratch.(c) <- acols.(c).(row)
            done;
            ignore (Batch.Builder.add_scratch bld ahash.(row))
          done;
          let bcols = Batch.cols bb and bhash = Batch.hashes bb in
          for row = 0 to Batch.length bb - 1 do
            for c = 0 to arity - 1 do
              scratch.(c) <- bcols.(perm.(c)).(row)
            done;
            let h = if identity then bhash.(row) else Batch.hash_row scratch in
            ignore (Batch.Builder.add_scratch bld h)
          done;
          Batch.Builder.batch bld)
    in
    let part = if Dds.same_hashing a.c_part b.c_part then a.c_part else Dds.Arbitrary in
    of_batches ~schema:a.c_schema ~part merged

  let to_dds cluster c =
    let c = materialize cluster c in
    let parts = Cluster.run_stage cluster (fun w -> Batch.to_tset c.c_base.(w)) in
    Dds.of_partitions cluster ~schema:c.c_schema ~partitioning:c.c_part parts
end
