(** Compiled columnar execution core: fused operator pipelines over
    {!Relation.Batch} column blocks.

    [compile] lowers the union-free recursive branches of a fixpoint
    into chains of fused segments (select/project/rename/join-probe as
    one closure chain per worker, streaming rows column-at-a-time with
    no intermediate [Tuple.t] materialisation) separated by metered
    batch exchanges; [run] drives the semi-naive loop over them with a
    mutable per-worker accumulator ({!Relation.Tset.add_cols} probes
    reusing the batch hash column) instead of per-iteration set algebra.

    The interpreted loop in [Exec] is the oracle: [compile] returns
    [None] for any branch shape it does not cover (shuffle-mode
    antijoins, shuffle joins with no shared column, nullary schemas,
    non-F_cond shapes) and the caller falls back. Where the compiled
    path engages, results, iteration counts, per-iteration fresh counts
    and all communication counters (shuffles, records, bytes,
    broadcasts, seen-filter drops) are bit-identical to the interpreter
    by construction; wall-clock derived metrics (stage times, sim time,
    histograms) are outside that contract. *)

module Schema = Relation.Schema
module Rel = Relation.Rel
module Term = Mura.Term
module Dds = Distsim.Dds
module Cluster = Distsim.Cluster

type t
(** A compiled fixpoint: fused per-worker pipelines for every recursive
    branch, plus their once-per-fixpoint preparation hooks. *)

val compile :
  cluster:Cluster.t ->
  var:string ->
  join_mode:[ `Broadcast | `Shuffle ] ->
  x_schema:Schema.t ->
  typing:(Term.t -> Schema.t) ->
  exec_const:(path:string -> Term.t -> Dds.t) ->
  eval_const:(path:string -> Term.t -> Rel.t) ->
  branch_path:(int -> string) ->
  Term.t list ->
  t option
(** Compile the recursive branches of [mu(var = ...)]. A static planning
    pass (typing only — no evaluation, no metering) first decides
    supportability for {e every} branch; only on an all-branches verdict
    are constant sides evaluated (via [exec_const] / [eval_const], in
    interpreter order) and broadcasts metered, so a [None] fallback is
    free and never double-meters. [x_schema] is the accumulator schema
    (the constant part's); [branch_path i] names branch [i]'s node for
    EXPLAIN ANALYZE paths. *)

val run :
  t ->
  var:string ->
  plan_label:string ->
  x0:Dds.t ->
  x0_private:bool ->
  ?delta0:Dds.t ->
  per_iter_by:string list option ->
  ?seen:Dds.seen_filter ->
  max_iterations:int ->
  max_tuples:int ->
  limit:(string -> exn) ->
  unit ->
  Dds.t * int * int list
(** Run the compiled semi-naive loop from [x0]. [x0_private] says the
    caller's initial repartition allocated fresh partitions (they are
    adopted and mutated in place; otherwise a defensive copy is taken).
    [?delta0] resumes an interrupted or incrementally-maintained
    fixpoint: the first iteration's frontier is [delta0] (which the
    caller has already absorbed into [x0]) instead of the whole of
    [x0]; it must share [x0]'s schema. [per_iter_by] is the
    per-iteration repartition key (P_gld's full schema columns; [None]
    for P_plw's narrow loop) with [?seen] attaching the
    iteration-shuffle dedup filter. [limit] builds the resource-limit
    exception ([Exec.Resource_limit] — passed in to keep this module
    below [Exec]). Returns (result, iterations, per-iteration fresh
    counts), exactly like the interpreted driver. *)
