(** Compiled columnar execution core: fused operator pipelines over
    {!Relation.Batch} column blocks.

    [compile] lowers the union-free recursive branches of a fixpoint
    into chains of fused segments (select/project/rename/join-probe as
    one closure chain per worker, streaming rows column-at-a-time with
    no intermediate [Tuple.t] materialisation) separated by metered
    batch exchanges; [run] drives the semi-naive loop over them with a
    mutable per-worker accumulator ({!Relation.Tset.add_cols} probes
    reusing the batch hash column) instead of per-iteration set algebra.

    The interpreted loop in [Exec] is the oracle: [compile] returns
    [None] for any branch shape it does not cover (shuffle-mode
    antijoins, shuffle joins with no shared column, nullary schemas,
    non-F_cond shapes) and the caller falls back. Where the compiled
    path engages, results, iteration counts, per-iteration fresh counts
    and all communication counters (shuffles, records, bytes,
    broadcasts, seen-filter drops) are bit-identical to the interpreter
    by construction; wall-clock derived metrics (stage times, sim time,
    histograms) are outside that contract. *)

module Schema = Relation.Schema
module Rel = Relation.Rel
module Term = Mura.Term
module Dds = Distsim.Dds
module Cluster = Distsim.Cluster

type t
(** A compiled fixpoint: fused per-worker pipelines for every recursive
    branch, plus their once-per-fixpoint preparation hooks. *)

val branch_verdict :
  var:string ->
  join_mode:[ `Broadcast | `Shuffle ] ->
  typing:(Term.t -> Schema.t) ->
  x_schema:Schema.t ->
  Term.t ->
  (unit, string) result
(** Typing-only supportability verdict for one recursive branch, with
    the reason slug a rejection would fall back under (the [reason]
    label of [pipeline_fallback_total]). Evaluates nothing. *)

val reject_reason :
  var:string ->
  join_mode:[ `Broadcast | `Shuffle ] ->
  typing:(Term.t -> Schema.t) ->
  x_schema:Schema.t ->
  Term.t list ->
  string option
(** First reason [compile] would return [None] for these branches, or
    [None] when every branch compiles. *)

val compile :
  cluster:Cluster.t ->
  var:string ->
  join_mode:[ `Broadcast | `Shuffle ] ->
  x_schema:Schema.t ->
  typing:(Term.t -> Schema.t) ->
  exec_const:(path:string -> Term.t -> Dds.t) ->
  eval_const:(path:string -> Term.t -> Rel.t) ->
  branch_path:(int -> string) ->
  Term.t list ->
  t option
(** Compile the recursive branches of [mu(var = ...)]. A static planning
    pass (typing only — no evaluation, no metering) first decides
    supportability for {e every} branch; only on an all-branches verdict
    are constant sides evaluated (via [exec_const] / [eval_const], in
    interpreter order) and broadcasts metered, so a [None] fallback is
    free and never double-meters. [x_schema] is the accumulator schema
    (the constant part's); [branch_path i] names branch [i]'s node for
    EXPLAIN ANALYZE paths. *)

val run :
  t ->
  var:string ->
  plan_label:string ->
  x0:Dds.t ->
  x0_private:bool ->
  ?delta0:Dds.t ->
  per_iter_by:string list option ->
  ?seen:Dds.seen_filter ->
  max_iterations:int ->
  max_tuples:int ->
  limit:(string -> exn) ->
  unit ->
  Dds.t * int * int list
(** Run the compiled semi-naive loop from [x0]. [x0_private] says the
    caller's initial repartition allocated fresh partitions (they are
    adopted and mutated in place; otherwise a defensive copy is taken).
    [?delta0] resumes an interrupted or incrementally-maintained
    fixpoint: the first iteration's frontier is [delta0] (which the
    caller has already absorbed into [x0]) instead of the whole of
    [x0]; it must share [x0]'s schema. [per_iter_by] is the
    per-iteration repartition key (P_gld's full schema columns; [None]
    for P_plw's narrow loop) with [?seen] attaching the
    iteration-shuffle dedup filter. [limit] builds the resource-limit
    exception ([Exec.Resource_limit] — passed in to keep this module
    below [Exec]). Returns (result, iterations, per-iteration fresh
    counts), exactly like the interpreted driver. *)

(** {1 Whole-plan shell compilation}

    The non-fixpoint shell around [Fix] nodes lowers onto the same fused
    chains as the recursive branches. [Exec] drives the lowering (it
    owns operator semantics, size decisions and metering); this module
    provides the typing-only supportability analysis and the chain
    mechanics: per-worker batches with a pending fused-operator suffix,
    materialized only where the interpreter observes values. Fallback is
    per subtree: an [Interp] node interprets just itself over
    batch<->Tset bridges while its children stay compiled, and because
    [analyze] evaluates nothing, a rejected node never double-evaluates
    or double-meters constants. *)
module Shell : sig
  type verdict = Compiled | Interp of string  (** reason slug *)

  type static = {
    s_verdict : verdict;
    s_schema : Schema.t option;  (** [None] when typing fails at this node *)
    s_children : static list;  (** in [children_of] order *)
  }

  val children_of : Term.t -> Term.t list
  (** Shell children of a node. [Fix] nodes are shell leaves (the
      fixpoint reports its own per-branch compilation separately). *)

  val analyze : typing:(Term.t -> Schema.t) -> Term.t -> static
  (** Typing-only whole-term supportability; evaluates nothing. A node
      interprets when its or a direct child's output arity is zero, when
      typing fails at it, or when it is a free variable. *)

  val verdict_reason : verdict -> string option

  type chain
  (** Per-worker batches plus a pending fused-operator suffix. *)

  val of_batches : schema:Schema.t -> part:Dds.partitioning -> Relation.Batch.t array -> chain
  (** Adopt per-worker batches (one per worker) as a materialized chain. *)

  val of_dds : Cluster.t -> Dds.t -> chain
  (** Bridge a dataset's partitions into batches (unmetered adoption). *)

  val to_dds : Cluster.t -> chain -> Dds.t
  (** Materialize and adopt the partitions back as a dataset (unmetered;
      partitioning label carried over). *)

  val schema : chain -> Schema.t
  val part : chain -> Dds.partitioning
  val set_part : chain -> Dds.partitioning -> chain

  val rows : chain -> int
  (** Total rows; the chain must be materialized. *)

  val batches : chain -> Relation.Batch.t array
  (** The per-worker batches; the chain must be materialized. *)

  val materialize : Cluster.t -> chain -> chain
  (** Run the pending suffix: a hash-reusing copy pass when no pending
      op changes row content, otherwise one fused closure chain per
      worker into a presized dedup builder. *)

  val empty_like : chain -> chain
  (** Materialized empty chain with the same schema and partitioning. *)

  val filter : (Relation.Tuple.t -> bool) -> chain -> chain
  val rename_cols : (string * string) list -> chain -> chain
  val project : string list -> chain -> chain

  val probe :
    key_pos:int array ->
    extra_pos:int array ->
    out_schema:Schema.t ->
    probe:(int -> Relation.Tuple.t -> Relation.Tuple.t list) ->
    chain ->
    chain
  (** Fused index join: worker-indexed probe, appending [extra_pos] of
      each match. *)

  val antiprobe : key_pos:int array -> mem:(int -> Relation.Tuple.t -> bool) -> chain -> chain

  val reorder : into:Schema.t -> chain -> chain
  (** Fused column permutation into the given layout (same names). *)

  val union : Cluster.t -> chain -> chain -> chain
  (** Per-worker dedup merge into the left layout, mirroring
      [Dds.set_union_local] (stored-hash reuse, [same_hashing]
      partitioning fold). *)

  val repartition : Cluster.t -> chain -> by:string list -> chain
  (** Metered batch exchange ([Dds.repartition_batches]); the caller
      applies the [same_hashing] no-op rule. *)

  val batch_tuples : Relation.Batch.t -> Relation.Tuple.t Seq.t
  (** Row view of a batch, for driver-side index builds. *)
end
