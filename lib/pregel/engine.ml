module Rel = Relation.Rel
module Schema = Relation.Schema
module Tset = Relation.Tset
module Value = Relation.Value
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics
module Nfa = Rpq.Nfa

exception Engine_failure of string

type config = { cluster : Cluster.t; max_supersteps : int; max_state : int }

let default_config cluster = { cluster; max_supersteps = 100_000; max_state = 500_000_000 }

(* adjacency of one vertex: (label, neighbour) lists, separated by
   direction *)
type vertex_adj = { mutable out_edges : (int * int) list; mutable in_edges : (int * int) list }

type worker_graph = (int, vertex_adj) Hashtbl.t

type graph = {
  config : config;
  parts : worker_graph array;
  n_vertices : int;
  n_edges : int;
}

let owner config v = Value.hash v mod Cluster.workers config.cluster

let adj_of part v =
  match Hashtbl.find_opt part v with
  | Some a -> a
  | None ->
    let a = { out_edges = []; in_edges = [] } in
    Hashtbl.replace part v a;
    a

let load config rel =
  let workers = Cluster.workers config.cluster in
  let parts = Array.init workers (fun _ -> Hashtbl.create 1024) in
  let vertex_set = Hashtbl.create 1024 in
  let n_edges = ref 0 in
  Rel.iter
    (fun tu ->
      match tu with
      | [| s; l; t |] ->
        incr n_edges;
        Hashtbl.replace vertex_set s ();
        Hashtbl.replace vertex_set t ();
        let oa = adj_of parts.(owner config s) s in
        oa.out_edges <- (l, t) :: oa.out_edges;
        let ia = adj_of parts.(owner config t) t in
        ia.in_edges <- (l, s) :: ia.in_edges
      | _ -> invalid_arg "Pregel.load: expected (src, label, trg) edges")
    rel;
  (* shipping the graph to the workers is one initial exchange *)
  Metrics.record_shuffle (Cluster.metrics config.cluster) ~records:!n_edges
    ~bytes:(!n_edges * Metrics.tuple_bytes 3);
  Trace.instant (Trace.get ()) ~cat:"shuffle"
    ~attrs:
      [
        ("op", Trace.Str "pregel.load");
        ("records", Trace.Int !n_edges);
        ("bytes", Trace.Int (!n_edges * Metrics.tuple_bytes 3));
      ]
    "shuffle";
  { config; parts; n_vertices = Hashtbl.length vertex_set; n_edges = !n_edges }

let vertices g = g.n_vertices
let edges g = g.n_edges

type stats = { supersteps : int; messages : int; state_pairs : int }

(* messages are (target_vertex, origin, nfa_state) *)
let eval_rpq ?source ?target g regex =
  let config = g.config in
  let workers = Cluster.workers config.cluster in
  let m = Cluster.metrics config.cluster in
  let nfa = Nfa.of_regex regex in
  if Nfa.accepts_empty nfa then
    raise
      (Rpq.Query.Translation_error
         (Printf.sprintf "path %s can match the empty word" (Rpq.Regex.to_string regex)));
  (* per-worker vertex state: seen (origin, state) pairs per vertex *)
  let seen : (int, Tset.t) Hashtbl.t array =
    Array.init workers (fun _ -> Hashtbl.create 1024)
  in
  let results = Array.init workers (fun _ -> Tset.create ()) in
  let total_state = ref 0 in
  let total_messages = ref 0 in
  let supersteps = ref 0 in
  let label_cache = Hashtbl.create 8 in
  let label_value l =
    match Hashtbl.find_opt label_cache l with
    | Some v -> v
    | None ->
      let v = Value.of_string l in
      Hashtbl.replace label_cache l v;
      v
  in
  (* initial messages: (v, start) for each seed vertex *)
  let initial =
    match source with
    | Some s -> [ (s, s, Nfa.start nfa) ]
    | None ->
      Array.to_list g.parts
      |> List.concat_map (fun part ->
             Hashtbl.fold (fun v _ acc -> (v, v, Nfa.start nfa) :: acc) part [])
  in
  let inbox = Array.init workers (fun _ -> ref []) in
  List.iter (fun ((v, _, _) as msg) -> inbox.(owner config v) := msg :: !(inbox.(owner config v))) initial;
  let pending = ref (List.length initial) in
  while !pending > 0 do
    incr supersteps;
    Trace.span (Trace.get ()) ~cat:"pregel"
      ~attrs:[ ("i", Trace.Int !supersteps); ("pending", Trace.Int !pending) ]
      "superstep"
    @@ fun () ->
    Metrics.record_superstep m;
    if !supersteps > config.max_supersteps then raise (Engine_failure "superstep budget exceeded");
    (* compute phase: one stage across workers *)
    (* resolve label handles on the driver: the interner is not safe to
       call from worker domains *)
    let transitions_of =
      let cache = Hashtbl.create 8 in
      fun q ->
        match Hashtbl.find_opt cache q with
        | Some l -> l
        | None ->
          let l =
            List.map
              (fun ({ Nfa.label; inverse }, q') -> (label_value label, inverse, q'))
              (Nfa.transitions nfa q)
          in
          Hashtbl.replace cache q l;
          l
    in
    for q = 0 to Nfa.size nfa - 1 do
      ignore (transitions_of q)
    done;
    let stage_results =
      Cluster.run_stage config.cluster (fun w ->
          let part = g.parts.(w) in
          let out = ref [] in
          let added = ref 0 in
          List.iter
            (fun (v, origin, q) ->
              let vertex_seen =
                match Hashtbl.find_opt seen.(w) v with
                | Some s -> s
                | None ->
                  let s = Tset.create ~capacity:4 () in
                  Hashtbl.replace seen.(w) v s;
                  s
              in
              if Tset.add vertex_seen [| origin; q |] then begin
                incr added;
                if Nfa.is_accepting nfa q then ignore (Tset.add results.(w) [| origin; v |]);
                match Hashtbl.find_opt part v with
                | None -> ()
                | Some adj ->
                  List.iter
                    (fun (lv, inverse, q') ->
                      let neighbours = if inverse then adj.in_edges else adj.out_edges in
                      List.iter
                        (fun (l, n) -> if l = lv then out := (n, origin, q') :: !out)
                        neighbours)
                    (transitions_of q)
              end)
            !(inbox.(w));
          (!out, !added))
    in
    let outboxes = Array.map fst stage_results in
    Array.iter (fun (_, added) -> total_state := !total_state + added) stage_results;
    if !total_state > config.max_state then
      raise (Engine_failure (Printf.sprintf "state budget exceeded (%d pairs)" !total_state));
    (* message exchange *)
    Array.iter (fun ib -> ib := []) inbox;
    let crossing = ref 0 and count = ref 0 in
    Array.iteri
      (fun w out ->
        List.iter
          (fun ((v, _, _) as msg) ->
            let o = owner config v in
            if o <> w then incr crossing;
            incr count;
            inbox.(o) := msg :: !(inbox.(o)))
          out)
      outboxes;
    total_messages := !total_messages + !count;
    if !count > 0 then begin
      Metrics.record_shuffle m ~records:!crossing ~bytes:(!crossing * Metrics.tuple_bytes 3);
      Trace.instant (Trace.get ()) ~cat:"shuffle"
        ~attrs:
          [
            ("op", Trace.Str "pregel.messages");
            ("records", Trace.Int !crossing);
            ("bytes", Trace.Int (!crossing * Metrics.tuple_bytes 3));
          ]
        "shuffle"
    end;
    if !total_messages > config.max_state then
      raise (Engine_failure (Printf.sprintf "message budget exceeded (%d)" !total_messages));
    pending := !count
  done;
  (* gather results *)
  let schema = Schema.of_list [ "src"; "trg" ] in
  let out = Rel.create schema in
  Array.iter (fun r -> Tset.iter (fun tu -> ignore (Rel.add out tu)) r) results;
  let records = Rel.cardinal out in
  Metrics.record_shuffle m ~records ~bytes:(records * Metrics.tuple_bytes 2);
  Trace.instant (Trace.get ()) ~cat:"shuffle"
    ~attrs:
      [
        ("op", Trace.Str "pregel.gather");
        ("records", Trace.Int records);
        ("bytes", Trace.Int (records * Metrics.tuple_bytes 2));
      ]
    "shuffle";
  let out =
    match target with
    | Some t -> Rel.select (Relation.Pred.Eq_const ("trg", t)) out
    | None -> out
  in
  let out =
    match source with
    | Some s -> Rel.select (Relation.Pred.Eq_const ("src", s)) out
    | None -> out
  in
  (out, { supersteps = !supersteps; messages = !total_messages; state_pairs = !total_state })
