(* Columnar tuple batches: struct-of-arrays storage for the compiled
   execution core. A batch of arity [k] holds [k] unboxed [int array]
   columns plus a parallel column of full-tuple hashes, so a pipeline can
   stream rows column-at-a-time, route on the stored hash, and convert to a
   Tset without ever recomputing [Tuple.hash].

   Invariant maintained by every producer in this module: [hashes.(i)] is
   [Tuple.hash] of row [i] materialised in schema order. *)

type t = {
  arity : int;
  mutable cols : int array array; (* [arity] columns, each >= [len] long *)
  mutable hashes : int array;
  mutable len : int;
}

let arity b = b.arity
let length b = b.len
let cols b = b.cols
let hashes b = b.hashes

let create ?(capacity = 16) ~arity () =
  let cap = max 1 capacity in
  {
    arity;
    cols = Array.init arity (fun _ -> Array.make cap 0);
    hashes = Array.make cap 0;
    len = 0;
  }

let grow b =
  let cap = max 16 (2 * Array.length b.hashes) in
  b.cols <-
    Array.map
      (fun col ->
        let col' = Array.make cap 0 in
        Array.blit col 0 col' 0 b.len;
        col')
      b.cols;
  let hs = Array.make cap 0 in
  Array.blit b.hashes 0 hs 0 b.len;
  b.hashes <- hs

let ensure b n = if n > Array.length b.hashes then grow b

(* Row [i] hash of the key columns [positions] — same formula as
   [Tuple.hash_positions], evaluated against the columns. *)
let hash_positions b positions i =
  let h = ref 0x345678 in
  for k = 0 to Array.length positions - 1 do
    h :=
      (!h * 1000003)
      lxor Value.hash (Array.unsafe_get (Array.unsafe_get b.cols (Array.unsafe_get positions k)) i)
  done;
  !h land max_int

let hash b i = Array.unsafe_get b.hashes i

let to_tuple b i =
  Array.init b.arity (fun c -> Array.unsafe_get (Array.unsafe_get b.cols c) i)

let push b tu h =
  ensure b (b.len + 1);
  for c = 0 to b.arity - 1 do
    Array.unsafe_set (Array.unsafe_get b.cols c) b.len (Array.unsafe_get tu c)
  done;
  Array.unsafe_set b.hashes b.len h;
  b.len <- b.len + 1

(* Append row [row] of [src] (same arity), reusing its stored hash. *)
let push_row b src row =
  ensure b (b.len + 1);
  for c = 0 to b.arity - 1 do
    Array.unsafe_set (Array.unsafe_get b.cols c) b.len
      (Array.unsafe_get (Array.unsafe_get src.cols c) row)
  done;
  Array.unsafe_set b.hashes b.len (Array.unsafe_get src.hashes row);
  b.len <- b.len + 1

let of_tset ~arity s =
  let b = create ~capacity:(Tset.cardinal s) ~arity () in
  Tset.iter (fun tu -> push b tu (Tuple.hash tu)) s;
  b

(* Presized so the inserts never trigger a table growth; rows of a batch
   need not be distinct, the set probe dedups. *)
let to_tset b =
  let s = Tset.create ~capacity:b.len () in
  for i = 0 to b.len - 1 do
    ignore (Tset.add_cols s b.cols ~row:i ~hash:(Array.unsafe_get b.hashes i))
  done;
  s

let add_to_tset b s =
  Tset.reserve s (Tset.cardinal s + b.len);
  for i = 0 to b.len - 1 do
    ignore (Tset.add_cols s b.cols ~row:i ~hash:(Array.unsafe_get b.hashes i))
  done

let iter f b =
  for i = 0 to b.len - 1 do
    f (to_tuple b i)
  done

(* Row range of the [slice]-th of [slices] chunks: same arithmetic as
   [Tset.iter_slice], so chunks concatenate to the batch order. *)
let slice_bounds len ~slice ~slices =
  if slices < 1 || slice < 0 || slice >= slices then invalid_arg "Batch.slice_bounds";
  (slice * len / slices, (slice + 1) * len / slices)

(* Deduplicating builder: an open-addressing index over row ids with a
   reusable scratch row, so a fused pipeline pays zero allocation for a
   candidate row that turns out to be a duplicate. *)
module Builder = struct
  type batch = t

  type t = {
    out : batch;
    mutable slots : int array; (* row id + 1; 0 = empty *)
    mutable mask : int;
    scratch : int array;
  }

  let next_pow2 n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 16

  let create ?(capacity = 16) ~arity () =
    let size = next_pow2 (max 16 (capacity * 2)) in
    {
      out = create ~capacity ~arity ();
      slots = Array.make size 0;
      mask = size - 1;
      scratch = Array.make arity 0;
    }

  let scratch t = t.scratch
  let batch t = t.out
  let length t = t.out.len

  let scratch_matches t row =
    let cols = t.out.cols in
    let rec eq c =
      c >= t.out.arity
      || Array.unsafe_get t.scratch c = Array.unsafe_get (Array.unsafe_get cols c) row
         && eq (c + 1)
    in
    eq 0

  let find t h =
    let i = h land t.mask in
    let rec probe i =
      let r = Array.unsafe_get t.slots i in
      if r = 0 then i
      else if
        Array.unsafe_get t.out.hashes (r - 1) = h && scratch_matches t (r - 1)
      then i
      else probe ((i + 1) land t.mask)
    in
    probe i

  let resize t =
    let size = (t.mask + 1) * 2 in
    let slots = Array.make size 0 in
    let mask = size - 1 in
    for r = 0 to t.out.len - 1 do
      let h = Array.unsafe_get t.out.hashes r in
      let rec probe i = if Array.unsafe_get slots i = 0 then i else probe ((i + 1) land mask) in
      slots.(probe (h land mask)) <- r + 1
    done;
    t.slots <- slots;
    t.mask <- mask

  (* Insert the scratch row if new; [h] must be [Tuple.hash] of the scratch
     row. Returns [true] iff the row was appended. *)
  let add_scratch t h =
    if t.out.len * 4 > (t.mask + 1) * 3 then resize t;
    let i = find t h in
    if Array.unsafe_get t.slots i <> 0 then false
    else begin
      push t.out t.scratch h;
      Array.unsafe_set t.slots i t.out.len;
      true
    end

  let mem_scratch t h =
    let i = find t h in
    Array.unsafe_get t.slots i <> 0
end

(* Full-row hash of the builder scratch (or any [int array] row):
   [Tuple.hash] without the intermediate tuple type annotation. *)
let hash_row (row : int array) =
  let h = ref 0x345678 in
  for i = 0 to Array.length row - 1 do
    h := (!h * 1000003) lxor Value.hash (Array.unsafe_get row i)
  done;
  !h land max_int
