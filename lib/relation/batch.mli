(** Columnar tuple batches (struct-of-arrays) for the compiled execution
    core.

    A batch of arity [k] holds [k] unboxed [int array] columns plus a
    parallel column of full-tuple hashes: fused pipelines stream rows
    column-at-a-time, exchanges route on the stored hash, and batch->set
    conversion reuses it via {!Tset.add_cols} so [Tuple.hash] runs once per
    tuple per iteration. *)

type t

val create : ?capacity:int -> arity:int -> unit -> t
val arity : t -> int
val length : t -> int

val cols : t -> int array array
(** The live column arrays ([arity] of them, each at least [length] long).
    Exposed for pipelines and exchanges; treat as read-only. *)

val hashes : t -> int array
(** Parallel full-tuple hash column: entry [i] is [Tuple.hash] of row [i]. *)

val hash : t -> int -> int
val hash_positions : t -> int array -> int -> int
(** [hash_positions b positions i] is [Tuple.hash_positions positions] of
    row [i], evaluated against the columns (used for map-side routing). *)

val to_tuple : t -> int -> Tuple.t
val push : t -> Tuple.t -> int -> unit
(** [push b tu h] appends a row; [h] must be [Tuple.hash tu]. *)

val push_row : t -> t -> int -> unit
(** [push_row dst src i] appends row [i] of [src] (same arity), reusing its
    stored hash. *)

val of_tset : arity:int -> Tset.t -> t
val to_tset : t -> Tset.t
(** Presized for [length b] entries so the conversion never rehashes; rows
    need not be distinct — the set probe dedups. *)

val add_to_tset : t -> Tset.t -> unit
(** Add every row into an existing set, reserving capacity up front. *)

val iter : (Tuple.t -> unit) -> t -> unit

val slice_bounds : int -> slice:int -> slices:int -> int * int
(** [slice_bounds len ~slice ~slices] is the [\[lo, hi)] row range of the
    [slice]-th of [slices] chunks — same arithmetic as {!Tset.iter_slice},
    so chunks concatenate to the batch order. *)

val hash_row : int array -> int
(** [Tuple.hash] of a raw row (e.g. a builder scratch). *)

(** Deduplicating batch builder: an open-addressing index over row ids with
    a reusable scratch row, so a fused pipeline pays zero allocation for a
    candidate row that turns out to be a duplicate. *)
module Builder : sig
  type batch = t
  type t

  val create : ?capacity:int -> arity:int -> unit -> t

  val scratch : t -> int array
  (** The reusable scratch row; fill it, then call {!add_scratch}. *)

  val add_scratch : t -> int -> bool
  (** [add_scratch t h] appends the scratch row if not already present;
      [h] must be [hash_row] of the scratch. Returns [true] iff appended. *)

  val mem_scratch : t -> int -> bool
  val batch : t -> batch
  val length : t -> int
end
