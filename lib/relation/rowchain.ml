(* Fused row-operator chains: the shared code generator behind the
   compiled execution paths (the distributed pipeline compiler in
   [Physical.Pipeline] and the per-worker local fixpoint compiler in
   [Localdb.Bexec]). A chain is compiled once into nested closures over
   preallocated scratch rows; running it per input row costs no
   allocation beyond what probes return. *)

type op =
  | Filter of (int array -> bool)  (* keep rows satisfying the predicate *)
  | Project of int array  (* new scratch = old scratch at these positions *)
  | Probe of {
      key_pos : int array;  (* key columns, positions in the input scratch *)
      extra_pos : int array;  (* appended columns, positions in the matched tuple *)
      probe : int array -> int array list;  (* key -> matching tuples *)
    }
  | Antiprobe of { key_pos : int array; mem : int array -> bool }

(* Compile [ops] into a closure chain rooted at [entry]: the caller
   fills [entry] with one input row and invokes the returned thunk;
   surviving output rows reach [emit] as the final scratch array (valid
   only for the duration of the call — copy, don't keep). *)
let compile ~(entry : int array) (ops : op list) ~(emit : int array -> unit) : unit -> unit =
  let rec build scratch = function
    | [] -> fun () -> emit scratch
    | Filter pred :: rest ->
      let next = build scratch rest in
      fun () -> if pred scratch then next ()
    | Project pos :: rest ->
      let n = Array.length pos in
      let out = Array.make n 0 in
      let next = build out rest in
      fun () ->
        for i = 0 to n - 1 do
          out.(i) <- scratch.(pos.(i))
        done;
        next ()
    | Probe { key_pos; extra_pos; probe } :: rest ->
      let base = Array.length scratch in
      let nk = Array.length key_pos and ne = Array.length extra_pos in
      let out = Array.make (base + ne) 0 in
      let next = build out rest in
      let key = Array.make nk 0 in
      fun () ->
        for i = 0 to nk - 1 do
          key.(i) <- scratch.(key_pos.(i))
        done;
        (match probe key with
        | [] -> ()
        | matches ->
          Array.blit scratch 0 out 0 base;
          List.iter
            (fun rt ->
              for j = 0 to ne - 1 do
                out.(base + j) <- rt.(extra_pos.(j))
              done;
              next ())
            matches)
    | Antiprobe { key_pos; mem } :: rest ->
      let next = build scratch rest in
      let nk = Array.length key_pos in
      let key = Array.make nk 0 in
      fun () ->
        for i = 0 to nk - 1 do
          key.(i) <- scratch.(key_pos.(i))
        done;
        if not (mem key) then next ()
  in
  build entry ops
