(** Fused row-operator chains shared by the compiled execution paths.

    A chain is a list of relational row operators compiled once into
    nested OCaml closures over preallocated scratch rows. Running the
    chain on a row costs no allocation beyond what [Probe] callbacks
    return, so scan→join→filter→project pipelines execute
    column-at-a-time without materializing intermediates.

    Both [Physical.Pipeline] (distributed fixpoint branches and the
    whole-plan shell) and [Localdb.Bexec] (per-worker local fixpoints
    for P_plw_pg) lower onto this module. *)

type op =
  | Filter of (int array -> bool)
      (** Keep rows satisfying the predicate over the current scratch. *)
  | Project of int array
      (** Replace the scratch by the listed positions (rename/reorder/drop). *)
  | Probe of {
      key_pos : int array;  (** key columns: positions in the current scratch *)
      extra_pos : int array;
          (** appended columns: positions in each matched tuple *)
      probe : int array -> int array list;  (** key -> matching tuples *)
    }
      (** Index join: for each match, emit current row ++ matched extras. *)
  | Antiprobe of { key_pos : int array; mem : int array -> bool }
      (** Anti join: keep rows whose key is absent from the built side. *)

val compile : entry:int array -> op list -> emit:(int array -> unit) -> unit -> unit
(** [compile ~entry ops ~emit] builds the closure chain. The caller
    fills [entry] with one input row (arity = [Array.length entry]) and
    invokes the returned thunk; each surviving output row is passed to
    [emit] as the final scratch array, valid only for the duration of
    the call. *)
