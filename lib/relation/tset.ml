(* Open-addressing (linear probing) hash set of int arrays.

   Empty slots hold the shared zero-length array atom. Genuine zero-arity
   tuples therefore cannot live in the table and are tracked by the
   [has_unit] flag instead. *)

type t = {
  mutable slots : Tuple.t array;
  mutable count : int; (* occupied slots, excluding the unit tuple *)
  mutable mask : int;
  mutable has_unit : bool;
}

let empty_slot : Tuple.t = [||]

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 16

let create ?(capacity = 16) () =
  let size = next_pow2 (max 16 (capacity * 2)) in
  { slots = Array.make size empty_slot; count = 0; mask = size - 1; has_unit = false }

let cardinal s = s.count + if s.has_unit then 1 else 0
let is_empty s = cardinal s = 0

let rec find_slot slots mask tu h =
  let i = h land mask in
  let rec probe i =
    let cur = Array.unsafe_get slots i in
    if Array.length cur = 0 then i
    else if Tuple.equal cur tu then i
    else probe ((i + 1) land mask)
  in
  probe i

and resize_to s size =
  let old = s.slots in
  let slots = Array.make size empty_slot in
  let mask = size - 1 in
  Array.iter
    (fun tu ->
      if Array.length tu > 0 then begin
        let i = find_slot slots mask tu (Tuple.hash tu) in
        Array.unsafe_set slots i tu
      end)
    old;
  s.slots <- slots;
  s.mask <- mask

(* Growth events triggered by inserts (as opposed to explicit presizing via
   [reserve]/[copy_with_capacity], which never count). Presized hot paths —
   batch->set conversion, the merge side of a pooled exchange — are expected
   to keep this at zero; the micro benches assert it. Atomic because worker
   domains insert into disjoint sets concurrently. *)
let rehash_grows = Atomic.make 0
let rehash_grow_count () = Atomic.get rehash_grows
let reset_rehash_grows () = Atomic.set rehash_grows 0

let resize s =
  Atomic.incr rehash_grows;
  resize_to s ((s.mask + 1) * 2)

(* Grow the table so [n] entries fit under the 3/4 load factor without
   any further rehash (a no-op when already big enough). *)
let reserve s n =
  let rec fit size = if n * 4 > size * 3 then fit (size * 2) else size in
  let size = fit (s.mask + 1) in
  if size > s.mask + 1 then resize_to s size

(* [h] must equal [Tuple.hash tu]: callers that already computed the
   hash (e.g. the map side of a two-phase shuffle) pass it through so
   the merge side never rehashes. *)
let add_hashed s tu h =
  Deadline.tick ();
  if Array.length tu = 0 then
    if s.has_unit then false
    else begin
      s.has_unit <- true;
      true
    end
  else begin
    if s.count * 4 > (s.mask + 1) * 3 then resize s;
    let i = find_slot s.slots s.mask tu h in
    if Array.length (Array.unsafe_get s.slots i) > 0 then false
    else begin
      Array.unsafe_set s.slots i tu;
      s.count <- s.count + 1;
      true
    end
  end

let add s tu = add_hashed s tu (if Array.length tu = 0 then 0 else Tuple.hash tu)

let mem s tu =
  if Array.length tu = 0 then s.has_unit
  else
    let i = find_slot s.slots s.mask tu (Tuple.hash tu) in
    Array.length (Array.unsafe_get s.slots i) > 0

(* Column-wise variants: probe for the row [row] of a struct-of-arrays
   column block without materialising it as a tuple. The tuple array is
   allocated only when the insert actually happens — the hot path of the
   compiled executor, where most candidate rows are duplicates. *)
let find_slot_cols slots mask cols row h =
  let arity = Array.length cols in
  let matches tu =
    Array.length tu = arity
    &&
    let rec eq c =
      c >= arity
      || Array.unsafe_get tu c = Array.unsafe_get (Array.unsafe_get cols c) row
         && eq (c + 1)
    in
    eq 0
  in
  let rec probe i =
    let cur = Array.unsafe_get slots i in
    if Array.length cur = 0 then i else if matches cur then i else probe ((i + 1) land mask)
  in
  probe (h land mask)

let add_cols s cols ~row ~hash =
  Deadline.tick ();
  if Array.length cols = 0 then
    if s.has_unit then false
    else begin
      s.has_unit <- true;
      true
    end
  else begin
    if s.count * 4 > (s.mask + 1) * 3 then resize s;
    let i = find_slot_cols s.slots s.mask cols row hash in
    if Array.length (Array.unsafe_get s.slots i) > 0 then false
    else begin
      let tu = Array.init (Array.length cols) (fun c -> Array.unsafe_get (Array.unsafe_get cols c) row) in
      Array.unsafe_set s.slots i tu;
      s.count <- s.count + 1;
      true
    end
  end

let mem_cols s cols ~row ~hash =
  if Array.length cols = 0 then s.has_unit
  else
    let i = find_slot_cols s.slots s.mask cols row hash in
    Array.length (Array.unsafe_get s.slots i) > 0

let iter f s =
  if s.has_unit then f [||];
  Array.iter (fun tu -> if Array.length tu > 0 then f tu) s.slots

(* Contiguous slice of the internal table: slice [k] of [n] scans slots
   [k*size/n, (k+1)*size/n). The unit tuple belongs to slice 0, so the
   concatenation of all slices in order visits exactly the tuples [iter]
   visits, in the same sequence — the invariant the parallel routing of
   [Dds.of_rel] relies on for bit-identical partitions. *)
let iter_slice f s ~slice ~slices =
  if slices < 1 || slice < 0 || slice >= slices then invalid_arg "Tset.iter_slice";
  if slice = 0 && s.has_unit then f [||];
  let size = s.mask + 1 in
  let lo = slice * size / slices and hi = (slice + 1) * size / slices in
  for i = lo to hi - 1 do
    let tu = Array.unsafe_get s.slots i in
    if Array.length tu > 0 then f tu
  done

let fold f s init =
  let acc = ref init in
  iter (fun tu -> acc := f tu !acc) s;
  !acc

exception Found

let exists p s =
  try
    iter (fun tu -> if p tu then raise Found) s;
    false
  with Found -> true

let for_all p s = not (exists (fun tu -> not (p tu)) s)
let to_list s = fold List.cons s []

let to_array s =
  let arr = Array.make (cardinal s) empty_slot in
  let i = ref 0 in
  iter
    (fun tu ->
      arr.(!i) <- tu;
      incr i)
    s;
  arr

let to_seq s = Array.to_seq (to_array s)

let of_list l =
  let s = create ~capacity:(List.length l) () in
  List.iter (fun tu -> ignore (add s tu)) l;
  s

let copy s =
  { slots = Array.copy s.slots; count = s.count; mask = s.mask; has_unit = s.has_unit }

(* Copy presized for [n] entries in one pass: equivalent to [copy] followed
   by [reserve n] (same growth rule, same slot geometry, hence the same
   iteration order) but without materialising the intermediate table. *)
let copy_with_capacity s n =
  let rec fit size = if n * 4 > size * 3 then fit (size * 2) else size in
  let size = fit (s.mask + 1) in
  if size = s.mask + 1 then copy s
  else begin
    let out = { slots = Array.make size empty_slot; count = s.count; mask = size - 1; has_unit = s.has_unit } in
    Array.iter
      (fun tu ->
        if Array.length tu > 0 then begin
          let i = find_slot out.slots out.mask tu (Tuple.hash tu) in
          Array.unsafe_set out.slots i tu
        end)
      s.slots;
    out
  end

(* Fused union + diff: one probe sequence per tuple serves both the
   accumulator insert and the fresh-set insert, reusing the hash. [dst] is
   presized up front so no resize interrupts the scan. *)
let absorb_fresh dst src =
  reserve dst (cardinal dst + cardinal src);
  let fresh = create ~capacity:(cardinal src) () in
  iter
    (fun tu ->
      let h = if Array.length tu = 0 then 0 else Tuple.hash tu in
      if add_hashed dst tu h then ignore (add_hashed fresh tu h))
    src;
  fresh

let add_all dst src = fold (fun tu n -> if add dst tu then n + 1 else n) src 0
let equal a b = cardinal a = cardinal b && for_all (mem b) a
