(** Mutable hash sets of tuples.

    Open-addressing set specialised for [int array] keys; this is the
    storage behind every {!Rel.t} and the workhorse of semi-naive fixpoint
    evaluation (union / membership / difference of deltas). *)

type t

val create : ?capacity:int -> unit -> t

val reserve : t -> int -> unit
(** [reserve s n] grows the table so that [n] elements fit without any
    further internal resize; a no-op when the table is already large
    enough. Used to presize hot-path outputs (joins, unions, exchanges)
    whose cardinality is known or well-estimated up front. *)

val add : t -> Tuple.t -> bool
(** [add s tu] inserts [tu]; returns [true] iff it was not already
    present. The array is stored as-is and must not be mutated after. *)

val mem : t -> Tuple.t -> bool
val cardinal : t -> int
val is_empty : t -> bool
val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool
val to_list : t -> Tuple.t list
val to_array : t -> Tuple.t array

(** Eagerly materialised sequence (safe against later mutation). *)
val to_seq : t -> Tuple.t Seq.t
val of_list : Tuple.t list -> t
val copy : t -> t

val add_all : t -> t -> int
(** [add_all dst src] inserts every tuple of [src] into [dst]; returns the
    number of tuples that were new. *)

val equal : t -> t -> bool
(** Set equality (same cardinality and membership). *)
