(** Mutable hash sets of tuples.

    Open-addressing set specialised for [int array] keys; this is the
    storage behind every {!Rel.t} and the workhorse of semi-naive fixpoint
    evaluation (union / membership / difference of deltas). *)

type t

val create : ?capacity:int -> unit -> t

val reserve : t -> int -> unit
(** [reserve s n] grows the table so that [n] elements fit without any
    further internal resize; a no-op when the table is already large
    enough. Used to presize hot-path outputs (joins, unions, exchanges)
    whose cardinality is known or well-estimated up front. *)

val add : t -> Tuple.t -> bool
(** [add s tu] inserts [tu]; returns [true] iff it was not already
    present. The array is stored as-is and must not be mutated after. *)

val add_hashed : t -> Tuple.t -> int -> bool
(** [add_hashed s tu h] is [add s tu] for a caller that already holds
    [h = Tuple.hash tu] (e.g. the merge side of a two-phase shuffle,
    reusing hashes computed while routing). Passing any other value for
    [h] corrupts the set. *)

val mem : t -> Tuple.t -> bool

val add_cols : t -> int array array -> row:int -> hash:int -> bool
(** [add_cols s cols ~row ~hash] inserts the tuple whose [c]-th value is
    [cols.(c).(row)], probing column-wise and allocating the stored
    [Tuple.t] only when the insert actually happens — the hot path of the
    compiled columnar executor, where most candidate rows are duplicates.
    [hash] must equal [Tuple.hash] of the materialised row. *)

val mem_cols : t -> int array array -> row:int -> hash:int -> bool
(** Column-wise {!mem}: membership for row [row] of a struct-of-arrays
    block without materialising the tuple. *)

val rehash_grow_count : unit -> int
(** Process-wide count of hash-table growths triggered by inserts (explicit
    presizing via {!reserve}/{!copy_with_capacity} never counts). Presized
    hot paths are expected to keep this at zero; the micro benches assert
    it. *)

val reset_rehash_grows : unit -> unit
val cardinal : t -> int
val is_empty : t -> bool
val iter : (Tuple.t -> unit) -> t -> unit

val iter_slice : (Tuple.t -> unit) -> t -> slice:int -> slices:int -> unit
(** [iter_slice f s ~slice ~slices] visits the [slice]-th of [slices]
    disjoint chunks of the set; the chunks in order visit exactly the
    sequence [iter] visits. Lets parallel workers scan one shared set
    without materialising sub-arrays.
    @raise Invalid_argument unless [0 <= slice < slices]. *)

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool
val to_list : t -> Tuple.t list
val to_array : t -> Tuple.t array

(** Eagerly materialised sequence (safe against later mutation). *)
val to_seq : t -> Tuple.t Seq.t
val of_list : Tuple.t list -> t
val copy : t -> t

val copy_with_capacity : t -> int -> t
(** [copy_with_capacity s n] is [copy s] followed by [reserve _ n], done in
    a single pass: the copy is written straight into a table big enough for
    [n] entries instead of copying and immediately rehashing. The resulting
    table has exactly the geometry (and so iteration order) of the two-step
    version. *)

val absorb_fresh : t -> t -> t
(** [absorb_fresh dst src] inserts every tuple of [src] into [dst] (in
    place) and returns the set of tuples that were actually new — i.e. the
    fused form of [union dst src] + [diff src dst], with a single probe and
    a single hash per tuple shared by both tables. [dst] is presized for
    [cardinal dst + cardinal src] up front so the scan never resizes
    mid-run. The semi-naive delta-maintenance kernel (BigDatalog's SetRDD
    trick). *)

val add_all : t -> t -> int
(** [add_all dst src] inserts every tuple of [src] into [dst]; returns the
    number of tuples that were new. *)

val equal : t -> t -> bool
(** Set equality (same cardinality and membership). *)
