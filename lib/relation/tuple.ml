type t = int array

let arity = Array.length

let equal a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec eq i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && eq (i + 1)) in
  eq 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec cmp i =
      if i >= la then 0
      else
        let c = Int.compare (Array.unsafe_get a i) (Array.unsafe_get b i) in
        if c <> 0 then c else cmp (i + 1)
    in
    cmp 0

let hash t =
  let h = ref 0x345678 in
  for i = 0 to Array.length t - 1 do
    h := (!h * 1000003) lxor Value.hash (Array.unsafe_get t i)
  done;
  !h land max_int

let hash_positions positions tu =
  let h = ref 0x345678 in
  for i = 0 to Array.length positions - 1 do
    h := (!h * 1000003) lxor Value.hash (Array.unsafe_get tu (Array.unsafe_get positions i))
  done;
  !h land max_int

let project positions tu = Array.map (fun i -> Array.unsafe_get tu i) positions
let concat = Array.append

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Value.pp)
    t

let to_string t = Format.asprintf "%a" pp t
