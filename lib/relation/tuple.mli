(** Tuples: fixed-arity rows of {!Value.t}, stored unboxed as [int array].

    A tuple on its own carries no column names; its interpretation is given
    by the {!Schema.t} of the relation that holds it. Tuples must be
    treated as immutable once inserted into a relation. *)

type t = int array

val arity : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Order-dependent combination of {!Value.hash} over the components. *)

val hash_positions : int array -> t -> int
(** [hash_positions positions tu] is exactly
    [hash (project positions tu)] without materialising the subtuple —
    the allocation-free key hash used to route tuples in shuffles. *)

val project : int array -> t -> t
(** [project positions tu] extracts the components of [tu] at [positions],
    in order. *)

val concat : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
