module Term = Mura.Term
module Normal = Mura.Normal
module Rel = Relation.Rel
module Schema = Relation.Schema
module Exec = Physical.Exec
module Cluster = Distsim.Cluster
module Metrics = Distsim.Metrics
module Hist = Metrics.Hist

let now_ns () = Unix.gettimeofday () *. 1e9

module Session = struct
  type t = { id : int; name : string; mutable closed : bool }

  let id s = s.id
  let name s = s.name
end

(* A one-shot promise: the first evaluator to need a piece of work
   registers one; everyone else blocks on it. Failures propagate so a
   crashed owner never strands its waiters. *)
type promise = {
  pm : Mutex.t;
  pc : Condition.t;
  mutable state : [ `Pending | `Done of Rel.t | `Failed of exn ];
  p_deps : string list;  (* relation names the computation reads *)
}

let promise_make deps =
  { pm = Mutex.create (); pc = Condition.create (); state = `Pending; p_deps = deps }

let promise_fulfill p st =
  Mutex.lock p.pm;
  p.state <- st;
  Condition.broadcast p.pc;
  Mutex.unlock p.pm

let promise_await p =
  Mutex.lock p.pm;
  while (match p.state with `Pending -> true | _ -> false) do
    Condition.wait p.pc p.pm
  done;
  let st = p.state in
  Mutex.unlock p.pm;
  match st with `Done r -> r | `Failed e -> raise e | `Pending -> assert false

type centry = {
  c_rel : Rel.t;
  c_deps : string list;
  c_bytes : int;
  mutable c_last_use : int;
}

type pentry = { pl_term : Term.t; pl_deps : string list; mutable pl_last_use : int }

type pending = { q_session : int; q_seq : int; mutable q_admitted : bool }

(* Forensic record of a query that breached the slow threshold. *)
type slow_query = {
  sq_query : int;
  sq_session : string;
  sq_key : string;  (* normalized term key *)
  sq_plans : string list;  (* fixpoint plans chosen, evaluation order *)
  sq_iterations : int;
  sq_stages : int;
  sq_straggler_mean : float;  (* mean per-stage max/median worker-time ratio *)
  sq_wait_ns : float;
  sq_total_ns : float;
  sq_plan_hit : bool;
  sq_result_hit : bool;
  sq_shared : bool;
  sq_fix_hits : int;
  sq_sampled : bool;  (* a full trace was captured for this query *)
}

(* A sampled query's captured trace (events carrying its query id). *)
type query_trace = {
  qt_query : int;
  qt_session : string;
  qt_key : string;
  qt_events : Trace.event list;
}

(* A live incremental-repair handle: the converged accumulator of a
   cached fixpoint, kept resident on the workers after the cache entry
   itself is invalidated by an [update]. The update's delta is parked
   here; the next miss replays it through [Exec.Incr.update] — paying
   only the differential resume — instead of recomputing from scratch.

   Pending deltas are a net (inserts, deletes) pair per relation with
   delete-before-insert apply semantics. Folding an arriving batch
   (i, d) into the net (I, D) preserves arrival order:
   I' = (I \ d) ∪ i and D' = (D \ i) ∪ d — a tuple's final presence is
   decided by the last batch that mentions it. *)
type rhandle = {
  r_handle : Exec.Incr.handle;
  r_deps : string list;
  mutable r_ins : (string * Rel.t) list;  (* pending net inserts *)
  mutable r_del : (string * Rel.t) list;  (* pending net deletes *)
  mutable r_last_use : int;
}

type t = {
  cluster : Cluster.t;
  exec_config : Exec.config;
  shell_statics : Exec.shell_cache;
      (* compiled-shell analyses shared by every session this service
         opens; dropped on register (schemas may change) *)
  max_inflight : int;
  plan_capacity : int;
  cache_budget : int;
  max_plans : int;
  lock : Mutex.t;  (* guards every mutable field below *)
  admit_cond : Condition.t;
  cluster_lock : Mutex.t;
      (* serializes actual cluster execution segments; never held while
         waiting on a promise or on admission *)
  mutable tbl : (string * Rel.t) list;
  mutable version : int;
  table_versions : (string, int) Hashtbl.t;  (* name -> version at last register *)
  sessions : (int, Session.t) Hashtbl.t;
  served : (int, int) Hashtbl.t;  (* session id -> evaluations admitted so far *)
  mutable next_session : int;
  mutable next_seq : int;
  mutable pending : pending list;  (* arrival order *)
  mutable inflight : int;
  plan_cache : (string, pentry) Hashtbl.t;
  result_cache : (string, centry) Hashtbl.t;
  mutable cache_bytes : int;
  max_repair_handles : int;  (* 0 disables incremental repair *)
  repair_frac : float;  (* pending-delta / base-size fallback threshold *)
  repair : (string, rhandle) Hashtbl.t;  (* fix normal key -> live handle *)
  q_promises : (string, promise) Hashtbl.t;
      (* whole-query in-flight evaluations, by normal key of the input *)
  f_promises : (string, promise) Hashtbl.t;
      (* in-flight fixpoint subterms, by normal key of the Fix term. Kept
         separate from [q_promises]: a query that IS a closed fixpoint
         registers its whole-query promise under the same key its own
         fixpoint resolution will look up — one shared table would make
         the owner wait on itself *)
  mutable clock : int;  (* LRU use counter *)
  wait_h : Hist.t;
  latency_h : Hist.t;
  mutable closed : bool;
  (* telemetry: query ids, trace sampling, slow-query log *)
  mutable next_query : int;  (* query ids, assigned at submission *)
  sampler : Telemetry.Sampler.t;
  qtracer : Trace.t option;
      (* server-owned tracer for sampled queries; installed as the
         ambient tracer only while sampled evaluations are in flight and
         only when no user tracer is active *)
  mutable capture_refs : int;  (* sampled evaluations in flight *)
  trace_capacity : int;
  mutable traces : query_trace list;  (* newest first, bounded *)
  slow_capacity : int;
  mutable slow_log : slow_query list;  (* newest first, bounded *)
  (* counters *)
  mutable c_submitted : int;
  mutable c_completed : int;
  mutable c_failed : int;
  mutable c_result_hits : int;
  mutable c_shared_joins : int;
  mutable c_result_misses : int;
  mutable c_plan_hits : int;
  mutable c_plan_misses : int;
  mutable c_fix_evals : int;
  mutable c_fix_hits : int;
  mutable c_fix_shared : int;
  mutable c_invalidated : int;
  mutable c_evictions : int;
  mutable c_slow : int;
  mutable c_traces : int;
  mutable c_repaired : int;
  mutable c_repair_fallbacks : int;
}

let create ?(max_inflight = 1) ?(plan_cache_capacity = 128)
    ?(result_cache_bytes = 64 * 1024 * 1024) ?(max_plans = 120) ?(sample_every = 0)
    ?(slow_threshold_ms = infinity) ?(slow_log_capacity = 64) ?(max_repair_handles = 32)
    ?(repair_max_delta_frac = 0.5) ?config ~cluster () =
  if max_inflight < 1 then invalid_arg "Serve.create: max_inflight < 1";
  if max_repair_handles < 0 then invalid_arg "Serve.create: max_repair_handles < 0";
  if repair_max_delta_frac < 0. then invalid_arg "Serve.create: repair_max_delta_frac < 0";
  let exec_config =
    match config with
    | Some c -> { c with Exec.cluster }
    | None -> Exec.default_config cluster
  in
  let qtracer =
    if sample_every > 0 then begin
      let qtr = Trace.make () in
      (* wire the simulated clock like Cluster.make does for --trace, so
         captured per-query traces are deterministic in sequential mode *)
      Trace.set_sim_clock qtr (fun () -> (Cluster.metrics cluster).Metrics.sim_time_ns);
      Some qtr
    end
    else None
  in
  {
    cluster;
    exec_config;
    shell_statics = Exec.shell_cache ();
    max_inflight;
    plan_capacity = plan_cache_capacity;
    cache_budget = result_cache_bytes;
    max_plans;
    lock = Mutex.create ();
    admit_cond = Condition.create ();
    cluster_lock = Mutex.create ();
    tbl = [];
    version = 0;
    table_versions = Hashtbl.create 16;
    sessions = Hashtbl.create 16;
    served = Hashtbl.create 16;
    next_session = 0;
    next_seq = 0;
    pending = [];
    inflight = 0;
    plan_cache = Hashtbl.create 64;
    result_cache = Hashtbl.create 64;
    cache_bytes = 0;
    max_repair_handles;
    repair_frac = repair_max_delta_frac;
    repair = Hashtbl.create 16;
    q_promises = Hashtbl.create 16;
    f_promises = Hashtbl.create 16;
    clock = 0;
    wait_h = Hist.create ();
    latency_h = Hist.create ();
    closed = false;
    next_query = 0;
    sampler =
      Telemetry.Sampler.make ~slow_threshold_ns:(slow_threshold_ms *. 1e6) ~every:sample_every ();
    qtracer;
    capture_refs = 0;
    trace_capacity = 32;
    traces = [];
    slow_capacity = max 0 slow_log_capacity;
    slow_log = [];
    c_submitted = 0;
    c_completed = 0;
    c_failed = 0;
    c_result_hits = 0;
    c_shared_joins = 0;
    c_result_misses = 0;
    c_plan_hits = 0;
    c_plan_misses = 0;
    c_fix_evals = 0;
    c_fix_hits = 0;
    c_fix_shared = 0;
    c_invalidated = 0;
    c_evictions = 0;
    c_slow = 0;
    c_traces = 0;
    c_repaired = 0;
    c_repair_fallbacks = 0;
  }

let cluster t = t.cluster

(* ------------------------------------------------------------------ *)
(* Telemetry feed (ambient registry; strict no-ops when disabled)      *)
(* ------------------------------------------------------------------ *)

let tele_cache ~cache event =
  let r = Telemetry.get () in
  if Telemetry.enabled r then
    Telemetry.inc r ~labels:[ ("cache", cache); ("event", event) ] "serve_cache_total"

let tele_done ~outcome ~session_name ~wait_ns ~latency_ns =
  let r = Telemetry.get () in
  if Telemetry.enabled r then begin
    Telemetry.inc r ~labels:[ ("outcome", outcome) ] "serve_queries_total";
    Telemetry.observe r ~labels:[ ("session", session_name) ] "serve_query_latency_ns" latency_ns;
    if wait_ns > 0. then Telemetry.observe r "serve_admission_wait_ns" wait_ns
  end

let tele_repair ~ns =
  let r = Telemetry.get () in
  if Telemetry.enabled r then begin
    Telemetry.inc r "serve_cache_repaired_total";
    Telemetry.observe r "serve_repair_ns" ns
  end

let tele_repair_fallback ~reason =
  let r = Telemetry.get () in
  if Telemetry.enabled r then
    Telemetry.inc r ~labels:[ ("reason", reason) ] "serve_repair_fallback_total"

(* gauges of the admission queue and result cache; [t.lock] held *)
let tele_gauges t =
  let r = Telemetry.get () in
  if Telemetry.enabled r then begin
    Telemetry.set r "serve_inflight" (float_of_int t.inflight);
    Telemetry.set r "serve_queued" (float_of_int (List.length t.pending));
    Telemetry.set r "serve_result_cache_bytes" (float_of_int t.cache_bytes);
    Telemetry.set r "serve_result_cache_entries" (float_of_int (Hashtbl.length t.result_cache))
  end

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Mutex.unlock t.lock;
  Cluster.shutdown t.cluster

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

let open_session ?(name = "") t =
  Mutex.lock t.lock;
  t.next_session <- t.next_session + 1;
  let id = t.next_session in
  let name = if name = "" then Printf.sprintf "session-%d" id else name in
  let s = { Session.id; name; closed = false } in
  Hashtbl.replace t.sessions id s;
  Mutex.unlock t.lock;
  s

let close_session t (s : Session.t) =
  Mutex.lock t.lock;
  s.Session.closed <- true;
  Hashtbl.remove t.sessions s.Session.id;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Catalog and invalidation                                            *)
(* ------------------------------------------------------------------ *)

let dep_version t name =
  match Hashtbl.find_opt t.table_versions name with Some v -> v | None -> 0

let register t name rel =
  Mutex.lock t.lock;
  Exec.clear_shell_cache t.shell_statics;
  t.version <- t.version + 1;
  Hashtbl.replace t.table_versions name t.version;
  t.tbl <- (name, rel) :: List.remove_assoc name t.tbl;
  (* drop exactly the dependent cache entries *)
  let doomed_results =
    Hashtbl.fold
      (fun k e acc -> if List.mem name e.c_deps then (k, e) :: acc else acc)
      t.result_cache []
  in
  List.iter
    (fun (k, e) ->
      Hashtbl.remove t.result_cache k;
      t.cache_bytes <- t.cache_bytes - e.c_bytes;
      t.c_invalidated <- t.c_invalidated + 1)
    doomed_results;
  let doomed_plans =
    Hashtbl.fold
      (fun k e acc -> if List.mem name e.pl_deps then k :: acc else acc)
      t.plan_cache []
  in
  List.iter
    (fun k ->
      Hashtbl.remove t.plan_cache k;
      t.c_invalidated <- t.c_invalidated + 1)
    doomed_plans;
  (* stop new waiters from joining in-flight evaluations over the old
     contents; owners still fulfill their promise object for waiters
     that attached before this mutation *)
  let purge tbl =
    let doomed =
      Hashtbl.fold (fun k p acc -> if List.mem name p.p_deps then k :: acc else acc) tbl []
    in
    List.iter (Hashtbl.remove tbl) doomed
  in
  purge t.q_promises;
  purge t.f_promises;
  (* a full replacement severs the delta chain: the handle's catalog has
     no net delta to the new contents, so repair is off the table *)
  let doomed_handles =
    Hashtbl.fold (fun k h acc -> if List.mem name h.r_deps then k :: acc else acc) t.repair []
  in
  List.iter (Hashtbl.remove t.repair) doomed_handles;
  Mutex.unlock t.lock

(* Fold an arriving (inserts, deletes) batch for [name] into the net
   pending pair, preserving arrival order (see [rhandle]). *)
let merge_pending ~name ~ins ~del (pi, pd) =
  let get l = List.assoc_opt name l in
  let minus a b =
    match (a, b) with
    | None, _ -> None
    | Some _, None -> a
    | Some a, Some b -> Some (Rel.diff a b)
  in
  let plus a b =
    match (a, b) with None, x -> x | x, None -> x | Some a, Some b -> Some (Rel.union a b)
  in
  let put l = function
    | Some r when not (Rel.is_empty r) -> (name, r) :: List.remove_assoc name l
    | _ -> List.remove_assoc name l
  in
  let ni = plus (minus (get pi) del) ins in
  let nd = plus (minus (get pd) ins) del in
  (put pi ni, put pd nd)

(* Register an edge-batch update to [name]: the catalog advances, the
   dependent cached results are dropped (they must never be served
   stale) — but instead of being forgotten, their live repair handles
   absorb the delta as pending work. The next miss on such a fixpoint
   pays only the differential resume. Plan-cache entries survive: a
   rewritten term stays semantically valid under any catalog contents. *)
let update ?inserts ?deletes t name =
  Mutex.lock t.lock;
  match List.assoc_opt name t.tbl with
  | None ->
    Mutex.unlock t.lock;
    invalid_arg (Printf.sprintf "Serve.update: unknown relation %s" name)
  | Some base ->
    let check what = function
      | Some r when not (Schema.equal_names (Rel.schema r) (Rel.schema base)) ->
        Mutex.unlock t.lock;
        invalid_arg (Printf.sprintf "Serve.update: %s schema mismatch for %s" what name)
      | _ -> ()
    in
    check "insert" inserts;
    check "delete" deletes;
    t.version <- t.version + 1;
    Hashtbl.replace t.table_versions name t.version;
    let updated =
      let after_del = match deletes with Some d -> Rel.diff base d | None -> base in
      match inserts with Some i -> Rel.union after_del i | None -> after_del
    in
    t.tbl <- (name, updated) :: List.remove_assoc name t.tbl;
    let doomed_results =
      Hashtbl.fold
        (fun k e acc -> if List.mem name e.c_deps then (k, e) :: acc else acc)
        t.result_cache []
    in
    List.iter
      (fun (k, e) ->
        Hashtbl.remove t.result_cache k;
        t.cache_bytes <- t.cache_bytes - e.c_bytes;
        t.c_invalidated <- t.c_invalidated + 1)
      doomed_results;
    let purge tbl =
      let doomed =
        Hashtbl.fold (fun k p acc -> if List.mem name p.p_deps then k :: acc else acc) tbl []
      in
      List.iter (Hashtbl.remove tbl) doomed
    in
    purge t.q_promises;
    purge t.f_promises;
    Hashtbl.iter
      (fun _ h ->
        if List.mem name h.r_deps then begin
          let pi, pd = merge_pending ~name ~ins:inserts ~del:deletes (h.r_ins, h.r_del) in
          h.r_ins <- pi;
          h.r_del <- pd
        end)
      t.repair;
    Mutex.unlock t.lock

let graph_version t =
  Mutex.lock t.lock;
  let v = t.version in
  Mutex.unlock t.lock;
  v

let relation t name =
  Mutex.lock t.lock;
  let r = List.assoc_opt name t.tbl in
  Mutex.unlock t.lock;
  r

let tables t =
  Mutex.lock t.lock;
  let l = t.tbl in
  Mutex.unlock t.lock;
  l

(* ------------------------------------------------------------------ *)
(* Result cache (LRU over a byte budget)                               *)
(* ------------------------------------------------------------------ *)

let rel_bytes rel =
  let arity = List.length (Schema.cols (Rel.schema rel)) in
  64 + (Metrics.tuple_bytes arity * Rel.cardinal rel)

(* all cache helpers run with [t.lock] held *)

let cache_find t key =
  match Hashtbl.find_opt t.result_cache key with
  | Some e ->
    t.clock <- t.clock + 1;
    e.c_last_use <- t.clock;
    Some e.c_rel
  | None -> None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, e') when e'.c_last_use <= e.c_last_use -> acc
        | _ -> Some (k, e))
      t.result_cache None
  in
  match victim with
  | None -> t.cache_bytes <- 0
  | Some (k, e) ->
    Hashtbl.remove t.result_cache k;
    t.cache_bytes <- t.cache_bytes - e.c_bytes;
    t.c_evictions <- t.c_evictions + 1

(* Cache a result computed against the catalog as of version [v0] —
   unless one of its inputs was re-registered since (the result would be
   stale) or it alone exceeds the whole budget. *)
let cache_store t ~key ~deps ~v0 rel =
  let fresh = List.for_all (fun d -> dep_version t d <= v0) deps in
  if fresh && not (Hashtbl.mem t.result_cache key) then begin
    let bytes = rel_bytes rel in
    if bytes <= t.cache_budget then begin
      t.clock <- t.clock + 1;
      Hashtbl.replace t.result_cache key
        { c_rel = rel; c_deps = deps; c_bytes = bytes; c_last_use = t.clock };
      t.cache_bytes <- t.cache_bytes + bytes;
      while t.cache_bytes > t.cache_budget do
        evict_lru t
      done
    end
  end

(* ------------------------------------------------------------------ *)
(* Plan cache (LRU over an entry count)                                *)
(* ------------------------------------------------------------------ *)

let plan_find t key =
  match Hashtbl.find_opt t.plan_cache key with
  | Some e ->
    t.clock <- t.clock + 1;
    e.pl_last_use <- t.clock;
    Some e.pl_term
  | None -> None

let plan_store t key term deps =
  if not (Hashtbl.mem t.plan_cache key) then begin
    t.clock <- t.clock + 1;
    Hashtbl.replace t.plan_cache key { pl_term = term; pl_deps = deps; pl_last_use = t.clock };
    while Hashtbl.length t.plan_cache > t.plan_capacity do
      let victim =
        Hashtbl.fold
          (fun k e acc ->
            match acc with
            | Some (_, u) when u <= e.pl_last_use -> acc
            | _ -> Some (k, e.pl_last_use))
          t.plan_cache None
      in
      match victim with None -> () | Some (k, _) -> Hashtbl.remove t.plan_cache k
    done
  end

(* ------------------------------------------------------------------ *)
(* Fair admission                                                      *)
(* ------------------------------------------------------------------ *)

let fair_pick ~served pending =
  List.fold_left
    (fun best (s, q) ->
      match best with
      | None -> Some (s, q)
      | Some (bs, bq) ->
        if (served s, q) < (served bs, bq) then Some (s, q) else best)
    None pending

let served_count t sid =
  match Hashtbl.find_opt t.served sid with Some n -> n | None -> 0

(* with [t.lock] held: admit pending entries while slots are free *)
let rec schedule t =
  if t.inflight < t.max_inflight && t.pending <> [] then begin
    match
      fair_pick
        ~served:(served_count t)
        (List.map (fun p -> (p.q_session, p.q_seq)) t.pending)
    with
    | None -> ()
    | Some (_, seq) ->
      let chosen = List.find (fun p -> p.q_seq = seq) t.pending in
      t.pending <- List.filter (fun p -> p.q_seq <> seq) t.pending;
      chosen.q_admitted <- true;
      t.inflight <- t.inflight + 1;
      Hashtbl.replace t.served chosen.q_session (served_count t chosen.q_session + 1);
      Condition.broadcast t.admit_cond;
      schedule t
  end

(* blocks until admitted; returns the time spent queued *)
let admit t sid =
  let t0 = now_ns () in
  Mutex.lock t.lock;
  t.next_seq <- t.next_seq + 1;
  let me = { q_session = sid; q_seq = t.next_seq; q_admitted = false } in
  t.pending <- t.pending @ [ me ];
  schedule t;
  tele_gauges t;
  while not me.q_admitted do
    Condition.wait t.admit_cond t.lock
  done;
  tele_gauges t;
  Mutex.unlock t.lock;
  now_ns () -. t0

let release t =
  Mutex.lock t.lock;
  t.inflight <- t.inflight - 1;
  schedule t;
  tele_gauges t;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let optimize_term t tbl term =
  let tenv = Mura.Typing.env (List.map (fun (n, r) -> (n, Rel.schema r)) tbl) in
  let stats = Cost.Stats.of_tables tbl in
  Rewrite.Engine.optimize ~max_plans:t.max_plans ~cost:(Cost.Estimate.cost stats) tenv term

(* per-evaluation accounting, folded into the response and (for queries
   breaching the slow threshold) the slow-query log *)
type eval_stats = {
  mutable e_iters : int;
  mutable e_fix_hits : int;
  mutable e_repaired : int;  (* fixpoints answered by incremental repair *)
  mutable e_plans : string list;  (* fixpoint plans chosen, reverse order *)
  mutable e_stages : int;  (* cluster stages this evaluation ran *)
  mutable e_strag_sum : float;  (* sum of per-stage straggler ratios *)
  mutable e_strag_n : int;
}

let eval_stats_make () =
  {
    e_iters = 0;
    e_fix_hits = 0;
    e_repaired = 0;
    e_plans = [];
    e_stages = 0;
    e_strag_sum = 0.;
    e_strag_n = 0;
  }

(* One cluster segment. Admission bounds how many evaluators exist; this
   lock makes stage interleaving impossible even with max_inflight > 1
   (the Cluster.Concurrent_dispatch guard would reject it loudly).
   Holding the cluster lock also makes the per-segment deltas of the
   shared cluster metrics (stages, straggler ratios) attributable to
   this evaluation. *)
let exec_on_cluster t ~tbl ~st term =
  Mutex.lock t.cluster_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.cluster_lock) @@ fun () ->
  let m = Cluster.metrics t.cluster in
  let stages0 = m.Metrics.stages in
  let strag_sum0 = Hist.total m.Metrics.straggler in
  let strag_n0 = Hist.count m.Metrics.straggler in
  let tr = Trace.get () in
  let rel =
    Trace.span tr ~cat:"serve" "serve.eval" @@ fun () ->
    let ctx = Exec.session ~shell_cache:t.shell_statics t.exec_config tbl in
    let rel = Exec.run ctx term in
    List.iter
      (fun (fr : Exec.fix_report) ->
        st.e_iters <- st.e_iters + fr.iterations;
        st.e_plans <- Exec.plan_name fr.Exec.plan :: st.e_plans)
      (Exec.report ctx).Exec.fixpoints;
    rel
  in
  st.e_stages <- st.e_stages + (m.Metrics.stages - stages0);
  st.e_strag_sum <- st.e_strag_sum +. (Hist.total m.Metrics.straggler -. strag_sum0);
  st.e_strag_n <- st.e_strag_n + (Hist.count m.Metrics.straggler - strag_n0);
  rel

(* ------------------------------------------------------------------ *)
(* Incremental repair of cached fixpoints                              *)
(* ------------------------------------------------------------------ *)

(* with [t.lock] held: evict the least-recently-used repair handle *)
let evict_repair_lru t =
  let victim =
    Hashtbl.fold
      (fun k h acc ->
        match acc with Some (_, u) when u <= h.r_last_use -> acc | _ -> Some (k, h.r_last_use))
      t.repair None
  in
  match victim with None -> () | Some (k, _) -> Hashtbl.remove t.repair k

(* Try to answer a missed fixpoint from its live repair handle by
   replaying the pending delta through [Exec.Incr.update]. [Some rel]
   reflects the handle's take-time catalog, which the [dep_version]
   guard pins to the query's snapshot [v0]. Falls back ([None], handle
   dropped) when the pending delta outgrew [repair_frac] of the base
   relations, when the differential calculus refuses the update, or
   when the resume dies mid-flight (the accumulator is then corrupt).
   Never called with a lock held. *)
let try_repair t ~v0 ~st key =
  if t.max_repair_handles = 0 then None
  else begin
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.repair key with
    | None ->
      Mutex.unlock t.lock;
      None
    | Some h ->
      if not (List.for_all (fun d -> dep_version t d <= v0) h.r_deps) then begin
        (* a dep moved past this query's snapshot: the handle (which
           repairs to the latest catalog) would answer a different
           question; leave it for later queries and evaluate against
           the snapshot *)
        Mutex.unlock t.lock;
        None
      end
      else begin
        let card l = List.fold_left (fun a (_, r) -> a + Rel.cardinal r) 0 l in
        let base =
          List.fold_left
            (fun a d ->
              a + match List.assoc_opt d t.tbl with Some r -> Rel.cardinal r | None -> 0)
            0 h.r_deps
        in
        if float_of_int (card h.r_ins + card h.r_del) > t.repair_frac *. float_of_int (max 1 base)
        then begin
          Hashtbl.remove t.repair key;
          t.c_repair_fallbacks <- t.c_repair_fallbacks + 1;
          Mutex.unlock t.lock;
          tele_repair_fallback ~reason:"oversized";
          None
        end
        else begin
          let ins = h.r_ins and del = h.r_del in
          h.r_ins <- [];
          h.r_del <- [];
          t.clock <- t.clock + 1;
          h.r_last_use <- t.clock;
          Mutex.unlock t.lock;
          let t0 = now_ns () in
          Mutex.lock t.cluster_lock;
          let res =
            Fun.protect ~finally:(fun () -> Mutex.unlock t.cluster_lock) @@ fun () ->
            let m = Cluster.metrics t.cluster in
            let stages0 = m.Metrics.stages in
            let strag_sum0 = Hist.total m.Metrics.straggler in
            let strag_n0 = Hist.count m.Metrics.straggler in
            let tr = Trace.get () in
            let res =
              Trace.span tr ~cat:"serve" "serve.repair" @@ fun () ->
              match Exec.Incr.update ~inserts:ins ~deletes:del h.r_handle with
              | `Repaired (rel, iters) ->
                st.e_iters <- st.e_iters + iters;
                st.e_plans <-
                  (Exec.plan_name (Exec.Incr.plan h.r_handle) ^ "(incr)") :: st.e_plans;
                `Repaired rel
              | `Unsupported _ -> `Fallback "unsupported"
              | exception _ -> `Fallback "error"
            in
            st.e_stages <- st.e_stages + (m.Metrics.stages - stages0);
            st.e_strag_sum <- st.e_strag_sum +. (Hist.total m.Metrics.straggler -. strag_sum0);
            st.e_strag_n <- st.e_strag_n + (Hist.count m.Metrics.straggler - strag_n0);
            res
          in
          match res with
          | `Repaired rel ->
            st.e_repaired <- st.e_repaired + 1;
            tele_repair ~ns:(now_ns () -. t0);
            Some rel
          | `Fallback reason ->
            Mutex.lock t.lock;
            (match Hashtbl.find_opt t.repair key with
            | Some h' when h' == h -> Hashtbl.remove t.repair key
            | _ -> ());
            t.c_repair_fallbacks <- t.c_repair_fallbacks + 1;
            Mutex.unlock t.lock;
            tele_repair_fallback ~reason;
            None
        end
      end
  end

(* Evaluate a fixpoint from scratch while retaining its converged
   accumulator as a repair handle; [None] when the incremental layer
   cannot host this term (it then runs through the plain executor). *)
let establish_on_cluster t ~tbl ~st fix_term =
  Mutex.lock t.cluster_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.cluster_lock) @@ fun () ->
  let m = Cluster.metrics t.cluster in
  let stages0 = m.Metrics.stages in
  let strag_sum0 = Hist.total m.Metrics.straggler in
  let strag_n0 = Hist.count m.Metrics.straggler in
  let tr = Trace.get () in
  let res =
    Trace.span tr ~cat:"serve" "serve.eval" @@ fun () ->
    match Exec.Incr.establish t.exec_config ~tables:tbl fix_term with
    | h ->
      List.iter
        (fun (fr : Exec.fix_report) ->
          st.e_iters <- st.e_iters + fr.iterations;
          st.e_plans <- Exec.plan_name fr.Exec.plan :: st.e_plans)
        (Exec.Incr.establish_report h);
      Some (h, Exec.Incr.result h)
    | exception Exec.Incr.Unsupported _ -> None
  in
  st.e_stages <- st.e_stages + (m.Metrics.stages - stages0);
  st.e_strag_sum <- st.e_strag_sum +. (Hist.total m.Metrics.straggler -. strag_sum0);
  st.e_strag_n <- st.e_strag_n + (Hist.count m.Metrics.straggler - strag_n0);
  res

(* Evaluate a missed closed fixpoint: repair from a live handle when one
   is current, otherwise evaluate from scratch — keeping the converged
   accumulator as a fresh handle when repair is enabled. Returns the
   result and whether it came from a repair. *)
let eval_fix t ~tbl ~v0 ~st ~key ~deps fix_term =
  match try_repair t ~v0 ~st key with
  | Some rel -> (rel, true)
  | None ->
    if t.max_repair_handles = 0 then (exec_on_cluster t ~tbl ~st fix_term, false)
    else begin
      match establish_on_cluster t ~tbl ~st fix_term with
      | None -> (exec_on_cluster t ~tbl ~st fix_term, false)
      | Some (h, rel) ->
        Mutex.lock t.lock;
        (* install unless an update landed mid-evaluation (the handle
           reflects a stale snapshot and its delta was never parked) or
           a more current handle survived under this key *)
        if
          List.for_all (fun d -> dep_version t d <= v0) deps
          && not (Hashtbl.mem t.repair key)
        then begin
          t.clock <- t.clock + 1;
          Hashtbl.replace t.repair key
            { r_handle = h; r_deps = deps; r_ins = []; r_del = []; r_last_use = t.clock };
          while Hashtbl.length t.repair > t.max_repair_handles do
            evict_repair_lru t
          done
        end;
        Mutex.unlock t.lock;
        (rel, false)
    end

(* Resolve one maximal closed Fix subterm through cache and promise
   table; evaluate it at most once process-wide per (normal key,
   catalog state). Never called with any lock held. *)
let resolve_fix t ~tbl ~v0 ~st fix_term =
  let key = Normal.key fix_term in
  let deps = Term.free_rels fix_term in
  Mutex.lock t.lock;
  match cache_find t key with
  | Some rel ->
    t.c_fix_hits <- t.c_fix_hits + 1;
    st.e_fix_hits <- st.e_fix_hits + 1;
    Mutex.unlock t.lock;
    tele_cache ~cache:"fix" "hit";
    rel
  | None -> (
    match Hashtbl.find_opt t.f_promises key with
    | Some p ->
      t.c_fix_shared <- t.c_fix_shared + 1;
      st.e_fix_hits <- st.e_fix_hits + 1;
      Mutex.unlock t.lock;
      tele_cache ~cache:"fix" "shared";
      promise_await p
    | None -> (
      let p = promise_make deps in
      Hashtbl.replace t.f_promises key p;
      Mutex.unlock t.lock;
      let forget () =
        (* only our own registration: [register] may have purged it and a
           later evaluator may have installed a fresh one under this key *)
        Mutex.lock t.lock;
        (match Hashtbl.find_opt t.f_promises key with
        | Some p' when p' == p -> Hashtbl.remove t.f_promises key
        | _ -> ());
        Mutex.unlock t.lock
      in
      match eval_fix t ~tbl ~v0 ~st ~key ~deps fix_term with
      | rel, repaired ->
        Mutex.lock t.lock;
        if repaired then t.c_repaired <- t.c_repaired + 1
        else t.c_fix_evals <- t.c_fix_evals + 1;
        cache_store t ~key ~deps ~v0 rel;
        tele_gauges t;
        Mutex.unlock t.lock;
        tele_cache ~cache:"fix" (if repaired then "repaired" else "eval");
        forget ();
        promise_fulfill p (`Done rel);
        rel
      | exception e ->
        forget ();
        promise_fulfill p (`Failed e);
        raise e))

(* Substitute every maximal closed Fix subterm by its (cached, shared or
   freshly evaluated) value. Closed subterms denote the same relation in
   any context, so splicing them in as [Cst] is sound; [Fix] nodes with
   free recursion variables only occur under a closed ancestor and are
   never extracted on their own. *)
let rec resolve_fixes t ~tbl ~v0 ~st (term : Term.t) : Term.t =
  let r = resolve_fixes t ~tbl ~v0 ~st in
  match term with
  | Term.Fix _ when Term.free_vars term = [] -> Term.Cst (resolve_fix t ~tbl ~v0 ~st term)
  | Term.Rel _ | Term.Var _ | Term.Cst _ -> term
  | Term.Select (p, u) -> Term.Select (p, r u)
  | Term.Project (c, u) -> Term.Project (c, r u)
  | Term.Antiproject (c, u) -> Term.Antiproject (c, r u)
  | Term.Rename (m, u) -> Term.Rename (m, r u)
  | Term.Join (a, b) -> Term.Join (r a, r b)
  | Term.Antijoin (a, b) -> Term.Antijoin (r a, r b)
  | Term.Union (a, b) -> Term.Union (r a, r b)
  | Term.Fix (x, body) -> Term.Fix (x, r body)

(* the admitted-evaluation body: plan, resolve fixpoints, run residual *)
let evaluate t ~key ~deps ~v0 ~tbl ~optimize ~st term =
  let plan, plan_hit =
    if not optimize then (term, false)
    else begin
      Mutex.lock t.lock;
      match plan_find t key with
      | Some pl ->
        t.c_plan_hits <- t.c_plan_hits + 1;
        Mutex.unlock t.lock;
        tele_cache ~cache:"plan" "hit";
        (pl, true)
      | None ->
        t.c_plan_misses <- t.c_plan_misses + 1;
        Mutex.unlock t.lock;
        tele_cache ~cache:"plan" "miss";
        (* rewriting is pure CPU work — run it outside the lock *)
        let best = optimize_term t tbl term in
        Mutex.lock t.lock;
        plan_store t key best deps;
        Mutex.unlock t.lock;
        (best, false)
    end
  in
  let residual = resolve_fixes t ~tbl ~v0 ~st plan in
  let rel =
    match residual with
    | Term.Cst r -> r (* the whole plan was one shared fixpoint *)
    | _ -> exec_on_cluster t ~tbl ~st residual
  in
  Mutex.lock t.lock;
  cache_store t ~key ~deps ~v0 rel;
  tele_gauges t;
  Mutex.unlock t.lock;
  (rel, plan_hit)

type response = {
  rel : Rel.t;
  session : int;
  query_id : int;
  sampled : bool;
  plan_hit : bool;
  result_hit : bool;
  shared : bool;
  fix_hits : int;
  repaired : bool;  (* at least one fixpoint was incrementally repaired *)
  iterations : int;
  wait_ns : float;
  exec_ns : float;
}

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* with [t.lock] held: count a slow query and append it to the bounded
   log (oldest entries fall off the end) *)
let record_slow_locked t ~qid ~session ~key ~st ~wait_ns ~total_ns ~plan_hit ~result_hit ~shared
    ~sampled =
  if Telemetry.Sampler.slow t.sampler ~ns:total_ns then begin
    t.c_slow <- t.c_slow + 1;
    if t.slow_capacity > 0 then begin
      let entry =
        {
          sq_query = qid;
          sq_session = session;
          sq_key = key;
          sq_plans = List.rev st.e_plans;
          sq_iterations = st.e_iters;
          sq_stages = st.e_stages;
          sq_straggler_mean =
            (if st.e_strag_n = 0 then 0. else st.e_strag_sum /. float_of_int st.e_strag_n);
          sq_wait_ns = wait_ns;
          sq_total_ns = total_ns;
          sq_plan_hit = plan_hit;
          sq_result_hit = result_hit;
          sq_shared = shared;
          sq_fix_hits = st.e_fix_hits;
          sq_sampled = sampled;
        }
      in
      t.slow_log <- take t.slow_capacity (entry :: t.slow_log)
    end;
    Telemetry.inc (Telemetry.get ()) "serve_slow_queries_total"
  end

let query ?(optimize = true) t (sn : Session.t) term =
  let t_start = now_ns () in
  let key = Normal.key term in
  let deps = Term.free_rels term in
  Mutex.lock t.lock;
  if t.closed || sn.Session.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Serve.query: closed session or server"
  end;
  t.c_submitted <- t.c_submitted + 1;
  t.next_query <- t.next_query + 1;
  let qid = t.next_query in
  let sampled = Telemetry.Sampler.sample_id t.sampler qid in
  let r = Telemetry.get () in
  if Telemetry.enabled r then Telemetry.inc r "serve_queries_submitted_total";
  let finish_hit rel ~shared =
    (if shared then t.c_shared_joins <- t.c_shared_joins + 1
     else t.c_result_hits <- t.c_result_hits + 1);
    t.c_completed <- t.c_completed + 1;
    let total_ns = now_ns () -. t_start in
    Hist.add t.latency_h total_ns;
    record_slow_locked t ~qid ~session:sn.Session.name ~key ~st:(eval_stats_make ())
      ~wait_ns:0. ~total_ns ~plan_hit:false ~result_hit:true ~shared ~sampled:false;
    tele_done
      ~outcome:(if shared then "shared" else "hit")
      ~session_name:sn.Session.name ~wait_ns:0. ~latency_ns:total_ns;
    tele_cache ~cache:"result" (if shared then "shared" else "hit");
    {
      rel;
      session = sn.Session.id;
      query_id = qid;
      sampled = false;
      plan_hit = false;
      result_hit = true;
      shared;
      fix_hits = 0;
      repaired = false;
      iterations = 0;
      wait_ns = 0.;
      exec_ns = 0.;
    }
  in
  match cache_find t key with
  | Some rel ->
    let resp = finish_hit rel ~shared:false in
    Mutex.unlock t.lock;
    resp
  | None -> (
    match Hashtbl.find_opt t.q_promises key with
    | Some p -> (
      Mutex.unlock t.lock;
      (* identical query already in flight: batch onto it *)
      match promise_await p with
      | rel ->
        Mutex.lock t.lock;
        let resp = finish_hit rel ~shared:true in
        Mutex.unlock t.lock;
        resp
      | exception e ->
        Mutex.lock t.lock;
        t.c_failed <- t.c_failed + 1;
        Mutex.unlock t.lock;
        tele_done ~outcome:"failed" ~session_name:sn.Session.name ~wait_ns:0.
          ~latency_ns:(now_ns () -. t_start);
        raise e)
    | None -> (
      (* we own the evaluation: snapshot the catalog, publish a promise *)
      let v0 = t.version in
      let tbl = t.tbl in
      let p = promise_make deps in
      Hashtbl.replace t.q_promises key p;
      t.c_result_misses <- t.c_result_misses + 1;
      (* start a sampled-trace capture: install the server's tracer as
         the ambient one unless the user already has their own (then
         their trace simply carries the query-id attrs). Refcounted so
         overlapping sampled queries share one installation. *)
      let capturing =
        sampled
        && (match t.qtracer with
           | None -> false
           | Some qtr ->
             let amb = Trace.get () in
             if Trace.enabled amb && amb != qtr then false
             else begin
               t.capture_refs <- t.capture_refs + 1;
               if t.capture_refs = 1 then begin
                 Trace.clear qtr;
                 Trace.install qtr
               end;
               true
             end)
      in
      Mutex.unlock t.lock;
      tele_cache ~cache:"result" "miss";
      let finish_capture () =
        if capturing then
          match t.qtracer with
          | None -> ()
          | Some qtr ->
            Mutex.lock t.lock;
            (* extract this query's events (by query_id attr) before a
               later sampled query can clear the collector *)
            let evs =
              List.filter
                (fun (e : Trace.event) ->
                  match List.assoc_opt "query_id" e.Trace.attrs with
                  | Some (Trace.Int q) -> q = qid
                  | _ -> false)
                (Trace.events qtr)
            in
            t.capture_refs <- t.capture_refs - 1;
            if t.capture_refs = 0 then Trace.uninstall ();
            t.traces <-
              take t.trace_capacity
                ({ qt_query = qid; qt_session = sn.Session.name; qt_key = key; qt_events = evs }
                :: t.traces);
            t.c_traces <- t.c_traces + 1;
            Mutex.unlock t.lock
      in
      let forget () =
        Mutex.lock t.lock;
        (match Hashtbl.find_opt t.q_promises key with
        | Some p' when p' == p -> Hashtbl.remove t.q_promises key
        | _ -> ());
        Mutex.unlock t.lock
      in
      let st = eval_stats_make () in
      let run () =
        (* every event this evaluation records — admission, serve.eval,
           stages, exchanges, operator spans — carries the query id *)
        Trace.with_ambient_attrs [ ("query_id", Trace.Int qid) ] @@ fun () ->
        Fun.protect ~finally:finish_capture @@ fun () ->
        let wait_ns = admit t sn.Session.id in
        Fun.protect ~finally:(fun () -> release t) @@ fun () ->
        let rel, plan_hit = evaluate t ~key ~deps ~v0 ~tbl ~optimize ~st term in
        (rel, plan_hit, wait_ns)
      in
      match run () with
      | rel, plan_hit, wait_ns ->
        forget ();
        promise_fulfill p (`Done rel);
        let t_end = now_ns () in
        let total_ns = t_end -. t_start in
        Mutex.lock t.lock;
        t.c_completed <- t.c_completed + 1;
        Hist.add t.wait_h wait_ns;
        Hist.add t.latency_h total_ns;
        record_slow_locked t ~qid ~session:sn.Session.name ~key ~st ~wait_ns ~total_ns
          ~plan_hit ~result_hit:false ~shared:false ~sampled:capturing;
        Mutex.unlock t.lock;
        tele_done
          ~outcome:(if st.e_repaired > 0 then "repaired" else "evaluated")
          ~session_name:sn.Session.name ~wait_ns ~latency_ns:total_ns;
        {
          rel;
          session = sn.Session.id;
          query_id = qid;
          sampled = capturing;
          plan_hit;
          result_hit = false;
          shared = false;
          fix_hits = st.e_fix_hits;
          repaired = st.e_repaired > 0;
          iterations = st.e_iters;
          wait_ns;
          exec_ns = total_ns -. wait_ns;
        }
      | exception e ->
        forget ();
        promise_fulfill p (`Failed e);
        Mutex.lock t.lock;
        t.c_failed <- t.c_failed + 1;
        Mutex.unlock t.lock;
        tele_done ~outcome:"failed" ~session_name:sn.Session.name ~wait_ns:0.
          ~latency_ns:(now_ns () -. t_start);
        raise e))

let query_ucrpq ?optimize t sn text =
  query ?optimize t sn (Rpq.Query.union_to_term (Rpq.Query.parse_union text))

let explain ?(optimize = true) t term =
  Mutex.lock t.lock;
  let tbl = t.tbl in
  Mutex.unlock t.lock;
  let plan = if optimize then optimize_term t tbl term else term in
  Mutex.lock t.cluster_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.cluster_lock) @@ fun () ->
  let ctx = Exec.session ~shell_cache:t.shell_statics t.exec_config tbl in
  Exec.explain ctx plan

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

type stats = {
  submitted : int;
  completed : int;
  failed : int;
  result_hits : int;
  shared_joins : int;
  result_misses : int;
  plan_hits : int;
  plan_misses : int;
  fix_evals : int;
  fix_hits : int;
  fix_shared : int;
  repaired : int;
  repair_fallbacks : int;
  repair_handles : int;
  invalidated : int;
  evictions : int;
  result_entries : int;
  result_bytes : int;
  plan_entries : int;
  graph_version : int;
  inflight : int;
  queued : int;
  slow_queries : int;
  traces_captured : int;
}

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      submitted = t.c_submitted;
      completed = t.c_completed;
      failed = t.c_failed;
      result_hits = t.c_result_hits;
      shared_joins = t.c_shared_joins;
      result_misses = t.c_result_misses;
      plan_hits = t.c_plan_hits;
      plan_misses = t.c_plan_misses;
      fix_evals = t.c_fix_evals;
      fix_hits = t.c_fix_hits;
      fix_shared = t.c_fix_shared;
      repaired = t.c_repaired;
      repair_fallbacks = t.c_repair_fallbacks;
      repair_handles = Hashtbl.length t.repair;
      invalidated = t.c_invalidated;
      evictions = t.c_evictions;
      result_entries = Hashtbl.length t.result_cache;
      result_bytes = t.cache_bytes;
      plan_entries = Hashtbl.length t.plan_cache;
      graph_version = t.version;
      inflight = t.inflight;
      queued = List.length t.pending;
      slow_queries = t.c_slow;
      traces_captured = t.c_traces;
    }
  in
  Mutex.unlock t.lock;
  s

let slow_log t =
  Mutex.lock t.lock;
  let l = t.slow_log in
  Mutex.unlock t.lock;
  l

let sampled_traces t =
  Mutex.lock t.lock;
  let l = t.traces in
  Mutex.unlock t.lock;
  l

let wait_hist t = t.wait_h
let latency_hist t = t.latency_h
