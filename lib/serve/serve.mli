(** Multi-tenant query serving over one shared cluster.

    A [Serve.t] owns the single long-lived {!Distsim.Cluster} of the
    process and turns it from a one-shot experiment harness into a
    query {e service}: multiple client sessions submit mu-RA (or UCRPQ)
    queries concurrently, and the server schedules them onto the shared
    worker pool while reusing as much work as it can across tenants.

    Four layers, outermost first:

    - {b Admission}: the cluster has a single-driver invariant (stages
      of two evaluations must never interleave — {!Distsim.Cluster.run_stage}
      enforces it with {!Distsim.Cluster.Concurrent_dispatch}), so
      evaluations are admitted through a queue with at most
      [max_inflight] in flight and dispatched fairly across sessions
      ({!fair_pick}). Admitted evaluations still serialize their actual
      cluster segments on an internal lock; [max_inflight > 1] exists so
      that overlapping queries can {e share} in-flight work, not so they
      can race the pool.
    - {b Plan cache}: logical optimization (rewriting + costing) is
      memoized on the {!Mura.Normal.key} of the submitted term, so
      alpha-renamed or commutatively reordered resubmissions skip the
      rewriter.
    - {b Result cache}: evaluated results are cached under the same
      normal-form key, scoped to the {e graph version} — a counter
      bumped by every {!register}. Entries remember the relation names
      they read ([Term.free_rels]); registering a relation invalidates
      exactly the dependent plan and result entries. The cache holds at
      most [result_cache_bytes] (serialized-size model of
      {!Distsim.Metrics.tuple_bytes}) and evicts least-recently-used
      entries beyond that.
    - {b Shared-fixpoint batching}: before executing a plan, its maximal
      {e closed} [Fix] subterms (no free recursion variables) are
      resolved through the result cache and an in-flight promise table:
      the first evaluation to need a transitive closure registers a
      promise and computes it; concurrent evaluations needing the same
      subterm (same normal key, same graph version) block on the promise
      and splice in the shared relation — the fixpoint runs exactly
      once. Resolved subterms are substituted as [Cst] constants and
      only the residual plan is executed.

    Deadlock freedom: an evaluator resolves one fixpoint subterm at a
    time and fulfills its promise (also on failure) before touching the
    next, never waits on a promise while holding the cluster lock, and
    whole-query promises are only awaited by queries that hold nothing.

    Consistency: queries evaluate against a snapshot of the catalog
    taken at submission. A result is only cached if none of its input
    relations were re-registered while it was being computed, so the
    cache never serves a stale mix.

    {b Incremental repair} (the fifth layer, on top of the result
    cache): when a fixpoint is evaluated, the server keeps its
    converged distributed accumulator live as a {e repair handle}
    ({!Physical.Exec.Incr}). An edge-batch {!update} still drops the
    dependent result-cache entries — stale bytes are never served — but
    instead of discarding the work it parks the delta on the handles.
    The next miss on such a fixpoint replays only the delta: insertions
    seed the semi-naive loop with the differential of the body at the
    converged accumulator, deletions run DRed (over-delete through the
    old rules, then re-derive), and the resumed result is bit-identical
    to recomputing from scratch on the updated catalog. Oversized
    deltas ([repair_max_delta_frac]), update shapes the differential
    calculus refuses (changed relation under an antijoin right side or
    a nested fixpoint), and mid-repair failures all fall back to a full
    evaluation; {!register} (a full replacement) severs the delta chain
    and drops the handles. *)

module Session : sig
  type t
  (** A client session: the unit of admission fairness and accounting. *)

  val id : t -> int
  val name : t -> string
end

type t

val create :
  ?max_inflight:int ->
  ?plan_cache_capacity:int ->
  ?result_cache_bytes:int ->
  ?max_plans:int ->
  ?sample_every:int ->
  ?slow_threshold_ms:float ->
  ?slow_log_capacity:int ->
  ?max_repair_handles:int ->
  ?repair_max_delta_frac:float ->
  ?config:Physical.Exec.config ->
  cluster:Distsim.Cluster.t ->
  unit ->
  t
(** [create ~cluster ()] wraps [cluster] in a server. The server does
    not take ownership of the cluster's worker pool until {!shutdown}.

    - [max_inflight] (default 1): concurrent admitted evaluations.
      Values > 1 enable cross-query fixpoint sharing; cluster stages
      remain serialized internally either way.
    - [plan_cache_capacity] (default 128): optimized plans kept, LRU.
    - [result_cache_bytes] (default 64 MiB): result-cache budget under
      the {!Distsim.Metrics.tuple_bytes} size model, LRU.
    - [max_plans] (default 120): rewriter plan-space budget.
    - [sample_every] (default 0 = off): capture a full per-query trace
      for every N-th submitted query ({!Telemetry.Sampler}, 1-in-N on
      the query id). The server installs its own tracer only while a
      sampled evaluation is in flight and only when no ambient tracer is
      already active (a user [--trace] wins; its events still carry the
      query ids). Captured traces are kept in a bounded buffer
      ({!sampled_traces}).
    - [slow_threshold_ms] (default [infinity] = off): evaluations whose
      end-to-end latency breaches this land in the bounded slow-query
      log ({!slow_log}).
    - [slow_log_capacity] (default 64): slow-log entries kept, newest
      first.
    - [max_repair_handles] (default 32): live fixpoint accumulators kept
      for incremental repair, LRU; 0 disables the incremental layer
      entirely (every miss recomputes — the recompute baseline).
    - [repair_max_delta_frac] (default 0.5): a handle whose accumulated
      pending delta exceeds this fraction of its base relations' total
      size is dropped and the fixpoint recomputed (the differential
      resume would do comparable work anyway).
    - [config]: execution knobs (forced fixpoint plan, thresholds...);
      its [cluster] field is overridden by [cluster].
    @raise Invalid_argument if [max_inflight < 1],
      [max_repair_handles < 0] or [repair_max_delta_frac < 0]. *)

val cluster : t -> Distsim.Cluster.t

val shutdown : t -> unit
(** Reject new queries and join the cluster's worker pool. Idempotent.
    Already-admitted evaluations complete (sequentially if the pool is
    gone — {!Distsim.Cluster.shutdown} semantics). *)

(** {1 Sessions} *)

val open_session : ?name:string -> t -> Session.t
val close_session : t -> Session.t -> unit
(** Closing a session only rejects its future queries; in-flight ones
    complete normally. *)

(** {1 Catalog} *)

val register : t -> string -> Relation.Rel.t -> unit
(** [register t name rel] binds (or replaces) a database relation and
    bumps the graph version. Plan- and result-cache entries that read
    [name], in-flight promises over it, and its repair handles are
    invalidated; entries on other relations survive. *)

val update : ?inserts:Relation.Rel.t -> ?deletes:Relation.Rel.t -> t -> string -> unit
(** [update t name ~inserts ~deletes] applies an edge batch to the
    registered relation [name]: the new contents are
    [(old \ deletes) ∪ inserts], and the graph version advances exactly
    as under {!register}. Dependent result-cache entries are dropped —
    but their live repair handles absorb the delta, so the next miss on
    an affected fixpoint pays only an incremental resume instead of a
    recomputation (see the module overview). Plan-cache entries
    survive: a rewritten plan stays valid under any catalog contents.
    Batches apply deletes before inserts; a tuple named by both ends up
    present.
    @raise Invalid_argument on an unregistered relation or a batch
    whose schema does not match the relation's. *)

val graph_version : t -> int
(** Monotone counter of catalog mutations; 0 before any {!register}. *)

val relation : t -> string -> Relation.Rel.t option
val tables : t -> (string * Relation.Rel.t) list

(** {1 Queries} *)

type response = {
  rel : Relation.Rel.t;
  session : int;
  query_id : int;
      (** process-wide query id, assigned in submission order at
          admission; threaded through every span of the evaluation as
          the [query_id] attr ({!Trace.with_ambient_attrs}) *)
  sampled : bool;  (** a full trace of this evaluation was captured *)
  plan_hit : bool;  (** optimized plan came from the plan cache *)
  result_hit : bool;
      (** served without evaluating: from the result cache, or (when
          [shared]) by joining an identical in-flight evaluation *)
  shared : bool;  (** joined an in-flight evaluation of the same query *)
  fix_hits : int;
      (** fixpoint subterms of this evaluation served from the result
          cache or from another query's in-flight fixpoint *)
  repaired : bool;
      (** at least one fixpoint subterm was answered by incrementally
          repairing a live accumulator instead of recomputing *)
  iterations : int;
      (** fixpoint iterations this response actually ran on the cluster;
          0 whenever the work was reused *)
  wait_ns : float;  (** time spent queued in admission *)
  exec_ns : float;  (** admission-to-completion time; 0 on cache hits *)
}

val query : ?optimize:bool -> t -> Session.t -> Mura.Term.t -> response
(** Evaluate a mu-RA term through the caches. [optimize] (default
    [true]) runs the logical rewriter (memoized in the plan cache);
    [false] executes the term as written (still cached by normal form —
    results are semantically identical either way, so optimized and
    unoptimized submissions of one query share a result entry).
    Exceptions of the underlying engines (typing, translation,
    {!Physical.Exec.Resource_limit}...) are re-raised to the submitting
    session — also to sessions that joined a failed in-flight
    evaluation.
    @raise Invalid_argument on a closed session or server. *)

val query_ucrpq : ?optimize:bool -> t -> Session.t -> string -> response
(** Parse a UCRPQ ({!Rpq.Query.parse_union}), translate it to mu-RA and
    {!query} it. *)

val explain : ?optimize:bool -> t -> Mura.Term.t -> string
(** The physical plan the server would execute, without running it. *)

(** {1 Introspection} *)

type stats = {
  submitted : int;
  completed : int;
  failed : int;
  result_hits : int;  (** whole-query result-cache hits *)
  shared_joins : int;  (** whole-query joins of in-flight evaluations *)
  result_misses : int;  (** queries that went to evaluation *)
  plan_hits : int;
  plan_misses : int;
  fix_evals : int;  (** fixpoint subterms recomputed from scratch *)
  fix_hits : int;  (** fixpoint subterms served from the result cache *)
  fix_shared : int;  (** fixpoint subterms joined in flight *)
  repaired : int;  (** fixpoint subterms answered by incremental repair *)
  repair_fallbacks : int;
      (** repair attempts abandoned (oversized pending delta,
          unsupported update shape, or a mid-repair failure) *)
  repair_handles : int;  (** live repair handles currently held *)
  invalidated : int;  (** cache entries dropped by {!register}/{!update} *)
  evictions : int;  (** result-cache entries dropped by the LRU budget *)
  result_entries : int;
  result_bytes : int;
  plan_entries : int;
  graph_version : int;
  inflight : int;
  queued : int;
  slow_queries : int;  (** queries that breached [slow_threshold_ms] *)
  traces_captured : int;  (** sampled evaluations whose trace was kept *)
}

val stats : t -> stats
(** A consistent snapshot of the counters. *)

(** {1 Telemetry} *)

type slow_query = {
  sq_query : int;  (** query id *)
  sq_session : string;
  sq_key : string;  (** normalized term key ({!Mura.Normal.key}) *)
  sq_plans : string list;
      (** fixpoint plans chosen by this evaluation, in evaluation order
          (empty when the query was served from cache) *)
  sq_iterations : int;
  sq_stages : int;  (** cluster stages this evaluation ran *)
  sq_straggler_mean : float;
      (** mean per-stage max/median worker-time ratio of this
          evaluation's cluster segments; 0 when nothing ran *)
  sq_wait_ns : float;
  sq_total_ns : float;
  sq_plan_hit : bool;
  sq_result_hit : bool;
  sq_shared : bool;
  sq_fix_hits : int;
  sq_sampled : bool;
}

val slow_log : t -> slow_query list
(** Queries that breached [slow_threshold_ms], newest first, at most
    [slow_log_capacity] entries ({!stats}.[slow_queries] counts every
    breach, including evicted ones). *)

type query_trace = {
  qt_query : int;
  qt_session : string;
  qt_key : string;
  qt_events : Trace.event list;
      (** the sampled evaluation's events — those carrying its
          [query_id] attr: admission-to-completion spans, stages,
          exchanges, operator and fixpoint spans *)
}

val sampled_traces : t -> query_trace list
(** Captured traces of sampled queries, newest first, bounded. *)

val wait_hist : t -> Distsim.Metrics.Hist.t
(** Admission-wait distribution (ns), live reference. *)

val latency_hist : t -> Distsim.Metrics.Hist.t
(** End-to-end query latency distribution (ns), live reference. *)

val fair_pick : served:(int -> int) -> (int * int) list -> (int * int) option
(** The admission scheduling rule, exposed pure for tests.
    [fair_pick ~served pending] picks from [pending] (a
    [(session, arrival_seq)] list) the entry minimizing
    [(served session, arrival_seq)]: sessions that have been served
    less go first; FIFO breaks ties. [None] iff [pending] is empty. *)
