(* Process-wide, domain-safe registry of labeled counters, gauges and
   histograms for the always-on server.

   Design mirrors [Trace]: an ambient handle defaulting to [Disabled],
   where every update is a strict no-op (one tag test, no allocation, no
   lock), so instrumentation can live in hot paths unconditionally.
   Enabled registries guard a hashtable of series with one mutex;
   updates are a lookup + in-place mutate, cheap relative to the stage
   and shuffle granularity at which the runtime calls them. *)

(* Fixed-bucket log2 histograms, moved here from [Distsim.Metrics] (the
   registry sits below distsim in the library stack; metrics re-exports
   this module as an alias so existing callers are unaffected). Cheap
   enough to stay on in the hot path — one clz-style bucket lookup and
   an increment per sample — rich enough for skew and straggler
   percentiles in run reports. *)
module Hist = struct
  let n_buckets = 48

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create () =
    { counts = Array.make n_buckets 0; n = 0; sum = 0.; vmin = infinity; vmax = neg_infinity }

  let reset h =
    Array.fill h.counts 0 n_buckets 0;
    h.n <- 0;
    h.sum <- 0.;
    h.vmin <- infinity;
    h.vmax <- neg_infinity

  (* bucket 0 holds [0, 1); bucket b >= 1 holds [2^(b-1), 2^b) *)
  let bucket_of v =
    if v < 1. then 0
    else min (n_buckets - 1) (1 + int_of_float (Float.log2 v))

  let bucket_hi b = if b = 0 then 1. else Float.pow 2. (float_of_int b)
  let bucket_lo b = if b = 0 then 0. else if b = 1 then 1. else Float.pow 2. (float_of_int (b - 1))

  let add h v =
    let v = Float.max 0. v in
    h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v

  let count h = h.n
  let total h = h.sum
  let min_value h = if h.n = 0 then 0. else h.vmin
  let max_value h = if h.n = 0 then 0. else h.vmax
  let mean h = if h.n = 0 then 0. else h.sum /. float_of_int h.n

  (* Upper-bound estimate of the p-th percentile (p in [0, 100]): the
     upper edge of the bucket containing the rank-th sample, clamped to
     the exact observed [min, max]. An empty histogram reports 0; a
     histogram whose samples all fell into one bucket degenerates to the
     exact max (the clamp). *)
  let percentile h p =
    if h.n = 0 then 0.
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100. *. float_of_int h.n)) in
        if r < 1 then 1 else if r > h.n then h.n else r
      in
      let b = ref 0 and seen = ref 0 in
      (try
         for i = 0 to n_buckets - 1 do
           seen := !seen + h.counts.(i);
           if !seen >= rank then begin
             b := i;
             raise Exit
           end
         done
       with Exit -> ());
      Float.max h.vmin (Float.min h.vmax (bucket_hi !b))
    end

  (* Interpolated quantile over an arbitrary bucket-count array (shared
     by the live histogram accessor and the windowed-delta summaries):
     locate the bucket holding the fractional rank [q * n] and
     interpolate linearly inside it, then clamp to [vmin, vmax]. *)
  let quantile_of_counts counts n ~vmin ~vmax q =
    if n = 0 then 0.
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let rank = q *. float_of_int n in
      let rec loop b seen =
        if b >= n_buckets then vmax
        else begin
          let c = counts.(b) in
          if c > 0 && float_of_int (seen + c) >= rank then begin
            let frac = (rank -. float_of_int seen) /. float_of_int c in
            bucket_lo b +. (frac *. (bucket_hi b -. bucket_lo b))
          end
          else loop (b + 1) (seen + c)
        end
      in
      Float.max vmin (Float.min vmax (loop 0 0))
    end

  let quantile h q = quantile_of_counts h.counts h.n ~vmin:(min_value h) ~vmax:(max_value h) q

  let merge acc h =
    Array.iteri (fun i c -> acc.counts.(i) <- acc.counts.(i) + c) h.counts;
    acc.n <- acc.n + h.n;
    acc.sum <- acc.sum +. h.sum;
    if h.n > 0 then begin
      if h.vmin < acc.vmin then acc.vmin <- h.vmin;
      if h.vmax > acc.vmax then acc.vmax <- h.vmax
    end

  let buckets h =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.counts.(i) > 0 then acc := (bucket_hi i, h.counts.(i)) :: !acc
    done;
    !acc
end

type labels = (string * string) list

(* One registered time series. The kind is fixed at first registration;
   an update with a conflicting kind for the same (name, labels) is
   dropped rather than corrupting the series. *)
type instrument = C of float ref | G of float ref | H of Hist.t

type series = { s_name : string; s_labels : labels; s_inst : instrument }

type state = { mu : Mutex.t; tbl : (string, series) Hashtbl.t }

type t = Disabled | Enabled of state

let disabled = Disabled
let make () = Enabled { mu = Mutex.create (); tbl = Hashtbl.create 64 }
let enabled = function Disabled -> false | Enabled _ -> true

(* Ambient registry, defaulting to the no-op. *)
let ambient = Atomic.make Disabled
let install r = Atomic.set ambient r
let uninstall () = Atomic.set ambient Disabled
let get () = Atomic.get ambient

let sort_labels labels = List.sort (fun (a, _) (b, _) -> compare a b) labels

(* Canonical series key: the name plus the sorted label pairs. *)
let key_of name labels =
  match labels with
  | [] -> name
  | _ ->
    let b = Buffer.create 32 in
    Buffer.add_string b name;
    Buffer.add_char b '{';
    List.iter
      (fun (k, v) ->
        Buffer.add_string b k;
        Buffer.add_char b '=';
        Buffer.add_string b v;
        Buffer.add_char b ';')
      labels;
    Buffer.add_char b '}';
    Buffer.contents b

(* Find or create a series under [s.mu]; returns [None] when the name is
   already registered with a different kind. *)
let series s ~name ~labels ~fresh =
  let labels = sort_labels labels in
  let key = key_of name labels in
  match Hashtbl.find_opt s.tbl key with
  | Some sr -> Some sr
  | None ->
    let sr = { s_name = name; s_labels = labels; s_inst = fresh () } in
    Hashtbl.add s.tbl key sr;
    Some sr

let update t ?(labels = []) name ~fresh ~f =
  match t with
  | Disabled -> ()
  | Enabled s ->
    Mutex.lock s.mu;
    (match series s ~name ~labels ~fresh with
    | Some sr -> f sr.s_inst
    | None -> ());
    Mutex.unlock s.mu

let add t ?labels name v =
  match t with
  | Disabled -> ()
  | Enabled _ ->
    update t ?labels name
      ~fresh:(fun () -> C (ref 0.))
      ~f:(function C r -> r := !r +. v | _ -> ())

let inc t ?labels name = add t ?labels name 1.

let set t ?labels name v =
  match t with
  | Disabled -> ()
  | Enabled _ ->
    update t ?labels name
      ~fresh:(fun () -> G (ref 0.))
      ~f:(function G r -> r := v | _ -> ())

let observe t ?labels name v =
  match t with
  | Disabled -> ()
  | Enabled _ ->
    update t ?labels name
      ~fresh:(fun () -> H (Hist.create ()))
      ~f:(function H h -> Hist.add h v | _ -> ())

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

module Snapshot = struct
  type hsum = {
    h_count : int;
    h_sum : float;
    h_min : float;
    h_max : float;
    h_p50 : float;
    h_p90 : float;
    h_p99 : float;
    h_buckets : (float * int) list;  (** non-empty buckets (upper_bound, count), ascending *)
  }

  type point = Counter of float | Gauge of float | Histogram of hsum
  type row = { r_name : string; r_labels : labels; r_point : point }
  type t = { taken_us : float; window : [ `Cumulative | `Delta ]; rows : row list }

  let kind_of = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

  let find ?(labels = []) t name =
    let labels = sort_labels labels in
    List.find_opt (fun r -> r.r_name = name && r.r_labels = labels) t.rows
    |> Option.map (fun r -> r.r_point)

  let value ?labels t name =
    match find ?labels t name with
    | Some (Counter v) | Some (Gauge v) -> Some v
    | Some (Histogram h) -> Some (float_of_int h.h_count)
    | None -> None

  (* Prometheus floats: plain integers render without an exponent. *)
  let fnum v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%g" v

  let prom_escape v =
    let b = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b

  let prom_labels ?extra labels =
    let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
    match labels with
    | [] -> ""
    | _ ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
      ^ "}"

  let to_prometheus t =
    let b = Buffer.create 1024 in
    let typed = Hashtbl.create 16 in
    List.iter
      (fun r ->
        if not (Hashtbl.mem typed r.r_name) then begin
          Hashtbl.add typed r.r_name ();
          Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" r.r_name (kind_of r.r_point))
        end;
        match r.r_point with
        | Counter v | Gauge v ->
          Buffer.add_string b (Printf.sprintf "%s%s %s\n" r.r_name (prom_labels r.r_labels) (fnum v))
        | Histogram h ->
          let cum = ref 0 in
          List.iter
            (fun (hi, c) ->
              cum := !cum + c;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" r.r_name
                   (prom_labels ~extra:("le", fnum hi) r.r_labels)
                   !cum))
            h.h_buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" r.r_name
               (prom_labels ~extra:("le", "+Inf") r.r_labels)
               h.h_count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" r.r_name (prom_labels r.r_labels) (fnum h.h_sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" r.r_name (prom_labels r.r_labels) h.h_count))
      t.rows;
    Buffer.contents b

  let to_json t =
    let module J = Trace.Json in
    let row_json r =
      let base =
        [
          ("name", J.str r.r_name);
          ("kind", J.str (kind_of r.r_point));
          ("labels", J.obj (List.map (fun (k, v) -> (k, J.str v)) r.r_labels));
        ]
      in
      match r.r_point with
      | Counter v | Gauge v -> J.obj (base @ [ ("value", J.num v) ])
      | Histogram h ->
        J.obj
          (base
          @ [
              ("count", J.num (float_of_int h.h_count));
              ("sum", J.num h.h_sum);
              ("min", J.num h.h_min);
              ("max", J.num h.h_max);
              ("p50", J.num h.h_p50);
              ("p90", J.num h.h_p90);
              ("p99", J.num h.h_p99);
              ( "buckets",
                J.arr
                  (List.map
                     (fun (hi, c) ->
                       J.obj [ ("le", J.num hi); ("count", J.num (float_of_int c)) ])
                     h.h_buckets) );
            ])
    in
    J.obj
      [
        ("taken_us", J.num t.taken_us);
        ("window", J.str (match t.window with `Cumulative -> "cumulative" | `Delta -> "delta"));
        ("metrics", J.arr (List.map row_json t.rows));
      ]

  let write t file =
    let oc = open_out file in
    output_string oc (to_json t);
    output_char oc '\n';
    close_out oc
end

(* Raw per-series readout taken under the registry lock: scalars copied,
   histogram bucket arrays cloned, sorted by canonical key so snapshots
   are deterministic. *)
type raw =
  | RC of float
  | RG of float
  | RH of { counts : int array; n : int; sum : float; vmin : float; vmax : float }

let collect s =
  Mutex.lock s.mu;
  let out =
    Hashtbl.fold
      (fun key sr acc ->
        let raw =
          match sr.s_inst with
          | C r -> RC !r
          | G r -> RG !r
          | H h ->
            RH { counts = Array.copy h.Hist.counts; n = h.n; sum = h.sum; vmin = h.vmin; vmax = h.vmax }
        in
        (key, sr.s_name, sr.s_labels, raw) :: acc)
      s.tbl []
  in
  Mutex.unlock s.mu;
  List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) out

let hsum_of_counts counts n sum ~vmin ~vmax =
  let q = Hist.quantile_of_counts counts n ~vmin ~vmax in
  let buckets = ref [] in
  for i = Hist.n_buckets - 1 downto 0 do
    if counts.(i) > 0 then buckets := (Hist.bucket_hi i, counts.(i)) :: !buckets
  done;
  {
    Snapshot.h_count = n;
    h_sum = sum;
    h_min = (if n = 0 then 0. else vmin);
    h_max = (if n = 0 then 0. else vmax);
    h_p50 = q 0.5;
    h_p90 = q 0.9;
    h_p99 = q 0.99;
    h_buckets = !buckets;
  }

let snapshot t =
  let taken_us = Unix.gettimeofday () *. 1e6 in
  match t with
  | Disabled -> { Snapshot.taken_us; window = `Cumulative; rows = [] }
  | Enabled s ->
    let rows =
      List.map
        (fun (_, name, labels, raw) ->
          let point =
            match raw with
            | RC v -> Snapshot.Counter v
            | RG v -> Snapshot.Gauge v
            | RH h -> Snapshot.Histogram (hsum_of_counts h.counts h.n h.sum ~vmin:h.vmin ~vmax:h.vmax)
          in
          { Snapshot.r_name = name; r_labels = labels; r_point = point })
        (collect s)
    in
    { Snapshot.taken_us; window = `Cumulative; rows }

(* ------------------------------------------------------------------ *)
(* Windowed (since-last-scrape) snapshots                              *)

module Window = struct
  type prev = PC of float | PH of { counts : int array; n : int; sum : float }
  type handle = { prevs : (string, prev) Hashtbl.t }

  let create () = { prevs = Hashtbl.create 32 }

  (* Delta of a histogram: bucket-count differences since the last
     scrape. The exact min/max of the window is not recoverable from
     cumulative state, so the bounds fall back to the bucket edges of
     the first/last non-empty delta bucket. *)
  let delta w t =
    let taken_us = Unix.gettimeofday () *. 1e6 in
    match t with
    | Disabled -> { Snapshot.taken_us; window = `Delta; rows = [] }
    | Enabled s ->
      let rows =
        List.filter_map
          (fun (key, name, labels, raw) ->
            let prev = Hashtbl.find_opt w.prevs key in
            let point =
              match (raw, prev) with
              | RC v, Some (PC p) ->
                Hashtbl.replace w.prevs key (PC v);
                Some (Snapshot.Counter (Float.max 0. (v -. p)))
              | RC v, _ ->
                Hashtbl.replace w.prevs key (PC v);
                Some (Snapshot.Counter v)
              | RG v, _ -> Some (Snapshot.Gauge v)
              | RH h, p ->
                let pc, pn, psum =
                  match p with
                  | Some (PH p) -> (p.counts, p.n, p.sum)
                  | _ -> (Array.make Hist.n_buckets 0, 0, 0.)
                in
                let dc = Array.init Hist.n_buckets (fun i -> max 0 (h.counts.(i) - pc.(i))) in
                let dn = max 0 (h.n - pn) in
                let dsum = Float.max 0. (h.sum -. psum) in
                Hashtbl.replace w.prevs key
                  (PH { counts = Array.copy h.counts; n = h.n; sum = h.sum });
                let vmin = ref infinity and vmax = ref neg_infinity in
                Array.iteri
                  (fun i c ->
                    if c > 0 then begin
                      if Hist.bucket_lo i < !vmin then vmin := Hist.bucket_lo i;
                      if Hist.bucket_hi i > !vmax then vmax := Hist.bucket_hi i
                    end)
                  dc;
                let vmin = if dn = 0 then 0. else !vmin
                and vmax = if dn = 0 then 0. else !vmax in
                Some (Snapshot.Histogram (hsum_of_counts dc dn dsum ~vmin ~vmax))
            in
            Option.map (fun p -> { Snapshot.r_name = name; r_labels = labels; r_point = p }) point)
          (collect s)
      in
      { Snapshot.taken_us; window = `Delta; rows }
end

(* ------------------------------------------------------------------ *)
(* Trace sampler                                                       *)

module Sampler = struct
  type t = { every : int; slow_threshold_ns : float }

  let make ?(slow_threshold_ns = infinity) ~every () = { every; slow_threshold_ns }

  (* Pure and deterministic: 1-in-N on the query id (ids are assigned in
     admission order, so any N consecutive submissions contain exactly
     one sampled query). *)
  let sample_id t id = t.every > 0 && id mod t.every = 0
  let slow t ~ns = ns >= t.slow_threshold_ns
end
