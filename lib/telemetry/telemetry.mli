(** Process-wide, domain-safe registry of labeled counters, gauges and
    histograms for the always-on server.

    The design mirrors {!Trace}: instrumentation sites read an ambient
    registry handle that defaults to {!disabled}, on which every update
    is a strict no-op (a single tag test — no allocation, no lock), so
    telemetry calls can live in hot paths unconditionally. An enabled
    registry guards its series table with one mutex; updates from
    concurrent session and worker domains serialize there, which is
    cheap at the stage/shuffle/query granularity the runtime uses.

    Series are identified by a metric name plus a sorted label set —
    [serve_cache_total{cache="result", event="hit"}] and the [event="miss"]
    variant are distinct series of the same metric. Snapshots are
    cumulative; {!Window} handles produce since-last-scrape deltas. *)

(** Fixed-bucket log2 histogram: bucket 0 holds [0, 1), bucket [b >= 1]
    holds [2^(b-1), 2^b); 48 buckets cover any practical count or
    nanosecond value. Adding a sample is O(1) and allocation-free.
    (Moved here from [Distsim.Metrics], which re-exports it as an
    alias.) *)
module Hist : sig
  type t

  val create : unit -> t
  val reset : t -> unit

  val add : t -> float -> unit
  (** Negative samples are clamped to 0. *)

  val count : t -> int
  val total : t -> float
  val mean : t -> float

  val min_value : t -> float
  (** Exact observed minimum; 0 when empty. *)

  val max_value : t -> float
  (** Exact observed maximum; 0 when empty. *)

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0, 100]: an upper-bound estimate (the
      upper edge of the bucket holding the rank-th sample) clamped to the
      exact observed min/max. Empty histograms report 0; a single-bucket
      histogram degenerates to the exact max. *)

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [0, 1]: interpolated estimate — the
      fractional rank [q * count] is located in its log2 bucket and the
      value is interpolated linearly inside the bucket, then clamped to
      the exact observed min/max. Smoother and never above [percentile]'s
      upper edge; the shared implementation behind every latency
      percentile the harness and server report. Empty histograms
      report 0. *)

  val merge : t -> t -> unit
  (** [merge acc h] accumulates [h] into [acc]. *)

  val buckets : t -> (float * int) list
  (** Non-empty buckets as [(upper_bound, count)], ascending. *)
end

type labels = (string * string) list

type t
(** A metrics registry (or the disabled no-op). *)

val disabled : t
val make : unit -> t
val enabled : t -> bool

(** {1 Ambient registry}

    Instrumentation sites read the process-wide ambient registry, which
    defaults to {!disabled}. Hot paths that build label lists should
    guard on {!enabled} so the disabled path allocates nothing. *)

val install : t -> unit
val uninstall : unit -> unit
val get : unit -> t

(** {1 Updates}

    The kind of a series is fixed by its first update; a later update of
    a conflicting kind for the same (name, labels) is dropped. *)

val add : t -> ?labels:labels -> string -> float -> unit
(** Counter increment by an arbitrary non-negative amount. *)

val inc : t -> ?labels:labels -> string -> unit
(** Counter increment by 1. *)

val set : t -> ?labels:labels -> string -> float -> unit
(** Gauge: overwrite with the current value. *)

val observe : t -> ?labels:labels -> string -> float -> unit
(** Histogram sample. *)

(** {1 Snapshots} *)

module Snapshot : sig
  type hsum = {
    h_count : int;
    h_sum : float;
    h_min : float;
    h_max : float;
    h_p50 : float;
    h_p90 : float;
    h_p99 : float;
    h_buckets : (float * int) list;
        (** non-empty buckets as [(upper_bound, count)], ascending *)
  }

  type point = Counter of float | Gauge of float | Histogram of hsum
  type row = { r_name : string; r_labels : labels; r_point : point }

  type t = { taken_us : float; window : [ `Cumulative | `Delta ]; rows : row list }
  (** Rows are sorted by (name, labels) — snapshots of the same registry
      state are byte-identical. *)

  val find : ?labels:labels -> t -> string -> point option

  val value : ?labels:labels -> t -> string -> float option
  (** Scalar readout: counter/gauge value, or a histogram's sample count. *)

  val to_prometheus : t -> string
  (** Prometheus text exposition: [# TYPE] comments, [name{labels} value]
      samples, and [_bucket{le=..}]/[_sum]/[_count] histogram series. *)

  val to_json : t -> string
  val write : t -> string -> unit
  (** Write the JSON snapshot to a file. *)
end

val snapshot : t -> Snapshot.t
(** Cumulative snapshot; empty on a disabled registry. *)

(** Since-last-scrape windows: a handle remembers the cumulative state
    it last saw and {!Window.delta} reports the difference — counters
    and histogram bucket counts since the previous call (gauges pass
    through at their current value). Multiple independent handles can
    scrape one registry. *)
module Window : sig
  type handle

  val create : unit -> handle

  val delta : handle -> t -> Snapshot.t
  (** First call on a handle reports the full cumulative state. Delta
      histogram min/max degrade to the bucket edges of the window's
      non-empty buckets (exact extrema are not recoverable from
      cumulative state). *)
end

(** Deterministic query-trace sampler: 1-in-N by query id plus a
    slower-than-threshold predicate. Pure decisions, so sampling in the
    server is reproducible for a given admission order. *)
module Sampler : sig
  type t

  val make : ?slow_threshold_ns:float -> every:int -> unit -> t
  (** [every <= 0] disables id sampling; the threshold defaults to
      [infinity] (off). *)

  val sample_id : t -> int -> bool
  (** True iff [every > 0] and the id is a multiple of [every]. *)

  val slow : t -> ns:float -> bool
end
