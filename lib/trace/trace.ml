(* Structured tracing and per-operator profiling for the distributed
   runtime.

   A [Trace.t] collects nested spans and point events. Every event is
   timestamped twice: with the wall clock and with the runtime's
   simulated clock (wired to [Distsim.Metrics.sim_time_ns] by
   [Cluster.make]), so that traces taken in sequential mode are
   deterministic and comparable across runs.

   The collector is safe to use from worker domains: the event buffer
   and the per-track span stacks are protected by one mutex, and the
   current track id (0 = driver, w+1 = worker w) lives in domain-local
   storage. A [Disabled] tracer is a no-op: [span] runs its thunk
   directly and no allocation or locking happens, so instrumentation
   can stay in hot paths permanently. *)

type value = Str of string | Int of int | Float of float | Bool of bool
type attrs = (string * value) list
type kind = Span | Instant | Counter

type event = {
  id : int; (* allocation order = open order *)
  parent : int; (* id of the enclosing open span on the same track, -1 at root *)
  name : string;
  cat : string;
  tid : int; (* 0 = driver, w+1 = worker w *)
  wall_start_us : float;
  wall_dur_us : float; (* 0 for instants *)
  sim_start_ns : float;
  sim_dur_ns : float;
  kind : kind;
  attrs : attrs;
}

type open_span = {
  oid : int;
  oname : string;
  ocat : string;
  oparent : int;
  owall : float;
  osim : float;
  mutable oattrs : attrs;
}

type state = {
  lock : Mutex.t;
  mutable rev_events : event list;
  mutable n_events : int;
  mutable dropped : int;
  mutable next_id : int;
  mutable sim_clock : unit -> float;
  stacks : (int, open_span list ref) Hashtbl.t;
}

type t = Disabled | Enabled of state

let max_events = 1_000_000
let disabled = Disabled

let make () =
  Enabled
    {
      lock = Mutex.create ();
      rev_events = [];
      n_events = 0;
      dropped = 0;
      next_id = 0;
      sim_clock = (fun () -> 0.);
      stacks = Hashtbl.create 8;
    }

let enabled = function Disabled -> false | Enabled _ -> true
let set_sim_clock t f = match t with Disabled -> () | Enabled s -> s.sim_clock <- f
let now_us () = Unix.gettimeofday () *. 1e6

(* ------------------------------------------------------------------ *)
(* Ambient tracer and current track                                    *)
(* ------------------------------------------------------------------ *)

let ambient : t Atomic.t = Atomic.make Disabled
let install t = Atomic.set ambient t
let uninstall () = Atomic.set ambient Disabled
let get () = Atomic.get ambient

let tid_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let with_tid tid f =
  let old = Domain.DLS.get tid_key in
  Domain.DLS.set tid_key tid;
  Fun.protect ~finally:(fun () -> Domain.DLS.set tid_key old) f

(* Ambient attributes: domain-local key/value pairs appended to every
   event recorded by this domain while the scope is open. The serving
   layer threads the query id through every span of an evaluation this
   way — admission, stages, exchanges, operators — without each
   instrumentation site knowing about queries. *)
let amb_key : attrs Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let with_ambient_attrs attrs f =
  let old = Domain.DLS.get amb_key in
  Domain.DLS.set amb_key (attrs @ old);
  Fun.protect ~finally:(fun () -> Domain.DLS.set amb_key old) f

let ambient_attrs () = Domain.DLS.get amb_key

let with_amb attrs =
  match Domain.DLS.get amb_key with [] -> attrs | amb -> attrs @ amb

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let locked s f =
  Mutex.lock s.lock;
  match f () with
  | v ->
    Mutex.unlock s.lock;
    v
  | exception e ->
    Mutex.unlock s.lock;
    raise e

let stack_of s tid =
  match Hashtbl.find_opt s.stacks tid with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace s.stacks tid r;
    r

let push_event s ev =
  if s.n_events >= max_events then s.dropped <- s.dropped + 1
  else begin
    s.rev_events <- ev :: s.rev_events;
    s.n_events <- s.n_events + 1
  end

let span t ?(cat = "") ?(attrs = []) name f =
  match t with
  | Disabled -> f ()
  | Enabled s ->
    let tid = Domain.DLS.get tid_key in
    let attrs = with_amb attrs in
    let sp =
      locked s (fun () ->
          let stack = stack_of s tid in
          let parent = match !stack with [] -> -1 | top :: _ -> top.oid in
          let id = s.next_id in
          s.next_id <- id + 1;
          let sp =
            {
              oid = id;
              oname = name;
              ocat = cat;
              oparent = parent;
              owall = now_us ();
              osim = s.sim_clock ();
              oattrs = attrs;
            }
          in
          stack := sp :: !stack;
          sp)
    in
    let finish () =
      locked s (fun () ->
          let stack = stack_of s tid in
          (match !stack with
          | top :: rest when top.oid = sp.oid -> stack := rest
          | other -> stack := List.filter (fun o -> o.oid <> sp.oid) other);
          push_event s
            {
              id = sp.oid;
              parent = sp.oparent;
              name = sp.oname;
              cat = sp.ocat;
              tid;
              wall_start_us = sp.owall;
              wall_dur_us = now_us () -. sp.owall;
              sim_start_ns = sp.osim;
              sim_dur_ns = s.sim_clock () -. sp.osim;
              kind = Span;
              attrs = sp.oattrs;
            })
    in
    Fun.protect ~finally:finish f

let instant t ?(cat = "") ?(attrs = []) name =
  match t with
  | Disabled -> ()
  | Enabled s ->
    let tid = Domain.DLS.get tid_key in
    locked s (fun () ->
        let parent = match !(stack_of s tid) with [] -> -1 | top :: _ -> top.oid in
        let id = s.next_id in
        s.next_id <- id + 1;
        push_event s
          {
            id;
            parent;
            name;
            cat;
            tid;
            wall_start_us = now_us ();
            wall_dur_us = 0.;
            sim_start_ns = s.sim_clock ();
            sim_dur_ns = 0.;
            kind = Instant;
            attrs = with_amb attrs;
          })

(* A named gauge sample (e.g. worker-pool occupancy). Rendered by the
   Chrome exporter as a counter track ("ph":"C"). *)
let counter t ?(cat = "") ?(attrs = []) name v =
  match t with
  | Disabled -> ()
  | Enabled s ->
    let tid = Domain.DLS.get tid_key in
    locked s (fun () ->
        let parent = match !(stack_of s tid) with [] -> -1 | top :: _ -> top.oid in
        let id = s.next_id in
        s.next_id <- id + 1;
        push_event s
          {
            id;
            parent;
            name;
            cat;
            tid;
            wall_start_us = now_us ();
            wall_dur_us = 0.;
            sim_start_ns = s.sim_clock ();
            sim_dur_ns = 0.;
            kind = Counter;
            attrs = ("value", Float v) :: with_amb attrs;
          })

(* Attach an attribute to the innermost open span of the current track
   (e.g. a result computed inside the span body, like partition skew). *)
let set_attr t key v =
  match t with
  | Disabled -> ()
  | Enabled s ->
    let tid = Domain.DLS.get tid_key in
    locked s (fun () ->
        match !(stack_of s tid) with
        | top :: _ -> top.oattrs <- (key, v) :: List.remove_assoc key top.oattrs
        | [] -> ())

let events = function
  | Disabled -> []
  | Enabled s ->
    locked s (fun () -> List.sort (fun a b -> compare a.id b.id) s.rev_events)

let dropped = function Disabled -> 0 | Enabled s -> s.dropped

let clear = function
  | Disabled -> ()
  | Enabled s ->
    locked s (fun () ->
        s.rev_events <- [];
        s.n_events <- 0;
        s.dropped <- 0;
        Hashtbl.reset s.stacks)

(* ------------------------------------------------------------------ *)
(* JSON helpers (no external json dependency)                          *)
(* ------------------------------------------------------------------ *)

module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let str s = "\"" ^ escape s ^ "\""

  let num f =
    if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
      (* integers (and nan, mapped to 0) print without an exponent *)
      Printf.sprintf "%.0f" (if Float.is_nan f then 0. else f)
    else if Float.abs f = Float.infinity then "0"
    else Printf.sprintf "%.3f" f

  let value = function
    | Str s -> str s
    | Int i -> string_of_int i
    | Float f -> num f
    | Bool b -> string_of_bool b

  let obj fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

  let arr items = "[" ^ String.concat "," items ^ "]"
end

(* ------------------------------------------------------------------ *)
(* Chrome trace_event exporter (chrome://tracing, Perfetto)            *)
(* ------------------------------------------------------------------ *)

module Chrome = struct
  (* [clock] selects the timestamp source: `Wall uses microsecond wall
     clock, `Sim uses the simulated clock (deterministic in sequential
     mode). Both are always available in the event args. *)
  let event_json ~clock e =
    let ts, dur =
      match clock with
      | `Wall -> (e.wall_start_us, e.wall_dur_us)
      | `Sim -> (e.sim_start_ns /. 1e3, e.sim_dur_ns /. 1e3)
    in
    let args =
      List.map (fun (k, v) -> (k, Json.value v)) e.attrs
      @ [
          ("sim_start_ns", Json.num e.sim_start_ns);
          ("sim_dur_ns", Json.num e.sim_dur_ns);
          ("parent", string_of_int e.parent);
        ]
    in
    let common =
      [
        ("name", Json.str e.name);
        ("cat", Json.str (if e.cat = "" then "default" else e.cat));
        ("pid", "1");
        ("tid", string_of_int e.tid);
        ("ts", Json.num ts);
        ("args", Json.obj args);
      ]
    in
    match e.kind with
    | Span -> Json.obj (common @ [ ("ph", Json.str "X"); ("dur", Json.num dur) ])
    | Instant -> Json.obj (common @ [ ("ph", Json.str "i"); ("s", Json.str "t") ])
    | Counter -> Json.obj (common @ [ ("ph", Json.str "C") ])

  let thread_name_json tid name =
    Json.obj
      [
        ("name", Json.str "thread_name");
        ("ph", Json.str "M");
        ("pid", "1");
        ("tid", string_of_int tid);
        ("args", Json.obj [ ("name", Json.str name) ]);
      ]

  let to_string ?(clock = `Wall) t =
    let evs = events t in
    let tids = List.sort_uniq compare (List.map (fun e -> e.tid) evs) in
    let meta =
      List.map
        (fun tid -> thread_name_json tid (if tid = 0 then "driver" else Printf.sprintf "worker %d" (tid - 1)))
        tids
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\":[";
    List.iteri
      (fun i j ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '\n';
        Buffer.add_string buf j)
      (meta @ List.map (event_json ~clock) evs);
    Buffer.add_string buf "\n],";
    Buffer.add_string buf (Json.str "displayTimeUnit" ^ ":" ^ Json.str "ms");
    if dropped t > 0 then
      Buffer.add_string buf ("," ^ Json.str "droppedEvents" ^ ":" ^ string_of_int (dropped t));
    Buffer.add_string buf "}\n";
    Buffer.contents buf

  let write ?clock t file =
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string ?clock t))
end

(* ------------------------------------------------------------------ *)
(* Flat JSONL exporter (one event object per line)                     *)
(* ------------------------------------------------------------------ *)

module Jsonl = struct
  let event_json e =
    Json.obj
      [
        ("id", string_of_int e.id);
        ("parent", string_of_int e.parent);
        ("name", Json.str e.name);
        ("cat", Json.str e.cat);
        ("tid", string_of_int e.tid);
        ("kind", Json.str (match e.kind with Span -> "span" | Instant -> "instant" | Counter -> "counter"));
        ("wall_start_us", Json.num e.wall_start_us);
        ("wall_dur_us", Json.num e.wall_dur_us);
        ("sim_start_ns", Json.num e.sim_start_ns);
        ("sim_dur_ns", Json.num e.sim_dur_ns);
        ("attrs", Json.obj (List.map (fun (k, v) -> (k, Json.value v)) e.attrs));
      ]

  let to_string t = String.concat "" (List.map (fun e -> event_json e ^ "\n") (events t))

  let write t file =
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))
end

(* ------------------------------------------------------------------ *)
(* Post-hoc aggregation: per-operator / per-iteration rollups          *)
(* ------------------------------------------------------------------ *)

module Rollup = struct
  type row = {
    scope : string;
    mutable first_id : int; (* for stable display order *)
    mutable spans : int;
    mutable shuffles : int;
    mutable shuffled_records : int;
    mutable shuffled_bytes : int;
    mutable broadcasts : int;
    mutable broadcast_records : int;
    mutable stages : int;
    mutable stage_sim_ns : float;
    mutable max_skew : float;
    mutable max_straggler : float;
    mutable dedup_dropped : int;
    mutable counter_samples : int;
    mutable counter_max : float;
  }

  let fresh_row scope id =
    {
      scope;
      first_id = id;
      spans = 0;
      shuffles = 0;
      shuffled_records = 0;
      shuffled_bytes = 0;
      broadcasts = 0;
      broadcast_records = 0;
      stages = 0;
      stage_sim_ns = 0.;
      max_skew = 0.;
      max_straggler = 0.;
      dedup_dropped = 0;
      counter_samples = 0;
      counter_max = 0.;
    }

  let attr_int attrs k =
    match List.assoc_opt k attrs with
    | Some (Int i) -> Some i
    | Some (Float f) -> Some (int_of_float f)
    | _ -> None

  let attr_float attrs k =
    match List.assoc_opt k attrs with
    | Some (Float f) -> Some f
    | Some (Int i) -> Some (float_of_int i)
    | _ -> None

  let attr_str attrs k = match List.assoc_opt k attrs with Some (Str s) -> Some s | _ -> None
  let index evs = List.to_seq evs |> Seq.map (fun e -> (e.id, e)) |> Hashtbl.of_seq

  (* Nearest ancestor (following parent pointers) satisfying [pred]. *)
  let rec find_ancestor tbl e pred =
    if e.parent < 0 then None
    else
      match Hashtbl.find_opt tbl e.parent with
      | None -> None
      | Some p -> if pred p then Some p else find_ancestor tbl p pred

  let accumulate row e =
    (match (e.kind, e.name) with
    | Instant, "shuffle" ->
      row.shuffles <- row.shuffles + 1;
      row.shuffled_records <- row.shuffled_records + Option.value ~default:0 (attr_int e.attrs "records");
      row.shuffled_bytes <- row.shuffled_bytes + Option.value ~default:0 (attr_int e.attrs "bytes")
    | Instant, "broadcast" ->
      row.broadcasts <- row.broadcasts + 1;
      row.broadcast_records <-
        row.broadcast_records + Option.value ~default:0 (attr_int e.attrs "records")
    | Span, "stage" ->
      row.stages <- row.stages + 1;
      row.stage_sim_ns <- row.stage_sim_ns +. e.sim_dur_ns
    | Counter, _ ->
      (* Counter samples (pool occupancy, dedup savings, ...) used to be
         exported to Chrome but silently dropped here; charge them to
         the enclosing scope so they survive post-processing. *)
      row.counter_samples <- row.counter_samples + 1;
      (match attr_float e.attrs "value" with
      | Some v when v > row.counter_max -> row.counter_max <- v
      | _ -> ())
    | _ -> ());
    (match attr_float e.attrs "skew" with
    | Some s when s > row.max_skew -> row.max_skew <- s
    | _ -> ());
    (match attr_float e.attrs "straggler" with
    | Some s when s > row.max_straggler -> row.max_straggler <- s
    | _ -> ());
    (match attr_int e.attrs "dedup_dropped" with
    | Some n -> row.dedup_dropped <- row.dedup_dropped + n
    | None -> ());
    if e.kind = Span then row.spans <- row.spans + 1

  let group evs scope_of =
    let rows = Hashtbl.create 32 in
    List.iter
      (fun e ->
        match scope_of e with
        | None -> ()
        | Some scope ->
          let row =
            match Hashtbl.find_opt rows scope with
            | Some r -> r
            | None ->
              let r = fresh_row scope e.id in
              Hashtbl.replace rows scope r;
              r
          in
          accumulate row e)
      evs;
    Hashtbl.fold (fun _ r acc -> r :: acc) rows []
    |> List.sort (fun a b -> compare a.first_id b.first_id)

  (* Rollup keyed by the nearest enclosing physical operator (spans with
     category "op", emitted by Physical.Exec). Communication and stage
     time of an operator's children is charged to that operator. *)
  let per_operator evs =
    let tbl = index evs in
    group evs (fun e ->
        match find_ancestor tbl e (fun p -> p.cat = "op") with
        | Some op -> Some op.name
        | None -> if e.cat = "op" then Some e.name else Some "<driver>")

  (* Rollup keyed by (fixpoint variable, iteration). Only events inside
     an "iteration" span contribute. *)
  let per_iteration evs =
    let tbl = index evs in
    group evs (fun e ->
        let it =
          if e.kind = Span && e.name = "iteration" then Some e
          else find_ancestor tbl e (fun p -> p.name = "iteration" && p.cat = "fixpoint")
        in
        match it with
        | None -> None
        | Some it ->
          let var = Option.value ~default:"?" (attr_str it.attrs "var") in
          let i = Option.value ~default:0 (attr_int it.attrs "i") in
          Some (Printf.sprintf "fix %s iter %d" var i))

  (* Shuffle instants charged to a whole fixpoint (the paper's per-plan
     shuffle asymmetry: O(1) for P_plw, O(iterations) for P_gld). *)
  let fixpoint_shuffles evs =
    let tbl = index evs in
    let counts = Hashtbl.create 8 in
    List.iter
      (fun e ->
        if e.kind = Instant && e.name = "shuffle" then
          match find_ancestor tbl e (fun p -> p.name = "fixpoint" && p.cat = "fixpoint") with
          | None -> ()
          | Some fix ->
            let var = Option.value ~default:"?" (attr_str fix.attrs "var") in
            Hashtbl.replace counts var (1 + Option.value ~default:0 (Hashtbl.find_opt counts var)))
      evs;
    Hashtbl.fold (fun var n acc -> (var, n) :: acc) counts []
    |> List.sort compare

  (* Shuffle instants inside iteration spans, per fixpoint variable. *)
  let iteration_shuffles evs =
    let tbl = index evs in
    let counts = Hashtbl.create 8 in
    List.iter
      (fun e ->
        if e.kind = Instant && e.name = "shuffle" then
          match find_ancestor tbl e (fun p -> p.name = "iteration" && p.cat = "fixpoint") with
          | None -> ()
          | Some it ->
            let var = Option.value ~default:"?" (attr_str it.attrs "var") in
            Hashtbl.replace counts var (1 + Option.value ~default:0 (Hashtbl.find_opt counts var)))
      evs;
    Hashtbl.fold (fun var n acc -> (var, n) :: acc) counts []
    |> List.sort compare

  (* Wall-time breakdown of the two-phase shuffle: per phase span name
     ("dds.exchange.map" / "dds.exchange.merge"), how many phases ran
     and their cumulative wall time. *)
  let exchange_phases evs =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun e ->
        if e.kind = Span && (e.name = "dds.exchange.map" || e.name = "dds.exchange.merge") then begin
          let n, us = Option.value ~default:(0, 0.) (Hashtbl.find_opt tbl e.name) in
          Hashtbl.replace tbl e.name (n + 1, us +. e.wall_dur_us)
        end)
      evs;
    Hashtbl.fold (fun name (n, us) acc -> (name, n, us) :: acc) tbl [] |> List.sort compare

  (* Per-name summary of counter events: sample count, max and last
     value. The names are free-form ("pool.occupancy", ...), so the
     series table complements the per-scope charge in [accumulate]. *)
  let counter_series evs =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun e ->
        if e.kind = Counter then begin
          let v = Option.value ~default:0. (attr_float e.attrs "value") in
          let n, vmax, _ = Option.value ~default:(0, neg_infinity, 0.) (Hashtbl.find_opt tbl e.name) in
          Hashtbl.replace tbl e.name (n + 1, Float.max vmax v, v)
        end)
      evs;
    Hashtbl.fold (fun name (n, vmax, last) acc -> (name, n, vmax, last) :: acc) tbl []
    |> List.sort compare

  let pp_rows ppf rows =
    let header =
      Printf.sprintf "%-32s %6s %8s %10s %12s %7s %10s %7s %12s %6s %9s %10s %6s %8s" "scope"
        "spans" "shuffles" "sh.records" "sh.bytes" "bcasts" "bc.records" "stages" "stage sim ms"
        "skew" "straggler" "dedup.drop" "ctr.n" "ctr.max"
    in
    Format.fprintf ppf "%s@." header;
    Format.fprintf ppf "%s@." (String.make (String.length header) '-');
    List.iter
      (fun r ->
        Format.fprintf ppf
          "%-32s %6d %8d %10d %12d %7d %10d %7d %12.3f %6.2f %9.2f %10d %6d %8.1f@."
          (if String.length r.scope > 32 then String.sub r.scope 0 32 else r.scope)
          r.spans r.shuffles r.shuffled_records r.shuffled_bytes r.broadcasts r.broadcast_records
          r.stages (r.stage_sim_ns /. 1e6) r.max_skew r.max_straggler r.dedup_dropped
          r.counter_samples r.counter_max)
      rows

  let to_string t =
    let evs = events t in
    let buf = Buffer.create 1024 in
    let ppf = Format.formatter_of_buffer buf in
    Format.fprintf ppf "== per-operator rollup ==@.";
    pp_rows ppf (per_operator evs);
    (match per_iteration evs with
    | [] -> ()
    | rows ->
      Format.fprintf ppf "@.== per-iteration rollup ==@.";
      pp_rows ppf rows);
    (match counter_series evs with
    | [] -> ()
    | series ->
      Format.fprintf ppf "@.== counter series ==@.";
      Format.fprintf ppf "%-32s %8s %10s %10s@." "counter" "samples" "max" "last";
      List.iter
        (fun (name, n, vmax, last) ->
          Format.fprintf ppf "%-32s %8d %10.1f %10.1f@." name n vmax last)
        series);
    Format.pp_print_flush ppf ();
    Buffer.contents buf
end
