(** Structured tracing and per-operator profiling for the distributed
    runtime.

    A tracer collects nested spans and point events, each timestamped by
    both the wall clock and the runtime's simulated clock
    ({!Distsim.Metrics.sim_time_ns}, wired by [Cluster.make]), so traces
    taken in sequential mode are deterministic. A {!disabled} tracer is
    a strict no-op: [span t name f] runs [f] directly, records nothing
    and takes no lock, so instrumentation can live in hot paths.

    The collector is domain-safe: the event buffer is protected by a
    mutex and the current track id (0 = driver, [w+1] = worker [w]) is
    domain-local ({!with_tid}). *)

type value = Str of string | Int of int | Float of float | Bool of bool
type attrs = (string * value) list
type kind = Span | Instant | Counter

type event = {
  id : int;  (** allocation order = open order *)
  parent : int;  (** id of the enclosing open span on the same track; -1 at root *)
  name : string;
  cat : string;
  tid : int;  (** 0 = driver, [w+1] = worker [w] *)
  wall_start_us : float;
  wall_dur_us : float;  (** 0 for instants *)
  sim_start_ns : float;
  sim_dur_ns : float;
  kind : kind;
  attrs : attrs;
}

type t

val disabled : t
val make : unit -> t
val enabled : t -> bool

val set_sim_clock : t -> (unit -> float) -> unit
(** Install the simulated-clock source (typically the owning cluster's
    [Metrics.sim_time_ns]). No-op on a disabled tracer. *)

(** {1 Ambient tracer}

    Instrumentation sites read the process-wide ambient tracer, which
    defaults to {!disabled}. *)

val install : t -> unit
val uninstall : unit -> unit
val get : unit -> t

val with_tid : int -> (unit -> 'a) -> 'a
(** Run a thunk with the given track id (used by [Cluster.run_stage] to
    put worker-side events on per-worker tracks). *)

val with_ambient_attrs : attrs -> (unit -> 'a) -> 'a
(** Run a thunk with extra domain-local attributes appended to every
    event this domain records inside it (any tracer, including one
    installed later). The serving layer threads [("query_id", Int qid)]
    through a whole evaluation this way; scopes nest. Spans opened by
    other domains (pool workers) do not inherit the attributes. *)

val ambient_attrs : unit -> attrs
(** The current domain's ambient attributes ([] outside any scope). *)

(** {1 Recording} *)

val span : t -> ?cat:string -> ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a named span; exception-safe. On a
    disabled tracer this is exactly [f ()]. *)

val instant : t -> ?cat:string -> ?attrs:attrs -> string -> unit
(** Record a point event (e.g. one shuffle, with record/byte counts). *)

val counter : t -> ?cat:string -> ?attrs:attrs -> string -> float -> unit
(** [counter t name v] records a named gauge sample (the value is stored
    in the ["value"] attribute); the Chrome exporter renders the series
    as a counter track. Used by the worker-domain pool to expose its
    occupancy over time. *)

val set_attr : t -> string -> value -> unit
(** Attach an attribute to the innermost open span of the current track
    (for results only known when the span body has run, like skew). *)

val events : t -> event list
(** All completed events, sorted by [id] (open order). *)

val dropped : t -> int
(** Events discarded after the collector's size cap was reached. *)

val clear : t -> unit

(** {1 Exporters} *)

module Json : sig
  val escape : string -> string
  val str : string -> string
  val num : float -> string
  val value : value -> string
  val obj : (string * string) list -> string
  val arr : string list -> string
end

(** Chrome [trace_event] JSON, loadable in chrome://tracing or Perfetto.
    [clock] picks the timeline: [`Wall] (default) or [`Sim] (the
    deterministic simulated clock). Both timestamps are always present
    in the event [args]. *)
module Chrome : sig
  val to_string : ?clock:[ `Wall | `Sim ] -> t -> string
  val write : ?clock:[ `Wall | `Sim ] -> t -> string -> unit
end

(** Flat JSONL event log: one JSON object per line. *)
module Jsonl : sig
  val to_string : t -> string
  val write : t -> string -> unit
end

(** Post-hoc aggregation of a trace into per-operator and per-iteration
    rollup tables. *)
module Rollup : sig
  type row = {
    scope : string;
    mutable first_id : int;
    mutable spans : int;
    mutable shuffles : int;
    mutable shuffled_records : int;
    mutable shuffled_bytes : int;
    mutable broadcasts : int;
    mutable broadcast_records : int;
    mutable stages : int;
    mutable stage_sim_ns : float;
    mutable max_skew : float;  (** max over stages of max/mean partition size *)
    mutable max_straggler : float;
        (** max over stages of max/median worker compute time *)
    mutable dedup_dropped : int;
        (** tuples dropped by the iteration-shuffle seen filter (summed
            from the [dedup_dropped] attr of repartition spans) *)
    mutable counter_samples : int;
        (** counter events charged to this scope (previously dropped by
            the rollup even though the Chrome exporter rendered them) *)
    mutable counter_max : float;  (** max counter value seen in this scope *)
  }

  val per_operator : event list -> row list
  (** Grouped by the nearest enclosing physical-operator span (category
      ["op"], emitted by [Physical.Exec]). *)

  val per_iteration : event list -> row list
  (** Grouped by (fixpoint variable, iteration index). *)

  val fixpoint_shuffles : event list -> (string * int) list
  (** Shuffles charged to each fixpoint variable — the paper's per-plan
      asymmetry: O(1) for P_plw vs O(iterations) for P_gld. *)

  val iteration_shuffles : event list -> (string * int) list
  (** Shuffles occurring inside iteration spans, per fixpoint variable
      (0 for P_plw: its loop is shuffle-free). *)

  val exchange_phases : event list -> (string * int * float) list
  (** Two-phase-shuffle breakdown: for each phase span name
      ([dds.exchange.map] / [dds.exchange.merge]), the number of phases
      and their cumulative wall time in microseconds. Empty when every
      exchange ran on the sequential driver-side path. *)

  val counter_series : event list -> (string * int * float * float) list
  (** Per counter name: sample count, max value and last value — the
      post-processed view of [counter] gauge series (pool occupancy,
      dedup savings), sorted by name. *)

  val pp_rows : Format.formatter -> row list -> unit

  val to_string : t -> string
  (** Both rollup tables plus the counter-series table, rendered for
      terminal display. *)
end
