(* Tests for the cost estimator: sanity of cardinality estimates and the
   plan-ranking behaviour the rewriter relies on. *)

open Relation
module Term = Mura.Term
module P = Mura.Patterns
module Stats = Cost.Stats
module Estimate = Cost.Estimate

let sch = Schema.of_list
let check_bool = Alcotest.(check bool)

let a = Value.of_string "a"
let b = Value.of_string "b"

let chain n label start =
  List.init n (fun i -> [ start + i; label; start + i + 1 ])

let labelled =
  Rel.of_list (sch [ "src"; "pred"; "trg" ]) (chain 30 a 0 @ chain 10 b 100)

let tables = [ ("E", labelled) ]
let stats = Stats.of_tables tables

let test_stats_basics () =
  Alcotest.(check (option int)) "count" (Some 40) (Stats.count stats "E");
  Alcotest.(check (option int)) "distinct pred" (Some 2) (Stats.distinct stats "E" "pred");
  Alcotest.(check (option int)) "unknown rel" None (Stats.count stats "nope");
  Alcotest.(check (option int)) "unknown col" None (Stats.distinct stats "E" "zzz")

let test_select_estimate () =
  let whole = Estimate.cardinality stats (Term.Rel "E") in
  let filtered =
    Estimate.cardinality stats (Term.Select (Pred.Eq_const ("pred", a), Term.Rel "E"))
  in
  check_bool "filter shrinks" true (filtered < whole);
  check_bool "about half" true (filtered >= whole /. 4. && filtered <= whole)

let test_join_estimate () =
  let e2 =
    Term.Antiproject
      ( [ "m" ],
        Term.Join
          ( Term.rename1 "trg" "m" (Term.Antiproject ([ "pred" ], Term.Rel "E")),
            Term.rename1 "src" "m" (Term.Antiproject ([ "pred" ], Term.Rel "E")) ) )
  in
  let est = Estimate.cardinality stats e2 in
  check_bool "2-paths bounded" true (est >= 1. && est <= 40. *. 40.)

let test_fix_estimate_grows () =
  let base = Estimate.cardinality stats (P.edge "a") in
  let closure = Estimate.cardinality stats (P.closure (P.edge "a")) in
  check_bool "closure >= base" true (closure >= base);
  (* capped: not astronomically larger than the domain *)
  check_bool "closure capped" true (closure <= 1e9)

let test_ranking_filter_push () =
  (* pushed filter must be estimated cheaper than filtering afterwards *)
  let unpushed = Term.Select (Pred.Eq_const ("src", 0), P.closure (P.edge "a")) in
  let pushed =
    P.closure_from (Term.Select (Pred.Eq_const ("src", 0), P.edge "a")) (P.edge "a")
  in
  check_bool "pushed filter cheaper" true
    (Estimate.cost stats pushed < Estimate.cost stats unpushed)

let test_ranking_merge () =
  let joined = Rewrite.Shapes.mk_compose (P.closure (P.edge "a")) (P.closure (P.edge "b")) in
  let merged =
    Rewrite.Shapes.mk_merged ~first:(P.edge "a") ~second:(P.edge "b")
  in
  check_bool "merged fixpoint cheaper than join of closures" true
    (Estimate.cost stats merged < Estimate.cost stats joined)

let test_estimator_total () =
  (* the estimator must never raise, whatever the term *)
  let terms =
    [
      Term.Rel "unknown";
      Term.Var "X";
      Term.Fix ("X", Term.Var "X");
      Term.Union (Term.Rel "E", Term.Rel "E");
      Term.Antijoin (Term.Rel "E", Term.Rel "unknown");
      P.closure (P.edge "nolabel");
    ]
  in
  List.iter (fun t -> ignore (Estimate.cost stats t)) terms

let prop_estimates_positive =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"estimates are positive and finite"
       (QCheck2.Gen.oneofl
          [
            Term.Rel "E";
            P.edge "a";
            P.closure (P.edge "a");
            Rewrite.Shapes.mk_merged ~first:(P.edge "a") ~second:(P.edge "b");
            Term.Select (Pred.Eq_const ("src", 3), P.closure (P.edge "a"));
            Term.Antiproject ([ "src" ], P.closure (P.edge "a"));
          ])
       (fun t ->
         let c = Estimate.cost stats t and card = Estimate.cardinality stats t in
         c > 0. && card > 0. && Float.is_finite c && Float.is_finite card))

(* --- estimate-vs-actual feedback ------------------------------------- *)

module Feedback = Cost.Feedback

let check_float = Alcotest.(check (float 1e-9))

let test_q_error_properties () =
  check_float "exact" 1.0 (Feedback.q_error ~est:40. ~actual:40.);
  check_float "symmetric over" 4.0 (Feedback.q_error ~est:40. ~actual:10.);
  check_float "symmetric under" 4.0 (Feedback.q_error ~est:10. ~actual:40.);
  (* empty sides clamp to one tuple instead of dividing by zero *)
  check_float "zero actual" 40.0 (Feedback.q_error ~est:40. ~actual:0.);
  check_float "both empty" 1.0 (Feedback.q_error ~est:0. ~actual:0.)

let test_estimates_paths () =
  let term = Term.Select (Pred.Eq_const ("pred", a), Term.Rel "E") in
  let es = Feedback.estimates stats term in
  check_bool "root first" true
    (match es with { Feedback.path = "0"; _ } :: _ -> true | _ -> false);
  check_bool "child addressed 0.0" true
    (List.exists (fun (e : Feedback.estimate) -> e.path = "0.0" && e.label = "Rel E") es)

let test_exact_scan_q_error () =
  (* base-table scan estimate comes straight from the stats: q-error 1.0 *)
  let ms =
    Feedback.compare_actuals stats (Term.Rel "E")
      ~actuals:[ ("0", Rel.cardinal labelled) ]
  in
  check_float "scan q-error" 1.0 (Feedback.query_q_error ms)

let test_compare_actuals_ranking () =
  let term = Term.Union (Term.Rel "E", Term.Rel "E") in
  (* root actual matches the estimate poorly; children exactly *)
  let ms =
    Feedback.compare_actuals stats term
      ~actuals:[ ("0", 1); ("0.0", 40); ("0.1", 40) ]
  in
  check_bool "worst first" true
    (match ms with
    | worst :: rest ->
      worst.Feedback.m_path = "0"
      && List.for_all (fun (m : Feedback.mismatch) -> m.m_q <= worst.m_q) rest
    | [] -> false);
  check_bool "unreported nodes skipped" true
    (List.length
       (Feedback.compare_actuals stats term ~actuals:[ ("0.1", 40) ])
    = 1);
  check_bool "summary mentions worst node" true
    (let s = Feedback.summary ms in
     String.length s > 0);
  check_float "no actuals -> neutral q" 1.0 (Feedback.query_q_error [])

let test_check_plan_ordering () =
  let fired = ref [] in
  Feedback.ordering_hook := (fun msg -> fired := msg :: !fired);
  Fun.protect
    ~finally:(fun () -> Feedback.ordering_hook := fun _ -> ())
    (fun () ->
      check_bool "agreement -> None" true
        (Feedback.check_plan_ordering
           ~est_costs:[ ("p1", 1.); ("p2", 2.) ]
           ~actual_costs:[ ("p1", 0.1); ("p2", 0.4) ]
        = None);
      check_bool "no hook on agreement" true (!fired = []);
      check_bool "empty -> None" true
        (Feedback.check_plan_ordering ~est_costs:[] ~actual_costs:[] = None);
      let d =
        Feedback.check_plan_ordering
          ~est_costs:[ ("p1", 1.); ("p2", 2.) ]
          ~actual_costs:[ ("p1", 0.4); ("p2", 0.1) ]
      in
      check_bool "disagreement -> Some" true (d <> None);
      check_bool "hook fired" true (List.length !fired = 1))

let () =
  Alcotest.run "cost"
    [
      ( "stats",
        [ Alcotest.test_case "basics" `Quick test_stats_basics ] );
      ( "estimates",
        [
          Alcotest.test_case "select" `Quick test_select_estimate;
          Alcotest.test_case "join" `Quick test_join_estimate;
          Alcotest.test_case "fixpoint" `Quick test_fix_estimate_grows;
          Alcotest.test_case "total" `Quick test_estimator_total;
          prop_estimates_positive;
        ] );
      ( "ranking",
        [
          Alcotest.test_case "filter push" `Quick test_ranking_filter_push;
          Alcotest.test_case "merge fixpoints" `Quick test_ranking_merge;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "q-error properties" `Quick test_q_error_properties;
          Alcotest.test_case "estimate paths" `Quick test_estimates_paths;
          Alcotest.test_case "exact scan" `Quick test_exact_scan_q_error;
          Alcotest.test_case "mismatch ranking" `Quick test_compare_actuals_ranking;
          Alcotest.test_case "plan ordering" `Quick test_check_plan_ordering;
        ] );
    ]
